(* Building a brand-new superimposed application without writing a line of
   model-specific storage code (paper §4.3–§4.4, §6, [24]):

     1. define a data model in the SLIM-ML text DSL,
     2. get a DMI generated from it,
     3. create instance data through the checked interface,
     4. validate conformance (schema-later),
     5. query it declaratively,
     6. ship it as RDF/XML.

   The model here is a little research-notes application: claims
   superimposed over cited sources. Run with:
   dune exec examples/custom_model.exe *)

module Model = Si_metamodel.Model
module Model_dsl = Si_metamodel.Model_dsl
module G = Si_slim.Generic_dmi
module Trim = Si_triple.Trim
module Triple = Si_triple.Triple

let ok = function Ok v -> v | Error msg -> failwith msg

let model_text =
  "model research-notes\n\
   \n\
   literal String\n\
   construct Claim\n\
   construct Source\n\
   mark Citation\n\
   \n\
   Claim.statement  : String   [1..1]\n\
   Claim.supportedBy : Citation [0..*]\n\
   Claim.contradicts : Claim    [0..*]\n\
   Citation.source   : Source   [1..1]\n\
   Citation.locator  : String   [1..1]\n\
   Source.sourceName : String   [1..1]\n"

let () =
  let trim = Trim.create () in
  (* 1. The model, from text. *)
  let model = ok (Model_dsl.parse trim model_text) in
  print_endline "--- the model, as stored (round-tripped through triples) ---";
  print_string (Model_dsl.print model);

  (* 2. The generated DMI. *)
  let g = G.for_model model in
  print_endline "--- generated operations ---";
  print_endline (String.concat ", " (G.operations g));

  (* 3. Instance data through the checked interface. *)
  let source = ok (G.create g "Source") in
  ok (G.set g source "sourceName" (Triple.literal "Hutchins 1995"));
  let cite = ok (G.create g "Citation") in
  ok (G.set g cite "source" (Triple.resource source));
  ok (G.set g cite "locator" (Triple.literal "ch. 9, navigation bridge"));
  let claim = ok (G.create g "Claim") in
  ok
    (G.set g claim "statement"
       (Triple.literal "Cognition is distributed across artifacts"));
  ok (G.add g claim "supportedBy" (Triple.resource cite));
  let counter = ok (G.create g "Claim") in
  ok
    (G.set g counter "statement"
       (Triple.literal "Expertise is purely individual"));
  ok (G.add g counter "contradicts" (Triple.resource claim));
  (* The interface refuses what the model forbids. *)
  (match G.set g claim "statement" (Triple.resource source) with
  | Error msg -> Printf.printf "--- refused, as it should: %s ---\n" msg
  | Ok () -> print_endline "?! type error accepted");
  (match G.add g cite "locator" (Triple.literal "second locator") with
  | Error msg -> Printf.printf "--- refused, as it should: %s ---\n" msg
  | Ok () -> print_endline "?! cardinality breach accepted");

  (* 4. Conformance. *)
  print_endline "--- validation ---";
  print_string
    (Si_metamodel.Validate.report_to_string (Si_metamodel.Validate.check model));

  (* 5. Declarative query: which claims have support? *)
  print_endline "--- supported claims (query) ---";
  let q =
    Si_query.Query.parse_exn
      "select ?st where { ?c statement ?st . ?c supportedBy ?cite }"
  in
  List.iter
    (fun binding -> print_endline (Si_query.Query.binding_to_string binding))
    (Si_query.Query.run trim q);

  (* 6. Interop: the whole thing — model and data — as RDF/XML. *)
  let rdf = ok (Si_triple.Rdf_xml.to_string trim) in
  Printf.printf "--- RDF/XML export: %d bytes, starts with ---\n%s...\n"
    (String.length rdf)
    (String.sub rdf 0 120);
  (* The CI lint job sets EXAMPLE_PAD_DIR and audits the stored triples
     with `slimpad lint`. *)
  (match Sys.getenv_opt "EXAMPLE_PAD_DIR" with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      ok (Trim.save trim (Filename.concat dir "pad.xml")));
  print_endline "custom_model: OK"
