(* Enhanced base-layer viewing (paper §4.1, Fig 6 middle; the Third Voice
   example): instead of showing the superimposed layer in its own window,
   the base application's view is enhanced with the superimposed
   information — here, a web page rendered with the pad's annotations
   spliced in where their marks point.

   Run with: dune exec examples/annotated_page.exe *)

module Desktop = Si_mark.Desktop
module Dmi = Si_slim.Dmi
module Slimpad = Si_slimpad.Slimpad

let ok = function Ok v -> v | Error msg -> failwith msg

let page_source =
  "<html><head><title>Sepsis Management</title></head><body>\
   <h1 id=\"recognition\">Early recognition</h1>\
   <p>Screen every admission for altered mentation, tachypnea and \
   hypotension.</p>\
   <h1 id=\"resuscitation\">Resuscitation</h1>\
   <p id=\"fluids\">Give 30 mL/kg crystalloid within the first three \
   hours.</p>\
   <p id=\"pressors\">Start norepinephrine if MAP stays below 65 mmHg.</p>\
   <h1 id=\"source-control\">Source control</h1>\
   <p>Obtain cultures before antibiotics whenever that causes no \
   significant delay.</p>\
   </body></html>"

let () =
  let desk = Desktop.create () in
  Desktop.add_html desk "sepsis.html" page_source;
  let app = Slimpad.create desk in
  let t = Slimpad.dmi app in
  let pad = Slimpad.new_pad app "Reading Notes" in
  let root = Dmi.root_bundle t pad in

  (* The reader marks passages and annotates the scraps. *)
  let note anchor label annotations =
    let scrap =
      ok
        (Slimpad.add_scrap app ~parent:root ~name:label ~mark_type:"html"
           ~fields:[ ("fileName", "sepsis.html"); ("anchor", anchor) ]
           ())
    in
    List.iter (Dmi.annotate_scrap t scrap) annotations;
    scrap
  in
  let _ = note "fluids" "fluid bolus"
      [ "our pumps max at 999 mL/h — plan two lines" ] in
  let _ = note "pressors" "pressor trigger"
      [ "matches our ICU protocol"; "check with pharmacy about premix" ] in
  let _ = note "source-control" "cultures first" [] in

  (* Simultaneous viewing would show the pad next to the page: *)
  print_endline "--- the pad (its own window) ---";
  print_string (Slimpad.render_pad app pad);

  (* Enhanced base-layer viewing: render the PAGE, splicing each scrap's
     annotations in right after the passage its mark addresses. *)
  print_endline "--- the page, enhanced with the superimposed layer ---";
  let page = ok (Desktop.open_html desk "sepsis.html") in
  let notes_by_excerpt =
    List.filter_map
      (fun scrap ->
        match Slimpad.scrap_content app scrap with
        | Ok excerpt ->
            Some
              ( excerpt,
                Dmi.scrap_name t scrap,
                Dmi.annotations t scrap )
        | Error _ -> None)
      (Slimpad.find_scraps app pad "")
  in
  let enhanced =
    List.fold_left
      (fun text (excerpt, label, annotations) ->
        (* Splice after the first line of the marked element's text. *)
        let first_line =
          match String.split_on_char '\n' excerpt with
          | l :: _ -> l
          | [] -> excerpt
        in
        let callout =
          Printf.sprintf "%s\n    >> [%s]%s" first_line label
            (String.concat ""
               (List.map (fun a -> Printf.sprintf "\n    >> note: %s" a)
                  annotations))
        in
        (* Replace the first occurrence only. *)
        match Si_textdoc.Textdoc.find_first
                (Si_textdoc.Textdoc.of_string text) first_line
        with
        | Some span ->
            String.concat ""
              [
                String.sub text 0 span.Si_textdoc.Textdoc.offset;
                callout;
                String.sub text
                  (span.Si_textdoc.Textdoc.offset
                  + span.Si_textdoc.Textdoc.length)
                  (String.length text
                  - span.Si_textdoc.Textdoc.offset
                  - span.Si_textdoc.Textdoc.length);
              ]
        | None -> text)
      (Si_htmldoc.Htmldoc.to_text page)
      notes_by_excerpt
  in
  print_endline enhanced;
  (* The CI lint job sets EXAMPLE_PAD_DIR and audits the finished pad
     with `slimpad lint`. *)
  (match Sys.getenv_opt "EXAMPLE_PAD_DIR" with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      ok (Slimpad.save app (Filename.concat dir "pad.xml")));
  print_endline "annotated_page: OK"
