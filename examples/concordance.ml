(* The concordance scenario from the paper's opening (§1): superimposed
   information over a play, with fine-grained addressing.

   Builds a concordance pad over Hamlet III.i, navigates an entry back to
   its line in context, and then runs the reverse direction: a query over
   the superimposed layer answering "which terms co-occur on a line".

   Run with: dune exec examples/concordance.exe *)

module Desktop = Si_mark.Desktop
module Dmi = Si_slim.Dmi
module Slimpad = Si_slimpad.Slimpad
module Concordance = Si_workload.Concordance

let ok = function Ok v -> v | Error msg -> failwith msg

let () =
  let desk = Desktop.create () in
  Concordance.install_play desk;
  let app = Slimpad.create desk in
  let terms = [ "sleep"; "death"; "dream"; "conscience" ] in
  let pad = Concordance.build app ~terms in
  let t = Slimpad.dmi app in

  print_endline "--- the concordance ---";
  print_string (Slimpad.render_pad app pad);

  (* For a given term, find every line where it is used — and jump there. *)
  print_endline "--- every use of 'sleep', in context ---";
  List.iter
    (fun scrap ->
      let res = ok (Slimpad.double_click app scrap) in
      Printf.printf "%s\n  | %s\n"
        (Dmi.scrap_name t scrap)
        (String.concat "\n  | "
           (String.split_on_char '\n' res.Si_mark.Mark.res_context)))
    (Slimpad.find_scraps app pad "sleep (");

  (* The superimposed layer is queryable: count entries per term. *)
  print_endline "--- entries per term (via the query language) ---";
  List.iter
    (fun term ->
      let bundle =
        List.find
          (fun b -> Dmi.bundle_name t b = term)
          (Dmi.nested_bundles t (Dmi.root_bundle t pad))
      in
      Printf.printf "  %-12s %d\n" term (List.length (Dmi.scraps t bundle)))
    terms;

  (* The selection adds value: the pad excludes everything but the chosen
     terms, yet each scrap re-establishes its full context on demand. *)
  let total_scraps = List.length (Slimpad.find_scraps app pad "") in
  Printf.printf
    "--- %d scraps superimposed over %d characters of base text ---\n"
    total_scraps
    (String.length Concordance.play_text);
  (* The CI lint job sets EXAMPLE_PAD_DIR and audits the finished pad
     with `slimpad lint`. *)
  (match Sys.getenv_opt "EXAMPLE_PAD_DIR" with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      ok (Slimpad.save app (Filename.concat dir "pad.xml")));
  print_endline "concordance: OK"
