(* The air-traffic-control analogue (paper §2, citing Hutchins and Mackay's
   flight-strip studies): bundles outside the medical domain.

   Builds a sector board over a flight spreadsheet, hands a flight off
   between sectors (reparenting its strip), and annotates a strip the way
   controllers mark paper strips.

   Run with: dune exec examples/air_traffic.exe *)

module Desktop = Si_mark.Desktop
module Dmi = Si_slim.Dmi
module Slimpad = Si_slimpad.Slimpad
module Atc = Si_workload.Atc

let ok = function Ok v -> v | Error msg -> failwith msg

let () =
  let desk = Desktop.create () in
  let spec = Atc.build_desktop ~flights:9 ~seed:77 desk in
  let app = Slimpad.create desk in
  let pad = Atc.build_board app spec in
  let t = Slimpad.dmi app in

  print_endline "--- the sector board ---";
  print_string (Slimpad.render_pad app pad);

  (* A strip resolves to its full flight row — the "wire" back to the
     flight-data system. *)
  let sectors = Dmi.nested_bundles t (Dmi.root_bundle t pad) in
  let from_sector = List.hd sectors in
  let strip = List.hd (Dmi.scraps t from_sector) in
  print_endline "--- reading a strip ---";
  Printf.printf "%s => %s\n"
    (Dmi.scrap_name t strip)
    (ok (Slimpad.scrap_content app strip));

  (* Handoff: the flight crosses a boundary; its strip moves bundles. The
     mark is untouched — only the superimposed structure changes. *)
  (match sectors with
  | _ :: to_sector :: _ ->
      Printf.printf "--- handing %s off to %s ---\n"
        (Dmi.scrap_name t strip)
        (Dmi.bundle_name t to_sector);
      Dmi.reparent_scrap t strip ~parent:to_sector;
      Dmi.annotate_scrap t strip "handed off; climb to FL340 approved"
  | _ -> ());

  print_endline "--- the board after the handoff ---";
  print_string (Slimpad.render_pad app pad);

  (* The flight data updates (new ETA); the strip notices the drift. *)
  let wb = ok (Desktop.open_workbook desk spec.Atc.flights_file) in
  let row =
    (* The strip's mark points at a row; bump its ETA cell (column E). *)
    let mark = Option.get (Slimpad.scrap_mark app strip) in
    Si_mark.Mark.field_exn mark "range"
  in
  (match Si_spreadsheet.Cellref.of_string row with
  | Some r ->
      let eta_cell =
        Si_spreadsheet.Cellref.cell_to_string
          (Si_spreadsheet.Cellref.cell 5 r.Si_spreadsheet.Cellref.top_left.row)
      in
      Si_spreadsheet.Workbook.set wb ~sheet_name:spec.Atc.flights_sheet
        eta_cell "23:59"
  | None -> ());
  (match Slimpad.drift_report app pad with
  | [] -> print_endline "--- no drift?! ---"
  | drifts ->
      Printf.printf "--- %d strip(s) stale after flight-data update ---\n"
        (List.length drifts));
  ignore (Slimpad.refresh_pad app pad);
  (* The CI lint job sets EXAMPLE_PAD_DIR and audits the finished pad
     with `slimpad lint`. *)
  (match Sys.getenv_opt "EXAMPLE_PAD_DIR" with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      ok (Slimpad.save app (Filename.concat dir "pad.xml")));
  print_endline "air_traffic: OK"
