(* Quickstart: the smallest end-to-end tour of the public API.

   Builds two base documents (a spreadsheet and an XML report), superimposes
   a pad with two scraps marking into them, resolves the marks three ways,
   runs a query, and round-trips the pad through a file.

   Run with: dune exec examples/quickstart.exe *)

module Desktop = Si_mark.Desktop
module Dmi = Si_slim.Dmi
module Slimpad = Si_slimpad.Slimpad

let ok = function Ok v -> v | Error msg -> failwith msg

let () =
  (* 1. The base layer: documents owned by (simulated) base applications. *)
  let desk = Desktop.create () in
  let wb = Si_spreadsheet.Workbook.create ~sheet_names:[ "Budget" ] () in
  let set a v = Si_spreadsheet.Workbook.set wb ~sheet_name:"Budget" a v in
  set "A1" "Item";
  set "B1" "Cost";
  set "A2" "Laser";
  set "B2" "1200";
  set "A3" "Shark tank";
  set "B3" "50000";
  set "B5" "=SUM(B2:B3)";
  Desktop.add_workbook desk "budget.xls" wb;
  Desktop.add_xml desk "status.xml"
    (Si_xmlk.Parse.node_exn
       "<status><phase>procurement</phase>\
        <risk level=\"high\">lasers are back-ordered</risk></status>");

  (* 2. The superimposed layer: a pad with scraps marking into the base. *)
  let app = Slimpad.create desk in
  let pad = Slimpad.new_pad app "Evil Plan" in
  let root = Dmi.root_bundle (Slimpad.dmi app) pad in
  let total =
    ok
      (Slimpad.add_scrap app ~parent:root ~name:"total cost"
         ~mark_type:"excel"
         ~fields:
           [ ("fileName", "budget.xls"); ("sheetName", "Budget");
             ("range", "B5") ]
         ~pos:{ Dmi.x = 10; y = 10 }
         ())
  in
  let risk =
    ok
      (Slimpad.add_scrap app ~parent:root ~name:"blocker" ~mark_type:"xml"
         ~fields:[ ("fileName", "status.xml"); ("xmlPath", "/status/risk") ]
         ~pos:{ Dmi.x = 10; y = 40 }
         ())
  in
  Dmi.annotate_scrap (Slimpad.dmi app) risk "escalate to minion #2";
  ignore
    (Dmi.link_scraps (Slimpad.dmi app) ~label:"drives" ~from_:risk ~to_:total ());

  print_endline "--- the pad ---";
  print_string (Slimpad.render_pad app pad);

  (* 3. Resolution: the three viewing behaviours of the paper. *)
  print_endline "--- double-click 'total cost' (navigate) ---";
  let res = ok (Slimpad.double_click app total) in
  print_endline res.Si_mark.Mark.res_context;
  print_endline "--- extract content ---";
  print_endline (ok (Slimpad.scrap_content app total));
  print_endline "--- display in place ---";
  print_endline (ok (Slimpad.scrap_in_place app risk));

  (* 4. The base changes; the pad notices. *)
  set "B2" "1800";
  (match Slimpad.drift_report app pad with
  | [ (_, Si_mark.Manager.Changed { was; now }) ] ->
      Printf.printf "--- drift detected: %s -> %s ---\n" was now
  | _ -> print_endline "--- no drift?! ---");
  ignore (Slimpad.refresh_pad app pad);

  (* 5. Query the superimposed layer. *)
  print_endline "--- query: scraps and their marks ---";
  List.iter print_endline
    (ok
       (Slimpad.query app
          "select ?n ?m where { ?s scrapName ?n . ?s scrapMark ?h . ?h \
           markId ?m }"));

  (* 6. Persistence round-trip. *)
  let path = Filename.temp_file "quickstart" ".xml" in
  ok (Slimpad.save app path);
  let app2 = ok (Slimpad.load desk path) in
  Sys.remove path;
  let pad2 = Option.get (Dmi.find_pad (Slimpad.dmi app2) "Evil Plan") in
  Printf.printf "--- reloaded: %d scraps, still resolving: %s ---\n"
    (List.length (Slimpad.find_scraps app2 pad2 ""))
    (ok
       (Slimpad.scrap_content app2
          (List.hd (Slimpad.find_scraps app2 pad2 "total"))));
  (* The CI lint job sets EXAMPLE_PAD_DIR and audits the finished pad
     with `slimpad lint`. *)
  (match Sys.getenv_opt "EXAMPLE_PAD_DIR" with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      ok (Slimpad.save app (Filename.concat dir "pad.xml")));
  print_endline "quickstart: OK"
