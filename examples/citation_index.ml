(* A second superimposed application on the same architecture (paper §1
   names citation indices as superimposed information; §6: "We expect to
   test it further in other superimposed information applications").

   This one is NOT SLIMPad: it uses the XLink model (extended links over
   locators) instead of Bundle-Scrap, drives it through the generated DMI
   instead of hand-written code, and wires locators to real marks in the
   Mark Manager. Every architecture component is reused unchanged — which
   is the paper's central claim.

   Run with: dune exec examples/citation_index.exe *)

module Model = Si_metamodel.Model
module G = Si_slim.Generic_dmi
module Trim = Si_triple.Trim
module Triple = Si_triple.Triple
module Desktop = Si_mark.Desktop
module Manager = Si_mark.Manager
module Mark = Si_mark.Mark

let ok = function Ok v -> v | Error msg -> failwith msg

let () =
  (* Base layer: two "papers" (PDF stand-ins) and one dataset. *)
  let desk = Desktop.create () in
  let paper title lines =
    let pdf = Si_pdfdoc.Pdfdoc.create ~title () in
    let page = Si_pdfdoc.Pdfdoc.add_page pdf in
    List.iteri
      (fun i line ->
        ignore
          (Si_pdfdoc.Pdfdoc.add_line page
             ~y:(72. +. (float_of_int i *. 20.))
             line))
      lines;
    pdf
  in
  Desktop.add_pdf desk "delcambre01.pdf"
    (paper "Bundles in Captivity"
       [ "We propose an architecture for superimposed information.";
         "The Mark Manager isolates addressing modes." ]);
  Desktop.add_pdf desk "maier99.pdf"
    (paper "Superimposed Information for the Internet"
       [ "Superimposed information references base information." ]);
  let wb = Si_spreadsheet.Workbook.create ~sheet_names:[ "Venues" ] () in
  Si_spreadsheet.Workbook.set wb ~sheet_name:"Venues" "A1" "ICDE 2001";
  Desktop.add_workbook desk "venues.xls" wb;

  let marks = Manager.create () in
  Desktop.install_modules desk marks;

  (* Superimposed layer: the XLink model, through the generated DMI. *)
  let trim = Trim.create () in
  let xl = Si_slim.Std_models.install_xlink trim in
  let g = G.for_model xl.Si_slim.Std_models.xl in

  (* One extended link per citation edge: citing locator -> cited locator.
     Locators carry mark ids, so "href" resolution goes through the Mark
     Manager like any SLIMPad scrap. *)
  let locator file page_region_y =
    let mark =
      ok
        (Manager.create_mark marks ~mark_type:"pdf"
           ~fields:
             [
               ("fileName", file); ("page", "1"); ("x", "0");
               ("y", Printf.sprintf "%.0f" (page_region_y -. 5.));
               ("w", "600"); ("h", "25");
             ]
           ())
    in
    let l = ok (G.create g "Locator") in
    ok (G.set g l "locatorHref" (Triple.literal mark.Mark.mark_id));
    l
  in
  let citing = locator "delcambre01.pdf" 72. in
  let cited = locator "maier99.pdf" 72. in
  let link = ok (G.create g "ExtendedLink") in
  ok (G.set g link "linkTitle" (Triple.literal "builds on"));
  ok (G.add g link "hasLocator" (Triple.resource citing));
  ok (G.add g link "hasLocator" (Triple.resource cited));
  let arc = ok (G.create g "Arc") in
  ok (G.set g arc "arcFrom" (Triple.resource citing));
  ok (G.set g arc "arcTo" (Triple.resource cited));
  ok (G.add g link "hasArc" (Triple.resource arc));

  print_endline "--- conformance (xlink model) ---";
  print_string
    (Si_metamodel.Validate.report_to_string
       (Si_metamodel.Validate.check xl.Si_slim.Std_models.xl));

  (* The citation index in use: follow every arc, resolving both ends
     through the Mark Manager into the base papers. *)
  print_endline "--- the citation index ---";
  let arcs =
    Si_query.Query.run trim
      (Si_query.Query.parse_exn
         "select ?from ?to where { ?a arcFrom ?from . ?a arcTo ?to }")
  in
  List.iter
    (fun binding ->
      let resolve_end var =
        match List.assoc_opt var binding with
        | Some (Triple.Resource locator) -> (
            match Trim.literal_of trim ~subject:locator ~predicate:"locatorHref"
            with
            | Some mark_id -> (
                match Manager.resolve marks mark_id with
                | Ok res -> res.Mark.res_display
                | Error e -> "<" ^ Manager.resolve_error_to_string e ^ ">")
            | None -> "<no href>")
        | _ -> "<unbound>"
      in
      Printf.printf "%s\n  cites\n%s\n" (resolve_end "from") (resolve_end "to"))
    arcs;

  (* Reverse lookup — "who cites this paper?" — is one query away. *)
  print_endline "--- reverse lookup: citations into maier99.pdf ---";
  let incoming =
    List.length
      (Si_query.Query.run trim
         (Si_query.Query.parse_exn
            "select ?a where { ?a arcTo ?l . ?l locatorHref ?m }"))
  in
  Printf.printf "%d incoming arc(s)\n" incoming;
  (* The CI lint job sets EXAMPLE_PAD_DIR and audits the stored triples
     with `slimpad lint`. *)
  (match Sys.getenv_opt "EXAMPLE_PAD_DIR" with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      ok (Trim.save trim (Filename.concat dir "pad.xml")));
  print_endline "citation_index: OK"
