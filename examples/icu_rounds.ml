(* The resident's worksheet scenario (paper §2 Fig 2, §3 Fig 4).

   Generates an ICU desktop (medication workbook, per-patient lab reports
   and notes), builds the Rounds worksheet pad over it, then walks through
   the workflows the paper describes: double-clicking a scrap to
   re-establish context, detecting transcription drift when a base document
   changes, instantiating a bundle template for a new admission, and the §6
   "transfer of current-situation awareness" hand-off (save on Friday, load
   on Saturday).

   Run with: dune exec examples/icu_rounds.exe *)

module Desktop = Si_mark.Desktop
module Dmi = Si_slim.Dmi
module Slimpad = Si_slimpad.Slimpad
module Icu = Si_workload.Icu

let ok = function Ok v -> v | Error msg -> failwith msg

let () =
  let desk = Desktop.create () in
  let spec = Icu.build_desktop ~patients:3 ~seed:2001 desk in
  let app = Slimpad.create desk in
  let pad = Icu.build_worksheet app spec in
  let t = Slimpad.dmi app in

  print_endline "--- the resident's worksheet ---";
  print_string (Slimpad.render_pad app pad);

  (* Double-click the first patient's first lab scrap: the lab report opens
     with the result highlighted (simultaneous viewing). *)
  let patient = List.hd (Dmi.nested_bundles t (Dmi.root_bundle t pad)) in
  let labs = List.hd (Dmi.nested_bundles t patient) in
  let lab_scrap = List.hd (Dmi.scraps t labs) in
  print_endline "--- double-click a lab scrap ---";
  let res = ok (Slimpad.double_click app lab_scrap) in
  Printf.printf "source: %s\n%s\n" res.Si_mark.Mark.res_source
    res.Si_mark.Mark.res_context;

  (* Overnight, the morning draw is re-run: values change in the base
     document. The pad detects every affected scrap. *)
  let p0 = List.hd spec.Icu.patients in
  let report = ok (Desktop.open_xml desk p0.Icu.labs_file) in
  let bumped =
    (* Crude "new lab values": change the first result's text. *)
    let open Si_xmlk.Node in
    map_children
      (List.map (fun child ->
           match child with
           | Element { name = "panel"; _ } ->
               map_children
                 (function
                   | Element ({ name = "result"; _ } as e) :: rest ->
                       Element { e with children = [ text "999.9" ] } :: rest
                   | other -> other)
                 child
           | other -> other))
      report
  in
  Desktop.add_xml desk p0.Icu.labs_file bumped;
  print_endline "--- overnight lab change detected ---";
  List.iter
    (fun (scrap, drift) ->
      match drift with
      | Si_mark.Manager.Changed { was; now } ->
          Printf.printf "  %s: %s -> %s\n"
            (Dmi.scrap_name t scrap)
            was now
      | Si_mark.Manager.Unresolvable err | Si_mark.Manager.Quarantined err ->
          Printf.printf "  %s: unresolvable (%s)\n"
            (Dmi.scrap_name t scrap)
            (Si_mark.Manager.resolve_error_to_string err)
      | Si_mark.Manager.Unchanged -> ())
    (Slimpad.drift_report app pad);
  Printf.printf "refreshed %d stale scrap(s)\n" (Slimpad.refresh_pad app pad);

  (* A new admission: stamp out a patient bundle from a template. *)
  let template =
    Slimpad.add_bundle app ~parent:(Dmi.root_bundle t pad)
      ~name:"admission-template" ()
  in
  let vitals =
    Slimpad.add_bundle app ~parent:template ~name:"Vitals to watch" ()
  in
  ignore
    (ok
       (Slimpad.add_scrap app ~parent:vitals ~name:"lactate"
          ~mark_type:"xml"
          ~fields:
            [
              ("fileName", p0.Icu.labs_file);
              ("xmlPath", "/report/panel/result[1]");
            ]
          ()));
  Dmi.set_template t template true;
  let bed4 =
    ok
      (Dmi.instantiate_template t ~template ~name:"Bed 4 (new admission)"
         ~parent:(Dmi.root_bundle t pad))
  in
  Printf.printf "--- instantiated template: %s with %d sub-bundle(s) ---\n"
    (Dmi.bundle_name t bed4)
    (List.length (Dmi.nested_bundles t bed4));

  (* The weekend hand-off (§6): save the pad, reload it as the covering
     doctor, every wire still live. *)
  let path = Filename.temp_file "rounds" ".xml" in
  ok (Slimpad.save app path);
  let weekend = ok (Slimpad.load desk path) in
  Sys.remove path;
  let pad2 = Option.get (Dmi.find_pad (Slimpad.dmi weekend) "Rounds") in
  let todo_scraps = Slimpad.find_scraps weekend pad2 "TODO:" in
  print_endline "--- weekend hand-off: the covering doctor's to-do list ---";
  List.iter
    (fun s ->
      Printf.printf "  %s (wire: %s)\n"
        (Dmi.scrap_name (Slimpad.dmi weekend) s)
        (ok (Slimpad.scrap_content weekend s)))
    todo_scraps;
  (* The CI lint job sets EXAMPLE_PAD_DIR and audits the finished pad
     with `slimpad lint`. *)
  (match Sys.getenv_opt "EXAMPLE_PAD_DIR" with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      ok (Slimpad.save weekend (Filename.concat dir "pad.xml")));
  print_endline "icu_rounds: OK"
