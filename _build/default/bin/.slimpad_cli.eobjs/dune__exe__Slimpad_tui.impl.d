bin/slimpad_tui.ml: A Array I List Notty Notty_unix Printf Si_slim Si_slimpad Si_tui String Sys Term Unescape Workspace
