bin/slimpad_cli.mli:
