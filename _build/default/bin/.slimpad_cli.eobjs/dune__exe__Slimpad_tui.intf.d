bin/slimpad_tui.mli:
