bin/workspace.ml: Array Filename In_channel List Printf Si_mark Si_pdfdoc Si_slides Si_slimpad Si_spreadsheet Si_textdoc Si_wordproc Si_xmlk String Sys
