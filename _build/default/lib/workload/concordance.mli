(** The concordance workload (paper §1).

    "Consider a concordance for the works of Shakespeare. For a given
    term, we can find out every line (in a play) where the term is used."
    Builds exactly that as superimposed information: one bundle per term,
    one scrap per occurrence, each scrap a text mark into the play with
    play-act-scene-line-style context. *)

val play_file : string
(** ["hamlet-iii-i.txt"] — the embedded public-domain text. *)

val play_text : string
(** Hamlet III.i ("To be, or not to be…"), public domain. *)

val install_play : Si_mark.Desktop.t -> unit

val build :
  Si_slimpad.Slimpad.t -> terms:string list -> Si_slim.Dmi.pad
(** A pad named ["Concordance"] over the installed play: per term a bundle
    whose scraps are the term's occurrences, labelled "term (line N)".
    Terms with no occurrence get an empty bundle. *)
