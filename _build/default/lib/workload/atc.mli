(** The air-traffic-control workload (paper §2).

    "Reports of observations from other, analogous domains such as air
    traffic control suggest that bundle use may be common outside the
    medical area" [9, 10, 15] — flight progress strips grouped by sector.
    One spreadsheet of flights; a pad with one bundle per sector whose
    scraps mark the flights' rows (the digital flight strips).
    Deterministic in [seed]. *)

type spec = {
  flights_file : string;
  flights_sheet : string;
  sectors : (string * string list) list;
      (** sector name -> callsigns of the flights it controls *)
}

val build_desktop : ?flights:int -> seed:int -> Si_mark.Desktop.t -> spec
(** Default 12 flights across 3 sectors. *)

val build_board : Si_slimpad.Slimpad.t -> spec -> Si_slim.Dmi.pad
(** The controller's board pad: a bundle per sector, a scrap per strip. *)
