module Desktop = Si_mark.Desktop
module Dmi = Si_slim.Dmi
module Slimpad = Si_slimpad.Slimpad
module Wb = Si_spreadsheet.Workbook
module Cellref = Si_spreadsheet.Cellref
module Xml = Si_xmlk

type patient = {
  name : string;
  meds_range : string;
  labs_file : string;
  note_file : string;
  problems : string list;
  todos : string list;
}

type spec = { patients : patient list; meds_file : string; meds_sheet : string }

let first_names =
  [ "John"; "Mary"; "Robert"; "Susan"; "James"; "Linda"; "Michael"; "Carol";
    "David"; "Ruth"; "Thomas"; "Helen" ]

let last_names =
  [ "Smith"; "Johnson"; "Nguyen"; "Garcia"; "Miller"; "Chen"; "Brown";
    "Martinez"; "Olsen"; "Kim"; "Baker"; "Rossi" ]

let drugs =
  [ ("Dopamine", "5 mcg/kg/min"); ("Norepinephrine", "0.1 mcg/kg/min");
    ("Fentanyl", "50 mcg/h"); ("Midazolam", "2 mg/h");
    ("Vancomycin", "1 g q12h"); ("Piperacillin", "4.5 g q8h");
    ("Insulin", "2 u/h"); ("Heparin", "800 u/h"); ("Furosemide", "20 mg");
    ("Propofol", "30 mcg/kg/min") ]

let problems_pool =
  [ "septic shock"; "acute renal failure"; "ARDS"; "GI bleed"; "pneumonia";
    "atrial fibrillation"; "DKA"; "pancreatitis"; "CHF exacerbation";
    "respiratory failure" ]

let todos_pool =
  [ "wean pressors"; "renal consult"; "repeat lactate"; "chest x-ray";
    "family meeting"; "extubate if stable"; "culture results"; "adjust tube feeds" ]

let lab_tests =
  [ ("Na", 135., 146., "mmol/L"); ("K", 3.4, 5.2, "mmol/L");
    ("Cl", 96., 108., "mmol/L"); ("HCO3", 20., 29., "mmol/L");
    ("BUN", 8., 45., "mg/dL"); ("Cr", 0.6, 3.5, "mg/dL");
    ("WBC", 4., 22., "10^9/L"); ("Hgb", 7., 15., "g/dL");
    ("Lactate", 0.5, 6., "mmol/L"); ("Glucose", 70., 280., "mg/dL") ]


(* Deterministic distinct picks: rotate the pool by a random offset. *)
let picks rng n pool =
  let len = List.length pool in
  let offset = Rng.int rng len in
  List.init (min n len) (fun i -> List.nth pool ((offset + i) mod len))

let build_desktop ?(patients = 4) ?(meds_per_patient = 3)
    ?(labs_per_patient = 6) ~seed desk =
  let rng = Rng.create seed in
  let meds_file = "medications.xls" in
  let meds_sheet = "Medications" in
  let wb = Wb.create ~sheet_names:[ meds_sheet ] () in
  Wb.set wb ~sheet_name:meds_sheet "A1" "Patient";
  Wb.set wb ~sheet_name:meds_sheet "B1" "Drug";
  Wb.set wb ~sheet_name:meds_sheet "C1" "Dose";
  let next_row = ref 2 in
  let patient_list =
    List.init patients (fun i ->
        let name =
          Printf.sprintf "%s %s" (Rng.pick rng first_names)
            (List.nth last_names (i mod List.length last_names))
        in
        (* Medication rows for this patient. *)
        let first_row = !next_row in
        let meds = picks rng meds_per_patient drugs in
        List.iter
          (fun (drug, dose) ->
            let row = string_of_int !next_row in
            Wb.set wb ~sheet_name:meds_sheet ("A" ^ row) name;
            Wb.set wb ~sheet_name:meds_sheet ("B" ^ row) drug;
            Wb.set wb ~sheet_name:meds_sheet ("C" ^ row) dose;
            incr next_row)
          meds;
        let meds_range =
          Printf.sprintf "A%d:C%d" first_row (!next_row - 1)
        in
        (* Lab report XML. *)
        let labs_file = Printf.sprintf "labs-%02d.xml" (i + 1) in
        let results =
          picks rng labs_per_patient lab_tests
          |> List.map (fun (test, lo, hi, units) ->
                 let value = lo +. Rng.float rng (hi -. lo) in
                 Xml.Node.element "result"
                   ~attrs:[ ("test", test); ("units", units) ]
                   [ Xml.Node.text (Printf.sprintf "%.1f" value) ])
        in
        let report =
          Xml.Node.element "report"
            [
              Xml.Node.element "patient" [ Xml.Node.text name ];
              Xml.Node.element "panel"
                ~attrs:[ ("name", "morning-draw") ]
                results;
            ]
        in
        Desktop.add_xml desk labs_file report;
        (* Clinical note. *)
        let problems = picks rng (2 + Rng.int rng 2) problems_pool in
        let todos = picks rng (1 + Rng.int rng 3) todos_pool in
        let note_file = Printf.sprintf "note-%02d.txt" (i + 1) in
        Desktop.add_text desk note_file
          (Si_textdoc.Textdoc.of_lines
             ([ Printf.sprintf "Patient: %s" name; "Problems:" ]
             @ List.map (fun p -> "  - " ^ p) problems
             @ [ "Plan:" ]
             @ List.map (fun td -> "  * " ^ td) todos));
        { name; meds_range; labs_file; note_file; problems; todos })
  in
  Desktop.add_workbook desk meds_file wb;
  { patients = patient_list; meds_file; meds_sheet }

let must = function
  | Ok v -> v
  | Error msg -> failwith ("Icu.build_worksheet: " ^ msg)

let build_worksheet app spec =
  let t = Slimpad.dmi app in
  let desk = Slimpad.desktop app in
  let pad = Slimpad.new_pad app "Rounds" in
  let root = Dmi.root_bundle t pad in
  List.iteri
    (fun i patient ->
      let row_y = 10 + (i * 160) in
      let bundle =
        Slimpad.add_bundle app ~parent:root ~name:patient.name
          ~pos:{ Dmi.x = 10; y = row_y } ()
      in
      Dmi.resize_bundle t bundle ~width:760 ~height:150;
      (* Column 2: problems, marked into the note text. *)
      let note = Result.get_ok (Desktop.open_text desk patient.note_file) in
      List.iteri
        (fun j problem ->
          let span =
            Option.get (Si_textdoc.Textdoc.find_first note problem)
          in
          let fields =
            must
              (Si_mark.Text_mark.capture note ~file_name:patient.note_file
                 span)
          in
          ignore
            (must
               (Slimpad.add_scrap app ~parent:bundle ~name:problem
                  ~mark_type:"text" ~fields
                  ~pos:{ Dmi.x = 150; y = row_y + 20 + (j * 18) }
                  ())))
        patient.problems;
      (* Column 3a: medications, marked into the shared workbook. *)
      let _med_scrap =
        must
          (Slimpad.add_scrap app ~parent:bundle ~name:"Medications"
             ~mark_type:"excel"
             ~fields:
               [
                 ("fileName", spec.meds_file);
                 ("sheetName", spec.meds_sheet);
                 ("range", patient.meds_range);
               ]
             ~pos:{ Dmi.x = 340; y = row_y + 20 }
             ())
      in
      (* Column 3b: lab results, one nested bundle of XML-marked scraps
         (the 'Electrolyte' bundle of Fig 4). *)
      let labs_bundle =
        Slimpad.add_bundle app ~parent:bundle ~name:"Labs"
          ~pos:{ Dmi.x = 520; y = row_y + 20 }
          ()
      in
      let report = Result.get_ok (Desktop.open_xml desk patient.labs_file) in
      let results =
        match Xml.Node.find_child "panel" report with
        | Some panel -> Xml.Node.find_children "result" panel
        | None -> []
      in
      List.iteri
        (fun j result ->
          let fields =
            must
              (Si_mark.Xml_mark.capture ~root:report
                 ~file_name:patient.labs_file result)
          in
          let label =
            Printf.sprintf "%s %s"
              (Option.value (Xml.Node.attr "test" result) ~default:"?")
              (Xml.Node.text_content result)
          in
          ignore
            (must
               (Slimpad.add_scrap app ~parent:labs_bundle ~name:label
                  ~mark_type:"xml" ~fields
                  ~pos:{ Dmi.x = 530 + (j mod 2 * 90);
                         y = row_y + 35 + (j / 2 * 16) }
                  ())))
        results;
      (* Column 4: to-do list, marked into the note's plan section. *)
      List.iteri
        (fun j todo ->
          let span = Option.get (Si_textdoc.Textdoc.find_first note todo) in
          let fields =
            must
              (Si_mark.Text_mark.capture note ~file_name:patient.note_file
                 span)
          in
          let scrap =
            must
              (Slimpad.add_scrap app ~parent:bundle ~name:("TODO: " ^ todo)
                 ~mark_type:"text" ~fields
                 ~pos:{ Dmi.x = 640; y = row_y + 20 + (j * 18) }
                 ())
          in
          Dmi.annotate_scrap t scrap "to-do")
        patient.todos)
    spec.patients;
  pad
