(* Deterministic PRNG (splitmix64-style) so workloads are reproducible
   across runs and platforms without touching the global Random state. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int) (Int64.of_int bound))

let pick t items =
  match items with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth items (int t (List.length items))

let float t bound = Float.of_int (int t 10_000) /. 10_000. *. bound
let bool t = int t 2 = 0
