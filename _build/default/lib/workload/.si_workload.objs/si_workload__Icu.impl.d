lib/workload/icu.ml: List Option Printf Result Rng Si_mark Si_slim Si_slimpad Si_spreadsheet Si_textdoc Si_xmlk
