lib/workload/concordance.mli: Si_mark Si_slim Si_slimpad
