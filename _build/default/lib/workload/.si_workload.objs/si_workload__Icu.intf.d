lib/workload/icu.mli: Si_mark Si_slim Si_slimpad
