lib/workload/atc.mli: Si_mark Si_slim Si_slimpad
