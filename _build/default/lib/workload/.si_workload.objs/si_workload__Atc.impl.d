lib/workload/atc.ml: Hashtbl List Option Printf Result Rng Si_mark Si_slim Si_slimpad Si_spreadsheet
