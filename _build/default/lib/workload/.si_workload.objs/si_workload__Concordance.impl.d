lib/workload/concordance.ml: List Printf Result Si_mark Si_slim Si_slimpad Si_textdoc String
