lib/workload/rng.mli:
