module Desktop = Si_mark.Desktop
module Dmi = Si_slim.Dmi
module Slimpad = Si_slimpad.Slimpad
module Wb = Si_spreadsheet.Workbook

type spec = {
  flights_file : string;
  flights_sheet : string;
  sectors : (string * string list) list;
}

let airlines = [ "UAL"; "DAL"; "AAL"; "SWA"; "ASA"; "QXE" ]
let fixes = [ "BTG"; "OLM"; "UBG"; "HQM"; "YKM"; "DSD" ]
let sector_names = [ "North"; "South"; "Coastal" ]

let build_desktop ?(flights = 12) ~seed desk =
  let rng = Rng.create seed in
  let flights_file = "flights.xls" in
  let flights_sheet = "Strips" in
  let wb = Wb.create ~sheet_names:[ flights_sheet ] () in
  let set a v = Wb.set wb ~sheet_name:flights_sheet a v in
  set "A1" "Callsign";
  set "B1" "Type";
  set "C1" "Altitude";
  set "D1" "Fix";
  set "E1" "ETA";
  let assignments = Hashtbl.create 8 in
  for i = 1 to flights do
    let callsign =
      Printf.sprintf "%s%d" (Rng.pick rng airlines) (100 + Rng.int rng 900)
    in
    let row = string_of_int (i + 1) in
    set ("A" ^ row) callsign;
    set ("B" ^ row) (Rng.pick rng [ "B738"; "A320"; "E175"; "DH8D" ]);
    set ("C" ^ row) (string_of_int ((180 + Rng.int rng 180) * 100));
    set ("D" ^ row) (Rng.pick rng fixes);
    set ("E" ^ row)
      (Printf.sprintf "%02d:%02d" (Rng.int rng 24) (Rng.int rng 60));
    let sector = Rng.pick rng sector_names in
    let existing =
      Option.value (Hashtbl.find_opt assignments sector) ~default:[]
    in
    Hashtbl.replace assignments sector (existing @ [ (callsign, i + 1) ])
  done;
  Desktop.add_workbook desk flights_file wb;
  {
    flights_file;
    flights_sheet;
    sectors =
      List.filter_map
        (fun name ->
          Option.map
            (fun flights -> (name, List.map fst flights))
            (Hashtbl.find_opt assignments name))
        sector_names;
  }

(* Row of a callsign in the flights sheet, looked up by value. *)
let row_of_callsign wb sheet callsign =
  let rec scan row =
    if row > 2000 then None
    else
      let display = Wb.display wb ~sheet_name:sheet ("A" ^ string_of_int row) in
      if display = callsign then Some row
      else if display = "" then None
      else scan (row + 1)
  in
  scan 2

let must = function
  | Ok v -> v
  | Error msg -> failwith ("Atc.build_board: " ^ msg)

let build_board app spec =
  let t = Slimpad.dmi app in
  let desk = Slimpad.desktop app in
  let wb = Result.get_ok (Desktop.open_workbook desk spec.flights_file) in
  let pad = Slimpad.new_pad app "Sector Board" in
  let root = Dmi.root_bundle t pad in
  List.iteri
    (fun i (sector, callsigns) ->
      let bundle =
        Slimpad.add_bundle app ~parent:root ~name:(sector ^ " sector")
          ~pos:{ Dmi.x = 10 + (i * 260); y = 10 }
          ()
      in
      List.iteri
        (fun j callsign ->
          match row_of_callsign wb spec.flights_sheet callsign with
          | None -> failwith ("Atc.build_board: lost flight " ^ callsign)
          | Some row ->
              ignore
                (must
                   (Slimpad.add_scrap app ~parent:bundle ~name:callsign
                      ~mark_type:"excel"
                      ~fields:
                        [
                          ("fileName", spec.flights_file);
                          ("sheetName", spec.flights_sheet);
                          ("range", Printf.sprintf "A%d:E%d" row row);
                        ]
                      ~pos:{ Dmi.x = 15 + (i * 260); y = 30 + (j * 18) }
                      ())))
        callsigns)
    spec.sectors;
  pad
