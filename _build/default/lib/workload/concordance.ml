module Desktop = Si_mark.Desktop
module Dmi = Si_slim.Dmi
module Slimpad = Si_slimpad.Slimpad
module Td = Si_textdoc.Textdoc

let play_file = "hamlet-iii-i.txt"

(* Hamlet, Act III Scene i — public domain. *)
let play_text =
  String.concat "\n"
    [
      "To be, or not to be, that is the question:";
      "Whether 'tis nobler in the mind to suffer";
      "The slings and arrows of outrageous fortune,";
      "Or to take arms against a sea of troubles";
      "And by opposing end them. To die-to sleep,";
      "No more; and by a sleep to say we end";
      "The heart-ache and the thousand natural shocks";
      "That flesh is heir to: 'tis a consummation";
      "Devoutly to be wish'd. To die, to sleep;";
      "To sleep, perchance to dream-ay, there's the rub:";
      "For in that sleep of death what dreams may come,";
      "When we have shuffled off this mortal coil,";
      "Must give us pause-there's the respect";
      "That makes calamity of so long life.";
      "For who would bear the whips and scorns of time,";
      "Th'oppressor's wrong, the proud man's contumely,";
      "The pangs of dispriz'd love, the law's delay,";
      "The insolence of office, and the spurns";
      "That patient merit of th'unworthy takes,";
      "When he himself might his quietus make";
      "With a bare bodkin? Who would fardels bear,";
      "To grunt and sweat under a weary life,";
      "But that the dread of something after death,";
      "The undiscovere'd country, from whose bourn";
      "No traveller returns, puzzles the will,";
      "And makes us rather bear those ills we have";
      "Than fly to others that we know not of?";
      "Thus conscience doth make cowards of us all,";
      "And thus the native hue of resolution";
      "Is sicklied o'er with the pale cast of thought,";
      "And enterprises of great pith and moment";
      "With this regard their currents turn awry";
      "And lose the name of action.";
    ]

let install_play desk = Desktop.add_text desk play_file (Td.of_string play_text)

let must = function
  | Ok v -> v
  | Error msg -> failwith ("Concordance.build: " ^ msg)

let build app ~terms =
  let t = Slimpad.dmi app in
  let desk = Slimpad.desktop app in
  let doc = Result.get_ok (Desktop.open_text desk play_file) in
  let pad = Slimpad.new_pad app "Concordance" in
  let root = Dmi.root_bundle t pad in
  List.iteri
    (fun i term ->
      let bundle =
        Slimpad.add_bundle app ~parent:root ~name:term
          ~pos:{ Dmi.x = 10 + (i * 170); y = 10 }
          ()
      in
      List.iteri
        (fun j span ->
          let line =
            match Td.position_of_offset doc span.Td.offset with
            | Some p -> p.Td.line
            | None -> 0
          in
          let fields =
            must (Si_mark.Text_mark.capture doc ~file_name:play_file span)
          in
          ignore
            (must
               (Slimpad.add_scrap app ~parent:bundle
                  ~name:(Printf.sprintf "%s (line %d)" term line)
                  ~mark_type:"text" ~fields
                  ~pos:{ Dmi.x = 15 + (i * 170); y = 30 + (j * 16) }
                  ())))
        (Td.find_all doc term))
    terms;
  pad
