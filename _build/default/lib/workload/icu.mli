(** The intensive-care workload (paper §2, Fig 2; §3, Fig 4).

    The paper's field data — residents' worksheets from an ICU — is
    proprietary; this generator synthesizes the same {e shape}: per
    patient, a row on the worksheet with (1) identification, (2) a problem
    list, (3) selected labs and vital signs, (4) a to-do list; the
    worksheet is a bundle of per-patient bundles whose scraps mark into a
    medication spreadsheet, per-patient XML lab reports, and free-text
    notes. Deterministic in [seed]. *)

type patient = {
  name : string;
  meds_range : string;  (** A1 range of the patient's rows in the workbook *)
  labs_file : string;
  note_file : string;
  problems : string list;
  todos : string list;
}

type spec = {
  patients : patient list;
  meds_file : string;
  meds_sheet : string;
}

val build_desktop :
  ?patients:int -> ?meds_per_patient:int -> ?labs_per_patient:int ->
  seed:int -> Si_mark.Desktop.t -> spec
(** Populates the desktop with the medication workbook, one lab-report XML
    and one clinical note per patient. Defaults: 4 patients, 3 meds, 6
    labs. *)

val build_worksheet : Si_slimpad.Slimpad.t -> spec -> Si_slim.Dmi.pad
(** The resident's worksheet (Fig 2 bottom): a pad whose root holds one
    bundle per patient; each patient bundle holds problem scraps (text
    marks into the note), medication scraps (Excel marks), a nested lab
    bundle (XML marks), and to-do scraps (text marks), 2-D positions laid
    out in worksheet rows. Raises [Failure] if a mark cannot be created —
    a bug, since the generator made the documents. *)
