(** Deterministic PRNG (splitmix64-style), so workloads are reproducible
    across runs and platforms without touching the global [Random]
    state. *)

type t

val create : int -> t
val next : t -> int64
val int : t -> int -> int
(** Uniform in [\[0, bound)]. @raise Invalid_argument on non-positive
    bounds. *)

val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on the empty list. *)

val float : t -> float -> float
(** Uniform-ish in [\[0, bound)], quantized to 1/10000. *)

val bool : t -> bool
