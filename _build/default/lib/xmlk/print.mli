(** XML serialization. *)

val to_string : ?decl:bool -> Node.t -> string
(** Compact, single-line serialization. [decl] (default [false]) prepends the
    [<?xml version="1.0" encoding="UTF-8"?>] declaration. Round-trips with
    {!Parse.node} up to whitespace-free input. *)

val to_string_pretty : ?decl:bool -> ?indent:int -> Node.t -> string
(** Indented serialization (default [indent] 2). Elements with mixed content
    (any text or CDATA child) are kept on one line, so re-parsing followed by
    {!Node.strip_whitespace} restores the original tree. *)

val to_file : ?pretty:bool -> string -> Node.t -> unit
(** Write a document, with declaration, to a file. *)

val escape : string -> string
(** Escape the characters [<], [>], [&] and double quote for use in
    attribute values and text. *)
