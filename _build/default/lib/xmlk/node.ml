type t =
  | Element of element
  | Text of string
  | Cdata of string
  | Comment of string
  | Pi of string * string

and element = {
  name : string;
  attrs : (string * string) list;
  children : t list;
}

let element ?(attrs = []) name children = Element { name; attrs; children }
let text s = Text s
let cdata s = Cdata s
let comment s = Comment s

let name = function Element e -> Some e.name | _ -> None

let attr key = function
  | Element e -> List.assoc_opt key e.attrs
  | Text _ | Cdata _ | Comment _ | Pi _ -> None

let attr_exn key node =
  match attr key node with Some v -> v | None -> raise Not_found

let children = function
  | Element e -> e.children
  | Text _ | Cdata _ | Comment _ | Pi _ -> []

let child_elements node =
  List.filter_map
    (function Element e -> Some e | _ -> None)
    (children node)

let find_child child_name node =
  List.find_opt
    (function Element e -> String.equal e.name child_name | _ -> false)
    (children node)

let find_children child_name node =
  List.filter
    (function Element e -> String.equal e.name child_name | _ -> false)
    (children node)

let rec text_content = function
  | Text s | Cdata s -> s
  | Comment _ | Pi _ -> ""
  | Element e -> String.concat "" (List.map text_content e.children)

let is_element = function Element _ -> true | _ -> false

let xml_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let is_whitespace = function
  | Text s -> String.for_all xml_space s
  | _ -> false

let rec fold f acc node =
  let acc = f acc node in
  List.fold_left (fold f) acc (children node)

let iter f node = fold (fun () n -> f n) () node
let descendants node = List.rev (fold (fun acc n -> n :: acc) [] node)

let descendant_elements node =
  List.rev
    (fold (fun acc n -> match n with Element e -> e :: acc | _ -> acc) [] node)

let size node = fold (fun n _ -> n + 1) 0 node

let rec depth = function
  | Text _ | Cdata _ | Comment _ | Pi _ -> 1
  | Element e -> 1 + List.fold_left (fun d c -> max d (depth c)) 0 e.children

let map_children f = function
  | Element e -> Element { e with children = f e.children }
  | other -> other

let set_attr key value = function
  | Element e ->
      Element { e with attrs = (key, value) :: List.remove_assoc key e.attrs }
  | other -> other

let rec strip_whitespace node =
  match node with
  | Element e ->
      let keep c = not (is_whitespace c) in
      let children = List.filter keep e.children in
      Element { e with children = List.map strip_whitespace children }
  | other -> other

let rec normalize node =
  match node with
  | Element e ->
      let rec merge = function
        | Text a :: Text b :: rest -> merge (Text (a ^ b) :: rest)
        | Text "" :: rest -> merge rest
        | child :: rest -> normalize child :: merge rest
        | [] -> []
      in
      Element { e with children = merge e.children }
  | other -> other

let sorted_attrs attrs =
  List.sort (fun (a, _) (b, _) -> String.compare a b) attrs

let rec equal a b =
  match (a, b) with
  | Text x, Text y | Cdata x, Cdata y | Comment x, Comment y ->
      String.equal x y
  | Pi (t1, c1), Pi (t2, c2) -> String.equal t1 t2 && String.equal c1 c2
  | Element x, Element y ->
      String.equal x.name y.name
      && sorted_attrs x.attrs = sorted_attrs y.attrs
      && List.length x.children = List.length y.children
      && List.for_all2 equal x.children y.children
  | (Element _ | Text _ | Cdata _ | Comment _ | Pi _), _ -> false

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp ppf = function
  | Text s -> Format.pp_print_string ppf (escape s)
  | Cdata s -> Format.fprintf ppf "<![CDATA[%s]]>" s
  | Comment s -> Format.fprintf ppf "<!--%s-->" s
  | Pi (t, c) -> Format.fprintf ppf "<?%s %s?>" t c
  | Element e ->
      Format.fprintf ppf "<%s" e.name;
      List.iter
        (fun (k, v) -> Format.fprintf ppf " %s=\"%s\"" k (escape v))
        e.attrs;
      if e.children = [] then Format.pp_print_string ppf "/>"
      else begin
        Format.pp_print_char ppf '>';
        List.iter (pp ppf) e.children;
        Format.fprintf ppf "</%s>" e.name
      end
