type step = { name : string option; index : int }
type target = Element_target | Attribute_target of string | Text_target
type t = { steps : step list; target : target }

type resolution =
  | Resolved_element of Node.t
  | Resolved_attribute of string * string
  | Resolved_text of string

let root = { steps = [ { name = None; index = 1 } ]; target = Element_target }

let step_to_string { name; index } =
  let base = match name with None -> "*" | Some n -> n in
  if index = 1 then base else Printf.sprintf "%s[%d]" base index

let to_string { steps; target } =
  let body = String.concat "/" (List.map step_to_string steps) in
  let suffix =
    match target with
    | Element_target -> ""
    | Attribute_target a -> "/@" ^ a
    | Text_target -> "/text()"
  in
  "/" ^ body ^ suffix

let valid_name s =
  s <> ""
  && (match s.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' -> true
     | c -> Char.code c >= 0x80)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' ->
             true
         | c -> Char.code c >= 0x80)
       s

let parse_step s =
  match String.index_opt s '[' with
  | None ->
      if s = "*" then Ok { name = None; index = 1 }
      else if valid_name s then Ok { name = Some s; index = 1 }
      else Error (Printf.sprintf "malformed step %S" s)
  | Some bracket ->
      if String.length s = 0 || s.[String.length s - 1] <> ']' then
        Error (Printf.sprintf "malformed step %S" s)
      else
        let name = String.sub s 0 bracket in
        let digits =
          String.sub s (bracket + 1) (String.length s - bracket - 2)
        in
        (match int_of_string_opt digits with
        | Some index when index >= 1 && (name = "*" || valid_name name) ->
            Ok { name = (if name = "*" then None else Some name); index }
        | Some _ | None -> Error (Printf.sprintf "malformed step %S" s))

let of_string input =
  if String.length input = 0 || input.[0] <> '/' then
    Error "a path must start with '/'"
  else
    let parts =
      String.split_on_char '/' (String.sub input 1 (String.length input - 1))
    in
    let rec build acc = function
      | [] ->
          if acc = [] then Error "empty path"
          else Ok { steps = List.rev acc; target = Element_target }
      | [ "text()" ] when acc <> [] ->
          Ok { steps = List.rev acc; target = Text_target }
      | [ last ]
        when String.length last > 1 && last.[0] = '@' && acc <> [] ->
          let attribute = String.sub last 1 (String.length last - 1) in
          Ok { steps = List.rev acc; target = Attribute_target attribute }
      | part :: rest -> (
          match parse_step part with
          | Ok step -> build (step :: acc) rest
          | Error _ as e -> e)
    in
    build [] parts

let of_string_exn input =
  match of_string input with
  | Ok p -> p
  | Error msg -> invalid_arg ("Path.of_string_exn: " ^ msg)

let equal a b = a = b
let pp ppf p = Format.pp_print_string ppf (to_string p)

let step_matches step (e : Node.element) =
  match step.name with None -> true | Some n -> String.equal n e.name

(* Select the [index]-th element child of [node] matching [step]. *)
let select_child node step =
  let rec scan remaining = function
    | [] -> None
    | (Node.Element e as c) :: rest ->
        if step_matches step e then
          if remaining = 1 then Some c else scan (remaining - 1) rest
        else scan remaining rest
    | _ :: rest -> scan remaining rest
  in
  scan step.index (Node.children node)

let resolve document path =
  let walk_root step =
    match document with
    | Node.Element e when step_matches step e && step.index = 1 ->
        Some document
    | _ -> None
  in
  let rec walk node = function
    | [] -> Some node
    | step :: rest -> (
        match select_child node step with
        | Some child -> walk child rest
        | None -> None)
  in
  let element =
    match path.steps with
    | [] -> None
    | first :: rest -> (
        match walk_root first with
        | Some node -> walk node rest
        | None -> None)
  in
  match (element, path.target) with
  | None, _ -> None
  | Some node, Element_target -> Some (Resolved_element node)
  | Some node, Text_target -> Some (Resolved_text (Node.text_content node))
  | Some node, Attribute_target a -> (
      match Node.attr a node with
      | Some v -> Some (Resolved_attribute (a, v))
      | None -> None)

let resolve_element document path =
  match resolve document { path with target = Element_target } with
  | Some (Resolved_element node) -> Some node
  | Some (Resolved_attribute _ | Resolved_text _) | None -> None

(* Index of [child] among same-named element siblings inside [children]
   (physical equality), 1-based. *)
let sibling_index children child =
  let target_name =
    match child with Node.Element e -> e.name | _ -> assert false
  in
  let rec scan count = function
    | [] -> None
    | (Node.Element e as c) :: rest ->
        if String.equal e.name target_name then
          if c == child then Some (count + 1) else scan (count + 1) rest
        else scan count rest
    | _ :: rest -> scan count rest
  in
  scan 0 children

let path_of ~root:document target_node =
  if not (Node.is_element target_node) then None
  else
    let rec search node acc =
      if node == target_node then Some (List.rev acc)
      else
        let children = Node.children node in
        let rec try_children = function
          | [] -> None
          | (Node.Element _ as c) :: rest -> (
              match sibling_index children c with
              | None -> try_children rest
              | Some index ->
                  let step = { name = Node.name c; index } in
                  (match search c (step :: acc) with
                  | Some _ as found -> found
                  | None -> try_children rest))
          | _ :: rest -> try_children rest
        in
        try_children children
    in
    match document with
    | Node.Element e ->
        let first = { name = Some e.name; index = 1 } in
        (match search document [ first ] with
        | Some steps -> Some { steps; target = Element_target }
        | None -> None)
    | _ -> None

let all_element_paths document =
  match document with
  | Node.Element e ->
      let first = { name = Some e.name; index = 1 } in
      let rec walk node steps acc =
        let here = ({ steps = List.rev steps; target = Element_target }, node) in
        let children = Node.children node in
        let _, acc =
          List.fold_left
            (fun (counts, acc) c ->
              match c with
              | Node.Element ce ->
                  let n =
                    match List.assoc_opt ce.name counts with
                    | Some n -> n + 1
                    | None -> 1
                  in
                  let counts = (ce.name, n) :: List.remove_assoc ce.name counts in
                  let step = { name = Some ce.name; index = n } in
                  (counts, walk c (step :: steps) acc)
              | _ -> (counts, acc))
            ([], acc) children
        in
        here :: acc
      in
      List.rev (walk document [ first ] [])
  | _ -> []

let parent path =
  match path.target with
  | Attribute_target _ | Text_target ->
      Some { path with target = Element_target }
  | Element_target -> (
      match List.rev path.steps with
      | [] | [ _ ] -> None
      | _ :: rest -> Some { steps = List.rev rest; target = Element_target })
