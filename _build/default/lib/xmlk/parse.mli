(** XML parser.

    A small, dependency-free, non-validating XML 1.0 parser sufficient for
    the repository's needs: elements, attributes, text, CDATA, comments,
    processing instructions, the five predefined entities plus numeric
    character references, and a skipped DOCTYPE. Namespaces are not
    interpreted (prefixed names are kept verbatim). *)

type error = { line : int; column : int; message : string }

exception Parse_error of error

val error_to_string : error -> string

val node : string -> (Node.t, error) result
(** Parse a complete document and return its root element. Leading
    prolog/comments/PIs and trailing whitespace are accepted and dropped. *)

val node_exn : string -> Node.t
(** @raise Parse_error on malformed input. *)

val file : string -> (Node.t, error) result
(** Read and parse a file. I/O failures are reported as an [error] at
    position 0:0. *)

val fragment : string -> (Node.t list, error) result
(** Parse a sequence of sibling nodes (no single-root requirement). *)
