lib/xmlk/path.mli: Format Node
