lib/xmlk/parse.ml: Buffer Char In_channel List Node Printf String
