lib/xmlk/print.mli: Node
