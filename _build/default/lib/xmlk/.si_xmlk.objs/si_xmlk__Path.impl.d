lib/xmlk/path.ml: Char Format List Node Printf String
