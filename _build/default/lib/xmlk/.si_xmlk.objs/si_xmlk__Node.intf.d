lib/xmlk/node.mli: Format
