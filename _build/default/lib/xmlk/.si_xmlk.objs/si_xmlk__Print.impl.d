lib/xmlk/print.ml: Buffer List Node Out_channel String
