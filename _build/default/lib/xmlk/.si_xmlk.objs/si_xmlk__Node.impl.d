lib/xmlk/node.ml: Buffer Format List String
