lib/xmlk/parse.mli: Node
