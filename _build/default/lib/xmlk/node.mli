(** XML document tree.

    This is the DOM used across the repository: by the XML base-source
    substrate (XML marks address into these trees), by TRIM persistence, and
    by the RDF/XML-style serialization of the SLIM store. *)

type t =
  | Element of element
  | Text of string
  | Cdata of string
  | Comment of string
  | Pi of string * string  (** processing instruction: target, content *)

and element = {
  name : string;
  attrs : (string * string) list;
  children : t list;
}

(** {1 Construction} *)

val element : ?attrs:(string * string) list -> string -> t list -> t
(** [element name children] builds an element node. Attribute order is
    preserved. *)

val text : string -> t
val cdata : string -> t
val comment : string -> t

(** {1 Accessors} *)

val name : t -> string option
(** Element name, [None] for non-element nodes. *)

val attr : string -> t -> string option
(** [attr key node] returns the attribute value, if [node] is an element
    carrying [key]. *)

val attr_exn : string -> t -> string
(** Like {!attr} but raises [Not_found]. *)

val children : t -> t list
(** Child nodes of an element; [[]] for other nodes. *)

val child_elements : t -> element list
(** Element children only, in document order. *)

val find_child : string -> t -> t option
(** First child element with the given name. *)

val find_children : string -> t -> t list
(** All child elements with the given name, in document order. *)

val text_content : t -> string
(** Concatenation of all text and CDATA in the subtree, in document order. *)

val is_element : t -> bool
val is_whitespace : t -> bool
(** [true] for text nodes that contain only XML whitespace. *)

(** {1 Traversal} *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over the subtree rooted at the node (including it). *)

val iter : (t -> unit) -> t -> unit
val descendants : t -> t list
(** All nodes of the subtree in pre-order, including the root. *)

val descendant_elements : t -> element list
val size : t -> int
(** Number of nodes in the subtree. *)

val depth : t -> int
(** Height of the subtree: a leaf has depth 1. *)

(** {1 Editing} *)

val map_children : (t list -> t list) -> t -> t
(** Replace an element's child list; identity on non-elements. *)

val set_attr : string -> string -> t -> t
(** Add or replace one attribute; identity on non-elements. *)

val strip_whitespace : t -> t
(** Remove whitespace-only text nodes recursively (useful after parsing
    pretty-printed input). *)

val normalize : t -> t
(** Merge adjacent text-node children and drop empty text nodes, recursively
    (the DOM "normalize" operation). Two trees that serialize identically
    compare equal after normalization. *)

(** {1 Comparison} *)

val equal : t -> t -> bool
(** Structural equality. Attribute {e order} is ignored; everything else,
    including whitespace text nodes, is significant. *)

val pp : Format.formatter -> t -> unit
(** Debug printer (single line, escaped). *)

(**/**)

val escape : string -> string
(* Shared with {!Print.escape}; use that one. *)
