type error = { line : int; column : int; message : string }

exception Parse_error of error

let error_to_string e =
  Printf.sprintf "XML parse error at %d:%d: %s" e.line e.column e.message

(* The cursor tracks absolute offset; line/column are recomputed only when an
   error is raised, so the happy path stays allocation-free. *)
type cursor = { input : string; mutable pos : int }

let position_of_offset input offset =
  let line = ref 1 and bol = ref 0 in
  for i = 0 to min offset (String.length input) - 1 do
    if input.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  (!line, offset - !bol + 1)

let fail cur message =
  let line, column = position_of_offset cur.input cur.pos in
  raise (Parse_error { line; column; message })

let eof cur = cur.pos >= String.length cur.input
let peek cur = if eof cur then '\000' else cur.input.[cur.pos]

let peek2 cur =
  if cur.pos + 1 >= String.length cur.input then '\000'
  else cur.input.[cur.pos + 1]

let advance cur = cur.pos <- cur.pos + 1

let expect cur c =
  if peek cur = c then advance cur
  else fail cur (Printf.sprintf "expected %C, found %C" c (peek cur))

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space cur =
  while (not (eof cur)) && is_space (peek cur) do
    advance cur
  done

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | c -> Char.code c >= 0x80

let is_name_char c =
  is_name_start c
  || match c with '0' .. '9' | '-' | '.' -> true | _ -> false

let read_name cur =
  if not (is_name_start (peek cur)) then fail cur "expected a name";
  let start = cur.pos in
  while (not (eof cur)) && is_name_char (peek cur) do
    advance cur
  done;
  String.sub cur.input start (cur.pos - start)

(* Scans forward to [stop] (a literal substring), returning the text before
   it and leaving the cursor just past it. *)
let read_until cur stop =
  let len = String.length stop in
  let limit = String.length cur.input - len in
  let rec scan i =
    if i > limit then fail cur (Printf.sprintf "unterminated, expected %S" stop)
    else if String.sub cur.input i len = stop then i
    else scan (i + 1)
  in
  let at = scan cur.pos in
  let contents = String.sub cur.input cur.pos (at - cur.pos) in
  cur.pos <- at + len;
  contents

let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

(* Cursor is just past '&'. *)
let read_entity cur buf =
  let body = read_until cur ";" in
  match body with
  | "lt" -> Buffer.add_char buf '<'
  | "gt" -> Buffer.add_char buf '>'
  | "amp" -> Buffer.add_char buf '&'
  | "apos" -> Buffer.add_char buf '\''
  | "quot" -> Buffer.add_char buf '"'
  | _ ->
      let parse_code s base = int_of_string_opt (base ^ s) in
      let code =
        if String.length body > 1 && body.[0] = '#' then
          if body.[1] = 'x' || body.[1] = 'X' then
            parse_code (String.sub body 2 (String.length body - 2)) "0x"
          else parse_code (String.sub body 1 (String.length body - 1)) ""
        else None
      in
      (match code with
      | Some c when c >= 0 && c <= 0x10FFFF -> add_utf8 buf c
      | Some _ | None ->
          fail cur (Printf.sprintf "unknown entity &%s;" body))

let read_text cur =
  let buf = Buffer.create 32 in
  let rec loop () =
    if eof cur || peek cur = '<' then Buffer.contents buf
    else if peek cur = '&' then begin
      advance cur;
      read_entity cur buf;
      loop ()
    end
    else begin
      Buffer.add_char buf (peek cur);
      advance cur;
      loop ()
    end
  in
  loop ()

let read_quoted cur =
  let quote = peek cur in
  if quote <> '"' && quote <> '\'' then fail cur "expected a quoted value";
  advance cur;
  let buf = Buffer.create 16 in
  let rec loop () =
    if eof cur then fail cur "unterminated attribute value"
    else if peek cur = quote then begin
      advance cur;
      Buffer.contents buf
    end
    else if peek cur = '&' then begin
      advance cur;
      read_entity cur buf;
      loop ()
    end
    else begin
      Buffer.add_char buf (peek cur);
      advance cur;
      loop ()
    end
  in
  loop ()

let read_attrs cur =
  let rec loop acc =
    skip_space cur;
    if eof cur then fail cur "unterminated start tag"
    else
      match peek cur with
      | '>' | '/' | '?' -> List.rev acc
      | _ ->
          let key = read_name cur in
          skip_space cur;
          expect cur '=';
          skip_space cur;
          let value = read_quoted cur in
          loop ((key, value) :: acc)
  in
  loop []

(* Cursor is just past "<!": comment or doctype or CDATA. *)
let read_bang cur =
  if peek cur = '-' && peek2 cur = '-' then begin
    advance cur;
    advance cur;
    Some (Node.Comment (read_until cur "-->"))
  end
  else if
    cur.pos + 7 <= String.length cur.input
    && String.sub cur.input cur.pos 7 = "[CDATA["
  then begin
    cur.pos <- cur.pos + 7;
    Some (Node.Cdata (read_until cur "]]>"))
  end
  else begin
    (* DOCTYPE (or other declaration): skip to the matching '>', allowing one
       level of bracketed internal subset. *)
    let rec skip depth =
      if eof cur then fail cur "unterminated <! declaration"
      else
        match peek cur with
        | '[' ->
            advance cur;
            skip (depth + 1)
        | ']' ->
            advance cur;
            skip (depth - 1)
        | '>' when depth = 0 -> advance cur
        | _ ->
            advance cur;
            skip depth
    in
    skip 0;
    None
  end

(* Cursor is just past "<?". *)
let read_pi cur =
  let target = read_name cur in
  skip_space cur;
  let contents = read_until cur "?>" in
  Node.Pi (target, contents)

let rec read_element cur =
  (* Cursor is just past '<' at a name-start character. *)
  let name = read_name cur in
  let attrs = read_attrs cur in
  if peek cur = '/' then begin
    advance cur;
    expect cur '>';
    Node.Element { name; attrs; children = [] }
  end
  else begin
    expect cur '>';
    let children = read_children cur name in
    Node.Element { name; attrs; children }
  end

and read_children cur parent =
  let rec loop acc =
    if eof cur then fail cur (Printf.sprintf "unterminated element <%s>" parent)
    else if peek cur = '<' then
      if peek2 cur = '/' then begin
        advance cur;
        advance cur;
        let closing = read_name cur in
        skip_space cur;
        expect cur '>';
        if not (String.equal closing parent) then
          fail cur
            (Printf.sprintf "mismatched tag: <%s> closed by </%s>" parent
               closing);
        List.rev acc
      end
      else loop_node acc
    else
      let s = read_text cur in
      loop (if s = "" then acc else Node.Text s :: acc)
  and loop_node acc =
    advance cur;
    match peek cur with
    | '!' ->
        advance cur;
        (match read_bang cur with
        | Some node -> loop (node :: acc)
        | None -> loop acc)
    | '?' ->
        advance cur;
        loop (read_pi cur :: acc)
    | _ -> loop (read_element cur :: acc)
  in
  loop []

let read_misc cur =
  (* Prolog / epilog content: whitespace, comments, PIs, doctype. Returns the
     nodes it kept (comments and PIs). *)
  let rec loop acc =
    skip_space cur;
    if (not (eof cur)) && peek cur = '<' then
      match peek2 cur with
      | '!' ->
          advance cur;
          advance cur;
          (match read_bang cur with
          | Some node -> loop (node :: acc)
          | None -> loop acc)
      | '?' ->
          advance cur;
          advance cur;
          loop (read_pi cur :: acc)
      | _ -> List.rev acc
    else List.rev acc
  in
  loop []

let node_exn input =
  let cur = { input; pos = 0 } in
  let _prolog = read_misc cur in
  if eof cur then fail cur "no root element";
  expect cur '<';
  let root = read_element cur in
  let _epilog = read_misc cur in
  skip_space cur;
  if not (eof cur) then fail cur "content after root element";
  root

let node input =
  match node_exn input with
  | root -> Ok root
  | exception Parse_error e -> Error e

let file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> node contents
  | exception Sys_error msg -> Error { line = 0; column = 0; message = msg }

let fragment input =
  let cur = { input; pos = 0 } in
  let rec loop acc =
    if eof cur then List.rev acc
    else if peek cur = '<' then
      match peek2 cur with
      | '!' ->
          advance cur;
          advance cur;
          (match read_bang cur with
          | Some n -> loop (n :: acc)
          | None -> loop acc)
      | '?' ->
          advance cur;
          advance cur;
          loop (read_pi cur :: acc)
      | '/' -> fail cur "unexpected closing tag"
      | _ ->
          advance cur;
          loop (read_element cur :: acc)
    else
      let s = read_text cur in
      loop (if s = "" then acc else Node.Text s :: acc)
  in
  match loop [] with
  | nodes -> Ok nodes
  | exception Parse_error e -> Error e
