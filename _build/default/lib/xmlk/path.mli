(** Slash-path addressing into XML trees — the paper's "xmlPath" (Fig 8).

    A path is a sequence of child steps starting at the document root, each
    selecting the [i]-th child element with a given name (1-based, among
    same-named siblings), optionally ending at an attribute or at the text
    content:

    {v /report/panel[2]/result[1]        element
       /report/panel[2]/result/@units    attribute
       /report/patient/text()            text content v}

    A step with no explicit index means [\[1\]]; [*] matches any element
    name. The first step names (and checks) the root element itself. *)

type step = { name : string option; index : int }
(** [name = None] encodes [*]. [index] is 1-based. *)

type target = Element_target | Attribute_target of string | Text_target

type t = { steps : step list; target : target }

type resolution =
  | Resolved_element of Node.t
  | Resolved_attribute of string * string  (** name, value *)
  | Resolved_text of string

val root : t
(** The path ["/*"]: the document root element. *)

val of_string : string -> (t, string) result
val of_string_exn : string -> t
val to_string : t -> string
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val resolve : Node.t -> t -> resolution option
(** [resolve root path] walks the path down from the document root element.
    Returns [None] when a step selects a missing child (or the root name
    does not match). *)

val resolve_element : Node.t -> t -> Node.t option
(** Like {!resolve} but only for element targets. *)

val path_of : root:Node.t -> Node.t -> t option
(** Compute the path of a node found {e physically} inside [root] — the mark
    module uses this when the user selects an element. [None] when the node
    is not a subterm of [root] or is not an element. *)

val all_element_paths : Node.t -> (t * Node.t) list
(** Every element of the tree with its path, in document order. Useful for
    enumeration-style mark creation and for tests. *)

val parent : t -> t option
(** Drop the last step (or demote an attribute/text target to its element).
    [None] for the root path. *)
