(** The reserved RDF/RDFS-style vocabulary of the metamodel (paper §4.3:
    "We represent the metamodel elements using RDF Schema").

    Resources and predicates in the [mm:]/[rdf:]/[rdfs:] namespaces are
    reserved: instance data never uses them as ordinary properties, and
    the validator skips them when checking connectors. *)

(** {1 Classes of metamodel elements} *)

val model : string
val construct : string
val literal_construct : string
val mark_construct : string
val connector : string

(** {1 Predicates} *)

val rdf_type : string
(** element -> its class/construct *)

val rdfs_label : string
(** human-readable name *)

val rdfs_subclass_of : string
(** generalization connector *)

val in_model : string
(** construct/connector -> model *)

val domain : string
(** connector -> source construct *)

val range : string
(** connector -> target construct *)

val predicate : string
(** connector -> instance predicate name *)

val min_card : string
val max_card : string
(** literal "n"; absent = unbounded *)

val conforms_to : string
(** schema-instance conformance *)

val reserved_prefixes : string list
val is_reserved_predicate : string -> bool
