(** Conformance checking of instance data against a model.

    This is the "schema-later" half of the paper's design (§3, §5):
    instance data can be created freely, and checked against a model
    after the fact. The validator reports, never rejects — SLIMPad-style
    applications stay minimally constraining. *)

type violation = {
  resource : string;       (** the offending instance *)
  predicate : string option;
  problem : string;        (** human-readable description *)
}

type report = { checked : int; violations : violation list }

val check_instance : Model.t -> string -> violation list
(** Violations of one instance: unknown properties (no connector on the
    instance's construct or its superconstructs), range mismatches
    (literal where a resource is required and vice versa; a resource
    whose type is not the range construct or a subconstruct; a dangling
    resource reference), and cardinality breaches. *)

val check : Model.t -> report
(** Check every instance of every construct of the model. *)

val is_valid : Model.t -> bool
val pp_violation : Format.formatter -> violation -> unit
val report_to_string : report -> string
