lib/metamodel/vocab.ml: List String
