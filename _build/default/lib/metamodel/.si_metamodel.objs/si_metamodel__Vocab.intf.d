lib/metamodel/vocab.mli:
