lib/metamodel/model.mli: Format Si_triple
