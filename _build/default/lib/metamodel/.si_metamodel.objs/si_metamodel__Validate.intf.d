lib/metamodel/validate.mli: Format Model
