lib/metamodel/model.ml: Buffer Format Hashtbl List Option Printf Si_triple String Vocab
