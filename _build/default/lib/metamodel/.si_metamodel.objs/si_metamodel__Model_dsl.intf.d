lib/metamodel/model_dsl.mli: Model Si_triple
