lib/metamodel/validate.ml: Buffer Format List Model Printf Si_triple String Vocab
