lib/metamodel/model_dsl.ml: Buffer In_channel List Model Printf Si_triple String
