module Trim = Si_triple.Trim
module Triple = Si_triple.Triple

type violation = {
  resource : string;
  predicate : string option;
  problem : string;
}

type report = { checked : int; violations : violation list }

let violation ?predicate resource problem = { resource; predicate; problem }

(* The construct an instance is typed by, if it belongs to this model. *)
let construct_of_instance m inst =
  match Model.instance_type (Model.trim m) inst with
  | None -> None
  | Some type_id ->
      List.find_opt
        (fun c -> c.Model.construct_id = type_id)
        (Model.constructs m)

let check_property_value m conn inst obj =
  let trim = Model.trim m in
  let range = conn.Model.conn_range in
  let pred = conn.Model.conn_predicate in
  match (range.Model.kind, obj) with
  | Model.Literal_construct, Triple.Literal _ -> []
  | Model.Literal_construct, Triple.Resource r ->
      [
        violation ~predicate:pred inst
          (Printf.sprintf "expected a literal %s, found resource <%s>"
             (Model.construct_name m range)
             r);
      ]
  | (Model.Construct | Model.Mark_construct), Triple.Literal l ->
      [
        violation ~predicate:pred inst
          (Printf.sprintf "expected a %s resource, found literal %S"
             (Model.construct_name m range)
             l);
      ]
  | (Model.Construct | Model.Mark_construct), Triple.Resource r -> (
      match Model.instance_type trim r with
      | None ->
          [
            violation ~predicate:pred inst
              (Printf.sprintf "dangling reference to <%s>" r);
          ]
      | Some type_id -> (
          match
            List.find_opt
              (fun c -> c.Model.construct_id = type_id)
              (Model.constructs m)
          with
          | None ->
              [
                violation ~predicate:pred inst
                  (Printf.sprintf "<%s> is typed outside this model" r);
              ]
          | Some actual ->
              if Model.is_subconstruct_of m ~sub:actual ~super:range then []
              else
                [
                  violation ~predicate:pred inst
                    (Printf.sprintf "expected a %s, found a %s (<%s>)"
                       (Model.construct_name m range)
                       (Model.construct_name m actual)
                       r);
                ]))

let check_instance m inst =
  let trim = Model.trim m in
  match construct_of_instance m inst with
  | None ->
      [ violation inst "instance is not typed by a construct of this model" ]
  | Some c ->
      let applicable = Model.connectors_of m c in
      let plain_props =
        Trim.select ~subject:inst trim
        |> List.filter (fun (tr : Triple.t) ->
               not (Vocab.is_reserved_predicate tr.predicate))
      in
      (* Unknown properties + range checks. *)
      let value_violations =
        List.concat_map
          (fun (tr : Triple.t) ->
            match
              List.find_opt
                (fun conn -> conn.Model.conn_predicate = tr.predicate)
                applicable
            with
            | None ->
                [
                  violation ~predicate:tr.predicate inst
                    (Printf.sprintf
                       "no connector %S on construct %s (or its supertypes)"
                       tr.predicate (Model.construct_name m c));
                ]
            | Some conn -> check_property_value m conn inst tr.object_)
          plain_props
      in
      (* Cardinalities for every applicable connector. *)
      let cardinality_violations =
        List.concat_map
          (fun conn ->
            let count =
              List.length
                (List.filter
                   (fun (tr : Triple.t) ->
                     tr.predicate = conn.Model.conn_predicate)
                   plain_props)
            in
            let { Model.min_card; max_card } = conn.Model.card in
            let too_few =
              if count < min_card then
                [
                  violation ~predicate:conn.Model.conn_predicate inst
                    (Printf.sprintf "%d value(s), at least %d required" count
                       min_card);
                ]
              else []
            in
            let too_many =
              match max_card with
              | Some n when count > n ->
                  [
                    violation ~predicate:conn.Model.conn_predicate inst
                      (Printf.sprintf "%d value(s), at most %d allowed" count n);
                  ]
              | Some _ | None -> []
            in
            too_few @ too_many)
          applicable
      in
      value_violations @ cardinality_violations

let check m =
  let instances =
    List.concat_map (fun c -> Model.instances_of m c) (Model.constructs m)
    |> List.sort_uniq String.compare
  in
  {
    checked = List.length instances;
    violations = List.concat_map (check_instance m) instances;
  }

let is_valid m = (check m).violations = []

let pp_violation ppf v =
  match v.predicate with
  | Some p -> Format.fprintf ppf "<%s>.%s: %s" v.resource p v.problem
  | None -> Format.fprintf ppf "<%s>: %s" v.resource v.problem

let report_to_string { checked; violations } =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "%d instance(s) checked, %d violation(s)\n" checked
       (List.length violations));
  List.iter
    (fun v ->
      Buffer.add_string buf (Format.asprintf "  %a\n" pp_violation v))
    violations;
  Buffer.contents buf
