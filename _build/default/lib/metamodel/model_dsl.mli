(** A textual model-definition language (the paper's "SLIM-ML", [24]).

    §4.4/§6: DMIs should be generated "from high-level specification,
    using techniques from domain-specific languages". This DSL is that
    specification syntax; parsing it defines the model over the metamodel
    (from which {!Si_slim.Generic_dmi} generates the interface). Example:

    {v model library

       literal String
       construct Book
       construct Reference
       mark Citation

       Reference isa Book

       Book.title       : String    [1..1]
       Book.writtenBy   : Author    [0..*]
       Reference.shelf  : String    [0..1]
       Author.name      : String    [1..1] v}

    Constructs may be declared implicitly by appearing in a property line
    (like [Author] above — it becomes a plain construct). Lines starting
    with [#] are comments; blank lines are ignored. Cardinalities default
    to [0..*] when omitted. *)

val parse : Si_triple.Trim.t -> string -> (Model.t, string) result
(** Defines the model described by the text into the triple manager.
    Errors carry the line number. *)

val parse_file : Si_triple.Trim.t -> string -> (Model.t, string) result

val print : Model.t -> string
(** The model back as DSL text (deterministic order: constructs sorted,
    then generalizations, then properties). [parse] of the result
    reproduces the model. *)
