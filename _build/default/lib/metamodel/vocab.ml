(* The reserved RDF/RDFS-style vocabulary of the metamodel (paper §4.3:
   "We represent the metamodel elements using RDF Schema").

   Resources and predicates in the "mm:" / "rdf:" / "rdfs:" namespaces are
   reserved: instance data never uses them as ordinary properties, and the
   validator skips them when checking connectors. *)

(* Classes of metamodel elements. *)
let model = "mm:Model"
let construct = "mm:Construct"
let literal_construct = "mm:LiteralConstruct"
let mark_construct = "mm:MarkConstruct"
let connector = "mm:Connector"

(* Predicates. *)
let rdf_type = "rdf:type"                 (* element -> its class/construct *)
let rdfs_label = "rdfs:label"             (* human-readable name *)
let rdfs_subclass_of = "rdfs:subClassOf"  (* generalization connector *)
let in_model = "mm:inModel"               (* construct/connector -> model *)
let domain = "mm:domain"                  (* connector -> source construct *)
let range = "mm:range"                    (* connector -> target construct *)
let predicate = "mm:predicate"            (* connector -> instance predicate *)
let min_card = "mm:minCard"
let max_card = "mm:maxCard"               (* literal "n" or absent = unbounded *)
let conforms_to = "mm:conformsTo"         (* schema-instance conformance *)

let reserved_prefixes = [ "mm:"; "rdf:"; "rdfs:" ]

let is_reserved_predicate p =
  List.exists
    (fun prefix ->
      String.length p >= String.length prefix
      && String.sub p 0 (String.length prefix) = prefix)
    reserved_prefixes
