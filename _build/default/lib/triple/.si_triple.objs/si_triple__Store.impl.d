lib/triple/store.ml: Fun Hashtbl List Mutex String Triple
