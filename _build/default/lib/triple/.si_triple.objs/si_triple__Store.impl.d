lib/triple/store.ml: Array Fun Hashtbl List Mutex String Triple
