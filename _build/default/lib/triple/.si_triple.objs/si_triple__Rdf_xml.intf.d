lib/triple/rdf_xml.mli: Si_xmlk Store Trim
