lib/triple/triple.mli: Format
