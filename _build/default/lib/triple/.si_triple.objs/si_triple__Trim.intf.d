lib/triple/trim.mli: Si_xmlk Store Triple
