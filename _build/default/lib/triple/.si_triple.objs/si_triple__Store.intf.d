lib/triple/store.mli: Triple
