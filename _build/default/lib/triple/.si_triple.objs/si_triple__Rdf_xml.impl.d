lib/triple/rdf_xml.ml: List Printf Result Si_xmlk String Trim Triple
