lib/triple/triple.ml: Format Hashtbl Printf String
