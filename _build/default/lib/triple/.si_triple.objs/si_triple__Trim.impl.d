lib/triple/trim.ml: Hashtbl List Printf Queue Si_xmlk Store String Triple
