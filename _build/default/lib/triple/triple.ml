type obj = Resource of string | Literal of string

type t = { subject : string; predicate : string; object_ : obj }

let make subject predicate object_ = { subject; predicate; object_ }
let resource id = Resource id
let literal s = Literal s

let obj_equal a b =
  match (a, b) with
  | Resource x, Resource y | Literal x, Literal y -> String.equal x y
  | (Resource _ | Literal _), _ -> false

let equal a b =
  String.equal a.subject b.subject
  && String.equal a.predicate b.predicate
  && obj_equal a.object_ b.object_

let compare a b =
  let c = String.compare a.subject b.subject in
  if c <> 0 then c
  else
    let c = String.compare a.predicate b.predicate in
    if c <> 0 then c
    else
      match (a.object_, b.object_) with
      | Resource x, Resource y | Literal x, Literal y -> String.compare x y
      | Resource _, Literal _ -> -1
      | Literal _, Resource _ -> 1

let hash t = Hashtbl.hash t

let obj_to_string = function
  | Resource id -> "<" ^ id ^ ">"
  | Literal s -> "\"" ^ s ^ "\""

let to_string t =
  Printf.sprintf "(<%s> %s %s)" t.subject t.predicate (obj_to_string t.object_)

let pp ppf t = Format.pp_print_string ppf (to_string t)
let pp_obj ppf o = Format.pp_print_string ppf (obj_to_string o)
