module type S = sig
  type t

  val create : unit -> t
  val name : string
  val add : t -> Triple.t -> bool
  val remove : t -> Triple.t -> bool
  val mem : t -> Triple.t -> bool
  val size : t -> int
  val clear : t -> unit

  val select :
    ?subject:string -> ?predicate:string -> ?object_:Triple.obj -> t ->
    Triple.t list

  val count :
    ?subject:string -> ?predicate:string -> ?object_:Triple.obj -> t -> int

  val exists :
    ?subject:string -> ?predicate:string -> ?object_:Triple.obj -> t -> bool

  val iter : (Triple.t -> unit) -> t -> unit
  val fold : (Triple.t -> 'a -> 'a) -> t -> 'a -> 'a
  val to_list : t -> Triple.t list
  val add_all : t -> Triple.t list -> unit
end

let matches ?subject ?predicate ?object_ (t : Triple.t) =
  (match subject with None -> true | Some s -> String.equal s t.subject)
  && (match predicate with
     | None -> true
     | Some p -> String.equal p t.predicate)
  && match object_ with None -> true | Some o -> Triple.obj_equal o t.object_

module List_store = struct
  type t = { mutable triples : Triple.t list; mutable count : int }

  let name = "list"
  let create () = { triples = []; count = 0 }
  let mem t triple = List.exists (Triple.equal triple) t.triples

  let add t triple =
    if mem t triple then false
    else begin
      t.triples <- triple :: t.triples;
      t.count <- t.count + 1;
      true
    end

  let remove t triple =
    if mem t triple then begin
      t.triples <- List.filter (fun x -> not (Triple.equal triple x)) t.triples;
      t.count <- t.count - 1;
      true
    end
    else false

  let size t = t.count

  let clear t =
    t.triples <- [];
    t.count <- 0

  let select ?subject ?predicate ?object_ t =
    List.filter (matches ?subject ?predicate ?object_) t.triples

  let count ?subject ?predicate ?object_ t =
    match (subject, predicate, object_) with
    | None, None, None -> t.count
    | _ ->
        List.fold_left
          (fun n tr -> if matches ?subject ?predicate ?object_ tr then n + 1 else n)
          0 t.triples

  let exists ?subject ?predicate ?object_ t =
    match (subject, predicate, object_) with
    | None, None, None -> t.count > 0
    | _ -> List.exists (matches ?subject ?predicate ?object_) t.triples

  let iter f t = List.iter f t.triples
  let fold f t init = List.fold_left (fun acc x -> f x acc) init t.triples
  let to_list t = t.triples
  let add_all t triples = List.iter (fun x -> ignore (add t x)) triples
end

module Indexed_store = struct
  (* Primary set plus five secondary indexes: one per field, and two
     compound pair indexes (subject+predicate and predicate+object) so that
     the hot bound-SP / bound-PO lookups hit an exact bucket instead of
     post-filtering a single-key bucket. Index buckets may contain stale
     entries after a removal (and duplicates after a remove + re-add);
     they are cleaned lazily at query time. Each bucket remembers the
     removal stamp at which it was last cleaned, so stores that never (or
     rarely) remove pay nothing on select. *)
  type bucket = { mutable items : Triple.t list; mutable cleaned_at : int }

  type t = {
    all : (Triple.t, unit) Hashtbl.t;
    by_subject : (string, bucket) Hashtbl.t;
    by_predicate : (string, bucket) Hashtbl.t;
    by_object : (Triple.obj, bucket) Hashtbl.t;
    by_sp : (string * string, bucket) Hashtbl.t;
    by_po : (string * Triple.obj, bucket) Hashtbl.t;
    mutable removal_stamp : int;
  }

  let name = "indexed"

  let create () =
    {
      all = Hashtbl.create 256;
      by_subject = Hashtbl.create 64;
      by_predicate = Hashtbl.create 64;
      by_object = Hashtbl.create 64;
      by_sp = Hashtbl.create 64;
      by_po = Hashtbl.create 64;
      removal_stamp = 0;
    }

  let mem t triple = Hashtbl.mem t.all triple

  let bucket t table key =
    match Hashtbl.find_opt table key with
    | Some b -> b
    | None ->
        let b = { items = []; cleaned_at = t.removal_stamp } in
        Hashtbl.add table key b;
        b

  let add t triple =
    if mem t triple then false
    else begin
      Hashtbl.add t.all triple ();
      let push table key =
        let b = bucket t table key in
        b.items <- triple :: b.items
      in
      push t.by_subject triple.Triple.subject;
      push t.by_predicate triple.Triple.predicate;
      push t.by_object triple.Triple.object_;
      push t.by_sp (triple.Triple.subject, triple.Triple.predicate);
      push t.by_po (triple.Triple.predicate, triple.Triple.object_);
      true
    end

  let remove t triple =
    if mem t triple then begin
      Hashtbl.remove t.all triple;
      (* Indexes (including the pair indexes) are cleaned lazily in
         [live_bucket]. *)
      t.removal_stamp <- t.removal_stamp + 1;
      true
    end
    else false

  let size t = Hashtbl.length t.all

  let clear t =
    Hashtbl.reset t.all;
    Hashtbl.reset t.by_subject;
    Hashtbl.reset t.by_predicate;
    Hashtbl.reset t.by_object;
    Hashtbl.reset t.by_sp;
    Hashtbl.reset t.by_po;
    t.removal_stamp <- 0

  (* Live triples of a bucket. Fast path: no removal since the bucket was
     last cleaned, so its items are exact. Slow path: filter out stale
     entries and deduplicate (a triple removed and later re-added appears
     twice — the stale copy is indistinguishable from the live one), then
     write the clean list back. *)
  let live_bucket t table key =
    match Hashtbl.find_opt table key with
    | None -> []
    | Some b ->
        if b.cleaned_at = t.removal_stamp then b.items
        else begin
          let seen = Hashtbl.create 16 in
          let live =
            List.filter
              (fun triple ->
                Hashtbl.mem t.all triple
                && not (Hashtbl.mem seen triple)
                && begin
                     Hashtbl.add seen triple ();
                     true
                   end)
              b.items
          in
          b.items <- live;
          b.cleaned_at <- t.removal_stamp;
          live
        end

  let select ?subject ?predicate ?object_ t =
    match (subject, predicate, object_) with
    | None, None, None -> Hashtbl.fold (fun k () acc -> k :: acc) t.all []
    | Some s, Some p, Some o ->
        let tr = Triple.make s p o in
        if Hashtbl.mem t.all tr then [ tr ] else []
    | Some s, Some p, None -> live_bucket t t.by_sp (s, p)
    | Some s, None, Some o ->
        List.filter
          (fun (tr : Triple.t) -> Triple.obj_equal o tr.object_)
          (live_bucket t t.by_subject s)
    | Some s, None, None -> live_bucket t t.by_subject s
    | None, Some p, Some o -> live_bucket t t.by_po (p, o)
    | None, Some p, None -> live_bucket t t.by_predicate p
    | None, None, Some o -> live_bucket t t.by_object o

  let count ?subject ?predicate ?object_ t =
    match (subject, predicate, object_) with
    | None, None, None -> Hashtbl.length t.all
    | Some s, Some p, Some o ->
        if Hashtbl.mem t.all (Triple.make s p o) then 1 else 0
    | Some s, Some p, None -> List.length (live_bucket t t.by_sp (s, p))
    | Some s, None, Some o ->
        List.fold_left
          (fun n (tr : Triple.t) ->
            if Triple.obj_equal o tr.object_ then n + 1 else n)
          0
          (live_bucket t t.by_subject s)
    | Some s, None, None -> List.length (live_bucket t t.by_subject s)
    | None, Some p, Some o -> List.length (live_bucket t t.by_po (p, o))
    | None, Some p, None -> List.length (live_bucket t t.by_predicate p)
    | None, None, Some o -> List.length (live_bucket t t.by_object o)

  let exists ?subject ?predicate ?object_ t =
    match (subject, predicate, object_) with
    | None, None, None -> Hashtbl.length t.all > 0
    | Some s, Some p, Some o -> Hashtbl.mem t.all (Triple.make s p o)
    | Some s, Some p, None -> live_bucket t t.by_sp (s, p) <> []
    | Some s, None, Some o ->
        List.exists
          (fun (tr : Triple.t) -> Triple.obj_equal o tr.object_)
          (live_bucket t t.by_subject s)
    | Some s, None, None -> live_bucket t t.by_subject s <> []
    | None, Some p, Some o -> live_bucket t t.by_po (p, o) <> []
    | None, Some p, None -> live_bucket t t.by_predicate p <> []
    | None, None, Some o -> live_bucket t t.by_object o <> []

  let iter f t = Hashtbl.iter (fun k () -> f k) t.all
  let fold f t init = Hashtbl.fold (fun k () acc -> f k acc) t.all init
  let to_list t = Hashtbl.fold (fun k () acc -> k :: acc) t.all []
  let add_all t triples = List.iter (fun x -> ignore (add t x)) triples
end

module Locked (Base : S) = struct
  type t = { base : Base.t; lock : Mutex.t }

  let name = "locked-" ^ Base.name
  let create () = { base = Base.create (); lock = Mutex.create () }

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> f t.base)

  let add t triple = locked t (fun s -> Base.add s triple)
  let remove t triple = locked t (fun s -> Base.remove s triple)
  let mem t triple = locked t (fun s -> Base.mem s triple)
  let size t = locked t Base.size
  let clear t = locked t Base.clear

  let select ?subject ?predicate ?object_ t =
    locked t (fun s -> Base.select ?subject ?predicate ?object_ s)

  let count ?subject ?predicate ?object_ t =
    locked t (fun s -> Base.count ?subject ?predicate ?object_ s)

  let exists ?subject ?predicate ?object_ t =
    locked t (fun s -> Base.exists ?subject ?predicate ?object_ s)

  (* Iteration holds the lock for its whole duration: callbacks must not
     re-enter the store. *)
  let iter f t = locked t (Base.iter f)
  let fold f t init = locked t (fun s -> Base.fold f s init)
  let to_list t = locked t Base.to_list
  let add_all t triples = locked t (fun s -> Base.add_all s triples)
end

module Locked_indexed = Locked (Indexed_store)

module Sharded_store = struct
  (* [shard_count] indexed stores, each behind its own mutex, with triples
     placed by a hash of their subject. Writes and subject-bound reads touch
     exactly one shard, so concurrent domains working on different subjects
     proceed in parallel instead of serializing on one global lock.
     Operations that cannot be routed by subject (predicate- or object-bound
     selects, [size], [to_list], ...) visit the shards one at a time, locking
     each in turn; they see a consistent snapshot of every individual shard
     but not of the store as a whole — same caveat as any store without a
     global lock. Locks are never nested, so the store cannot deadlock. *)
  module B = Indexed_store

  let shard_count = 8

  type t = { shards : B.t array; locks : Mutex.t array }

  let name = "sharded"

  let create () =
    {
      shards = Array.init shard_count (fun _ -> B.create ());
      locks = Array.init shard_count (fun _ -> Mutex.create ());
    }

  let shard_of subject = Hashtbl.hash subject land max_int mod shard_count

  let with_shard t i f =
    Mutex.lock t.locks.(i);
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.locks.(i))
      (fun () -> f t.shards.(i))

  let add t triple =
    with_shard t (shard_of triple.Triple.subject) (fun s -> B.add s triple)

  let remove t triple =
    with_shard t (shard_of triple.Triple.subject) (fun s -> B.remove s triple)

  let mem t triple =
    with_shard t (shard_of triple.Triple.subject) (fun s -> B.mem s triple)

  let fold_shards t f init =
    let acc = ref init in
    for i = 0 to shard_count - 1 do
      acc := with_shard t i (fun s -> f !acc s)
    done;
    !acc

  let size t = fold_shards t (fun n s -> n + B.size s) 0
  let clear t = fold_shards t (fun () s -> B.clear s) ()

  let select ?subject ?predicate ?object_ t =
    match subject with
    | Some s ->
        with_shard t (shard_of s) (fun sh ->
            B.select ~subject:s ?predicate ?object_ sh)
    | None ->
        List.concat
          (List.init shard_count (fun i ->
               with_shard t i (fun sh -> B.select ?predicate ?object_ sh)))

  let count ?subject ?predicate ?object_ t =
    match subject with
    | Some s ->
        with_shard t (shard_of s) (fun sh ->
            B.count ~subject:s ?predicate ?object_ sh)
    | None ->
        fold_shards t (fun n sh -> n + B.count ?predicate ?object_ sh) 0

  let exists ?subject ?predicate ?object_ t =
    match subject with
    | Some s ->
        with_shard t (shard_of s) (fun sh ->
            B.exists ~subject:s ?predicate ?object_ sh)
    | None ->
        let rec scan i =
          i < shard_count
          && (with_shard t i (fun sh -> B.exists ?predicate ?object_ sh)
             || scan (i + 1))
        in
        scan 0

  (* Per-shard locking: callbacks must not re-enter the store. *)
  let iter f t = fold_shards t (fun () s -> B.iter f s) ()
  let fold f t init = fold_shards t (fun acc s -> B.fold f s acc) init

  let to_list t =
    List.concat
      (List.init shard_count (fun i -> with_shard t i (fun s -> B.to_list s)))

  let add_all t triples = List.iter (fun x -> ignore (add t x)) triples
end

let implementations =
  [
    (List_store.name, (module List_store : S));
    (Indexed_store.name, (module Indexed_store : S));
    (Locked_indexed.name, (module Locked_indexed : S));
    (Sharded_store.name, (module Sharded_store : S));
  ]
