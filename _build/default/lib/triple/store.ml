module type S = sig
  type t

  val create : unit -> t
  val name : string
  val add : t -> Triple.t -> bool
  val remove : t -> Triple.t -> bool
  val mem : t -> Triple.t -> bool
  val size : t -> int
  val clear : t -> unit

  val select :
    ?subject:string -> ?predicate:string -> ?object_:Triple.obj -> t ->
    Triple.t list

  val iter : (Triple.t -> unit) -> t -> unit
  val fold : (Triple.t -> 'a -> 'a) -> t -> 'a -> 'a
  val to_list : t -> Triple.t list
  val add_all : t -> Triple.t list -> unit
end

let matches ?subject ?predicate ?object_ (t : Triple.t) =
  (match subject with None -> true | Some s -> String.equal s t.subject)
  && (match predicate with
     | None -> true
     | Some p -> String.equal p t.predicate)
  && match object_ with None -> true | Some o -> Triple.obj_equal o t.object_

module List_store = struct
  type t = { mutable triples : Triple.t list; mutable count : int }

  let name = "list"
  let create () = { triples = []; count = 0 }
  let mem t triple = List.exists (Triple.equal triple) t.triples

  let add t triple =
    if mem t triple then false
    else begin
      t.triples <- triple :: t.triples;
      t.count <- t.count + 1;
      true
    end

  let remove t triple =
    if mem t triple then begin
      t.triples <- List.filter (fun x -> not (Triple.equal triple x)) t.triples;
      t.count <- t.count - 1;
      true
    end
    else false

  let size t = t.count

  let clear t =
    t.triples <- [];
    t.count <- 0

  let select ?subject ?predicate ?object_ t =
    List.filter (matches ?subject ?predicate ?object_) t.triples

  let iter f t = List.iter f t.triples
  let fold f t init = List.fold_left (fun acc x -> f x acc) init t.triples
  let to_list t = t.triples
  let add_all t triples = List.iter (fun x -> ignore (add t x)) triples
end

module Indexed_store = struct
  (* Primary set plus three secondary indexes. Index buckets may contain
     stale entries after a removal (and duplicates after a remove + re-add);
     they are cleaned lazily at query time. Each bucket remembers the
     removal stamp at which it was last cleaned, so stores that never (or
     rarely) remove pay nothing on select. *)
  type bucket = { mutable items : Triple.t list; mutable cleaned_at : int }

  type t = {
    all : (Triple.t, unit) Hashtbl.t;
    by_subject : (string, bucket) Hashtbl.t;
    by_predicate : (string, bucket) Hashtbl.t;
    by_object : (Triple.obj, bucket) Hashtbl.t;
    mutable removal_stamp : int;
  }

  let name = "indexed"

  let create () =
    {
      all = Hashtbl.create 256;
      by_subject = Hashtbl.create 64;
      by_predicate = Hashtbl.create 64;
      by_object = Hashtbl.create 64;
      removal_stamp = 0;
    }

  let mem t triple = Hashtbl.mem t.all triple

  let bucket t table key =
    match Hashtbl.find_opt table key with
    | Some b -> b
    | None ->
        let b = { items = []; cleaned_at = t.removal_stamp } in
        Hashtbl.add table key b;
        b

  let add t triple =
    if mem t triple then false
    else begin
      Hashtbl.add t.all triple ();
      let push table key =
        let b = bucket t table key in
        b.items <- triple :: b.items
      in
      push t.by_subject triple.Triple.subject;
      push t.by_predicate triple.Triple.predicate;
      push t.by_object triple.Triple.object_;
      true
    end

  let remove t triple =
    if mem t triple then begin
      Hashtbl.remove t.all triple;
      (* Indexes are cleaned lazily in [live_bucket]. *)
      t.removal_stamp <- t.removal_stamp + 1;
      true
    end
    else false

  let size t = Hashtbl.length t.all

  let clear t =
    Hashtbl.reset t.all;
    Hashtbl.reset t.by_subject;
    Hashtbl.reset t.by_predicate;
    Hashtbl.reset t.by_object;
    t.removal_stamp <- 0

  (* Live triples of a bucket. Fast path: no removal since the bucket was
     last cleaned, so its items are exact. Slow path: filter out stale
     entries and deduplicate (a triple removed and later re-added appears
     twice — the stale copy is indistinguishable from the live one), then
     write the clean list back. *)
  let live_bucket t table key =
    match Hashtbl.find_opt table key with
    | None -> []
    | Some b ->
        if b.cleaned_at = t.removal_stamp then b.items
        else begin
          let seen = Hashtbl.create 16 in
          let live =
            List.filter
              (fun triple ->
                Hashtbl.mem t.all triple
                && not (Hashtbl.mem seen triple)
                && begin
                     Hashtbl.add seen triple ();
                     true
                   end)
              b.items
          in
          b.items <- live;
          b.cleaned_at <- t.removal_stamp;
          live
        end

  let select ?subject ?predicate ?object_ t =
    match (subject, predicate, object_) with
    | None, None, None -> Hashtbl.fold (fun k () acc -> k :: acc) t.all []
    | Some s, _, _ ->
        List.filter
          (matches ?predicate ?object_)
          (live_bucket t t.by_subject s)
    | None, _, Some o ->
        List.filter (matches ?predicate) (live_bucket t t.by_object o)
    | None, Some p, None -> live_bucket t t.by_predicate p

  let iter f t = Hashtbl.iter (fun k () -> f k) t.all
  let fold f t init = Hashtbl.fold (fun k () acc -> f k acc) t.all init
  let to_list t = Hashtbl.fold (fun k () acc -> k :: acc) t.all []
  let add_all t triples = List.iter (fun x -> ignore (add t x)) triples
end

module Locked (Base : S) = struct
  type t = { base : Base.t; lock : Mutex.t }

  let name = "locked-" ^ Base.name
  let create () = { base = Base.create (); lock = Mutex.create () }

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> f t.base)

  let add t triple = locked t (fun s -> Base.add s triple)
  let remove t triple = locked t (fun s -> Base.remove s triple)
  let mem t triple = locked t (fun s -> Base.mem s triple)
  let size t = locked t Base.size
  let clear t = locked t Base.clear

  let select ?subject ?predicate ?object_ t =
    locked t (fun s -> Base.select ?subject ?predicate ?object_ s)

  (* Iteration holds the lock for its whole duration: callbacks must not
     re-enter the store. *)
  let iter f t = locked t (Base.iter f)
  let fold f t init = locked t (fun s -> Base.fold f s init)
  let to_list t = locked t Base.to_list
  let add_all t triples = locked t (fun s -> Base.add_all s triples)
end

module Locked_indexed = Locked (Indexed_store)

let implementations =
  [
    (List_store.name, (module List_store : S));
    (Indexed_store.name, (module Indexed_store : S));
    (Locked_indexed.name, (module Locked_indexed : S));
  ]
