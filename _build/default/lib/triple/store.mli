(** Triple-store interface and the two implementations.

    TRIM's storage layer. The paper's prototype favoured a lightweight
    structure ({!List_store}); §6 reports that "some data sets are quite
    large and we are developing alternative implementation mechanisms" —
    {!Indexed_store} is that alternative: three hash indexes (by subject,
    by predicate, by object). Both expose the same set semantics
    (duplicate triples are not stored twice). *)

module type S = sig
  type t

  val create : unit -> t
  val name : string
  (** Implementation name, for benchmarks and logs. *)

  val add : t -> Triple.t -> bool
  (** [false] when the triple was already present. *)

  val remove : t -> Triple.t -> bool
  (** [false] when the triple was absent. *)

  val mem : t -> Triple.t -> bool
  val size : t -> int
  val clear : t -> unit

  val select :
    ?subject:string -> ?predicate:string -> ?object_:Triple.obj -> t ->
    Triple.t list
  (** The paper's TRIM query: "selection, where one or more of the triple
      fields is fixed, and the result is a set of triples". With no field
      fixed, returns everything. Order is unspecified. *)

  val iter : (Triple.t -> unit) -> t -> unit
  val fold : (Triple.t -> 'a -> 'a) -> t -> 'a -> 'a
  val to_list : t -> Triple.t list
  val add_all : t -> Triple.t list -> unit
end

module List_store : S
(** Unindexed, list-backed. O(n) everything; tiny footprint — the
    "keep it lightweight" choice for small superimposed layers. *)

module Indexed_store : S
(** Hash-indexed on each field. [select] uses the most selective fixed
    field's index, then filters. *)

module Locked (Base : S) : S
(** [Base] behind a mutex: every operation is atomic with respect to
    other domains, so one store can back concurrently shared superimposed
    information (the §2 "collectively maintained, situated awareness"
    setting, multi-domain edition). Composite read-modify-write sequences
    still need external coordination (see {!Trim.transaction}). The name
    is ["locked-" ^ Base.name]. *)

module Locked_indexed : S
(** [Locked (Indexed_store)], the implementation shared stores should
    use. *)

val implementations : (string * (module S)) list
(** [list], [indexed], and [locked-indexed]. *)
