(** RDF/XML-style serialization of a triple store (paper §4.3).

    "Since RDF defines a serialization-syntax (in XML), we can use the
    representation for interoperability between superimposed
    applications." This is the description-grouped syntax:

    {v <rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#">
         <rdf:Description rdf:about="bundle-1">
           <bundleName>John Smith</bundleName>
           <bundleContent rdf:resource="scrap-1"/>
         </rdf:Description>
       </rdf:RDF> v}

    in contrast to {!Trim.to_xml}'s flat triple list (the internal
    format). Both round-trip; this one is what a 2001-era RDF consumer
    would expect.

    Predicates must be valid XML element names (the metamodel's
    colon-prefixed vocabulary qualifies); serialization fails otherwise. *)

val rdf_namespace : string

val to_xml : Trim.t -> (Si_xmlk.Node.t, string) result
(** Subjects sorted, properties per subject sorted — deterministic. *)

val to_string : Trim.t -> (string, string) result
val of_xml : ?store:(module Store.S) -> Si_xmlk.Node.t -> (Trim.t, string) result
val of_string : ?store:(module Store.S) -> string -> (Trim.t, string) result
val save : Trim.t -> string -> (unit, string) result
val load : ?store:(module Store.S) -> string -> (Trim.t, string) result
