(** RDF-style triples — the unit of the SLIM store's generic representation.

    The paper (§4.3): "a triple is composed of a property, a resource, and a
    value". Here: [subject] (a resource id), [predicate] (a property name),
    and [object_], which is either another resource or a literal string. *)

type obj =
  | Resource of string
  | Literal of string

type t = { subject : string; predicate : string; object_ : obj }

val make : string -> string -> obj -> t
val resource : string -> obj
val literal : string -> obj

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val obj_equal : obj -> obj -> bool
val obj_to_string : obj -> string
(** Resources print as [<id>], literals as ["text"]. *)

val pp : Format.formatter -> t -> unit
val pp_obj : Format.formatter -> obj -> unit
val to_string : t -> string
