module Xml = Si_xmlk

let rdf_namespace = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"

let valid_element_name s =
  s <> ""
  && (match s.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' -> true
     | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' ->
             true
         | _ -> false)
       s

let to_xml trim =
  let triples = List.sort Triple.compare (Trim.to_list trim) in
  let bad =
    List.find_opt
      (fun (tr : Triple.t) -> not (valid_element_name tr.predicate))
      triples
  in
  match bad with
  | Some tr ->
      Error
        (Printf.sprintf
           "predicate %S is not a valid XML element name; cannot serialize \
            as RDF/XML"
           tr.predicate)
  | None ->
      (* Group consecutive runs of equal subjects (the list is sorted, so
         one linear pass suffices). *)
      let group triples =
        let rec go current acc grouped = function
          | [] ->
              List.rev
                (match current with
                | None -> grouped
                | Some s -> (s, List.rev acc) :: grouped)
          | (tr : Triple.t) :: rest -> (
              match current with
              | Some s when String.equal s tr.subject ->
                  go current (tr :: acc) grouped rest
              | Some s ->
                  go (Some tr.subject) [ tr ] ((s, List.rev acc) :: grouped)
                    rest
              | None -> go (Some tr.subject) [ tr ] grouped rest)
        in
        go None [] [] triples
      in
      let description (subject, props) =
        Xml.Node.element "rdf:Description"
          ~attrs:[ ("rdf:about", subject) ]
          (List.map
             (fun (tr : Triple.t) ->
               match tr.object_ with
               | Triple.Literal l ->
                   Xml.Node.element tr.predicate [ Xml.Node.text l ]
               | Triple.Resource r ->
                   Xml.Node.element tr.predicate
                     ~attrs:[ ("rdf:resource", r) ]
                     [])
             props)
      in
      Ok
        (Xml.Node.element "rdf:RDF"
           ~attrs:[ ("xmlns:rdf", rdf_namespace) ]
           (List.map description (group triples)))

let to_string trim =
  Result.map (Xml.Print.to_string_pretty ~decl:true) (to_xml trim)

let of_xml ?store root =
  match root with
  | Xml.Node.Element { name = "rdf:RDF"; _ } ->
      let trim = Trim.create ?store () in
      let load_description node =
        match Xml.Node.attr "rdf:about" node with
        | None -> Error "rdf:Description missing rdf:about"
        | Some subject ->
            let rec props = function
              | [] -> Ok ()
              | child :: rest -> (
                  match child with
                  | Xml.Node.Element { name = predicate; _ } -> (
                      match Xml.Node.attr "rdf:resource" child with
                      | Some r ->
                          ignore
                            (Trim.add trim
                               (Triple.make subject predicate
                                  (Triple.Resource r)));
                          props rest
                      | None ->
                          ignore
                            (Trim.add trim
                               (Triple.make subject predicate
                                  (Triple.Literal
                                     (Xml.Node.text_content child))));
                          props rest)
                  | Xml.Node.Text _ | Xml.Node.Cdata _ | Xml.Node.Comment _
                  | Xml.Node.Pi _ ->
                      props rest)
            in
            props (Xml.Node.children node)
      in
      let rec load = function
        | [] -> Ok trim
        | d :: rest -> (
            match load_description d with
            | Ok () -> load rest
            | Error _ as e -> e)
      in
      load (Xml.Node.find_children "rdf:Description" root)
  | _ -> Error "expected an <rdf:RDF> root element"

let of_string ?store text =
  match Xml.Parse.node text with
  | Error e -> Error (Xml.Parse.error_to_string e)
  | Ok root -> of_xml ?store (Xml.Node.strip_whitespace root)

let save trim path =
  match to_xml trim with
  | Error _ as e -> e
  | Ok node ->
      Xml.Print.to_file path node;
      Ok ()

let load ?store path =
  match Xml.Parse.file path with
  | Error e -> Error (Xml.Parse.error_to_string e)
  | Ok root -> of_xml ?store (Xml.Node.strip_whitespace root)
