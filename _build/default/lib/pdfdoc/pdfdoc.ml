module Xml = Si_xmlk

type rect = { x : float; y : float; w : float; h : float }
type text_span = { span_text : string; bbox : rect }

type page = {
  width : float;
  height : float;
  mutable span_list : text_span list;  (* reverse order *)
}

type t = { doc_title : string; mutable page_list : page list (* reverse *) }
type region = { page : int; rect : rect }

let create ?(title = "") () = { doc_title = title; page_list = [] }

let add_page ?(width = 612.) ?(height = 792.) t =
  let p = { width; height; span_list = [] } in
  t.page_list <- p :: t.page_list;
  p

let add_span page ~text rect =
  let s = { span_text = text; bbox = rect } in
  page.span_list <- s :: page.span_list;
  s

let add_line page ?(x = 72.) ?(font_size = 11.) ~y text =
  let w = font_size *. 0.55 *. float_of_int (String.length text) in
  add_span page ~text { x; y; w; h = font_size *. 1.2 }

let title t = t.doc_title
let pages t = List.rev t.page_list
let page_count t = List.length t.page_list
let nth_page t n = if n < 1 then None else List.nth_opt (pages t) (n - 1)
let page_size p = (p.width, p.height)
let spans p = List.rev p.span_list
let page_text p = String.concat "\n" (List.map (fun s -> s.span_text) (spans p))

let same_line a b =
  let overlap =
    Float.min (a.bbox.y +. a.bbox.h) (b.bbox.y +. b.bbox.h)
    -. Float.max a.bbox.y b.bbox.y
  in
  overlap > 0.5 *. Float.min a.bbox.h b.bbox.h

let reading_order p =
  List.stable_sort
    (fun a b ->
      if same_line a b then Float.compare a.bbox.x b.bbox.x
      else Float.compare a.bbox.y b.bbox.y)
    (spans p)
let text t = String.concat "\n" (List.map page_text (pages t))

let rect_intersects a b =
  a.x < b.x +. b.w && b.x < a.x +. a.w && a.y < b.y +. b.h && b.y < a.y +. a.h

let spans_in_region t { page; rect } =
  match nth_page t page with
  | None -> []
  | Some p -> List.filter (fun s -> rect_intersects s.bbox rect) (spans p)

let region_text t region =
  match nth_page t region.page with
  | None -> None
  | Some _ ->
      Some
        (String.concat "\n"
           (List.map (fun s -> s.span_text) (spans_in_region t region)))

let bounding_region t ~page_number selected =
  match (nth_page t page_number, selected) with
  | None, _ | _, [] -> None
  | Some _, first :: rest ->
      let grow acc (s : text_span) =
        let x0 = Float.min acc.x s.bbox.x in
        let y0 = Float.min acc.y s.bbox.y in
        let x1 = Float.max (acc.x +. acc.w) (s.bbox.x +. s.bbox.w) in
        let y1 = Float.max (acc.y +. acc.h) (s.bbox.y +. s.bbox.h) in
        { x = x0; y = y0; w = x1 -. x0; h = y1 -. y0 }
      in
      Some { page = page_number; rect = List.fold_left grow first.bbox rest }

let contains_sub ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  nl > 0
  &&
  let rec scan i =
    i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
  in
  scan 0

let find_text t needle =
  List.concat
    (List.mapi
       (fun i p ->
         List.filter_map
           (fun s ->
             if contains_sub ~needle s.span_text then
               Some { page = i + 1; rect = s.bbox }
             else None)
           (spans p))
       (pages t))

(* ----------------------------------------------------------------- XML *)

let f2s = Printf.sprintf "%.2f"

let rect_attrs r =
  [ ("x", f2s r.x); ("y", f2s r.y); ("w", f2s r.w); ("h", f2s r.h) ]

let to_xml t =
  Xml.Node.element "pdf"
    ~attrs:[ ("title", t.doc_title) ]
    (List.map
       (fun p ->
         Xml.Node.element "page"
           ~attrs:[ ("width", f2s p.width); ("height", f2s p.height) ]
           (List.map
              (fun s ->
                Xml.Node.element "span" ~attrs:(rect_attrs s.bbox)
                  [ Xml.Node.text s.span_text ])
              (spans p)))
       (pages t))

let float_attr name node =
  Option.bind (Xml.Node.attr name node) float_of_string_opt

let rect_of_xml node =
  match
    ( float_attr "x" node, float_attr "y" node,
      float_attr "w" node, float_attr "h" node )
  with
  | Some x, Some y, Some w, Some h -> Some { x; y; w; h }
  | _ -> None

let of_xml root =
  match root with
  | Xml.Node.Element { name = "pdf"; _ } ->
      let t =
        create ~title:(Option.value (Xml.Node.attr "title" root) ~default:"") ()
      in
      let load_page node =
        let width = Option.value (float_attr "width" node) ~default:612. in
        let height = Option.value (float_attr "height" node) ~default:792. in
        let p = add_page ~width ~height t in
        let rec load = function
          | [] -> Ok ()
          | span_node :: rest -> (
              match rect_of_xml span_node with
              | Some r ->
                  let _ =
                    add_span p ~text:(Xml.Node.text_content span_node) r
                  in
                  load rest
              | None -> Error "span missing geometry")
        in
        load (Xml.Node.find_children "span" node)
      in
      let rec pages_loop = function
        | [] -> Ok t
        | p :: rest -> (
            match load_page p with
            | Ok () -> pages_loop rest
            | Error msg -> Error msg)
      in
      pages_loop (Xml.Node.find_children "page" root)
  | _ -> Error "expected a <pdf> root element"

let save t path = Xml.Print.to_file path (to_xml t)

let load path =
  match Xml.Parse.file path with
  | Error e -> Error (Xml.Parse.error_to_string e)
  | Ok root -> of_xml (Xml.Node.strip_whitespace root)

let equal a b =
  let span_equal (x : text_span) (y : text_span) =
    String.equal x.span_text y.span_text
    (* Geometry goes through %.2f printing; compare at that precision. *)
    && List.for_all2
         (fun u v -> Float.abs (u -. v) < 0.005)
         [ x.bbox.x; x.bbox.y; x.bbox.w; x.bbox.h ]
         [ y.bbox.x; y.bbox.y; y.bbox.w; y.bbox.h ]
  in
  String.equal a.doc_title b.doc_title
  && page_count a = page_count b
  && List.for_all2
       (fun p q ->
         List.length (spans p) = List.length (spans q)
         && List.for_all2 span_equal (spans p) (spans q))
       (pages a) (pages b)
