lib/pdfdoc/pdfdoc.ml: Float List Option Printf Si_xmlk String
