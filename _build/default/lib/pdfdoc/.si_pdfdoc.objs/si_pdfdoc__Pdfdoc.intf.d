lib/pdfdoc/pdfdoc.mli: Si_xmlk
