(** Paginated documents with positioned text — the Adobe PDF stand-in.

    A document is a sequence of fixed-size pages; each page carries text
    spans with bounding boxes (the way PDF text extraction sees a page).
    PDF marks address a page plus either a span index or a rectangular
    region (every span intersecting the region is selected) — mirroring
    Acrobat's highlight annotations. *)

type rect = { x : float; y : float; w : float; h : float }
(** Origin at the top-left of the page, y growing downward. *)

type text_span = { span_text : string; bbox : rect }

type page

type t

type region = { page : int; rect : rect }
(** 1-based page number. *)

(** {1 Construction} *)

val create : ?title:string -> unit -> t
val add_page : ?width:float -> ?height:float -> t -> page
(** Default 612×792 (US Letter points). *)

val add_span : page -> text:string -> rect -> text_span
val add_line : page -> ?x:float -> ?font_size:float -> y:float -> string ->
  text_span
(** Convenience: one span whose box is estimated from the text length. *)

(** {1 Reading} *)

val title : t -> string
val pages : t -> page list
val page_count : t -> int
val nth_page : t -> int -> page option
(** 1-based. *)

val page_size : page -> float * float
val spans : page -> text_span list
(** In insertion order (PDF "content order"). *)

val reading_order : page -> text_span list
(** Spans sorted top-to-bottom, then left-to-right — the order a reader
    (or text extractor) sees, which for generators that emit columns or
    out-of-order content differs from content order. Spans whose vertical
    ranges overlap by more than half the smaller height count as the same
    line. *)

val page_text : page -> string
(** Spans joined with ["\n"]. *)

val text : t -> string
(** All pages, joined with ["\n\f\n"]-style page breaks (["\n"] here). *)

(** {1 Addressing} *)

val rect_intersects : rect -> rect -> bool
val spans_in_region : t -> region -> text_span list
(** Spans whose boxes intersect the region, in content order. *)

val region_text : t -> region -> string option
(** Text of the region's spans; [None] if the page does not exist. *)

val bounding_region : t -> page_number:int -> text_span list -> region option
(** Smallest region covering the given spans — what mark creation stores
    when the user selects spans. *)

val find_text : t -> string -> region list
(** A region per span containing the needle. *)

(** {1 Persistence} *)

val to_xml : t -> Si_xmlk.Node.t
val of_xml : Si_xmlk.Node.t -> (t, string) result
val save : t -> string -> unit
val load : string -> (t, string) result
val equal : t -> t -> bool
