lib/query/query.mli: Si_triple
