lib/query/query.ml: Buffer Hashtbl List Option Printf Si_triple String
