(** Declarative queries over a triple manager — the paper's §6 plan of
    "augmenting such interfaces with query capabilities, in addition to the
    current navigational access".

    A query is a conjunction of triple patterns with shared variables
    (evaluated by nested index lookups, not cross products), plus literal
    filters and a projection:

    {v select ?name ?mark
       where {
         ?s <rdf:type> <model:bundle-scrap/Scrap> .
         ?s scrapName ?name .
         ?s scrapMark ?h .
         ?h markId ?mark
       }
       filter contains(?name, "Dopa") v}

    Terms: [?x] variable, [<id>] resource, ["text"] literal; a bare word in
    predicate position is the predicate name; [_] matches anything. *)

type term =
  | Var of string
  | Resource of string
  | Literal of string
  | Wildcard

type pattern = { subj : term; pred : term; obj : term }

type filter =
  | Equals of string * string        (** variable, literal value *)
  | Contains of string * string
  | Prefix of string * string
  | Bound_to_resource of string      (** variable is a resource *)

type order = Ascending of string | Descending of string
(** [order by ?v] / [order by ?v desc] — lexicographic on the variable's
    value (resources by id, literals by text; unbound sorts first). *)

type t = {
  select : string list;  (** projected variables, [[]] = all *)
  patterns : pattern list;
  filters : filter list;
  order_by : order option;
  limit : int option;
}

type binding = (string * Si_triple.Triple.obj) list
(** Variable name -> value, for the projected variables. *)

(** {1 Construction} *)

val query :
  ?select:string list -> ?filters:filter list -> ?order_by:order ->
  ?limit:int -> pattern list -> t
val pat : term -> term -> term -> pattern

(** {1 Parsing} *)

val parse : string -> (t, string) result
(** The textual syntax above. [select] clause optional (defaults to all
    variables); patterns separated by [.]; multiple [filter] clauses; then
    optional [order by ?v \[desc\]] and [limit N]. *)

val parse_exn : string -> t
val to_string : t -> string

(** {1 Evaluation} *)

val optimize : Si_triple.Trim.t -> t -> t
(** Join reordering: evaluates patterns most-selective-first. Each
    pattern's selectivity is estimated by probing the store's indexes
    with its constant fields; at each step the optimizer prefers patterns
    whose variables are already bound by the patterns chosen so far
    (avoiding cross products). Semantics are unchanged — [run] yields the
    same bindings. *)

val run : Si_triple.Trim.t -> t -> binding list
(** All bindings, duplicates removed, in deterministic order: [order_by]
    when present, the bindings' natural sort otherwise; truncated to
    [limit]. *)

val count : Si_triple.Trim.t -> t -> int
val binding_to_string : binding -> string
val variables : t -> string list
(** All variables appearing in the patterns, sorted. *)
