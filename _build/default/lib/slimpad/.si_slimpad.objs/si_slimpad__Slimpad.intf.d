lib/slimpad/slimpad.mli: Si_mark Si_slim Si_triple
