lib/slimpad/slimpad.ml: Buffer Hashtbl List Option Printf Si_mark Si_query Si_slim Si_triple Si_xmlk String
