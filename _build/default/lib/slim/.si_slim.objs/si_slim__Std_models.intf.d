lib/slim/std_models.mli: Bundle_model Si_mapping Si_metamodel Si_triple
