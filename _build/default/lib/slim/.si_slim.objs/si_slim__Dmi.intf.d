lib/slim/dmi.mli: Bundle_model Si_metamodel Si_triple Si_xmlk
