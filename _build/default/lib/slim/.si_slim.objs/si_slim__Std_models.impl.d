lib/slim/std_models.ml: Bundle_model Fun Si_mapping Si_metamodel
