lib/slim/bundle_model.ml: Si_metamodel
