lib/slim/dmi.ml: Bundle_model List Option Printf Si_metamodel Si_triple Si_xmlk String
