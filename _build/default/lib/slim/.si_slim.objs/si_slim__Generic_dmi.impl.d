lib/slim/generic_dmi.ml: Hashtbl List Option Printf Result Si_metamodel Si_triple String
