lib/slim/bundle_model.mli: Si_metamodel Si_triple
