lib/slim/generic_dmi.mli: Si_metamodel Si_triple
