(** Ready-made superimposed models (paper §1, §4.3).

    "We see models for information emerging that are inherently
    superimposed including topic maps [3], RDF [12], and XLink [7]" —
    and §4.3 positions the SLIM store as flexible enough to host them all.
    This module defines a topic-map-style and an XLink-style model over
    the metamodel, so they can live beside the Bundle-Scrap model in one
    store, and provides the canonical Bundle-Scrap → topic map mapping. *)

(** Topic maps (ISO 13250 flavour): topics with names, typed occurrences
    (which can be marks into base documents), and binary associations. *)
type topic_map = {
  tm : Si_metamodel.Model.t;
  topic : Si_metamodel.Model.construct;
  occurrence : Si_metamodel.Model.construct;
  association : Si_metamodel.Model.construct;
  tm_string : Si_metamodel.Model.construct;
}

val install_topic_map : Si_triple.Trim.t -> topic_map
(** Model name ["topic-map"]. Connectors: [topicName] (1..1),
    [hasOccurrence] (0..many), [occValue] (1..1), [occRole] (0..1),
    [assocFrom]/[assocTo] (1..1 each), [assocType] (0..1). *)

(** XLink (W3C working-draft flavour): extended links over locators. *)
type xlink = {
  xl : Si_metamodel.Model.t;
  extended_link : Si_metamodel.Model.construct;
  locator : Si_metamodel.Model.construct;  (** a mark construct *)
  arc : Si_metamodel.Model.construct;
  xl_string : Si_metamodel.Model.construct;
}

val install_xlink : Si_triple.Trim.t -> xlink
(** Model name ["xlink"]. Connectors: [linkTitle] (0..1), [hasLocator]
    (1..many), [locatorHref] (1..1), [locatorRole] (0..1), [hasArc] (0..many),
    [arcFrom]/[arcTo] (1..1 each). *)

val bundles_to_topics :
  Bundle_model.t -> topic_map -> Si_mapping.Mapping.t
(** The canonical mapping: Bundle→Topic (bundleName→topicName,
    bundleContent→hasOccurrence) and Scrap→Occurrence
    (scrapName→occValue). Scrap-to-scrap Links are not mapped — an
    Association joins Topics, and lifting link endpoints to the
    occurrences' parent topics is beyond per-property rules (the
    limitation that motivates richer mappings in the paper's [4]).
    Apply with {!Si_mapping.Mapping.apply}. *)
