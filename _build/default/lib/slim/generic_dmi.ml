module Model = Si_metamodel.Model
module Trim = Si_triple.Trim
module Triple = Si_triple.Triple

(* Generation happens at [for_model] time: the model's constructs and the
   connectors applicable to each (including inherited ones) are compiled
   into lookup tables, exactly the specialization a code-generating DMI
   would bake in. The tables snapshot the model as of generation; evolving
   the model requires regenerating the DMI (as it would with generated
   code). *)
type t = {
  model : Model.t;
  constructs_by_id : (string, Model.construct) Hashtbl.t;
  connectors_by_construct : (string, (string * Model.connector) list) Hashtbl.t;
      (* construct id -> (predicate, connector), inherited included *)
}

let for_model model =
  let constructs_by_id = Hashtbl.create 16 in
  let connectors_by_construct = Hashtbl.create 16 in
  List.iter
    (fun c ->
      Hashtbl.replace constructs_by_id c.Model.construct_id c;
      Hashtbl.replace connectors_by_construct c.Model.construct_id
        (List.map
           (fun conn -> (conn.Model.conn_predicate, conn))
           (Model.connectors_of model c)))
    (Model.constructs model);
  { model; constructs_by_id; connectors_by_construct }

let operations g =
  let constructs = Model.constructs g.model in
  let creates, deletes =
    List.filter_map
      (fun c ->
        match c.Model.kind with
        | Model.Literal_construct -> None
        | Model.Construct | Model.Mark_construct ->
            Some (Model.construct_name g.model c))
      constructs
    |> fun names ->
    ( List.map (fun n -> "Create_" ^ n) names,
      List.map (fun n -> "Delete_" ^ n) names )
  in
  let updates =
    List.concat_map
      (fun conn ->
        let domain = Model.construct_name g.model conn.Model.conn_domain in
        [ Printf.sprintf "Update_%s_%s" domain conn.Model.conn_predicate ])
      (Model.connectors g.model)
  in
  List.sort String.compare (creates @ deletes @ updates)

let find_construct_checked g name =
  match Model.find_construct g.model name with
  | Some c -> Ok c
  | None ->
      Error
        (Printf.sprintf "model %s has no construct %S" (Model.name g.model)
           name)

let create g construct_name =
  match find_construct_checked g construct_name with
  | Error _ as e -> e
  | Ok c -> (
      match c.Model.kind with
      | Model.Literal_construct ->
          Error
            (Printf.sprintf "%S is a literal construct; literals have no \
                             instances" construct_name)
      | Model.Construct | Model.Mark_construct ->
          Ok (Model.new_instance g.model c ()))

(* The construct an instance of THIS model is typed by. *)
let construct_of_instance g inst =
  match Model.instance_type (Model.trim g.model) inst with
  | None -> None
  | Some type_id -> Hashtbl.find_opt g.constructs_by_id type_id

let construct_of g inst =
  Option.map (Model.construct_name g.model) (construct_of_instance g inst)

let instance_checked g inst =
  match construct_of_instance g inst with
  | Some c -> Ok c
  | None ->
      Error
        (Printf.sprintf "<%s> is not an instance of model %s" inst
           (Model.name g.model))

let delete g inst =
  match instance_checked g inst with
  | Error _ as e -> e
  | Ok _ -> Ok (Model.delete_instance g.model inst)

let instances g construct_name =
  match find_construct_checked g construct_name with
  | Error _ as e -> Result.map (fun _ -> []) e
  | Ok c -> Ok (Model.instances_of g.model c)

(* Checked property access: the connector must exist on the instance's
   construct, and the value must fit its range. *)
let connector_checked g inst pred =
  match instance_checked g inst with
  | Error _ as e -> e
  | Ok c -> (
      let applicable =
        Option.value
          (Hashtbl.find_opt g.connectors_by_construct c.Model.construct_id)
          ~default:[]
      in
      match List.assoc_opt pred applicable with
      | Some conn -> Ok conn
      | None ->
          Error
            (Printf.sprintf "construct %s has no connector %S"
               (Model.construct_name g.model c)
               pred))

let value_fits g conn value =
  let range = conn.Model.conn_range in
  match (range.Model.kind, value) with
  | Model.Literal_construct, Triple.Literal _ -> Ok ()
  | Model.Literal_construct, Triple.Resource r ->
      Error
        (Printf.sprintf "%s expects a literal %s, got resource <%s>"
           conn.Model.conn_predicate
           (Model.construct_name g.model range)
           r)
  | (Model.Construct | Model.Mark_construct), Triple.Literal l ->
      Error
        (Printf.sprintf "%s expects a %s resource, got literal %S"
           conn.Model.conn_predicate
           (Model.construct_name g.model range)
           l)
  | (Model.Construct | Model.Mark_construct), Triple.Resource r -> (
      match construct_of_instance g r with
      | None -> Error (Printf.sprintf "<%s> is not an instance of this model" r)
      | Some actual ->
          if Model.is_subconstruct_of g.model ~sub:actual ~super:range then
            Ok ()
          else
            Error
              (Printf.sprintf "%s expects a %s, <%s> is a %s"
                 conn.Model.conn_predicate
                 (Model.construct_name g.model range)
                 r
                 (Model.construct_name g.model actual)))

let set g inst pred value =
  match connector_checked g inst pred with
  | Error _ as e -> e
  | Ok conn -> (
      match value_fits g conn value with
      | Error _ as e -> e
      | Ok () ->
          Model.set_property g.model inst pred value;
          Ok ())

let current_count g inst pred =
  List.length (Trim.select ~subject:inst ~predicate:pred (Model.trim g.model))

let add g inst pred value =
  match connector_checked g inst pred with
  | Error _ as e -> e
  | Ok conn -> (
      match value_fits g conn value with
      | Error _ as e -> e
      | Ok () -> (
          match conn.Model.card.Model.max_card with
          | Some max when current_count g inst pred >= max ->
              Error
                (Printf.sprintf "%s allows at most %d value(s)" pred max)
          | Some _ | None ->
              Model.add_property g.model inst pred value;
              Ok ()))

let unset g inst pred =
  match connector_checked g inst pred with
  | Error _ as e -> Result.map (fun _ -> 0) e
  | Ok _ ->
      let trim = Model.trim g.model in
      let doomed = Trim.select ~subject:inst ~predicate:pred trim in
      List.iter (fun tr -> ignore (Trim.remove trim tr)) doomed;
      Ok (List.length doomed)

let get g inst pred = Model.property g.model inst pred

let get_all g inst pred =
  Trim.select ~subject:inst ~predicate:pred (Model.trim g.model)
  |> List.map (fun (tr : Triple.t) -> tr.object_)

let get_literal g inst pred =
  Trim.literal_of (Model.trim g.model) ~subject:inst ~predicate:pred

let get_resource g inst pred =
  Trim.resource_of (Model.trim g.model) ~subject:inst ~predicate:pred
