module Model = Si_metamodel.Model

type topic_map = {
  tm : Model.t;
  topic : Model.construct;
  occurrence : Model.construct;
  association : Model.construct;
  tm_string : Model.construct;
}

let install_topic_map trim =
  let tm = Model.define trim ~name:"topic-map" in
  let topic = Model.construct tm "Topic" in
  let occurrence = Model.construct tm "Occurrence" in
  let association = Model.construct tm "Association" in
  let tm_string = Model.literal_construct tm "String" in
  let conn name from_ to_ card =
    ignore (Model.connect tm ~name ~from_ ~to_ ~card ())
  in
  conn "topicName" topic tm_string Model.one_card;
  conn "hasOccurrence" topic occurrence Model.any_card;
  conn "occValue" occurrence tm_string Model.one_card;
  conn "occRole" occurrence tm_string Model.optional_card;
  conn "assocFrom" association topic Model.one_card;
  conn "assocTo" association topic Model.one_card;
  conn "assocType" association tm_string Model.optional_card;
  { tm; topic; occurrence; association; tm_string }

type xlink = {
  xl : Model.t;
  extended_link : Model.construct;
  locator : Model.construct;
  arc : Model.construct;
  xl_string : Model.construct;
}

let install_xlink trim =
  let xl = Model.define trim ~name:"xlink" in
  let extended_link = Model.construct xl "ExtendedLink" in
  let locator = Model.mark_construct xl "Locator" in
  let arc = Model.construct xl "Arc" in
  let xl_string = Model.literal_construct xl "String" in
  let conn name from_ to_ card =
    ignore (Model.connect xl ~name ~from_ ~to_ ~card ())
  in
  conn "linkTitle" extended_link xl_string Model.optional_card;
  conn "hasLocator" extended_link locator Model.at_least_one;
  conn "locatorHref" locator xl_string Model.one_card;
  conn "locatorRole" locator xl_string Model.optional_card;
  conn "hasArc" extended_link arc Model.any_card;
  conn "arcFrom" arc locator Model.one_card;
  conn "arcTo" arc locator Model.one_card;
  { xl; extended_link; locator; arc; xl_string }

let bundles_to_topics (bm : Bundle_model.t) (tmap : topic_map) =
  Si_mapping.Mapping.create ~source:bm.Bundle_model.model ~target:tmap.tm
  |> Fun.flip Si_mapping.Mapping.add_rule_exn
       {
         Si_mapping.Mapping.from_construct = "Bundle";
         to_construct = "Topic";
         property_map =
           [
             (Bundle_model.bundle_name, "topicName");
             (Bundle_model.bundle_content, "hasOccurrence");
           ];
       }
  |> Fun.flip Si_mapping.Mapping.add_rule_exn
       {
         Si_mapping.Mapping.from_construct = "Scrap";
         to_construct = "Occurrence";
         property_map = [ (Bundle_model.scrap_name, "occValue") ];
       }
(* Scrap-to-scrap Links are intentionally unmapped: an Association joins
   Topics, but a Link joins Scraps, whose counterparts are Occurrences —
   lifting the endpoints to the occurrences' parent topics is beyond
   per-property rules (exactly the kind of mapping [4] motivates). *)
