(** Automatically generated (interpreted) DMIs (paper §4.4 / §6 / [24]).

    "For SLIMPad, we generated the application data structures and DMI
    manually, based on the application model. We are working towards
    automatically generating specialized DMIs from data models."

    This module is that generator, in interpreted form: given any model
    defined over the metamodel, it provides the full
    create/read/update/delete surface that a hand-written DMI (like
    {!Dmi}) offers — with every operation checked at run time against the
    model's connectors (domain, range kind, range construct, maximum
    cardinality). What the hand-written DMI guarantees by construction,
    the generated one guarantees by interpretation; the benchmark group
    "ablation: generated vs hand-written DMI" measures the price.

    Minimum-cardinality constraints are intentionally not enforced during
    mutation (an object under construction is temporarily below minimum);
    they remain the job of {!Si_metamodel.Validate}. *)

type t

val for_model : Si_metamodel.Model.t -> t
(** Generates the DMI: compiles the model's constructs and per-construct
    connector tables (inheritance resolved) into lookup structures. The
    result snapshots the model as of this call — extend the model, then
    regenerate, exactly as with generated code. *)

val operations : t -> string list
(** The generated operation names, Fig 10 style: [Create_Bundle],
    [Update_Bundle_bundleName], [Delete_Bundle], … — one Create/Delete
    per construct, one Update per (construct, connector). Sorted. *)

(** {1 Instances} *)

val create : t -> string -> (string, string) result
(** [create g "Bundle"] makes a fresh instance of the named construct and
    returns its resource id. Fails on unknown constructs and on literal
    constructs (literals have no instances). *)

val delete : t -> string -> (int, string) result
(** Removes the instance (outgoing and incoming triples); returns how many
    triples went. Fails if the resource is not an instance of this model. *)

val instances : t -> string -> (string list, string) result
(** Instance ids of a construct, sorted. *)

val construct_of : t -> string -> string option
(** Name of the construct an instance belongs to. *)

(** {1 Properties} *)

val set : t -> string -> string -> Si_triple.Triple.obj ->
  (unit, string) result
(** [set g inst pred value] — functional update (replaces existing
    values). Checked: the predicate names a connector available on the
    instance's construct (directly or inherited), the value's kind matches
    the range (literal vs resource), and a resource value is typed by the
    range construct or a subconstruct. *)

val add : t -> string -> string -> Si_triple.Triple.obj ->
  (unit, string) result
(** Adds a value (multi-valued properties); additionally enforces the
    connector's maximum cardinality. *)

val unset : t -> string -> string -> (int, string) result
(** Removes all values of a property; returns how many. Checked like
    {!set}. *)

val get : t -> string -> string -> Si_triple.Triple.obj option
val get_all : t -> string -> string -> Si_triple.Triple.obj list
val get_literal : t -> string -> string -> string option
val get_resource : t -> string -> string -> string option
