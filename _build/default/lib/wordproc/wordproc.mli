(** Word-processor documents — the Microsoft Word stand-in.

    A document is a sequence of blocks (headings and paragraphs) made of
    styled runs, plus named bookmarks. Word marks address either a
    character span inside a paragraph or a bookmark; both forms are
    supported here (paper §3 lists Word documents among SLIMPad's base
    types). *)

type run = { text : string; bold : bool; italic : bool }

type block =
  | Heading of int * run list  (** level (1..6), content *)
  | Paragraph of run list

type span = { para : int; offset : int; length : int }
(** [para] is the 1-based block index; [offset]/[length] are character
    positions within that block's plain text. *)

type t

(** {1 Construction} *)

val create : ?title:string -> ?author:string -> unit -> t
val plain_run : string -> run
val run : ?bold:bool -> ?italic:bool -> string -> run
val append_block : t -> block -> unit
val append_paragraph : t -> string -> unit
(** Convenience: a paragraph with one plain run. *)

val append_heading : t -> int -> string -> unit
val of_paragraphs : string list -> t

(** {1 Reading} *)

val title : t -> string
val author : t -> string
val blocks : t -> block list
val block_count : t -> int
val block : t -> int -> block option
(** 1-based. *)

val block_text : t -> int -> string option
(** Plain text of a block (runs concatenated). *)

val plain_text : t -> string
(** All blocks joined with ["\n"]. *)

val word_count : t -> int

(** {1 Spans} *)

val span_valid : t -> span -> bool
val extract : t -> span -> string option
val find_all : t -> string -> span list
(** Occurrences within single blocks, in document order. *)

val find_first : t -> string -> span option

(** {1 Bookmarks}

    A bookmark names a span, like Word's Insert > Bookmark. *)

val add_bookmark : t -> name:string -> span -> (unit, string) result
(** Fails on a duplicate name or an invalid span. *)

val bookmark : t -> string -> span option
val bookmarks : t -> (string * span) list
(** Sorted by name. *)

val remove_bookmark : t -> string -> bool

(** {1 Rendering} *)

val to_markdown : t -> string
(** Markdown-flavoured rendering: headings as [#]-prefixed lines, bold
    runs wrapped in [**], italic in [*] (bold-italic in [***]). *)

(** {1 Editing} *)

val replace_all : t -> search:string -> replace:string -> int * string list
(** Replace every occurrence of [search] {e within individual runs}
    (styled-boundary-crossing matches are not found — a real word
    processor would merge runs first). Returns the replacement count and
    the names of bookmarks that were dropped because their span
    overlapped a replacement; bookmarks positioned after a replacement in
    the same block shift to stay on their text. *)

(** {1 Persistence} *)

val to_xml : t -> Si_xmlk.Node.t
val of_xml : Si_xmlk.Node.t -> (t, string) result
val save : t -> string -> unit
val load : string -> (t, string) result
val equal : t -> t -> bool
