module Xml = Si_xmlk

type run = { text : string; bold : bool; italic : bool }
type block = Heading of int * run list | Paragraph of run list
type span = { para : int; offset : int; length : int }

type t = {
  mutable doc_title : string;
  mutable doc_author : string;
  mutable block_list : block list;  (* reverse order *)
  marks : (string, span) Hashtbl.t;
}

let create ?(title = "") ?(author = "") () =
  { doc_title = title; doc_author = author; block_list = []; marks = Hashtbl.create 8 }

let plain_run text = { text; bold = false; italic = false }
let run ?(bold = false) ?(italic = false) text = { text; bold; italic }
let append_block t b = t.block_list <- b :: t.block_list
let append_paragraph t s = append_block t (Paragraph [ plain_run s ])

let append_heading t level s =
  if level < 1 || level > 6 then invalid_arg "Wordproc: heading level";
  append_block t (Heading (level, [ plain_run s ]))

let of_paragraphs paras =
  let t = create () in
  List.iter (append_paragraph t) paras;
  t

let title t = t.doc_title
let author t = t.doc_author
let blocks t = List.rev t.block_list
let block_count t = List.length t.block_list

let block t n = if n < 1 then None else List.nth_opt (blocks t) (n - 1)

let runs_of_block = function Heading (_, rs) | Paragraph rs -> rs

let block_plain b =
  String.concat "" (List.map (fun r -> r.text) (runs_of_block b))

let block_text t n = Option.map block_plain (block t n)
let plain_text t = String.concat "\n" (List.map block_plain (blocks t))

let word_count t =
  plain_text t
  |> String.split_on_char '\n'
  |> List.concat_map (String.split_on_char ' ')
  |> List.filter (fun w -> String.trim w <> "")
  |> List.length

let span_valid t { para; offset; length } =
  offset >= 0 && length >= 0
  &&
  match block_text t para with
  | Some text -> offset + length <= String.length text
  | None -> false

let extract t span =
  if span_valid t span then
    Option.map
      (fun text -> String.sub text span.offset span.length)
      (block_text t span.para)
  else None

let find_in_text text needle para =
  let n = String.length needle in
  if n = 0 then []
  else
    let limit = String.length text - n in
    let rec scan i acc =
      if i > limit then List.rev acc
      else if String.sub text i n = needle then
        scan (i + 1) ({ para; offset = i; length = n } :: acc)
      else scan (i + 1) acc
    in
    scan 0 []

let find_all t needle =
  List.concat
    (List.mapi
       (fun i b -> find_in_text (block_plain b) needle (i + 1))
       (blocks t))

let find_first t needle =
  match find_all t needle with [] -> None | s :: _ -> Some s

let add_bookmark t ~name span =
  if Hashtbl.mem t.marks name then
    Error (Printf.sprintf "bookmark %S already exists" name)
  else if not (span_valid t span) then Error "invalid span"
  else begin
    Hashtbl.add t.marks name span;
    Ok ()
  end

let bookmark t name = Hashtbl.find_opt t.marks name

let bookmarks t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.marks []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let remove_bookmark t name =
  if Hashtbl.mem t.marks name then begin
    Hashtbl.remove t.marks name;
    true
  end
  else false

(* ---------------------------------------------------------- rendering *)

let run_to_markdown r =
  match (r.bold, r.italic) with
  | true, true -> "***" ^ r.text ^ "***"
  | true, false -> "**" ^ r.text ^ "**"
  | false, true -> "*" ^ r.text ^ "*"
  | false, false -> r.text

let to_markdown t =
  blocks t
  |> List.map (function
       | Heading (level, rs) ->
           String.make level '#' ^ " "
           ^ String.concat "" (List.map run_to_markdown rs)
       | Paragraph rs -> String.concat "" (List.map run_to_markdown rs))
  |> String.concat "\n\n"

(* ------------------------------------------------------------ editing *)

(* Replace within one string; returns the new string and the list of
   (position, delta) edits in left-to-right order. *)
let replace_in_text text ~search ~replace =
  let sl = String.length search in
  if sl = 0 then (text, [])
  else begin
    let buf = Buffer.create (String.length text) in
    let edits = ref [] in
    let count = ref 0 in
    let i = ref 0 in
    let n = String.length text in
    while !i < n do
      if !i + sl <= n && String.sub text !i sl = search then begin
        edits := (!i, String.length replace - sl) :: !edits;
        incr count;
        Buffer.add_string buf replace;
        i := !i + sl
      end
      else begin
        Buffer.add_char buf text.[!i];
        incr i
      end
    done;
    (Buffer.contents buf, List.rev !edits)
  end

let replace_all t ~search ~replace =
  let total = ref 0 in
  (* Per block: rewrite each run, recording edits at block-text offsets so
     bookmarks can follow. *)
  let block_edits = Hashtbl.create 8 in
  (* block_list is newest-first; mapi preserves that order. *)
  t.block_list <-
    List.mapi
      (fun rev_index block ->
           let block_number = List.length t.block_list - rev_index in
           let runs = runs_of_block block in
           let offset = ref 0 in
           let edits = ref [] in
           let runs' =
             List.map
               (fun r ->
                 let text', run_edits =
                   replace_in_text r.text ~search ~replace
                 in
                 total := !total + List.length run_edits;
                 edits :=
                   !edits
                   @ List.map
                       (fun (pos, delta) -> (!offset + pos, delta))
                       run_edits;
                 offset := !offset + String.length r.text;
                 { r with text = text' })
               runs
           in
           if !edits <> [] then Hashtbl.replace block_edits block_number !edits;
           match block with
           | Heading (level, _) -> Heading (level, runs')
           | Paragraph _ -> Paragraph runs')
      t.block_list;
  (* Adjust bookmarks. An edit at [pos] replacing [sl] chars with delta:
     spans strictly after shift; spans overlapping [pos, pos+sl) drop. *)
  let sl = String.length search in
  let dropped = ref [] in
  Hashtbl.iter
    (fun name span ->
      match Hashtbl.find_opt block_edits span.para with
      | None -> ()
      | Some edits ->
          let overlaps =
            List.exists
              (fun (pos, _) ->
                pos < span.offset + span.length && span.offset < pos + sl)
              edits
          in
          if overlaps then dropped := name :: !dropped
          else
            let shift =
              List.fold_left
                (fun acc (pos, delta) ->
                  if pos + sl <= span.offset then acc + delta else acc)
                0 edits
            in
            Hashtbl.replace t.marks name
              { span with offset = span.offset + shift })
    (Hashtbl.copy t.marks);
  List.iter (Hashtbl.remove t.marks) !dropped;
  (!total, List.sort String.compare !dropped)

(* -------------------------------------------------------------- XML *)

let run_to_xml r =
  let attrs =
    (if r.bold then [ ("bold", "true") ] else [])
    @ if r.italic then [ ("italic", "true") ] else []
  in
  Xml.Node.element "run" ~attrs [ Xml.Node.text r.text ]

let block_to_xml = function
  | Heading (level, rs) ->
      Xml.Node.element "heading"
        ~attrs:[ ("level", string_of_int level) ]
        (List.map run_to_xml rs)
  | Paragraph rs -> Xml.Node.element "para" (List.map run_to_xml rs)

let to_xml t =
  let bookmark_to_xml (name, (s : span)) =
    Xml.Node.element "bookmark"
      ~attrs:
        [
          ("name", name);
          ("para", string_of_int s.para);
          ("offset", string_of_int s.offset);
          ("length", string_of_int s.length);
        ]
      []
  in
  Xml.Node.element "document"
    ~attrs:[ ("title", t.doc_title); ("author", t.doc_author) ]
    (List.map block_to_xml (blocks t)
    @ List.map bookmark_to_xml (bookmarks t))

let run_of_xml node =
  {
    text = Xml.Node.text_content node;
    bold = Xml.Node.attr "bold" node = Some "true";
    italic = Xml.Node.attr "italic" node = Some "true";
  }

let int_attr name node =
  Option.bind (Xml.Node.attr name node) int_of_string_opt

let of_xml root =
  match root with
  | Xml.Node.Element { name = "document"; _ } ->
      let t =
        create
          ~title:(Option.value (Xml.Node.attr "title" root) ~default:"")
          ~author:(Option.value (Xml.Node.attr "author" root) ~default:"")
          ()
      in
      let rec load = function
        | [] -> Ok t
        | node :: rest -> (
            match node with
            | Xml.Node.Element { name = "para"; _ } ->
                append_block t
                  (Paragraph
                     (List.map run_of_xml (Xml.Node.find_children "run" node)));
                load rest
            | Xml.Node.Element { name = "heading"; _ } -> (
                match int_attr "level" node with
                | Some level when level >= 1 && level <= 6 ->
                    append_block t
                      (Heading
                         ( level,
                           List.map run_of_xml
                             (Xml.Node.find_children "run" node) ));
                    load rest
                | Some _ | None -> Error "bad heading level")
            | Xml.Node.Element { name = "bookmark"; _ } -> (
                match
                  ( Xml.Node.attr "name" node,
                    int_attr "para" node,
                    int_attr "offset" node,
                    int_attr "length" node )
                with
                | Some name, Some para, Some offset, Some length -> (
                    match add_bookmark t ~name { para; offset; length } with
                    | Ok () -> load rest
                    | Error msg -> Error msg)
                | _ -> Error "bad bookmark")
            | Xml.Node.Element { name; _ } ->
                Error (Printf.sprintf "unexpected element <%s>" name)
            | Xml.Node.Text _ | Xml.Node.Cdata _ | Xml.Node.Comment _
            | Xml.Node.Pi _ ->
                load rest)
      in
      load (Xml.Node.children root)
  | _ -> Error "expected a <document> root element"

let save t path = Xml.Print.to_file path (to_xml t)

let load path =
  match Xml.Parse.file path with
  | Error e -> Error (Xml.Parse.error_to_string e)
  | Ok root -> of_xml (Xml.Node.strip_whitespace root)

let equal a b =
  String.equal a.doc_title b.doc_title
  && String.equal a.doc_author b.doc_author
  && blocks a = blocks b
  && bookmarks a = bookmarks b
