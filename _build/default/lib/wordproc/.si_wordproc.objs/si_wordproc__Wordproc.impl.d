lib/wordproc/wordproc.ml: Buffer Hashtbl List Option Printf Si_xmlk String
