lib/wordproc/wordproc.mli: Si_xmlk
