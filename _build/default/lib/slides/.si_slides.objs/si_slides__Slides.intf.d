lib/slides/slides.mli: Si_xmlk
