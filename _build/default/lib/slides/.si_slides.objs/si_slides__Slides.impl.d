lib/slides/slides.ml: List Option Printf Si_xmlk String
