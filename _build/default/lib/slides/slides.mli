(** Slide presentations — the PowerPoint stand-in.

    A presentation is an ordered list of slides; each slide holds titled,
    positioned shapes. PowerPoint marks address a shape by slide number and
    shape id, optionally narrowing to one bullet. *)

type geometry = { x : int; y : int; w : int; h : int }

type shape_kind =
  | Text_box of string
  | Bullets of string list
  | Picture of string  (** alt text / file name placeholder *)

type shape = { id : string; kind : shape_kind; geom : geometry }

type slide

type t

type address = { slide : int; shape_id : string; bullet : int option }
(** [slide] is 1-based; [bullet], when present, is a 1-based index into a
    [Bullets] shape. *)

(** {1 Construction} *)

val create : ?title:string -> unit -> t
val add_slide : t -> title:string -> slide
val add_shape : slide -> ?geom:geometry -> id:string -> shape_kind ->
  (shape, string) result
(** Fails on a duplicate shape id within the slide. *)

(** {1 Reading} *)

val title : t -> string
val slides : t -> slide list
val slide_count : t -> int
val nth_slide : t -> int -> slide option
(** 1-based. *)

val slide_title : slide -> string
val shapes : slide -> shape list
val find_shape : slide -> string -> shape option

val shape_text : shape -> string
(** Text boxes yield their text; bullets join with ["\n"]; pictures yield
    their placeholder name. *)

val slide_text : slide -> string
(** Title plus all shape text. *)

val resolve : t -> address -> string option
(** The text the address selects: a whole shape's text, or one bullet. *)

val find_text : t -> string -> address list
(** Addresses of every shape (narrowed to a bullet where possible) whose
    text contains the needle. *)

(** {1 Persistence} *)

val to_xml : t -> Si_xmlk.Node.t
val of_xml : Si_xmlk.Node.t -> (t, string) result
val save : t -> string -> unit
val load : string -> (t, string) result
val equal : t -> t -> bool
