module Xml = Si_xmlk

type geometry = { x : int; y : int; w : int; h : int }

type shape_kind =
  | Text_box of string
  | Bullets of string list
  | Picture of string

type shape = { id : string; kind : shape_kind; geom : geometry }

type slide = {
  slide_title : string;
  mutable shape_list : shape list;  (* reverse order *)
}

type t = { pres_title : string; mutable slide_list : slide list (* reverse *) }

type address = { slide : int; shape_id : string; bullet : int option }

let default_geom = { x = 0; y = 0; w = 400; h = 100 }

let create ?(title = "") () = { pres_title = title; slide_list = [] }

let add_slide t ~title =
  let s = { slide_title = title; shape_list = [] } in
  t.slide_list <- s :: t.slide_list;
  s

let find_shape slide id =
  List.find_opt (fun sh -> String.equal sh.id id) slide.shape_list

let add_shape slide ?(geom = default_geom) ~id kind =
  match find_shape slide id with
  | Some _ -> Error (Printf.sprintf "shape %S already on slide" id)
  | None ->
      let sh = { id; kind; geom } in
      slide.shape_list <- sh :: slide.shape_list;
      Ok sh

let title t = t.pres_title
let slides t = List.rev t.slide_list
let slide_count t = List.length t.slide_list
let nth_slide t n = if n < 1 then None else List.nth_opt (slides t) (n - 1)
let slide_title s = s.slide_title
let shapes s = List.rev s.shape_list

let shape_text sh =
  match sh.kind with
  | Text_box s -> s
  | Bullets items -> String.concat "\n" items
  | Picture name -> name

let slide_text s =
  String.concat "\n" (s.slide_title :: List.map shape_text (shapes s))

let resolve t { slide; shape_id; bullet } =
  match nth_slide t slide with
  | None -> None
  | Some sl -> (
      match find_shape sl shape_id with
      | None -> None
      | Some sh -> (
          match (bullet, sh.kind) with
          | None, _ -> Some (shape_text sh)
          | Some i, Bullets items ->
              if i < 1 then None else List.nth_opt items (i - 1)
          | Some _, (Text_box _ | Picture _) -> None))

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  nl > 0
  &&
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let find_text t needle =
  List.concat
    (List.mapi
       (fun slide_i sl ->
         List.concat_map
           (fun sh ->
             match sh.kind with
             | Bullets items ->
                 List.concat
                   (List.mapi
                      (fun bullet_i item ->
                        if contains ~needle item then
                          [ { slide = slide_i + 1; shape_id = sh.id;
                              bullet = Some (bullet_i + 1) } ]
                        else [])
                      items)
             | Text_box _ | Picture _ ->
                 if contains ~needle (shape_text sh) then
                   [ { slide = slide_i + 1; shape_id = sh.id; bullet = None } ]
                 else [])
           (shapes sl))
       (slides t))

(* ----------------------------------------------------------------- XML *)

let geom_attrs g =
  [
    ("x", string_of_int g.x); ("y", string_of_int g.y);
    ("w", string_of_int g.w); ("h", string_of_int g.h);
  ]

let shape_to_xml sh =
  let attrs = ("id", sh.id) :: geom_attrs sh.geom in
  match sh.kind with
  | Text_box s ->
      Xml.Node.element "textbox" ~attrs [ Xml.Node.text s ]
  | Picture name -> Xml.Node.element "picture" ~attrs:(attrs @ [ ("alt", name) ]) []
  | Bullets items ->
      Xml.Node.element "bullets" ~attrs
        (List.map (fun i -> Xml.Node.element "item" [ Xml.Node.text i ]) items)

let to_xml t =
  Xml.Node.element "presentation"
    ~attrs:[ ("title", t.pres_title) ]
    (List.map
       (fun sl ->
         Xml.Node.element "slide"
           ~attrs:[ ("title", sl.slide_title) ]
           (List.map shape_to_xml (shapes sl)))
       (slides t))

let int_attr name node = Option.bind (Xml.Node.attr name node) int_of_string_opt

let geom_of_xml node =
  match
    (int_attr "x" node, int_attr "y" node, int_attr "w" node, int_attr "h" node)
  with
  | Some x, Some y, Some w, Some h -> { x; y; w; h }
  | _ -> default_geom

let shape_of_xml node =
  match (node, Xml.Node.attr "id" node) with
  | Xml.Node.Element { name = "textbox"; _ }, Some id ->
      Ok { id; geom = geom_of_xml node; kind = Text_box (Xml.Node.text_content node) }
  | Xml.Node.Element { name = "picture"; _ }, Some id ->
      Ok
        {
          id;
          geom = geom_of_xml node;
          kind = Picture (Option.value (Xml.Node.attr "alt" node) ~default:"");
        }
  | Xml.Node.Element { name = "bullets"; _ }, Some id ->
      let items =
        List.map Xml.Node.text_content (Xml.Node.find_children "item" node)
      in
      Ok { id; geom = geom_of_xml node; kind = Bullets items }
  | Xml.Node.Element { name; _ }, Some _ ->
      Error (Printf.sprintf "unknown shape <%s>" name)
  | Xml.Node.Element _, None -> Error "shape missing id"
  | (Xml.Node.Text _ | Xml.Node.Cdata _ | Xml.Node.Comment _ | Xml.Node.Pi _), _
    ->
      Error "expected a shape element"

let of_xml root =
  match root with
  | Xml.Node.Element { name = "presentation"; _ } ->
      let t =
        create ~title:(Option.value (Xml.Node.attr "title" root) ~default:"") ()
      in
      let load_slide node =
        let sl =
          add_slide t
            ~title:(Option.value (Xml.Node.attr "title" node) ~default:"")
        in
        let rec load = function
          | [] -> Ok ()
          | child :: rest -> (
              match shape_of_xml child with
              | Error _ as e -> e
              | Ok sh -> (
                  match add_shape sl ~geom:sh.geom ~id:sh.id sh.kind with
                  | Ok _ -> load rest
                  | Error msg -> Error msg))
        in
        load (List.filter Xml.Node.is_element (Xml.Node.children node))
      in
      let rec slides_loop = function
        | [] -> Ok t
        | s :: rest -> (
            match load_slide s with
            | Ok () -> slides_loop rest
            | Error msg -> Error msg)
      in
      slides_loop (Xml.Node.find_children "slide" root)
  | _ -> Error "expected a <presentation> root element"

let save t path = Xml.Print.to_file path (to_xml t)

let load path =
  match Xml.Parse.file path with
  | Error e -> Error (Xml.Parse.error_to_string e)
  | Ok root -> of_xml (Xml.Node.strip_whitespace root)

let equal a b =
  String.equal a.pres_title b.pres_title
  && List.length a.slide_list = List.length b.slide_list
  && List.for_all2
       (fun x y ->
         String.equal x.slide_title y.slide_title
         && shapes x = shapes y)
       (slides a) (slides b)
