module Xml = Si_xmlk

type t = {
  mutable sheet_list : Sheet.t list;
  mutable names : (string * (string * Cellref.range)) list;
      (* defined name -> (sheet name, range) *)
}

let create ?(sheet_names = [ "Sheet1" ]) () =
  { sheet_list = List.map Sheet.create sheet_names; names = [] }

let sheets wb = wb.sheet_list
let sheet_names wb = List.map Sheet.name wb.sheet_list

let sheet wb name =
  List.find_opt (fun s -> String.equal (Sheet.name s) name) wb.sheet_list

let sheet_exn wb name =
  match sheet wb name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Workbook: no sheet %S" name)

let add_sheet wb name =
  match sheet wb name with
  | Some _ -> Error (Printf.sprintf "sheet %S already exists" name)
  | None ->
      let s = Sheet.create name in
      wb.sheet_list <- wb.sheet_list @ [ s ];
      Ok s

let remove_sheet wb name =
  let before = List.length wb.sheet_list in
  wb.sheet_list <-
    List.filter (fun s -> not (String.equal (Sheet.name s) name)) wb.sheet_list;
  List.length wb.sheet_list < before

let default_sheet wb =
  match wb.sheet_list with
  | s :: _ -> s
  | [] -> invalid_arg "Workbook: no sheets"

let resolve_sheet wb = function
  | Some name -> sheet_exn wb name
  | None -> default_sheet wb

let parse_cell_exn address =
  match Cellref.cell_of_string address with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Workbook: bad cell address %S" address)

let set wb ?sheet_name address input =
  Sheet.set_input (resolve_sheet wb sheet_name) (parse_cell_exn address) input

let input wb ?sheet_name address =
  Sheet.input (resolve_sheet wb sheet_name) (parse_cell_exn address)

(* ---------------------------------------------------------- evaluation *)

(* Evaluation memoizes per call and carries an "in progress" flag per cell
   for cycle detection: re-entering a cell that is being evaluated yields
   Error Cycle. *)
type eval_state = {
  wb : t;
  memo : (string * int * int, Value.t) Hashtbl.t;
  in_progress : (string * int * int, unit) Hashtbl.t;
}

let rec eval_cell st sheet_name (cell : Cellref.cell) =
  match sheet st.wb sheet_name with
  | None -> Value.Error Value.Bad_ref
  | Some s -> (
      let k = (sheet_name, cell.row, cell.col) in
      match Hashtbl.find_opt st.memo k with
      | Some v -> v
      | None ->
          if Hashtbl.mem st.in_progress k then Value.Error Value.Cycle
          else begin
            Hashtbl.add st.in_progress k ();
            let v =
              match Sheet.content s cell with
              | None -> Value.Empty
              | Some (Sheet.Literal v) -> v
              | Some (Sheet.Formula e) -> eval_formula st sheet_name e
            in
            Hashtbl.remove st.in_progress k;
            Hashtbl.replace st.memo k v;
            v
          end)

and eval_formula st sheet_name expr =
  let env =
    {
      Formula.cell_value =
        (fun sheet_opt cell ->
          eval_cell st (Option.value sheet_opt ~default:sheet_name) cell);
      Formula.range_values =
        (fun sheet_opt range ->
          let target = Option.value sheet_opt ~default:sheet_name in
          List.map (eval_cell st target) (Cellref.cells range));
    }
  in
  Formula.eval env expr

let fresh_state wb =
  { wb; memo = Hashtbl.create 64; in_progress = Hashtbl.create 16 }

let value wb ?sheet_name address =
  let s = resolve_sheet wb sheet_name in
  eval_cell (fresh_state wb) (Sheet.name s) (parse_cell_exn address)

let display wb ?sheet_name address =
  Value.to_display (value wb ?sheet_name address)

let range_values wb ?sheet_name range =
  let s = resolve_sheet wb sheet_name in
  let st = fresh_state wb in
  List.map (eval_cell st (Sheet.name s)) (Cellref.cells range)

let precedents wb ?sheet_name address =
  let s = resolve_sheet wb sheet_name in
  match Sheet.content s (parse_cell_exn address) with
  | Some (Sheet.Formula e) -> Formula.references e
  | Some (Sheet.Literal _) | None -> []

(* --------------------------------------------------------- defined names *)

let valid_defined_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
         | _ -> false)
       s
  (* "A1"-shaped names would be ambiguous with cell references. *)
  && Cellref.cell_of_string s = None

let lookup_name wb name = List.assoc_opt name wb.names

let define_name wb ~name ~sheet_name range =
  if not (valid_defined_name name) then
    Error (Printf.sprintf "%S is not a valid defined name" name)
  else if lookup_name wb name <> None then
    Error (Printf.sprintf "name %S already defined" name)
  else if sheet wb sheet_name = None then
    Error (Printf.sprintf "no sheet %S" sheet_name)
  else begin
    wb.names <- (name, (sheet_name, range)) :: wb.names;
    Ok ()
  end

let defined_names wb =
  List.sort (fun (a, _) (b, _) -> String.compare a b) wb.names

let remove_name wb name =
  if lookup_name wb name <> None then begin
    wb.names <- List.remove_assoc name wb.names;
    true
  end
  else false

(* ------------------------------------------------------ structural edits *)

(* Which axis a structural edit moves. *)
type axis = Rows | Cols

let axis_of (c : Cellref.cell) = function
  | Rows -> c.Cellref.row
  | Cols -> c.Cellref.col

let with_axis (c : Cellref.cell) axis v =
  match axis with
  | Rows -> { c with Cellref.row = v }
  | Cols -> { c with Cellref.col = v }

(* Rewrites of formula references when rows/columns of [target_sheet]
   move. [shift i] returns the new index, or None when deleted. *)
let adjust_formula ~axis ~target_sheet ~formula_sheet ~shift expr =
  let targets sheet_opt =
    String.equal
      (Option.value sheet_opt ~default:formula_sheet)
      target_sheet
  in
  let ref_error = Formula.Call ("REFERROR", []) in
  let shift_cell (c : Cellref.cell) =
    Option.map (with_axis c axis) (shift (axis_of c axis))
  in
  (* A range survives if any row/column of it survives: corners clamp
     inward. *)
  let shift_range (r : Cellref.range) =
    let rec first_surviving i limit step =
      if i = limit + step then None
      else
        match shift i with
        | Some i' -> Some i'
        | None -> first_surviving (i + step) limit step
    in
    let lo = axis_of r.Cellref.top_left axis in
    let hi = axis_of r.Cellref.bottom_right axis in
    match (first_surviving lo hi 1, first_surviving hi lo (-1)) with
    | Some lo', Some hi' when lo' <= hi' ->
        Some
          (Cellref.range_of_cells
             (with_axis r.Cellref.top_left axis lo')
             (with_axis r.Cellref.bottom_right axis hi'))
    | _ -> None
  in
  let rec go expr =
    match expr with
    | Formula.Ref { sheet; cell } when targets sheet -> (
        match shift_cell cell with
        | Some cell -> Formula.Ref { sheet; cell }
        | None -> ref_error)
    | Formula.Range { sheet; range } when targets sheet -> (
        match shift_range range with
        | Some range -> Formula.Range { sheet; range }
        | None -> ref_error)
    | Formula.Ref _ | Formula.Range _ | Formula.Number _ | Formula.Text _
    | Formula.Bool _ ->
        expr
    | Formula.Neg e -> Formula.Neg (go e)
    | Formula.Binary (op, l, r) -> Formula.Binary (op, go l, go r)
    | Formula.Call (f, args) -> Formula.Call (f, List.map go args)
  in
  go expr

let apply_structural_edit wb ~axis ~sheet_name ~shift =
  match sheet wb sheet_name with
  | None -> Error (Printf.sprintf "no sheet %S" sheet_name)
  | Some target ->
      (* 1. Move the cells of the edited sheet. *)
      (match axis with
      | Rows -> Sheet.remap_rows target shift
      | Cols -> Sheet.remap_cols target shift);
      (* 2. Rewrite formulas everywhere that reference the edited sheet. *)
      List.iter
        (fun s ->
          let updates =
            Sheet.fold
              (fun cell content acc ->
                match content with
                | Sheet.Formula e ->
                    let e' =
                      adjust_formula ~axis ~target_sheet:sheet_name
                        ~formula_sheet:(Sheet.name s) ~shift e
                    in
                    (cell, e') :: acc
                | Sheet.Literal _ -> acc)
              s []
          in
          List.iter (fun (cell, e) -> Sheet.set_formula s cell e) updates)
        wb.sheet_list;
      (* 3. Defined names on the edited sheet follow (a fully deleted name
         is dropped). *)
      wb.names <-
        List.filter_map
          (fun (name, (ns, range)) ->
            if not (String.equal ns sheet_name) then Some (name, (ns, range))
            else
              let fake =
                Formula.Range { Formula.sheet = Some sheet_name; range }
              in
              match
                adjust_formula ~axis ~target_sheet:sheet_name
                  ~formula_sheet:sheet_name ~shift fake
              with
              | Formula.Range { range; _ } -> Some (name, (ns, range))
              | _ -> None)
          wb.names;
      Ok ()

type structural_op = Insert | Delete

let structural_edit wb ~axis ~op ~what ?sheet_name ~at ~count () =
  if at < 1 || count < 1 then
    Error (Printf.sprintf "%s: at and count must be >= 1" what)
  else
    let sheet_name =
      match sheet_name with
      | Some s -> s
      | None -> Sheet.name (default_sheet wb)
    in
    let shift =
      match op with
      | Insert -> fun i -> if i >= at then Some (i + count) else Some i
      | Delete ->
          fun i ->
            if i < at then Some i
            else if i < at + count then None
            else Some (i - count)
    in
    apply_structural_edit wb ~axis ~sheet_name ~shift

let insert_rows wb ?sheet_name ~at ~count () =
  structural_edit wb ~axis:Rows ~op:Insert ~what:"insert_rows" ?sheet_name
    ~at ~count ()

let delete_rows wb ?sheet_name ~at ~count () =
  structural_edit wb ~axis:Rows ~op:Delete ~what:"delete_rows" ?sheet_name
    ~at ~count ()

let insert_cols wb ?sheet_name ~at ~count () =
  structural_edit wb ~axis:Cols ~op:Insert ~what:"insert_cols" ?sheet_name
    ~at ~count ()

let delete_cols wb ?sheet_name ~at ~count () =
  structural_edit wb ~axis:Cols ~op:Delete ~what:"delete_cols" ?sheet_name
    ~at ~count ()

(* ----------------------------------------------------------------- CSV *)

let parse_csv text =
  (* Returns rows of fields. Handles quoted fields with doubled quotes and
     embedded newlines; accepts both \n and \r\n. *)
  let n = String.length text in
  let rows = ref [] and row = ref [] and buf = Buffer.create 32 in
  let flush_field () =
    row := Buffer.contents buf :: !row;
    Buffer.clear buf
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !row :: !rows;
    row := []
  in
  let rec plain i =
    if i >= n then begin
      if Buffer.length buf > 0 || !row <> [] then flush_row ();
      ()
    end
    else
      match text.[i] with
      | ',' ->
          flush_field ();
          plain (i + 1)
      | '\r' when i + 1 < n && text.[i + 1] = '\n' ->
          flush_row ();
          plain (i + 2)
      | '\n' ->
          flush_row ();
          plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
          Buffer.add_char buf c;
          plain (i + 1)
  and quoted i =
    if i >= n then begin
      (* Unterminated quote: tolerate, treat as field end. *)
      flush_row ()
    end
    else
      match text.[i] with
      | '"' when i + 1 < n && text.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
          Buffer.add_char buf c;
          quoted (i + 1)
  in
  plain 0;
  List.rev !rows

let quote_csv_field s =
  let needs_quoting =
    String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s
  in
  if needs_quoting then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let import_csv wb ~sheet_name text =
  match add_sheet wb sheet_name with
  | Error _ as e -> e
  | Ok s ->
      List.iteri
        (fun row_i fields ->
          List.iteri
            (fun col_i field ->
              if field <> "" then
                Sheet.set_input s (Cellref.cell (col_i + 1) (row_i + 1)) field)
            fields)
        (parse_csv text);
      Ok ()

let export_csv wb ~sheet_name ~evaluate =
  match sheet wb sheet_name with
  | None -> None
  | Some s ->
      let cell_text cell =
        if evaluate then
          Value.to_display
            (eval_cell (fresh_state wb) sheet_name cell)
        else Sheet.input s cell
      in
      (match Sheet.used_range s with
      | None -> Some ""
      | Some r ->
          let rows =
            List.init (Cellref.height r) (fun i ->
                let row = r.Cellref.top_left.row + i in
                List.init (Cellref.width r) (fun j ->
                    let col = r.Cellref.top_left.col + j in
                    quote_csv_field (cell_text (Cellref.cell col row)))
                |> String.concat ",")
          in
          Some (String.concat "\n" rows ^ "\n"))

(* ----------------------------------------------------------------- XML *)

let to_xml wb =
  let sheet_to_xml s =
    let cells =
      Sheet.fold
        (fun cell content acc ->
          let kind, body =
            match content with
            | Sheet.Formula e -> ("formula", Formula.to_string e)
            | Sheet.Literal (Value.Number _ as v) ->
                ("number", Value.to_display v)
            | Sheet.Literal (Value.Bool _ as v) -> ("bool", Value.to_display v)
            | Sheet.Literal (Value.Text s) -> ("text", s)
            | Sheet.Literal (Value.Error _ as v) ->
                ("error", Value.to_display v)
            | Sheet.Literal Value.Empty -> ("text", "")
          in
          Xml.Node.element "cell"
            ~attrs:
              [
                ("ref", Cellref.cell_to_string cell); ("type", kind);
              ]
            [ Xml.Node.text body ]
          :: acc)
        s []
    in
    Xml.Node.element "sheet"
      ~attrs:[ ("name", Sheet.name s) ]
      (List.rev cells)
  in
  let name_to_xml (name, (sheet_name, range)) =
    Xml.Node.element "name"
      ~attrs:
        [
          ("name", name); ("sheet", sheet_name);
          ("range", Cellref.to_string range);
        ]
      []
  in
  Xml.Node.element "workbook"
    (List.map sheet_to_xml wb.sheet_list
    @ List.map name_to_xml (defined_names wb))

let error_of_code = function
  | "#DIV/0!" -> Some Value.Div0
  | "#VALUE!" -> Some Value.Bad_value
  | "#REF!" -> Some Value.Bad_ref
  | "#NAME?" -> Some Value.Bad_name
  | "#CYCLE!" -> Some Value.Cycle
  | _ -> None

let of_xml root =
  match root with
  | Xml.Node.Element { name = "workbook"; _ } -> (
      let wb = { sheet_list = []; names = [] } in
      let load_cell s node =
        match
          ( Xml.Node.attr "ref" node,
            Xml.Node.attr "type" node,
            Xml.Node.text_content node )
        with
        | Some address, Some kind, body -> (
            match Cellref.cell_of_string address with
            | None -> Error (Printf.sprintf "bad cell ref %S" address)
            | Some cell -> (
                match kind with
                | "formula" -> (
                    match Formula.parse body with
                    | Ok e ->
                        Sheet.set_formula s cell e;
                        Ok ()
                    | Error msg ->
                        Error (Printf.sprintf "bad formula at %s: %s" address msg))
                | "number" -> (
                    match float_of_string_opt body with
                    | Some f ->
                        Sheet.set_value s cell (Value.Number f);
                        Ok ()
                    | None -> Error (Printf.sprintf "bad number at %s" address))
                | "bool" ->
                    Sheet.set_value s cell
                      (Value.Bool (String.uppercase_ascii body = "TRUE"));
                    Ok ()
                | "error" -> (
                    match error_of_code body with
                    | Some e ->
                        Sheet.set_value s cell (Value.Error e);
                        Ok ()
                    | None -> Error (Printf.sprintf "bad error code at %s" address))
                | "text" ->
                    Sheet.set_value s cell (Value.Text body);
                    Ok ()
                | other -> Error (Printf.sprintf "unknown cell type %S" other)))
        | _ -> Error "cell missing ref or type attribute"
      in
      let load_sheet node =
        match Xml.Node.attr "name" node with
        | None -> Error "sheet missing name attribute"
        | Some name -> (
            match add_sheet wb name with
            | Error _ as e -> e |> Result.map (fun _ -> ())
            | Ok s ->
                let rec cells = function
                  | [] -> Ok ()
                  | c :: rest -> (
                      match load_cell s c with
                      | Ok () -> cells rest
                      | Error _ as e -> e)
                in
                cells (Xml.Node.find_children "cell" node))
      in
      let load_name node =
        match
          ( Xml.Node.attr "name" node,
            Xml.Node.attr "sheet" node,
            Option.bind (Xml.Node.attr "range" node) Cellref.of_string )
        with
        | Some name, Some sheet_name, Some range ->
            define_name wb ~name ~sheet_name range
        | _ -> Error "malformed <name> element"
      in
      let rec load = function
        | [] -> Ok wb
        | s :: rest -> (
            match load_sheet s with
            | Ok () -> load rest
            | Error msg -> Error msg)
      in
      let rec load_names = function
        | [] -> Ok wb
        | n :: rest -> (
            match load_name n with
            | Ok () -> load_names rest
            | Error msg -> Error msg)
      in
      match load (Xml.Node.find_children "sheet" root) with
      | Ok _ -> load_names (Xml.Node.find_children "name" root)
      | Error _ as e -> e)
  | _ -> Error "expected a <workbook> root element"

let save wb path = Xml.Print.to_file path (to_xml wb)

let load path =
  match Xml.Parse.file path with
  | Error e -> Error (Xml.Parse.error_to_string e)
  | Ok root -> of_xml (Xml.Node.strip_whitespace root)

let equal a b =
  let sheet_equal x y =
    String.equal (Sheet.name x) (Sheet.name y)
    && Sheet.cell_count x = Sheet.cell_count y
    && Sheet.fold
         (fun cell _ acc -> acc && Sheet.input x cell = Sheet.input y cell)
         x true
  in
  List.length a.sheet_list = List.length b.sheet_list
  && List.for_all2 sheet_equal a.sheet_list b.sheet_list
  && List.map
       (fun (n, (s, r)) -> (n, s, Cellref.to_string r))
       (defined_names a)
     = List.map
         (fun (n, (s, r)) -> (n, s, Cellref.to_string r))
         (defined_names b)
