type content = Literal of Value.t | Formula of Formula.expr

type t = {
  mutable sheet_name : string;
  cells : (int * int, content) Hashtbl.t;  (* key: (row, col) *)
}

let create sheet_name = { sheet_name; cells = Hashtbl.create 64 }
let name t = t.sheet_name
let rename t new_name = t.sheet_name <- new_name
let key (c : Cellref.cell) = (c.row, c.col)

let set_value t cell v =
  if v = Value.Empty then Hashtbl.remove t.cells (key cell)
  else Hashtbl.replace t.cells (key cell) (Literal v)

let set_formula t cell e = Hashtbl.replace t.cells (key cell) (Formula e)
let clear t cell = Hashtbl.remove t.cells (key cell)

let classify_literal s =
  match float_of_string_opt (String.trim s) with
  | Some f -> Value.Number f
  | None -> (
      match String.uppercase_ascii (String.trim s) with
      | "TRUE" -> Value.Bool true
      | "FALSE" -> Value.Bool false
      | _ -> Value.Text s)

let set_input t cell s =
  if s = "" then clear t cell
  else if s.[0] = '=' then
    let body = String.sub s 1 (String.length s - 1) in
    match Formula.parse body with
    | Ok e -> set_formula t cell e
    | Error _ -> set_value t cell (Value.Text s)
  else set_value t cell (classify_literal s)

let content t cell = Hashtbl.find_opt t.cells (key cell)

let input t cell =
  match content t cell with
  | None -> ""
  | Some (Literal v) -> Value.to_display v
  | Some (Formula e) -> "=" ^ Formula.to_string e

let is_blank t cell = content t cell = None
let cell_count t = Hashtbl.length t.cells

let used_range t =
  Hashtbl.fold
    (fun (row, col) _ acc ->
      match acc with
      | None -> Some (Cellref.range_of_cells (Cellref.cell col row) (Cellref.cell col row))
      | Some r ->
          Some
            (Cellref.range_of_cells
               (Cellref.cell (min r.Cellref.top_left.col col)
                  (min r.Cellref.top_left.row row))
               (Cellref.cell
                  (max r.Cellref.bottom_right.col col)
                  (max r.Cellref.bottom_right.row row))))
    t.cells None

let sorted_bindings t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.cells []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let iter f t =
  List.iter
    (fun ((row, col), c) -> f (Cellref.cell col row) c)
    (sorted_bindings t)

let fold f t init =
  List.fold_left
    (fun acc ((row, col), c) -> f (Cellref.cell col row) c acc)
    init (sorted_bindings t)

let copy t = { sheet_name = t.sheet_name; cells = Hashtbl.copy t.cells }

let remap axis t f =
  let bindings = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.cells [] in
  Hashtbl.reset t.cells;
  List.iter
    (fun ((row, col), content) ->
      let moved =
        match axis with
        | `Rows -> Option.map (fun row' -> (row', col)) (f row)
        | `Cols -> Option.map (fun col' -> (row, col')) (f col)
      in
      match moved with
      | Some key -> Hashtbl.replace t.cells key content
      | None -> ())
    bindings

let remap_rows t f = remap `Rows t f
let remap_cols t f = remap `Cols t f
