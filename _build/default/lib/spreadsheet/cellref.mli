(** A1-notation cell and range references.

    This is the address vocabulary of Excel marks (Fig 8 of the paper:
    [fileName], [sheetName], [range]). Columns are 1-based ([A] = 1), rows
    are 1-based. Absolute markers ([$A$1]) are parsed and preserved but do
    not affect identity. *)

type cell = { col : int; row : int; abs_col : bool; abs_row : bool }
type range = { top_left : cell; bottom_right : cell }
(** Normalized: [top_left] is the minimum column and row of the two corners
    regardless of how the range was written. *)

(** {1 Columns} *)

val column_of_letters : string -> int option
(** ["A"] → 1, ["Z"] → 26, ["AA"] → 27 … Case-insensitive. *)

val letters_of_column : int -> string
(** @raise Invalid_argument on non-positive columns. *)

(** {1 Cells} *)

val cell : int -> int -> cell
(** [cell col row], relative. *)

val cell_of_string : string -> cell option
(** Parses ["B12"], ["$B12"], ["B$12"], ["$B$12"]. *)

val cell_to_string : cell -> string
val cell_equal : cell -> cell -> bool
(** Positional equality (ignores [$] markers). *)

(** {1 Ranges} *)

val range_of_cells : cell -> cell -> range
(** Normalizes corner order. *)

val of_string : string -> range option
(** Parses ["A1"], ["A1:B3"], ["B3:A1"] (normalized). *)

val of_string_exn : string -> range
val to_string : range -> string
(** Single-cell ranges print as the cell ("A1", not "A1:A1"). *)

val equal : range -> range -> bool
(** Positional equality. *)

val is_single_cell : range -> bool
val contains : range -> cell -> bool
val intersects : range -> range -> bool
val cells : range -> cell list
(** Row-major enumeration of the cells in the range. *)

val width : range -> int
val height : range -> int
val size : range -> int

val pp : Format.formatter -> range -> unit
val pp_cell : Format.formatter -> cell -> unit
