type error_kind = Div0 | Bad_value | Bad_ref | Bad_name | Cycle

type t =
  | Empty
  | Number of float
  | Text of string
  | Bool of bool
  | Error of error_kind

let number f = Number f
let text s = Text s

let error_code = function
  | Div0 -> "#DIV/0!"
  | Bad_value -> "#VALUE!"
  | Bad_ref -> "#REF!"
  | Bad_name -> "#NAME?"
  | Cycle -> "#CYCLE!"

let float_display f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    (* Shortest representation that still round-trips. *)
    let s = Printf.sprintf "%.12g" f in
    s

let to_display = function
  | Empty -> ""
  | Number f -> float_display f
  | Text s -> s
  | Bool true -> "TRUE"
  | Bool false -> "FALSE"
  | Error e -> error_code e

let to_number = function
  | Number f -> Some f
  | Bool true -> Some 1.
  | Bool false -> Some 0.
  | Empty -> Some 0.
  | Text s -> float_of_string_opt (String.trim s)
  | Error _ -> None

let equal a b =
  match (a, b) with
  | Empty, Empty -> true
  | Number x, Number y -> Float.equal x y
  | Text x, Text y -> String.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | Error x, Error y -> x = y
  | (Empty | Number _ | Text _ | Bool _ | Error _), _ -> false

let pp ppf v = Format.pp_print_string ppf (to_display v)
