type ref_target = { sheet : string option; cell : Cellref.cell }
type range_target = { sheet : string option; range : Cellref.range }

type binop =
  | Add | Sub | Mul | Div | Pow | Concat
  | Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Number of float
  | Text of string
  | Bool of bool
  | Ref of ref_target
  | Range of range_target
  | Neg of expr
  | Binary of binop * expr * expr
  | Call of string * expr list

(* ------------------------------------------------------------- lexing *)

type token =
  | Tnumber of float
  | Tstring of string
  | Tident of string      (* function name, TRUE/FALSE, or cell ref text *)
  | Tsheet of string      (* sheet name followed by '!' *)
  | Top of string
  | Tlparen
  | Trparen
  | Tcomma
  | Tcolon
  | Teof

exception Lex_error of string

let tokenize input =
  let n = String.length input in
  let pos = ref 0 in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let is_digit = function '0' .. '9' -> true | _ -> false in
  let is_ident_char = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' | '.' -> true
    | _ -> false
  in
  while !pos < n do
    let c = input.[!pos] in
    match c with
    | ' ' | '\t' | '\n' | '\r' -> incr pos
    | '(' -> push Tlparen; incr pos
    | ')' -> push Trparen; incr pos
    | ',' -> push Tcomma; incr pos
    | ':' -> push Tcolon; incr pos
    | '+' | '-' | '*' | '/' | '^' | '&' | '=' ->
        push (Top (String.make 1 c));
        incr pos
    | '<' | '>' ->
        let op =
          if !pos + 1 < n && (input.[!pos + 1] = '=' ||
                              (c = '<' && input.[!pos + 1] = '>'))
          then String.sub input !pos 2
          else String.make 1 c
        in
        pos := !pos + String.length op;
        push (Top op)
    | '"' ->
        (* Doubled quotes escape a quote, as in spreadsheets. *)
        let buf = Buffer.create 16 in
        incr pos;
        let rec scan () =
          match peek () with
          | None -> raise (Lex_error "unterminated string literal")
          | Some '"' when !pos + 1 < n && input.[!pos + 1] = '"' ->
              Buffer.add_char buf '"';
              pos := !pos + 2;
              scan ()
          | Some '"' -> incr pos
          | Some ch ->
              Buffer.add_char buf ch;
              incr pos;
              scan ()
        in
        scan ();
        push (Tstring (Buffer.contents buf))
    | '\'' ->
        (* Quoted sheet name: 'Lab Results'!A1 *)
        let buf = Buffer.create 16 in
        incr pos;
        let rec scan () =
          match peek () with
          | None -> raise (Lex_error "unterminated sheet name")
          | Some '\'' when !pos + 1 < n && input.[!pos + 1] = '\'' ->
              Buffer.add_char buf '\'';
              pos := !pos + 2;
              scan ()
          | Some '\'' -> incr pos
          | Some ch ->
              Buffer.add_char buf ch;
              incr pos;
              scan ()
        in
        scan ();
        if peek () = Some '!' then begin
          incr pos;
          push (Tsheet (Buffer.contents buf))
        end
        else raise (Lex_error "sheet name must be followed by '!'")
    | '0' .. '9' ->
        let start = !pos in
        while !pos < n && (is_digit input.[!pos] || input.[!pos] = '.') do
          incr pos
        done;
        if !pos < n && (input.[!pos] = 'e' || input.[!pos] = 'E') then begin
          incr pos;
          if !pos < n && (input.[!pos] = '+' || input.[!pos] = '-') then
            incr pos;
          while !pos < n && is_digit input.[!pos] do
            incr pos
          done
        end;
        let s = String.sub input start (!pos - start) in
        (match float_of_string_opt s with
        | Some f -> push (Tnumber f)
        | None -> raise (Lex_error (Printf.sprintf "bad number %S" s)))
    | 'a' .. 'z' | 'A' .. 'Z' | '_' | '$' ->
        let start = !pos in
        while !pos < n && is_ident_char input.[!pos] do
          incr pos
        done;
        let s = String.sub input start (!pos - start) in
        if peek () = Some '!' then begin
          incr pos;
          push (Tsheet s)
        end
        else push (Tident s)
    | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c))
  done;
  List.rev (Teof :: !toks)

(* ------------------------------------------------------------ parsing *)

exception Syntax_error of string

type parser_state = { mutable tokens : token list }

let peek_tok st = match st.tokens with [] -> Teof | t :: _ -> t

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let expect st tok what =
  if peek_tok st = tok then advance st
  else raise (Syntax_error (Printf.sprintf "expected %s" what))

(* An identifier is a cell reference iff it parses as one ("B12", "$A$1");
   otherwise it is a name (function, TRUE/FALSE). *)
let rec classify_ident st sheet name =
  match Cellref.cell_of_string name with
  | Some cell -> (
      (* Possibly a range: A1:B3 *)
      match peek_tok st with
      | Tcolon -> (
          advance st;
          match peek_tok st with
          | Tident name2 -> (
              advance st;
              match Cellref.cell_of_string name2 with
              | Some cell2 ->
                  Range { sheet; range = Cellref.range_of_cells cell cell2 }
              | None ->
                  raise
                    (Syntax_error
                       (Printf.sprintf "bad range end %S" name2)))
          | _ -> raise (Syntax_error "expected a cell after ':'"))
      | _ -> Ref { sheet; cell })
  | None -> (
      if sheet <> None then
        raise (Syntax_error "a sheet prefix must qualify a cell or range");
      match String.uppercase_ascii name with
      | "TRUE" -> Bool true
      | "FALSE" -> Bool false
      | upper -> (
          match peek_tok st with
          | Tlparen ->
              advance st;
              let args =
                if peek_tok st = Trparen then []
                else
                  let rec loop acc =
                    let e = parse_comparison st in
                    if peek_tok st = Tcomma then begin
                      advance st;
                      loop (e :: acc)
                    end
                    else List.rev (e :: acc)
                  in
                  loop []
              in
              expect st Trparen "')'";
              Call (upper, args)
          | _ ->
              raise
                (Syntax_error
                   (Printf.sprintf "unknown identifier %S" name))))

and parse_primary st =
  match peek_tok st with
  | Tnumber f ->
      advance st;
      Number f
  | Tstring s ->
      advance st;
      Text s
  | Tsheet sheet -> (
      advance st;
      match peek_tok st with
      | Tident name ->
          advance st;
          classify_ident st (Some sheet) name
      | _ -> raise (Syntax_error "expected a cell after sheet name"))
  | Tident name ->
      advance st;
      classify_ident st None name
  | Tlparen ->
      advance st;
      let e = parse_comparison st in
      expect st Trparen "')'";
      e
  | Top "-" ->
      advance st;
      Neg (parse_unary st)
  | Top "+" ->
      advance st;
      parse_unary st
  | Teof -> raise (Syntax_error "unexpected end of formula")
  | _ -> raise (Syntax_error "unexpected token")

and parse_unary st = parse_primary st

and parse_power st =
  let base = parse_unary st in
  match peek_tok st with
  | Top "^" ->
      advance st;
      Binary (Pow, base, parse_power st)
  | _ -> base

and parse_mul st =
  let rec loop left =
    match peek_tok st with
    | Top "*" ->
        advance st;
        loop (Binary (Mul, left, parse_power st))
    | Top "/" ->
        advance st;
        loop (Binary (Div, left, parse_power st))
    | _ -> left
  in
  loop (parse_power st)

and parse_add st =
  let rec loop left =
    match peek_tok st with
    | Top "+" ->
        advance st;
        loop (Binary (Add, left, parse_mul st))
    | Top "-" ->
        advance st;
        loop (Binary (Sub, left, parse_mul st))
    | _ -> left
  in
  loop (parse_mul st)

and parse_concat st =
  let rec loop left =
    match peek_tok st with
    | Top "&" ->
        advance st;
        loop (Binary (Concat, left, parse_add st))
    | _ -> left
  in
  loop (parse_add st)

and parse_comparison st =
  let rec loop left =
    match peek_tok st with
    | Top "=" ->
        advance st;
        loop (Binary (Eq, left, parse_concat st))
    | Top "<>" ->
        advance st;
        loop (Binary (Ne, left, parse_concat st))
    | Top "<" ->
        advance st;
        loop (Binary (Lt, left, parse_concat st))
    | Top "<=" ->
        advance st;
        loop (Binary (Le, left, parse_concat st))
    | Top ">" ->
        advance st;
        loop (Binary (Gt, left, parse_concat st))
    | Top ">=" ->
        advance st;
        loop (Binary (Ge, left, parse_concat st))
    | _ -> left
  in
  loop (parse_concat st)

let parse input =
  match tokenize input with
  | exception Lex_error msg -> Error msg
  | tokens -> (
      let st = { tokens } in
      match parse_comparison st with
      | exception Syntax_error msg -> Error msg
      | expr ->
          if peek_tok st = Teof then Ok expr
          else Error "trailing input after formula")

let parse_exn input =
  match parse input with
  | Ok e -> e
  | Error msg -> invalid_arg ("Formula.parse_exn: " ^ msg)

(* ----------------------------------------------------------- printing *)

let binop_symbol = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Pow -> "^"
  | Concat -> "&" | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<="
  | Gt -> ">" | Ge -> ">="

let precedence = function
  | Eq | Ne | Lt | Le | Gt | Ge -> 1
  | Concat -> 2
  | Add | Sub -> 3
  | Mul | Div -> 4
  | Pow -> 5

let sheet_prefix = function
  | None -> ""
  | Some s ->
      let needs_quotes =
        not
          (String.for_all
             (function
               | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
               | _ -> false)
             s)
      in
      if needs_quotes then
        let escaped =
          String.concat "''" (String.split_on_char '\'' s)
        in
        "'" ^ escaped ^ "'!"
      else s ^ "!"

let quote_string s = "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""

let rec to_string_prec outer expr =
  match expr with
  | Number f -> Value.to_display (Value.Number f)
  | Text s -> quote_string s
  | Bool true -> "TRUE"
  | Bool false -> "FALSE"
  | Ref { sheet; cell } -> sheet_prefix sheet ^ Cellref.cell_to_string cell
  | Range { sheet; range } -> sheet_prefix sheet ^ Cellref.to_string range
  | Neg e -> "-" ^ to_string_prec 6 e
  | Binary (op, l, r) ->
      let p = precedence op in
      (* [^] is right-associative; every other operator is left-associative. *)
      let lp, rp = if op = Pow then (p + 1, p) else (p, p + 1) in
      let body =
        to_string_prec lp l ^ " " ^ binop_symbol op ^ " " ^ to_string_prec rp r
      in
      if p < outer then "(" ^ body ^ ")" else body
  | Call (name, args) ->
      name ^ "(" ^ String.concat ", " (List.map (to_string_prec 0) args) ^ ")"

let to_string e = to_string_prec 0 e
let equal a b = a = b
let pp ppf e = Format.pp_print_string ppf (to_string e)

let references expr =
  let rec go acc = function
    | Number _ | Text _ | Bool _ -> acc
    | Ref { sheet; cell } ->
        { sheet; range = Cellref.range_of_cells cell cell } :: acc
    | Range rt -> rt :: acc
    | Neg e -> go acc e
    | Binary (_, l, r) -> go (go acc l) r
    | Call (_, args) -> List.fold_left go acc args
  in
  List.rev (go [] expr)

(* --------------------------------------------------------- evaluation *)

type env = {
  cell_value : string option -> Cellref.cell -> Value.t;
  range_values : string option -> Cellref.range -> Value.t list;
}

let value_error e = Value.Error e

(* Flatten arguments for aggregate functions: ranges contribute all their
   cells, scalars contribute themselves. *)
let rec arg_values env expr =
  match expr with
  | Range { sheet; range } -> env.range_values sheet range
  | e -> [ eval env e ]

and numeric_fold env ~init ~f args =
  (* Aggregates skip Empty and Text, propagate Error. *)
  let rec go acc count = function
    | [] -> Ok (acc, count)
    | Value.Error e :: _ -> Error e
    | Value.Number x :: rest -> go (f acc x) (count + 1) rest
    | Value.Bool b :: rest -> go (f acc (if b then 1. else 0.)) (count + 1) rest
    | (Value.Empty | Value.Text _) :: rest -> go acc count rest
  in
  go init 0 (List.concat_map (arg_values env) args)

and eval_function env name args =
  let aggregate ~init ~f ~finish =
    match numeric_fold env ~init ~f args with
    | Error e -> value_error e
    | Ok (acc, count) -> finish acc count
  in
  let unary_number f =
    match args with
    | [ e ] -> (
        match Value.to_number (eval env e) with
        | Some x -> f x
        | None -> value_error Value.Bad_value)
    | _ -> value_error Value.Bad_value
  in
  let unary_text f =
    match args with
    | [ e ] -> (
        match eval env e with
        | Value.Error er -> value_error er
        | v -> f (Value.to_display v))
    | _ -> value_error Value.Bad_value
  in
  match name with
  | "SUM" -> aggregate ~init:0. ~f:( +. ) ~finish:(fun s _ -> Value.Number s)
  | "PRODUCT" ->
      aggregate ~init:1. ~f:( *. ) ~finish:(fun s _ -> Value.Number s)
  | "COUNT" -> aggregate ~init:0. ~f:(fun a _ -> a) ~finish:(fun _ c ->
      Value.Number (float_of_int c))
  | "COUNTA" ->
      let n =
        List.concat_map (arg_values env) args
        |> List.filter (fun v -> v <> Value.Empty)
        |> List.length
      in
      Value.Number (float_of_int n)
  | "AVERAGE" | "AVG" ->
      aggregate ~init:0. ~f:( +. ) ~finish:(fun s c ->
          if c = 0 then value_error Value.Div0
          else Value.Number (s /. float_of_int c))
  | "MIN" ->
      aggregate ~init:infinity ~f:Float.min ~finish:(fun s c ->
          if c = 0 then Value.Number 0. else Value.Number s)
  | "MAX" ->
      aggregate ~init:neg_infinity ~f:Float.max ~finish:(fun s c ->
          if c = 0 then Value.Number 0. else Value.Number s)
  | "MEDIAN" -> (
      let rec collect acc = function
        | [] -> Ok acc
        | Value.Error e :: _ -> Error e
        | Value.Number x :: rest -> collect (x :: acc) rest
        | Value.Bool b :: rest ->
            collect ((if b then 1. else 0.) :: acc) rest
        | (Value.Empty | Value.Text _) :: rest -> collect acc rest
      in
      match collect [] (List.concat_map (arg_values env) args) with
      | Error e -> value_error e
      | Ok [] -> value_error Value.Bad_value
      | Ok xs ->
          let sorted = List.sort Float.compare xs in
          let n = List.length sorted in
          let nth = List.nth sorted in
          if n mod 2 = 1 then Value.Number (nth (n / 2))
          else Value.Number ((nth ((n / 2) - 1) +. nth (n / 2)) /. 2.))
  | "IF" -> (
      match args with
      | [ cond; then_; else_ ] -> (
          match eval env cond with
          | Value.Error e -> value_error e
          | Value.Bool b -> eval env (if b then then_ else else_)
          | v -> (
              match Value.to_number v with
              | Some x -> eval env (if x <> 0. then then_ else else_)
              | None -> value_error Value.Bad_value))
      | _ -> value_error Value.Bad_value)
  | "AND" | "OR" -> (
      let is_and = name = "AND" in
      let rec go = function
        | [] -> Value.Bool is_and
        | v :: rest -> (
            match v with
            | Value.Error e -> value_error e
            | Value.Bool b ->
                if b <> is_and then Value.Bool (not is_and) else go rest
            | other -> (
                match Value.to_number other with
                | Some x ->
                    let b = x <> 0. in
                    if b <> is_and then Value.Bool (not is_and) else go rest
                | None -> value_error Value.Bad_value))
      in
      go (List.concat_map (arg_values env) args))
  | "NOT" -> (
      match args with
      | [ e ] -> (
          match eval env e with
          | Value.Bool b -> Value.Bool (not b)
          | Value.Error er -> value_error er
          | v -> (
              match Value.to_number v with
              | Some x -> Value.Bool (x = 0.)
              | None -> value_error Value.Bad_value))
      | _ -> value_error Value.Bad_value)
  | "ABS" -> unary_number (fun x -> Value.Number (Float.abs x))
  | "SQRT" ->
      unary_number (fun x ->
          if x < 0. then value_error Value.Bad_value
          else Value.Number (Float.sqrt x))
  | "ROUND" -> (
      match args with
      | [ _ ] -> unary_number (fun x -> Value.Number (Float.round x))
      | [ e1; e2 ] -> (
          match
            (Value.to_number (eval env e1), Value.to_number (eval env e2))
          with
          | Some x, Some digits ->
              let m = 10. ** Float.round digits in
              Value.Number (Float.round (x *. m) /. m)
          | _ -> value_error Value.Bad_value)
      | _ -> value_error Value.Bad_value)
  | "MOD" -> (
      match args with
      | [ e1; e2 ] -> (
          match
            (Value.to_number (eval env e1), Value.to_number (eval env e2))
          with
          | Some _, Some 0. -> value_error Value.Div0
          | Some x, Some y -> Value.Number (Float.rem x y)
          | _ -> value_error Value.Bad_value)
      | _ -> value_error Value.Bad_value)
  | "LEN" ->
      unary_text (fun s -> Value.Number (float_of_int (String.length s)))
  | "LEFT" | "RIGHT" -> (
      let take s n =
        let n = max 0 (min n (String.length s)) in
        if name = "LEFT" then String.sub s 0 n
        else String.sub s (String.length s - n) n
      in
      match args with
      | [ e ] -> (
          match eval env e with
          | Value.Error er -> value_error er
          | v -> Value.Text (take (Value.to_display v) 1))
      | [ e1; e2 ] -> (
          match (eval env e1, Value.to_number (eval env e2)) with
          | Value.Error er, _ -> value_error er
          | _, None -> value_error Value.Bad_value
          | v, Some n -> Value.Text (take (Value.to_display v) (int_of_float n)))
      | _ -> value_error Value.Bad_value)
  | "MID" -> (
      match args with
      | [ e1; e2; e3 ] -> (
          match
            ( eval env e1,
              Value.to_number (eval env e2),
              Value.to_number (eval env e3) )
          with
          | Value.Error er, _, _ -> value_error er
          | _, None, _ | _, _, None -> value_error Value.Bad_value
          | v, Some start, Some len ->
              let s = Value.to_display v in
              let start = int_of_float start and len = int_of_float len in
              if start < 1 || len < 0 then value_error Value.Bad_value
              else
                let from = min (start - 1) (String.length s) in
                let len = min len (String.length s - from) in
                Value.Text (String.sub s from len))
      | _ -> value_error Value.Bad_value)
  | "FIND" -> (
      (* FIND(needle, haystack): 1-based position, case-sensitive;
         #VALUE! when absent (as in Excel). *)
      match args with
      | [ e1; e2 ] -> (
          match (eval env e1, eval env e2) with
          | Value.Error er, _ | _, Value.Error er -> value_error er
          | needle_v, hay_v -> (
              let needle = Value.to_display needle_v in
              let hay = Value.to_display hay_v in
              let nl = String.length needle and hl = String.length hay in
              let rec scan i =
                if i + nl > hl then None
                else if String.sub hay i nl = needle then Some i
                else scan (i + 1)
              in
              match scan 0 with
              | Some i -> Value.Number (float_of_int (i + 1))
              | None -> value_error Value.Bad_value))
      | _ -> value_error Value.Bad_value)
  | "SUBSTITUTE" -> (
      match args with
      | [ e1; e2; e3 ] -> (
          match (eval env e1, eval env e2, eval env e3) with
          | Value.Error er, _, _ | _, Value.Error er, _ | _, _, Value.Error er
            ->
              value_error er
          | v, old_v, new_v ->
              let s = Value.to_display v in
              let old_s = Value.to_display old_v in
              let new_s = Value.to_display new_v in
              if old_s = "" then Value.Text s
              else
                let buf = Buffer.create (String.length s) in
                let ol = String.length old_s in
                let rec go i =
                  if i >= String.length s then Buffer.contents buf
                  else if
                    i + ol <= String.length s && String.sub s i ol = old_s
                  then begin
                    Buffer.add_string buf new_s;
                    go (i + ol)
                  end
                  else begin
                    Buffer.add_char buf s.[i];
                    go (i + 1)
                  end
                in
                Value.Text (go 0))
      | _ -> value_error Value.Bad_value)
  | "ISBLANK" -> (
      match args with
      | [ e ] -> Value.Bool (eval env e = Value.Empty)
      | _ -> value_error Value.Bad_value)
  | "ISNUMBER" -> (
      match args with
      | [ e ] ->
          Value.Bool
            (match eval env e with Value.Number _ -> true | _ -> false)
      | _ -> value_error Value.Bad_value)
  | "IFERROR" -> (
      match args with
      | [ e; fallback ] -> (
          match eval env e with
          | Value.Error _ -> eval env fallback
          | v -> v)
      | _ -> value_error Value.Bad_value)
  | "UPPER" -> unary_text (fun s -> Value.Text (String.uppercase_ascii s))
  | "LOWER" -> unary_text (fun s -> Value.Text (String.lowercase_ascii s))
  | "TRIM" -> unary_text (fun s -> Value.Text (String.trim s))
  | "VLOOKUP" -> (
      (* VLOOKUP(needle, table_range, col_index): exact match down the
         first column of the range, answer from the col_index-th column.
         The table argument must be a syntactic range — its shape (width)
         is needed to slice rows. Not-found is #VALUE! (no #N/A here). *)
      match args with
      | [ needle_e; Range { sheet; range }; col_e ] -> (
          let needle = eval env needle_e in
          match (needle, Value.to_number (eval env col_e)) with
          | Value.Error e, _ -> value_error e
          | _, None -> value_error Value.Bad_value
          | needle, Some col_f ->
              let col = int_of_float col_f in
              let width = Cellref.width range in
              if col < 1 || col > width then value_error Value.Bad_ref
              else
                let values = env.range_values sheet range in
                let same a b =
                  match (a, b) with
                  | Value.Number x, Value.Number y -> Float.equal x y
                  | Value.Text x, Value.Text y ->
                      String.lowercase_ascii x = String.lowercase_ascii y
                  | _ -> Value.equal a b
                in
                let rec rows = function
                  | [] -> value_error Value.Bad_value
                  | remaining ->
                      let row = List.filteri (fun i _ -> i < width) remaining in
                      let rest =
                        List.filteri (fun i _ -> i >= width) remaining
                      in
                      (match row with
                      | first :: _ when same first needle ->
                          List.nth row (col - 1)
                      | _ -> rows rest)
                in
                rows values)
      | _ -> value_error Value.Bad_value)
  | "REFERROR" ->
      (* What a deleted reference is rewritten to (see Workbook row
         deletion); always the #REF! error, as in Excel. *)
      value_error Value.Bad_ref
  | "CONCATENATE" | "CONCAT" ->
      let rec go acc = function
        | [] -> Value.Text acc
        | Value.Error e :: _ -> value_error e
        | v :: rest -> go (acc ^ Value.to_display v) rest
      in
      go "" (List.concat_map (arg_values env) args)
  | _ -> value_error Value.Bad_name

and eval env expr =
  match expr with
  | Number f -> Value.Number f
  | Text s -> Value.Text s
  | Bool b -> Value.Bool b
  | Ref { sheet; cell } -> env.cell_value sheet cell
  | Range _ ->
      (* A bare range is not a scalar; only aggregates may consume it. *)
      value_error Value.Bad_value
  | Neg e -> (
      match Value.to_number (eval env e) with
      | Some x -> Value.Number (-.x)
      | None -> (
          match eval env e with
          | Value.Error er -> value_error er
          | _ -> value_error Value.Bad_value))
  | Binary (op, l, r) -> eval_binary env op l r
  | Call (name, args) -> eval_function env name args

and eval_binary env op l r =
  let lv = eval env l in
  let rv = eval env r in
  match (lv, rv) with
  | Value.Error e, _ | _, Value.Error e -> value_error e
  | _ -> (
      match op with
      | Concat -> Value.Text (Value.to_display lv ^ Value.to_display rv)
      | Add | Sub | Mul | Div | Pow -> (
          match (Value.to_number lv, Value.to_number rv) with
          | Some x, Some y -> (
              match op with
              | Add -> Value.Number (x +. y)
              | Sub -> Value.Number (x -. y)
              | Mul -> Value.Number (x *. y)
              | Div ->
                  if y = 0. then value_error Value.Div0
                  else Value.Number (x /. y)
              | Pow -> Value.Number (x ** y)
              | Concat | Eq | Ne | Lt | Le | Gt | Ge -> assert false)
          | _ -> value_error Value.Bad_value)
      | Eq | Ne | Lt | Le | Gt | Ge ->
          let cmp =
            match (lv, rv) with
            | Value.Number x, Value.Number y -> Float.compare x y
            | Value.Text x, Value.Text y ->
                String.compare
                  (String.lowercase_ascii x)
                  (String.lowercase_ascii y)
            | Value.Bool x, Value.Bool y -> Bool.compare x y
            | _ -> (
                match (Value.to_number lv, Value.to_number rv) with
                | Some x, Some y -> Float.compare x y
                | _ ->
                    String.compare (Value.to_display lv)
                      (Value.to_display rv))
          in
          let result =
            match op with
            | Eq -> cmp = 0
            | Ne -> cmp <> 0
            | Lt -> cmp < 0
            | Le -> cmp <= 0
            | Gt -> cmp > 0
            | Ge -> cmp >= 0
            | Add | Sub | Mul | Div | Pow | Concat -> assert false
          in
          Value.Bool result)

let functions =
  [
    "SUM"; "PRODUCT"; "COUNT"; "COUNTA"; "AVERAGE"; "MIN"; "MAX"; "MEDIAN";
    "IF"; "AND"; "OR"; "NOT"; "ABS"; "SQRT"; "ROUND"; "MOD"; "LEN"; "UPPER";
    "LOWER"; "TRIM"; "CONCATENATE"; "LEFT"; "RIGHT"; "MID"; "FIND";
    "SUBSTITUTE"; "ISBLANK"; "ISNUMBER"; "IFERROR"; "VLOOKUP"; "REFERROR";
  ]
