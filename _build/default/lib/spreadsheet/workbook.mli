(** A workbook: ordered, named sheets plus the formula evaluation engine.

    This substrate stands in for Microsoft Excel as a base application. The
    pieces the superimposed architecture relies on (paper §1, §4.2): the
    workbook can report the "current selection" as an address
    ([sheet name + A1 range]), and can return to that address — resolving an
    Excel mark opens the file, activates the sheet and selects the range. *)

type t

val create : ?sheet_names:string list -> unit -> t
(** A workbook with the given sheets (default [["Sheet1"]]). *)

(** {1 Sheets} *)

val add_sheet : t -> string -> (Sheet.t, string) result
(** Fails on duplicate names. *)

val sheet : t -> string -> Sheet.t option
val sheet_exn : t -> string -> Sheet.t
val sheets : t -> Sheet.t list
val sheet_names : t -> string list
val remove_sheet : t -> string -> bool
val default_sheet : t -> Sheet.t
(** The first sheet. *)

(** {1 Cell access}

    [sheet_name] defaults to the first sheet. *)

val set : t -> ?sheet_name:string -> string -> string -> unit
(** [set wb "B2" "=SUM(A1:A9)"] — address parsed as A1 notation.
    @raise Invalid_argument on a bad address or unknown sheet. *)

val input : t -> ?sheet_name:string -> string -> string
(** The raw input of a cell (see {!Sheet.input}). *)

val value : t -> ?sheet_name:string -> string -> Value.t
(** Evaluated value, with cross-sheet references, memoization within the
    call, and cycle detection (a cell participating in a reference cycle
    evaluates to [Error Cycle]). Unknown sheets in references yield
    [Error Bad_ref]. *)

val display : t -> ?sheet_name:string -> string -> string
(** [Value.to_display] of {!value}. *)

val range_values : t -> ?sheet_name:string -> Cellref.range -> Value.t list
val precedents : t -> ?sheet_name:string -> string -> Formula.range_target list
(** Direct dependencies of a cell's formula ([[]] for literals/blank). *)

(** {1 Defined names}

    Named ranges, as in Excel's Insert > Name. A mark that addresses a
    defined name instead of a literal range survives structural edits,
    because {!insert_rows}/{!delete_rows} keep names up to date. *)

val define_name :
  t -> name:string -> sheet_name:string -> Cellref.range ->
  (unit, string) result
(** Fails on a duplicate name or unknown sheet. Names are case-sensitive
    identifiers (letters, digits, underscores; not starting with a digit). *)

val lookup_name : t -> string -> (string * Cellref.range) option
(** (sheet name, range). *)

val defined_names : t -> (string * (string * Cellref.range)) list
(** Sorted by name. *)

val remove_name : t -> string -> bool

(** {1 Structural edits}

    Row insertion/deletion with full reference adjustment: cell contents
    shift, formula references in {e every} sheet that point at the edited
    sheet are rewritten, and defined names follow. Deleting rows that a
    reference points into turns that reference into [#REF!] (the
    [REFERROR()] formula), as Excel does. *)

val insert_rows :
  t -> ?sheet_name:string -> at:int -> count:int -> unit ->
  (unit, string) result
(** Inserts [count] blank rows before row [at] (1-based). *)

val delete_rows :
  t -> ?sheet_name:string -> at:int -> count:int -> unit ->
  (unit, string) result
(** Deletes rows [at .. at+count-1]. *)

val insert_cols :
  t -> ?sheet_name:string -> at:int -> count:int -> unit ->
  (unit, string) result
(** Inserts [count] blank columns before column [at] (1-based; column 1 is
    [A]). *)

val delete_cols :
  t -> ?sheet_name:string -> at:int -> count:int -> unit ->
  (unit, string) result

(** {1 CSV}

    Minimal RFC-4180: comma separator, double-quote quoting with doubled
    quotes inside. Every parsed field goes through {!Sheet.set_input}, so
    numeric fields become numbers and [=...] fields become formulas. *)

val import_csv : t -> sheet_name:string -> string -> (unit, string) result
(** Creates (or fails on existing) sheet [sheet_name] and fills it from the
    CSV text, anchored at A1. *)

val export_csv : t -> sheet_name:string -> evaluate:bool -> string option
(** Evaluated values ([evaluate:true]) or raw inputs, over the used range. *)

(** {1 Persistence (XML)} *)

val to_xml : t -> Si_xmlk.Node.t
val of_xml : Si_xmlk.Node.t -> (t, string) result
val save : t -> string -> unit
val load : string -> (t, string) result

val equal : t -> t -> bool
(** Same sheets (order-sensitive) with the same cell inputs. *)
