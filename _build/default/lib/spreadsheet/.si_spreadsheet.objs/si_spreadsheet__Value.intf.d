lib/spreadsheet/value.mli: Format
