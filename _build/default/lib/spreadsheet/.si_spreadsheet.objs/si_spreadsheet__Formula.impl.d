lib/spreadsheet/formula.ml: Bool Buffer Cellref Float Format List Printf String Value
