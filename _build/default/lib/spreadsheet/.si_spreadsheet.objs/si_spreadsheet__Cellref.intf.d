lib/spreadsheet/cellref.mli: Format
