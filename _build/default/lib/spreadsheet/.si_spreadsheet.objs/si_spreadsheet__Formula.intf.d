lib/spreadsheet/formula.mli: Cellref Format Value
