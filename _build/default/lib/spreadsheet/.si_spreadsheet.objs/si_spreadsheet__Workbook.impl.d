lib/spreadsheet/workbook.ml: Buffer Cellref Formula Hashtbl List Option Printf Result Sheet Si_xmlk String Value
