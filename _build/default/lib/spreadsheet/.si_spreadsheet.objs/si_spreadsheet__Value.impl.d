lib/spreadsheet/value.ml: Bool Float Format Printf String
