lib/spreadsheet/sheet.mli: Cellref Formula Value
