lib/spreadsheet/workbook.mli: Cellref Formula Sheet Si_xmlk Value
