lib/spreadsheet/cellref.ml: Char Format Printf String
