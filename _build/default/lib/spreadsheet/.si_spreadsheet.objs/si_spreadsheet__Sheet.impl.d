lib/spreadsheet/sheet.ml: Cellref Formula Hashtbl List Option String Value
