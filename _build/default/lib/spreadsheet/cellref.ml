type cell = { col : int; row : int; abs_col : bool; abs_row : bool }
type range = { top_left : cell; bottom_right : cell }

let column_of_letters s =
  let n = String.length s in
  if n = 0 then None
  else
    let rec go i acc =
      if i >= n then Some acc
      else
        match Char.uppercase_ascii s.[i] with
        | 'A' .. 'Z' as c -> go (i + 1) ((acc * 26) + Char.code c - 64)
        | _ -> None
    in
    go 0 0

let letters_of_column col =
  if col <= 0 then invalid_arg "Cellref.letters_of_column: non-positive";
  let rec go col acc =
    if col = 0 then acc
    else
      let rem = (col - 1) mod 26 in
      go ((col - 1) / 26) (String.make 1 (Char.chr (65 + rem)) ^ acc)
  in
  go col ""

let cell col row = { col; row; abs_col = false; abs_row = false }

let cell_of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let eat_dollar () =
    if !pos < n && s.[!pos] = '$' then begin
      incr pos;
      true
    end
    else false
  in
  let abs_col = eat_dollar () in
  let col_start = !pos in
  while
    !pos < n
    && match s.[!pos] with 'a' .. 'z' | 'A' .. 'Z' -> true | _ -> false
  do
    incr pos
  done;
  let col_letters = String.sub s col_start (!pos - col_start) in
  let abs_row = eat_dollar () in
  let row_start = !pos in
  while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
    incr pos
  done;
  let row_digits = String.sub s row_start (!pos - row_start) in
  if !pos <> n || col_letters = "" || row_digits = "" then None
  else
    match (column_of_letters col_letters, int_of_string_opt row_digits) with
    | Some col, Some row when row >= 1 -> Some { col; row; abs_col; abs_row }
    | _ -> None

let cell_to_string { col; row; abs_col; abs_row } =
  Printf.sprintf "%s%s%s%d"
    (if abs_col then "$" else "")
    (letters_of_column col)
    (if abs_row then "$" else "")
    row

let cell_equal a b = a.col = b.col && a.row = b.row

let range_of_cells a b =
  let top_left =
    { a with col = min a.col b.col; row = min a.row b.row }
  and bottom_right =
    { b with col = max a.col b.col; row = max a.row b.row }
  in
  { top_left; bottom_right }

let of_string s =
  match String.index_opt s ':' with
  | None -> (
      match cell_of_string s with
      | Some c -> Some { top_left = c; bottom_right = c }
      | None -> None)
  | Some i -> (
      let left = String.sub s 0 i in
      let right = String.sub s (i + 1) (String.length s - i - 1) in
      match (cell_of_string left, cell_of_string right) with
      | Some a, Some b -> Some (range_of_cells a b)
      | _ -> None)

let of_string_exn s =
  match of_string s with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Cellref.of_string_exn: %S" s)

let is_single_cell { top_left; bottom_right } =
  cell_equal top_left bottom_right

let to_string r =
  if is_single_cell r then cell_to_string r.top_left
  else cell_to_string r.top_left ^ ":" ^ cell_to_string r.bottom_right

let equal a b =
  cell_equal a.top_left b.top_left && cell_equal a.bottom_right b.bottom_right

let contains { top_left; bottom_right } c =
  c.col >= top_left.col && c.col <= bottom_right.col && c.row >= top_left.row
  && c.row <= bottom_right.row

let intersects a b =
  a.top_left.col <= b.bottom_right.col
  && b.top_left.col <= a.bottom_right.col
  && a.top_left.row <= b.bottom_right.row
  && b.top_left.row <= a.bottom_right.row

let width { top_left; bottom_right } = bottom_right.col - top_left.col + 1
let height { top_left; bottom_right } = bottom_right.row - top_left.row + 1
let size r = width r * height r

let cells ({ top_left; bottom_right } : range) =
  let acc = ref [] in
  for row = bottom_right.row downto top_left.row do
    for col = bottom_right.col downto top_left.col do
      acc := cell col row :: !acc
    done
  done;
  !acc

let pp ppf r = Format.pp_print_string ppf (to_string r)
let pp_cell ppf c = Format.pp_print_string ppf (cell_to_string c)
