(** Spreadsheet formulas: AST, parser, printer, evaluator.

    The grammar is the classic spreadsheet expression language:

    {v =SUM(B2:B9) * (1 + C1)   =IF(A1 >= 140, "high", "ok")
       ='Lab Results'!B2 & " mmol/L" v}

    Operator precedence, lowest to highest: comparisons ([= <> < <= > >=]),
    concatenation ([&]), additive ([+ -]), multiplicative ([* /]), power
    ([^], right-associative), unary minus. *)

type ref_target = { sheet : string option; cell : Cellref.cell }
type range_target = { sheet : string option; range : Cellref.range }

type binop =
  | Add | Sub | Mul | Div | Pow | Concat
  | Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Number of float
  | Text of string
  | Bool of bool
  | Ref of ref_target
  | Range of range_target
  | Neg of expr
  | Binary of binop * expr * expr
  | Call of string * expr list

val parse : string -> (expr, string) result
(** Parses the formula body (without the leading [=]). *)

val parse_exn : string -> expr
val to_string : expr -> string
(** Canonical rendering; [parse (to_string e)] yields [e] back (modulo
    redundant parentheses in the input). *)

val equal : expr -> expr -> bool
val pp : Format.formatter -> expr -> unit

val references : expr -> range_target list
(** Every cell/range reference in the expression (cells widened to 1×1
    ranges), in syntactic order. This is the formula's dependency set. *)

(** {1 Evaluation} *)

type env = {
  cell_value : string option -> Cellref.cell -> Value.t;
      (** Value of a (possibly sheet-qualified) cell. *)
  range_values : string option -> Cellref.range -> Value.t list;
      (** Values of all cells of a range, row-major. *)
}

val eval : env -> expr -> Value.t
(** Evaluation never raises: type mismatches yield [Error Bad_value],
    unknown functions [Error Bad_name], division by zero [Error Div0].
    Errors propagate through operators and through most functions
    (aggregations skip empty cells but propagate error cells). *)

val functions : string list
(** Names of the built-in functions (uppercase), for documentation and
    error messages. *)
