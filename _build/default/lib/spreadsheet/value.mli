(** Spreadsheet cell values. *)

type error_kind =
  | Div0        (** division by zero: [#DIV/0!] *)
  | Bad_value   (** type mismatch: [#VALUE!] *)
  | Bad_ref     (** reference outside any sheet: [#REF!] *)
  | Bad_name    (** unknown function or sheet: [#NAME?] *)
  | Cycle       (** circular dependency: [#CYCLE!] *)

type t =
  | Empty
  | Number of float
  | Text of string
  | Bool of bool
  | Error of error_kind

val number : float -> t
val text : string -> t

val to_display : t -> string
(** What a cell shows: numbers drop a trailing [.0], booleans render as
    [TRUE]/[FALSE], errors as [#DIV/0!]-style codes, [Empty] as [""]. *)

val to_number : t -> float option
(** Numeric coercion: numbers as-is, booleans as 0/1, numeric-looking text
    parsed, [Empty] as 0. [None] for errors and non-numeric text. *)

val equal : t -> t -> bool
val error_code : error_kind -> string
val pp : Format.formatter -> t -> unit
