lib/mark/manager.ml: Hashtbl List Mark Printf Result Si_xmlk String
