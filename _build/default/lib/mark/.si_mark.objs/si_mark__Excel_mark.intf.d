lib/mark/excel_mark.mli: Manager Si_spreadsheet
