lib/mark/word_mark.mli: Manager Si_wordproc
