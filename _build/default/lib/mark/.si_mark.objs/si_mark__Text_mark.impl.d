lib/mark/text_mark.ml: Fields Manager Mark Option Printf Result Si_textdoc
