lib/mark/word_mark.ml: Fields Manager Mark Option Printf Result Si_wordproc
