lib/mark/text_mark.mli: Manager Si_textdoc
