lib/mark/desktop.mli: Manager Si_pdfdoc Si_slides Si_spreadsheet Si_textdoc Si_wordproc Si_xmlk
