lib/mark/slides_mark.mli: Manager Si_slides
