lib/mark/fields.ml: List Printf Result
