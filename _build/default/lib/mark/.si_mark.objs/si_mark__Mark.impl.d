lib/mark/mark.ml: Format List Option Printf Si_xmlk String
