lib/mark/excel_mark.ml: Fields List Manager Mark Printf Result Si_spreadsheet String
