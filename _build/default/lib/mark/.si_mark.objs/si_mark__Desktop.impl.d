lib/mark/desktop.ml: Excel_mark Hashtbl Html_mark List Manager Pdf_mark Printf Si_htmldoc Si_pdfdoc Si_slides Si_spreadsheet Si_textdoc Si_wordproc Si_xmlk Slides_mark Text_mark Word_mark Xml_mark
