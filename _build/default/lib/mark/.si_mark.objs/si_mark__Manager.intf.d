lib/mark/manager.mli: Mark Si_xmlk
