lib/mark/mark.mli: Format Si_xmlk
