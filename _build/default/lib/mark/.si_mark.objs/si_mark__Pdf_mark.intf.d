lib/mark/pdf_mark.mli: Manager Si_pdfdoc
