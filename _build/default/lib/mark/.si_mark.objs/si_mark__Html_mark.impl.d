lib/mark/html_mark.ml: Fields List Manager Mark Option Printf Result Si_htmldoc Si_xmlk
