lib/mark/slides_mark.ml: Fields Manager Mark Option Printf Result Si_slides
