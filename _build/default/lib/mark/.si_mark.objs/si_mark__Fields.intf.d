lib/mark/fields.mli:
