lib/mark/xml_mark.mli: Manager Si_xmlk
