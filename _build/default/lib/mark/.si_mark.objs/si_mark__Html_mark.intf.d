lib/mark/html_mark.mli: Manager Si_xmlk
