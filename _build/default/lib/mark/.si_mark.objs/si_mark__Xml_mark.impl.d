lib/mark/xml_mark.ml: Fields List Manager Mark Option Printf Result Si_xmlk String
