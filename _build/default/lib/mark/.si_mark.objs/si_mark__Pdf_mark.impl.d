lib/mark/pdf_mark.ml: Fields List Manager Mark Printf Result Si_pdfdoc String
