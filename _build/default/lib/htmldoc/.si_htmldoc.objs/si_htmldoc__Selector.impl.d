lib/htmldoc/selector.ml: List Printf Si_xmlk String
