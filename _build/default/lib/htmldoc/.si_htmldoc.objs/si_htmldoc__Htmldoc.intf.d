lib/htmldoc/htmldoc.mli: Si_xmlk
