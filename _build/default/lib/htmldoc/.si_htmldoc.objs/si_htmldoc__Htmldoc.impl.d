lib/htmldoc/htmldoc.ml: Buffer Char In_channel List Si_xmlk String
