lib/htmldoc/selector.mli: Si_xmlk
