(** CSS-flavoured selectors over parsed HTML.

    Supports the workhorse subset: type selectors ([p]), ids ([#intro]),
    classes ([.warn]), attribute presence/equality ([\[href\]],
    [\[type=submit\]]), compounds ([p.warn#intro]), descendant ([div p])
    and child ([ul > li]) combinators, and comma-separated alternation.
    Matching is case-sensitive for values, lowercase for tag names (the
    parser lowercases tags). *)

type t

val parse : string -> (t, string) result
val parse_exn : string -> t
val to_string : t -> string

val select : Si_xmlk.Node.t -> t -> Si_xmlk.Node.t list
(** Matching elements of the tree (root included), in document order,
    without duplicates (a node matching several alternatives appears
    once). *)

val select_first : Si_xmlk.Node.t -> t -> Si_xmlk.Node.t option
val matches_element : ancestors:Si_xmlk.Node.t list -> Si_xmlk.Node.t -> t -> bool
(** Whether the node matches, given its ancestor chain (nearest first). *)

val query : Si_xmlk.Node.t -> string -> (Si_xmlk.Node.t list, string) result
(** Parse + select in one step. *)
