module Node = Si_xmlk.Node

let void_tags =
  [ "area"; "base"; "br"; "col"; "embed"; "hr"; "img"; "input"; "link";
    "meta"; "param"; "source"; "track"; "wbr" ]

let is_void tag = List.mem tag void_tags
let raw_text_tags = [ "script"; "style" ]

(* Tags whose open tag implicitly closes a predecessor: seeing [tag] closes
   any open element listed against it. *)
let auto_close = function
  | "p" -> [ "p" ]
  | "li" -> [ "li" ]
  | "tr" -> [ "tr"; "td"; "th" ]
  | "td" | "th" -> [ "td"; "th" ]
  | "option" -> [ "option" ]
  | "dt" | "dd" -> [ "dt"; "dd" ]
  | _ -> []

(* ------------------------------------------------------------ tokenizer *)

type token =
  | Open of string * (string * string) list * bool (* name, attrs, self-closed *)
  | Close of string
  | Text of string
  | Comment of string

let decode_entities s =
  if not (String.contains s '&') then s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      if s.[!i] = '&' then begin
        match String.index_from_opt s !i ';' with
        | Some j when j - !i <= 10 -> (
            let body = String.sub s (!i + 1) (j - !i - 1) in
            let replacement =
              match body with
              | "lt" -> Some "<"
              | "gt" -> Some ">"
              | "amp" -> Some "&"
              | "quot" -> Some "\""
              | "apos" -> Some "'"
              | "nbsp" -> Some " "
              | _ ->
                  if String.length body > 1 && body.[0] = '#' then
                    let code =
                      if body.[1] = 'x' || body.[1] = 'X' then
                        int_of_string_opt
                          ("0x" ^ String.sub body 2 (String.length body - 2))
                      else
                        int_of_string_opt
                          (String.sub body 1 (String.length body - 1))
                    in
                    match code with
                    | Some c when c > 0 && c < 128 ->
                        Some (String.make 1 (Char.chr c))
                    | Some _ -> Some "?"  (* non-ASCII: placeholder *)
                    | None -> None
                  else None
            in
            match replacement with
            | Some r ->
                Buffer.add_string buf r;
                i := j + 1
            | None ->
                Buffer.add_char buf '&';
                incr i)
        | _ ->
            Buffer.add_char buf '&';
            incr i
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  end

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let tokenize input =
  let n = String.length input in
  let pos = ref 0 in
  let tokens = ref [] in
  let push t = tokens := t :: !tokens in
  let starts_with at prefix =
    at + String.length prefix <= n
    && String.lowercase_ascii (String.sub input at (String.length prefix))
       = String.lowercase_ascii prefix
  in
  let find_sub from sub =
    let sl = String.length sub in
    let rec scan i =
      if i + sl > n then None
      else if String.lowercase_ascii (String.sub input i sl)
              = String.lowercase_ascii sub
      then Some i
      else scan (i + 1)
    in
    scan from
  in
  let read_name () =
    let start = !pos in
    while
      !pos < n
      && match input.[!pos] with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | ':' -> true
         | _ -> false
    do
      incr pos
    done;
    String.lowercase_ascii (String.sub input start (!pos - start))
  in
  let skip_spaces () =
    while !pos < n && is_space input.[!pos] do
      incr pos
    done
  in
  let read_attrs () =
    let attrs = ref [] in
    let continue_ = ref true in
    while !continue_ do
      skip_spaces ();
      if !pos >= n || input.[!pos] = '>'
         || (input.[!pos] = '/' && !pos + 1 < n && input.[!pos + 1] = '>')
      then continue_ := false
      else begin
        let name = read_name () in
        if name = "" then (* junk character; skip to avoid looping *) incr pos
        else begin
          skip_spaces ();
          if !pos < n && input.[!pos] = '=' then begin
            incr pos;
            skip_spaces ();
            let value =
              if !pos < n && (input.[!pos] = '"' || input.[!pos] = '\'') then begin
                let quote = input.[!pos] in
                incr pos;
                let start = !pos in
                while !pos < n && input.[!pos] <> quote do
                  incr pos
                done;
                let v = String.sub input start (!pos - start) in
                if !pos < n then incr pos;
                v
              end
              else begin
                let start = !pos in
                while
                  !pos < n && (not (is_space input.[!pos]))
                  && input.[!pos] <> '>'
                do
                  incr pos
                done;
                String.sub input start (!pos - start)
              end
            in
            attrs := (name, decode_entities value) :: !attrs
          end
          else attrs := (name, "") :: !attrs
        end
      end
    done;
    List.rev !attrs
  in
  while !pos < n do
    if input.[!pos] = '<' then begin
      if starts_with !pos "<!--" then begin
        match find_sub (!pos + 4) "-->" with
        | Some close ->
            push (Comment (String.sub input (!pos + 4) (close - !pos - 4)));
            pos := close + 3
        | None ->
            push (Comment (String.sub input (!pos + 4) (n - !pos - 4)));
            pos := n
      end
      else if starts_with !pos "<!" || starts_with !pos "<?" then begin
        (* doctype or PI: skip to '>' *)
        (match String.index_from_opt input !pos '>' with
        | Some close -> pos := close + 1
        | None -> pos := n)
      end
      else if starts_with !pos "</" then begin
        pos := !pos + 2;
        let name = read_name () in
        (match String.index_from_opt input !pos '>' with
        | Some close -> pos := close + 1
        | None -> pos := n);
        if name <> "" then push (Close name)
      end
      else if
        !pos + 1 < n
        && match input.[!pos + 1] with
           | 'a' .. 'z' | 'A' .. 'Z' -> true
           | _ -> false
      then begin
        incr pos;
        let name = read_name () in
        let attrs = read_attrs () in
        let self_closed =
          !pos + 1 < n && input.[!pos] = '/' && input.[!pos + 1] = '>'
        in
        (match String.index_from_opt input !pos '>' with
        | Some close -> pos := close + 1
        | None -> pos := n);
        push (Open (name, attrs, self_closed));
        (* Raw-text elements swallow everything until their close tag. *)
        if List.mem name raw_text_tags && not self_closed then begin
          let close_tag = "</" ^ name in
          match find_sub !pos close_tag with
          | Some at ->
              if at > !pos then
                push (Text (String.sub input !pos (at - !pos)));
              pos := at + String.length close_tag;
              (match String.index_from_opt input !pos '>' with
              | Some close -> pos := close + 1
              | None -> pos := n);
              push (Close name)
          | None ->
              if n > !pos then push (Text (String.sub input !pos (n - !pos)));
              pos := n;
              push (Close name)
        end
      end
      else begin
        (* A lone '<' that opens nothing: literal text. *)
        push (Text "<");
        incr pos
      end
    end
    else begin
      let start = !pos in
      while !pos < n && input.[!pos] <> '<' do
        incr pos
      done;
      push (Text (decode_entities (String.sub input start (!pos - start))))
    end
  done;
  List.rev !tokens

(* --------------------------------------------------------- tree builder *)

type frame = {
  tag : string;
  attrs : (string * string) list;
  mutable children : Node.t list;  (* reverse order *)
}

let build tokens =
  let stack : frame list ref = ref [] in
  let roots : Node.t list ref = ref [] in
  let emit node =
    match !stack with
    | [] -> roots := node :: !roots
    | top :: _ -> top.children <- node :: top.children
  in
  let close_frame () =
    match !stack with
    | [] -> ()
    | frame :: rest ->
        stack := rest;
        emit
          (Node.Element
             {
               name = frame.tag;
               attrs = frame.attrs;
               children = List.rev frame.children;
             })
  in
  let rec close_until name =
    match !stack with
    | [] -> ()
    | frame :: _ ->
        if String.equal frame.tag name then close_frame ()
        else begin
          close_frame ();
          close_until name
        end
  in
  let open_implies_close name =
    (* Keep popping: a new <tr> closes an open <td> and then the open
       <tr> itself. *)
    let closeable = auto_close name in
    let rec pop () =
      match !stack with
      | frame :: _ when List.mem frame.tag closeable ->
          close_frame ();
          pop ()
      | _ -> ()
    in
    pop ()
  in
  List.iter
    (fun token ->
      match token with
      | Text "" -> ()
      | Text s -> emit (Node.Text s)
      | Comment s -> emit (Node.Comment s)
      | Open (name, attrs, self_closed) ->
          open_implies_close name;
          if self_closed || is_void name then
            emit (Node.Element { name; attrs; children = [] })
          else stack := { tag = name; attrs; children = [] } :: !stack
      | Close name ->
          (* Ignore a close with no matching open anywhere on the stack. *)
          if List.exists (fun f -> String.equal f.tag name) !stack then
            close_until name)
    tokens;
  while !stack <> [] do
    close_frame ()
  done;
  List.rev !roots

let parse_forest input = build (tokenize input)

let parse input =
  let significant = function
    | Node.Element _ -> true
    | Node.Text s -> not (String.for_all is_space s)
    | Node.Cdata _ | Node.Comment _ | Node.Pi _ -> false
  in
  match parse_forest input with
  | [ (Node.Element _ as root) ] -> root
  | forest -> (
      match List.filter significant forest with
      | [ (Node.Element _ as root) ] -> root
      | _ -> Node.element "html" forest)

let from_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> Ok (parse contents)
  | exception Sys_error msg -> Error msg

(* ------------------------------------------------------------ accessors *)

let element_by_id root id =
  let found = ref None in
  Node.iter
    (fun n ->
      if !found = None && Node.attr "id" n = Some id then found := Some n)
    root;
  !found

let anchors root =
  List.rev
    (Node.fold
       (fun acc n ->
         match Node.attr "id" n with
         | Some id -> (id, n) :: acc
         | None -> (
             match (Node.name n, Node.attr "name" n) with
             | Some "a", Some name -> (name, n) :: acc
             | _ -> acc))
       [] root)

let elements_by_tag root tag =
  List.filter
    (fun n -> Node.name n = Some tag)
    (Node.descendants root)

let block_tags =
  [ "p"; "div"; "li"; "tr"; "table"; "ul"; "ol"; "h1"; "h2"; "h3"; "h4";
    "h5"; "h6"; "blockquote"; "pre"; "section"; "article"; "header";
    "footer"; "dt"; "dd"; "body"; "html" ]

let to_text root =
  let buf = Buffer.create 256 in
  let rec go node =
    match node with
    | Node.Text s | Node.Cdata s -> Buffer.add_string buf s
    | Node.Comment _ | Node.Pi _ -> ()
    | Node.Element { name = "script" | "style"; _ } -> ()
    | Node.Element { name = "br"; _ } -> Buffer.add_char buf '\n'
    | Node.Element { name; children; _ } ->
        let block = List.mem name block_tags in
        if block then Buffer.add_char buf '\n';
        List.iter go children;
        if block then Buffer.add_char buf '\n'
  in
  go root;
  (* Collapse runs of spaces/tabs and blank lines. *)
  let raw = Buffer.contents buf in
  let out = Buffer.create (String.length raw) in
  let pending_space = ref false and pending_newline = ref 0 in
  let flush_pending () =
    if !pending_newline > 0 then begin
      if Buffer.length out > 0 then Buffer.add_char out '\n';
      pending_newline := 0;
      pending_space := false
    end
    else if !pending_space then begin
      if Buffer.length out > 0 then Buffer.add_char out ' ';
      pending_space := false
    end
  in
  String.iter
    (fun c ->
      match c with
      | '\n' -> incr pending_newline
      | ' ' | '\t' | '\r' -> pending_space := true
      | c ->
          flush_pending ();
          Buffer.add_char out c)
    raw;
  Buffer.contents out

let title root =
  match elements_by_tag root "title" with
  | [] -> None
  | t :: _ -> Some (String.trim (Node.text_content t))

type outline_entry = {
  level : int;
  heading : string;
  node : Node.t;
  children : outline_entry list;
}

let outline root =
  let headings =
    Node.descendants root
    |> List.filter_map (fun n ->
           match Node.name n with
           | Some ("h1" | "h2" | "h3" | "h4" | "h5" | "h6" as tag) ->
               Some
                 ( int_of_string (String.sub tag 1 1),
                   String.trim (Node.text_content n),
                   n )
           | _ -> None)
  in
  (* Fold the flat heading list into a forest: an entry adopts following
     entries of strictly deeper level. *)
  let rec build level items =
    match items with
    | [] -> ([], [])
    | (l, heading, node) :: rest when l >= level ->
        let children, after_children = build (l + 1) rest in
        let siblings, leftover = build level after_children in
        ({ level = l; heading; node; children } :: siblings, leftover)
    | items -> ([], items)
  in
  fst (build 1 headings)

let links root =
  elements_by_tag root "a"
  |> List.filter_map (fun a ->
         match Node.attr "href" a with
         | Some href -> Some (href, String.trim (Node.text_content a))
         | None -> None)
