module Node = Si_xmlk.Node

(* One simple selector: every listed condition must hold. *)
type attr_test = Present of string | Equals of string * string

type compound = {
  tag : string option;
  id : string option;
  classes : string list;
  attrs : attr_test list;
}

type combinator = Descendant | Child

(* A complex selector is matched right-to-left: the last compound matches
   the node itself, earlier compounds its ancestors/parents. *)
type complex = { head : compound; rest : (combinator * compound) list }
(* [rest] is ordered from the node outwards: [(c1, comp1); (c2, comp2)]
   means comp1 relates to the head by c1, comp2 to comp1 by c2. *)

type t = complex list  (* comma alternation *)

(* ------------------------------------------------------------- parsing *)

exception Bad of string

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> true
  | _ -> false

let parse_compound input pos =
  (* Parses one compound starting at [pos]; returns (compound, next pos).
     Grammar: [tag]? ( '#'name | '.'name | '[' name ('=' value)? ']' )* *)
  let n = String.length input in
  let read_name p =
    let start = p in
    let p = ref p in
    while !p < n && is_name_char input.[!p] do
      incr p
    done;
    if !p = start then raise (Bad "expected a name");
    (String.sub input start (!p - start), !p)
  in
  let tag, pos =
    if pos < n && input.[pos] = '*' then (None, pos + 1)
    else if pos < n && is_name_char input.[pos] then
      let name, p = read_name pos in
      (Some (String.lowercase_ascii name), p)
    else (None, pos)
  in
  let rec qualifiers pos acc =
    if pos >= n then (acc, pos)
    else
      match input.[pos] with
      | '#' ->
          let name, p = read_name (pos + 1) in
          qualifiers p { acc with id = Some name }
      | '.' ->
          let name, p = read_name (pos + 1) in
          qualifiers p { acc with classes = name :: acc.classes }
      | '[' ->
          let name, p = read_name (pos + 1) in
          if p < n && input.[p] = '=' then begin
            match String.index_from_opt input p ']' with
            | None -> raise (Bad "unterminated [attr=value]")
            | Some close ->
                let value = String.sub input (p + 1) (close - p - 1) in
                qualifiers (close + 1)
                  { acc with attrs = Equals (name, value) :: acc.attrs }
          end
          else if p < n && input.[p] = ']' then
            qualifiers (p + 1) { acc with attrs = Present name :: acc.attrs }
          else raise (Bad "malformed attribute selector")
      | _ -> (acc, pos)
  in
  let base = { tag; id = None; classes = []; attrs = [] } in
  let compound, pos = qualifiers pos base in
  if compound = base && tag = None then raise (Bad "empty selector");
  (compound, pos)

let parse_complex text =
  (* Tokenize into compounds and combinators. *)
  let n = String.length text in
  let rec skip_ws p = if p < n && text.[p] = ' ' then skip_ws (p + 1) else p in
  let rec sequence pos acc =
    let pos = skip_ws pos in
    if pos >= n then List.rev acc
    else if text.[pos] = '>' then
      match acc with
      | [] -> raise (Bad "selector cannot start with '>'")
      | _ -> sequence (pos + 1) (`Child :: acc)
    else
      let compound, p = parse_compound text pos in
      let acc =
        match acc with
        | `Compound _ :: _ -> `Desc :: acc  (* implicit descendant *)
        | _ -> acc
      in
      sequence p (`Compound compound :: acc)
  in
  let items =
    sequence 0 []
    |> List.filter (function `Desc -> true | `Child -> true | `Compound _ -> true)
  in
  (* Items run left-to-right (outermost ancestor first); the matcher wants
     the node's compound as [head] and its ancestors outward in [rest], so
     build the chain right-to-left. *)
  match items with
  | [] -> raise (Bad "empty selector")
  | _ ->
      let rec to_chain = function
        | [ `Compound c ] -> ({ head = c; rest = [] } : complex)
        | rest -> (
            match List.rev rest with
            | `Compound head :: `Desc :: outer ->
                let outer_chain = to_chain (List.rev outer) in
                {
                  head;
                  rest = (Descendant, outer_chain.head) :: outer_chain.rest;
                }
            | `Compound head :: `Child :: outer ->
                let outer_chain = to_chain (List.rev outer) in
                { head; rest = (Child, outer_chain.head) :: outer_chain.rest }
            | _ -> raise (Bad "malformed selector"))
      in
      to_chain items

let parse input =
  match
    String.split_on_char ',' input
    |> List.map String.trim
    |> List.map parse_complex
  with
  | alternatives -> Ok alternatives
  | exception Bad msg -> Error msg

let parse_exn input =
  match parse input with
  | Ok t -> t
  | Error msg -> invalid_arg ("Selector.parse_exn: " ^ msg)

(* ------------------------------------------------------------ printing *)

let compound_to_string c =
  String.concat ""
    ((match c.tag with Some t -> [ t ] | None -> [])
    @ (match c.id with Some i -> [ "#" ^ i ] | None -> [])
    @ List.map (fun cl -> "." ^ cl) (List.rev c.classes)
    @ List.map
        (function
          | Present a -> "[" ^ a ^ "]"
          | Equals (a, v) -> Printf.sprintf "[%s=%s]" a v)
        (List.rev c.attrs))

let complex_to_string { head; rest } =
  List.fold_left
    (fun acc (comb, c) ->
      let sep = match comb with Descendant -> " " | Child -> " > " in
      compound_to_string c ^ sep ^ acc)
    (compound_to_string head) rest

let to_string t = String.concat ", " (List.map complex_to_string t)

(* ------------------------------------------------------------ matching *)

let classes_of node =
  match Node.attr "class" node with
  | None -> []
  | Some v ->
      String.split_on_char ' ' v |> List.filter (fun c -> c <> "")

let compound_matches node c =
  Node.is_element node
  && (match c.tag with
     | None -> true
     | Some t -> Node.name node = Some t)
  && (match c.id with
     | None -> true
     | Some i -> Node.attr "id" node = Some i)
  && List.for_all (fun cl -> List.mem cl (classes_of node)) c.classes
  && List.for_all
       (function
         | Present a -> Node.attr a node <> None
         | Equals (a, v) -> Node.attr a node = Some v)
       c.attrs

(* ancestors: nearest first. *)
let rec chain_matches ~ancestors rest =
  match rest with
  | [] -> true
  | (Child, c) :: outer -> (
      match ancestors with
      | parent :: grand ->
          compound_matches parent c && chain_matches ~ancestors:grand outer
      | [] -> false)
  | (Descendant, c) :: outer ->
      let rec try_ancestors = function
        | [] -> false
        | a :: grand ->
            (compound_matches a c && chain_matches ~ancestors:grand outer)
            || try_ancestors grand
      in
      try_ancestors ancestors

let complex_matches ~ancestors node { head; rest } =
  compound_matches node head && chain_matches ~ancestors rest

let matches_element ~ancestors node t =
  List.exists (complex_matches ~ancestors node) t

let select root t =
  let results = ref [] in
  let rec walk ancestors node =
    if matches_element ~ancestors node t then results := node :: !results;
    List.iter (walk (node :: ancestors)) (Node.children node)
  in
  walk [] root;
  List.rev !results

let select_first root t =
  match select root t with [] -> None | n :: _ -> Some n

let query root input =
  match parse input with
  | Ok t -> Ok (select root t)
  | Error _ as e -> e
