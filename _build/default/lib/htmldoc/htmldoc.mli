(** Tolerant HTML parsing — the web-browser (Internet Explorer) stand-in.

    Parses real-world "tag soup" into the shared XML DOM
    ({!Si_xmlk.Node.t}), so HTML marks can reuse the slash-path addressing
    of {!Si_xmlk.Path} alongside anchor- and id-based addressing. The
    parser never fails: unmatched close tags are dropped, unclosed
    elements are closed at the end of their enclosing element, void
    elements ([<br>], [<img>] …) never take children, [<p>]/[<li>]/[<tr>]/
    [<td>] auto-close their predecessors, and [<script>]/[<style>] bodies
    are raw text. Tag and attribute names are lowercased. *)

val parse : string -> Si_xmlk.Node.t
(** The document root: the single top-level element if there is exactly
    one, otherwise a synthesized [<html>] element wrapping everything. *)

val parse_forest : string -> Si_xmlk.Node.t list
(** Top-level nodes without the wrapping. *)

val from_file : string -> (Si_xmlk.Node.t, string) result

(** {1 HTML-flavoured accessors} *)

val element_by_id : Si_xmlk.Node.t -> string -> Si_xmlk.Node.t option
(** First element with the given [id] attribute, in document order. *)

val anchors : Si_xmlk.Node.t -> (string * Si_xmlk.Node.t) list
(** Anchor targets: every element with an [id], plus [<a name=...>]
    elements — the fragment identifiers a URL can address. *)

val links : Si_xmlk.Node.t -> (string * string) list
(** [(href, link text)] for every [<a href=...>], in document order. *)

val title : Si_xmlk.Node.t -> string option
(** Text of the first [<title>] element. *)

val elements_by_tag : Si_xmlk.Node.t -> string -> Si_xmlk.Node.t list

val to_text : Si_xmlk.Node.t -> string
(** Roughly rendered text: block-level elements ([p], [div], [li], [tr],
    [h1]–[h6], [br] …) introduce line breaks; [<script>], [<style>] and
    comments are skipped; runs of whitespace collapse to one space. *)

val is_void : string -> bool
(** Whether a (lowercase) tag never has content ([br], [img], …). *)

type outline_entry = {
  level : int;  (** 1 for [h1] … 6 for [h6] *)
  heading : string;  (** rendered text of the heading *)
  node : Si_xmlk.Node.t;
  children : outline_entry list;
}

val outline : Si_xmlk.Node.t -> outline_entry list
(** The document's heading hierarchy, in document order: each entry owns
    the later, deeper headings up to the next heading of its own level or
    shallower (the HTML5 flat-outline interpretation). Useful as a table
    of contents and as section anchors for marks. *)
