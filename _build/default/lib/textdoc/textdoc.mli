(** Plain-text base documents.

    The simplest base-source substrate: a text file with line/column and
    character-span addressing. Its marks ("text marks") address a [span];
    the substrate also supports re-anchoring a stale span after the
    underlying file has been edited, by searching for the remembered
    excerpt. *)

type t
(** An immutable text document with a precomputed line index. *)

type span = { offset : int; length : int }
(** A character span, [offset] 0-based, in bytes of the document text. *)

type position = { line : int; column : int }
(** 1-based line and column. *)

(** {1 Construction} *)

val of_string : string -> t
val of_lines : string list -> t
(** Joins with ["\n"]. *)

val from_file : string -> (t, string) result
val to_string : t -> string
val length : t -> int

(** {1 Lines} *)

val line_count : t -> int
val line : t -> int -> string option
(** [line doc n] returns the [n]-th line, 1-based, without the newline. *)

val line_exn : t -> int -> string
val lines : t -> string list
val line_span : t -> int -> span option
(** Span covering the [n]-th line (newline excluded). *)

(** {1 Spans} *)

val span_valid : t -> span -> bool
val extract : t -> span -> string option
(** The text covered by the span; [None] if out of bounds. *)

val extract_exn : t -> span -> string
val position_of_offset : t -> int -> position option
val offset_of_position : t -> position -> int option
val span_of_positions : t -> start:position -> stop:position -> span option
(** Inclusive start, exclusive stop. *)

val positions_of_span : t -> span -> (position * position) option

(** {1 Search} *)

val find_all : t -> string -> span list
(** All (possibly overlapping) occurrences, leftmost-first. The empty needle
    yields []. *)

val find_first : ?from:int -> t -> string -> span option

val context : t -> span -> lines_around:int -> string
(** The lines containing the span plus [lines_around] lines on each side —
    what a viewer would show when a mark is resolved "in context". *)

(** {1 Re-anchoring}

    A mark stores the excerpt it covered at creation time. When the base
    document changes, [reanchor] relocates the excerpt: the occurrence
    closest to the stale offset wins. *)

val reanchor : t -> excerpt:string -> stale_offset:int -> span option

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_span : Format.formatter -> span -> unit
