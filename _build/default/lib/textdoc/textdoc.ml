type span = { offset : int; length : int }
type position = { line : int; column : int }

type t = {
  contents : string;
  line_starts : int array;  (* offset of the first character of each line *)
}

let index_lines contents =
  let starts = ref [ 0 ] in
  String.iteri
    (fun i c -> if c = '\n' then starts := (i + 1) :: !starts)
    contents;
  Array.of_list (List.rev !starts)

let of_string contents = { contents; line_starts = index_lines contents }
let of_lines lines = of_string (String.concat "\n" lines)

let from_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> Ok (of_string contents)
  | exception Sys_error msg -> Error msg

let to_string doc = doc.contents
let length doc = String.length doc.contents
let line_count doc = Array.length doc.line_starts

(* End offset of the [i]-th (0-based) line, newline excluded. *)
let line_end doc i =
  if i + 1 < Array.length doc.line_starts then doc.line_starts.(i + 1) - 1
  else String.length doc.contents

let line_span doc n =
  let i = n - 1 in
  if i < 0 || i >= Array.length doc.line_starts then None
  else
    let offset = doc.line_starts.(i) in
    Some { offset; length = line_end doc i - offset }

let line doc n =
  match line_span doc n with
  | Some { offset; length } -> Some (String.sub doc.contents offset length)
  | None -> None

let line_exn doc n =
  match line doc n with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Textdoc.line_exn: no line %d" n)

let lines doc = List.init (line_count doc) (fun i -> line_exn doc (i + 1))

let span_valid doc { offset; length } =
  offset >= 0 && length >= 0 && offset + length <= String.length doc.contents

let extract doc span =
  if span_valid doc span then
    Some (String.sub doc.contents span.offset span.length)
  else None

let extract_exn doc span =
  match extract doc span with
  | Some s -> s
  | None -> invalid_arg "Textdoc.extract_exn: span out of bounds"

(* Binary search: index of the line containing [offset]. *)
let line_index_of_offset doc offset =
  let starts = doc.line_starts in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if starts.(mid) <= offset then search mid hi else search lo (mid - 1)
  in
  search 0 (Array.length starts - 1)

let position_of_offset doc offset =
  if offset < 0 || offset > String.length doc.contents then None
  else
    let i = line_index_of_offset doc offset in
    Some { line = i + 1; column = offset - doc.line_starts.(i) + 1 }

let offset_of_position doc { line; column } =
  match line_span doc line with
  | Some { offset; length } when column >= 1 && column <= length + 1 ->
      Some (offset + column - 1)
  | Some _ | None -> None

let span_of_positions doc ~start ~stop =
  match (offset_of_position doc start, offset_of_position doc stop) with
  | Some a, Some b when b >= a -> Some { offset = a; length = b - a }
  | _ -> None

let positions_of_span doc span =
  if not (span_valid doc span) then None
  else
    match
      ( position_of_offset doc span.offset,
        position_of_offset doc (span.offset + span.length) )
    with
    | Some a, Some b -> Some (a, b)
    | _ -> None

let find_all doc needle =
  let n = String.length needle in
  if n = 0 then []
  else
    let limit = String.length doc.contents - n in
    let rec scan i acc =
      if i > limit then List.rev acc
      else if String.sub doc.contents i n = needle then
        scan (i + 1) ({ offset = i; length = n } :: acc)
      else scan (i + 1) acc
    in
    scan 0 []

let find_first ?(from = 0) doc needle =
  let n = String.length needle in
  if n = 0 then None
  else
    let limit = String.length doc.contents - n in
    let rec scan i =
      if i > limit then None
      else if String.sub doc.contents i n = needle then
        Some { offset = i; length = n }
      else scan (i + 1)
    in
    scan (max 0 from)

let context doc span ~lines_around =
  if not (span_valid doc span) then ""
  else
    let first = line_index_of_offset doc span.offset in
    let last =
      line_index_of_offset doc (max span.offset (span.offset + span.length - 1))
    in
    let lo = max 0 (first - lines_around) in
    let hi = min (line_count doc - 1) (last + lines_around) in
    let rec collect i acc =
      if i > hi then List.rev acc else collect (i + 1) (line_exn doc (i + 1) :: acc)
    in
    String.concat "\n" (collect lo [])

let reanchor doc ~excerpt ~stale_offset =
  match find_all doc excerpt with
  | [] -> None
  | candidates ->
      let distance s = abs (s.offset - stale_offset) in
      let best =
        List.fold_left
          (fun acc s ->
            match acc with
            | None -> Some s
            | Some b -> if distance s < distance b then Some s else acc)
          None candidates
      in
      best

let equal a b = String.equal a.contents b.contents

let pp ppf doc =
  Format.fprintf ppf "<textdoc %d bytes, %d lines>" (length doc)
    (line_count doc)

let pp_span ppf { offset; length } =
  Format.fprintf ppf "[%d..%d)" offset (offset + length)
