lib/textdoc/textdoc.mli: Format
