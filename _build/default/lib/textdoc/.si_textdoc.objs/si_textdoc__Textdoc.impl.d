lib/textdoc/textdoc.ml: Array Format In_channel List Printf String
