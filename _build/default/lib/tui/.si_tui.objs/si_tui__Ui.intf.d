lib/tui/ui.mli: Si_slim Si_slimpad
