lib/tui/ui.ml: List Option Printf Set Si_mark Si_slim Si_slimpad String
