module Dmi = Si_slim.Dmi
module Slimpad = Si_slimpad.Slimpad
module Mark = Si_mark.Mark
module Manager = Si_mark.Manager

type row =
  | Bundle_row of { bundle : Dmi.bundle; depth : int; expanded : bool }
  | Scrap_row of { scrap : Dmi.scrap; depth : int }
  | Decoration_row of { decoration : Dmi.decoration; depth : int }

type mode =
  | Browse
  | Input of { prompt : string; buffer : string; action : input_action }

and input_action = Rename | Annotate | Search

type event =
  | Up
  | Down
  | Page_down
  | Page_up
  | Toggle
  | Activate
  | Extract
  | In_place
  | Start_rename
  | Start_annotate
  | Start_link
  | Start_search
  | Next_match
  | Refresh_drift
  | Char of char
  | Backspace
  | Commit
  | Cancel
  | Quit

module Ids = Set.Make (String)

type t = {
  app : Slimpad.t;
  pad : Dmi.pad;
  cursor : int;
  collapsed : Ids.t;  (* bundle ids folded shut *)
  ui_mode : mode;
  detail_lines : string list;
  status_line : string;
  search_term : string;
  stale : Ids.t;  (* scrap ids flagged by drift detection *)
  link_from : Dmi.scrap option;  (* armed link source *)
  done_ : bool;
}

let make app pad =
  {
    app;
    pad;
    cursor = 0;
    collapsed = Ids.empty;
    ui_mode = Browse;
    detail_lines = [];
    status_line = "q quit  enter resolve  space fold  e extract  i in-place  \
                   r rename  a annotate  l link  / search  d drift";
    search_term = "";
    stale = Ids.empty;
    link_from = None;
    done_ = false;
  }

let dmi t = Slimpad.dmi t.app

let rows t =
  let d = dmi t in
  let rec bundle depth b acc =
    let expanded = not (Ids.mem (Dmi.bundle_id b) t.collapsed) in
    let acc = Bundle_row { bundle = b; depth; expanded } :: acc in
    if not expanded then acc
    else
      let acc =
        List.fold_left
          (fun acc s -> Scrap_row { scrap = s; depth = depth + 1 } :: acc)
          acc (Dmi.scraps d b)
      in
      let acc =
        List.fold_left
          (fun acc dec ->
            Decoration_row { decoration = dec; depth = depth + 1 } :: acc)
          acc (Dmi.decorations d b)
      in
      List.fold_left
        (fun acc nested -> bundle (depth + 1) nested acc)
        acc (Dmi.nested_bundles d b)
  in
  List.rev (bundle 0 (Dmi.root_bundle d t.pad) [])

let cursor t = t.cursor
let pending_link t = t.link_from
let mode t = t.ui_mode
let detail t = t.detail_lines
let status t = t.status_line
let finished t = t.done_

let clamp_cursor t =
  let n = List.length (rows t) in
  { t with cursor = max 0 (min t.cursor (n - 1)) }

let selected t = List.nth_opt (rows t) (cursor (clamp_cursor t))

let with_status t fmt = Printf.ksprintf (fun s -> { t with status_line = s }) fmt

let move t delta = clamp_cursor { t with cursor = t.cursor + delta }

let toggle t =
  match selected t with
  | Some (Bundle_row { bundle; _ }) ->
      let id = Dmi.bundle_id bundle in
      let collapsed =
        if Ids.mem id t.collapsed then Ids.remove id t.collapsed
        else Ids.add id t.collapsed
      in
      clamp_cursor { t with collapsed }
  | Some (Scrap_row _ | Decoration_row _) | None ->
      with_status t "only bundles fold"

let resolve_selected t behaviour label =
  match selected t with
  | Some (Scrap_row { scrap; _ }) -> (
      match Slimpad.double_click t.app scrap with
      | Ok res ->
          let body = Mark.apply_behaviour behaviour res in
          {
            t with
            detail_lines =
              (Printf.sprintf "[%s] %s" label res.Mark.res_source
              :: String.split_on_char '\n' body);
            status_line =
              Printf.sprintf "%s resolved via %s" label res.Mark.res_source;
          }
      | Error msg -> with_status t "resolve failed: %s" msg)
  | Some (Bundle_row _ | Decoration_row _) | None ->
      with_status t "select a scrap to resolve"

let start_input t action prompt initial =
  { t with ui_mode = Input { prompt; buffer = initial; action } }

let commit_input t action buffer =
  let t = { t with ui_mode = Browse } in
  match action with
  | Search ->
      if buffer = "" then with_status t "empty search"
      else begin
        let t = { t with search_term = buffer } in
        (* Jump to the next matching scrap after the cursor, wrapping. *)
        let hits =
          Slimpad.find_scraps t.app t.pad buffer
          |> List.map Dmi.scrap_id
        in
        let all = rows t in
        let matches i =
          match List.nth_opt all i with
          | Some (Scrap_row { scrap; _ }) ->
              List.mem (Dmi.scrap_id scrap) hits
          | _ -> false
        in
        let n = List.length all in
        let rec scan i steps =
          if steps > n then with_status t "no match for %S" buffer
          else if matches (i mod n) then
            { t with cursor = i mod n; status_line = "match" }
          else scan (i + 1) (steps + 1)
        in
        scan (t.cursor + 1) 0
      end
  | Rename -> (
      match selected t with
      | Some (Bundle_row { bundle; _ }) ->
          Dmi.update_bundle_name (dmi t) bundle buffer;
          with_status t "renamed bundle"
      | Some (Scrap_row { scrap; _ }) ->
          Dmi.update_scrap_name (dmi t) scrap buffer;
          with_status t "renamed scrap"
      | Some (Decoration_row _) | None -> with_status t "nothing to rename")
  | Annotate -> (
      match selected t with
      | Some (Scrap_row { scrap; _ }) ->
          Dmi.annotate_scrap (dmi t) scrap buffer;
          with_status t "annotated"
      | _ -> with_status t "annotations attach to scraps")

let refresh_drift t =
  let report = Slimpad.drift_report t.app t.pad in
  let stale =
    List.fold_left
      (fun acc (s, _) -> Ids.add (Dmi.scrap_id s) acc)
      Ids.empty report
  in
  let t = { t with stale } in
  with_status t "%d stale scrap(s)" (List.length report)

let page = 10

let handle t event =
  if t.done_ then t
  else
    match (t.ui_mode, event) with
    | _, Quit -> { t with done_ = true }
    | Input { prompt; buffer; action }, Char c ->
        {
          t with
          ui_mode =
            Input { prompt; buffer = buffer ^ String.make 1 c; action };
        }
    | Input { prompt; buffer; action }, Backspace ->
        let buffer =
          if buffer = "" then ""
          else String.sub buffer 0 (String.length buffer - 1)
        in
        { t with ui_mode = Input { prompt; buffer; action } }
    | Input { buffer; action; _ }, Commit -> commit_input t action buffer
    | Input _, Cancel -> { t with ui_mode = Browse; status_line = "cancelled" }
    | Input _, _ -> t  (* navigation is ignored while typing *)
    | Browse, Up -> move t (-1)
    | Browse, Down -> move t 1
    | Browse, Page_up -> move t (-page)
    | Browse, Page_down -> move t page
    | Browse, Toggle -> toggle t
    | Browse, Activate -> resolve_selected t Mark.Navigate "navigate"
    | Browse, Extract -> resolve_selected t Mark.Extract_content "extract"
    | Browse, In_place -> resolve_selected t Mark.Display_in_place "in-place"
    | Browse, Start_rename -> (
        match selected t with
        | Some (Bundle_row { bundle; _ }) ->
            start_input t Rename "rename: " (Dmi.bundle_name (dmi t) bundle)
        | Some (Scrap_row { scrap; _ }) ->
            start_input t Rename "rename: " (Dmi.scrap_name (dmi t) scrap)
        | Some (Decoration_row _) | None -> with_status t "nothing to rename")
    | Browse, Start_annotate -> (
        match selected t with
        | Some (Scrap_row _) -> start_input t Annotate "note: " ""
        | _ -> with_status t "annotations attach to scraps")
    | Browse, Start_link -> (
        match (t.link_from, selected t) with
        | None, Some (Scrap_row { scrap; _ }) ->
            {
              (with_status t "link armed from %S; select the target and \
                              press l again" (Dmi.scrap_name (dmi t) scrap))
              with
              link_from = Some scrap;
            }
        | None, _ -> with_status t "links start at a scrap"
        | Some source, Some (Scrap_row { scrap; _ })
          when Dmi.scrap_id scrap <> Dmi.scrap_id source ->
            ignore (Dmi.link_scraps (dmi t) ~from_:source ~to_:scrap ());
            { (with_status t "linked") with link_from = None }
        | Some _, Some (Scrap_row _) ->
            with_status t "a scrap cannot link to itself"
        | Some _, _ -> with_status t "select a target scrap")
    | Browse, Start_search -> start_input t Search "/" ""
    | Browse, Next_match ->
        if t.search_term = "" then with_status t "no previous search"
        else commit_input { t with ui_mode = Browse } Search t.search_term
    | Browse, Refresh_drift -> refresh_drift t
    | Browse, Cancel ->
        if t.link_from <> None then
          { (with_status t "link cancelled") with link_from = None }
        else t
    | Browse, (Char _ | Backspace | Commit) -> t

(* ------------------------------------------------------------ rendering *)

let truncate width s =
  if String.length s <= width then s else String.sub s 0 (max 0 width)

let pad_to width s =
  let s = truncate width s in
  s ^ String.make (width - String.length s) ' '

let row_line t i row =
  let d = dmi t in
  let marker = if i = cursor (clamp_cursor t) then "> " else "  " in
  let indent depth = String.make (depth * 2) ' ' in
  match row with
  | Bundle_row { bundle; depth; expanded } ->
      Printf.sprintf "%s%s%s %s%s" marker (indent depth)
        (if expanded then "[-]" else "[+]")
        (Dmi.bundle_name d bundle)
        (if Dmi.is_template d bundle then " {template}" else "")
  | Scrap_row { scrap; depth } ->
      let notes = List.length (Dmi.annotations d scrap) in
      Printf.sprintf "%s%s* %s%s%s" marker (indent depth)
        (Dmi.scrap_name d scrap)
        (if notes > 0 then Printf.sprintf " (%d note%s)" notes
             (if notes = 1 then "" else "s")
         else "")
        (if Ids.mem (Dmi.scrap_id scrap) t.stale then " !stale" else "")
  | Decoration_row { decoration; depth } ->
      Printf.sprintf "%s%s[%s]" marker (indent depth)
        (Dmi.decoration_kind d decoration)

let render t ~width ~height =
  let t = clamp_cursor t in
  let tree_width = (width * 45 / 100) - 1 in
  let detail_width = width - tree_width - 3 in
  let body_height = max 0 (height - 2) in
  let all_rows = rows t in
  (* Scroll the tree pane so the cursor stays visible. *)
  let first = max 0 (min t.cursor (List.length all_rows - body_height)) in
  let visible =
    List.filteri (fun i _ -> i >= first && i < first + body_height) all_rows
  in
  let tree_lines =
    List.mapi (fun i row -> row_line t (first + i) row) visible
  in
  let title =
    Printf.sprintf "SLIMPad %S" (Dmi.pad_name (dmi t) t.pad)
  in
  let body =
    List.init body_height (fun i ->
        let left = Option.value (List.nth_opt tree_lines i) ~default:"" in
        let right = Option.value (List.nth_opt t.detail_lines i) ~default:"" in
        pad_to tree_width left ^ " | " ^ truncate detail_width right)
  in
  let bottom =
    match t.ui_mode with
    | Input { prompt; buffer; _ } -> prompt ^ buffer ^ "_"
    | Browse -> t.status_line
  in
  (* Exactly [height] lines, even on degenerate terminals. *)
  if height <= 0 then []
  else if height = 1 then [ truncate width bottom ]
  else (truncate width title :: body) @ [ truncate width bottom ]
