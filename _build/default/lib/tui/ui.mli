(** The interactive SLIMPad UI, as a pure state machine.

    The original SLIMPad is a GUI (Fig 4); this is its terminal
    counterpart: a tree pane over one pad (bundles expand/collapse,
    scraps resolve), a detail pane showing the last resolution, and modal
    line input for renaming, annotating, and searching. The state machine
    is pure — {!handle} maps an event to a new state, {!render} produces
    a frame as text lines — so the whole interaction is unit-testable;
    [bin/slimpad_tui] wraps it in a notty event loop. *)

type row =
  | Bundle_row of { bundle : Si_slim.Dmi.bundle; depth : int; expanded : bool }
  | Scrap_row of { scrap : Si_slim.Dmi.scrap; depth : int }
  | Decoration_row of { decoration : Si_slim.Dmi.decoration; depth : int }

type mode =
  | Browse
  | Input of { prompt : string; buffer : string; action : input_action }

and input_action = Rename | Annotate | Search

type event =
  | Up
  | Down
  | Page_down
  | Page_up
  | Toggle  (** expand/collapse the bundle under the cursor *)
  | Activate  (** double-click: resolve the scrap under the cursor *)
  | Extract  (** the extract-content behaviour into the detail pane *)
  | In_place  (** the display-in-place behaviour *)
  | Start_rename
  | Start_annotate
  | Start_link
      (** first press arms a link from the selected scrap; second press
          completes it to the (different) selected scrap *)
  | Start_search
  | Next_match
  | Refresh_drift  (** run drift detection; stale scraps get flagged *)
  | Char of char  (** typing in input mode *)
  | Backspace
  | Commit  (** Enter in input mode *)
  | Cancel  (** Escape *)
  | Quit

type t

val make : Si_slimpad.Slimpad.t -> Si_slim.Dmi.pad -> t

val rows : t -> row list
(** The visible tree rows, in display order (collapsed bundles hide their
    subtrees). The pad's root bundle is always first. *)

val cursor : t -> int
(** Index into {!rows}. *)

val selected : t -> row option
val mode : t -> mode
val detail : t -> string list
(** The detail pane's current contents (empty until a resolution). *)

val status : t -> string
(** One-line status/message bar. *)

val pending_link : t -> Si_slim.Dmi.scrap option
(** The armed link source, between the two [Start_link] presses. *)

val finished : t -> bool
(** True after {!event} [Quit]. *)

val handle : t -> event -> t
(** Total: unknown/inapplicable events leave the state unchanged (with a
    status message where that helps). *)

val render : t -> width:int -> height:int -> string list
(** A full frame as [height] lines of at most [width] characters: tree
    pane left, detail pane right, status bar last. Pure. *)
