(** Mappings between superimposed models (paper §4.3 / [4]).

    "We can leverage the generic representation directly, by defining
    mappings between superimposed models, including model-to-model,
    schema-to-schema and even schema-to-model mappings."

    Because every model's instance data is triples, a mapping is plain
    data transformation: construct-to-construct rules with per-property
    renamings. [apply] walks the source instances and materializes target
    instances (in the same or another triple manager), rewriting resource
    references through the instance correspondence it builds. *)

type rule = {
  from_construct : string;  (** construct name in the source model *)
  to_construct : string;  (** construct name in the target model *)
  property_map : (string * string) list;
      (** source predicate -> target predicate; unmapped properties are
          dropped (and counted) *)
}

type t

val create : source:Si_metamodel.Model.t -> target:Si_metamodel.Model.t -> t
val add_rule : t -> rule -> (t, string) result
(** Checks both constructs exist and target predicates name connectors of
    the target construct (or its supertypes). *)

val add_rule_exn : t -> rule -> t
val rules : t -> rule list

type report = {
  instances_mapped : int;
  properties_mapped : int;
  properties_dropped : int;
  dangling_rewrites : int;
      (** resource-valued properties whose referent had no mapped
          counterpart; they are dropped *)
  correspondence : (string * string) list;
      (** source instance id -> target instance id *)
}

val apply : t -> report
(** Materializes target instances in the target model's triple manager.
    Conformance links ([mm:conformsTo]) are recorded from each new
    instance back to its source. Idempotence is not attempted: applying
    twice maps twice. *)

val schema_to_model : source:Si_metamodel.Model.t ->
  instance_construct:string -> name_predicate:string ->
  target:Si_metamodel.Model.t -> (Si_metamodel.Model.construct list, string) result
(** The paper's "schema-to-model" direction: promote each {e instance} of
    [instance_construct] (e.g. each Table of a relational schema) into a
    {e construct} of the target model, named by its [name_predicate]
    value. Returns the new constructs. *)

val pp_report : Format.formatter -> report -> unit
