module Model = Si_metamodel.Model

type change =
  | Construct_added of string
  | Construct_removed of string
  | Construct_rekinded of { name : string; from_ : string; to_ : string }
  | Connector_added of { domain : string; predicate : string; min_card : int }
  | Connector_removed of { domain : string; predicate : string }
  | Cardinality_changed of {
      domain : string;
      predicate : string;
      from_ : string;
      to_ : string;
    }
  | Range_changed of {
      domain : string;
      predicate : string;
      from_ : string;
      to_ : string;
    }
  | Generalization_added of { sub : string; super : string }
  | Generalization_removed of { sub : string; super : string }

let kind_name = function
  | Model.Construct -> "construct"
  | Model.Literal_construct -> "literal"
  | Model.Mark_construct -> "mark"

let card_name { Model.min_card; max_card } =
  Printf.sprintf "%d..%s" min_card
    (match max_card with Some n -> string_of_int n | None -> "*")

(* Keyed views of a model. *)
let construct_table m =
  List.map (fun c -> (Model.construct_name m c, c)) (Model.constructs m)

let connector_table m =
  List.map
    (fun conn ->
      ( ( Model.construct_name m conn.Model.conn_domain,
          conn.Model.conn_predicate ),
        conn ))
    (Model.connectors m)

(* Direct generalization edges, as (sub name, super name). We re-derive
   direct edges from the transitive closure: an edge sub->super is direct
   when no other supertype of sub has super as its supertype... that is
   overcautious; instead compare the transitive closures, which is what
   compatibility cares about. *)
let generalization_closure m =
  List.concat_map
    (fun c ->
      List.map
        (fun s -> (Model.construct_name m c, Model.construct_name m s))
        (Model.superconstructs m c))
    (Model.constructs m)
  |> List.sort_uniq compare

let diff old_model new_model =
  let old_constructs = construct_table old_model in
  let new_constructs = construct_table new_model in
  let construct_changes =
    List.filter_map
      (fun (name, c) ->
        match List.assoc_opt name new_constructs with
        | None -> Some (Construct_removed name)
        | Some c' when c'.Model.kind <> c.Model.kind ->
            Some
              (Construct_rekinded
                 {
                   name;
                   from_ = kind_name c.Model.kind;
                   to_ = kind_name c'.Model.kind;
                 })
        | Some _ -> None)
      old_constructs
    @ List.filter_map
        (fun (name, _) ->
          if List.mem_assoc name old_constructs then None
          else Some (Construct_added name))
        new_constructs
  in
  let old_conns = connector_table old_model in
  let new_conns = connector_table new_model in
  let connector_changes =
    List.concat_map
      (fun ((domain, predicate), conn) ->
        match List.assoc_opt (domain, predicate) new_conns with
        | None -> [ Connector_removed { domain; predicate } ]
        | Some conn' ->
            let card_change =
              if conn.Model.card <> conn'.Model.card then
                [
                  Cardinality_changed
                    {
                      domain;
                      predicate;
                      from_ = card_name conn.Model.card;
                      to_ = card_name conn'.Model.card;
                    };
                ]
              else []
            in
            let range_change =
              let range m c = Model.construct_name m c.Model.conn_range in
              if range old_model conn <> range new_model conn' then
                [
                  Range_changed
                    {
                      domain;
                      predicate;
                      from_ = range old_model conn;
                      to_ = range new_model conn';
                    };
                ]
              else []
            in
            card_change @ range_change)
      old_conns
    @ List.filter_map
        (fun ((domain, predicate), conn) ->
          if List.mem_assoc (domain, predicate) old_conns then None
          else
            Some
              (Connector_added
                 { domain; predicate; min_card = conn.Model.card.Model.min_card }))
        new_conns
  in
  let old_gen = generalization_closure old_model in
  let new_gen = generalization_closure new_model in
  let gen_changes =
    List.filter_map
      (fun (sub, super) ->
        if List.mem (sub, super) new_gen then None
        else Some (Generalization_removed { sub; super }))
      old_gen
    @ List.filter_map
        (fun (sub, super) ->
          if List.mem (sub, super) old_gen then None
          else Some (Generalization_added { sub; super }))
        new_gen
  in
  List.sort compare (construct_changes @ connector_changes @ gen_changes)

let is_backward_compatible changes =
  List.for_all
    (function
      | Construct_added _ | Generalization_added _ -> true
      | Connector_added { min_card; _ } -> min_card = 0
      | Construct_removed _ | Construct_rekinded _ | Connector_removed _
      | Cardinality_changed _ | Range_changed _ | Generalization_removed _ ->
          false)
    changes

let change_to_string = function
  | Construct_added n -> Printf.sprintf "+ construct %s" n
  | Construct_removed n -> Printf.sprintf "- construct %s" n
  | Construct_rekinded { name; from_; to_ } ->
      Printf.sprintf "~ construct %s: %s -> %s" name from_ to_
  | Connector_added { domain; predicate; min_card } ->
      Printf.sprintf "+ %s.%s (min %d)" domain predicate min_card
  | Connector_removed { domain; predicate } ->
      Printf.sprintf "- %s.%s" domain predicate
  | Cardinality_changed { domain; predicate; from_; to_ } ->
      Printf.sprintf "~ %s.%s cardinality: %s -> %s" domain predicate from_ to_
  | Range_changed { domain; predicate; from_; to_ } ->
      Printf.sprintf "~ %s.%s range: %s -> %s" domain predicate from_ to_
  | Generalization_added { sub; super } ->
      Printf.sprintf "+ %s isa %s" sub super
  | Generalization_removed { sub; super } ->
      Printf.sprintf "- %s isa %s" sub super

let pp ppf changes =
  List.iter (fun c -> Format.fprintf ppf "%s@." (change_to_string c)) changes
