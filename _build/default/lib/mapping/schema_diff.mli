(** Structural diff between two models (schema evolution support).

    §6: "We are also developing capabilities for cross-schema and even
    cross-model mapping of superimposed information." A mapping is written
    against a model version; this diff reports what changed between two
    versions so mappings (and generated DMIs) can be reviewed: constructs
    added/removed/re-kinded, connectors added/removed, cardinality or
    range changes, generalization edges added/removed. *)

type change =
  | Construct_added of string
  | Construct_removed of string
  | Construct_rekinded of { name : string; from_ : string; to_ : string }
  | Connector_added of { domain : string; predicate : string; min_card : int }
  | Connector_removed of { domain : string; predicate : string }
  | Cardinality_changed of {
      domain : string;
      predicate : string;
      from_ : string;
      to_ : string;
    }
  | Range_changed of {
      domain : string;
      predicate : string;
      from_ : string;
      to_ : string;
    }
  | Generalization_added of { sub : string; super : string }
  | Generalization_removed of { sub : string; super : string }

val diff : Si_metamodel.Model.t -> Si_metamodel.Model.t -> change list
(** Changes that turn the first model into the second, matched by
    construct/predicate {e name}. Deterministic order (sorted by kind,
    then name). *)

val is_backward_compatible : change list -> bool
(** True when old instance data necessarily still validates under the new
    model: new constructs, new generalization edges and new {e optional}
    connectors (min-cardinality 0) are compatible; removals, re-kindings,
    required additions, and cardinality/range changes are treated as
    breaking (conservatively — a widened cardinality is reported as a
    change and therefore breaking here). *)

val change_to_string : change -> string
val pp : Format.formatter -> change list -> unit
