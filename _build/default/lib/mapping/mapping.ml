module Model = Si_metamodel.Model
module Trim = Si_triple.Trim
module Triple = Si_triple.Triple

type rule = {
  from_construct : string;
  to_construct : string;
  property_map : (string * string) list;
}

type t = { source : Model.t; target : Model.t; rule_list : rule list }

let create ~source ~target = { source; target; rule_list = [] }
let rules t = List.rev t.rule_list

let add_rule t rule =
  match
    ( Model.find_construct t.source rule.from_construct,
      Model.find_construct t.target rule.to_construct )
  with
  | None, _ ->
      Error
        (Printf.sprintf "no construct %S in source model %s"
           rule.from_construct (Model.name t.source))
  | _, None ->
      Error
        (Printf.sprintf "no construct %S in target model %s" rule.to_construct
           (Model.name t.target))
  | Some _, Some target_construct ->
      let bad_predicate =
        List.find_opt
          (fun (_, target_pred) ->
            Model.find_connector t.target ~domain:target_construct
              ~predicate:target_pred
            = None)
          rule.property_map
      in
      (match bad_predicate with
      | Some (_, p) ->
          Error
            (Printf.sprintf "target construct %S has no connector %S"
               rule.to_construct p)
      | None -> Ok { t with rule_list = rule :: t.rule_list })

let add_rule_exn t rule =
  match add_rule t rule with Ok t -> t | Error msg -> invalid_arg msg

type report = {
  instances_mapped : int;
  properties_mapped : int;
  properties_dropped : int;
  dangling_rewrites : int;
  correspondence : (string * string) list;
}

let apply t =
  let rule_list = rules t in
  (* Pass 1: create a target instance per mapped source instance. *)
  let table = Hashtbl.create 64 in
  let pairs =
    List.concat_map
      (fun rule ->
        match
          ( Model.find_construct t.source rule.from_construct,
            Model.find_construct t.target rule.to_construct )
        with
        | Some from_c, Some to_c ->
            List.map
              (fun src ->
                let dst = Model.new_instance t.target to_c () in
                Hashtbl.replace table src dst;
                Model.conform t.target ~instance:dst ~to_:src;
                (rule, from_c, src, dst))
              (Model.instances_of t.source from_c)
        | _ -> [])
      rule_list
  in
  (* Pass 2: map properties, rewriting resource references through the
     correspondence. *)
  let mapped = ref 0 and dropped = ref 0 and dangling = ref 0 in
  List.iter
    (fun (rule, _from_c, src, dst) ->
      List.iter
        (fun (pred, obj) ->
          match List.assoc_opt pred rule.property_map with
          | None -> incr dropped
          | Some target_pred -> (
              match obj with
              | Triple.Literal _ ->
                  Model.add_property t.target dst target_pred obj;
                  incr mapped
              | Triple.Resource r -> (
                  match Hashtbl.find_opt table r with
                  | Some r' ->
                      Model.add_property t.target dst target_pred
                        (Triple.resource r');
                      incr mapped
                  | None -> incr dangling)))
        (Model.properties t.source src))
    pairs;
  {
    instances_mapped = List.length pairs;
    properties_mapped = !mapped;
    properties_dropped = !dropped;
    dangling_rewrites = !dangling;
    correspondence =
      List.sort compare
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []);
  }

let schema_to_model ~source ~instance_construct ~name_predicate ~target =
  match Model.find_construct source instance_construct with
  | None ->
      Error
        (Printf.sprintf "no construct %S in source model" instance_construct)
  | Some c ->
      let constructs =
        List.filter_map
          (fun inst ->
            match
              Trim.literal_of (Model.trim source) ~subject:inst
                ~predicate:name_predicate
            with
            | Some name ->
                let created = Model.construct target name in
                Model.conform target
                  ~instance:created.Model.construct_id ~to_:inst;
                Some created
            | None -> None)
          (Model.instances_of source c)
      in
      Ok constructs

let pp_report ppf r =
  Format.fprintf ppf
    "mapped %d instance(s); %d propertie(s) mapped, %d dropped, %d dangling"
    r.instances_mapped r.properties_mapped r.properties_dropped
    r.dangling_rewrites
