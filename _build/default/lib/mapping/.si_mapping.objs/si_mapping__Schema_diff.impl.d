lib/mapping/schema_diff.ml: Format List Printf Si_metamodel
