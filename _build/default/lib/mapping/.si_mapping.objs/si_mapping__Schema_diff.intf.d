lib/mapping/schema_diff.mli: Format Si_metamodel
