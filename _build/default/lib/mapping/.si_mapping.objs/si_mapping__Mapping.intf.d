lib/mapping/mapping.mli: Format Si_metamodel
