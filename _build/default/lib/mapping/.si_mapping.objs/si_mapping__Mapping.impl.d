lib/mapping/mapping.ml: Format Hashtbl List Printf Si_metamodel Si_triple
