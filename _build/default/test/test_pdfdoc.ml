(* Tests for the paginated-document substrate (the PDF stand-in). *)

open Si_pdfdoc

let check = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let guideline () =
  let d = Pdfdoc.create ~title:"Sepsis Guideline" () in
  let p1 = Pdfdoc.add_page d in
  let _ = Pdfdoc.add_line p1 ~y:72. "Surviving Sepsis: 2001 Update" in
  let _ = Pdfdoc.add_line p1 ~y:100. "Initial resuscitation targets" in
  let _ = Pdfdoc.add_line p1 ~y:120. "MAP >= 65 mmHg" in
  let _ = Pdfdoc.add_line p1 ~y:140. "Urine output >= 0.5 mL/kg/h" in
  let p2 = Pdfdoc.add_page d in
  let _ = Pdfdoc.add_line p2 ~y:72. "Vasopressor selection" in
  let _ = Pdfdoc.add_line p2 ~y:100. "Norepinephrine is first line" in
  d

let test_structure () =
  let d = guideline () in
  check "title" "Sepsis Guideline" (Pdfdoc.title d);
  check_int "pages" 2 (Pdfdoc.page_count d);
  let p1 = Option.get (Pdfdoc.nth_page d 1) in
  check_int "spans" 4 (List.length (Pdfdoc.spans p1));
  check_bool "size" true (Pdfdoc.page_size p1 = (612., 792.));
  check_bool "no page 3" true (Pdfdoc.nth_page d 3 = None)

let test_text () =
  let d = guideline () in
  let p2 = Option.get (Pdfdoc.nth_page d 2) in
  check "page text" "Vasopressor selection\nNorepinephrine is first line"
    (Pdfdoc.page_text p2);
  check_bool "doc text has all pages" true
    (String.length (Pdfdoc.text d) > String.length (Pdfdoc.page_text p2))

let test_rect_intersects () =
  let a = { Pdfdoc.x = 0.; y = 0.; w = 10.; h = 10. } in
  let b = { Pdfdoc.x = 5.; y = 5.; w = 10.; h = 10. } in
  let c = { Pdfdoc.x = 20.; y = 0.; w = 5.; h = 5. } in
  let touch = { Pdfdoc.x = 10.; y = 0.; w = 5.; h = 5. } in
  check_bool "overlap" true (Pdfdoc.rect_intersects a b);
  check_bool "disjoint" false (Pdfdoc.rect_intersects a c);
  (* Edge-touching boxes do not count as intersecting (strict overlap). *)
  check_bool "touching" false (Pdfdoc.rect_intersects a touch)

let test_region_selection () =
  let d = guideline () in
  (* A region over the vertical band 95..145 on page 1 catches the three
     lower lines. *)
  let region =
    { Pdfdoc.page = 1; rect = { Pdfdoc.x = 0.; y = 95.; w = 612.; h = 50. } }
  in
  let selected = Pdfdoc.spans_in_region d region in
  check_int "three lines" 3 (List.length selected);
  check "region text"
    "Initial resuscitation targets\nMAP >= 65 mmHg\nUrine output >= 0.5 mL/kg/h"
    (Option.get (Pdfdoc.region_text d region));
  check_bool "missing page" true
    (Pdfdoc.region_text d { region with page = 9 } = None);
  check_bool "empty region" true
    (Pdfdoc.spans_in_region d
       { Pdfdoc.page = 1; rect = { Pdfdoc.x = 0.; y = 700.; w = 10.; h = 10. } }
    = [])

let test_bounding_region () =
  let d = guideline () in
  let p1 = Option.get (Pdfdoc.nth_page d 1) in
  let selected = List.filteri (fun i _ -> i >= 2) (Pdfdoc.spans p1) in
  let region = Option.get (Pdfdoc.bounding_region d ~page_number:1 selected) in
  (* The bounding region must select back at least the chosen spans. *)
  let reselected = Pdfdoc.spans_in_region d region in
  check_bool "covers selection" true
    (List.for_all (fun s -> List.memq s reselected) selected);
  check_bool "no spans -> none" true
    (Pdfdoc.bounding_region d ~page_number:1 [] = None);
  check_bool "bad page -> none" true
    (Pdfdoc.bounding_region d ~page_number:7 selected = None)

let test_reading_order () =
  let d = Pdfdoc.create () in
  let p = Pdfdoc.add_page d in
  (* Emitted out of order: right cell of line 1, then line 2, then left
     cell of line 1 (as PDF generators often do). *)
  let right1 =
    Pdfdoc.add_span p ~text:"right1" { Pdfdoc.x = 300.; y = 100.; w = 80.; h = 12. }
  in
  let line2 =
    Pdfdoc.add_span p ~text:"line2" { Pdfdoc.x = 72.; y = 130.; w = 80.; h = 12. }
  in
  let left1 =
    Pdfdoc.add_span p ~text:"left1"
      { Pdfdoc.x = 72.; y = 101.5; w = 80.; h = 12. }
  in
  (* Content order is insertion order... *)
  Alcotest.(check (list string))
    "content order" [ "right1"; "line2"; "left1" ]
    (List.map (fun s -> s.Pdfdoc.span_text) (Pdfdoc.spans p));
  (* ...reading order sorts by line then x (the slightly offset left1 is
     on the same visual line as right1). *)
  Alcotest.(check (list string))
    "reading order" [ "left1"; "right1"; "line2" ]
    (List.map (fun s -> s.Pdfdoc.span_text) (Pdfdoc.reading_order p));
  ignore (right1, line2, left1)

let test_find_text () =
  let d = guideline () in
  (match Pdfdoc.find_text d "Norepinephrine" with
  | [ r ] -> check_int "page" 2 r.Pdfdoc.page
  | hits -> Alcotest.failf "expected 1 hit, got %d" (List.length hits));
  check_int "two >= hits" 2 (List.length (Pdfdoc.find_text d ">="));
  check_bool "absent" true (Pdfdoc.find_text d "dopamine" = [])

let test_xml_roundtrip () =
  let d = guideline () in
  let d2 =
    match Pdfdoc.of_xml (Pdfdoc.to_xml d) with
    | Ok x -> x
    | Error e -> Alcotest.fail e
  in
  check_bool "equal" true (Pdfdoc.equal d d2);
  check "text preserved" (Pdfdoc.text d) (Pdfdoc.text d2)

let test_xml_file_roundtrip () =
  let d = guideline () in
  let path = Filename.temp_file "pdf" ".xml" in
  Pdfdoc.save d path;
  let d2 = match Pdfdoc.load path with Ok x -> x | Error e -> Alcotest.fail e in
  Sys.remove path;
  check_bool "file roundtrip" true (Pdfdoc.equal d d2)

let test_xml_rejects_garbage () =
  check_bool "bad root" true
    (Result.is_error (Pdfdoc.of_xml (Si_xmlk.Node.element "doc" [])));
  let bad_span =
    Si_xmlk.Node.element "pdf"
      [
        Si_xmlk.Node.element "page"
          [ Si_xmlk.Node.element "span" [ Si_xmlk.Node.text "no geometry" ] ];
      ]
  in
  check_bool "span without box" true (Result.is_error (Pdfdoc.of_xml bad_span))

(* Properties. *)

let gen_rect =
  QCheck.Gen.(
    let* x = float_bound_inclusive 500. in
    let* y = float_bound_inclusive 700. in
    let* w = float_bound_inclusive 200. in
    let* h = float_bound_inclusive 50. in
    return { Pdfdoc.x; y; w = w +. 1.; h = h +. 1. })

let gen_doc =
  QCheck.Gen.(
    let* npages = int_range 1 3 in
    let* spans_per_page = list_size (return npages) (int_range 0 6) in
    let d = Pdfdoc.create () in
    let* () =
      List.fold_left
        (fun acc count ->
          let* () = acc in
          let p = Pdfdoc.add_page d in
          let rec add i =
            if i >= count then return ()
            else
              let* r = gen_rect in
              let _ = Pdfdoc.add_span p ~text:(Printf.sprintf "span-%d" i) r in
              add (i + 1)
          in
          add 0)
        (return ()) spans_per_page
    in
    return d)

let arbitrary_doc = QCheck.make gen_doc ~print:Pdfdoc.text

let prop_xml_roundtrip =
  QCheck.Test.make ~name:"pdfdoc XML round-trip" ~count:100 arbitrary_doc
    (fun d ->
      match Pdfdoc.of_xml (Pdfdoc.to_xml d) with
      | Ok d2 -> Pdfdoc.equal d d2
      | Error _ -> false)

let prop_whole_page_region_selects_all =
  QCheck.Test.make ~name:"whole-page region selects every span" ~count:100
    arbitrary_doc (fun d ->
      List.mapi (fun i p -> (i + 1, p)) (Pdfdoc.pages d)
      |> List.for_all (fun (number, p) ->
             let region =
               {
                 Pdfdoc.page = number;
                 rect = { Pdfdoc.x = -1e6; y = -1e6; w = 2e6; h = 2e6 };
               }
             in
             List.length (Pdfdoc.spans_in_region d region)
             = List.length (Pdfdoc.spans p)))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_xml_roundtrip; prop_whole_page_region_selects_all ]

let suite =
  [
    ("structure", `Quick, test_structure);
    ("text extraction", `Quick, test_text);
    ("rect intersection", `Quick, test_rect_intersects);
    ("region selection", `Quick, test_region_selection);
    ("bounding region", `Quick, test_bounding_region);
    ("reading order", `Quick, test_reading_order);
    ("find_text", `Quick, test_find_text);
    ("xml round-trip", `Quick, test_xml_roundtrip);
    ("xml file round-trip", `Quick, test_xml_file_roundtrip);
    ("xml rejects garbage", `Quick, test_xml_rejects_garbage);
  ]
  @ props
