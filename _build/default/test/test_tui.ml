(* Tests for the interactive SLIMPad's pure state machine. *)

open Si_tui
module Dmi = Si_slim.Dmi
module Desktop = Si_mark.Desktop
module Slimpad = Si_slimpad.Slimpad

let check = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* The Fig 4 pad again, over a live desktop. *)
let fixture () =
  let desk = Desktop.create () in
  let wb = Si_spreadsheet.Workbook.create ~sheet_names:[ "Medications" ] () in
  let set a v = Si_spreadsheet.Workbook.set wb ~sheet_name:"Medications" a v in
  set "A2" "Dopamine";
  set "B2" "5";
  Desktop.add_workbook desk "meds.xls" wb;
  Desktop.add_xml desk "labs.xml"
    (Si_xmlk.Parse.node_exn
       "<report><result test=\"K\">4.2</result></report>");
  let app = Slimpad.create desk in
  let pad = Slimpad.new_pad app "Rounds" in
  let root = Dmi.root_bundle (Slimpad.dmi app) pad in
  let smith = Slimpad.add_bundle app ~parent:root ~name:"John Smith" () in
  let dopa =
    Result.get_ok
      (Slimpad.add_scrap app ~parent:smith ~name:"Dopamine 5"
         ~mark_type:"excel"
         ~fields:
           [ ("fileName", "meds.xls"); ("sheetName", "Medications");
             ("range", "A2:B2") ]
         ())
  in
  let labs = Slimpad.add_bundle app ~parent:smith ~name:"Labs" () in
  let k =
    Result.get_ok
      (Slimpad.add_scrap app ~parent:labs ~name:"K 4.2" ~mark_type:"xml"
         ~fields:[ ("fileName", "labs.xml"); ("xmlPath", "/report/result") ]
         ())
  in
  ignore (Dmi.add_decoration (Slimpad.dmi app) labs ~kind:"gridlet" ());
  (app, pad, smith, dopa, k)

let drive ui events = List.fold_left Ui.handle ui events

let row_names app row =
  let d = Slimpad.dmi app in
  match row with
  | Ui.Bundle_row { bundle; _ } -> "B:" ^ Dmi.bundle_name d bundle
  | Ui.Scrap_row { scrap; _ } -> "S:" ^ Dmi.scrap_name d scrap
  | Ui.Decoration_row { decoration; _ } ->
      "D:" ^ Dmi.decoration_kind d decoration

let test_rows_flatten_tree () =
  let app, pad, _, _, _ = fixture () in
  let ui = Ui.make app pad in
  Alcotest.(check (list string))
    "rows"
    [ "B:Rounds"; "B:John Smith"; "S:Dopamine 5"; "B:Labs"; "S:K 4.2";
      "D:gridlet" ]
    (List.map (row_names app) (Ui.rows ui))

let test_cursor_moves_and_clamps () =
  let app, pad, _, _, _ = fixture () in
  let ui = Ui.make app pad in
  check_int "start" 0 (Ui.cursor ui);
  let ui = drive ui [ Ui.Down; Ui.Down ] in
  check_int "down twice" 2 (Ui.cursor ui);
  let ui = drive ui [ Ui.Up; Ui.Up; Ui.Up; Ui.Up ] in
  check_int "clamped at top" 0 (Ui.cursor ui);
  let ui = drive ui [ Ui.Page_down; Ui.Page_down ] in
  check_int "clamped at bottom" 5 (Ui.cursor ui)

let test_fold_collapses_subtree () =
  let app, pad, _, _, _ = fixture () in
  let ui = Ui.make app pad in
  (* Collapse "John Smith" (row 1). *)
  let ui = drive ui [ Ui.Down; Ui.Toggle ] in
  Alcotest.(check (list string))
    "collapsed" [ "B:Rounds"; "B:John Smith" ]
    (List.map (row_names app) (Ui.rows ui));
  (* Expand again. *)
  let ui = drive ui [ Ui.Toggle ] in
  check_int "expanded" 6 (List.length (Ui.rows ui));
  (* Folding a scrap is a no-op with a message. *)
  let ui = drive ui [ Ui.Down; Ui.Toggle ] in
  check "message" "only bundles fold" (Ui.status ui)

let test_activate_resolves () =
  let app, pad, _, _, _ = fixture () in
  let ui = Ui.make app pad in
  (* Move to the Dopamine scrap and activate. *)
  let ui = drive ui [ Ui.Down; Ui.Down; Ui.Activate ] in
  check_bool "detail filled" true (Ui.detail ui <> []);
  check_bool "detail mentions the source" true
    (let re = Re.compile (Re.str "meds.xls!Medications!A2:B2") in
     Re.execp re (String.concat "\n" (Ui.detail ui)));
  (* Extract shows just the content. *)
  let ui = drive ui [ Ui.Extract ] in
  check_bool "extract body" true
    (List.exists (fun l -> l = "Dopamine\t5") (Ui.detail ui));
  (* Activating a bundle only warns. *)
  let ui = drive ui [ Ui.Up; Ui.Activate ] in
  check "bundle warning" "select a scrap to resolve" (Ui.status ui)

let test_rename_flow () =
  let app, pad, _, dopa, _ = fixture () in
  let ui = Ui.make app pad in
  let ui = drive ui [ Ui.Down; Ui.Down; Ui.Start_rename ] in
  (match Ui.mode ui with
  | Ui.Input { buffer; _ } -> check "prefilled" "Dopamine 5" buffer
  | Ui.Browse -> Alcotest.fail "expected input mode");
  (* Backspace twice, type "10", commit. *)
  let ui =
    drive ui
      [ Ui.Backspace; Ui.Char '1'; Ui.Char '0'; Ui.Commit ]
  in
  check_bool "back to browse" true (Ui.mode ui = Ui.Browse);
  check "renamed in store" "Dopamine 10"
    (Dmi.scrap_name (Slimpad.dmi app) dopa)

let test_input_mode_swallows_navigation () =
  let app, pad, _, _, _ = fixture () in
  let ui = drive (Ui.make app pad) [ Ui.Down; Ui.Down; Ui.Start_annotate ] in
  let before = Ui.cursor ui in
  let ui = drive ui [ Ui.Down; Ui.Up; Ui.Page_down ] in
  check_int "cursor frozen" before (Ui.cursor ui);
  (* Cancel restores browse mode without a note. *)
  let ui = drive ui [ Ui.Cancel ] in
  check_bool "browse" true (Ui.mode ui = Ui.Browse);
  check "cancelled" "cancelled" (Ui.status ui)

let test_annotate_flow () =
  let app, pad, _, dopa, _ = fixture () in
  let ui = drive (Ui.make app pad) [ Ui.Down; Ui.Down; Ui.Start_annotate ] in
  let ui =
    drive ui [ Ui.Char 'h'; Ui.Char 'i'; Ui.Commit ]
  in
  check "status" "annotated" (Ui.status ui);
  Alcotest.(check (list string))
    "stored" [ "hi" ]
    (Dmi.annotations (Slimpad.dmi app) dopa);
  (* Annotating a bundle refuses. *)
  let ui = drive ui [ Ui.Up; Ui.Up; Ui.Start_annotate ] in
  check "refused" "annotations attach to scraps" (Ui.status ui)

let test_search_flow () =
  let app, pad, _, _, _ = fixture () in
  let ui = drive (Ui.make app pad) [ Ui.Start_search ] in
  let ui = drive ui [ Ui.Char 'K'; Ui.Commit ] in
  (* Cursor lands on the "K 4.2" scrap (row 4). *)
  check_int "found" 4 (Ui.cursor ui);
  (* Next match wraps around to the same single hit. *)
  let ui = drive ui [ Ui.Next_match ] in
  check_int "wrapped" 4 (Ui.cursor ui);
  (* Missing term reports. *)
  let ui = drive ui [ Ui.Start_search; Ui.Char 'z'; Ui.Char 'z'; Ui.Commit ] in
  check "no match" "no match for \"zz\"" (Ui.status ui);
  let ui2 = drive (Ui.make app pad) [ Ui.Next_match ] in
  check "no previous" "no previous search" (Ui.status ui2)

let test_link_flow () =
  let app, pad, _, dopa, k = fixture () in
  let t = Slimpad.dmi app in
  (* Arm on the Dopamine scrap (row 2), move to K 4.2 (row 4), complete. *)
  let ui = drive (Ui.make app pad) [ Ui.Down; Ui.Down; Ui.Start_link ] in
  check_bool "armed" true (Ui.pending_link ui <> None);
  let ui = drive ui [ Ui.Down; Ui.Down; Ui.Start_link ] in
  check "status" "linked" (Ui.status ui);
  check_bool "disarmed" true (Ui.pending_link ui = None);
  (match Dmi.links t with
  | [ l ] -> check_bool "ends" true (Dmi.link_ends t l = Some (dopa, k))
  | l -> Alcotest.failf "expected 1 link, got %d" (List.length l));
  (* Self-link refused; bundles refused; cancel disarms. *)
  let ui = drive ui [ Ui.Start_link; Ui.Start_link ] in
  check "self refused" "a scrap cannot link to itself" (Ui.status ui);
  let ui = drive ui [ Ui.Cancel ] in
  check_bool "cancel disarms" true (Ui.pending_link ui = None);
  let ui2 = drive (Ui.make app pad) [ Ui.Start_link ] in
  check "bundle refused" "links start at a scrap" (Ui.status ui2)

let test_drift_flags_rows () =
  let app, pad, _, _, _ = fixture () in
  let ui = Ui.make app pad in
  let ui = drive ui [ Ui.Refresh_drift ] in
  check "clean" "0 stale scrap(s)" (Ui.status ui);
  (* Change the base workbook; the row renders with a stale flag. *)
  let wb = Result.get_ok (Desktop.open_workbook (Slimpad.desktop app) "meds.xls") in
  Si_spreadsheet.Workbook.set wb ~sheet_name:"Medications" "B2" "10";
  let ui = drive ui [ Ui.Refresh_drift ] in
  check "one stale" "1 stale scrap(s)" (Ui.status ui);
  let frame = String.concat "\n" (Ui.render ui ~width:100 ~height:20) in
  check_bool "stale marker rendered" true
    (let re = Re.compile (Re.str "!stale") in
     Re.execp re frame)

let test_render_geometry () =
  let app, pad, _, _, _ = fixture () in
  let ui = Ui.make app pad in
  let width = 80 and height = 14 in
  let lines = Ui.render ui ~width ~height in
  check_int "exact height" height (List.length lines);
  check_bool "width bound" true
    (List.for_all (fun l -> String.length l <= width) lines);
  check_bool "title" true
    (String.length (List.hd lines) > 0 && String.sub (List.hd lines) 0 7 = "SLIMPad");
  (* The cursor marker appears exactly once. *)
  let frame = String.concat "\n" lines in
  check_bool "cursor marker" true
    (let re = Re.compile (Re.str "> ") in
     Re.execp re frame)

let test_render_small_terminal () =
  let app, pad, _, _, _ = fixture () in
  let ui = Ui.make app pad in
  (* Degenerate sizes must not raise. *)
  List.iter
    (fun (w, h) ->
      let lines = Ui.render ui ~width:w ~height:h in
      check_int (Printf.sprintf "height %dx%d" w h) h (List.length lines))
    [ (10, 3); (5, 2); (200, 50) ]

let test_scroll_keeps_cursor_visible () =
  (* A pad with many scraps scrolls. *)
  let desk = Desktop.create () in
  Desktop.add_text desk "n.txt" (Si_textdoc.Textdoc.of_string "x");
  let app = Slimpad.create desk in
  let pad = Slimpad.new_pad app "big" in
  let root = Dmi.root_bundle (Slimpad.dmi app) pad in
  for i = 1 to 30 do
    ignore
      (Result.get_ok
         (Slimpad.add_scrap app ~parent:root
            ~name:(Printf.sprintf "scrap-%02d" i)
            ~mark_type:"text"
            ~fields:
              [ ("fileName", "n.txt"); ("offset", "0"); ("length", "1") ]
            ()))
  done;
  let ui = Ui.make app pad in
  let ui = drive ui (List.init 25 (fun _ -> Ui.Down)) in
  let frame = String.concat "\n" (Ui.render ui ~width:60 ~height:10) in
  check_bool "cursor row visible after scrolling" true
    (let re = Re.compile (Re.str "> ") in
     Re.execp re frame)

let test_quit () =
  let app, pad, _, _, _ = fixture () in
  let ui = drive (Ui.make app pad) [ Ui.Quit ] in
  check_bool "finished" true (Ui.finished ui);
  (* Events after quit are inert. *)
  let ui = drive ui [ Ui.Down; Ui.Activate ] in
  check_bool "still finished" true (Ui.finished ui);
  check_int "cursor untouched" 0 (Ui.cursor ui)

(* Property: any event sequence keeps the UI within bounds and never
   raises. *)
let gen_event =
  QCheck.Gen.oneofl
    [ Ui.Up; Ui.Down; Ui.Page_up; Ui.Page_down; Ui.Toggle; Ui.Activate;
      Ui.Extract; Ui.In_place; Ui.Start_rename; Ui.Start_annotate;
      Ui.Start_link; Ui.Start_search; Ui.Next_match; Ui.Refresh_drift;
      Ui.Char 'x';
      Ui.Backspace; Ui.Commit; Ui.Cancel ]

let prop_ui_total =
  QCheck.Test.make ~name:"UI survives arbitrary event sequences" ~count:60
    QCheck.(list_of_size (QCheck.Gen.int_range 0 60) (QCheck.make gen_event))
    (fun events ->
      let app, pad, _, _, _ = fixture () in
      let ui = drive (Ui.make app pad) events in
      let rows = Ui.rows ui in
      let lines = Ui.render ui ~width:72 ~height:18 in
      Ui.cursor ui >= 0
      && Ui.cursor ui <= max 0 (List.length rows)
      && List.length lines = 18)

let props = List.map QCheck_alcotest.to_alcotest [ prop_ui_total ]

let suite =
  [
    ("rows flatten the tree", `Quick, test_rows_flatten_tree);
    ("cursor moves & clamps", `Quick, test_cursor_moves_and_clamps);
    ("fold/unfold bundles", `Quick, test_fold_collapses_subtree);
    ("activate resolves into detail pane", `Quick, test_activate_resolves);
    ("rename flow", `Quick, test_rename_flow);
    ("input mode swallows navigation", `Quick,
     test_input_mode_swallows_navigation);
    ("annotate flow", `Quick, test_annotate_flow);
    ("search flow", `Quick, test_search_flow);
    ("link flow", `Quick, test_link_flow);
    ("drift flags rows", `Quick, test_drift_flags_rows);
    ("render geometry", `Quick, test_render_geometry);
    ("render small terminals", `Quick, test_render_small_terminal);
    ("scroll keeps cursor visible", `Quick, test_scroll_keeps_cursor_visible);
    ("quit", `Quick, test_quit);
  ]
  @ props
