(* Tests for the automatically generated (interpreted) DMI (paper §4.4/§6:
   "automatic generation of customized data manipulation interfaces"). *)

module Model = Si_metamodel.Model
module Trim = Si_triple.Trim
module Triple = Si_triple.Triple
module G = Si_slim.Generic_dmi

let check = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let err = function
  | Ok _ -> Alcotest.fail "expected an error"
  | Error msg -> msg

(* A library-catalogue model: a fresh domain to prove the generator is not
   Bundle-Scrap-specific. *)
let catalogue () =
  let trim = Trim.create () in
  let m = Model.define trim ~name:"catalogue" in
  let book = Model.construct m "Book" in
  let author = Model.construct m "Author" in
  let reference = Model.construct m "Reference" in
  let str = Model.literal_construct m "String" in
  Model.generalize m ~sub:reference ~super:book;
  let conn name from_ to_ card =
    ignore (Model.connect m ~name ~from_ ~to_ ~card ())
  in
  conn "title" book str Model.one_card;
  conn "writtenBy" book author Model.any_card;
  conn "authorName" author str Model.one_card;
  conn "shelf" reference str Model.optional_card;
  (trim, m)

let test_operations_surface () =
  let _, m = catalogue () in
  let g = G.for_model m in
  let ops = G.operations g in
  check_bool "create ops" true
    (List.mem "Create_Book" ops && List.mem "Create_Author" ops);
  check_bool "no create for literals" true
    (not (List.mem "Create_String" ops));
  check_bool "update ops named by connector" true
    (List.mem "Update_Book_title" ops && List.mem "Update_Reference_shelf" ops);
  check_bool "delete ops" true (List.mem "Delete_Reference" ops)

let test_create_and_type () =
  let _, m = catalogue () in
  let g = G.for_model m in
  let b = ok (G.create g "Book") in
  check "typed" "Book" (Option.get (G.construct_of g b));
  Alcotest.(check (list string)) "listed" [ b ] (ok (G.instances g "Book"));
  check_bool "unknown construct" true
    (Result.is_error (G.create g "Spaceship"));
  check_bool "literal construct rejected" true
    (Result.is_error (G.create g "String"))

let test_checked_set () =
  let _, m = catalogue () in
  let g = G.for_model m in
  let b = ok (G.create g "Book") in
  let a = ok (G.create g "Author") in
  ok (G.set g b "title" (Triple.literal "Cognition in the Wild"));
  check "read back" "Cognition in the Wild"
    (Option.get (G.get_literal g b "title"));
  ok (G.set g b "writtenBy" (Triple.resource a));
  check "resource read back" a (Option.get (G.get_resource g b "writtenBy"));
  (* Wrong kinds rejected. *)
  check_bool "resource where literal" true
    (Result.is_error (G.set g b "title" (Triple.resource a)));
  check_bool "literal where resource" true
    (Result.is_error (G.set g b "writtenBy" (Triple.literal "x")));
  (* Wrong range construct rejected. *)
  let b2 = ok (G.create g "Book") in
  check_bool "book is not an author" true
    (Result.is_error (G.set g b "writtenBy" (Triple.resource b2)));
  (* Unknown predicate rejected. *)
  let msg = err (G.set g b "publisher" (Triple.literal "MIT Press")) in
  check_bool "names the construct" true
    (let re = Re.compile (Re.str "Book") in
     Re.execp re msg)

let test_inherited_connector_usable () =
  let _, m = catalogue () in
  let g = G.for_model m in
  let r = ok (G.create g "Reference") in
  (* Reference inherits title from Book, and adds shelf. *)
  ok (G.set g r "title" (Triple.literal "OED"));
  ok (G.set g r "shelf" (Triple.literal "R2"));
  check "inherited" "OED" (Option.get (G.get_literal g r "title"));
  (* But a plain Book has no shelf. *)
  let b = ok (G.create g "Book") in
  check_bool "shelf not on Book" true
    (Result.is_error (G.set g b "shelf" (Triple.literal "R1")));
  (* Subconstruct instance satisfies a Book-ranged connector. *)
  let a = ok (G.create g "Author") in
  ignore a;
  check_bool "reference usable where book expected" true
    (Result.is_ok (G.set g b "writtenBy" (Triple.resource a)))

let test_add_cardinality () =
  let _, m = catalogue () in
  let g = G.for_model m in
  let b = ok (G.create g "Book") in
  let a1 = ok (G.create g "Author") in
  let a2 = ok (G.create g "Author") in
  ok (G.add g b "writtenBy" (Triple.resource a1));
  ok (G.add g b "writtenBy" (Triple.resource a2));
  check_int "two authors" 2 (List.length (G.get_all g b "writtenBy"));
  (* title is 1..1: the second add must be refused. *)
  ok (G.add g b "title" (Triple.literal "first"));
  let msg = err (G.add g b "title" (Triple.literal "second")) in
  check_bool "max card message" true
    (let re = Re.compile (Re.str "at most 1") in
     Re.execp re msg);
  (* set replaces without tripping the cardinality check. *)
  ok (G.set g b "title" (Triple.literal "replaced"));
  check "replaced" "replaced" (Option.get (G.get_literal g b "title"))

let test_unset_delete () =
  let _, m = catalogue () in
  let g = G.for_model m in
  let b = ok (G.create g "Book") in
  ok (G.set g b "title" (Triple.literal "t"));
  check_int "unset removes" 1 (ok (G.unset g b "title"));
  check_bool "gone" true (G.get g b "title" = None);
  check_int "unset again" 0 (ok (G.unset g b "title"));
  let removed = ok (G.delete g b) in
  check_bool "delete removes the typing triple" true (removed >= 1);
  check_bool "no longer an instance" true (G.construct_of g b = None);
  check_bool "operations on deleted fail" true
    (Result.is_error (G.set g b "title" (Triple.literal "x")))

let test_generated_equals_handwritten () =
  (* Drive the Bundle-Scrap model through the generated DMI and read the
     result back through the hand-written one: both views agree. *)
  let hand = Si_slim.Dmi.create () in
  let g = G.for_model (Si_slim.Dmi.model hand).Si_slim.Bundle_model.model in
  let pad = ok (G.create g "SlimPad") in
  ok (G.set g pad "padName" (Triple.literal "generated"));
  let root = ok (G.create g "Bundle") in
  ok (G.set g root "bundleName" (Triple.literal "generated"));
  ok (G.set g pad "rootBundle" (Triple.resource root));
  let scrap = ok (G.create g "Scrap") in
  ok (G.set g scrap "scrapName" (Triple.literal "from the generator"));
  let handle = ok (G.create g "MarkHandle") in
  ok (G.set g handle "markId" (Triple.literal "mark-1"));
  ok (G.set g scrap "scrapMark" (Triple.resource handle));
  ok (G.add g root "bundleContent" (Triple.resource scrap));
  (* Hand-written view over the same store. *)
  let pad_h = Option.get (Si_slim.Dmi.find_pad hand "generated") in
  let root_h = Si_slim.Dmi.root_bundle hand pad_h in
  (match Si_slim.Dmi.scraps hand root_h with
  | [ s ] ->
      check "scrap name via hand-written DMI" "from the generator"
        (Si_slim.Dmi.scrap_name hand s);
      check "mark id via hand-written DMI" "mark-1"
        (Si_slim.Dmi.scrap_mark_id hand s)
  | l -> Alcotest.failf "expected 1 scrap, got %d" (List.length l));
  (* And the store is conformant. *)
  check_int "valid" 0
    (List.length
       (Si_slim.Dmi.validate hand).Si_metamodel.Validate.violations)

let test_snapshot_semantics () =
  (* The generator snapshots the model at generation time (like generated
     code would): a connector added afterwards is invisible until the DMI
     is regenerated. *)
  let trim, m = catalogue () in
  ignore trim;
  let g = G.for_model m in
  let b = ok (G.create g "Book") in
  let str = Option.get (Model.find_construct m "String") in
  let book_c = Option.get (Model.find_construct m "Book") in
  ignore
    (Model.connect m ~name:"isbn" ~from_:book_c ~to_:str
       ~card:Model.optional_card ());
  check_bool "stale DMI refuses" true
    (Result.is_error (G.set g b "isbn" (Triple.literal "978-0")));
  let g2 = G.for_model m in
  check_bool "regenerated DMI accepts" true
    (Result.is_ok (G.set g2 b "isbn" (Triple.literal "978-0")))

let test_two_models_one_generator_each () =
  let trim = Trim.create () in
  let m1 = Model.define trim ~name:"a" in
  let c1 = Model.construct m1 "Thing" in
  ignore c1;
  let m2 = Model.define trim ~name:"b" in
  let c2 = Model.construct m2 "Thing" in
  ignore c2;
  let g1 = G.for_model m1 and g2 = G.for_model m2 in
  let i1 = ok (G.create g1 "Thing") in
  (* Instances belong to their own model's construct. *)
  check_bool "i1 visible to g1" true (G.construct_of g1 i1 = Some "Thing");
  check_bool "i1 invisible to g2" true (G.construct_of g2 i1 = None);
  check_bool "delete across models refused" true
    (Result.is_error (G.delete g2 i1))

let suite =
  [
    ("operation surface (Fig 10 style)", `Quick, test_operations_surface);
    ("create & typing", `Quick, test_create_and_type);
    ("checked set", `Quick, test_checked_set);
    ("inherited connectors", `Quick, test_inherited_connector_usable);
    ("add & max cardinality", `Quick, test_add_cardinality);
    ("unset & delete", `Quick, test_unset_delete);
    ("generated DMI = hand-written DMI", `Quick,
     test_generated_equals_handwritten);
    ("snapshot semantics", `Quick, test_snapshot_semantics);
    ("model isolation", `Quick, test_two_models_one_generator_each);
  ]
