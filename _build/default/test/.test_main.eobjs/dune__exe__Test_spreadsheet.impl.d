test/test_spreadsheet.ml: Alcotest Cellref Filename Formula List Option Printf QCheck QCheck_alcotest Result Sheet Si_spreadsheet Si_xmlk String Sys Value Workbook
