test/test_xmlk.ml: Alcotest List Node Option Parse Path Print QCheck QCheck_alcotest Re Si_xmlk String
