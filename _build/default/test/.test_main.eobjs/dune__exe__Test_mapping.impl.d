test/test_mapping.ml: Alcotest Format Fun List Option Printf QCheck QCheck_alcotest Re Result Si_mapping Si_metamodel Si_triple
