test/test_wordproc.ml: Alcotest Filename List Option QCheck QCheck_alcotest Result Si_wordproc Si_xmlk String Sys Wordproc
