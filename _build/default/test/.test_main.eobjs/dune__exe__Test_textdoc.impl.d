test/test_textdoc.ml: Alcotest List Option QCheck QCheck_alcotest Si_textdoc String Textdoc
