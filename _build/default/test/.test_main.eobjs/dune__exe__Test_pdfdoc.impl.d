test/test_pdfdoc.ml: Alcotest Filename List Option Pdfdoc Printf QCheck QCheck_alcotest Result Si_pdfdoc Si_xmlk String Sys
