test/test_metamodel.ml: Alcotest List Model Model_dsl Option Printf QCheck QCheck_alcotest Re Result Si_metamodel Si_slim Si_triple String Validate
