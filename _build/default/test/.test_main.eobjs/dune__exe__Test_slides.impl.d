test/test_slides.ml: Alcotest Filename List Option Result Si_slides Si_xmlk Slides Sys
