test/test_workload.ml: Alcotest Atc Concordance Icu List Re Si_mark Si_metamodel Si_slim Si_slimpad Si_workload
