test/test_htmldoc.ml: Alcotest Htmldoc List Option Printf QCheck QCheck_alcotest Result Selector Si_htmldoc Si_mark Si_xmlk String
