test/test_generic_dmi.ml: Alcotest List Option Re Result Si_metamodel Si_slim Si_triple
