test/test_triple.ml: Alcotest Array Domain Filename List Option Printf QCheck QCheck_alcotest Result Si_metamodel Si_slim Si_triple Si_xmlk Store String Sys Trim Triple
