test/test_slim.ml: Alcotest Bundle_model Dmi Filename List Option Printf QCheck QCheck_alcotest Result Si_metamodel Si_slim Si_triple Sys
