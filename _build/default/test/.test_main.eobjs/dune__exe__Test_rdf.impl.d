test/test_rdf.ml: Alcotest Filename List Option QCheck QCheck_alcotest Re Result Si_mapping Si_metamodel Si_slim Si_triple Si_xmlk String Sys
