test/test_slimpad.ml: Alcotest Filename List Option Out_channel Printf Re Result Si_htmldoc Si_mark Si_metamodel Si_slim Si_slimpad Si_spreadsheet Si_triple Si_xmlk Slimpad Sys
