test/test_query.ml: Alcotest List Printf QCheck QCheck_alcotest Si_query Si_triple
