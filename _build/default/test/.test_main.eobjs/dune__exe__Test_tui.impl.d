test/test_tui.ml: Alcotest List Printf QCheck QCheck_alcotest Re Result Si_mark Si_slim Si_slimpad Si_spreadsheet Si_textdoc Si_tui Si_xmlk String Ui
