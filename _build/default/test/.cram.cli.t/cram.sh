  $ slimpad init ws --scenario icu --seed 7
  $ ls ws | sort | head -4
  $ ls ws | grep -c .
  $ slimpad pads ws
  $ slimpad stats ws | head -4
  $ slimpad show ws | head -5
  $ slimpad resolve ws "GI bleed" -b extract
  $ slimpad resolve ws "Medications" -b extract | head -1
  $ slimpad add-bundle ws "Consults"
  $ slimpad add-scrap ws --parent Consults --type xml \
  >   -f fileName=labs-01.xml -f 'xmlPath=/report/patient' --name "patient"
  $ slimpad annotate ws "patient" "follow up tomorrow"
  $ slimpad show ws | grep -A 1 'Scrap "patient"'
  $ sed -i 's|>5 mcg/kg/min|>7.5 mcg/kg/min|' ws/medications.xls.workbook.xml
  $ slimpad drift ws | cut -c1-40
  $ slimpad drift ws --refresh | tail -1
  $ slimpad drift ws
  $ sed -i 's/GI bleed/GI hemorrhage/' ws/note-01.txt
  $ slimpad drift ws
  $ slimpad drift ws --refresh | tail -1
  $ slimpad history ws --last 3 | cut -c1-46
  $ slimpad query ws 'select ?n where { ?s scrapName ?n } filter prefix(?n, "TODO")' | tail -1
  $ slimpad init ws2 --scenario concordance > /dev/null
  $ slimpad import ws ws2/pad.xml --as "Borrowed concordance"
  $ slimpad pads ws
  $ cp ws2/hamlet-iii-i.txt ws/
  $ slimpad resolve ws --pad "Borrowed concordance" "conscience (line 28)" -b extract
  $ slimpad validate ws | head -1
  $ slimpad template ws --pad Rounds "Consults"
  $ slimpad instantiate ws --pad Rounds "Consults" "Consults (bed 9)"
  $ slimpad show ws --pad Rounds | grep -c "Consults"
  $ slimpad export-html ws --pad Rounds -o ws-rounds.html > /dev/null
  $ head -1 ws-rounds.html
  $ grep -c 'class="scrap"' ws-rounds.html
  $ slimpad model ws | head -3
  $ slimpad resolve ws "no such scrap"
  $ slimpad query ws 'select nonsense'
  $ slimpad init ws
