(* Tests for the presentation substrate (the PowerPoint stand-in). *)

open Si_slides

let check = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let rounds_deck () =
  let p = Slides.create ~title:"Morning Report" () in
  let s1 = Slides.add_slide p ~title:"Case: J. Smith" in
  let _ =
    Slides.add_shape s1 ~id:"summary"
      (Slides.Text_box "62M, sepsis, day 3 of pressors")
  in
  let _ =
    Slides.add_shape s1 ~id:"problems"
      (Slides.Bullets [ "Septic shock"; "Acute renal failure"; "Anemia" ])
  in
  let s2 = Slides.add_slide p ~title:"Plan" in
  let _ = Slides.add_shape s2 ~id:"todo" (Slides.Bullets [ "Wean pressors"; "Renal consult" ]) in
  let _ = Slides.add_shape s2 ~id:"cxr" (Slides.Picture "chest-xray.png") in
  p

let test_structure () =
  let p = rounds_deck () in
  check "title" "Morning Report" (Slides.title p);
  check_int "slides" 2 (Slides.slide_count p);
  let s1 = Option.get (Slides.nth_slide p 1) in
  check "slide title" "Case: J. Smith" (Slides.slide_title s1);
  check_int "shapes" 2 (List.length (Slides.shapes s1));
  check_bool "missing slide" true (Slides.nth_slide p 3 = None)

let test_duplicate_shape_id () =
  let p = Slides.create () in
  let s = Slides.add_slide p ~title:"t" in
  check_bool "first" true (Result.is_ok (Slides.add_shape s ~id:"x" (Slides.Text_box "a")));
  check_bool "dup" true (Result.is_error (Slides.add_shape s ~id:"x" (Slides.Text_box "b")))

let test_text_extraction () =
  let p = rounds_deck () in
  let s1 = Option.get (Slides.nth_slide p 1) in
  check "bullets text" "Septic shock\nAcute renal failure\nAnemia"
    (Slides.shape_text (Option.get (Slides.find_shape s1 "problems")));
  check "slide text"
    "Case: J. Smith\n62M, sepsis, day 3 of pressors\nSeptic shock\nAcute renal failure\nAnemia"
    (Slides.slide_text s1)

let test_resolve () =
  let p = rounds_deck () in
  check "whole shape" "Wean pressors\nRenal consult"
    (Option.get
       (Slides.resolve p { slide = 2; shape_id = "todo"; bullet = None }));
  check "single bullet" "Renal consult"
    (Option.get
       (Slides.resolve p { slide = 2; shape_id = "todo"; bullet = Some 2 }));
  check_bool "bullet out of range" true
    (Slides.resolve p { slide = 2; shape_id = "todo"; bullet = Some 5 } = None);
  check_bool "bullet on textbox" true
    (Slides.resolve p { slide = 1; shape_id = "summary"; bullet = Some 1 }
    = None);
  check_bool "bad slide" true
    (Slides.resolve p { slide = 9; shape_id = "todo"; bullet = None } = None);
  check_bool "bad shape" true
    (Slides.resolve p { slide = 1; shape_id = "nope"; bullet = None } = None)

let test_find_text () =
  let p = rounds_deck () in
  (* Search is case-sensitive: "renal" only hits the problem list. *)
  (match Slides.find_text p "renal" with
  | [ a1 ] ->
      check_int "hit 1 slide" 1 a1.Slides.slide;
      check "hit 1 shape" "problems" a1.Slides.shape_id;
      check_bool "hit 1 bullet" true (a1.Slides.bullet = Some 2)
  | hits -> Alcotest.failf "expected 1 hit, got %d" (List.length hits));
  (match Slides.find_text p "Renal" with
  | [ a2 ] ->
      check_int "hit 2 slide" 2 a2.Slides.slide;
      check_bool "hit 2 bullet" true (a2.Slides.bullet = Some 2)
  | hits -> Alcotest.failf "expected 1 Renal hit, got %d" (List.length hits));
  check_bool "picture matched by name" true
    (List.length (Slides.find_text p "xray") = 1);
  check_bool "no hits" true (Slides.find_text p "dialysis" = [])

let test_xml_roundtrip () =
  let p = rounds_deck () in
  let p2 =
    match Slides.of_xml (Slides.to_xml p) with
    | Ok x -> x
    | Error e -> Alcotest.fail e
  in
  check_bool "equal" true (Slides.equal p p2);
  check "resolve after roundtrip" "Renal consult"
    (Option.get
       (Slides.resolve p2 { slide = 2; shape_id = "todo"; bullet = Some 2 }))

let test_xml_file_roundtrip () =
  let p = rounds_deck () in
  let path = Filename.temp_file "deck" ".xml" in
  Slides.save p path;
  let p2 = match Slides.load path with Ok x -> x | Error e -> Alcotest.fail e in
  Sys.remove path;
  check_bool "file roundtrip" true (Slides.equal p p2)

let test_xml_rejects_garbage () =
  check_bool "bad root" true
    (Result.is_error (Slides.of_xml (Si_xmlk.Node.element "deck" [])));
  let missing_id =
    Si_xmlk.Node.element "presentation"
      [
        Si_xmlk.Node.element "slide"
          [ Si_xmlk.Node.element "textbox" [ Si_xmlk.Node.text "x" ] ];
      ]
  in
  check_bool "shape without id" true (Result.is_error (Slides.of_xml missing_id))

let test_geometry_preserved () =
  let p = Slides.create () in
  let s = Slides.add_slide p ~title:"g" in
  let geom = { Slides.x = 10; y = 20; w = 300; h = 150 } in
  let _ = Slides.add_shape s ~geom ~id:"box" (Slides.Text_box "t") in
  let p2 =
    match Slides.of_xml (Slides.to_xml p) with
    | Ok x -> x
    | Error e -> Alcotest.fail e
  in
  let s2 = Option.get (Slides.nth_slide p2 1) in
  let sh = Option.get (Slides.find_shape s2 "box") in
  check_bool "geometry" true (sh.Slides.geom = geom)

let suite =
  [
    ("structure", `Quick, test_structure);
    ("duplicate shape ids", `Quick, test_duplicate_shape_id);
    ("text extraction", `Quick, test_text_extraction);
    ("address resolution", `Quick, test_resolve);
    ("find_text", `Quick, test_find_text);
    ("xml round-trip", `Quick, test_xml_roundtrip);
    ("xml file round-trip", `Quick, test_xml_file_roundtrip);
    ("xml rejects garbage", `Quick, test_xml_rejects_garbage);
    ("geometry preserved", `Quick, test_geometry_preserved);
  ]
