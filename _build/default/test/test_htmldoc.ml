(* Tests for the tolerant HTML parser (the web-browser stand-in). *)

open Si_htmldoc
module Node = Si_xmlk.Node
module Path = Si_xmlk.Path

let check = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let node_testable = Alcotest.testable Node.pp Node.equal

let test_well_formed () =
  let root = Htmldoc.parse "<html><body><p>hello</p></body></html>" in
  Alcotest.check node_testable "clean"
    (Node.element "html"
       [ Node.element "body" [ Node.element "p" [ Node.text "hello" ] ] ])
    root

let test_case_insensitive_tags () =
  let root = Htmldoc.parse "<HTML><Body><P>x</p></BODY></html>" in
  check "lowered" "html" (Option.get (Node.name root));
  check_bool "body found" true (Node.find_child "body" root <> None)

let test_void_elements () =
  let root = Htmldoc.parse "<p>line one<br>line two<img src=\"x.png\"></p>" in
  check_int "children" 4 (List.length (Node.children root));
  (match Node.find_child "img" root with
  | Some img -> check "src" "x.png" (Node.attr_exn "src" img)
  | None -> Alcotest.fail "img missing")

let test_self_closing () =
  let root = Htmldoc.parse "<div><span/>after</div>" in
  check_int "span empty" 0
    (List.length (Node.children (Option.get (Node.find_child "span" root))))

let test_implied_p_close () =
  let root = Htmldoc.parse "<body><p>one<p>two<p>three</body>" in
  check_int "three paragraphs" 3 (List.length (Node.find_children "p" root))

let test_implied_li_close () =
  let root = Htmldoc.parse "<ul><li>a<li>b<li>c</ul>" in
  let items = Node.find_children "li" root in
  check_int "three items" 3 (List.length items);
  check "first" "a" (Node.text_content (List.hd items))

let test_table_soup () =
  let root =
    Htmldoc.parse
      "<table><tr><td>Na<td>140<tr><td>K<td>4.2</table>"
  in
  let rows = Node.find_children "tr" root in
  check_int "two rows" 2 (List.length rows);
  check_int "two cells" 2 (List.length (Node.find_children "td" (List.hd rows)))

let test_unmatched_close_ignored () =
  let root = Htmldoc.parse "<div>a</span>b</div>" in
  check "text" "ab" (Node.text_content root);
  check "tag" "div" (Option.get (Node.name root))

let test_unclosed_at_eof () =
  let root = Htmldoc.parse "<div><em>never closed" in
  check "nested text survives" "never closed" (Node.text_content root)

let test_attributes_varieties () =
  let root =
    Htmldoc.parse
      "<input type=text value='single' checked disabled=\"disabled\">"
  in
  check "unquoted" "text" (Node.attr_exn "type" root);
  check "single quoted" "single" (Node.attr_exn "value" root);
  check "bare attr" "" (Node.attr_exn "checked" root);
  check "double quoted" "disabled" (Node.attr_exn "disabled" root)

let test_entities_decoded () =
  let root = Htmldoc.parse "<p>a &lt; b &amp;&nbsp;c &#65;&unknown;</p>" in
  check "decoded" "a < b & c A&unknown;" (Node.text_content root)

let test_comments_and_doctype () =
  let root =
    Htmldoc.parse "<!DOCTYPE html><!-- top --><html><body>x</body></html>"
  in
  check "root" "html" (Option.get (Node.name root));
  check "text" "x" (Node.text_content root)

let test_script_raw_text () =
  let root =
    Htmldoc.parse "<html><script>if (a < b) { x = \"<div>\"; }</script></html>"
  in
  let script = Option.get (Node.find_child "script" root) in
  check "raw body" "if (a < b) { x = \"<div>\"; }" (Node.text_content script)

let test_multiple_roots_wrapped () =
  let root = Htmldoc.parse "<p>a</p><p>b</p>" in
  check "wrapped" "html" (Option.get (Node.name root));
  check_int "two" 2 (List.length (Node.find_children "p" root))

let lab_page =
  Htmldoc.parse
    "<html><head><title> Lab Report </title></head><body>\
     <h1 id=\"top\">Results</h1>\
     <table id=\"electrolytes\"><tr><td>Na</td><td>140</td></tr>\
     <tr><td>K</td><td>4.2</td></tr></table>\
     <a name=\"notes\"></a><p>See <a href=\"guide.html\">the guideline</a>.</p>\
     </body></html>"

let test_title () =
  check "title" "Lab Report" (Option.get (Htmldoc.title lab_page));
  check_bool "no title" true (Htmldoc.title (Htmldoc.parse "<p>x</p>") = None)

let test_element_by_id () =
  let table = Option.get (Htmldoc.element_by_id lab_page "electrolytes") in
  check "found table" "table" (Option.get (Node.name table));
  check_bool "missing id" true (Htmldoc.element_by_id lab_page "nope" = None)

let test_anchors () =
  let names = List.map fst (Htmldoc.anchors lab_page) in
  Alcotest.(check (list string)) "anchors" [ "top"; "electrolytes"; "notes" ]
    names

let test_links () =
  (match Htmldoc.links lab_page with
  | [ (href, text) ] ->
      check "href" "guide.html" href;
      check "text" "the guideline" text
  | l -> Alcotest.failf "expected 1 link, got %d" (List.length l))

let test_elements_by_tag () =
  check_int "td count" 4 (List.length (Htmldoc.elements_by_tag lab_page "td"))

let test_to_text () =
  let text = Htmldoc.to_text lab_page in
  check_bool "has results" true
    (List.exists (fun l -> l = "Results") (String.split_on_char '\n' text));
  (* Block structure: table rows become lines. *)
  check_bool "rows on separate lines" true
    (List.exists (fun l -> l = "Na140") (String.split_on_char '\n' text)
    || List.exists (fun l -> l = "Na 140") (String.split_on_char '\n' text));
  check_bool "script excluded" true
    (Htmldoc.to_text (Htmldoc.parse "<p>a</p><script>secret</script>")
    |> String.split_on_char '\n'
    |> List.for_all (fun l -> l <> "secret"))

let test_xml_path_addressing () =
  (* HTML marks reuse slash paths over the parsed DOM. *)
  let path = Path.of_string_exn "/html/body/table/tr[2]/td[2]" in
  match Path.resolve lab_page path with
  | Some (Path.Resolved_element n) -> check "K value" "4.2" (Node.text_content n)
  | _ -> Alcotest.fail "path did not resolve"

let test_is_void () =
  check_bool "br" true (Htmldoc.is_void "br");
  check_bool "div" false (Htmldoc.is_void "div")

let test_outline () =
  let page =
    Htmldoc.parse
      "<body><h1>One</h1><p>x</p><h2>One.A</h2><h3>One.A.i</h3>\
       <h2>One.B</h2><h1>Two</h1><h3>Two (deep)</h3></body>"
  in
  let rec render entries =
    List.map
      (fun (e : Htmldoc.outline_entry) ->
        Printf.sprintf "%d:%s%s" e.Htmldoc.level e.Htmldoc.heading
          (match render e.Htmldoc.children with
          | [] -> ""
          | kids -> "(" ^ String.concat " " kids ^ ")"))
      entries
  in
  Alcotest.(check (list string))
    "outline"
    [ "1:One(2:One.A(3:One.A.i) 2:One.B)"; "1:Two(3:Two (deep))" ]
    (render (Htmldoc.outline page));
  check_bool "no headings" true (Htmldoc.outline (Htmldoc.parse "<p>x</p>") = [])

(* ------------------------------------------------------- CSS selectors *)

let selector_page =
  Htmldoc.parse
    "<html><body>\
     <div class=\"panel warn\" id=\"top\"><p class=\"lead\">alpha</p>\
     <ul><li>one</li><li class=\"hot\">two</li></ul></div>\
     <div class=\"panel\"><p>beta</p>\
     <span data-role=\"badge\">b1</span></div>\
     <p class=\"lead\">gamma</p>\
     <input type=\"submit\" value=\"Go\">\
     </body></html>"

let q s =
  match Selector.query selector_page s with
  | Ok nodes -> List.map Node.text_content nodes
  | Error e -> Alcotest.failf "selector %S failed: %s" s e

let test_selector_basic () =
  Alcotest.(check (list string)) "by tag" [ "alpha"; "beta"; "gamma" ]
    (q "p");
  Alcotest.(check (list string)) "by class" [ "alpha"; "gamma" ] (q ".lead");
  Alcotest.(check (list string)) "by id" [ "alphaonetwo" ] (q "#top");
  Alcotest.(check (list string)) "tag+class" [ "alpha"; "gamma" ] (q "p.lead");
  Alcotest.(check (list string)) "two classes" [ "alphaonetwo" ]
    (q "div.panel.warn");
  Alcotest.(check (list string)) "star" [ "two" ] (q "*.hot")

let test_selector_attributes () =
  Alcotest.(check (list string)) "presence" [ "b1" ] (q "[data-role]");
  Alcotest.(check (list string)) "equality" [ "" ] (q "input[type=submit]");
  Alcotest.(check (list string)) "no match" [] (q "[type=reset]")

let test_selector_combinators () =
  Alcotest.(check (list string)) "descendant" [ "alpha" ] (q "#top p");
  Alcotest.(check (list string)) "deep descendant" [ "one"; "two" ]
    (q "div li");
  Alcotest.(check (list string)) "child" [ "one"; "two" ] (q "ul > li");
  (* p is a grandchild of body via div, but also a direct child (gamma). *)
  Alcotest.(check (list string)) "child excludes grandchildren" [ "gamma" ]
    (q "body > p");
  Alcotest.(check (list string)) "three levels" [ "two" ]
    (q "div.warn ul > li.hot")

let test_selector_alternation () =
  Alcotest.(check (list string)) "comma" [ "alpha"; "two"; "gamma" ]
    (q "p.lead, li.hot");
  (* A node matching two alternatives appears once. *)
  Alcotest.(check (list string)) "dedup" [ "alpha"; "beta"; "gamma" ]
    (q "p, p")

let test_selector_parse_roundtrip () =
  List.iter
    (fun s ->
      let t = Selector.parse_exn s in
      check ("roundtrip " ^ s) s (Selector.to_string (Selector.parse_exn (Selector.to_string t))))
    [ "p"; ".lead"; "#top"; "p.lead"; "div.panel.warn"; "[data-role]";
      "input[type=submit]"; "#top p"; "ul > li"; "p.lead, li.hot" ]

let test_selector_errors () =
  List.iter
    (fun s ->
      match Selector.parse s with
      | Ok _ -> Alcotest.failf "expected selector error on %S" s
      | Error _ -> ())
    [ ""; ">"; "> p"; "#"; "."; "["; "[attr"; "p,," ]

let test_selector_mark () =
  (* End to end through the Mark Manager. *)
  let desk = Si_mark.Desktop.create () in
  Si_mark.Desktop.add_html desk "sel.html"
    "<html><body><ul><li>one</li><li class=\"hot\">two</li></ul></body></html>";
  let mgr = Si_mark.Manager.create () in
  Si_mark.Desktop.install_modules desk mgr;
  let root = Result.get_ok (Si_mark.Desktop.open_html desk "sel.html") in
  let fields =
    match
      Si_mark.Html_mark.capture_selector root ~file_name:"sel.html"
        "ul > li.hot"
    with
    | Ok f -> f
    | Error e -> Alcotest.fail e
  in
  match Si_mark.Manager.create_mark mgr ~mark_type:"html" ~fields () with
  | Error e -> Alcotest.fail e
  | Ok mark ->
      check "selector excerpt" "two"
        (Result.get_ok
           (Si_mark.Manager.resolve_with mgr mark.Si_mark.Mark.mark_id
              Si_mark.Mark.Extract_content));
      check_bool "bad selector capture" true
        (Result.is_error
           (Si_mark.Html_mark.capture_selector root ~file_name:"sel.html"
              ".nothing-here"))

(* Property: selector results are sound — every selected node matches its
   selector given its true ancestor chain, and select is stable across
   repeated runs. *)
let gen_soup =
  QCheck.Gen.(
    let* n = int_range 0 25 in
    let* parts =
      list_size (return n)
        (oneofl
           [ "<div class=\"a\">"; "<div class=\"b\" id=\"x\">"; "<p>";
             "</div>"; "</p>"; "<ul><li>i"; "</ul>"; "text ";
             "<span data-k=\"v\">s</span>" ])
    in
    return (String.concat "" parts))

let prop_selector_sound =
  QCheck.Test.make ~name:"selected nodes really match" ~count:150
    (QCheck.make
       QCheck.Gen.(pair gen_soup (oneofl [ "div"; ".a"; "#x"; "div p";
                                           "ul > li"; "[data-k]"; "div.a, p" ]))
       ~print:(fun (soup, sel) -> sel ^ " @ " ^ soup))
    (fun (soup, sel_text) ->
      let root = Htmldoc.parse soup in
      let sel = Selector.parse_exn sel_text in
      let selected = Selector.select root sel in
      (* Recompute each node's ancestors and re-check the match. *)
      let ancestors_of target =
        let rec find path node =
          if node == target then Some path
          else
            List.fold_left
              (fun acc child ->
                match acc with
                | Some _ -> acc
                | None -> find (node :: path) child)
              None (Node.children node)
        in
        find [] root
      in
      List.for_all
        (fun n ->
          match ancestors_of n with
          | Some ancestors -> Selector.matches_element ~ancestors n sel
          | None -> false)
        selected
      && Selector.select root sel = selected)

let selector_props = List.map QCheck_alcotest.to_alcotest [ prop_selector_sound ]

let test_never_raises () =
  (* Torture inputs: the parser must always return something. *)
  List.iter
    (fun s -> ignore (Htmldoc.parse s))
    [
      ""; "<"; "<>"; "</"; "</x"; "<x"; "<x "; "<x a"; "<x a="; "<x a='";
      "<<<<"; "&"; "&;"; "&#xZZ;"; "<!--"; "<!"; "<script>never closed";
      "</closes-nothing>"; "<p></p></p></p>"; "<a b=c d='e' f=\"g\" h>";
    ]

let suite =
  [
    ("well-formed input", `Quick, test_well_formed);
    ("case-insensitive tags", `Quick, test_case_insensitive_tags);
    ("void elements", `Quick, test_void_elements);
    ("self-closing syntax", `Quick, test_self_closing);
    ("implied <p> close", `Quick, test_implied_p_close);
    ("implied <li> close", `Quick, test_implied_li_close);
    ("table soup", `Quick, test_table_soup);
    ("unmatched close ignored", `Quick, test_unmatched_close_ignored);
    ("unclosed at EOF", `Quick, test_unclosed_at_eof);
    ("attribute varieties", `Quick, test_attributes_varieties);
    ("entities decoded", `Quick, test_entities_decoded);
    ("comments & doctype", `Quick, test_comments_and_doctype);
    ("script raw text", `Quick, test_script_raw_text);
    ("multiple roots wrapped", `Quick, test_multiple_roots_wrapped);
    ("title", `Quick, test_title);
    ("element_by_id", `Quick, test_element_by_id);
    ("anchors", `Quick, test_anchors);
    ("links", `Quick, test_links);
    ("elements_by_tag", `Quick, test_elements_by_tag);
    ("to_text", `Quick, test_to_text);
    ("xml-path addressing works on HTML", `Quick, test_xml_path_addressing);
    ("is_void", `Quick, test_is_void);
    ("outline", `Quick, test_outline);
    ("selectors: basic", `Quick, test_selector_basic);
    ("selectors: attributes", `Quick, test_selector_attributes);
    ("selectors: combinators", `Quick, test_selector_combinators);
    ("selectors: alternation", `Quick, test_selector_alternation);
    ("selectors: parse round-trip", `Quick, test_selector_parse_roundtrip);
    ("selectors: parse errors", `Quick, test_selector_errors);
    ("selectors: as mark addresses", `Quick, test_selector_mark);
    ("parser never raises", `Quick, test_never_raises);
  ]
  @ selector_props
