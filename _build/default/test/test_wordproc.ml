(* Tests for the word-processor substrate (the Word stand-in). *)

open Si_wordproc

let check = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let admission_note () =
  let d = Wordproc.create ~title:"Admission Note" ~author:"Dr. Gorman" () in
  Wordproc.append_heading d 1 "History of Present Illness";
  Wordproc.append_paragraph d
    "62 year old male admitted with sepsis and acute renal failure.";
  Wordproc.append_heading d 2 "Assessment";
  Wordproc.append_block d
    (Wordproc.Paragraph
       [
         Wordproc.plain_run "Patient remains ";
         Wordproc.run ~bold:true "critically ill";
         Wordproc.plain_run " on pressors.";
       ]);
  d

let test_structure () =
  let d = admission_note () in
  check "title" "Admission Note" (Wordproc.title d);
  check "author" "Dr. Gorman" (Wordproc.author d);
  check_int "blocks" 4 (Wordproc.block_count d);
  check "heading text" "History of Present Illness"
    (Option.get (Wordproc.block_text d 1));
  check "styled para joins runs" "Patient remains critically ill on pressors."
    (Option.get (Wordproc.block_text d 4));
  check_bool "missing block" true (Wordproc.block_text d 5 = None);
  check_bool "block 0" true (Wordproc.block_text d 0 = None)

let test_plain_text_and_words () =
  let d = Wordproc.of_paragraphs [ "one two"; "three" ] in
  check "plain" "one two\nthree" (Wordproc.plain_text d);
  check_int "words" 3 (Wordproc.word_count d);
  check_int "empty doc words" 0 (Wordproc.word_count (Wordproc.create ()))

let test_heading_level_validation () =
  let d = Wordproc.create () in
  Alcotest.check_raises "level 0" (Invalid_argument "Wordproc: heading level")
    (fun () -> Wordproc.append_heading d 0 "x");
  Alcotest.check_raises "level 7" (Invalid_argument "Wordproc: heading level")
    (fun () -> Wordproc.append_heading d 7 "x")

let test_spans () =
  let d = admission_note () in
  let span = Option.get (Wordproc.find_first d "sepsis") in
  check_int "para" 2 span.para;
  check "extract" "sepsis" (Option.get (Wordproc.extract d span));
  check_bool "invalid para" false
    (Wordproc.span_valid d { para = 9; offset = 0; length = 1 });
  check_bool "overlong" false
    (Wordproc.span_valid d { para = 1; offset = 0; length = 10_000 })

let test_find_all () =
  let d = Wordproc.of_paragraphs [ "ab ab"; "ab" ] in
  let hits = Wordproc.find_all d "ab" in
  check_int "three hits" 3 (List.length hits);
  let paras = List.map (fun (s : Wordproc.span) -> s.para) hits in
  Alcotest.(check (list int)) "document order" [ 1; 1; 2 ] paras;
  check_bool "none" true (Wordproc.find_all d "zz" = [])

let test_bookmarks () =
  let d = admission_note () in
  let span = Option.get (Wordproc.find_first d "critically ill") in
  (match Wordproc.add_bookmark d ~name:"assessment-key" span with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_bool "lookup" true (Wordproc.bookmark d "assessment-key" = Some span);
  check_bool "duplicate rejected" true
    (Result.is_error (Wordproc.add_bookmark d ~name:"assessment-key" span));
  check_bool "invalid span rejected" true
    (Result.is_error
       (Wordproc.add_bookmark d ~name:"bad"
          { para = 99; offset = 0; length = 1 }));
  check_int "listed" 1 (List.length (Wordproc.bookmarks d));
  check_bool "remove" true (Wordproc.remove_bookmark d "assessment-key");
  check_bool "remove again" false (Wordproc.remove_bookmark d "assessment-key")

let test_to_markdown () =
  let d = admission_note () in
  let md = Wordproc.to_markdown d in
  let lines = String.split_on_char '\n' md in
  check_bool "h1" true (List.mem "# History of Present Illness" lines);
  check_bool "h2" true (List.mem "## Assessment" lines);
  check_bool "bold run" true
    (List.mem "Patient remains **critically ill** on pressors." lines);
  (* Bold-italic nesting. *)
  let d2 = Wordproc.create () in
  Wordproc.append_block d2
    (Wordproc.Paragraph [ Wordproc.run ~bold:true ~italic:true "both" ]);
  check "bold italic" "***both***" (Wordproc.to_markdown d2)

let test_replace_all () =
  let d = Wordproc.of_paragraphs [ "the cat sat"; "cat and cat" ] in
  let count, dropped = Wordproc.replace_all d ~search:"cat" ~replace:"dog" in
  check_int "three replaced" 3 count;
  check_bool "no bookmarks dropped" true (dropped = []);
  check "para 1" "the dog sat" (Option.get (Wordproc.block_text d 1));
  check "para 2" "dog and dog" (Option.get (Wordproc.block_text d 2));
  let count2, _ = Wordproc.replace_all d ~search:"zebra" ~replace:"x" in
  check_int "no hits" 0 count2

let test_replace_adjusts_bookmarks () =
  let d = Wordproc.of_paragraphs [ "alpha beta gamma" ] in
  (* Bookmark on "gamma" (offset 11); "beta" on 6; replace "alpha" with a
     longer word: gamma shifts, beta shifts, a bookmark ON alpha drops. *)
  let bm name needle =
    let span = Option.get (Wordproc.find_first d needle) in
    Result.get_ok (Wordproc.add_bookmark d ~name span)
  in
  bm "on-alpha" "alpha";
  bm "on-beta" "beta";
  bm "on-gamma" "gamma";
  let count, dropped =
    Wordproc.replace_all d ~search:"alpha" ~replace:"alphabet"
  in
  check_int "one" 1 count;
  Alcotest.(check (list string)) "alpha bookmark dropped" [ "on-alpha" ]
    dropped;
  let extract name =
    Option.get (Wordproc.extract d (Option.get (Wordproc.bookmark d name)))
  in
  check "beta still on beta" "beta" (extract "on-beta");
  check "gamma still on gamma" "gamma" (extract "on-gamma")

let test_replace_styled_runs_independent () =
  let d = Wordproc.create () in
  Wordproc.append_block d
    (Wordproc.Paragraph
       [ Wordproc.plain_run "warm "; Wordproc.run ~bold:true "warm" ]);
  let count, _ = Wordproc.replace_all d ~search:"warm" ~replace:"hot" in
  check_int "both runs hit" 2 count;
  check "styles kept" "hot **hot**" (Wordproc.to_markdown d)

let test_xml_roundtrip () =
  let d = admission_note () in
  let span = Option.get (Wordproc.find_first d "sepsis") in
  (match Wordproc.add_bookmark d ~name:"dx" span with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let d2 =
    match Wordproc.of_xml (Wordproc.to_xml d) with
    | Ok x -> x
    | Error e -> Alcotest.fail e
  in
  check_bool "equal" true (Wordproc.equal d d2);
  check_bool "bookmark survived" true (Wordproc.bookmark d2 "dx" = Some span)

let test_xml_file_roundtrip () =
  let d = admission_note () in
  let path = Filename.temp_file "note" ".xml" in
  Wordproc.save d path;
  let d2 =
    match Wordproc.load path with Ok x -> x | Error e -> Alcotest.fail e
  in
  Sys.remove path;
  check_bool "file roundtrip" true (Wordproc.equal d d2)

let test_xml_rejects_garbage () =
  check_bool "bad root" true
    (Result.is_error (Wordproc.of_xml (Si_xmlk.Node.element "nope" [])));
  let bad_heading =
    Si_xmlk.Node.element "document"
      [ Si_xmlk.Node.element "heading" ~attrs:[ ("level", "9") ] [] ]
  in
  check_bool "bad heading" true (Result.is_error (Wordproc.of_xml bad_heading))

(* Properties. *)

let gen_doc =
  QCheck.Gen.(
    let* paras =
      list_size (int_range 0 8)
        (string_size (int_range 0 30) ~gen:(oneofl [ 'a'; 'b'; ' '; 'x' ]))
    in
    return (Wordproc.of_paragraphs paras))

let arbitrary_doc = QCheck.make gen_doc ~print:Wordproc.plain_text

let prop_xml_roundtrip =
  QCheck.Test.make ~name:"wordproc XML round-trip" ~count:200 arbitrary_doc
    (fun d ->
      match Wordproc.of_xml (Wordproc.to_xml d) with
      | Ok d2 -> Wordproc.equal d d2
      | Error _ -> false)

let prop_find_extract =
  QCheck.Test.make ~name:"find_all spans extract the needle" ~count:200
    QCheck.(pair arbitrary_doc (string_of_size (QCheck.Gen.int_range 1 3)))
    (fun (d, needle) ->
      Wordproc.find_all d needle
      |> List.for_all (fun s -> Wordproc.extract d s = Some needle))

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_xml_roundtrip; prop_find_extract ]

let suite =
  [
    ("structure", `Quick, test_structure);
    ("plain text & word count", `Quick, test_plain_text_and_words);
    ("heading level validation", `Quick, test_heading_level_validation);
    ("spans", `Quick, test_spans);
    ("find_all", `Quick, test_find_all);
    ("bookmarks", `Quick, test_bookmarks);
    ("to_markdown", `Quick, test_to_markdown);
    ("replace_all", `Quick, test_replace_all);
    ("replace adjusts bookmarks", `Quick, test_replace_adjusts_bookmarks);
    ("replace per styled run", `Quick, test_replace_styled_runs_independent);
    ("xml round-trip", `Quick, test_xml_roundtrip);
    ("xml file round-trip", `Quick, test_xml_file_roundtrip);
    ("xml rejects garbage", `Quick, test_xml_rejects_garbage);
  ]
  @ props
