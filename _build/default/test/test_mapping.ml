(* Tests for cross-model mappings (paper §4.3 / [4]; experiment E6). *)

module Model = Si_metamodel.Model
module Trim = Si_triple.Trim
module Triple = Si_triple.Triple
module Mapping = Si_mapping.Mapping

let check = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Source: the Bundle-Scrap shape. Target: a topic-map-like model (topics
   with occurrences), as in the paper's flexibility discussion. *)
let worlds () =
  let trim = Trim.create () in
  let bs = Model.define trim ~name:"bundle-scrap-mini" in
  let bundle = Model.construct bs "Bundle" in
  let scrap = Model.construct bs "Scrap" in
  let str = Model.literal_construct bs "String" in
  let _ = Model.connect bs ~name:"bundleName" ~from_:bundle ~to_:str () in
  let _ = Model.connect bs ~name:"bundleContent" ~from_:bundle ~to_:scrap () in
  let _ = Model.connect bs ~name:"scrapName" ~from_:scrap ~to_:str () in
  let _ = Model.connect bs ~name:"scrapNote" ~from_:scrap ~to_:str () in
  let tm = Model.define trim ~name:"topicmap" in
  let topic = Model.construct tm "Topic" in
  let occurrence = Model.construct tm "Occurrence" in
  let tstr = Model.literal_construct tm "String" in
  let _ = Model.connect tm ~name:"topicName" ~from_:topic ~to_:tstr () in
  let _ = Model.connect tm ~name:"hasOccurrence" ~from_:topic ~to_:occurrence () in
  let _ = Model.connect tm ~name:"occValue" ~from_:occurrence ~to_:tstr () in
  (* Instance data in the source model. *)
  let b = Model.new_instance bs bundle () in
  Model.set_property bs b "bundleName" (Triple.literal "John Smith");
  let s1 = Model.new_instance bs scrap () in
  Model.set_property bs s1 "scrapName" (Triple.literal "Dopamine");
  Model.set_property bs s1 "scrapNote" (Triple.literal "check dose");
  let s2 = Model.new_instance bs scrap () in
  Model.set_property bs s2 "scrapName" (Triple.literal "Fentanyl");
  Model.add_property bs b "bundleContent" (Triple.resource s1);
  Model.add_property bs b "bundleContent" (Triple.resource s2);
  (trim, bs, tm, b, s1)

let standard_mapping bs tm =
  Mapping.create ~source:bs ~target:tm
  |> Fun.flip Mapping.add_rule_exn
       {
         Mapping.from_construct = "Bundle";
         to_construct = "Topic";
         property_map =
           [ ("bundleName", "topicName"); ("bundleContent", "hasOccurrence") ];
       }
  |> Fun.flip Mapping.add_rule_exn
       {
         Mapping.from_construct = "Scrap";
         to_construct = "Occurrence";
         property_map = [ ("scrapName", "occValue") ];
       }

let test_rule_validation () =
  let _, bs, tm, _, _ = worlds () in
  let m = Mapping.create ~source:bs ~target:tm in
  check_bool "unknown source construct" true
    (Result.is_error
       (Mapping.add_rule m
          { Mapping.from_construct = "Nope"; to_construct = "Topic";
            property_map = [] }));
  check_bool "unknown target construct" true
    (Result.is_error
       (Mapping.add_rule m
          { Mapping.from_construct = "Bundle"; to_construct = "Nope";
            property_map = [] }));
  check_bool "unknown target predicate" true
    (Result.is_error
       (Mapping.add_rule m
          { Mapping.from_construct = "Bundle"; to_construct = "Topic";
            property_map = [ ("bundleName", "noSuchConnector") ] }));
  check_bool "good rule" true
    (Result.is_ok
       (Mapping.add_rule m
          { Mapping.from_construct = "Bundle"; to_construct = "Topic";
            property_map = [ ("bundleName", "topicName") ] }))

let test_apply () =
  let trim, bs, tm, b, s1 = worlds () in
  let report = Mapping.apply (standard_mapping bs tm) in
  check_int "instances" 3 report.Mapping.instances_mapped;
  (* bundleName + 2 bundleContent + 2 scrapName = 5 mapped;
     scrapNote dropped. *)
  check_int "properties mapped" 5 report.Mapping.properties_mapped;
  check_int "dropped" 1 report.Mapping.properties_dropped;
  check_int "dangling" 0 report.Mapping.dangling_rewrites;
  (* The topic really exists with a rewritten reference. *)
  let topic = List.assoc b report.Mapping.correspondence in
  check "topic name" "John Smith"
    (Option.get (Trim.literal_of trim ~subject:topic ~predicate:"topicName"));
  let occ1 = List.assoc s1 report.Mapping.correspondence in
  check_bool "occurrence reachable from topic" true
    (List.exists
       (fun (tr : Triple.t) -> tr.object_ = Triple.Resource occ1)
       (Trim.select ~subject:topic ~predicate:"hasOccurrence" trim));
  (* Target instances conform to their sources (provenance). *)
  Alcotest.(check (list string)) "conformance" [ b ]
    (Model.conforms_to trim topic);
  (* The materialized topic map is valid in its own model. *)
  check_int "target model valid" 0
    (List.length (Si_metamodel.Validate.check tm).Si_metamodel.Validate.violations)

let test_apply_dangling () =
  let _, bs, tm, b, _ = worlds () in
  (* Reference to an unmapped resource: a Bundle pointing at itself via a
     property whose rule exists, but whose referent has no counterpart
     (remove the Scrap rule). *)
  let m =
    Mapping.create ~source:bs ~target:tm
    |> Fun.flip Mapping.add_rule_exn
         {
           Mapping.from_construct = "Bundle";
           to_construct = "Topic";
           property_map =
             [ ("bundleName", "topicName"); ("bundleContent", "hasOccurrence") ];
         }
  in
  let report = Mapping.apply m in
  check_int "dangling counted" 2 report.Mapping.dangling_rewrites;
  check_bool "bundle still mapped" true
    (List.mem_assoc b report.Mapping.correspondence)

let test_schema_to_model () =
  (* Promote relational Tables (instances) into constructs of a fresh
     model — the paper's schema-to-model direction. *)
  let trim = Trim.create () in
  let rel = Model.define trim ~name:"relational" in
  let table = Model.construct rel "Table" in
  let str = Model.literal_construct rel "String" in
  let _ = Model.connect rel ~name:"tableName" ~from_:table ~to_:str () in
  let employees = Model.new_instance rel table () in
  Model.set_property rel employees "tableName" (Triple.literal "Employees");
  let depts = Model.new_instance rel table () in
  Model.set_property rel depts "tableName" (Triple.literal "Departments");
  let target = Model.define trim ~name:"promoted" in
  let created =
    match
      Mapping.schema_to_model ~source:rel ~instance_construct:"Table"
        ~name_predicate:"tableName" ~target
    with
    | Ok cs -> cs
    | Error e -> Alcotest.fail e
  in
  check_int "two constructs" 2 (List.length created);
  check_bool "Employees is now a construct" true
    (Model.find_construct target "Employees" <> None);
  check_bool "provenance recorded" true
    (Model.conforms_to trim
       (Option.get (Model.find_construct target "Employees"))
       .Model.construct_id
    = [ employees ]);
  check_bool "unknown construct" true
    (Result.is_error
       (Mapping.schema_to_model ~source:rel ~instance_construct:"Nope"
          ~name_predicate:"tableName" ~target))

(* ----------------------------------------------------- schema diff *)

module Schema_diff = Si_mapping.Schema_diff

let v1 trim =
  let m = Model.define trim ~name:"v1" in
  let s = Model.literal_construct m "String" in
  let a = Model.construct m "A" in
  let b = Model.construct m "B" in
  Model.generalize m ~sub:b ~super:a;
  ignore (Model.connect m ~name:"name" ~from_:a ~to_:s ~card:Model.one_card ());
  ignore (Model.connect m ~name:"drop" ~from_:a ~to_:s ());
  m

let test_diff_empty () =
  let trim = Trim.create () in
  let m = v1 trim in
  Alcotest.(check (list string)) "self diff" []
    (List.map Schema_diff.change_to_string (Schema_diff.diff m m));
  check_bool "compatible" true
    (Schema_diff.is_backward_compatible (Schema_diff.diff m m))

let test_diff_changes () =
  let trim = Trim.create () in
  let old_m = v1 trim in
  let new_m =
    let m = Model.define trim ~name:"v2" in
    let s = Model.literal_construct m "String" in
    let a = Model.construct m "A" in
    (* B removed, C added; name's cardinality widened; drop removed; a new
       optional connector and a new required one. *)
    let c = Model.construct m "C" in
    ignore c;
    ignore (Model.connect m ~name:"name" ~from_:a ~to_:s ~card:Model.any_card ());
    ignore
      (Model.connect m ~name:"note" ~from_:a ~to_:s ~card:Model.optional_card ());
    ignore
      (Model.connect m ~name:"must" ~from_:a ~to_:s ~card:Model.one_card ());
    m
  in
  let changes = Schema_diff.diff old_m new_m in
  let strings = List.map Schema_diff.change_to_string changes in
  Alcotest.(check (list string))
    "changes"
    [
      "+ A.must (min 1)"; "+ A.note (min 0)"; "+ construct C";
      "- A.drop"; "- B isa A"; "- construct B";
      "~ A.name cardinality: 1..1 -> 0..*";
    ]
    (List.sort compare strings);
  check_bool "breaking" false (Schema_diff.is_backward_compatible changes)

let test_diff_compatible_additions () =
  let trim = Trim.create () in
  let old_m = v1 trim in
  let new_m =
    let m = Model.define trim ~name:"v1plus" in
    let s = Model.literal_construct m "String" in
    let a = Model.construct m "A" in
    let b = Model.construct m "B" in
    Model.generalize m ~sub:b ~super:a;
    ignore (Model.connect m ~name:"name" ~from_:a ~to_:s ~card:Model.one_card ());
    ignore (Model.connect m ~name:"drop" ~from_:a ~to_:s ());
    (* Purely additive, optional. *)
    let extra = Model.construct m "Extra" in
    Model.generalize m ~sub:extra ~super:a;
    ignore
      (Model.connect m ~name:"tag" ~from_:a ~to_:s ~card:Model.optional_card ());
    m
  in
  let changes = Schema_diff.diff old_m new_m in
  check_bool "nonempty" true (changes <> []);
  check_bool "compatible" true (Schema_diff.is_backward_compatible changes)

let test_diff_rekind_and_range () =
  let trim = Trim.create () in
  let old_m = v1 trim in
  let new_m =
    let m = Model.define trim ~name:"v3" in
    let s = Model.literal_construct m "String" in
    let a = Model.construct m "A" in
    (* B is now a literal construct; name now ranges over B. *)
    let b = Model.literal_construct m "B" in
    ignore (Model.connect m ~name:"name" ~from_:a ~to_:b ~card:Model.one_card ());
    ignore (Model.connect m ~name:"drop" ~from_:a ~to_:s ());
    m
  in
  let strings =
    List.map Schema_diff.change_to_string (Schema_diff.diff old_m new_m)
  in
  check_bool "rekind reported" true
    (List.mem "~ construct B: construct -> literal" strings);
  check_bool "range change reported" true
    (List.mem "~ A.name range: String -> B" strings)

let test_report_rendering () =
  let _, bs, tm, _, _ = worlds () in
  let report = Mapping.apply (standard_mapping bs tm) in
  let text = Format.asprintf "%a" Mapping.pp_report report in
  check_bool "mentions counts" true
    (let re = Re.compile (Re.str "mapped 3 instance(s)") in
     Re.execp re text)

(* Property: whatever valid source instances look like, applying the
   standard mapping yields a target store that validates in its own
   model. *)
let prop_apply_yields_valid_target =
  QCheck.Test.make ~name:"mapping output is always model-valid" ~count:60
    QCheck.(pair (int_range 0 6) (int_range 0 12))
    (fun (bundles, scraps) ->
      let trim = Trim.create () in
      let bs = Model.define trim ~name:"src-prop" in
      let bundle = Model.construct bs "Bundle" in
      let scrap = Model.construct bs "Scrap" in
      let str = Model.literal_construct bs "String" in
      ignore (Model.connect bs ~name:"bundleName" ~from_:bundle ~to_:str ());
      ignore
        (Model.connect bs ~name:"bundleContent" ~from_:bundle ~to_:scrap ());
      ignore (Model.connect bs ~name:"scrapName" ~from_:scrap ~to_:str ());
      let tm = Model.define trim ~name:"tgt-prop" in
      let topic = Model.construct tm "Topic" in
      let occurrence = Model.construct tm "Occurrence" in
      let tstr = Model.literal_construct tm "String" in
      ignore
        (Model.connect tm ~name:"topicName" ~from_:topic ~to_:tstr
           ~card:Model.optional_card ());
      ignore
        (Model.connect tm ~name:"hasOccurrence" ~from_:topic ~to_:occurrence ());
      ignore
        (Model.connect tm ~name:"occValue" ~from_:occurrence ~to_:tstr
           ~card:Model.optional_card ());
      let scrap_ids =
        List.init scraps (fun i ->
            let s = Model.new_instance bs scrap () in
            Model.set_property bs s "scrapName"
              (Triple.literal (Printf.sprintf "s%d" i));
            s)
      in
      List.iteri
        (fun i _ ->
          let b = Model.new_instance bs bundle () in
          Model.set_property bs b "bundleName"
            (Triple.literal (Printf.sprintf "b%d" i));
          List.iteri
            (fun j s ->
              if (i + j) mod 3 = 0 then
                Model.add_property bs b "bundleContent" (Triple.resource s))
            scrap_ids)
        (List.init bundles Fun.id);
      let mapping =
        Mapping.create ~source:bs ~target:tm
        |> Fun.flip Mapping.add_rule_exn
             {
               Mapping.from_construct = "Bundle";
               to_construct = "Topic";
               property_map =
                 [
                   ("bundleName", "topicName");
                   ("bundleContent", "hasOccurrence");
                 ];
             }
        |> Fun.flip Mapping.add_rule_exn
             {
               Mapping.from_construct = "Scrap";
               to_construct = "Occurrence";
               property_map = [ ("scrapName", "occValue") ];
             }
      in
      let report = Mapping.apply mapping in
      report.Mapping.instances_mapped = bundles + scraps
      && (Si_metamodel.Validate.check tm).Si_metamodel.Validate.violations
         = [])

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_apply_yields_valid_target ]

let suite =
  [
    ("rule validation", `Quick, test_rule_validation);
    ("apply model-to-model", `Quick, test_apply);
    ("dangling rewrites counted", `Quick, test_apply_dangling);
    ("schema-to-model promotion", `Quick, test_schema_to_model);
    ("diff: identity", `Quick, test_diff_empty);
    ("diff: changes reported", `Quick, test_diff_changes);
    ("diff: compatible additions", `Quick, test_diff_compatible_additions);
    ("diff: rekind & range", `Quick, test_diff_rekind_and_range);
    ("report rendering", `Quick, test_report_rendering);
  ]
  @ props
