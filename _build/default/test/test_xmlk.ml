(* Tests for the XML kit: parser, printer, paths. *)

open Si_xmlk

let check = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let node_testable = Alcotest.testable Node.pp Node.equal

let parse s =
  match Parse.node s with
  | Ok n -> n
  | Error e -> Alcotest.failf "parse failed: %s" (Parse.error_to_string e)

let parse_fails s =
  match Parse.node s with
  | Ok _ -> Alcotest.failf "expected parse failure on %S" s
  | Error _ -> ()

(* -------------------------------------------------------------- parsing *)

let test_parse_minimal () =
  let n = parse "<a/>" in
  Alcotest.check node_testable "self-closing" (Node.element "a" []) n

let test_parse_nested () =
  let n = parse "<a><b><c>hi</c></b><b/></a>" in
  Alcotest.check node_testable "nested"
    (Node.element "a"
       [
         Node.element "b" [ Node.element "c" [ Node.text "hi" ] ];
         Node.element "b" [];
       ])
    n

let test_parse_attrs () =
  let n = parse {|<x id="1" name='two &amp; three'/>|} in
  check "id" "1" (Node.attr_exn "id" n);
  check "name" "two & three" (Node.attr_exn "name" n)

let test_parse_entities () =
  let n = parse "<t>&lt;&gt;&amp;&apos;&quot;&#65;&#x42;</t>" in
  check "entities" "<>&'\"AB" (Node.text_content n)

let test_parse_numeric_utf8 () =
  let n = parse "<t>&#233;&#x20AC;</t>" in
  check "utf8" "\xC3\xA9\xE2\x82\xAC" (Node.text_content n)

let test_parse_cdata () =
  let n = parse "<t><![CDATA[<raw> & unescaped]]></t>" in
  check "cdata" "<raw> & unescaped" (Node.text_content n)

let test_parse_comment_kept () =
  let n = parse "<t><!-- note --><x/></t>" in
  check_int "children" 2 (List.length (Node.children n))

let test_parse_prolog () =
  let n =
    parse
      "<?xml version=\"1.0\"?>\n<!DOCTYPE r [<!ELEMENT r ANY>]>\n<!-- c -->\n<r/>"
  in
  check "root" "r" (Option.get (Node.name n))

let test_parse_pi () =
  let n = parse "<t><?target some content?></t>" in
  match Node.children n with
  | [ Node.Pi (t, c) ] ->
      check "target" "target" t;
      check "content" "some content" c
  | _ -> Alcotest.fail "expected a PI child"

let test_parse_whitespace_text () =
  let n = parse "<a>\n  <b/>\n</a>" in
  check_int "raw children" 3 (List.length (Node.children n));
  let stripped = Node.strip_whitespace n in
  check_int "stripped" 1 (List.length (Node.children stripped))

let test_parse_errors () =
  parse_fails "";
  parse_fails "<a>";
  parse_fails "<a></b>";
  parse_fails "<a><b></a></b>";
  parse_fails "<a attr></a>";
  parse_fails "<a>&unknown;</a>";
  parse_fails "<a/><b/>";
  parse_fails "just text"

let test_parse_error_position () =
  match Parse.node "<a>\n<b>\n</c>\n</a>" with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error e -> check_int "line" 3 e.line

let test_parse_mismatch_message () =
  match Parse.node "<a></b>" with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error e ->
      let contains sub =
        let re = Re.compile (Re.str sub) in
        Re.execp re e.message
      in
      check_bool "mentions both tags" true
        (contains "<a>" && contains "</b>")

let test_fragment () =
  match Parse.fragment "<a/>text<b/>" with
  | Ok [ Node.Element _; Node.Text "text"; Node.Element _ ] -> ()
  | Ok _ -> Alcotest.fail "wrong fragment shape"
  | Error e -> Alcotest.fail (Parse.error_to_string e)

(* ------------------------------------------------------------- printing *)

let test_print_compact () =
  let n =
    Node.element "a"
      ~attrs:[ ("k", "v\"w") ]
      [ Node.text "x<y"; Node.element "b" [] ]
  in
  check "compact" {|<a k="v&quot;w">x&lt;y<b/></a>|} (Print.to_string n)

let test_print_decl () =
  let s = Print.to_string ~decl:true (Node.element "a" []) in
  check_bool "has decl" true (String.length s > 5 && String.sub s 0 5 = "<?xml")

let test_pretty_roundtrip () =
  let n =
    Node.element "root"
      [
        Node.element "inline" [ Node.text "only text" ];
        Node.element "nested" [ Node.element "x" []; Node.element "y" [] ];
      ]
  in
  let reparsed = Node.strip_whitespace (parse (Print.to_string_pretty n)) in
  Alcotest.check node_testable "pretty round trip" n reparsed

(* ----------------------------------------------------------- accessors *)

let sample =
  Node.element "report"
    ~attrs:[ ("date", "2001-03-01") ]
    [
      Node.element "patient" [ Node.text "John Smith" ];
      Node.element "panel"
        ~attrs:[ ("name", "electrolytes") ]
        [
          Node.element "result" ~attrs:[ ("units", "mmol/L") ]
            [ Node.text "140" ];
          Node.element "result" ~attrs:[ ("units", "mmol/L") ]
            [ Node.text "4.2" ];
        ];
      Node.element "panel" ~attrs:[ ("name", "cbc") ] [];
    ]

let test_accessors () =
  check_int "size" 9 (Node.size sample);
  check_int "depth" 4 (Node.depth sample);
  check_int "descendant elements" 6
    (List.length (Node.descendant_elements sample));
  check "text" "John Smith1404.2" (Node.text_content sample);
  check_int "panels" 2 (List.length (Node.find_children "panel" sample));
  check_bool "missing child" true (Node.find_child "nope" sample = None)

let test_set_attr () =
  let n = Node.set_attr "date" "2001-04-01" sample in
  check "replaced" "2001-04-01" (Node.attr_exn "date" n);
  let n2 = Node.set_attr "new" "v" sample in
  check "added" "v" (Node.attr_exn "new" n2)

let test_equal_attr_order () =
  let a = Node.element "x" ~attrs:[ ("a", "1"); ("b", "2") ] [] in
  let b = Node.element "x" ~attrs:[ ("b", "2"); ("a", "1") ] [] in
  check_bool "attr order irrelevant" true (Node.equal a b)

(* ---------------------------------------------------------------- paths *)

let path_testable = Alcotest.testable Path.pp Path.equal

let test_path_parse_print () =
  let cases =
    [
      "/report";
      "/report/panel[2]";
      "/report/panel[2]/result";
      "/report/panel/@name";
      "/report/patient/text()";
      "/*/panel";
    ]
  in
  List.iter
    (fun s -> check ("roundtrip " ^ s) s (Path.to_string (Path.of_string_exn s)))
    cases

let test_path_parse_normalizes_index_one () =
  Alcotest.check path_testable "x[1] = x"
    (Path.of_string_exn "/a/b")
    (Path.of_string_exn "/a[1]/b[1]")

let test_path_parse_errors () =
  let fails s =
    match Path.of_string s with
    | Ok _ -> Alcotest.failf "expected path error on %S" s
    | Error _ -> ()
  in
  fails "";
  fails "relative/path";
  fails "/";
  fails "/a[0]";
  fails "/a[x]";
  fails "/a[2";
  fails "/@attr";
  fails "/text()"

let resolve_text s =
  match Path.resolve sample (Path.of_string_exn s) with
  | Some (Path.Resolved_element n) -> Node.text_content n
  | Some (Path.Resolved_text t) -> t
  | Some (Path.Resolved_attribute (_, v)) -> v
  | None -> Alcotest.failf "did not resolve %s" s

let test_path_resolve () =
  check "first result" "140" (resolve_text "/report/panel/result");
  check "second result" "4.2" (resolve_text "/report/panel[1]/result[2]");
  check "attribute" "cbc" (resolve_text "/report/panel[2]/@name");
  check "text()" "John Smith" (resolve_text "/report/patient/text()");
  check "wildcard root" "John Smith" (resolve_text "/*/patient")

let test_path_resolve_missing () =
  let missing s = Path.resolve sample (Path.of_string_exn s) = None in
  check_bool "bad root" true (missing "/nope");
  check_bool "bad index" true (missing "/report/panel[3]");
  check_bool "bad attr" true (missing "/report/panel/@nope");
  check_bool "root index >1" true (missing "/report[2]")

let test_path_of () =
  let target =
    List.nth (Node.children (Option.get (Node.find_child "panel" sample))) 1
  in
  match Path.path_of ~root:sample target with
  | None -> Alcotest.fail "path_of failed"
  | Some p ->
      check "computed path" "/report/panel/result[2]" (Path.to_string p);
      (match Path.resolve_element sample p with
      | Some n -> check_bool "resolves back" true (n == target)
      | None -> Alcotest.fail "computed path did not resolve")

let test_path_of_foreign_node () =
  let foreign = Node.element "alien" [] in
  check_bool "foreign not found" true
    (Path.path_of ~root:sample foreign = None);
  check_bool "text node rejected" true
    (Path.path_of ~root:sample (Node.text "x") = None)

let test_all_element_paths () =
  let pairs = Path.all_element_paths sample in
  check_int "count" 6 (List.length pairs);
  List.iter
    (fun (p, n) ->
      match Path.resolve_element sample p with
      | Some found -> check_bool "identity" true (found == n)
      | None -> Alcotest.failf "path %s did not resolve" (Path.to_string p))
    pairs

let test_path_parent () =
  let p = Path.of_string_exn "/a/b/c" in
  check "parent" "/a/b" (Path.to_string (Option.get (Path.parent p)));
  let attr = Path.of_string_exn "/a/b/@k" in
  check "attr parent" "/a/b" (Path.to_string (Option.get (Path.parent attr)));
  check_bool "root has no parent" true
    (Path.parent (Path.of_string_exn "/a") = None)

(* ------------------------------------------------------ property tests *)

let gen_name =
  QCheck.Gen.(
    let* first = oneofl [ "a"; "b"; "item"; "node"; "panel" ] in
    return first)

let gen_text =
  QCheck.Gen.(
    string_size (int_range 0 12)
      ~gen:(oneofl [ 'x'; 'y'; '<'; '&'; '"'; '\''; ' '; '7'; '>' ]))

let gen_tree =
  QCheck.Gen.(
    sized_size (int_range 0 40) @@ fix (fun self n ->
        if n <= 0 then map (fun t -> Node.text ("t" ^ t)) gen_text
        else
          frequency
            [
              (2, map (fun t -> Node.text ("t" ^ t)) gen_text);
              (1, map (fun t -> Node.cdata ("c" ^ t))
                   (string_size (int_range 0 8) ~gen:(char_range 'a' 'z')));
              ( 4,
                let* name = gen_name in
                let* attrs =
                  list_size (int_range 0 3)
                    (pair (oneofl [ "k1"; "k2"; "k3" ]) gen_text)
                in
                let attrs =
                  List.sort_uniq (fun (a, _) (b, _) -> compare a b) attrs
                in
                let* children = list_size (int_range 0 4) (self (n / 2)) in
                return (Node.element name ~attrs children) );
            ]))

let gen_element =
  QCheck.Gen.(
    let* name = gen_name in
    let* children = list_size (int_range 0 5) gen_tree in
    return (Node.element name children))

let arbitrary_element = QCheck.make gen_element ~print:(Print.to_string)

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"print/parse round-trip" ~count:300 arbitrary_element
    (fun tree ->
      match Parse.node (Print.to_string tree) with
      | Ok reparsed -> Node.equal (Node.normalize tree) reparsed
      | Error _ -> false)

(* Note: text nodes in generated trees never start with a space, so pretty
   printing (which re-indents) is compared after whitespace stripping on a
   tree that contains no whitespace-only text nodes. *)
let prop_pretty_parse_roundtrip =
  QCheck.Test.make ~name:"pretty print/parse round-trip" ~count:300
    arbitrary_element (fun tree ->
      match Parse.node (Print.to_string_pretty tree) with
      | Ok reparsed ->
          (* Pretty printing inserts whitespace-only text nodes between
             element children; stripping recovers the original only when the
             original had no adjacent text (which "t"-prefixed texts
             guarantee they are not whitespace-only). *)
          Node.equal
            (Node.normalize (Node.strip_whitespace tree))
            (Node.normalize (Node.strip_whitespace reparsed))
      | Error _ -> false)

let prop_all_paths_resolve =
  QCheck.Test.make ~name:"every enumerated path resolves to its node"
    ~count:200 arbitrary_element (fun tree ->
      Path.all_element_paths tree
      |> List.for_all (fun (p, n) ->
             match Path.resolve_element tree p with
             | Some found -> found == n
             | None -> false))

let prop_path_of_inverse =
  QCheck.Test.make ~name:"path_of is the inverse of resolve" ~count:200
    arbitrary_element (fun tree ->
      Path.all_element_paths tree
      |> List.for_all (fun (p, n) ->
             match Path.path_of ~root:tree n with
             | Some computed -> Path.equal computed p
             | None -> false))

let prop_size_positive =
  QCheck.Test.make ~name:"size >= descendant element count" ~count:200
    arbitrary_element (fun tree ->
      Node.size tree >= List.length (Node.descendant_elements tree))

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_print_parse_roundtrip;
      prop_pretty_parse_roundtrip;
      prop_all_paths_resolve;
      prop_path_of_inverse;
      prop_size_positive;
    ]

let suite =
  [
    ("parse: minimal", `Quick, test_parse_minimal);
    ("parse: nested", `Quick, test_parse_nested);
    ("parse: attributes", `Quick, test_parse_attrs);
    ("parse: entities", `Quick, test_parse_entities);
    ("parse: numeric refs to UTF-8", `Quick, test_parse_numeric_utf8);
    ("parse: CDATA", `Quick, test_parse_cdata);
    ("parse: comments kept", `Quick, test_parse_comment_kept);
    ("parse: prolog and doctype", `Quick, test_parse_prolog);
    ("parse: processing instruction", `Quick, test_parse_pi);
    ("parse: whitespace & strip", `Quick, test_parse_whitespace_text);
    ("parse: malformed inputs rejected", `Quick, test_parse_errors);
    ("parse: error carries position", `Quick, test_parse_error_position);
    ("parse: mismatch names both tags", `Quick, test_parse_mismatch_message);
    ("parse: fragment", `Quick, test_fragment);
    ("print: compact escaping", `Quick, test_print_compact);
    ("print: declaration", `Quick, test_print_decl);
    ("print: pretty round-trip", `Quick, test_pretty_roundtrip);
    ("node: accessors", `Quick, test_accessors);
    ("node: set_attr", `Quick, test_set_attr);
    ("node: equality ignores attr order", `Quick, test_equal_attr_order);
    ("path: parse/print round-trip", `Quick, test_path_parse_print);
    ("path: [1] is implicit", `Quick, test_path_parse_normalizes_index_one);
    ("path: malformed rejected", `Quick, test_path_parse_errors);
    ("path: resolution", `Quick, test_path_resolve);
    ("path: missing targets", `Quick, test_path_resolve_missing);
    ("path: path_of", `Quick, test_path_of);
    ("path: path_of foreign node", `Quick, test_path_of_foreign_node);
    ("path: all_element_paths", `Quick, test_all_element_paths);
    ("path: parent", `Quick, test_path_parent);
  ]
  @ props
