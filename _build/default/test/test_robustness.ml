(* Failure-injection tests: corrupt, truncated and adversarial inputs must
   produce Error values (or parse-tolerant results for HTML), never
   exceptions. The superimposed layer lives on files owned by other
   applications (paper §1: data "outside the box"), so malformed input is
   a normal condition, not an edge case. *)

module Trim = Si_triple.Trim
module Dmi = Si_slim.Dmi
module Desktop = Si_mark.Desktop
module Slimpad = Si_slimpad.Slimpad

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A well-formed store file to mutilate. *)
let store_file () =
  let t = Dmi.create () in
  let pad = Dmi.create_slimpad t ~pad_name:"P" in
  let root = Dmi.root_bundle t pad in
  for i = 1 to 5 do
    ignore
      (Dmi.create_scrap t
         ~name:(Printf.sprintf "s%d" i)
         ~mark_id:(Printf.sprintf "m%d" i)
         ~parent:root ())
  done;
  Si_xmlk.Print.to_string ~decl:true (Dmi.to_xml t)

let no_exception f =
  match f () with _ -> true | exception _ -> false

let test_truncated_store_files () =
  let full = store_file () in
  let n = String.length full in
  (* Cut the document at many points; every prefix must load cleanly or
     fail cleanly. *)
  List.iter
    (fun fraction ->
      let len = n * fraction / 100 in
      let mutilated = String.sub full 0 len in
      check_bool
        (Printf.sprintf "truncated at %d%%" fraction)
        true
        (no_exception (fun () -> ignore (Dmi.of_xml
           (match Si_xmlk.Parse.node mutilated with
            | Ok r -> r
            | Error _ -> Si_xmlk.Node.element "garbage" [])))))
    [ 0; 10; 25; 50; 75; 90; 99 ];
  (* A prefix is (almost) never a valid XML document. *)
  check_bool "90% truncation fails to parse" true
    (Result.is_error (Si_xmlk.Parse.node (String.sub full 0 (n * 9 / 10))))

let test_bitflipped_store_files () =
  let full = store_file () in
  (* Corrupt single characters at various positions; parsing/loading must
     not raise. *)
  List.iter
    (fun pos ->
      let bytes = Bytes.of_string full in
      Bytes.set bytes (pos mod String.length full) '\000';
      let corrupted = Bytes.to_string bytes in
      check_bool
        (Printf.sprintf "corrupted at %d" pos)
        true
        (no_exception (fun () ->
             match Si_xmlk.Parse.node corrupted with
             | Ok root -> ignore (Dmi.of_xml root)
             | Error _ -> ())))
    [ 3; 50; 200; 500; 900 ]

let test_wrong_document_kinds () =
  (* Loading one format's file as another fails with Error, not raise. *)
  let workbook_xml =
    Si_spreadsheet.Workbook.to_xml (Si_spreadsheet.Workbook.create ())
  in
  check_bool "workbook as wordproc" true
    (Result.is_error (Si_wordproc.Wordproc.of_xml workbook_xml));
  check_bool "workbook as slides" true
    (Result.is_error (Si_slides.Slides.of_xml workbook_xml));
  check_bool "workbook as pdf" true
    (Result.is_error (Si_pdfdoc.Pdfdoc.of_xml workbook_xml));
  check_bool "workbook as trim" true
    (Result.is_error (Trim.of_xml workbook_xml));
  check_bool "workbook as rdf" true
    (Result.is_error (Si_triple.Rdf_xml.of_xml workbook_xml))

let test_missing_files () =
  check_bool "textdoc" true
    (Result.is_error (Si_textdoc.Textdoc.from_file "/nonexistent/f.txt"));
  check_bool "workbook" true
    (Result.is_error (Si_spreadsheet.Workbook.load "/nonexistent/f.xml"));
  check_bool "trim" true (Result.is_error (Trim.load "/nonexistent/f.xml"));
  check_bool "slimpad" true
    (Result.is_error
       (Slimpad.load (Desktop.create ()) "/nonexistent/pad.xml"))

let test_store_semantic_garbage () =
  (* Well-formed XML with semantically broken content: loads as triples
     (TRIM is schema-less) and the validator reports the breakage. *)
  let broken =
    Si_xmlk.Parse.node_exn
      "<triples count=\"2\">\
       <t s=\"scrap-1\" p=\"rdf:type\"><r>model:bundle-scrap/Scrap</r></t>\
       <t s=\"scrap-1\" p=\"scrapName\"><r>not-a-literal</r></t>\
       </triples>"
  in
  match Dmi.of_xml broken with
  | Error e -> Alcotest.failf "should load (schema-later): %s" e
  | Ok t ->
      let report = Dmi.validate t in
      check_bool "violations reported" true
        (report.Si_metamodel.Validate.violations <> [])

let test_marks_file_with_duplicate_ids () =
  let dup =
    Si_xmlk.Parse.node_exn
      "<marks count=\"2\">\
       <mark id=\"m1\" type=\"text\"><field name=\"fileName\">a</field></mark>\
       <mark id=\"m1\" type=\"text\"><field name=\"fileName\">b</field></mark>\
       </marks>"
  in
  let mgr = Si_mark.Manager.create () in
  check_bool "duplicate ids rejected" true
    (Result.is_error (Si_mark.Manager.of_xml mgr dup))

let test_adversarial_formulas () =
  (* Deeply nested and pathological formulas parse or fail, never raise,
     and evaluation terminates. *)
  let deep n = String.concat "" (List.init n (fun _ -> "(")) ^ "1"
               ^ String.concat "" (List.init n (fun _ -> ")")) in
  check_bool "deep parens parse" true
    (no_exception (fun () -> ignore (Si_spreadsheet.Formula.parse (deep 500))));
  let wb = Si_spreadsheet.Workbook.create () in
  (* A 300-cell dependency chain evaluates without stack trouble. *)
  Si_spreadsheet.Workbook.set wb "A1" "1";
  for i = 2 to 300 do
    Si_spreadsheet.Workbook.set wb
      (Printf.sprintf "A%d" i)
      (Printf.sprintf "=A%d + 1" (i - 1))
  done;
  Alcotest.(check string) "chain" "300" (Si_spreadsheet.Workbook.display wb "A300");
  (* Self-referential ranges terminate with #CYCLE!. *)
  Si_spreadsheet.Workbook.set wb "B1" "=SUM(A1:B9)";
  check_bool "cyclic range terminates" true
    (no_exception (fun () ->
         ignore (Si_spreadsheet.Workbook.display wb "B1")))

let test_huge_flat_xml () =
  (* 20k siblings: parser and path machinery stay iterative enough. *)
  let doc =
    "<r>" ^ String.concat "" (List.init 20_000 (fun i ->
        Printf.sprintf "<e i=\"%d\"/>" i)) ^ "</r>"
  in
  let root = Si_xmlk.Parse.node_exn doc in
  check_int "all parsed" 20_000 (List.length (Si_xmlk.Node.children root));
  let p = Si_xmlk.Path.of_string_exn "/r/e[19999]" in
  check_bool "path into the deep end" true
    (Si_xmlk.Path.resolve_element root p <> None)

let test_html_pathological_nesting () =
  (* 5k unclosed nested divs must not blow the stack at parse, text
     extraction, or printing. *)
  let soup = String.concat "" (List.init 5_000 (fun _ -> "<div>x")) in
  check_bool "survives" true
    (no_exception (fun () ->
         let doc = Si_htmldoc.Htmldoc.parse soup in
         ignore (Si_htmldoc.Htmldoc.to_text doc)))

let test_query_pathological () =
  let trim = Trim.create () in
  for i = 0 to 99 do
    ignore
      (Trim.add trim
         (Si_triple.Triple.make "hub" "spoke"
            (Si_triple.Triple.resource (Printf.sprintf "n%d" i))))
  done;
  (* A 3-way self-join on a hub fans out to 10^6 candidate rows; it must
     complete (and dedupe) without raising. *)
  let q =
    Si_query.Query.parse_exn
      "select ?a where { <hub> spoke ?a . <hub> spoke ?b . <hub> spoke ?c }"
  in
  check_int "deduped" 100 (List.length (Si_query.Query.run trim q))

let suite =
  [
    ("truncated store files", `Quick, test_truncated_store_files);
    ("bit-flipped store files", `Quick, test_bitflipped_store_files);
    ("wrong document kinds", `Quick, test_wrong_document_kinds);
    ("missing files", `Quick, test_missing_files);
    ("semantic garbage is validated, not crashed on", `Quick,
     test_store_semantic_garbage);
    ("duplicate mark ids rejected", `Quick, test_marks_file_with_duplicate_ids);
    ("adversarial formulas", `Quick, test_adversarial_formulas);
    ("huge flat XML", `Quick, test_huge_flat_xml);
    ("pathological HTML nesting", `Quick, test_html_pathological_nesting);
    ("pathological query join", `Quick, test_query_pathological);
  ]
