(* Tests for the spreadsheet substrate (the Excel stand-in). *)

open Si_spreadsheet

let check = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let value_testable = Alcotest.testable Value.pp Value.equal

(* ------------------------------------------------------------- cellref *)

let test_column_letters () =
  let cases = [ ("A", 1); ("Z", 26); ("AA", 27); ("AZ", 52); ("BA", 53);
                ("ZZ", 702); ("AAA", 703) ] in
  List.iter
    (fun (s, n) ->
      check_int ("col " ^ s) n (Option.get (Cellref.column_of_letters s));
      check ("letters " ^ s) s (Cellref.letters_of_column n))
    cases;
  check_bool "lowercase ok" true (Cellref.column_of_letters "aa" = Some 27);
  check_bool "empty" true (Cellref.column_of_letters "" = None);
  check_bool "digit" true (Cellref.column_of_letters "A1" = None)

let test_cell_parse () =
  let c = Option.get (Cellref.cell_of_string "B12") in
  check_int "col" 2 c.col;
  check_int "row" 12 c.row;
  check_bool "rel" true ((not c.abs_col) && not c.abs_row);
  let a = Option.get (Cellref.cell_of_string "$AB$3") in
  check_int "abs col" 28 a.col;
  check_bool "abs flags" true (a.abs_col && a.abs_row);
  check "print abs" "$AB$3" (Cellref.cell_to_string a);
  List.iter
    (fun s -> check_bool ("reject " ^ s) true (Cellref.cell_of_string s = None))
    [ ""; "12"; "B"; "B0"; "1B"; "B-2"; "B1C"; "$"; "$$A$1" ]

let test_range_parse () =
  let r = Cellref.of_string_exn "B3:A1" in
  check "normalized" "A1:B3" (Cellref.to_string r);
  check_int "width" 2 (Cellref.width r);
  check_int "height" 3 (Cellref.height r);
  check_int "size" 6 (Cellref.size r);
  let single = Cellref.of_string_exn "C4" in
  check_bool "single" true (Cellref.is_single_cell single);
  check "single prints as cell" "C4" (Cellref.to_string single)

let test_range_contains () =
  let r = Cellref.of_string_exn "B2:D5" in
  check_bool "inside" true (Cellref.contains r (Cellref.cell 3 4));
  check_bool "corner" true (Cellref.contains r (Cellref.cell 2 2));
  check_bool "outside col" false (Cellref.contains r (Cellref.cell 5 3));
  check_bool "outside row" false (Cellref.contains r (Cellref.cell 3 6))

let test_range_intersects () =
  let r1 = Cellref.of_string_exn "A1:C3" in
  let r2 = Cellref.of_string_exn "C3:E5" in
  let r3 = Cellref.of_string_exn "D4:E5" in
  check_bool "touching" true (Cellref.intersects r1 r2);
  check_bool "disjoint" false (Cellref.intersects r1 r3)

let test_range_cells_row_major () =
  let r = Cellref.of_string_exn "A1:B2" in
  let names = List.map Cellref.cell_to_string (Cellref.cells r) in
  Alcotest.(check (list string)) "row major" [ "A1"; "B1"; "A2"; "B2" ] names

(* ------------------------------------------------------------- formula *)

let roundtrip src =
  let e = Formula.parse_exn src in
  let printed = Formula.to_string e in
  let e2 = Formula.parse_exn printed in
  check_bool ("reparse " ^ src) true (Formula.equal e e2);
  printed

let test_formula_parse_print () =
  check "sum" "SUM(B2:B9) * (1 + C1)" (roundtrip "SUM(B2:B9)*(1+C1)");
  check "if" "IF(A1 >= 140, \"high\", \"ok\")"
    (roundtrip "IF(A1>=140,\"high\",\"ok\")");
  check "sheet" "Labs!B2 & \" mmol/L\"" (roundtrip "Labs!B2&\" mmol/L\"");
  check "quoted sheet" "'Lab Results'!B2" (roundtrip "'Lab Results'!B2");
  check "power right assoc" "2 ^ 3 ^ 2" (roundtrip "2^3^2");
  check "neg" "-A1 + 3" (roundtrip "-A1+3");
  check "nested call" "MAX(1, MIN(2, 3))" (roundtrip "MAX(1,MIN(2,3))");
  (* Left-associativity makes the input's parentheses redundant; the
     canonical form drops them and the AST still round-trips. *)
  check "cmp chain parens" "1 < 2 = TRUE" (roundtrip "(1<2)=TRUE")

let test_formula_parse_errors () =
  List.iter
    (fun src ->
      match Formula.parse src with
      | Ok _ -> Alcotest.failf "expected parse error on %S" src
      | Error _ -> ())
    [ ""; "1+"; "(1"; "SUM(1,"; "\"unterminated"; "nonsense"; "A1:"; "1 2";
      "Sheet1!SUM(A1)"; "'Open!A1" ]

let test_formula_references () =
  let e = Formula.parse_exn "SUM(A1:B2) + Labs!C3 * 2 - IF(D4, 1, E5)" in
  let refs =
    Formula.references e
    |> List.map (fun (rt : Formula.range_target) ->
           (Option.value rt.sheet ~default:"", Cellref.to_string rt.range))
  in
  Alcotest.(check (list (pair string string)))
    "references"
    [ ("", "A1:B2"); ("Labs", "C3"); ("", "D4"); ("", "E5") ]
    refs

(* A fixed environment for pure-formula evaluation tests. *)
let static_env =
  let table =
    [ ("A1", Value.Number 10.); ("A2", Value.Number 20.);
      ("A3", Value.Text "x"); ("B1", Value.Bool true);
      ("C1", Value.Text "12.5"); ("D1", Value.Empty) ]
  in
  {
    Formula.cell_value =
      (fun _ cell ->
        match List.assoc_opt (Cellref.cell_to_string cell) table with
        | Some v -> v
        | None -> Value.Empty);
    Formula.range_values =
      (fun _ range ->
        List.map
          (fun c ->
            match List.assoc_opt (Cellref.cell_to_string c) table with
            | Some v -> v
            | None -> Value.Empty)
          (Cellref.cells range));
  }

let eval src = Formula.eval static_env (Formula.parse_exn src)

let test_eval_arithmetic () =
  Alcotest.check value_testable "add" (Value.Number 30.) (eval "A1 + A2");
  Alcotest.check value_testable "precedence" (Value.Number 50.)
    (eval "A1 + A2 * 2");
  Alcotest.check value_testable "power" (Value.Number 512.) (eval "2^3^2");
  Alcotest.check value_testable "neg" (Value.Number (-10.)) (eval "-A1");
  Alcotest.check value_testable "div0" (Value.Error Value.Div0) (eval "1/0");
  Alcotest.check value_testable "text coercion" (Value.Number 13.5)
    (eval "C1 + 1");
  Alcotest.check value_testable "bool coercion" (Value.Number 11.)
    (eval "A1 + B1");
  Alcotest.check value_testable "bad value" (Value.Error Value.Bad_value)
    (eval "A3 + 1")

let test_eval_comparison_concat () =
  Alcotest.check value_testable "lt" (Value.Bool true) (eval "A1 < A2");
  Alcotest.check value_testable "eq text ci" (Value.Bool true)
    (eval "\"ABC\" = \"abc\"");
  Alcotest.check value_testable "ne" (Value.Bool false) (eval "A1 <> 10");
  Alcotest.check value_testable "concat" (Value.Text "10x") (eval "A1 & A3");
  Alcotest.check value_testable "concat empty" (Value.Text "10")
    (eval "A1 & D1")

let test_eval_aggregates () =
  Alcotest.check value_testable "sum skips text/empty" (Value.Number 31.)
    (eval "SUM(A1:B3)" (* 10 + 20 + TRUE *));
  Alcotest.check value_testable "count" (Value.Number 3.)
    (eval "COUNT(A1:B3)");
  Alcotest.check value_testable "counta" (Value.Number 4.)
    (eval "COUNTA(A1:B3)");
  Alcotest.check value_testable "average" (Value.Number 15.)
    (eval "AVERAGE(A1:A2)");
  Alcotest.check value_testable "min" (Value.Number 1.) (eval "MIN(A1:B3)");
  Alcotest.check value_testable "max" (Value.Number 20.) (eval "MAX(A1:B3)");
  Alcotest.check value_testable "median" (Value.Number 15.)
    (eval "MEDIAN(A1:A2)");
  Alcotest.check value_testable "sum of scalars" (Value.Number 6.)
    (eval "SUM(1, 2, 3)");
  Alcotest.check value_testable "avg empty range" (Value.Error Value.Div0)
    (eval "AVERAGE(D1:D9)")

let test_eval_logic () =
  Alcotest.check value_testable "if true" (Value.Text "big")
    (eval "IF(A2 > A1, \"big\", \"small\")");
  Alcotest.check value_testable "if numeric cond" (Value.Number 1.)
    (eval "IF(A1, 1, 2)");
  Alcotest.check value_testable "and" (Value.Bool false)
    (eval "AND(TRUE, A1 > 100)");
  Alcotest.check value_testable "or" (Value.Bool true)
    (eval "OR(FALSE, B1)");
  Alcotest.check value_testable "not" (Value.Bool false) (eval "NOT(B1)")

let test_eval_scalar_functions () =
  Alcotest.check value_testable "abs" (Value.Number 10.) (eval "ABS(0-A1)");
  Alcotest.check value_testable "sqrt" (Value.Number 4.) (eval "SQRT(16)");
  Alcotest.check value_testable "sqrt neg" (Value.Error Value.Bad_value)
    (eval "SQRT(0-1)");
  Alcotest.check value_testable "round digits" (Value.Number 3.14)
    (eval "ROUND(3.14159, 2)");
  Alcotest.check value_testable "mod" (Value.Number 1.) (eval "MOD(10, 3)");
  Alcotest.check value_testable "mod zero" (Value.Error Value.Div0)
    (eval "MOD(10, 0)");
  Alcotest.check value_testable "len" (Value.Number 5.)
    (eval "LEN(\"hello\")");
  Alcotest.check value_testable "upper" (Value.Text "AB") (eval "UPPER(\"ab\")");
  Alcotest.check value_testable "concatenate" (Value.Text "10-20")
    (eval "CONCATENATE(A1, \"-\", A2)");
  Alcotest.check value_testable "unknown fn" (Value.Error Value.Bad_name)
    (eval "FROBNICATE(1)")

let test_eval_text_functions () =
  Alcotest.check value_testable "left" (Value.Text "Dop")
    (eval "LEFT(\"Dopamine\", 3)");
  Alcotest.check value_testable "left default" (Value.Text "D")
    (eval "LEFT(\"Dopamine\")");
  Alcotest.check value_testable "left overlong" (Value.Text "ab")
    (eval "LEFT(\"ab\", 99)");
  Alcotest.check value_testable "right" (Value.Text "ine")
    (eval "RIGHT(\"Dopamine\", 3)");
  Alcotest.check value_testable "mid" (Value.Text "pam")
    (eval "MID(\"Dopamine\", 3, 3)");
  Alcotest.check value_testable "mid clamps" (Value.Text "e")
    (eval "MID(\"Dopamine\", 8, 10)");
  Alcotest.check value_testable "mid bad start" (Value.Error Value.Bad_value)
    (eval "MID(\"x\", 0, 1)");
  Alcotest.check value_testable "find" (Value.Number 3.)
    (eval "FIND(\"pa\", \"Dopamine\")");
  Alcotest.check value_testable "find missing" (Value.Error Value.Bad_value)
    (eval "FIND(\"z\", \"Dopamine\")");
  Alcotest.check value_testable "substitute" (Value.Text "dog dog")
    (eval "SUBSTITUTE(\"cat cat\", \"cat\", \"dog\")");
  Alcotest.check value_testable "substitute empty old" (Value.Text "abc")
    (eval "SUBSTITUTE(\"abc\", \"\", \"x\")")

let test_eval_predicates_and_iferror () =
  Alcotest.check value_testable "isblank true" (Value.Bool true)
    (eval "ISBLANK(D1)");
  Alcotest.check value_testable "isblank false" (Value.Bool false)
    (eval "ISBLANK(A1)");
  Alcotest.check value_testable "isnumber" (Value.Bool true)
    (eval "ISNUMBER(A1)");
  Alcotest.check value_testable "isnumber text" (Value.Bool false)
    (eval "ISNUMBER(A3)");
  Alcotest.check value_testable "iferror passthrough" (Value.Number 10.)
    (eval "IFERROR(A1, 0)");
  Alcotest.check value_testable "iferror catches" (Value.Number 0.)
    (eval "IFERROR(1/0, 0)");
  Alcotest.check value_testable "iferror catches name" (Value.Text "n/a")
    (eval "IFERROR(NOSUCH(1), \"n/a\")")

let test_eval_error_propagation () =
  Alcotest.check value_testable "through arith" (Value.Error Value.Div0)
    (eval "(1/0) + 1");
  Alcotest.check value_testable "through cmp" (Value.Error Value.Div0)
    (eval "(1/0) = 1");
  Alcotest.check value_testable "through sum" (Value.Error Value.Div0)
    (eval "SUM(1, 1/0)");
  Alcotest.check value_testable "if propagates cond" (Value.Error Value.Div0)
    (eval "IF(1/0, 1, 2)")

(* ------------------------------------------------------------ workbook *)

let med_workbook () =
  let wb = Workbook.create ~sheet_names:[ "Medications"; "Labs" ] () in
  Workbook.set wb ~sheet_name:"Medications" "A1" "Drug";
  Workbook.set wb ~sheet_name:"Medications" "B1" "Dose mg";
  Workbook.set wb ~sheet_name:"Medications" "A2" "Dopamine";
  Workbook.set wb ~sheet_name:"Medications" "B2" "5";
  Workbook.set wb ~sheet_name:"Medications" "A3" "Fentanyl";
  Workbook.set wb ~sheet_name:"Medications" "B3" "0.05";
  Workbook.set wb ~sheet_name:"Medications" "B5" "=SUM(B2:B3)";
  Workbook.set wb ~sheet_name:"Labs" "A1" "Na";
  Workbook.set wb ~sheet_name:"Labs" "B1" "140";
  Workbook.set wb ~sheet_name:"Labs" "A2" "K";
  Workbook.set wb ~sheet_name:"Labs" "B2" "4.2";
  wb

let test_workbook_basic () =
  let wb = med_workbook () in
  check "literal" "Dopamine" (Workbook.display wb ~sheet_name:"Medications" "A2");
  check "formula" "5.05" (Workbook.display wb ~sheet_name:"Medications" "B5");
  check "blank" "" (Workbook.display wb ~sheet_name:"Labs" "Z99");
  check "input shows formula" "=SUM(B2:B3)"
    (Workbook.input wb ~sheet_name:"Medications" "B5")

let test_workbook_cross_sheet () =
  let wb = med_workbook () in
  Workbook.set wb ~sheet_name:"Medications" "C1" "=Labs!B1 + Labs!B2";
  check "cross sheet" "144.2"
    (Workbook.display wb ~sheet_name:"Medications" "C1");
  Workbook.set wb ~sheet_name:"Medications" "C2" "=SUM(Labs!B1:B2)";
  check "cross sheet range" "144.2"
    (Workbook.display wb ~sheet_name:"Medications" "C2");
  Workbook.set wb ~sheet_name:"Medications" "C3" "=Nowhere!A1";
  check "unknown sheet" "#REF!"
    (Workbook.display wb ~sheet_name:"Medications" "C3")

let test_workbook_chained_formulas () =
  let wb = Workbook.create () in
  Workbook.set wb "A1" "1";
  Workbook.set wb "A2" "=A1 + 1";
  Workbook.set wb "A3" "=A2 + 1";
  Workbook.set wb "A4" "=A3 + 1";
  check "chain" "4" (Workbook.display wb "A4");
  Workbook.set wb "A1" "10";
  check "recomputed" "13" (Workbook.display wb "A4")

let test_workbook_cycles () =
  let wb = Workbook.create () in
  Workbook.set wb "A1" "=B1";
  Workbook.set wb "B1" "=A1";
  check "direct cycle" "#CYCLE!" (Workbook.display wb "A1");
  Workbook.set wb "C1" "=C1 + 1";
  check "self cycle" "#CYCLE!" (Workbook.display wb "C1");
  Workbook.set wb "D1" "=SUM(D1:D2)";
  check "cycle via range" "#CYCLE!" (Workbook.display wb "D1");
  (* A cell depending on a cyclic cell sees the error. *)
  Workbook.set wb "E1" "=A1 + 1";
  check "downstream of cycle" "#CYCLE!" (Workbook.display wb "E1")

let test_workbook_sheets () =
  let wb = Workbook.create () in
  check_bool "add" true (Result.is_ok (Workbook.add_sheet wb "S2"));
  check_bool "dup" true (Result.is_error (Workbook.add_sheet wb "S2"));
  Alcotest.(check (list string)) "names" [ "Sheet1"; "S2" ]
    (Workbook.sheet_names wb);
  check_bool "remove" true (Workbook.remove_sheet wb "S2");
  check_bool "remove missing" false (Workbook.remove_sheet wb "S2")

let test_sheet_input_classification () =
  let wb = Workbook.create () in
  Workbook.set wb "A1" "42";
  Workbook.set wb "A2" "hello";
  Workbook.set wb "A3" "TRUE";
  Workbook.set wb "A4" "=1+";
  Workbook.set wb "A5" "  3.5 ";
  Alcotest.check value_testable "number" (Value.Number 42.)
    (Workbook.value wb "A1");
  Alcotest.check value_testable "text" (Value.Text "hello")
    (Workbook.value wb "A2");
  Alcotest.check value_testable "bool" (Value.Bool true)
    (Workbook.value wb "A3");
  (* A malformed formula is kept as its text, like a spreadsheet would
     show. *)
  Alcotest.check value_testable "bad formula kept" (Value.Text "=1+")
    (Workbook.value wb "A4");
  Alcotest.check value_testable "trimmed number" (Value.Number 3.5)
    (Workbook.value wb "A5");
  Workbook.set wb "A1" "";
  check_bool "cleared" true (Workbook.value wb "A1" = Value.Empty)

let test_used_range () =
  let wb = Workbook.create () in
  let s = Workbook.default_sheet wb in
  check_bool "empty" true (Sheet.used_range s = None);
  Workbook.set wb "B2" "1";
  Workbook.set wb "D7" "2";
  check "used" "B2:D7" (Cellref.to_string (Option.get (Sheet.used_range s)));
  check_int "count" 2 (Sheet.cell_count s)

let test_precedents () =
  let wb = med_workbook () in
  let refs = Workbook.precedents wb ~sheet_name:"Medications" "B5" in
  check_int "one ref" 1 (List.length refs);
  check "ref" "B2:B3"
    (Cellref.to_string (List.hd refs).Formula.range)

(* ------------------------------------------- defined names & row edits *)

let test_defined_names () =
  let wb = med_workbook () in
  let range = Cellref.of_string_exn "A2:B3" in
  check_bool "define" true
    (Result.is_ok
       (Workbook.define_name wb ~name:"DrugTable" ~sheet_name:"Medications"
          range));
  check_bool "lookup" true
    (Workbook.lookup_name wb "DrugTable" = Some ("Medications", range));
  check_bool "duplicate" true
    (Result.is_error
       (Workbook.define_name wb ~name:"DrugTable" ~sheet_name:"Labs" range));
  check_bool "unknown sheet" true
    (Result.is_error
       (Workbook.define_name wb ~name:"Other" ~sheet_name:"Nope" range));
  check_bool "cell-shaped name rejected" true
    (Result.is_error
       (Workbook.define_name wb ~name:"A1" ~sheet_name:"Labs" range));
  check_bool "bad chars rejected" true
    (Result.is_error
       (Workbook.define_name wb ~name:"has space" ~sheet_name:"Labs" range));
  check_int "listed" 1 (List.length (Workbook.defined_names wb));
  check_bool "remove" true (Workbook.remove_name wb "DrugTable");
  check_bool "remove again" false (Workbook.remove_name wb "DrugTable")

let test_names_persist () =
  let wb = med_workbook () in
  let range = Cellref.of_string_exn "B2:B3" in
  (match Workbook.define_name wb ~name:"Doses" ~sheet_name:"Medications" range
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let wb2 =
    match Workbook.of_xml (Workbook.to_xml wb) with
    | Ok w -> w
    | Error e -> Alcotest.fail e
  in
  check_bool "equal incl. names" true (Workbook.equal wb wb2);
  check_bool "name survives" true
    (Workbook.lookup_name wb2 "Doses" = Some ("Medications", range))

let test_insert_rows () =
  let wb = med_workbook () in
  (* Insert 2 rows above the Fentanyl row (row 3) of Medications. *)
  (match Workbook.insert_rows wb ~sheet_name:"Medications" ~at:3 ~count:2 ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check "shifted literal" "Fentanyl"
    (Workbook.display wb ~sheet_name:"Medications" "A5");
  check "vacated" "" (Workbook.display wb ~sheet_name:"Medications" "A3");
  check "unshifted" "Dopamine"
    (Workbook.display wb ~sheet_name:"Medications" "A2");
  (* The SUM(B2:B3) formula moved from B5 to B7 and its range widened to
     follow the shifted bottom row. *)
  check "formula moved and rewritten" "=SUM(B2:B5)"
    (Workbook.input wb ~sheet_name:"Medications" "B7");
  check "still sums" "5.05"
    (Workbook.display wb ~sheet_name:"Medications" "B7")

let test_insert_rows_cross_sheet () =
  let wb = med_workbook () in
  Workbook.set wb ~sheet_name:"Labs" "C1" "=Medications!B2 + 1";
  (match Workbook.insert_rows wb ~sheet_name:"Medications" ~at:1 ~count:3 ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check "cross-sheet ref rewritten" "=Medications!B5 + 1"
    (Workbook.input wb ~sheet_name:"Labs" "C1");
  check "still evaluates" "6" (Workbook.display wb ~sheet_name:"Labs" "C1");
  (* Labs' own cells did not move. *)
  check "labs untouched" "Na" (Workbook.display wb ~sheet_name:"Labs" "A1")

let test_delete_rows () =
  let wb = med_workbook () in
  (* Delete the Dopamine row (row 2). *)
  (match Workbook.delete_rows wb ~sheet_name:"Medications" ~at:2 ~count:1 ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check "shifted up" "Fentanyl"
    (Workbook.display wb ~sheet_name:"Medications" "A2");
  (* SUM(B2:B3) shrank to the surviving row and moved up. *)
  check "range clamped" "=SUM(B2)"
    (Workbook.input wb ~sheet_name:"Medications" "B4");
  check "sum of survivor" "0.05"
    (Workbook.display wb ~sheet_name:"Medications" "B4")

let test_delete_rows_ref_error () =
  let wb = Workbook.create () in
  Workbook.set wb "A1" "10";
  Workbook.set wb "B1" "=A2";
  Workbook.set wb "A2" "5";
  (match Workbook.delete_rows wb ~at:2 ~count:1 () with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check "deleted ref is REFERROR" "=REFERROR()" (Workbook.input wb "B1");
  check "evaluates to #REF!" "#REF!" (Workbook.display wb "B1")

let test_row_edit_adjusts_names () =
  let wb = med_workbook () in
  (match
     Workbook.define_name wb ~name:"Doses" ~sheet_name:"Medications"
       (Cellref.of_string_exn "B2:B3")
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Workbook.insert_rows wb ~sheet_name:"Medications" ~at:2 ~count:1 ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_bool "name shifted" true
    (Workbook.lookup_name wb "Doses"
    = Some ("Medications", Cellref.of_string_exn "B3:B4"));
  (* Deleting the whole named region drops the name. *)
  (match Workbook.delete_rows wb ~sheet_name:"Medications" ~at:3 ~count:2 ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_bool "name dropped" true (Workbook.lookup_name wb "Doses" = None)

let test_insert_cols () =
  let wb = med_workbook () in
  (* Insert a column before B (doses shift to C). *)
  (match Workbook.insert_cols wb ~sheet_name:"Medications" ~at:2 ~count:1 ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check "dose moved" "5" (Workbook.display wb ~sheet_name:"Medications" "C2");
  check "vacated" "" (Workbook.display wb ~sheet_name:"Medications" "B2");
  check "drug stayed" "Dopamine"
    (Workbook.display wb ~sheet_name:"Medications" "A2");
  check "formula rewritten" "=SUM(C2:C3)"
    (Workbook.input wb ~sheet_name:"Medications" "C5");
  check "still sums" "5.05"
    (Workbook.display wb ~sheet_name:"Medications" "C5")

let test_delete_cols () =
  let wb = med_workbook () in
  (* Delete column A (drug names); doses shift to A. *)
  (match Workbook.delete_cols wb ~sheet_name:"Medications" ~at:1 ~count:1 ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check "doses now in A" "5"
    (Workbook.display wb ~sheet_name:"Medications" "A2");
  check "formula follows" "=SUM(A2:A3)"
    (Workbook.input wb ~sheet_name:"Medications" "A5")

let test_vlookup () =
  let wb = med_workbook () in
  Workbook.set wb ~sheet_name:"Labs" "D1"
    "=VLOOKUP(\"Fentanyl\", Medications!A2:B3, 2)";
  check "exact lookup" "0.05" (Workbook.display wb ~sheet_name:"Labs" "D1");
  Workbook.set wb ~sheet_name:"Labs" "D2"
    "=VLOOKUP(\"fentanyl\", Medications!A2:B3, 2)";
  check "case-insensitive" "0.05"
    (Workbook.display wb ~sheet_name:"Labs" "D2");
  Workbook.set wb ~sheet_name:"Labs" "D3"
    "=VLOOKUP(\"Insulin\", Medications!A2:B3, 2)";
  check "not found" "#VALUE!" (Workbook.display wb ~sheet_name:"Labs" "D3");
  Workbook.set wb ~sheet_name:"Labs" "D4"
    "=VLOOKUP(\"Fentanyl\", Medications!A2:B3, 5)";
  check "column out of range" "#REF!"
    (Workbook.display wb ~sheet_name:"Labs" "D4");
  Workbook.set wb ~sheet_name:"Labs" "D5" "=VLOOKUP(\"x\", 3, 1)";
  check "non-range table" "#VALUE!"
    (Workbook.display wb ~sheet_name:"Labs" "D5")

let test_row_edit_validation () =
  let wb = med_workbook () in
  check_bool "bad at" true
    (Result.is_error (Workbook.insert_rows wb ~at:0 ~count:1 ()));
  check_bool "bad count" true
    (Result.is_error (Workbook.delete_rows wb ~at:1 ~count:0 ()));
  check_bool "bad sheet" true
    (Result.is_error
       (Workbook.insert_rows wb ~sheet_name:"Nope" ~at:1 ~count:1 ()))

(* --------------------------------------------------------------- CSV *)

let test_csv_import () =
  let wb = Workbook.create ~sheet_names:[] () in
  let csv = "Drug,Dose\nDopamine,5\n\"Nor, epi\",\"0.1\"\n" in
  (match Workbook.import_csv wb ~sheet_name:"Meds" csv with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check "plain" "Drug" (Workbook.display wb ~sheet_name:"Meds" "A1");
  check "quoted comma" "Nor, epi" (Workbook.display wb ~sheet_name:"Meds" "A3");
  Alcotest.check value_testable "number field" (Value.Number 5.)
    (Workbook.value wb ~sheet_name:"Meds" "B2")

let test_csv_quotes_and_newlines () =
  let wb = Workbook.create ~sheet_names:[] () in
  let csv = "a,\"x\"\"y\"\n\"multi\nline\",b\n" in
  (match Workbook.import_csv wb ~sheet_name:"S" csv with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check "escaped quote" "x\"y" (Workbook.display wb ~sheet_name:"S" "B1");
  check "embedded newline" "multi\nline"
    (Workbook.display wb ~sheet_name:"S" "A2")

let test_csv_export_roundtrip () =
  let wb = Workbook.create ~sheet_names:[] () in
  let csv = "h1,h2\n1,two\n3,\"a,b\"\n" in
  (match Workbook.import_csv wb ~sheet_name:"S" csv with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let out = Option.get (Workbook.export_csv wb ~sheet_name:"S" ~evaluate:true) in
  check "roundtrip" csv out

let test_csv_evaluated_export () =
  let wb = Workbook.create ~sheet_names:[] () in
  (match Workbook.import_csv wb ~sheet_name:"S" "1,=A1+1\n" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check "evaluated" "1,2\n"
    (Option.get (Workbook.export_csv wb ~sheet_name:"S" ~evaluate:true));
  check "raw" "1,=A1 + 1\n"
    (Option.get (Workbook.export_csv wb ~sheet_name:"S" ~evaluate:false))

(* --------------------------------------------------------------- XML *)

let test_xml_roundtrip () =
  let wb = med_workbook () in
  Workbook.set wb ~sheet_name:"Labs" "C1" "=B1 > 135";
  let xml = Workbook.to_xml wb in
  let wb2 =
    match Workbook.of_xml xml with
    | Ok w -> w
    | Error e -> Alcotest.fail e
  in
  check_bool "equal" true (Workbook.equal wb wb2);
  check "formula survives" "5.05"
    (Workbook.display wb2 ~sheet_name:"Medications" "B5");
  check "bool formula survives" "TRUE"
    (Workbook.display wb2 ~sheet_name:"Labs" "C1")

let test_xml_file_roundtrip () =
  let wb = med_workbook () in
  let path = Filename.temp_file "workbook" ".xml" in
  Workbook.save wb path;
  let wb2 =
    match Workbook.load path with Ok w -> w | Error e -> Alcotest.fail e
  in
  Sys.remove path;
  check_bool "file roundtrip" true (Workbook.equal wb wb2)

let test_xml_rejects_garbage () =
  let bad = Si_xmlk.Node.element "not-a-workbook" [] in
  check_bool "bad root" true (Result.is_error (Workbook.of_xml bad))

(* ------------------------------------------------------ property tests *)

let gen_cell =
  QCheck.Gen.(
    let* col = int_range 1 80 in
    let* row = int_range 1 500 in
    return (Cellref.cell col row))

let prop_cell_roundtrip =
  QCheck.Test.make ~name:"cell A1 round-trip" ~count:500
    (QCheck.make gen_cell ~print:Cellref.cell_to_string) (fun c ->
      match Cellref.cell_of_string (Cellref.cell_to_string c) with
      | Some c2 -> Cellref.cell_equal c c2
      | None -> false)

let prop_column_roundtrip =
  QCheck.Test.make ~name:"column letters round-trip" ~count:500
    QCheck.(int_range 1 20000) (fun n ->
      Cellref.column_of_letters (Cellref.letters_of_column n) = Some n)

let prop_range_normalized =
  QCheck.Test.make ~name:"ranges normalize and contain their cells"
    ~count:300
    (QCheck.make
       QCheck.Gen.(pair gen_cell gen_cell)
       ~print:(fun (a, b) ->
         Cellref.cell_to_string a ^ ":" ^ Cellref.cell_to_string b))
    (fun (a, b) ->
      let r = Cellref.range_of_cells a b in
      let cells = Cellref.cells r in
      List.length cells = Cellref.size r
      && List.for_all (Cellref.contains r) cells)

let gen_formula =
  QCheck.Gen.(
    sized_size (int_range 0 8) @@ fix (fun self n ->
        if n <= 0 then
          oneof
            [
              map (fun f -> Formula.Number (float_of_int f)) (int_range 0 999);
              map (fun c -> Formula.Ref { sheet = None; cell = c }) gen_cell;
              map (fun s -> Formula.Text s)
                (string_size (int_range 0 6) ~gen:(oneofl [ 'a'; '"'; ' ' ]));
              return (Formula.Bool true);
            ]
        else
          let sub = self (n / 2) in
          oneof
            [
              (let* op =
                 oneofl
                   Formula.[ Add; Sub; Mul; Div; Pow; Concat; Eq; Lt; Ge ]
               in
               let* l = sub and* r = sub in
               return (Formula.Binary (op, l, r)));
              map (fun e -> Formula.Neg e) sub;
              (let* name = oneofl [ "SUM"; "MIN"; "IF"; "CONCATENATE" ] in
               let* args = list_size (int_range 1 3) sub in
               return (Formula.Call (name, args)));
              (let* c1 = gen_cell and* c2 = gen_cell in
               return
                 (Formula.Range
                    { sheet = Some "Labs";
                      range = Cellref.range_of_cells c1 c2 }));
            ]))

let prop_formula_roundtrip =
  QCheck.Test.make ~name:"formula print/parse round-trip" ~count:300
    (QCheck.make gen_formula ~print:Formula.to_string) (fun e ->
      match Formula.parse (Formula.to_string e) with
      | Ok e2 -> Formula.equal e e2
      | Error _ -> false)

let prop_eval_total =
  QCheck.Test.make ~name:"evaluation is total (never raises)" ~count:300
    (QCheck.make gen_formula ~print:Formula.to_string) (fun e ->
      let _ = Formula.eval static_env e in
      true)

(* A random small workbook with literals and formulas over them. *)
let gen_workbook =
  QCheck.Gen.(
    let* values =
      list_size (int_range 1 15)
        (triple (int_range 1 6) (int_range 1 12) (int_range 0 99))
    in
    let* formulas = list_size (int_range 0 5) (int_range 1 12) in
    let wb = Workbook.create () in
    List.iter
      (fun (col, row, v) ->
        Workbook.set wb
          (Cellref.cell_to_string (Cellref.cell col row))
          (string_of_int v))
      values;
    List.iteri
      (fun i row ->
        Workbook.set wb
          (Cellref.cell_to_string (Cellref.cell (7 + i) row))
          (Printf.sprintf "=SUM(A1:F%d) + B%d" row row))
      formulas;
    return wb)

let snapshot wb =
  (* Evaluated view of a fixed region, independent of structure. *)
  List.init 14 (fun r ->
      List.init 12 (fun c ->
          Workbook.display wb
            (Cellref.cell_to_string (Cellref.cell (c + 1) (r + 1))))
      |> String.concat "\t")
  |> String.concat "\n"

let prop_insert_delete_inverse =
  QCheck.Test.make ~name:"insert_rows then delete_rows is the identity"
    ~count:100
    (QCheck.make
       QCheck.Gen.(triple gen_workbook (int_range 1 10) (int_range 1 3))
       ~print:(fun (wb, at, count) ->
         Printf.sprintf "at=%d count=%d\n%s" at count (snapshot wb)))
    (fun (wb, at, count) ->
      let before = snapshot wb in
      (match Workbook.insert_rows wb ~at ~count () with
      | Ok () -> ()
      | Error e -> failwith e);
      (match Workbook.delete_rows wb ~at ~count () with
      | Ok () -> ()
      | Error e -> failwith e);
      snapshot wb = before)

let prop_insert_preserves_formula_values =
  QCheck.Test.make
    ~name:"insert_rows preserves every formula's value" ~count:100
    (QCheck.make
       QCheck.Gen.(triple gen_workbook (int_range 1 10) (int_range 1 3))
       ~print:(fun (wb, at, count) ->
         Printf.sprintf "at=%d count=%d\n%s" at count (snapshot wb)))
    (fun (wb, at, count) ->
      (* Record formula cells and their values, keyed by content so the
         shifted position can be found afterwards. *)
      let sheet = Workbook.default_sheet wb in
      let formulas_before =
        Sheet.fold
          (fun cell content acc ->
            match content with
            | Sheet.Formula _ ->
                (cell, Workbook.display wb (Cellref.cell_to_string cell))
                :: acc
            | Sheet.Literal _ -> acc)
          sheet []
      in
      (match Workbook.insert_rows wb ~at ~count () with
      | Ok () -> ()
      | Error e -> failwith e);
      List.for_all
        (fun ((cell : Cellref.cell), value) ->
          let moved =
            if cell.Cellref.row >= at then
              { cell with Cellref.row = cell.Cellref.row + count }
            else cell
          in
          Workbook.display wb (Cellref.cell_to_string moved) = value)
        formulas_before)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_cell_roundtrip;
      prop_column_roundtrip;
      prop_range_normalized;
      prop_formula_roundtrip;
      prop_eval_total;
      prop_insert_delete_inverse;
      prop_insert_preserves_formula_values;
    ]

let suite =
  [
    ("cellref: column letters", `Quick, test_column_letters);
    ("cellref: cell parse/print", `Quick, test_cell_parse);
    ("cellref: range parse/normalize", `Quick, test_range_parse);
    ("cellref: contains", `Quick, test_range_contains);
    ("cellref: intersects", `Quick, test_range_intersects);
    ("cellref: cells row-major", `Quick, test_range_cells_row_major);
    ("formula: parse/print", `Quick, test_formula_parse_print);
    ("formula: parse errors", `Quick, test_formula_parse_errors);
    ("formula: references", `Quick, test_formula_references);
    ("eval: arithmetic", `Quick, test_eval_arithmetic);
    ("eval: comparison & concat", `Quick, test_eval_comparison_concat);
    ("eval: aggregates", `Quick, test_eval_aggregates);
    ("eval: logic", `Quick, test_eval_logic);
    ("eval: scalar functions", `Quick, test_eval_scalar_functions);
    ("eval: text functions", `Quick, test_eval_text_functions);
    ("eval: predicates & IFERROR", `Quick, test_eval_predicates_and_iferror);
    ("eval: error propagation", `Quick, test_eval_error_propagation);
    ("workbook: basics", `Quick, test_workbook_basic);
    ("workbook: cross-sheet", `Quick, test_workbook_cross_sheet);
    ("workbook: chained formulas", `Quick, test_workbook_chained_formulas);
    ("workbook: cycles", `Quick, test_workbook_cycles);
    ("workbook: sheet management", `Quick, test_workbook_sheets);
    ("workbook: input classification", `Quick, test_sheet_input_classification);
    ("workbook: used range", `Quick, test_used_range);
    ("workbook: precedents", `Quick, test_precedents);
    ("names: define/lookup/remove", `Quick, test_defined_names);
    ("names: persist", `Quick, test_names_persist);
    ("rows: insert shifts cells & formulas", `Quick, test_insert_rows);
    ("rows: insert rewrites cross-sheet refs", `Quick,
     test_insert_rows_cross_sheet);
    ("rows: delete clamps ranges", `Quick, test_delete_rows);
    ("rows: delete makes #REF!", `Quick, test_delete_rows_ref_error);
    ("rows: names follow edits", `Quick, test_row_edit_adjusts_names);
    ("cols: insert shifts cells & formulas", `Quick, test_insert_cols);
    ("cols: delete", `Quick, test_delete_cols);
    ("vlookup", `Quick, test_vlookup);
    ("rows: argument validation", `Quick, test_row_edit_validation);
    ("csv: import", `Quick, test_csv_import);
    ("csv: quotes & newlines", `Quick, test_csv_quotes_and_newlines);
    ("csv: export round-trip", `Quick, test_csv_export_roundtrip);
    ("csv: evaluated vs raw export", `Quick, test_csv_evaluated_export);
    ("xml: round-trip", `Quick, test_xml_roundtrip);
    ("xml: file round-trip", `Quick, test_xml_file_roundtrip);
    ("xml: rejects garbage", `Quick, test_xml_rejects_garbage);
  ]
  @ props
