(* Tests for the plain-text base-document substrate. *)

open Si_textdoc

let check = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let doc =
  Textdoc.of_lines
    [
      "Patient: John Smith";
      "Problems: sepsis, ARF";
      "Na 140  K 4.2";
      "Plan: wean pressors";
    ]

let test_lines () =
  check_int "line count" 4 (Textdoc.line_count doc);
  check "line 1" "Patient: John Smith" (Textdoc.line_exn doc 1);
  check "line 4" "Plan: wean pressors" (Textdoc.line_exn doc 4);
  check_bool "line 0" true (Textdoc.line doc 0 = None);
  check_bool "line 5" true (Textdoc.line doc 5 = None)

let test_empty_doc () =
  let empty = Textdoc.of_string "" in
  check_int "one empty line" 1 (Textdoc.line_count empty);
  check "that line" "" (Textdoc.line_exn empty 1);
  check_int "length" 0 (Textdoc.length empty)

let test_trailing_newline () =
  let d = Textdoc.of_string "a\nb\n" in
  check_int "count" 3 (Textdoc.line_count d);
  check "last is empty" "" (Textdoc.line_exn d 3)

let test_extract () =
  let span = { Textdoc.offset = 9; length = 10 } in
  check "extract" "John Smith" (Textdoc.extract_exn doc span);
  check_bool "oob" true
    (Textdoc.extract doc { offset = 0; length = 10_000 } = None);
  check_bool "negative" true
    (Textdoc.extract doc { offset = -1; length = 3 } = None)

let test_line_span () =
  let span = Option.get (Textdoc.line_span doc 3) in
  check "line 3 via span" "Na 140  K 4.2" (Textdoc.extract_exn doc span)

let test_positions () =
  let pos = Option.get (Textdoc.position_of_offset doc 9) in
  check_int "line" 1 pos.line;
  check_int "col" 10 pos.column;
  let off = Option.get (Textdoc.offset_of_position doc pos) in
  check_int "inverse" 9 off;
  (* First char of line 2. *)
  let off2 =
    Option.get (Textdoc.offset_of_position doc { line = 2; column = 1 })
  in
  check "line 2 starts" "P" (String.make 1 (Textdoc.to_string doc).[off2]);
  check_bool "column past end rejected" true
    (Textdoc.offset_of_position doc { line = 1; column = 100 } = None)

let test_span_of_positions () =
  let span =
    Option.get
      (Textdoc.span_of_positions doc
         ~start:{ line = 3; column = 1 }
         ~stop:{ line = 3; column = 7 })
  in
  check "Na 140" "Na 140" (Textdoc.extract_exn doc span)

let test_find () =
  let hits = Textdoc.find_all doc "s" in
  check_bool "several" true (List.length hits > 3);
  let first = Option.get (Textdoc.find_first doc "sepsis") in
  check "found" "sepsis" (Textdoc.extract_exn doc first);
  check_bool "absent" true (Textdoc.find_first doc "dialysis" = None);
  check_bool "empty needle" true (Textdoc.find_all doc "" = [])

let test_find_overlapping () =
  let d = Textdoc.of_string "aaaa" in
  check_int "overlaps" 3 (List.length (Textdoc.find_all d "aa"))

let test_context () =
  let span = Option.get (Textdoc.find_first doc "K 4.2") in
  let ctx = Textdoc.context doc span ~lines_around:1 in
  check "context"
    "Problems: sepsis, ARF\nNa 140  K 4.2\nPlan: wean pressors" ctx;
  let ctx0 = Textdoc.context doc span ~lines_around:0 in
  check "tight context" "Na 140  K 4.2" ctx0

let test_reanchor () =
  (* The document gains a line; the old span offset is stale. *)
  let edited =
    Textdoc.of_lines
      [
        "ADMISSION NOTE";
        "Patient: John Smith";
        "Problems: sepsis, ARF";
        "Na 140  K 4.2";
        "Plan: wean pressors";
      ]
  in
  let stale = Option.get (Textdoc.find_first doc "K 4.2") in
  let fresh =
    Option.get
      (Textdoc.reanchor edited ~excerpt:"K 4.2" ~stale_offset:stale.offset)
  in
  check "reanchored" "K 4.2" (Textdoc.extract_exn edited fresh);
  check_bool "moved" true (fresh.offset <> stale.offset);
  check_bool "gone" true
    (Textdoc.reanchor edited ~excerpt:"vanished" ~stale_offset:0 = None)

let test_reanchor_nearest () =
  let d = Textdoc.of_string "x marker y marker z" in
  let second =
    Option.get (Textdoc.reanchor d ~excerpt:"marker" ~stale_offset:12)
  in
  check_int "nearest occurrence" 11 second.offset;
  let first =
    Option.get (Textdoc.reanchor d ~excerpt:"marker" ~stale_offset:0)
  in
  check_int "first occurrence" 2 first.offset

(* Property tests. *)

let gen_doc =
  QCheck.Gen.(
    let* n = int_range 0 12 in
    let* ls =
      list_size (return n)
        (string_size (int_range 0 20) ~gen:(oneofl [ 'a'; 'b'; ' '; 'x' ]))
    in
    return (Textdoc.of_lines ls))

let arbitrary_doc =
  QCheck.make gen_doc ~print:(fun d -> String.escaped (Textdoc.to_string d))

let prop_offsets_roundtrip =
  QCheck.Test.make ~name:"offset -> position -> offset" ~count:200
    QCheck.(pair arbitrary_doc small_nat)
    (fun (d, k) ->
      let len = Textdoc.length d in
      let off = if len = 0 then 0 else k mod (len + 1) in
      match Textdoc.position_of_offset d off with
      | None -> false
      | Some pos -> Textdoc.offset_of_position d pos = Some off)

let prop_lines_rejoin =
  QCheck.Test.make ~name:"lines rejoin to contents" ~count:200 arbitrary_doc
    (fun d ->
      String.concat "\n" (Textdoc.lines d) = Textdoc.to_string d)

let prop_line_spans_tile =
  QCheck.Test.make ~name:"line spans extract the lines" ~count:200
    arbitrary_doc (fun d ->
      List.init (Textdoc.line_count d) (fun i -> i + 1)
      |> List.for_all (fun n ->
             match Textdoc.line_span d n with
             | None -> false
             | Some s -> Textdoc.extract d s = Textdoc.line d n))

let prop_find_all_correct =
  QCheck.Test.make ~name:"find_all returns exactly the matches" ~count:200
    QCheck.(pair arbitrary_doc (string_of_size (QCheck.Gen.int_range 1 3)))
    (fun (d, needle) ->
      let hits = Textdoc.find_all d needle in
      List.for_all (fun s -> Textdoc.extract d s = Some needle) hits)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_offsets_roundtrip;
      prop_lines_rejoin;
      prop_line_spans_tile;
      prop_find_all_correct;
    ]

let suite =
  [
    ("lines & bounds", `Quick, test_lines);
    ("empty document", `Quick, test_empty_doc);
    ("trailing newline", `Quick, test_trailing_newline);
    ("extract spans", `Quick, test_extract);
    ("line_span", `Quick, test_line_span);
    ("positions", `Quick, test_positions);
    ("span_of_positions", `Quick, test_span_of_positions);
    ("find", `Quick, test_find);
    ("find overlapping", `Quick, test_find_overlapping);
    ("context lines", `Quick, test_context);
    ("reanchor after edit", `Quick, test_reanchor);
    ("reanchor picks nearest", `Quick, test_reanchor_nearest);
  ]
  @ props
