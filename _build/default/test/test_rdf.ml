(* Tests for the RDF/XML interoperability serialization (paper §4.3) and
   for the standard superimposed models (topic map, XLink). *)

module Trim = Si_triple.Trim
module Triple = Si_triple.Triple
module Rdf = Si_triple.Rdf_xml
module Model = Si_metamodel.Model

let check = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let sample () =
  let trim = Trim.create () in
  Trim.add_all trim
    [
      Triple.make "b1" "bundleName" (Triple.literal "John Smith");
      Triple.make "b1" "bundleContent" (Triple.resource "s1");
      Triple.make "b1" "bundleContent" (Triple.resource "s2");
      Triple.make "s1" "scrapName" (Triple.literal "Na 140");
      Triple.make "s2" "scrapName" (Triple.literal "K 4.2 <high?>");
    ];
  trim

(* ----------------------------------------------------------- RDF/XML *)

let test_shape () =
  let node = ok (Rdf.to_xml (sample ())) in
  check "root" "rdf:RDF" (Option.get (Si_xmlk.Node.name node));
  check "namespace" Rdf.rdf_namespace
    (Si_xmlk.Node.attr_exn "xmlns:rdf" node);
  let descriptions = Si_xmlk.Node.find_children "rdf:Description" node in
  check_int "one description per subject" 3 (List.length descriptions);
  (* The b1 description groups all three properties. *)
  let b1 =
    List.find
      (fun d -> Si_xmlk.Node.attr "rdf:about" d = Some "b1")
      descriptions
  in
  check_int "b1 properties" 3
    (List.length (Si_xmlk.Node.child_elements b1));
  (* Resources as rdf:resource attributes, literals as text. *)
  let content = Si_xmlk.Node.find_children "bundleContent" b1 in
  check_bool "resource attr" true
    (List.for_all
       (fun c -> Si_xmlk.Node.attr "rdf:resource" c <> None)
       content)

let test_roundtrip () =
  let trim = sample () in
  let trim2 = ok (Rdf.of_xml (ok (Rdf.to_xml trim))) in
  check_bool "equal contents" true (Trim.equal_contents trim trim2)

let test_string_roundtrip_with_escaping () =
  let trim = sample () in
  let text = ok (Rdf.to_string trim) in
  check_bool "escaped" true
    (let re = Re.compile (Re.str "&lt;high?&gt;") in
     Re.execp re text);
  let trim2 = ok (Rdf.of_string text) in
  check_bool "round trip through text" true (Trim.equal_contents trim trim2)

let test_bad_predicate_rejected () =
  let trim = Trim.create () in
  ignore
    (Trim.add trim (Triple.make "a" "has space" (Triple.literal "x")));
  check_bool "rejected" true (Result.is_error (Rdf.to_xml trim));
  let trim2 = Trim.create () in
  ignore (Trim.add trim2 (Triple.make "a" "1starts-with-digit" (Triple.literal "x")));
  check_bool "digit start rejected" true (Result.is_error (Rdf.to_xml trim2))

let test_model_exports_as_rdf () =
  (* The whole metamodel vocabulary ("represented using RDF Schema")
     serializes: model + schema + instance in one RDF document. *)
  let t = Si_slim.Dmi.create () in
  let pad = Si_slim.Dmi.create_slimpad t ~pad_name:"P" in
  let root = Si_slim.Dmi.root_bundle t pad in
  let _ = Si_slim.Dmi.create_scrap t ~name:"s" ~mark_id:"m" ~parent:root () in
  let trim = Si_slim.Dmi.trim t in
  let trim2 = ok (Rdf.of_xml (ok (Rdf.to_xml trim))) in
  check_bool "model+instances round-trip" true
    (Trim.equal_contents trim trim2);
  (* The reloaded store still works as a SLIM store. *)
  let t2 = ok (Si_slim.Dmi.of_xml (Trim.to_xml trim2)) in
  check_bool "pad survives" true (Si_slim.Dmi.find_pad t2 "P" <> None)

let test_file_roundtrip () =
  let trim = sample () in
  let path = Filename.temp_file "rdf" ".xml" in
  ok (Rdf.save trim path);
  let trim2 = ok (Rdf.load path) in
  Sys.remove path;
  check_bool "file round-trip" true (Trim.equal_contents trim trim2)

let test_rejects_garbage () =
  check_bool "wrong root" true
    (Result.is_error (Rdf.of_xml (Si_xmlk.Node.element "triples" [])));
  check_bool "description without about" true
    (Result.is_error
       (Rdf.of_xml
          (Si_xmlk.Node.element "rdf:RDF"
             [ Si_xmlk.Node.element "rdf:Description" [] ])))

(* Property: any TRIM store with XML-safe predicates survives RDF/XML. *)
let gen_store =
  QCheck.Gen.(
    let* n = int_range 0 40 in
    let* triples =
      list_size (return n)
        (let* s = int_range 0 10 in
         let* p = oneofl [ "name"; "content"; "rdf:type"; "mm:inModel" ] in
         let* o =
           oneof
             [
               map (fun i -> Triple.resource ("r" ^ string_of_int i))
                 (int_range 0 10);
               map (fun s -> Triple.literal s)
                 (string_size (int_range 0 10)
                    ~gen:(oneofl [ 'a'; '<'; '&'; '"'; ' ' ]));
             ]
         in
         return (Triple.make ("r" ^ string_of_int s) p o))
    in
    let trim = Trim.create () in
    Trim.add_all trim triples;
    return trim)

let prop_rdf_roundtrip =
  QCheck.Test.make ~name:"RDF/XML round-trip" ~count:200
    (QCheck.make gen_store ~print:(fun t ->
         String.concat ";" (List.map Triple.to_string (Trim.to_list t))))
    (fun trim ->
      match Rdf.to_xml trim with
      | Error _ -> false
      | Ok node -> (
          match Rdf.of_xml node with
          | Ok trim2 -> Trim.equal_contents trim trim2
          | Error _ -> false))

(* ------------------------------------------------- standard models *)

let test_topic_map_model () =
  let trim = Trim.create () in
  let tmap = Si_slim.Std_models.install_topic_map trim in
  let t1 = Model.new_instance tmap.Si_slim.Std_models.tm
      tmap.Si_slim.Std_models.topic () in
  Model.set_property tmap.Si_slim.Std_models.tm t1 "topicName"
    (Triple.literal "Sepsis");
  let o = Model.new_instance tmap.Si_slim.Std_models.tm
      tmap.Si_slim.Std_models.occurrence () in
  Model.set_property tmap.Si_slim.Std_models.tm o "occValue"
    (Triple.literal "guideline.pdf p.1");
  Model.add_property tmap.Si_slim.Std_models.tm t1 "hasOccurrence"
    (Triple.resource o);
  check_int "valid topic map" 0
    (List.length
       (Si_metamodel.Validate.check tmap.Si_slim.Std_models.tm)
       .Si_metamodel.Validate.violations)

let test_xlink_model () =
  let trim = Trim.create () in
  let x = Si_slim.Std_models.install_xlink trim in
  let link = Model.new_instance x.Si_slim.Std_models.xl
      x.Si_slim.Std_models.extended_link () in
  let l1 = Model.new_instance x.Si_slim.Std_models.xl
      x.Si_slim.Std_models.locator () in
  let l2 = Model.new_instance x.Si_slim.Std_models.xl
      x.Si_slim.Std_models.locator () in
  let m = x.Si_slim.Std_models.xl in
  Model.set_property m l1 "locatorHref" (Triple.literal "a.html#top");
  Model.set_property m l2 "locatorHref" (Triple.literal "b.xml#/r/p");
  Model.add_property m link "hasLocator" (Triple.resource l1);
  Model.add_property m link "hasLocator" (Triple.resource l2);
  let arc = Model.new_instance m x.Si_slim.Std_models.arc () in
  Model.set_property m arc "arcFrom" (Triple.resource l1);
  Model.set_property m arc "arcTo" (Triple.resource l2);
  Model.add_property m link "hasArc" (Triple.resource arc);
  check_int "valid xlink" 0
    (List.length
       (Si_metamodel.Validate.check m).Si_metamodel.Validate.violations)

let test_three_models_coexist () =
  (* The flexibility claim, end to end: Bundle-Scrap, topic map and XLink
     in ONE triple store, each independently valid. *)
  let dmi = Si_slim.Dmi.create () in
  let trim = Si_slim.Dmi.trim dmi in
  let tmap = Si_slim.Std_models.install_topic_map trim in
  let x = Si_slim.Std_models.install_xlink trim in
  let pad = Si_slim.Dmi.create_slimpad dmi ~pad_name:"P" in
  ignore pad;
  let t1 = Model.new_instance tmap.Si_slim.Std_models.tm
      tmap.Si_slim.Std_models.topic () in
  Model.set_property tmap.Si_slim.Std_models.tm t1 "topicName"
    (Triple.literal "T");
  ignore x;
  check_int "three models" 3 (List.length (Model.all trim));
  check_int "bundle-scrap valid" 0
    (List.length (Si_slim.Dmi.validate dmi).Si_metamodel.Validate.violations);
  check_int "topic map valid" 0
    (List.length
       (Si_metamodel.Validate.check tmap.Si_slim.Std_models.tm)
       .Si_metamodel.Validate.violations)

let test_pad_to_topic_map () =
  (* End to end: build a pad through the DMI, map it to the topic map,
     check the result is a valid topic map with the right content. *)
  let dmi = Si_slim.Dmi.create () in
  let pad = Si_slim.Dmi.create_slimpad dmi ~pad_name:"Rounds" in
  let root = Si_slim.Dmi.root_bundle dmi pad in
  let smith =
    Si_slim.Dmi.create_bundle dmi ~name:"John Smith" ~parent:root ()
  in
  let _ =
    Si_slim.Dmi.create_scrap dmi ~name:"Dopamine 5" ~mark_id:"m1"
      ~parent:smith ()
  in
  let trim = Si_slim.Dmi.trim dmi in
  let tmap = Si_slim.Std_models.install_topic_map trim in
  let mapping =
    Si_slim.Std_models.bundles_to_topics (Si_slim.Dmi.model dmi) tmap
  in
  let report = Si_mapping.Mapping.apply mapping in
  (* Root bundle + smith bundle + 1 scrap = 3 instances. *)
  check_int "instances mapped" 3 report.Si_mapping.Mapping.instances_mapped;
  (* The smith topic carries its occurrence. *)
  let topics = Model.instances_of tmap.Si_slim.Std_models.tm
      tmap.Si_slim.Std_models.topic in
  check_int "two topics" 2 (List.length topics);
  let smith_topic =
    List.find
      (fun t ->
        Trim.literal_of trim ~subject:t ~predicate:"topicName"
        = Some "John Smith")
      topics
  in
  check_int "occurrence attached" 1
    (List.length
       (Trim.select ~subject:smith_topic ~predicate:"hasOccurrence" trim));
  check_int "mapped topic map is valid" 0
    (List.length
       (Si_metamodel.Validate.check tmap.Si_slim.Std_models.tm)
       .Si_metamodel.Validate.violations)

let props = List.map QCheck_alcotest.to_alcotest [ prop_rdf_roundtrip ]

let suite =
  [
    ("rdf/xml: shape", `Quick, test_shape);
    ("rdf/xml: round-trip", `Quick, test_roundtrip);
    ("rdf/xml: escaping", `Quick, test_string_roundtrip_with_escaping);
    ("rdf/xml: bad predicates rejected", `Quick, test_bad_predicate_rejected);
    ("rdf/xml: model+schema+instance export", `Quick,
     test_model_exports_as_rdf);
    ("rdf/xml: file round-trip", `Quick, test_file_roundtrip);
    ("rdf/xml: rejects garbage", `Quick, test_rejects_garbage);
    ("models: topic map", `Quick, test_topic_map_model);
    ("models: xlink", `Quick, test_xlink_model);
    ("models: three models coexist", `Quick, test_three_models_coexist);
    ("models: pad -> topic map (E6 end-to-end)", `Quick,
     test_pad_to_topic_map);
  ]
  @ props
