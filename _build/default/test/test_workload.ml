(* Tests for the workload generators (experiments F2, C1 and the ATC
   analogue). *)

module Desktop = Si_mark.Desktop
module Dmi = Si_slim.Dmi
module Slimpad = Si_slimpad.Slimpad
open Si_workload

let check = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

(* ------------------------------------------------------------------ ICU *)

let icu_app ?patients ?meds_per_patient ?labs_per_patient seed =
  let desk = Desktop.create () in
  let spec = Icu.build_desktop ?patients ?meds_per_patient ?labs_per_patient ~seed desk in
  let app = Slimpad.create desk in
  let pad = Icu.build_worksheet app spec in
  (app, spec, pad)

let test_icu_shape () =
  let app, spec, pad = icu_app ~patients:3 42 in
  let t = Slimpad.dmi app in
  let root = Dmi.root_bundle t pad in
  check_int "three patient bundles" 3 (List.length (Dmi.nested_bundles t root));
  check_int "three patients in spec" 3 (List.length (spec.Icu.patients));
  let patient = List.hd (Dmi.nested_bundles t root) in
  check "bundle named after patient"
    (List.hd spec.Icu.patients).Icu.name
    (Dmi.bundle_name t patient);
  (* Each patient bundle holds a nested Labs bundle. *)
  check_int "labs bundle" 1 (List.length (Dmi.nested_bundles t patient));
  let labs = List.hd (Dmi.nested_bundles t patient) in
  check_int "six lab scraps" 6 (List.length (Dmi.scraps t labs))

let test_icu_marks_resolve () =
  let app, _, pad = icu_app ~patients:2 7 in
  let scraps = Slimpad.find_scraps app pad "" in
  check_bool "plenty of scraps" true (List.length scraps > 10);
  (* Every scrap's mark resolves against the generated documents. *)
  List.iter
    (fun s ->
      match Slimpad.scrap_content app s with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "scrap failed to resolve: %s" e)
    scraps

let test_icu_medication_marks () =
  let app, spec, pad = icu_app ~patients:2 ~meds_per_patient:2 11 in
  let patient = List.hd spec.Icu.patients in
  (* The medication scrap excerpt contains the patient's drugs from the
     shared workbook. *)
  let med_scrap =
    List.find
      (fun s ->
        match Slimpad.scrap_mark app s with
        | Some m -> m.Si_mark.Mark.mark_type = "excel"
        | None -> false)
      (Slimpad.find_scraps app pad "")
  in
  let content = ok (Slimpad.scrap_content app med_scrap) in
  check_bool "has patient name" true
    (let re = Re.compile (Re.str patient.Icu.name) in
     Re.execp re content)

let test_icu_deterministic () =
  let app1, _, pad1 = icu_app ~patients:3 99 in
  let app2, _, pad2 = icu_app ~patients:3 99 in
  check "same seed, same worksheet"
    (Slimpad.render_pad app1 pad1)
    (Slimpad.render_pad app2 pad2);
  let app3, _, pad3 = icu_app ~patients:3 100 in
  check_bool "different seed differs" true
    (Slimpad.render_pad app1 pad1 <> Slimpad.render_pad app3 pad3)

let test_icu_todos_annotated () =
  let app, _, pad = icu_app ~patients:2 5 in
  let t = Slimpad.dmi app in
  let todos = Slimpad.find_scraps app pad "TODO:" in
  check_bool "todo scraps exist" true (todos <> []);
  List.iter
    (fun s ->
      Alcotest.(check (list string)) "annotated" [ "to-do" ]
        (Dmi.annotations t s))
    todos

let test_icu_valid_store () =
  let app, _, _ = icu_app ~patients:4 3 in
  check_int "conformant" 0
    (List.length
       (Dmi.validate (Slimpad.dmi app)).Si_metamodel.Validate.violations)

(* ---------------------------------------------------------- concordance *)

let test_concordance () =
  let desk = Desktop.create () in
  Concordance.install_play desk;
  let app = Slimpad.create desk in
  let pad = Concordance.build app ~terms:[ "sleep"; "death"; "dream" ] in
  let t = Slimpad.dmi app in
  let root = Dmi.root_bundle t pad in
  check_int "three term bundles" 3 (List.length (Dmi.nested_bundles t root));
  let sleep_bundle =
    List.find
      (fun b -> Dmi.bundle_name t b = "sleep")
      (Dmi.nested_bundles t root)
  in
  (* "sleep" appears 5 times in the soliloquy. *)
  check_int "five occurrences of sleep" 5
    (List.length (Dmi.scraps t sleep_bundle));
  (* Each scrap resolves to the term and knows its line. *)
  List.iter
    (fun s ->
      check "content is the term" "sleep" (ok (Slimpad.scrap_content app s));
      check_bool "label cites the line" true
        (let re = Re.compile (Re.str "(line ") in
         Re.execp re (Dmi.scrap_name t s)))
    (Dmi.scraps t sleep_bundle)

let test_concordance_missing_term () =
  let desk = Desktop.create () in
  Concordance.install_play desk;
  let app = Slimpad.create desk in
  let pad = Concordance.build app ~terms:[ "spaceship" ] in
  let t = Slimpad.dmi app in
  let bundle = List.hd (Dmi.nested_bundles t (Dmi.root_bundle t pad)) in
  check_int "empty bundle" 0 (List.length (Dmi.scraps t bundle))

let test_concordance_context () =
  (* Navigating a concordance entry shows the surrounding lines. *)
  let desk = Desktop.create () in
  Concordance.install_play desk;
  let app = Slimpad.create desk in
  let pad = Concordance.build app ~terms:[ "question" ] in
  let s = List.hd (Slimpad.find_scraps app pad "question") in
  let res = ok (Slimpad.double_click app s) in
  check_bool "context shows the famous line" true
    (let re = Re.compile (Re.str "To be, or not to be") in
     Re.execp re res.Si_mark.Mark.res_context)

(* ------------------------------------------------------------------ ATC *)

let test_atc () =
  let desk = Desktop.create () in
  let spec = Atc.build_desktop ~flights:10 ~seed:21 desk in
  let app = Slimpad.create desk in
  let pad = Atc.build_board app spec in
  let t = Slimpad.dmi app in
  let sectors = Dmi.nested_bundles t (Dmi.root_bundle t pad) in
  check_int "sector bundles" (List.length spec.Atc.sectors)
    (List.length sectors);
  let strip_count =
    List.fold_left (fun n b -> n + List.length (Dmi.scraps t b)) 0 sectors
  in
  check_int "all strips bundled" 10 strip_count;
  (* Every strip resolves to its flight's row. *)
  List.iter
    (fun b ->
      List.iter
        (fun s ->
          let content = ok (Slimpad.scrap_content app s) in
          check_bool "row starts with callsign" true
            (let re = Re.compile (Re.str (Dmi.scrap_name t s)) in
             Re.execp re content))
        (Dmi.scraps t b))
    sectors

let test_atc_deterministic () =
  let build seed =
    let desk = Desktop.create () in
    let spec = Atc.build_desktop ~seed desk in
    let app = Slimpad.create desk in
    let pad = Atc.build_board app spec in
    Slimpad.render_pad app pad
  in
  check "deterministic" (build 4) (build 4)

let suite =
  [
    ("icu: worksheet shape (F2)", `Quick, test_icu_shape);
    ("icu: all marks resolve", `Quick, test_icu_marks_resolve);
    ("icu: medication marks hit the workbook", `Quick,
     test_icu_medication_marks);
    ("icu: deterministic in seed", `Quick, test_icu_deterministic);
    ("icu: todos annotated", `Quick, test_icu_todos_annotated);
    ("icu: store conformant", `Quick, test_icu_valid_store);
    ("concordance: per-term bundles (C1)", `Quick, test_concordance);
    ("concordance: missing term", `Quick, test_concordance_missing_term);
    ("concordance: context", `Quick, test_concordance_context);
    ("atc: sector board", `Quick, test_atc);
    ("atc: deterministic", `Quick, test_atc_deterministic);
  ]
