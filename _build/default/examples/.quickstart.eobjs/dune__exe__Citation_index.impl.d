examples/citation_index.ml: List Printf Si_mark Si_metamodel Si_pdfdoc Si_query Si_slim Si_spreadsheet Si_triple
