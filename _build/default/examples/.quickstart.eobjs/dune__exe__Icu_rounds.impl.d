examples/icu_rounds.ml: Filename List Option Printf Si_mark Si_slim Si_slimpad Si_workload Si_xmlk Sys
