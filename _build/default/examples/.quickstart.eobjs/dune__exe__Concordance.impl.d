examples/concordance.ml: List Printf Si_mark Si_slim Si_slimpad Si_workload String
