examples/quickstart.mli:
