examples/air_traffic.mli:
