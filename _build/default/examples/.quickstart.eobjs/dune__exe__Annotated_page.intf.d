examples/annotated_page.mli:
