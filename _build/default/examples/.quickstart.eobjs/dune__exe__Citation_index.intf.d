examples/citation_index.mli:
