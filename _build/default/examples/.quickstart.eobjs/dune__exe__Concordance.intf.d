examples/concordance.mli:
