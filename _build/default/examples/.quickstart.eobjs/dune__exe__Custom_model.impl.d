examples/custom_model.ml: List Printf Si_metamodel Si_query Si_slim Si_triple String
