examples/icu_rounds.mli:
