examples/annotated_page.ml: List Printf Si_htmldoc Si_mark Si_slim Si_slimpad Si_textdoc String
