examples/quickstart.ml: Filename List Option Printf Si_mark Si_slim Si_slimpad Si_spreadsheet Si_xmlk Sys
