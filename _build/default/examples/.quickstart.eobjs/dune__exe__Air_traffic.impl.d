examples/air_traffic.ml: List Option Printf Si_mark Si_slim Si_slimpad Si_spreadsheet Si_workload
