(* Tests for the SLIM store: Bundle-Scrap model, DMI operations (Fig 10),
   consistency with the triple representation (F9), persistence. *)

open Si_slim
module Trim = Si_triple.Trim
module Triple = Si_triple.Triple

let check = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* The 'Rounds' pad of Fig 4: a John Smith bundle with two medication
   scraps and a nested Electrolyte bundle holding two lab scraps. *)
let rounds () =
  let t = Dmi.create () in
  let pad = Dmi.create_slimpad t ~pad_name:"Rounds" in
  let root = Dmi.root_bundle t pad in
  let smith =
    Dmi.create_bundle t ~name:"John Smith" ~pos:{ Dmi.x = 10; y = 10 }
      ~width:300 ~height:200 ~parent:root ()
  in
  let dopamine =
    Dmi.create_scrap t ~name:"Dopamine 5" ~pos:{ Dmi.x = 20; y = 30 }
      ~mark_id:"mark-1" ~parent:smith ()
  in
  let fentanyl =
    Dmi.create_scrap t ~name:"Fentanyl 0.05" ~pos:{ Dmi.x = 20; y = 50 }
      ~mark_id:"mark-2" ~parent:smith ()
  in
  let electrolyte =
    Dmi.create_bundle t ~name:"Electrolyte" ~pos:{ Dmi.x = 20; y = 80 }
      ~parent:smith ()
  in
  let na =
    Dmi.create_scrap t ~name:"140" ~mark_id:"mark-3" ~parent:electrolyte ()
  in
  let k =
    Dmi.create_scrap t ~name:"4.2" ~mark_id:"mark-4" ~parent:electrolyte ()
  in
  (t, pad, root, smith, dopamine, fentanyl, electrolyte, na, k)

let test_create_and_read () =
  let t, pad, root, smith, dopamine, _, electrolyte, _, _ = rounds () in
  check "pad name" "Rounds" (Dmi.pad_name t pad);
  check "root bundle named after pad" "Rounds" (Dmi.bundle_name t root);
  check "bundle name" "John Smith" (Dmi.bundle_name t smith);
  check_bool "bundle pos" true
    (Dmi.bundle_pos t smith = Some { Dmi.x = 10; y = 10 });
  check_bool "bundle size" true (Dmi.bundle_size t smith = Some (300, 200));
  check "scrap name" "Dopamine 5" (Dmi.scrap_name t dopamine);
  check "scrap mark id" "mark-1" (Dmi.scrap_mark_id t dopamine);
  check_bool "scrap pos" true
    (Dmi.scrap_pos t dopamine = Some { Dmi.x = 20; y = 30 });
  check_int "smith scraps" 2 (List.length (Dmi.scraps t smith));
  check_int "smith nested" 1 (List.length (Dmi.nested_bundles t smith));
  check_int "electrolyte scraps" 2 (List.length (Dmi.scraps t electrolyte))

let test_creation_order_preserved () =
  let t, _, _, smith, dopamine, fentanyl, _, _, _ = rounds () in
  Alcotest.(check (list string))
    "scraps in creation order"
    [ Dmi.scrap_id dopamine; Dmi.scrap_id fentanyl ]
    (List.map Dmi.scrap_id (Dmi.scraps t smith))

let test_parents () =
  let t, pad, root, smith, dopamine, _, electrolyte, na, _ = rounds () in
  check_bool "scrap parent" true
    (Dmi.scrap_parent t dopamine = Some smith);
  check_bool "nested parent" true
    (Dmi.bundle_parent t electrolyte = Some smith);
  check_bool "root has no parent" true (Dmi.bundle_parent t root = None);
  check_bool "na parent" true (Dmi.scrap_parent t na = Some electrolyte);
  check_bool "root bundle of pad" true (Dmi.root_bundle t pad = root)

let test_updates () =
  let t, pad, _, smith, dopamine, _, _, _, _ = rounds () in
  Dmi.update_pad_name t pad "Weekend Rounds";
  check "pad renamed" "Weekend Rounds" (Dmi.pad_name t pad);
  Dmi.update_bundle_name t smith "J. Smith";
  check "bundle renamed" "J. Smith" (Dmi.bundle_name t smith);
  Dmi.move_bundle t smith { Dmi.x = 99; y = 98 };
  check_bool "bundle moved" true
    (Dmi.bundle_pos t smith = Some { Dmi.x = 99; y = 98 });
  Dmi.resize_bundle t smith ~width:400 ~height:250;
  check_bool "bundle resized" true (Dmi.bundle_size t smith = Some (400, 250));
  Dmi.update_scrap_name t dopamine "Dopamine 10";
  check "scrap renamed" "Dopamine 10" (Dmi.scrap_name t dopamine);
  Dmi.move_scrap t dopamine { Dmi.x = 1; y = 2 };
  check_bool "scrap moved" true
    (Dmi.scrap_pos t dopamine = Some { Dmi.x = 1; y = 2 });
  Dmi.set_scrap_mark t dopamine "mark-99";
  check "mark repointed" "mark-99" (Dmi.scrap_mark_id t dopamine)

let test_ids_roundtrip () =
  let t, pad, _, smith, dopamine, _, _, _, _ = rounds () in
  check_bool "pad" true (Dmi.pad_of_id t (Dmi.pad_id pad) = Some pad);
  check_bool "bundle" true
    (Dmi.bundle_of_id t (Dmi.bundle_id smith) = Some smith);
  check_bool "scrap" true
    (Dmi.scrap_of_id t (Dmi.scrap_id dopamine) = Some dopamine);
  (* Cross-kind lookups fail. *)
  check_bool "scrap id is not a bundle" true
    (Dmi.bundle_of_id t (Dmi.scrap_id dopamine) = None);
  check_bool "unknown id" true (Dmi.bundle_of_id t "nothing" = None)

let test_find_pad_and_pads () =
  let t, pad, _, _, _, _, _, _, _ = rounds () in
  let _ = Dmi.create_slimpad t ~pad_name:"Archive" in
  check_int "two pads" 2 (List.length (Dmi.pads t));
  check_bool "find" true (Dmi.find_pad t "Rounds" = Some pad);
  check_bool "find missing" true (Dmi.find_pad t "Nope" = None);
  check "sorted by name" "Archive"
    (Dmi.pad_name t (List.hd (Dmi.pads t)))

let test_descendant_count () =
  let t, _, root, smith, _, _, _, _, _ = rounds () in
  check_bool "smith subtree" true
    (Dmi.bundle_descendant_count t smith = (2, 4));
  check_bool "root subtree" true
    (Dmi.bundle_descendant_count t root = (3, 4))

let test_reparent () =
  let t, _, root, smith, _, _, electrolyte, _, _ = rounds () in
  (* Move the electrolyte bundle up to the root. *)
  (match Dmi.reparent_bundle t electrolyte ~parent:root with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_bool "new parent" true (Dmi.bundle_parent t electrolyte = Some root);
  check_int "smith no longer holds it" 0
    (List.length (Dmi.nested_bundles t smith));
  (* Cycles rejected. *)
  check_bool "self" true
    (Result.is_error (Dmi.reparent_bundle t smith ~parent:smith));
  let inner = Dmi.create_bundle t ~name:"inner" ~parent:smith () in
  check_bool "descendant" true
    (Result.is_error (Dmi.reparent_bundle t smith ~parent:inner));
  check_bool "root immovable" true
    (Result.is_error (Dmi.reparent_bundle t root ~parent:smith))

let test_reparent_scrap () =
  let t, _, root, smith, dopamine, _, _, _, _ = rounds () in
  Dmi.reparent_scrap t dopamine ~parent:root;
  check_bool "moved" true (Dmi.scrap_parent t dopamine = Some root);
  check_int "smith has one scrap left" 1 (List.length (Dmi.scraps t smith))

let test_delete_scrap () =
  let t, _, _, smith, dopamine, _, _, _, _ = rounds () in
  let before = Dmi.triple_count t in
  Dmi.delete_scrap t dopamine;
  check_int "one scrap left" 1 (List.length (Dmi.scraps t smith));
  check_bool "id unresolvable" true
    (Dmi.scrap_of_id t (Dmi.scrap_id dopamine) = None);
  check_bool "triples reclaimed" true (Dmi.triple_count t < before);
  (* The MarkHandle went too: no markId literal "mark-1" left anywhere. *)
  check_bool "handle gone" true
    (Trim.select ~predicate:Bundle_model.mark_id
       ~object_:(Triple.literal "mark-1") (Dmi.trim t)
    = [])

let test_delete_bundle_recursive () =
  let t, _, _, smith, _, _, _, _, _ = rounds () in
  (match Dmi.delete_bundle t smith with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_bool "bundle gone" true
    (Dmi.bundle_of_id t (Dmi.bundle_id smith) = None);
  (* Everything under it went: only the pad + root bundle remain. *)
  let model = (Dmi.model t).Bundle_model.model in
  check_int "no scraps anywhere" 0
    (List.length
       (Si_metamodel.Model.instances_of model (Dmi.model t).Bundle_model.scrap));
  check_int "one bundle (the root)" 1
    (List.length
       (Si_metamodel.Model.instances_of model (Dmi.model t).Bundle_model.bundle))

let test_delete_root_rejected () =
  let t, _, root, _, _, _, _, _, _ = rounds () in
  check_bool "rejected" true (Result.is_error (Dmi.delete_bundle t root))

let test_delete_pad () =
  let t, pad, _, _, _, _, _, _, _ = rounds () in
  Dmi.delete_slimpad t pad;
  check_int "no pads" 0 (List.length (Dmi.pads t));
  (* Only the model definition triples remain. *)
  let fresh = Dmi.create () in
  check_int "store back to pristine size" (Dmi.triple_count fresh)
    (Dmi.triple_count t)

(* -------------------------------------------------- §6 extensions *)

let test_annotations () =
  let t, _, _, _, dopamine, _, _, _, _ = rounds () in
  Dmi.annotate_scrap t dopamine "double-check dose";
  Dmi.annotate_scrap t dopamine "ask pharmacy";
  Alcotest.(check (list string))
    "annotations" [ "ask pharmacy"; "double-check dose" ]
    (Dmi.annotations t dopamine);
  check_bool "remove" true (Dmi.remove_annotation t dopamine "ask pharmacy");
  check_bool "remove absent" false
    (Dmi.remove_annotation t dopamine "ask pharmacy");
  check_int "one left" 1 (List.length (Dmi.annotations t dopamine))

let test_links () =
  let t, _, _, _, dopamine, fentanyl, _, na, _ = rounds () in
  let l =
    Dmi.link_scraps t ~label:"both sedation-related" ~from_:dopamine
      ~to_:fentanyl ()
  in
  check_bool "ends" true (Dmi.link_ends t l = Some (dopamine, fentanyl));
  check_bool "label" true
    (Dmi.link_label t l = Some "both sedation-related");
  let l2 = Dmi.link_scraps t ~from_:fentanyl ~to_:na () in
  check_bool "unlabelled" true (Dmi.link_label t l2 = None);
  check_int "all links" 2 (List.length (Dmi.links t));
  check_int "links of fentanyl" 2 (List.length (Dmi.links_of_scrap t fentanyl));
  check_int "links of dopamine" 1 (List.length (Dmi.links_of_scrap t dopamine));
  Dmi.delete_link t l;
  check_int "after delete" 1 (List.length (Dmi.links t));
  (* Deleting a scrap removes links touching it. *)
  Dmi.delete_scrap t na;
  check_int "scrap deletion cascades" 0 (List.length (Dmi.links t))

let test_decorations () =
  (* Fig 4's gridlet: a graphic element with scraps placed near it. *)
  let t, _, _, _, _, _, electrolyte, _, _ = rounds () in
  let grid =
    Dmi.add_decoration t electrolyte ~kind:"gridlet"
      ~pos:{ Dmi.x = 25; y = 85 } ()
  in
  check "kind" "gridlet" (Dmi.decoration_kind t grid);
  check_bool "pos" true (Dmi.decoration_pos t grid = Some { Dmi.x = 25; y = 85 });
  check_int "listed" 1 (List.length (Dmi.decorations t electrolyte));
  Dmi.move_decoration t grid { Dmi.x = 30; y = 90 };
  check_bool "moved" true
    (Dmi.decoration_pos t grid = Some { Dmi.x = 30; y = 90 });
  (* Decorations conform to the model. *)
  check_int "valid" 0
    (List.length (Dmi.validate t).Si_metamodel.Validate.violations);
  (* Deep copy carries them; deleting the bundle removes them. *)
  Dmi.set_template t electrolyte true;
  let copy =
    match
      Dmi.instantiate_template t ~template:electrolyte ~name:"copy"
        ~parent:electrolyte
    with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  check_int "copied" 1 (List.length (Dmi.decorations t copy));
  (match Dmi.delete_bundle t copy with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let model = (Dmi.model t).Bundle_model.model in
  check_int "one decoration left after subtree delete" 1
    (List.length
       (Si_metamodel.Model.instances_of model
          (Dmi.model t).Bundle_model.decoration));
  Dmi.delete_decoration t grid;
  check_int "none" 0 (List.length (Dmi.decorations t electrolyte))

let test_templates () =
  let t, _, root, _, _, _, electrolyte, _, _ = rounds () in
  Dmi.set_template t electrolyte true;
  check_bool "flagged" true (Dmi.is_template t electrolyte);
  check_int "listed" 1 (List.length (Dmi.templates t));
  let copy =
    match
      Dmi.instantiate_template t ~template:electrolyte ~name:"Electrolyte (new)"
        ~parent:root
    with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  check "copied name" "Electrolyte (new)" (Dmi.bundle_name t copy);
  check_bool "copy is not a template" true (not (Dmi.is_template t copy));
  check_int "scraps copied" 2 (List.length (Dmi.scraps t copy));
  check "copied scrap keeps mark" "mark-3"
    (Dmi.scrap_mark_id t (List.hd (Dmi.scraps t copy)));
  check_bool "copies are fresh resources" true
    (Dmi.scrap_id (List.hd (Dmi.scraps t copy))
    <> Dmi.scrap_id (List.hd (Dmi.scraps t electrolyte)));
  (* Non-templates refuse to instantiate. *)
  check_bool "non-template" true
    (Result.is_error
       (Dmi.instantiate_template t ~template:copy ~name:"x" ~parent:root));
  Dmi.set_template t electrolyte false;
  check_int "unflagged" 0 (List.length (Dmi.templates t))

let test_template_deep_copy () =
  let t = Dmi.create () in
  let pad = Dmi.create_slimpad t ~pad_name:"P" in
  let root = Dmi.root_bundle t pad in
  let tpl = Dmi.create_bundle t ~name:"patient-template" ~parent:root () in
  let inner = Dmi.create_bundle t ~name:"labs" ~parent:tpl () in
  let s = Dmi.create_scrap t ~name:"Na" ~mark_id:"m" ~parent:inner () in
  Dmi.annotate_scrap t s "flag if > 145";
  Dmi.set_template t tpl true;
  let copy =
    match
      Dmi.instantiate_template t ~template:tpl ~name:"bed 4" ~parent:root
    with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  check_bool "deep" true (Dmi.bundle_descendant_count t copy = (2, 1));
  let copied_scrap =
    List.hd (Dmi.scraps t (List.hd (Dmi.nested_bundles t copy)))
  in
  Alcotest.(check (list string))
    "annotations copied" [ "flag if > 145" ]
    (Dmi.annotations t copied_scrap)

(* --------------------------------------------------- operation journal *)

let test_journal_records_operations () =
  let t, pad, _, smith, dopamine, _, _, _, _ = rounds () in
  let ops = List.map (fun e -> e.Dmi.op) (Dmi.journal t) in
  (* Construction of the Fig 4 pad: 1 pad, 2 bundles, 4 scraps. *)
  check_int "entry count" 7 (List.length ops);
  check "first op" "create_slimpad" (List.hd ops);
  check_int "scrap creations" 4
    (List.length (List.filter (fun o -> o = "create_scrap") ops));
  (* Mutations append in order with increasing sequence numbers. *)
  Dmi.update_scrap_name t dopamine "renamed";
  Dmi.update_pad_name t pad "renamed pad";
  Dmi.update_bundle_name t smith "renamed bundle";
  let entries = Dmi.journal t in
  check_int "three more" 10 (List.length entries);
  let seqs = List.map (fun e -> e.Dmi.seq) entries in
  check_bool "strictly increasing" true
    (List.sort_uniq compare seqs = seqs);
  let last = List.nth entries 9 in
  check "last op" "update_bundle_name" last.Dmi.op;
  check "detail" "renamed to \"renamed bundle\"" last.Dmi.detail;
  check "target" (Dmi.bundle_id smith) last.Dmi.target

let test_journal_deletion_and_clear () =
  let t, _, _, _, dopamine, _, _, _, _ = rounds () in
  Dmi.delete_scrap t dopamine;
  let ops = List.map (fun e -> e.Dmi.op) (Dmi.journal t) in
  check_bool "delete recorded" true (List.mem "delete_scrap" ops);
  Dmi.clear_journal t;
  check_int "cleared" 0 (Dmi.journal_length t)

let test_journal_xml_roundtrip () =
  let t, _, _, _, dopamine, fentanyl, _, _, _ = rounds () in
  Dmi.annotate_scrap t dopamine "check";
  ignore (Dmi.link_scraps t ~from_:dopamine ~to_:fentanyl ());
  let xml = Dmi.journal_to_xml t in
  let t2 = Dmi.create () in
  (match Dmi.load_journal t2 xml with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_int "same length" (Dmi.journal_length t) (Dmi.journal_length t2);
  check_bool "same entries" true (Dmi.journal t = Dmi.journal t2);
  (* New operations continue the sequence after the loaded history. *)
  let pad2 = Dmi.create_slimpad t2 ~pad_name:"next" in
  ignore pad2;
  let last = List.nth (Dmi.journal t2) (Dmi.journal_length t2 - 1) in
  check_bool "sequence continues" true
    (last.Dmi.seq > Dmi.journal_length t)

let test_journal_record_codec () =
  let t, _, _, smith, _, _, _, _, _ = rounds () in
  Dmi.update_bundle_name t smith "renamed <&> bundle";
  List.iter
    (fun entry ->
      match Dmi.journal_entry_of_record (Dmi.journal_entry_to_record entry) with
      | Ok back ->
          check_int "seq" entry.Dmi.seq back.Dmi.seq;
          check "op" entry.Dmi.op back.Dmi.op;
          check "target" entry.Dmi.target back.Dmi.target;
          check "detail" entry.Dmi.detail back.Dmi.detail
      | Error e -> Alcotest.fail e)
    (Dmi.journal t);
  (* The record self-identifies for WAL dispatch. *)
  (match
     Si_wal.Record.decode_fields
       (Dmi.journal_entry_to_record (List.hd (Dmi.journal t)))
   with
  | Ok (tag :: _) -> check "tag" Dmi.journal_record_tag tag
  | _ -> Alcotest.fail "record did not decode");
  check_bool "foreign tag rejected" true
    (Result.is_error
       (Dmi.journal_entry_of_record (Si_wal.Record.encode_fields [ "+"; "x" ])));
  check_bool "short record rejected" true
    (Result.is_error
       (Dmi.journal_entry_of_record
          (Si_wal.Record.encode_fields [ Dmi.journal_record_tag; "1" ])))

let test_journal_observer () =
  let t, _, _, smith, dopamine, _, _, _, _ = rounds () in
  let events = ref [] in
  Dmi.on_journal t (fun e -> events := e :: !events);
  Dmi.update_bundle_name t smith "watched";
  (match !events with
  | [ Dmi.Journal_logged e ] -> check "op" "update_bundle_name" e.Dmi.op
  | _ -> Alcotest.fail "expected one Journal_logged event");
  (* A rolled-back transaction announces the truncation point so a WAL
     can discard the body's journal entries. *)
  events := [];
  let before = Dmi.journal_length t in
  (match
     Dmi.atomically t (fun () ->
         Dmi.update_scrap_name t dopamine "doomed";
         (Error "abort" : (unit, string) result))
   with
  | Error "abort" -> ()
  | _ -> Alcotest.fail "abort should surface");
  check_int "journal restored" before (Dmi.journal_length t);
  check_bool "logged then truncated" true
    (match List.rev !events with
    | Dmi.Journal_logged _ :: rest ->
        List.exists (function Dmi.Journal_truncated_to _ -> true | _ -> false)
          rest
    | _ -> false);
  events := [];
  Dmi.clear_journal t;
  check_bool "clear notifies" true
    (List.exists (function Dmi.Journal_cleared -> true | _ -> false) !events)

let test_journal_replay_helpers () =
  let t, _, _, smith, _, _, _, _, _ = rounds () in
  Dmi.update_bundle_name t smith "renamed";
  let entries = Dmi.journal t in
  (* Rebuild the journal on a fresh store via the replay-side helpers —
     the path WAL recovery takes. *)
  let t2 = Dmi.create () in
  Dmi.clear_journal t2;
  List.iter (Dmi.append_journal_entry t2) entries;
  check_bool "same entries" true (Dmi.journal t = Dmi.journal t2);
  let high = (List.nth entries (List.length entries - 1)).Dmi.seq in
  Dmi.truncate_journal_to t2 (high - 1);
  check_int "tail dropped" (List.length entries - 1) (Dmi.journal_length t2);
  (* Truncation mirrors rollback: the counter winds back with it, so the
     next entry reuses the discarded seq — exactly what the in-memory
     store does after [atomically] rolls back. *)
  ignore (Dmi.create_slimpad t2 ~pad_name:"next");
  let last = List.nth (Dmi.journal t2) (Dmi.journal_length t2 - 1) in
  check_bool "fresh seq continues past surviving history" true
    (last.Dmi.seq > high - 1)

(* ------------------------------------------ F9: consistency & validity *)

let test_always_valid () =
  (* "the DMI … guarantee[s] consistency between the triple representation
     and the application data": everything the DMI produces conforms to
     the Bundle-Scrap model. *)
  let t, _, root, smith, dopamine, fentanyl, electrolyte, na, _ = rounds () in
  let report = Dmi.validate t in
  check_int "no violations" 0 (List.length report.Si_metamodel.Validate.violations);
  (* ... and it stays valid through a workout of every mutator. *)
  Dmi.update_bundle_name t smith "renamed";
  Dmi.move_scrap t dopamine { Dmi.x = 5; y = 5 };
  Dmi.annotate_scrap t fentanyl "note";
  ignore (Dmi.link_scraps t ~from_:na ~to_:dopamine ());
  ignore (Dmi.reparent_bundle t electrolyte ~parent:root);
  Dmi.delete_scrap t dopamine;
  let report = Dmi.validate t in
  check_int "still none" 0
    (List.length report.Si_metamodel.Validate.violations)

let test_hand_written_triples_caught () =
  (* Schema-later: data written around the DMI is checked, not blocked. *)
  let t, _, _, smith, _, _, _, _, _ = rounds () in
  ignore
    (Trim.add (Dmi.trim t)
       (Triple.make (Dmi.bundle_id smith) "unknownProp" (Triple.literal "x")));
  let report = Dmi.validate t in
  check_int "violation found" 1
    (List.length report.Si_metamodel.Validate.violations)

let test_triples_visible () =
  (* The generic representation is really there: the pad's whole state is
     reachable from the pad resource (the TRIM view of §4.4). *)
  let t, pad, _, _, _, _, _, _, _ = rounds () in
  let view = Trim.view (Dmi.trim t) (Dmi.pad_id pad) in
  check_bool "view covers bundle names" true
    (List.exists
       (fun (tr : Triple.t) ->
         tr.predicate = Bundle_model.bundle_name
         && tr.object_ = Triple.Literal "John Smith")
       view);
  check_bool "view covers mark ids" true
    (List.exists
       (fun (tr : Triple.t) ->
         tr.predicate = Bundle_model.mark_id
         && tr.object_ = Triple.Literal "mark-4")
       view)

(* ----------------------------------------------------------- storage *)

let test_save_load () =
  let t, _, _, _, _, _, _, _, _ = rounds () in
  let path = Filename.temp_file "slimstore" ".xml" in
  (match Dmi.save t path with Ok () -> () | Error e -> Alcotest.fail e);
  let t2 = match Dmi.load path with Ok x -> x | Error e -> Alcotest.fail e in
  Sys.remove path;
  check_bool "contents equal" true (Dmi.equal_contents t t2);
  (* The loaded store is fully operable. *)
  let pad = Option.get (Dmi.find_pad t2 "Rounds") in
  let root = Dmi.root_bundle t2 pad in
  let smith = List.hd (Dmi.nested_bundles t2 root) in
  check "loaded bundle" "John Smith" (Dmi.bundle_name t2 smith);
  check_int "loaded scraps" 2 (List.length (Dmi.scraps t2 smith));
  (* New objects in the loaded store do not collide with loaded ids. *)
  let extra = Dmi.create_scrap t2 ~name:"new" ~mark_id:"m" ~parent:smith () in
  check_int "three scraps" 3 (List.length (Dmi.scraps t2 smith));
  check_bool "fresh id" true
    (Dmi.scrap_of_id t2 (Dmi.scrap_id extra) = Some extra);
  check_int "loaded store valid" 0
    (List.length (Dmi.validate t2).Si_metamodel.Validate.violations)

let test_store_choice () =
  (* The DMI is independent of the store implementation (E3 setup). *)
  let t = Dmi.create ~store:(module Si_triple.Store.List_store) () in
  let pad = Dmi.create_slimpad t ~pad_name:"P" in
  let root = Dmi.root_bundle t pad in
  let _ = Dmi.create_scrap t ~name:"s" ~mark_id:"m" ~parent:root () in
  check "list-backed works" "P" (Dmi.pad_name t pad);
  check_int "valid" 0
    (List.length (Dmi.validate t).Si_metamodel.Validate.violations)

(* Property: random DMI workouts keep the store conformant and keep
   parent/child views consistent. *)
let prop_random_workout =
  QCheck.Test.make ~name:"random DMI workouts stay valid" ~count:60
    QCheck.(list_of_size (QCheck.Gen.int_range 0 40) (QCheck.int_range 0 13))
    (fun ops ->
      let t = Dmi.create () in
      let pad = Dmi.create_slimpad t ~pad_name:"W" in
      let root = Dmi.root_bundle t pad in
      let bundles = ref [ root ] in
      let scraps = ref [] in
      let pick l n = List.nth l (n mod List.length l) in
      List.iteri
        (fun i op ->
          match op with
          | 0 | 1 ->
              let parent = pick !bundles i in
              bundles :=
                Dmi.create_bundle t
                  ~name:(Printf.sprintf "b%d" i)
                  ~parent ()
                :: !bundles
          | 2 | 3 | 4 ->
              let parent = pick !bundles i in
              scraps :=
                Dmi.create_scrap t
                  ~name:(Printf.sprintf "s%d" i)
                  ~mark_id:(Printf.sprintf "m%d" i)
                  ~parent ()
                :: !scraps
          | 5 when !scraps <> [] ->
              Dmi.move_scrap t (pick !scraps i) { Dmi.x = i; y = i }
          | 6 when !scraps <> [] ->
              Dmi.annotate_scrap t (pick !scraps i) "note"
          | 7 when List.length !scraps >= 2 ->
              ignore
                (Dmi.link_scraps t ~from_:(pick !scraps i)
                   ~to_:(pick !scraps (i + 1))
                   ())
          | 8 when !scraps <> [] ->
              let victim = pick !scraps i in
              Dmi.delete_scrap t victim;
              scraps := List.filter (fun s -> s <> victim) !scraps
          | 9 ->
              let b = pick !bundles i in
              Dmi.update_bundle_name t b "renamed"
          | 10 ->
              ignore
                (Dmi.add_decoration t (pick !bundles i) ~kind:"gridlet" ())
          | 11 ->
              let b = pick !bundles i in
              if not (Dmi.is_template t b) then Dmi.set_template t b true
          | 12 -> (
              let b = pick !bundles i in
              if Dmi.is_template t b then
                match
                  Dmi.instantiate_template t ~template:b
                    ~name:(Printf.sprintf "copy%d" i) ~parent:root
                with
                | Ok copy -> bundles := copy :: !bundles
                | Error _ -> ())
          | 13 ->
              (* A failing transaction must leave no trace. *)
              let before = Dmi.triple_count t in
              (match
                 Dmi.atomically t (fun () ->
                     let b =
                       Dmi.create_bundle t
                         ~name:(Printf.sprintf "tx%d" i)
                         ~parent:root ()
                     in
                     let _ =
                       Dmi.create_scrap t ~name:"tx" ~mark_id:"m" ~parent:b ()
                     in
                     Error ())
               with
              | Error () -> ()
              | Ok _ -> ());
              assert (Dmi.triple_count t = before)
          | _ -> ())
        ops;
      (Dmi.validate t).Si_metamodel.Validate.violations = []
      && List.for_all
           (fun s -> Dmi.scrap_parent t s <> None)
           !scraps)

let props = List.map QCheck_alcotest.to_alcotest [ prop_random_workout ]

let suite =
  [
    ("create & read (Fig 4 pad)", `Quick, test_create_and_read);
    ("creation order preserved", `Quick, test_creation_order_preserved);
    ("parents", `Quick, test_parents);
    ("update operations (Fig 10)", `Quick, test_updates);
    ("id round-trips", `Quick, test_ids_roundtrip);
    ("find_pad & pads", `Quick, test_find_pad_and_pads);
    ("descendant counts", `Quick, test_descendant_count);
    ("reparent bundle", `Quick, test_reparent);
    ("reparent scrap", `Quick, test_reparent_scrap);
    ("delete scrap", `Quick, test_delete_scrap);
    ("delete bundle recursively", `Quick, test_delete_bundle_recursive);
    ("delete root rejected", `Quick, test_delete_root_rejected);
    ("delete pad", `Quick, test_delete_pad);
    ("annotations (§6)", `Quick, test_annotations);
    ("links (§6)", `Quick, test_links);
    ("decorations (Fig 4 gridlet)", `Quick, test_decorations);
    ("templates (§6)", `Quick, test_templates);
    ("template deep copy", `Quick, test_template_deep_copy);
    ("journal records operations", `Quick, test_journal_records_operations);
    ("journal deletion & clear", `Quick, test_journal_deletion_and_clear);
    ("journal XML round-trip", `Quick, test_journal_xml_roundtrip);
    ("journal record codec", `Quick, test_journal_record_codec);
    ("journal observer events", `Quick, test_journal_observer);
    ("journal replay helpers", `Quick, test_journal_replay_helpers);
    ("DMI output always conformant (F9)", `Quick, test_always_valid);
    ("hand-written triples caught", `Quick, test_hand_written_triples_caught);
    ("triples visible via TRIM view", `Quick, test_triples_visible);
    ("save & load", `Quick, test_save_load);
    ("store implementation choice", `Quick, test_store_choice);
  ]
  @ props
