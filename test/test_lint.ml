(* Tests for Si_lint: the rule registry, every built-in rule against a
   minimal fixture triggering exactly its code, the --fix path (with the
   WAL journal replaying to the repaired store), and the acceptance
   combo pad carrying one instance of each defect class. *)

open Si_slimpad
module Trim = Si_triple.Trim
module Triple = Si_triple.Triple
module Model = Si_metamodel.Model
module Vocab = Si_metamodel.Vocab
module Mark = Si_mark.Mark
module Manager = Si_mark.Manager
module Desktop = Si_mark.Desktop
module Resilient = Si_mark.Resilient
module Dmi = Si_slim.Dmi
module Bundle_model = Si_slim.Bundle_model
module Record = Si_wal.Record
module Log = Si_wal.Log

let check = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let codes diags = List.map (fun (d : Si_lint.diagnostic) -> d.Si_lint.code) diags

let count_code c diags =
  List.length
    (List.filter (fun (d : Si_lint.diagnostic) -> d.Si_lint.code = c) diags)

(* Exactly one diagnostic, carrying exactly the expected code. *)
let only_code c diags =
  check "codes" c (String.concat "," (codes diags))

(* ------------------------------------------------------------ fixtures *)

let base_desktop () =
  let desk = Desktop.create () in
  Desktop.add_xml desk "labs.xml"
    (Si_xmlk.Parse.node_exn
       "<report><panel name=\"electrolytes\">\
        <result test=\"Na\">140</result><result test=\"K\">4.2</result>\
        </panel></report>");
  desk

(* A minimal clean app: one pad, one scrap marking into labs.xml. *)
let base_app ?resilient () =
  let desk = base_desktop () in
  let app = Slimpad.create ?resilient desk in
  let pad = Slimpad.new_pad app "Pad" in
  let root = Dmi.root_bundle (Slimpad.dmi app) pad in
  let scrap =
    ok
      (Slimpad.add_scrap app ~parent:root ~name:"K" ~mark_type:"xml"
         ~fields:
           [ ("fileName", "labs.xml");
             ("xmlPath", "/report/panel/result[2]") ]
         ())
  in
  (app, pad, root, scrap)

let ctx ?raw_triples ?wal_path app =
  Si_lint.context ~dmi:(Slimpad.dmi app) ~marks:(Slimpad.marks app)
    ~resilient:(Slimpad.resilient app) ?raw_triples ?wal_path ()

let trim_of app = Dmi.trim (Slimpad.dmi app)
let add app tr = ignore (Trim.add (trim_of app) tr)

let bundle_scrap app = Dmi.model (Slimpad.dmi app)

(* ------------------------------------------------ WAL file fabrication *)

let log_magic = "SIWAL\x00\x00\x01"
let snap_magic = "SISNP\x00\x00\x01"

let u32 n =
  let b = Buffer.create 4 in
  Record.add_u32 b n;
  Buffer.contents b

let frame payload =
  let b = Buffer.create 64 in
  Record.encode b payload;
  Buffer.contents b

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let log_bytes ?(gen = 1) records =
  log_magic ^ u32 gen ^ String.concat "" (List.map frame records)

let snap_bytes ?(gen = 1) payload = snap_magic ^ u32 gen ^ frame payload

let store_doc = "<slimpad-store><triples/><marks/></slimpad-store>"

let temp_wal name =
  let dir = Filename.temp_file "si_lint" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Filename.concat dir name

(* A benign record for logs that must carry no SL304: a journal clear. *)
let benign = Record.encode_fields [ "jx" ]

(* Flip the last byte of a frame so its checksum fails. *)
let corrupt_frame s =
  let b = Bytes.of_string s in
  let i = Bytes.length b - 1 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
  Bytes.to_string b

(* --------------------------------------------------------- the registry *)

let test_registry () =
  let rules = Si_lint.rules () in
  check_int "all builtins registered" (List.length Si_lint.builtin_rules)
    (List.length rules);
  let rule_codes = List.map (fun r -> r.Si_lint.code) rules in
  check_bool "code order" true (List.sort compare rule_codes = rule_codes);
  check_bool "find SL101" true
    ((Option.get (Si_lint.find_rule "SL101")).Si_lint.rule_name
    = "dangling-mark-handle");
  (match
     Si_lint.register_rule
       {
         Si_lint.code = "SL101";
         rule_name = "impostor";
         rule_severity = Si_lint.Info;
         synopsis = "";
         check = (fun _ -> []);
       }
   with
  | Ok () -> Alcotest.fail "duplicate code must be rejected"
  | Error msg ->
      check_bool "error names the code" true
        (Re.execp (Re.compile (Re.str "SL101")) msg))

let test_clean_pad () =
  let app, _, _, _ = base_app () in
  check_int "a clean pad lints clean" 0 (List.length (Si_lint.run (ctx app)))

(* ----------------------------------------------- triple/metamodel rules *)

let test_duplicate_triple () =
  let app, _, _, _ = base_app () in
  let t = Triple.make "s1" "p" (Triple.literal "v") in
  let u = Triple.make "s2" "p" (Triple.literal "v") in
  let diags = Si_lint.run (ctx ~raw_triples:[ t; u; t ] app) in
  only_code "SL001" diags;
  let d = List.hd diags in
  check_bool "fixable" true d.Si_lint.fixable;
  check_bool "severity" true (d.Si_lint.severity = Si_lint.Warning);
  check_bool "counts occurrences" true
    (Re.execp (Re.compile (Re.str "2 times")) d.Si_lint.message)

let test_dangling_connector () =
  let app, _, _, _ = base_app () in
  add app (Triple.make "badconn" Vocab.rdf_type (Triple.resource Vocab.connector));
  add app (Triple.make "badconn" Vocab.predicate (Triple.literal "bad"));
  add app (Triple.make "badconn" Vocab.domain (Triple.resource "ghost"));
  let diags = Si_lint.run (ctx app) in
  only_code "SL002" diags;
  let msg = (List.hd diags).Si_lint.message in
  check_bool "names the bad domain" true
    (Re.execp (Re.compile (Re.str "domain <ghost> is not a construct")) msg);
  check_bool "notes the missing range" true
    (Re.execp (Re.compile (Re.str "no range")) msg)

let test_generalization_cycle () =
  let app, _, _, _ = base_app () in
  add app (Triple.make "cycA" Vocab.rdfs_subclass_of (Triple.resource "cycB"));
  add app (Triple.make "cycB" Vocab.rdfs_subclass_of (Triple.resource "cycA"));
  let diags = Si_lint.run (ctx app) in
  (* One diagnostic per cycle, not one per participant. *)
  only_code "SL003" diags

let test_generalization_self_loop () =
  let app, _, _, _ = base_app () in
  add app (Triple.make "cycA" Vocab.rdfs_subclass_of (Triple.resource "cycA"));
  only_code "SL003" (Si_lint.run (ctx app))

let test_conformance () =
  let app, _, _, scrap = base_app () in
  let sid = Dmi.scrap_id scrap in
  add app (Triple.make sid "frobnicate" (Triple.literal "x"));
  let diags = Si_lint.run (ctx app) in
  only_code "SL004" diags;
  check_bool "names the model" true
    (Re.execp
       (Re.compile (Re.str "model bundle-scrap"))
       (List.hd diags).Si_lint.message)

(* ------------------------------------------------------- slimpad rules *)

let test_dangling_mark_handle () =
  let app, _, _, scrap = base_app () in
  let mark_id = Dmi.scrap_mark_id (Slimpad.dmi app) scrap in
  check_bool "removed" true (Manager.remove_mark (Slimpad.marks app) mark_id);
  let diags = Si_lint.run (ctx app) in
  only_code "SL101" diags;
  check_bool "error severity" true
    ((List.hd diags).Si_lint.severity = Si_lint.Error)

let test_unreachable_bundle () =
  let app, _, _, _ = base_app () in
  let bm = bundle_scrap app in
  let lost = Model.new_instance bm.Bundle_model.model bm.Bundle_model.bundle () in
  Model.set_property bm.Bundle_model.model lost Bundle_model.bundle_name
    (Triple.literal "Lost");
  only_code "SL102" (Si_lint.run (ctx app))

let test_orphan_scrap () =
  let app, _, _, scrap = base_app () in
  let bm = bundle_scrap app in
  let m = bm.Bundle_model.model in
  let mark_id = Dmi.scrap_mark_id (Slimpad.dmi app) scrap in
  let handle = Model.new_instance m bm.Bundle_model.mark_handle () in
  Model.set_property m handle Bundle_model.mark_id (Triple.literal mark_id);
  let orphan = Model.new_instance m bm.Bundle_model.scrap () in
  Model.set_property m orphan Bundle_model.scrap_name (Triple.literal "lone");
  Model.set_property m orphan Bundle_model.scrap_mark (Triple.resource handle);
  only_code "SL103" (Si_lint.run (ctx app))

let test_containment_cycle () =
  let app, _, root, _ = base_app () in
  let b1 = Slimpad.add_bundle app ~parent:root ~name:"B1" () in
  let b2 = Slimpad.add_bundle app ~parent:b1 ~name:"B2" () in
  add app
    (Triple.make (Dmi.bundle_id b2) Bundle_model.nested_bundle
       (Triple.resource (Dmi.bundle_id b1)));
  (* The cycle is reachable from the root, so SL102 stays silent. *)
  only_code "SL104" (Si_lint.run (ctx app))

let test_orphan_layout () =
  let app, _, _, _ = base_app () in
  add app (Triple.make "ghost9" Bundle_model.bundle_pos (Triple.literal "1,2"));
  let diags = Si_lint.run (ctx app) in
  only_code "SL105" diags;
  check_bool "fixable" true (List.hd diags).Si_lint.fixable

(* ---------------------------------------------------------- mark rules *)

let test_mark_address_malformed () =
  let app, _, _, _ = base_app () in
  Manager.put_mark (Slimpad.marks app)
    (Mark.make ~id:"badmark" ~mark_type:"text"
       ~fields:
         [ ("fileName", "notes.txt"); ("offset", "NaN"); ("length", "3") ]
       ());
  let diags = Si_lint.run (ctx app) in
  only_code "SL201" diags

let test_mark_unknown_field () =
  let app, _, _, _ = base_app () in
  Manager.put_mark (Slimpad.marks app)
    (Mark.make ~id:"extra" ~mark_type:"xml"
       ~fields:
         [ ("fileName", "labs.xml");
           ("xmlPath", "/report");
           ("xlmPath", "typo") ]
       ());
  let diags = Si_lint.run (ctx app) in
  only_code "SL201" diags;
  check_bool "flags the typo" true
    (Re.execp
       (Re.compile (Re.str "unknown field \"xlmPath\""))
       (List.hd diags).Si_lint.message)

let test_mark_type_unsupported () =
  let app, _, _, _ = base_app () in
  Manager.put_mark (Slimpad.marks app)
    (Mark.make ~id:"weird" ~mark_type:"exotic" ~fields:[ ("k", "v") ] ());
  let diags = Si_lint.run (ctx app) in
  only_code "SL202" diags;
  check_bool "info severity" true
    ((List.hd diags).Si_lint.severity = Si_lint.Info)

(* Drive a breaker through trip, cool-down, and failed probes until the
   resilience layer quarantines the source (the test_robustness idiom). *)
let small_config =
  {
    (Resilient.default_config ()) with
    Resilient.failure_threshold = 2;
    cooldown = 2;
    max_attempts = 1;
    call_budget = 100;
    quarantine_probes = 2;
    jitter = (fun _ -> 0);
  }

let quarantine_mark app =
  let mgr = Slimpad.marks app in
  Manager.register_exn mgr
    {
      Manager.module_name = "switch";
      handles_type = "switch";
      validate = (fun _ -> Ok ());
      resolve = (fun _ -> Error "source down");
    };
  let mark =
    ok
      (Manager.create_mark mgr ~mark_type:"switch"
         ~fields:[ ("fileName", "switch.doc") ]
         ~excerpt:"cached" ())
  in
  let r = Slimpad.resilient app in
  for _ = 1 to 10 do
    ignore (Resilient.resolve r mgr mark.Mark.mark_id)
  done;
  check_bool "fixture reached quarantine" true
    (Resilient.quarantined r "switch.doc")

let test_mark_quarantined () =
  let resilient = Resilient.create ~config:small_config () in
  let app, _, _, _ = base_app ~resilient () in
  quarantine_mark app;
  let diags = Si_lint.run (ctx app) in
  only_code "SL203" diags;
  check_bool "names the source" true
    (Re.execp
       (Re.compile (Re.str "switch.doc"))
       (List.hd diags).Si_lint.message)

(* ----------------------------------------------------------- WAL rules *)

let wal_only path = Si_lint.context ~wal_path:path ()

let test_wal_bad_header () =
  let path = temp_wal "pad.wal" in
  write_file path "this is not a wal file at all";
  only_code "SL301" (Si_lint.run (wal_only path))

let test_wal_corrupt_mid_log () =
  let path = temp_wal "pad.wal" in
  write_file path
    (log_magic ^ u32 1 ^ frame benign ^ corrupt_frame (frame benign)
   ^ frame benign);
  let diags = Si_lint.run (wal_only path) in
  only_code "SL301" diags;
  check_bool "offset in provenance" true
    (match (List.hd diags).Si_lint.provenance with
    | Some (Si_lint.In_wal { offset = Some o; _ }) -> o > 0
    | _ -> false)

let test_wal_torn_tail () =
  let path = temp_wal "pad.wal" in
  write_file path (log_bytes [ benign ] ^ "torn-tail-garbage");
  let diags = Si_lint.run (wal_only path) in
  only_code "SL302" diags;
  check_bool "warning severity" true
    ((List.hd diags).Si_lint.severity = Si_lint.Warning)

let test_wal_stale_log () =
  let path = temp_wal "pad.wal" in
  write_file path (log_bytes ~gen:1 [ benign ]);
  write_file (Log.snapshot_path path) (snap_bytes ~gen:2 store_doc);
  only_code "SL303" (Si_lint.run (wal_only path))

let test_wal_generation_ahead () =
  (* The opposite skew — log generation ahead of the snapshot — is
     unexplainable by any crash and reports as corruption. *)
  let path = temp_wal "pad.wal" in
  write_file path (log_bytes ~gen:3 [ benign ]);
  write_file (Log.snapshot_path path) (snap_bytes ~gen:1 store_doc);
  only_code "SL301" (Si_lint.run (wal_only path))

let test_wal_unknown_record () =
  let path = temp_wal "pad.wal" in
  write_file path (log_bytes [ Record.encode_fields [ "zz"; "?" ] ]);
  let diags = Si_lint.run (wal_only path) in
  only_code "SL304" diags;
  check_bool "names the tag" true
    (Re.execp
       (Re.compile (Re.str "unknown record tag \"zz\""))
       (List.hd diags).Si_lint.message)

let journal_record seq =
  Dmi.journal_entry_to_record
    { Dmi.seq; op = "op"; target = "t"; detail = "d" }

let test_wal_journal_regression () =
  let path = temp_wal "pad.wal" in
  write_file path (log_bytes [ journal_record 5; journal_record 3 ]);
  let diags = Si_lint.run (wal_only path) in
  only_code "SL304" diags;
  check_bool "explains the regression" true
    (Re.execp
       (Re.compile (Re.str "journal seq 3 not monotone"))
       (List.hd diags).Si_lint.message)

let test_wal_journal_truncation_resets () =
  (* jt/jx legitimately lower the sequence; no diagnostic. *)
  let path = temp_wal "pad.wal" in
  write_file path
    (log_bytes
       [
         journal_record 5;
         Record.encode_fields [ "jt"; "2" ];
         journal_record 3;
         Record.encode_fields [ "jx" ];
         journal_record 1;
       ]);
  check_int "no diagnostics" 0 (List.length (Si_lint.run (wal_only path)))

let test_wal_bad_snapshot_doc () =
  let path = temp_wal "pad.wal" in
  write_file path (log_bytes []);
  write_file (Log.snapshot_path path) (snap_bytes "<oops/>");
  let diags = Si_lint.run (wal_only path) in
  only_code "SL304" diags;
  check_bool "explains" true
    (Re.execp
       (Re.compile (Re.str "not a <slimpad-store>"))
       (List.hd diags).Si_lint.message)

(* A well-formed binary snapshot payload with a little content. *)
let binary_snap_payload () =
  let trim = Trim.create () in
  ignore (Trim.add trim (Triple.make "s" "p" (Triple.literal "v")));
  Trim.to_binary trim

let test_wal_binary_snapshot_clean () =
  let path = temp_wal "pad.wal" in
  write_file path (log_bytes []);
  write_file (Log.snapshot_path path) (snap_bytes (binary_snap_payload ()));
  check_int "no diagnostics" 0 (List.length (Si_lint.run (wal_only path)))

let test_wal_binary_snapshot_crc () =
  (* Flip the last byte of the container (inside a section payload) but
     keep the outer snapshot frame valid: SL305, and SL305 alone. *)
  let path = temp_wal "pad.wal" in
  write_file path (log_bytes []);
  let payload = corrupt_frame (binary_snap_payload ()) in
  write_file (Log.snapshot_path path) (snap_bytes payload);
  let diags = Si_lint.run (wal_only path) in
  only_code "SL305" diags;
  check_bool "error severity" true
    ((List.hd diags).Si_lint.severity = Si_lint.Error)

let test_wal_binary_snapshot_truncated () =
  let path = temp_wal "pad.wal" in
  write_file path (log_bytes []);
  let full = binary_snap_payload () in
  write_file (Log.snapshot_path path)
    (snap_bytes (String.sub full 0 (String.length full - 7)));
  only_code "SL305" (Si_lint.run (wal_only path))

let test_wal_binary_snapshot_version () =
  let path = temp_wal "pad.wal" in
  write_file path (log_bytes []);
  let future = Bytes.of_string (binary_snap_payload ()) in
  Bytes.set future 7 '\x63';
  write_file (Log.snapshot_path path) (snap_bytes (Bytes.to_string future));
  let diags = Si_lint.run (wal_only path) in
  only_code "SL305" diags;
  check_bool "names the version" true
    (Re.execp (Re.compile (Re.str "version")) (List.hd diags).Si_lint.message)

let test_wal_binary_snapshot_missing_section () =
  (* A well-framed container without its triple data: container shape,
     so SL305 (and not SL304). *)
  let path = temp_wal "pad.wal" in
  write_file path (log_bytes []);
  write_file (Log.snapshot_path path)
    (snap_bytes (Si_wal.Binary.encode [ ("marks", "<marks/>") ]));
  let diags = Si_lint.run (wal_only path) in
  only_code "SL305" diags;
  check_bool "explains" true
    (Re.execp
       (Re.compile (Re.str "atoms or triples"))
       (List.hd diags).Si_lint.message)

let test_wal_binary_snapshot_bad_rows () =
  (* The container decodes but its triples section lies about its row
     count: stream contents, so SL304 (and not SL305). *)
  let path = temp_wal "pad.wal" in
  write_file path (log_bytes []);
  let atoms = Buffer.create 16 in
  Record.add_u32 atoms 0;
  let rows = Buffer.create 16 in
  Record.add_u32 rows 5;
  (* five rows claimed, zero provided *)
  write_file (Log.snapshot_path path)
    (snap_bytes
       (Si_wal.Binary.encode
          [
            ("atoms", Buffer.contents atoms); ("triples", Buffer.contents rows);
          ]));
  let diags = Si_lint.run (wal_only path) in
  only_code "SL304" diags

(* ----------------------------------------------------- SL307 hygiene *)

let test_orphan_temp_file () =
  let wal = temp_wal "pad.wal" in
  let dir = Filename.dirname wal in
  let orphan = Filename.concat dir "pad.xml.si-tmp" in
  let oc = open_out orphan in
  output_string oc "<half a store";
  close_out oc;
  let c = Si_lint.context ~workspace:dir () in
  let diags = Si_lint.run c in
  check_int "one diagnostic" 1 (List.length diags);
  let d = List.hd diags in
  check "code" "SL307" d.Si_lint.code;
  check_bool "warning" true (d.Si_lint.severity = Si_lint.Warning);
  check_bool "fixable" true d.Si_lint.fixable;
  (* A bare-file target has no workspace to walk; the scan falls back
     to the would-be temp of the store file itself. *)
  let diags_file =
    Si_lint.run (Si_lint.context ~store_file:(Filename.concat dir "pad.xml") ())
  in
  check_int "sibling fallback finds it too" 1 (List.length diags_file);
  let report = ok (Si_lint.fix c diags) in
  check_int "deleted" 1 report.Si_lint.removed_temp_files;
  check_bool "gone from disk" true (not (Sys.file_exists orphan));
  check_int "re-lint clean" 0 (List.length (Si_lint.run c));
  (* Fixing the same diagnostics again: the file is already gone, and
     that is success, not an error. *)
  let report2 = ok (Si_lint.fix c diags) in
  check_int "second fix is a no-op" 0 report2.Si_lint.removed_temp_files

(* --------------------------------------------------------------- fixes *)

let test_fix_removes_orphan_layout () =
  let app, _, _, _ = base_app () in
  add app (Triple.make "ghost9" Bundle_model.bundle_pos (Triple.literal "1,2"));
  add app (Triple.make "ghost9" Bundle_model.scrap_pos (Triple.literal "3,4"));
  let t = Triple.make "s" "p" (Triple.literal "v") in
  let c = ctx ~raw_triples:[ t; t ] app in
  let diags = Si_lint.run c in
  check_int "two orphans + one duplicate" 3 (List.length diags);
  let report = ok (Si_lint.fix c diags) in
  check_int "removed" 2 report.Si_lint.removed_layout_triples;
  check_int "duplicates observed" 1 report.Si_lint.duplicate_triples;
  (* Re-lint: the live store is clean (duplicates exist only in the
     file, which the caller re-saves). *)
  check_int "re-lint clean" 0 (List.length (Si_lint.run (ctx app)))

let test_fix_nothing_without_dmi () =
  let diags =
    Si_lint.run
      (Si_lint.context
         ~raw_triples:
           [
             Triple.make "s" "p" (Triple.literal "v");
             Triple.make "s" "p" (Triple.literal "v");
           ]
         ())
  in
  (* Duplicate-only fixes need no live store. *)
  let report = ok (Si_lint.fix (Si_lint.context ()) diags) in
  check_int "duplicates" 1 report.Si_lint.duplicate_triples;
  check_int "nothing removed" 0 report.Si_lint.removed_layout_triples

let test_fix_journaled_replays_fixed () =
  (* The acceptance property: --fix repairs go through a Trim
     transaction, so the WAL journal records them and replays to the
     fixed store. *)
  let path = temp_wal "pad.wal" in
  let app, _, _, _ = base_app () in
  ok (Slimpad.enable_wal app path);
  add app (Triple.make "ghost9" Bundle_model.bundle_pos (Triple.literal "1,2"));
  let c = ctx app in
  let diags = Si_lint.run c in
  check_int "one orphan" 1 (List.length diags);
  let report = ok (Si_lint.fix c diags) in
  check_int "removed" 1 report.Si_lint.removed_layout_triples;
  ok (Slimpad.wal_close app);
  (* Recover from the log alone: the orphan's add and the fix's remove
     both replay, landing on the repaired store. *)
  let dump = ok (Result.map_error Log.error_to_string (Log.dump path)) in
  let app2, stats = ok (Slimpad.restore_offline (base_desktop ()) dump) in
  check_bool "replayed both mutations" true (stats.Slimpad.restored >= 2);
  check_int "skipped" 0 stats.Slimpad.skipped;
  check_int "replays to the fixed state" 0
    (List.length (Si_lint.run (ctx ~wal_path:path app2)))

(* ----------------------------------------------------------- reporters *)

let test_reporters () =
  let app, _, _, _ = base_app () in
  add app
    (Triple.make "ghost9" Bundle_model.bundle_pos (Triple.literal "a\"b\n"));
  let diags = Si_lint.run (ctx app) in
  let text = Si_lint.to_text diags in
  check_bool "text has the code" true
    (Re.execp (Re.compile (Re.str "SL105 warning orphan-layout-triple")) text);
  check_bool "text ends with the summary" true
    (Re.execp (Re.compile (Re.str "0 error(s), 1 warning(s), 0 info")) text);
  let json = Si_lint.to_json diags in
  check_bool "json escapes quotes and newlines" true
    (Re.execp (Re.compile (Re.str "a\\\"b\\n")) json);
  check_bool "json is a flat array" true
    (String.length json > 2
    && json.[0] = '['
    && json.[String.length json - 2] = ']');
  check "empty text" "no diagnostics\n" (Si_lint.to_text []);
  check "empty json" "[\n\n]\n" (Si_lint.to_json []);
  check_bool "max severity" true
    (Si_lint.max_severity diags = Some Si_lint.Warning);
  check_bool "max severity empty" true (Si_lint.max_severity [] = None)

(* ------------------------------------------------------ acceptance combo *)

(* One pad seeded with an instance of each defect class. SL301 is the
   one code that cannot coexist with the others in a single log scan:
   mid-log corruption stops the walk before a torn tail, and either
   generation skew excludes the other — so the combo carries
   {SL302, SL303, SL304} and SL301 has its own fixtures above. *)
let test_acceptance_combo () =
  let resilient = Resilient.create ~config:small_config () in
  let app, _, root, scrap = base_app ~resilient () in
  let t = Slimpad.dmi app in
  let bm = bundle_scrap app in
  let m = bm.Bundle_model.model in
  (* SL002 *)
  add app (Triple.make "badconn" Vocab.rdf_type (Triple.resource Vocab.connector));
  add app (Triple.make "badconn" Vocab.predicate (Triple.literal "bad"));
  add app (Triple.make "badconn" Vocab.domain (Triple.resource "ghost"));
  add app (Triple.make "badconn" Vocab.range (Triple.resource "ghost"));
  (* SL003 *)
  add app (Triple.make "cycA" Vocab.rdfs_subclass_of (Triple.resource "cycB"));
  add app (Triple.make "cycB" Vocab.rdfs_subclass_of (Triple.resource "cycA"));
  (* SL004 *)
  let sid = Dmi.scrap_id scrap in
  add app (Triple.make sid "frobnicate" (Triple.literal "x"));
  (* SL101: a second scrap whose mark is then deleted *)
  let doomed =
    ok
      (Slimpad.add_scrap app ~parent:root ~name:"Na" ~mark_type:"xml"
         ~fields:
           [ ("fileName", "labs.xml");
             ("xmlPath", "/report/panel/result[1]") ]
         ())
  in
  let doomed_mark = Dmi.scrap_mark_id t doomed in
  ignore (Manager.remove_mark (Slimpad.marks app) doomed_mark);
  (* SL102 *)
  let lost = Model.new_instance m bm.Bundle_model.bundle () in
  Model.set_property m lost Bundle_model.bundle_name (Triple.literal "Lost");
  (* SL103 *)
  let good_mark = Dmi.scrap_mark_id t scrap in
  let handle = Model.new_instance m bm.Bundle_model.mark_handle () in
  Model.set_property m handle Bundle_model.mark_id (Triple.literal good_mark);
  let orphan = Model.new_instance m bm.Bundle_model.scrap () in
  Model.set_property m orphan Bundle_model.scrap_name (Triple.literal "lone");
  Model.set_property m orphan Bundle_model.scrap_mark (Triple.resource handle);
  (* SL104 *)
  let b1 = Slimpad.add_bundle app ~parent:root ~name:"B1" () in
  let b2 = Slimpad.add_bundle app ~parent:b1 ~name:"B2" () in
  add app
    (Triple.make (Dmi.bundle_id b2) Bundle_model.nested_bundle
       (Triple.resource (Dmi.bundle_id b1)));
  (* SL105 *)
  add app (Triple.make "ghost9" Bundle_model.bundle_pos (Triple.literal "1,2"));
  (* SL201 *)
  Manager.put_mark (Slimpad.marks app)
    (Mark.make ~id:"badmark" ~mark_type:"text"
       ~fields:
         [ ("fileName", "notes.txt"); ("offset", "NaN"); ("length", "3") ]
       ());
  (* SL202 *)
  Manager.put_mark (Slimpad.marks app)
    (Mark.make ~id:"weird" ~mark_type:"exotic" ~fields:[ ("k", "v") ] ());
  (* SL203 *)
  quarantine_mark app;
  (* SL001: the raw file carries one duplicated triple *)
  let dup = Triple.make "s" "p" (Triple.literal "v") in
  (* SL302 + SL303 + SL304: stale log with an unknown record and a torn
     tail, superseded by a valid generation-2 snapshot *)
  let wal_path = temp_wal "pad.wal" in
  write_file wal_path
    (log_bytes ~gen:1 [ Record.encode_fields [ "zz" ] ] ^ "torn");
  write_file (Log.snapshot_path wal_path) (snap_bytes ~gen:2 store_doc);
  let diags = Si_lint.run (ctx ~raw_triples:[ dup; dup ] ~wal_path app) in
  let expected =
    [
      "SL001"; "SL002"; "SL003"; "SL004"; "SL101"; "SL102"; "SL103";
      "SL104"; "SL105"; "SL201"; "SL202"; "SL203"; "SL302"; "SL303";
      "SL304";
    ]
  in
  List.iter
    (fun c ->
      check_int (Printf.sprintf "%s exactly once" c) 1 (count_code c diags))
    expected;
  check_int "nothing unexpected" (List.length expected) (List.length diags);
  check_bool "SL301 cannot coexist here" true (count_code "SL301" diags = 0)

let suite =
  [
    ("registry", `Quick, test_registry);
    ("clean pad lints clean", `Quick, test_clean_pad);
    ("SL001 duplicate triple", `Quick, test_duplicate_triple);
    ("SL002 dangling connector", `Quick, test_dangling_connector);
    ("SL003 generalization cycle", `Quick, test_generalization_cycle);
    ("SL003 self loop", `Quick, test_generalization_self_loop);
    ("SL004 conformance violation", `Quick, test_conformance);
    ("SL101 dangling mark handle", `Quick, test_dangling_mark_handle);
    ("SL102 unreachable bundle", `Quick, test_unreachable_bundle);
    ("SL103 orphan scrap", `Quick, test_orphan_scrap);
    ("SL104 containment cycle", `Quick, test_containment_cycle);
    ("SL105 orphan layout triple", `Quick, test_orphan_layout);
    ("SL201 malformed mark address", `Quick, test_mark_address_malformed);
    ("SL201 unknown mark field", `Quick, test_mark_unknown_field);
    ("SL202 unsupported mark type", `Quick, test_mark_type_unsupported);
    ("SL203 quarantined mark", `Quick, test_mark_quarantined);
    ("SL301 bad header", `Quick, test_wal_bad_header);
    ("SL301 mid-log corruption", `Quick, test_wal_corrupt_mid_log);
    ("SL302 torn tail", `Quick, test_wal_torn_tail);
    ("SL303 stale log", `Quick, test_wal_stale_log);
    ("SL301 generation ahead", `Quick, test_wal_generation_ahead);
    ("SL304 unknown record", `Quick, test_wal_unknown_record);
    ("SL304 journal regression", `Quick, test_wal_journal_regression);
    ("journal resets are monotone", `Quick, test_wal_journal_truncation_resets);
    ("SL304 bad snapshot document", `Quick, test_wal_bad_snapshot_doc);
    ("SL305 clean binary snapshot", `Quick, test_wal_binary_snapshot_clean);
    ("SL305 section CRC mismatch", `Quick, test_wal_binary_snapshot_crc);
    ("SL305 truncated container", `Quick, test_wal_binary_snapshot_truncated);
    ("SL305 unsupported version", `Quick, test_wal_binary_snapshot_version);
    ("SL305 missing triple sections", `Quick,
     test_wal_binary_snapshot_missing_section);
    ("SL304 binary rows undecodable", `Quick,
     test_wal_binary_snapshot_bad_rows);
    ("SL307 orphan temp file", `Quick, test_orphan_temp_file);
    ("fix removes orphan layout triples", `Quick, test_fix_removes_orphan_layout);
    ("fix without a live store", `Quick, test_fix_nothing_without_dmi);
    ("fix is journaled and replays", `Quick, test_fix_journaled_replays_fixed);
    ("reporters", `Quick, test_reporters);
    ("acceptance: every defect class once", `Quick, test_acceptance_combo);
  ]
