(* Failure-injection tests: corrupt, truncated and adversarial inputs must
   produce Error values (or parse-tolerant results for HTML), never
   exceptions. The superimposed layer lives on files owned by other
   applications (paper §1: data "outside the box"), so malformed input is
   a normal condition, not an edge case. *)

module Trim = Si_triple.Trim
module Dmi = Si_slim.Dmi
module Desktop = Si_mark.Desktop
module Manager = Si_mark.Manager
module Mark = Si_mark.Mark
module Resilient = Si_mark.Resilient
module Faults = Si_workload.Faults
module Slimpad = Si_slimpad.Slimpad

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* A well-formed store file to mutilate. *)
let store_file () =
  let t = Dmi.create () in
  let pad = Dmi.create_slimpad t ~pad_name:"P" in
  let root = Dmi.root_bundle t pad in
  for i = 1 to 5 do
    ignore
      (Dmi.create_scrap t
         ~name:(Printf.sprintf "s%d" i)
         ~mark_id:(Printf.sprintf "m%d" i)
         ~parent:root ())
  done;
  Si_xmlk.Print.to_string ~decl:true (Dmi.to_xml t)

let no_exception f =
  match f () with _ -> true | exception _ -> false

let test_truncated_store_files () =
  let full = store_file () in
  let n = String.length full in
  (* Cut the document at many points; every prefix must load cleanly or
     fail cleanly. *)
  List.iter
    (fun fraction ->
      let len = n * fraction / 100 in
      let mutilated = String.sub full 0 len in
      check_bool
        (Printf.sprintf "truncated at %d%%" fraction)
        true
        (no_exception (fun () -> ignore (Dmi.of_xml
           (match Si_xmlk.Parse.node mutilated with
            | Ok r -> r
            | Error _ -> Si_xmlk.Node.element "garbage" [])))))
    [ 0; 10; 25; 50; 75; 90; 99 ];
  (* A prefix is (almost) never a valid XML document. *)
  check_bool "90% truncation fails to parse" true
    (Result.is_error (Si_xmlk.Parse.node (String.sub full 0 (n * 9 / 10))))

let test_bitflipped_store_files () =
  let full = store_file () in
  (* Corrupt single characters at various positions; parsing/loading must
     not raise. *)
  List.iter
    (fun pos ->
      let bytes = Bytes.of_string full in
      Bytes.set bytes (pos mod String.length full) '\000';
      let corrupted = Bytes.to_string bytes in
      check_bool
        (Printf.sprintf "corrupted at %d" pos)
        true
        (no_exception (fun () ->
             match Si_xmlk.Parse.node corrupted with
             | Ok root -> ignore (Dmi.of_xml root)
             | Error _ -> ())))
    [ 3; 50; 200; 500; 900 ]

let test_wrong_document_kinds () =
  (* Loading one format's file as another fails with Error, not raise. *)
  let workbook_xml =
    Si_spreadsheet.Workbook.to_xml (Si_spreadsheet.Workbook.create ())
  in
  check_bool "workbook as wordproc" true
    (Result.is_error (Si_wordproc.Wordproc.of_xml workbook_xml));
  check_bool "workbook as slides" true
    (Result.is_error (Si_slides.Slides.of_xml workbook_xml));
  check_bool "workbook as pdf" true
    (Result.is_error (Si_pdfdoc.Pdfdoc.of_xml workbook_xml));
  check_bool "workbook as trim" true
    (Result.is_error (Trim.of_xml workbook_xml));
  check_bool "workbook as rdf" true
    (Result.is_error (Si_triple.Rdf_xml.of_xml workbook_xml))

let test_missing_files () =
  check_bool "textdoc" true
    (Result.is_error (Si_textdoc.Textdoc.from_file "/nonexistent/f.txt"));
  check_bool "workbook" true
    (Result.is_error (Si_spreadsheet.Workbook.load "/nonexistent/f.xml"));
  check_bool "trim" true (Result.is_error (Trim.load "/nonexistent/f.xml"));
  check_bool "slimpad" true
    (Result.is_error
       (Slimpad.load (Desktop.create ()) "/nonexistent/pad.xml"))

let test_store_semantic_garbage () =
  (* Well-formed XML with semantically broken content: loads as triples
     (TRIM is schema-less) and the validator reports the breakage. *)
  let broken =
    Si_xmlk.Parse.node_exn
      "<triples count=\"2\">\
       <t s=\"scrap-1\" p=\"rdf:type\"><r>model:bundle-scrap/Scrap</r></t>\
       <t s=\"scrap-1\" p=\"scrapName\"><r>not-a-literal</r></t>\
       </triples>"
  in
  match Dmi.of_xml broken with
  | Error e -> Alcotest.failf "should load (schema-later): %s" e
  | Ok t ->
      let report = Dmi.validate t in
      check_bool "violations reported" true
        (report.Si_metamodel.Validate.violations <> [])

let test_marks_file_with_duplicate_ids () =
  let dup =
    Si_xmlk.Parse.node_exn
      "<marks count=\"2\">\
       <mark id=\"m1\" type=\"text\"><field name=\"fileName\">a</field></mark>\
       <mark id=\"m1\" type=\"text\"><field name=\"fileName\">b</field></mark>\
       </marks>"
  in
  let mgr = Si_mark.Manager.create () in
  check_bool "duplicate ids rejected" true
    (Result.is_error (Si_mark.Manager.of_xml mgr dup))

let test_adversarial_formulas () =
  (* Deeply nested and pathological formulas parse or fail, never raise,
     and evaluation terminates. *)
  let deep n = String.concat "" (List.init n (fun _ -> "(")) ^ "1"
               ^ String.concat "" (List.init n (fun _ -> ")")) in
  check_bool "deep parens parse" true
    (no_exception (fun () -> ignore (Si_spreadsheet.Formula.parse (deep 500))));
  let wb = Si_spreadsheet.Workbook.create () in
  (* A 300-cell dependency chain evaluates without stack trouble. *)
  Si_spreadsheet.Workbook.set wb "A1" "1";
  for i = 2 to 300 do
    Si_spreadsheet.Workbook.set wb
      (Printf.sprintf "A%d" i)
      (Printf.sprintf "=A%d + 1" (i - 1))
  done;
  Alcotest.(check string) "chain" "300" (Si_spreadsheet.Workbook.display wb "A300");
  (* Self-referential ranges terminate with #CYCLE!. *)
  Si_spreadsheet.Workbook.set wb "B1" "=SUM(A1:B9)";
  check_bool "cyclic range terminates" true
    (no_exception (fun () ->
         ignore (Si_spreadsheet.Workbook.display wb "B1")))

let test_huge_flat_xml () =
  (* 20k siblings: parser and path machinery stay iterative enough. *)
  let doc =
    "<r>" ^ String.concat "" (List.init 20_000 (fun i ->
        Printf.sprintf "<e i=\"%d\"/>" i)) ^ "</r>"
  in
  let root = Si_xmlk.Parse.node_exn doc in
  check_int "all parsed" 20_000 (List.length (Si_xmlk.Node.children root));
  let p = Si_xmlk.Path.of_string_exn "/r/e[19999]" in
  check_bool "path into the deep end" true
    (Si_xmlk.Path.resolve_element root p <> None)

let test_html_pathological_nesting () =
  (* 5k unclosed nested divs must not blow the stack at parse, text
     extraction, or printing. *)
  let soup = String.concat "" (List.init 5_000 (fun _ -> "<div>x")) in
  check_bool "survives" true
    (no_exception (fun () ->
         let doc = Si_htmldoc.Htmldoc.parse soup in
         ignore (Si_htmldoc.Htmldoc.to_text doc)))

let test_query_pathological () =
  let trim = Trim.create () in
  for i = 0 to 99 do
    ignore
      (Trim.add trim
         (Si_triple.Triple.make "hub" "spoke"
            (Si_triple.Triple.resource (Printf.sprintf "n%d" i))))
  done;
  (* A 3-way self-join on a hub fans out to 10^6 candidate rows; it must
     complete (and dedupe) without raising. *)
  let q =
    Si_query.Query.parse_exn
      "select ?a where { <hub> spoke ?a . <hub> spoke ?b . <hub> spoke ?c }"
  in
  check_int "deduped" 100 (List.length (Si_query.Query.run trim q))

(* ===================== resilient base-source access ==================== *)

(* A manager with one mark of a synthetic type whose base source is a
   switch we control: the smallest possible flaky base application. *)
let flaky_fixture ?(config = Resilient.default_config ()) () =
  let failing = ref true in
  let mgr = Manager.create () in
  Manager.register_exn mgr
    {
      Manager.module_name = "switch";
      handles_type = "switch";
      validate = (fun _ -> Ok ());
      resolve =
        (fun _ ->
          if !failing then Error "source down"
          else
            Ok
              {
                Mark.res_excerpt = "live";
                res_context = "live";
                res_display = "live";
                res_source = "switch.doc";
              });
    };
  let mark =
    match
      Manager.create_mark mgr ~mark_type:"switch"
        ~fields:[ ("fileName", "switch.doc") ]
        ~excerpt:"cached" ()
    with
    | Ok m -> m
    | Error e -> Alcotest.fail e
  in
  (Resilient.create ~config (), mgr, mark.Mark.mark_id, failing)

let no_jitter = (fun _ -> 0 : int -> int)

let small_config =
  {
    (Resilient.default_config ()) with
    Resilient.failure_threshold = 2;
    cooldown = 2;
    max_attempts = 1;
    call_budget = 100;
    quarantine_probes = 2;
    jitter = no_jitter;
  }

let state_of r source =
  match Resilient.breaker_for_source r source with
  | Some i -> i.Resilient.state
  | None -> Alcotest.fail "no breaker for source"

let degraded_with r mgr id pred =
  match Resilient.resolve r mgr id with
  | Ok (Resilient.Degraded { excerpt; fault }) ->
      check_str "degraded serves the cached excerpt" "cached" excerpt;
      check_bool "expected fault" true (pred fault)
  | Ok (Resilient.Fresh _) -> Alcotest.fail "expected Degraded, got Fresh"
  | Error e -> Alcotest.fail (Manager.resolve_error_to_string e)

let test_breaker_lifecycle () =
  let r, mgr, id, failing = flaky_fixture ~config:small_config () in
  (* Closed: two failing calls (one attempt each) trip the breaker. *)
  degraded_with r mgr id (function
    | Resilient.Attempts_exhausted _ -> true
    | _ -> false);
  check_bool "still closed after 1 failure" true
    (state_of r "switch.doc" = Resilient.Closed);
  degraded_with r mgr id (function
    | Resilient.Attempts_exhausted _ -> true
    | _ -> false);
  check_bool "open after threshold" true
    (state_of r "switch.doc" = Resilient.Open);
  (* Open: cooldown calls fast-fail without touching the source. *)
  let info () =
    Option.get (Resilient.breaker_for_source r "switch.doc")
  in
  let failures_before = (info ()).Resilient.total_failures in
  degraded_with r mgr id (function
    | Resilient.Breaker_open _ -> true
    | _ -> false);
  degraded_with r mgr id (function
    | Resilient.Breaker_open _ -> true
    | _ -> false);
  check_int "fast-fails never reached the source" failures_before
    (info ()).Resilient.total_failures;
  check_int "rejections counted" 2 (info ()).Resilient.rejected;
  (* Cool-down elapsed; the source recovers; the half-open probe closes
     the breaker again. *)
  failing := false;
  (match Resilient.resolve r mgr id with
  | Ok (Resilient.Fresh res) -> check_str "live again" "live" res.Mark.res_excerpt
  | Ok (Resilient.Degraded _) -> Alcotest.fail "probe should have succeeded"
  | Error e -> Alcotest.fail (Manager.resolve_error_to_string e));
  check_bool "closed after successful probe" true
    (state_of r "switch.doc" = Resilient.Closed)

let test_quarantine_after_dead_probe_window () =
  let r, mgr, id, _failing = flaky_fixture ~config:small_config () in
  (* The source never recovers: trip, then fail probes across two whole
     cool-down windows. *)
  let exhaust_window () =
    (* cooldown fast-fails, then one failed half-open probe. *)
    for _ = 1 to small_config.Resilient.cooldown + 1 do
      ignore (Resilient.resolve r mgr id)
    done
  in
  ignore (Resilient.resolve r mgr id);
  ignore (Resilient.resolve r mgr id);
  (* tripped *)
  check_bool "not yet quarantined" false (Resilient.quarantined r "switch.doc");
  exhaust_window ();
  exhaust_window ();
  check_bool "quarantined after repeated failed probes" true
    (Resilient.quarantined r "switch.doc");
  (match Resilient.check_drift r mgr id with
  | Ok (Manager.Quarantined (Manager.Resolution_failed { source; _ })) ->
      check_str "quarantine names the source" "switch.doc" source
  | Ok _ -> Alcotest.fail "expected Quarantined"
  | Error e -> Alcotest.fail (Manager.resolve_error_to_string e));
  (* The operator fixes the world: reset forgets the quarantine. *)
  Resilient.reset r;
  check_bool "reset clears quarantine" false
    (Resilient.quarantined r "switch.doc")

let test_backoff_schedule_replays () =
  (* Same seed, same schedule: the retry delays of two independent layers
     are identical, exponential, and capped. *)
  let config () =
    {
      (Resilient.default_config ()) with
      Resilient.failure_threshold = 100;
      max_attempts = 5;
      call_budget = 1000;
      backoff_base = 1;
      backoff_cap = 4;
      jitter = Resilient.deterministic_jitter ~seed:42;
    }
  in
  let run () =
    let r, mgr, id, _ = flaky_fixture ~config:(config ()) () in
    match Resilient.resolve r mgr id with
    | Ok (Resilient.Degraded
            { fault = Resilient.Attempts_exhausted { attempts; backoffs; _ }; _ })
      ->
        (attempts, backoffs)
    | _ -> Alcotest.fail "expected exhausted attempts"
  in
  let attempts, backoffs = run () in
  check_int "all attempts used" 5 attempts;
  check_int "a delay between each pair of attempts" 4 (List.length backoffs);
  List.iteri
    (fun i d ->
      let base = min 4 (1 lsl i) in
      check_bool
        (Printf.sprintf "delay %d in [base, base + jitter bound)" i)
        true
        (d >= base && d < base + base + 1))
    backoffs;
  let attempts2, backoffs2 = run () in
  check_int "replay: attempts" attempts attempts2;
  check_bool "replay: identical schedule" true (backoffs = backoffs2)

let test_call_budget_bounds_one_call () =
  (* Big backoffs against a small budget: the call stops early with
     Budget_exhausted instead of spending its full attempt allowance. *)
  let config =
    {
      (Resilient.default_config ()) with
      Resilient.failure_threshold = 1000;
      max_attempts = 100;
      call_budget = 5;
      backoff_base = 4;
      backoff_cap = 8;
      jitter = no_jitter;
    }
  in
  let r, mgr, id, _ = flaky_fixture ~config () in
  degraded_with r mgr id (function
    | Resilient.Budget_exhausted { attempts; spent; _ } ->
        attempts < 100 && spent <= 5 + 8
    | _ -> false)

let test_fault_schedules () =
  let opener name = Ok ("opened " ^ name) in
  let run inj n =
    List.init n (fun _ ->
        Result.is_ok (Faults.wrap_opener inj opener "doc.txt"))
  in
  (* Fail_first: a scripted outage with an end. *)
  let inj = Faults.create (Faults.Fail_first 3) in
  check_bool "first 3 fail, then recovery" true
    (run inj 5 = [ false; false; false; true; true ]);
  check_int "calls counted" 5 (Faults.calls inj);
  check_int "injections counted" 3 (Faults.injected inj);
  (* Dead and Healthy are the constant schedules. *)
  check_bool "dead never answers" true
    (List.for_all not (run (Faults.create Faults.Dead) 10));
  check_bool "healthy always answers" true
    (List.for_all Fun.id (run (Faults.create Faults.Healthy) 10));
  (* Fail_rate is a seeded coin: deterministic replay, sensitive to the
     seed, and extremes behave like constants. *)
  let flips seed =
    run (Faults.create ~seed (Faults.Fail_rate 0.5)) 100
  in
  check_bool "same seed, same outage" true (flips 1 = flips 1);
  check_bool "different seed, different outage" true (flips 1 <> flips 2);
  check_bool "rate 0 never fails" true
    (List.for_all Fun.id (run (Faults.create (Faults.Fail_rate 0.0)) 50));
  check_bool "rate 1 always fails" true
    (List.for_all not (run (Faults.create (Faults.Fail_rate 1.0)) 50));
  (* reset replays the same coin. *)
  let inj = Faults.create ~seed:7 (Faults.Fail_rate 0.5) in
  let first = run inj 50 in
  Faults.reset inj;
  check_bool "reset replays" true (run inj 50 = first);
  (* [only] scopes the outage to one document. *)
  let inj = Faults.create ~only:[ "a.txt" ] Faults.Dead in
  check_bool "named doc fails" true
    (Result.is_error (Faults.wrap_opener inj opener "a.txt"));
  check_bool "other docs pass through" true
    (Result.is_ok (Faults.wrap_opener inj opener "b.txt"));
  check_int "pass-throughs not counted" 1 (Faults.calls inj)

let test_partial_marks_load_is_all_or_nothing () =
  (* of_xml hitting a bad entry mid-file must not leave the earlier
     entries behind. *)
  let mgr = Manager.create () in
  (match
     Manager.add_mark mgr
       (Mark.make ~id:"keep" ~mark_type:"text"
          ~fields:[ ("fileName", "a.txt") ]
          ())
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let partial =
    Si_xmlk.Parse.node_exn
      "<marks count=\"3\">\
       <mark id=\"new-1\" type=\"text\"><field name=\"fileName\">b</field></mark>\
       <mark id=\"new-2\" type=\"text\"><field name=\"fileName\">c</field></mark>\
       <mark type=\"text\"><field name=\"fileName\">d</field></mark>\
       </marks>"
  in
  check_bool "load fails on the malformed third mark" true
    (Result.is_error (Manager.of_xml mgr partial));
  check_int "nothing from the failed load stuck" 1 (Manager.mark_count mgr);
  check_bool "pre-existing mark intact" true (Manager.mark mgr "keep" <> None);
  (* Same when the collision is against a pre-existing mark. *)
  let collides =
    Si_xmlk.Parse.node_exn
      "<marks count=\"2\">\
       <mark id=\"new-3\" type=\"text\"><field name=\"fileName\">e</field></mark>\
       <mark id=\"keep\" type=\"text\"><field name=\"fileName\">f</field></mark>\
       </marks>"
  in
  check_bool "duplicate against existing rejected" true
    (Result.is_error (Manager.of_xml mgr collides));
  check_int "still nothing new" 1 (Manager.mark_count mgr)

let test_torn_saves_never_corrupt () =
  let dir = Filename.temp_file "torn" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let path = Filename.concat dir "store.xml" in
  let trim = Trim.create () in
  ignore
    (Trim.add trim
       (Si_triple.Triple.make "s" "p" (Si_triple.Triple.literal "v")));
  (match Trim.save trim path with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* A crash mid-write leaves a torn temp file next to an intact store:
     loading the store ignores the leftover. *)
  let tmp = Si_xmlk.Print.temp_path path in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc "<triples count=\"99\"><t s=\"x\"");
  check_bool "store loads despite torn temp" true
    (match Trim.load path with
    | Ok t2 -> Trim.equal_contents trim t2
    | Error _ -> false);
  (* The next save replaces the leftover and the store survives whole. *)
  (match Trim.save trim path with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_bool "temp renamed away by the new save" false (Sys.file_exists tmp);
  check_bool "still loads" true (Result.is_ok (Trim.load path));
  (* The workspace loader never mistakes a temp file for a document. *)
  check_bool "temp suffix recognized" true
    (Si_xmlk.Print.is_temp_path "pad.xml.si-tmp");
  check_bool "real files not flagged" false
    (Si_xmlk.Print.is_temp_path "pad.xml");
  (* Unwritable target: an Error, never an exception, and no temp litter. *)
  (match Trim.save trim (Filename.concat dir "no/such/dir/store.xml") with
  | Ok () -> Alcotest.fail "save into a missing directory should fail"
  | Error msg -> check_bool "error mentions the path" true (msg <> ""));
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let test_thousand_mark_pad_under_faults () =
  (* The acceptance scenario: a 1000-scrap pad over two text sources, one
     failing half the time. Every resolution must come back Fresh or
     Degraded-with-cached-excerpt — zero exceptions, zero data loss — and
     the sweep must terminate (bounded retries, tripping breaker). *)
  let desk = Desktop.create () in
  Desktop.add_text desk "flaky.txt"
    (Si_textdoc.Textdoc.of_lines [ "hello world" ]);
  Desktop.add_text desk "stable.txt"
    (Si_textdoc.Textdoc.of_lines [ "hello world" ]);
  let faults = Faults.create ~seed:11 ~only:[ "flaky.txt" ] (Faults.Fail_rate 0.5) in
  let app = Slimpad.create ~wrap:(Faults.wrap faults) desk in
  let mgr = Slimpad.marks app in
  let t = Slimpad.dmi app in
  let pad = Slimpad.new_pad app "load" in
  let root = Dmi.root_bundle t pad in
  let scraps =
    List.init 1000 (fun i ->
        let file = if i mod 2 = 0 then "flaky.txt" else "stable.txt" in
        let mark =
          match
            Manager.create_mark mgr ~mark_type:"text"
              ~fields:
                [ ("fileName", file); ("offset", "0"); ("length", "5");
                  ("selected", "hello") ]
              ~excerpt:"hello" ()
          with
          | Ok m -> m
          | Error e -> Alcotest.fail e
        in
        Dmi.create_scrap t
          ~name:(Printf.sprintf "s%d" i)
          ~mark_id:mark.Mark.mark_id ~parent:root ())
  in
  check_int "all scraps built" 1000 (List.length scraps);
  (* Every outcome is typed; degraded ones carry the cached excerpt. *)
  let fresh = ref 0 and degraded = ref 0 in
  List.iter
    (fun s ->
      match Slimpad.resolve_scrap app s with
      | Ok (Si_mark.Resilient.Fresh res) ->
          incr fresh;
          check_str "live content" "hello" res.Mark.res_excerpt
      | Ok (Si_mark.Resilient.Degraded { excerpt; _ }) ->
          incr degraded;
          check_str "cached excerpt survives" "hello" excerpt
      | Error e -> Alcotest.fail (Manager.resolve_error_to_string e))
    scraps;
  check_int "every scrap accounted for" 1000 (!fresh + !degraded);
  check_bool "the stable source always answered" true (!fresh >= 500);
  (* A refresh sweep terminates and loses nothing. *)
  ignore (Slimpad.refresh_pad app pad);
  List.iter
    (fun s ->
      match Slimpad.scrap_mark app s with
      | Some m -> check_str "excerpt intact after refresh" "hello" m.Mark.excerpt
      | None -> Alcotest.fail "mark vanished")
    scraps;
  let h = Slimpad.pad_health app pad in
  check_int "health covers the pad" 1000
    (h.Slimpad.fresh + h.Slimpad.degraded + h.Slimpad.quarantined);
  check_int "no dangling marks" 0 h.Slimpad.dangling;
  (* The breakers saw both sources and are observable. *)
  let infos = Slimpad.health app in
  check_bool "flaky source has a breaker" true
    (List.exists
       (fun i -> i.Si_mark.Resilient.source = "flaky.txt")
       infos);
  check_bool "stable source stayed closed" true
    (List.exists
       (fun i ->
         i.Si_mark.Resilient.source = "stable.txt"
         && i.Si_mark.Resilient.state = Si_mark.Resilient.Closed
         && i.Si_mark.Resilient.total_failures = 0)
       infos)

let test_degraded_scraps_render_distinctly () =
  let desk = Desktop.create () in
  Desktop.add_text desk "gone.txt"
    (Si_textdoc.Textdoc.of_lines [ "hello world" ]);
  let faults = Faults.create Faults.Dead in
  let app = Slimpad.create ~wrap:(Faults.wrap faults) desk in
  let t = Slimpad.dmi app in
  let pad = Slimpad.new_pad app "p" in
  let root = Dmi.root_bundle t pad in
  let mark =
    match
      Manager.create_mark (Slimpad.marks app) ~mark_type:"text"
        ~fields:
          [ ("fileName", "gone.txt"); ("offset", "0"); ("length", "5");
            ("selected", "hello") ]
        ~excerpt:"hello" ()
    with
    | Ok m -> m
    | Error e -> Alcotest.fail e
  in
  let scrap =
    Dmi.create_scrap t ~name:"s" ~mark_id:mark.Mark.mark_id ~parent:root ()
  in
  let line = Slimpad.render_scrap_line app scrap in
  check_bool "text rendering flags degradation" true
    (no_exception (fun () -> ()) &&
     (let re = Re.compile (Re.str "DEGRADED cached \"hello\"") in
      Re.execp re line));
  let html = Slimpad.render_pad_html app pad in
  check_bool "html rendering uses the degraded class" true
    (let re = Re.compile (Re.str "class=\"scrap degraded\"") in
     Re.execp re html)

let suite =
  [
    ("truncated store files", `Quick, test_truncated_store_files);
    ("bit-flipped store files", `Quick, test_bitflipped_store_files);
    ("wrong document kinds", `Quick, test_wrong_document_kinds);
    ("missing files", `Quick, test_missing_files);
    ("semantic garbage is validated, not crashed on", `Quick,
     test_store_semantic_garbage);
    ("duplicate mark ids rejected", `Quick, test_marks_file_with_duplicate_ids);
    ("adversarial formulas", `Quick, test_adversarial_formulas);
    ("huge flat XML", `Quick, test_huge_flat_xml);
    ("pathological HTML nesting", `Quick, test_html_pathological_nesting);
    ("pathological query join", `Quick, test_query_pathological);
    ("breaker lifecycle", `Quick, test_breaker_lifecycle);
    ("quarantine after a dead probe window", `Quick,
     test_quarantine_after_dead_probe_window);
    ("backoff schedule replays from its seed", `Quick,
     test_backoff_schedule_replays);
    ("call budget bounds one call", `Quick, test_call_budget_bounds_one_call);
    ("fault schedules", `Quick, test_fault_schedules);
    ("partial marks load is all-or-nothing", `Quick,
     test_partial_marks_load_is_all_or_nothing);
    ("torn saves never corrupt", `Quick, test_torn_saves_never_corrupt);
    ("1000-mark pad under 50% faults", `Quick,
     test_thousand_mark_pad_under_faults);
    ("degraded scraps render distinctly", `Quick,
     test_degraded_scraps_render_distinctly);
  ]
