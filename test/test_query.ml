(* Tests for the query language over TRIM (paper §6; experiment E7). *)

open Si_query.Query
module Trim = Si_triple.Trim
module Triple = Si_triple.Triple

let check = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A small bundle-scrap-shaped world. *)
let world () =
  let trim = Trim.create () in
  Trim.add_all trim
    [
      Triple.make "b1" "rdf:type" (Triple.resource "Bundle");
      Triple.make "b1" "bundleName" (Triple.literal "John Smith");
      Triple.make "b1" "bundleContent" (Triple.resource "s1");
      Triple.make "b1" "bundleContent" (Triple.resource "s2");
      Triple.make "b2" "rdf:type" (Triple.resource "Bundle");
      Triple.make "b2" "bundleName" (Triple.literal "Jane Doe");
      Triple.make "b2" "bundleContent" (Triple.resource "s3");
      Triple.make "s1" "rdf:type" (Triple.resource "Scrap");
      Triple.make "s1" "scrapName" (Triple.literal "Dopamine 5");
      Triple.make "s1" "scrapMark" (Triple.resource "h1");
      Triple.make "s2" "rdf:type" (Triple.resource "Scrap");
      Triple.make "s2" "scrapName" (Triple.literal "Fentanyl");
      Triple.make "s2" "scrapMark" (Triple.resource "h2");
      Triple.make "s3" "rdf:type" (Triple.resource "Scrap");
      Triple.make "s3" "scrapName" (Triple.literal "Dopamine 10");
      Triple.make "s3" "scrapMark" (Triple.resource "h3");
      Triple.make "h1" "markId" (Triple.literal "excel-1");
      Triple.make "h2" "markId" (Triple.literal "excel-2");
      Triple.make "h3" "markId" (Triple.literal "xml-1");
    ];
  trim

let literal_values var bindings =
  List.filter_map
    (fun b ->
      match List.assoc_opt var b with
      | Some (Triple.Literal l) -> Some l
      | _ -> None)
    bindings

let test_single_pattern () =
  let trim = world () in
  let q = query [ pat (Var "b") (Literal "bundleName") (Var "n") ] in
  let results = run trim q in
  check_int "two bundles" 2 (List.length results);
  Alcotest.(check (list string))
    "names sorted" [ "Jane Doe"; "John Smith" ]
    (List.sort compare (literal_values "n" results))

let test_join () =
  let trim = world () in
  (* Scrap names in John Smith's bundle. *)
  let q =
    query
      [
        pat (Var "b") (Literal "bundleName") (Literal "John Smith");
        pat (Var "b") (Literal "bundleContent") (Var "s");
        pat (Var "s") (Literal "scrapName") (Var "n");
      ]
      ~select:[ "n" ]
  in
  Alcotest.(check (list string))
    "joined" [ "Dopamine 5"; "Fentanyl" ]
    (List.sort compare (literal_values "n" (run trim q)))

let test_three_hop_join () =
  let trim = world () in
  (* Bundle name -> scrap -> handle -> mark id. *)
  let q =
    parse_exn
      "select ?bn ?m where { ?b bundleName ?bn . ?b bundleContent ?s . \
       ?s scrapMark ?h . ?h markId ?m } filter prefix(?m, \"excel\")"
  in
  let results = run trim q in
  check_int "two excel marks" 2 (List.length results);
  check_bool "all from John Smith" true
    (List.for_all (fun l -> l = "John Smith") (literal_values "bn" results))

let test_fixed_resource () =
  let trim = world () in
  let q = query [ pat (Resource "s3") (Literal "scrapName") (Var "n") ] in
  Alcotest.(check (list string)) "s3" [ "Dopamine 10" ]
    (literal_values "n" (run trim q))

let test_wildcard () =
  let trim = world () in
  let q = query [ pat (Var "s") (Literal "scrapMark") Wildcard ] in
  check_int "scraps with any mark" 3 (List.length (run trim q))

let test_variable_predicate () =
  let trim = world () in
  let q = query [ pat (Resource "s1") (Var "p") (Var "o") ] in
  check_int "all properties of s1" 3 (List.length (run trim q))

let test_filters () =
  let trim = world () in
  let base = [ pat (Var "s") (Literal "scrapName") (Var "n") ] in
  check_int "contains" 2
    (count trim (query base ~filters:[ Contains ("n", "Dopamine") ]));
  check_int "equals" 1
    (count trim (query base ~filters:[ Equals ("n", "Fentanyl") ]));
  check_int "prefix" 2
    (count trim (query base ~filters:[ Prefix ("n", "Dopamine") ]));
  check_int "no match" 0
    (count trim (query base ~filters:[ Contains ("n", "insulin") ]));
  let q2 =
    query
      [ pat (Var "s") (Literal "scrapMark") (Var "h") ]
      ~filters:[ Bound_to_resource "h" ]
  in
  check_int "isResource" 3 (count trim q2)

let test_no_results () =
  let trim = world () in
  check_int "empty" 0
    (count trim (query [ pat (Var "x") (Literal "nope") (Var "y") ]))

let test_duplicate_elimination () =
  let trim = world () in
  (* Projecting only the bundle name over its two scraps collapses. *)
  let q =
    query
      [
        pat (Var "b") (Literal "bundleName") (Var "n");
        pat (Var "b") (Literal "bundleContent") (Var "s");
      ]
      ~select:[ "n" ]
  in
  Alcotest.(check (list string))
    "distinct" [ "Jane Doe"; "John Smith" ]
    (List.sort compare (literal_values "n" (run trim q)))

let test_parse_roundtrip () =
  let inputs =
    [
      "select ?n where { ?b bundleName ?n }";
      "select ?a ?b where { ?a <rdf:type> <Bundle> . ?a bundleName ?b }";
      "where { ?s scrapMark _ }";
      "select * where { ?s ?p ?o } filter contains(?o, \"x\")";
      "select ?m where { ?h markId ?m } filter isResource(?h) filter \
       prefix(?m, \"excel\")";
    ]
  in
  List.iter
    (fun input ->
      match parse input with
      | Error e -> Alcotest.failf "parse %S failed: %s" input e
      | Ok q -> (
          (* Round-trip: printing and reparsing yields the same query. *)
          match parse (to_string q) with
          | Ok q2 ->
              check ("roundtrip " ^ input) (to_string q) (to_string q2)
          | Error e -> Alcotest.failf "reparse failed: %s" e))
    inputs

let test_parse_errors () =
  List.iter
    (fun input ->
      match parse input with
      | Ok _ -> Alcotest.failf "expected parse error on %S" input
      | Error _ -> ())
    [
      ""; "select ?x"; "where { }"; "where { ?a }"; "where { ?a b }";
      "where { ?a b ?c } filter bogus(?c, \"x\")";
      "where { ?a b ?c } garbage";
      "where { ?a b \"unterminated }";
    ]

let test_parsed_equals_constructed () =
  let trim = world () in
  let parsed =
    parse_exn "select ?n where { ?b bundleName ?n }"
  in
  let constructed =
    query ~select:[ "n" ] [ pat (Var "b") (Literal "bundleName") (Var "n") ]
  in
  check_bool "same results" true (run trim parsed = run trim constructed)

let test_query_bound_variable_join_order () =
  let trim = world () in
  (* The join works regardless of pattern order (bindings flow through). *)
  let q1 =
    parse_exn
      "select ?m where { ?h markId ?m . ?s scrapMark ?h . ?s scrapName \
       \"Fentanyl\" }"
  in
  Alcotest.(check (list string)) "reverse order" [ "excel-2" ]
    (literal_values "m" (run trim q1))

let test_order_by_and_limit () =
  let trim = world () in
  let base = "select ?n where { ?s scrapName ?n }" in
  let names q =
    literal_values "n" (run trim (parse_exn q))
  in
  Alcotest.(check (list string))
    "ascending" [ "Dopamine 10"; "Dopamine 5"; "Fentanyl" ]
    (names (base ^ " order by ?n"));
  Alcotest.(check (list string))
    "descending" [ "Fentanyl"; "Dopamine 5"; "Dopamine 10" ]
    (names (base ^ " order by ?n desc"));
  Alcotest.(check (list string))
    "limit" [ "Dopamine 10"; "Dopamine 5" ]
    (names (base ^ " order by ?n limit 2"));
  Alcotest.(check (list string))
    "limit 0" []
    (names (base ^ " limit 0"));
  (* order/limit survive printing. *)
  let q = parse_exn (base ^ " order by ?n desc limit 1") in
  Alcotest.(check (list string)) "roundtrip semantics" [ "Fentanyl" ]
    (literal_values "n" (run trim (parse_exn (to_string q))));
  (* Malformed clauses rejected. *)
  List.iter
    (fun s ->
      match parse s with
      | Ok _ -> Alcotest.failf "expected error on %S" s
      | Error _ -> ())
    [
      base ^ " order ?n"; base ^ " order by n"; base ^ " limit";
      base ^ " limit ?x"; base ^ " limit -3";
    ]

let test_order_with_filter_combined () =
  let trim = world () in
  let q =
    parse_exn
      "select ?n where { ?s scrapName ?n } filter contains(?n, \"Dopamine\") \
       order by ?n desc limit 1"
  in
  Alcotest.(check (list string)) "combined" [ "Dopamine 5" ]
    (literal_values "n" (run trim q))

let test_binding_to_string () =
  let b = [ ("n", Triple.Literal "x"); ("r", Triple.Resource "y") ] in
  check "rendering" "?n=\"x\", ?r=<y>" (binding_to_string b)

let test_optimize_semantics () =
  let trim = world () in
  (* A deliberately bad ordering: unrestricted pattern first. *)
  let q =
    parse_exn
      "select ?bn ?m where { ?s ?p ?o . ?b bundleName ?bn . ?b bundleContent \
       ?s2 . ?s2 scrapMark ?h . ?h markId ?m }"
  in
  let optimized = optimize trim q in
  check_bool "same results" true
    (List.sort compare (run trim q) = List.sort compare (run trim optimized));
  (* The optimizer moves the wildcard pattern off the front. *)
  check_bool "wildcard not first" true
    (match optimized.patterns with
    | { subj = Var _; pred = Var _; obj = Var _ } :: _ -> false
    | _ -> true)

let test_optimize_prefers_constants () =
  let trim = world () in
  let q =
    query
      [
        pat (Var "b") (Literal "bundleContent") (Var "s");
        pat (Var "b") (Literal "bundleName") (Literal "Jane Doe");
      ]
  in
  let optimized = optimize trim q in
  (* The fully-constant-object pattern (1 match) should come first. *)
  (match optimized.patterns with
  | { obj = Literal "Jane Doe"; _ } :: _ -> ()
  | _ -> Alcotest.fail "expected the selective pattern first");
  check_bool "results unchanged" true
    (List.sort compare (run trim q)
    = List.sort compare (run trim optimized))

let test_optimize_avoids_cross_products () =
  let trim = world () in
  (* Patterns sharing no variables with the start: the connected one must
     follow its anchor even if larger. *)
  let q =
    parse_exn
      "select ?m where { ?h markId ?m . ?s scrapName \"Fentanyl\" . ?s \
       scrapMark ?h }"
  in
  let optimized = optimize trim q in
  (* After the anchor (scrapName = Fentanyl), the next pattern must share
     ?s, not jump to the disconnected markId pattern. *)
  (match optimized.patterns with
  | _anchor :: { pred = Literal "scrapMark"; _ } :: _ -> ()
  | _ -> Alcotest.fail "expected the connected pattern second");
  Alcotest.(check (list string)) "results" [ "excel-2" ]
    (literal_values "m" (run trim optimized))

(* A store wrapper that counts [select] calls, to observe how much of the
   store the executor actually enumerates. *)
let select_calls = ref 0

module Counting_store = struct
  module B = Si_triple.Store.List_store

  type t = B.t

  let name = "counting"
  let create = B.create
  let add = B.add
  let remove = B.remove
  let mem = B.mem
  let size = B.size
  let clear = B.clear

  let select ?subject ?predicate ?object_ s =
    incr select_calls;
    B.select ?subject ?predicate ?object_ s

  let count = B.count
  let exists = B.exists
  let iter = B.iter
  let fold = B.fold
  let to_list = B.to_list
  let add_all = B.add_all
end

let test_limit_stops_enumerating () =
  (* A 2-pattern join over 100 subjects: the full run probes the store
     once for the first pattern plus once per candidate subject; limit 1
     must stop after the first complete binding. *)
  let trim = Trim.create ~store:(module Counting_store : Si_triple.Store.S) () in
  for i = 0 to 99 do
    ignore
      (Trim.add trim
         (Triple.make (Printf.sprintf "s%d" i) "p1"
            (Triple.literal (Printf.sprintf "a%d" i))));
    ignore
      (Trim.add trim
         (Triple.make (Printf.sprintf "s%d" i) "p2"
            (Triple.literal (Printf.sprintf "b%d" i))))
  done;
  let q limit =
    query ?limit
      [
        pat (Var "s") (Literal "p1") (Var "a");
        pat (Var "s") (Literal "p2") (Var "b");
      ]
  in
  select_calls := 0;
  let full = run trim (q None) in
  let full_calls = !select_calls in
  check_int "full results" 100 (List.length full);
  select_calls := 0;
  let limited = run trim (q (Some 1)) in
  let limited_calls = !select_calls in
  check_int "limited results" 1 (List.length limited);
  check_bool
    (Printf.sprintf "limit-1 store accesses (%d) << full scan (%d)"
       limited_calls full_calls)
    true
    (limited_calls <= 3 && full_calls >= 100);
  check_bool "limited bindings come from the full result" true
    (List.for_all (fun b -> List.mem b full) limited)

let test_limit_without_order_is_distinct_subset () =
  let trim = world () in
  let full = run trim (parse_exn "select ?n where { ?s scrapName ?n }") in
  let two = run trim (parse_exn "select ?n where { ?s scrapName ?n } limit 2") in
  check_int "two results" 2 (List.length two);
  check_bool "distinct" true
    (List.length (List.sort_uniq compare two) = List.length two);
  check_bool "subset of the full result" true
    (List.for_all (fun b -> List.mem b full) two)

let test_contains_edge_cases () =
  let trim = Trim.create () in
  Trim.add_all trim
    [
      Triple.make "s1" "name" (Triple.literal "abc");
      Triple.make "s2" "name" (Triple.literal "aab");
      Triple.make "s3" "name" (Triple.literal "xyzabc");
      Triple.make "s4" "name" (Triple.literal "ababa");
      Triple.make "s5" "name" (Triple.literal "");
    ];
  let n needle =
    count trim
      (query
         [ pat (Var "s") (Literal "name") (Var "n") ]
         ~filters:[ Contains ("n", needle) ])
  in
  check_int "empty needle matches all" 5 (n "");
  check_int "needle at start and middle" 2 (n "abc");
  check_int "overlapping needle" 1 (n "aba");
  check_int "needle at very end" 1 (n "zabc");
  check_int "whole-string needle" 1 (n "xyzabc");
  check_int "needle longer than any value" 0 (n "xyzabcd");
  check_int "absent needle" 0 (n "q")

(* Property: order_by + limit k is exactly the first k of the full ordered
   result (the bounded top-k selection must agree with a full sort). *)
let prop_topk_matches_full_sort =
  QCheck.Test.make ~name:"order_by + limit = take k of full ordered result"
    ~count:150
    QCheck.(triple (int_range 0 40) (int_range 0 8) bool)
    (fun (n, k, descending) ->
      let trim = Trim.create () in
      for i = 0 to n - 1 do
        ignore
          (Trim.add trim
             (Triple.make
                (Printf.sprintf "r%d" (i mod 7))
                "p"
                (Triple.literal (Printf.sprintf "v%d" (i mod 11)))))
      done;
      let order = if descending then Descending "o" else Ascending "o" in
      let base = [ pat (Var "s") (Literal "p") (Var "o") ] in
      let full = run trim (query base ~order_by:order) in
      let topk = run trim (query base ~order_by:order ~limit:k) in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: rest -> x :: take (n - 1) rest
      in
      topk = take k full)

(* Property: a query of one pattern with all variables returns exactly the
   store's triples. *)
let prop_select_all =
  QCheck.Test.make ~name:"?s ?p ?o enumerates the store" ~count:100
    QCheck.(int_range 0 30)
    (fun n ->
      let trim = Trim.create () in
      for i = 0 to n - 1 do
        ignore
          (Trim.add trim
             (Triple.make
                (Printf.sprintf "r%d" (i mod 7))
                (Printf.sprintf "p%d" (i mod 3))
                (Triple.literal (string_of_int i))))
      done;
      count trim (query [ pat (Var "s") (Var "p") (Var "o") ]) = Trim.size trim)

(* Property: optimization never changes results. *)
let prop_optimize_preserves =
  QCheck.Test.make ~name:"optimize preserves query results" ~count:100
    QCheck.(pair (int_range 0 30) (int_range 0 4))
    (fun (n, shape) ->
      let trim = Trim.create () in
      for i = 0 to n - 1 do
        ignore
          (Trim.add trim
             (Triple.make
                (Printf.sprintf "r%d" (i mod 5))
                (Printf.sprintf "p%d" (i mod 3))
                (if i mod 2 = 0 then Triple.literal (string_of_int i)
                 else Triple.resource (Printf.sprintf "r%d" ((i + 1) mod 5)))))
      done;
      let q =
        match shape with
        | 0 -> query [ pat (Var "s") (Var "p") (Var "o") ]
        | 1 ->
            query
              [
                pat (Var "s") (Literal "p0") (Var "o");
                pat (Var "o") (Var "p") (Var "x");
              ]
        | 2 ->
            query
              [
                pat (Var "a") (Var "p") (Var "b");
                pat (Var "c") (Literal "p1") (Var "d");
              ]
        | 3 ->
            query
              [
                pat (Resource "r0") (Var "p") (Var "o");
                pat (Var "o") (Literal "p2") (Var "x");
                pat (Var "x") (Var "q") (Var "y");
              ]
        | _ ->
            query
              [
                pat (Var "s") (Literal "p1") (Var "o");
                pat (Var "s") (Literal "p2") (Var "o2");
              ]
      in
      List.sort compare (run trim q)
      = List.sort compare (run trim (optimize trim q)))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_select_all; prop_optimize_preserves; prop_topk_matches_full_sort ]

let suite =
  [
    ("single pattern", `Quick, test_single_pattern);
    ("two-pattern join", `Quick, test_join);
    ("three-hop join + filter", `Quick, test_three_hop_join);
    ("fixed resource subject", `Quick, test_fixed_resource);
    ("wildcard", `Quick, test_wildcard);
    ("variable predicate", `Quick, test_variable_predicate);
    ("filters", `Quick, test_filters);
    ("no results", `Quick, test_no_results);
    ("duplicate elimination", `Quick, test_duplicate_elimination);
    ("parse round-trip", `Quick, test_parse_roundtrip);
    ("parse errors", `Quick, test_parse_errors);
    ("parsed = constructed", `Quick, test_parsed_equals_constructed);
    ("join order independence", `Quick, test_query_bound_variable_join_order);
    ("optimize: semantics preserved", `Quick, test_optimize_semantics);
    ("optimize: constants first", `Quick, test_optimize_prefers_constants);
    ("optimize: no cross products", `Quick, test_optimize_avoids_cross_products);
    ("order by & limit", `Quick, test_order_by_and_limit);
    ("order + filter + limit", `Quick, test_order_with_filter_combined);
    ("limit stops enumerating the store", `Quick, test_limit_stops_enumerating);
    ("limit without order: distinct subset", `Quick,
     test_limit_without_order_is_distinct_subset);
    ("contains filter edge cases", `Quick, test_contains_edge_cases);
    ("binding rendering", `Quick, test_binding_to_string);
  ]
  @ props
