(* Tests for Si_obs: the histogram bucket layout and merge algebra
   (pinned by QCheck properties — the bench --compare gate rides on
   them), span nesting across domains over the sharded store, and the
   snapshot JSON round-trip behind `slimpad stats --json`. *)

module Counter = Si_obs.Counter
module Histogram = Si_obs.Histogram
module Span = Si_obs.Span
module Registry = Si_obs.Registry
module Report = Si_obs.Report
module Json = Si_obs.Json
module Store = Si_triple.Store
module Triple = Si_triple.Triple

let check = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------ bucket layout *)

let test_bucket_layout () =
  check_int "zero lands in bucket 0" 0 (Histogram.index_of 0);
  check_int "negative clamps to bucket 0" 0 (Histogram.index_of (-17));
  check_int "top bucket holds max_int"
    (Histogram.bucket_count - 1)
    (Histogram.index_of max_int);
  (* Buckets tile the value range with no gaps or overlaps: bounds are
     strictly increasing and each bound belongs to its own bucket. *)
  for i = 0 to Histogram.bucket_count - 2 do
    let lo = Histogram.lower_bound i and hi = Histogram.lower_bound (i + 1) in
    check_bool (Printf.sprintf "bound %d < bound %d" i (i + 1)) true (lo < hi);
    check_int (Printf.sprintf "bound of %d is in %d" i i) i
      (Histogram.index_of lo);
    check_int
      (Printf.sprintf "last value of %d is in %d" i i)
      i
      (Histogram.index_of (hi - 1))
  done

let nonneg =
  (* Cover every octave, not just small ints: mask into [0, max_int]. *)
  QCheck.Gen.(
    oneof [ int_range 0 4096; map (fun i -> i land max_int) int ])

let arbitrary_value = QCheck.make nonneg ~print:string_of_int

let prop_bucket_contains_value =
  QCheck.Test.make ~name:"value lies within its bucket's bounds" ~count:1000
    arbitrary_value (fun v ->
      let i = Histogram.index_of v in
      Histogram.lower_bound i <= v
      && (i = Histogram.bucket_count - 1 || v < Histogram.lower_bound (i + 1)))

let prop_index_monotone =
  QCheck.Test.make ~name:"index_of is monotone" ~count:1000
    (QCheck.pair arbitrary_value arbitrary_value) (fun (v, w) ->
      let lo = min v w and hi = max v w in
      Histogram.index_of lo <= Histogram.index_of hi)

let prop_relative_error_bounded =
  QCheck.Test.make ~name:"bucket representative within ~25% of value"
    ~count:1000 arbitrary_value (fun v ->
      QCheck.assume (v > 0 && v < max_int / 2);
      let r = Histogram.representative (Histogram.index_of v) in
      Float.abs (r -. float_of_int v) /. float_of_int v <= 0.25)

let values_list =
  QCheck.Gen.(list_size (int_range 0 200) nonneg)

let arbitrary_values =
  QCheck.make values_list ~print:(fun l ->
      String.concat "," (List.map string_of_int l))

let hist_of values =
  let h = Histogram.create () in
  List.iter (Histogram.add h) values;
  h

let prop_merge_is_bulk_add =
  QCheck.Test.make
    ~name:"merge equals adding both value sets to one histogram" ~count:300
    (QCheck.pair arbitrary_values arbitrary_values) (fun (a, b) ->
      let merged = Histogram.merge (hist_of a) (hist_of b) in
      Histogram.summary merged = Histogram.summary (hist_of (a @ b)))

let prop_summary_roundtrip =
  QCheck.Test.make ~name:"summary/of_summary round-trip" ~count:300
    arbitrary_values (fun values ->
      let s = Histogram.summary (hist_of values) in
      Histogram.summary (Histogram.of_summary s) = s)

let prop_quantiles_within_range =
  QCheck.Test.make ~name:"quantiles stay within [min, max]" ~count:300
    (QCheck.pair arbitrary_values (QCheck.float_range 0. 1.))
    (fun (values, q) ->
      QCheck.assume (values <> []);
      let h = hist_of values in
      let v = Histogram.quantile h q in
      float_of_int (Histogram.min_value h) <= v
      && v <= float_of_int (Histogram.max_value h))

(* ------------------------------------------------------------- spans *)

(* Run a thunk under tracing with a deterministic tick clock, then
   return what it left in the span buffer. Everything global (clock,
   switch, buffer) is restored even when the thunk raises. *)
let trace_with_ticks f =
  let tick = Atomic.make 0 in
  Si_obs.Clock.set (fun () -> Atomic.fetch_and_add tick 1);
  Span.set_capacity 8192;
  ignore (Span.drain ());
  Span.enable ();
  Fun.protect
    ~finally:(fun () ->
      Span.disable ();
      Si_obs.Clock.reset ();
      Span.set_capacity 4096)
    (fun () ->
      f ();
      Span.disable ();
      Span.drain ())

let span_exn what = function
  | Some s -> s
  | None -> Alcotest.failf "%s: span not recorded" what

let find_span spans layer op =
  List.find_opt
    (fun (s : Span.finished) -> s.layer = layer && s.op = op)
    spans

let test_span_nesting () =
  let spans =
    trace_with_ticks (fun () ->
        Span.with_ ~layer:"a" ~op:"outer" (fun () ->
            Span.with_ ~layer:"b" ~op:"inner" (fun () -> ());
            Span.with_ ~layer:"b" ~op:"later" (fun () -> ()));
        Span.with_ ~layer:"c" ~op:"solo" (fun () -> ()))
  in
  check_int "four spans" 4 (List.length spans);
  let outer = span_exn "outer" (find_span spans "a" "outer") in
  let inner = span_exn "inner" (find_span spans "b" "inner") in
  let later = span_exn "later" (find_span spans "b" "later") in
  let solo = span_exn "solo" (find_span spans "c" "solo") in
  check_bool "outer is a root" true (outer.parent = None);
  check_bool "solo is a root" true (solo.parent = None);
  check_bool "inner nests under outer" true (inner.parent = Some outer.id);
  check_bool "later nests under outer" true (later.parent = Some outer.id);
  check_bool "children ordered by start" true
    (inner.start_ns < later.start_ns);
  check_bool "outer covers inner" true
    (outer.start_ns < inner.start_ns && inner.stop_ns <= outer.stop_ns);
  check "tree rendering" "a.outer\n  b.inner\n  b.later\nc.solo\n"
    (Report.span_tree ~timings:false spans)

let test_span_survives_raise () =
  let spans =
    trace_with_ticks (fun () ->
        try Span.with_ ~layer:"a" ~op:"boom" (fun () -> failwith "boom")
        with Failure _ -> ())
  in
  let s = span_exn "boom" (find_span spans "a" "boom") in
  check_bool "raising span still recorded" true (s.stop_ns > s.start_ns)

(* Four domains each run an outer span wrapping inserts into one shared
   sharded store. Per-domain parent stacks must keep the nesting
   straight: every span's parent lives on the same domain, and the
   instrumented triple.insert spans nest under the domain's own outer
   span, never a sibling's. *)
let test_span_domains () =
  let per_domain = 25 in
  let spans =
    trace_with_ticks (fun () ->
        let trim =
          Si_triple.Trim.create ~store:(module Store.Sharded_store) ()
        in
        let worker d () =
          Span.with_ ~layer:"test" ~op:(Printf.sprintf "worker-%d" d)
            (fun () ->
              for i = 0 to per_domain - 1 do
                ignore
                  (Si_triple.Trim.add trim
                     (Triple.make
                        (Printf.sprintf "r%d-%d" d i)
                        "name"
                        (Triple.literal "x")))
              done)
        in
        let domains = List.init 4 (fun d -> Domain.spawn (worker d)) in
        List.iter Domain.join domains)
  in
  let outers =
    List.filter (fun (s : Span.finished) -> s.layer = "test") spans
  in
  check_int "one outer span per domain" 4 (List.length outers);
  let domains_seen =
    List.sort_uniq compare
      (List.map (fun (s : Span.finished) -> s.domain) outers)
  in
  check_int "outers ran on distinct domains" 4 (List.length domains_seen);
  let by_id = Hashtbl.create 64 in
  List.iter (fun (s : Span.finished) -> Hashtbl.replace by_id s.id s) spans;
  List.iter
    (fun (s : Span.finished) ->
      match s.parent with
      | None -> ()
      | Some p -> (
          match Hashtbl.find_opt by_id p with
          | None -> Alcotest.failf "span %d has unknown parent %d" s.id p
          | Some parent ->
              check_int
                (Printf.sprintf "span %d parent on same domain" s.id)
                parent.domain s.domain))
    spans;
  List.iter
    (fun (outer : Span.finished) ->
      let children =
        List.filter
          (fun (s : Span.finished) -> s.parent = Some outer.id)
          spans
      in
      check_int
        (Printf.sprintf "inserts nested under %s" outer.op)
        per_domain (List.length children);
      List.iter
        (fun (c : Span.finished) ->
          check (Printf.sprintf "child of %s is an insert" outer.op)
            "triple.insert"
            (c.layer ^ "." ^ c.op))
        children)
    outers

let test_span_ring_drops_oldest () =
  let dropped = ref 0 in
  let spans =
    trace_with_ticks (fun () ->
        Span.set_capacity 8;
        for i = 0 to 19 do
          Span.with_ ~layer:"ring" ~op:(string_of_int i) (fun () -> ())
        done;
        (* [drain] resets the overflow count, so read it first. *)
        dropped := Span.dropped ())
  in
  check_int "ring keeps the newest capacity spans" 8 (List.length spans);
  check "newest retained" "19"
    (match List.rev spans with s :: _ -> s.op | [] -> "");
  check_int "overflow counted" 12 !dropped

(* ------------------------------------------------- registry & reports *)

let test_registry_identity () =
  let c1 = Registry.counter "test_obs.ident" in
  let c2 = Registry.counter "test_obs.ident" in
  check_bool "counter get-or-create returns the same handle" true (c1 == c2);
  Counter.add c1 3;
  check_int "shared handle shares the count" 3 (Counter.get c2);
  Counter.reset c1;
  let h1 = Registry.histogram "test_obs.ident" in
  let h2 = Registry.histogram "test_obs.ident" in
  check_bool "histogram get-or-create returns the same handle" true (h1 == h2)

let sample_snapshot () =
  let h = hist_of [ 3; 17; 170; 1_000; 65_536; 1_000_000 ] in
  let deep = hist_of (List.init 500 (fun i -> (i * i) + 1)) in
  {
    Registry.counters =
      [ ("triple.insert", 547); ("wal.append", 12); ("wal.fsync", 1) ];
    gauges = [ ("replica.lag", 4) ];
    histograms =
      [ ("query.run", Histogram.summary h); ("wal.fsync", Histogram.summary deep) ];
  }

let test_stats_json_roundtrip () =
  let snap = sample_snapshot () in
  let text = Json.to_string ~pretty:true (Report.to_json snap) in
  let parsed =
    match Json.of_string text with
    | Ok j -> j
    | Error e -> Alcotest.failf "stats JSON does not parse back: %s" e
  in
  match Report.of_json parsed with
  | Error e -> Alcotest.failf "stats JSON does not decode: %s" e
  | Ok snap' ->
      check_bool "counters round-trip" true (snap.counters = snap'.counters);
      check_bool "gauges round-trip" true (snap.gauges = snap'.gauges);
      check_bool "histogram summaries round-trip" true
        (snap.histograms = snap'.histograms)

let prop_report_json_roundtrip =
  QCheck.Test.make ~name:"random snapshots round-trip through JSON"
    ~count:200 arbitrary_values (fun values ->
      let snap =
        {
          Registry.counters = [ ("a.b", List.length values) ];
          gauges = [];
          histograms =
            (if values = [] then []
             else [ ("a.lat", Histogram.summary (hist_of values)) ]);
        }
      in
      match Json.of_string (Json.to_string (Report.to_json snap)) with
      | Error _ -> false
      | Ok j -> (
          match Report.of_json j with
          | Error _ -> false
          | Ok snap' ->
              snap'.counters = snap.counters
              && snap'.histograms = snap.histograms))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

let test_prometheus_shape () =
  let out = Report.to_prometheus (sample_snapshot ()) in
  check_bool "counter line present" true
    (contains out "si_events_total{name=\"triple.insert\"} 547");
  check_bool "+Inf bucket present" true (contains out "le=\"+Inf\"");
  check_bool "histogram sum present" true
    (contains out "si_latency_ns_sum{name=\"query.run\"}")

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_bucket_contains_value;
      prop_index_monotone;
      prop_relative_error_bounded;
      prop_merge_is_bulk_add;
      prop_summary_roundtrip;
      prop_quantiles_within_range;
      prop_report_json_roundtrip;
    ]

let suite =
  [
    ("histogram: bucket layout", `Quick, test_bucket_layout);
    ("span: lexical nesting & tree", `Quick, test_span_nesting);
    ("span: recorded despite raise", `Quick, test_span_survives_raise);
    ("span: per-domain stacks over sharded store", `Quick, test_span_domains);
    ("span: ring buffer drops oldest", `Quick, test_span_ring_drops_oldest);
    ("registry: get-or-create identity", `Quick, test_registry_identity);
    ("report: stats JSON round-trip", `Quick, test_stats_json_roundtrip);
    ("report: prometheus exposition", `Quick, test_prometheus_shape);
  ]
  @ props
