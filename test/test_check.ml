(* The concurrency sanitizer itself. The seeded tests below build the
   violations the checker exists to find — a two-lock order inversion
   exercised from two domains, fsync under a lock that is not cleared
   for I/O, a declared-rank inversion — and assert they are reported
   with class names and capture stacks. Everything else in the suite
   runs under the same instrumentation, so the first test doubles as
   the sanitizer gate: by the time this file runs (the suite is
   registered last) every other suite has executed, and the graph
   must hold no violation.

   Seeded tests force checking on, then [reset] and restore the prior
   enabled state, so a plain [dune runtest] and an [SI_CHECK=1] run
   see the same assertions. *)

module Check = Si_check
module Lock = Si_check.Lock

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Run [f] with checking forced on and a clean graph; restore the
   prior state (and a clean graph again) afterwards, so seeded
   violations never leak into later tests. *)
let seeded f =
  let was = Check.enabled () in
  Check.set_enabled true;
  Check.reset ();
  Fun.protect
    ~finally:(fun () ->
      Check.reset ();
      Check.set_enabled was)
    f

let kind_of v = Check.kind_name v.Check.v_kind

let violations_of_kind kind =
  List.filter (fun v -> kind_of v = kind) (Check.violations ())

(* -- the sanitizer gate ------------------------------------------------- *)

(* Registered first in the last suite: every preceding suite has run
   through the instrumented locks by now. Under [SI_CHECK=1] this is
   the whole-testsuite sanitizer assertion. *)
let test_no_violations_from_other_suites () =
  let vs = Check.violations () in
  List.iter
    (fun v -> Printf.eprintf "sanitizer: %s\n%s\n" v.Check.v_message v.Check.v_stack)
    vs;
  check_int "no violations recorded by the rest of the suite" 0 (List.length vs)

(* -- seeded detections -------------------------------------------------- *)

(* The canonical lockdep case: domain 1 takes A then B, domain 2 takes
   B then A. The domains run serially (join between them) — no real
   deadlock is possible — yet the checker reports the inversion,
   because it reasons over the order graph, not over interleavings. *)
let test_seeded_order_inversion () =
  seeded (fun () ->
      let a = Lock.create ~class_:"test.inv.a" in
      let b = Lock.create ~class_:"test.inv.b" in
      let d1 =
        Domain.spawn (fun () ->
            Lock.lock a;
            Lock.lock b;
            Lock.unlock b;
            Lock.unlock a)
      in
      Domain.join d1;
      check_int "clean after first order" 0 (List.length (Check.violations ()));
      let d2 =
        Domain.spawn (fun () ->
            Lock.lock b;
            Lock.lock a;
            Lock.unlock a;
            Lock.unlock b)
      in
      Domain.join d2;
      let invs = violations_of_kind "order-inversion" in
      check_int "one order inversion" 1 (List.length invs);
      let v = List.hd invs in
      check_bool "names class a" true (List.mem "test.inv.a" v.Check.v_classes);
      check_bool "names class b" true (List.mem "test.inv.b" v.Check.v_classes);
      check_bool "carries the acquisition stack" true
        (String.length v.Check.v_stack > 0);
      check_bool "carries the opposing edge's stack" true
        (v.Check.v_other_stack <> None))

(* fsync while holding a lock whose class is not cleared for I/O.
   [server.writer] itself is io_ok by design (its purpose is to
   serialize persistence), so the seeded stand-in models the mistake
   of fsyncing under a plain reader-side lock. *)
let test_seeded_fsync_under_lock () =
  seeded (fun () ->
      let reader = Lock.create ~class_:"test.reader" in
      Lock.with_lock reader (fun () ->
          Check.blocking ~kind:"fsync" (fun () -> ()));
      let vs = violations_of_kind "io-under-lock" in
      check_int "one io-under-lock violation" 1 (List.length vs);
      let v = List.hd vs in
      check_bool "names the blocking op" true (List.mem "fsync" v.Check.v_classes);
      check_bool "names the held class" true
        (List.mem "test.reader" v.Check.v_classes))

(* The same blocking op under a class declared io_ok is allowed. *)
let test_io_ok_allowlist () =
  seeded (fun () ->
      Check.Hierarchy.declare ~io_ok:true ~rank:9000
        ~doc:"test: serializes I/O by design" "test.io_ok";
      let l = Lock.create ~class_:"test.io_ok" in
      Lock.with_lock l (fun () ->
          Check.blocking ~kind:"fsync" (fun () -> ()));
      check_int "io under an io_ok lock is clean" 0
        (List.length (Check.violations ())))

let test_seeded_rank_violation () =
  seeded (fun () ->
      Check.Hierarchy.declare ~rank:9010 ~doc:"test: outer" "test.rank.hi";
      Check.Hierarchy.declare ~rank:9005 ~doc:"test: inner" "test.rank.lo";
      let hi = Lock.create ~class_:"test.rank.hi" in
      let lo = Lock.create ~class_:"test.rank.lo" in
      Lock.with_lock hi (fun () -> Lock.with_lock lo (fun () -> ()));
      let vs = violations_of_kind "rank-violation" in
      check_int "one rank violation" 1 (List.length vs);
      let v = List.hd vs in
      check_bool "names both classes" true
        (List.mem "test.rank.hi" v.Check.v_classes
        && List.mem "test.rank.lo" v.Check.v_classes))

let test_seeded_same_class_nesting () =
  seeded (fun () ->
      let a = Lock.create ~class_:"test.same" in
      let b = Lock.create ~class_:"test.same" in
      Lock.with_lock a (fun () -> Lock.with_lock b (fun () -> ()));
      check_int "one same-class nesting" 1
        (List.length (violations_of_kind "same-class-nesting")))

(* OCaml mutexes are error-checking: the double lock raises. The
   checker must have recorded the violation before the raise. *)
let test_seeded_reentrant_acquire () =
  seeded (fun () ->
      let a = Lock.create ~class_:"test.reentrant" in
      Lock.lock a;
      (try Lock.lock a with Sys_error _ -> ());
      Lock.unlock a;
      check_int "one re-entrant acquire" 1
        (List.length (violations_of_kind "reentrant-acquire")))

(* A violation is reported once, however many times the pattern runs. *)
let test_violation_dedup () =
  seeded (fun () ->
      let reader = Lock.create ~class_:"test.dedup" in
      for _ = 1 to 5 do
        Lock.with_lock reader (fun () ->
            Check.blocking ~kind:"fsync" (fun () -> ()))
      done;
      check_int "five occurrences, one report" 1
        (List.length (Check.violations ())))

(* -- bookkeeping under Condition.wait ----------------------------------- *)

(* [Lock.wait] must pop the frame across the wait and re-push it after:
   an acquisition made after waking still records its edge from the
   waited-on lock, and the hold stack stays balanced. *)
let test_wait_keeps_stack_consistent () =
  seeded (fun () ->
      let l = Lock.create ~class_:"test.wait" in
      let inner = Lock.create ~class_:"test.wait.inner" in
      let cond = Condition.create () in
      let flag = ref false in
      Lock.lock l;
      let d =
        Domain.spawn (fun () ->
            Lock.lock l;
            flag := true;
            Condition.signal cond;
            Lock.unlock l)
      in
      while not !flag do
        Lock.wait cond l
      done;
      (* Still logically holding [l]: this edge must be recorded. *)
      Lock.with_lock inner (fun () -> ());
      Lock.unlock l;
      Domain.join d;
      let r = Check.report () in
      check_bool "edge test.wait -> test.wait.inner recorded" true
        (List.exists
           (fun e ->
             e.Check.e_from = "test.wait" && e.Check.e_to = "test.wait.inner")
           r.Check.r_edges);
      check_int "no violations from the wait" 0
        (List.length r.Check.r_violations))

(* -- contention counting (always on, even disabled) --------------------- *)

let test_contended_counter () =
  let was = Check.enabled () in
  Check.set_enabled false;
  let l = Lock.create ~class_:"test.contended" in
  let entered = Atomic.make false in
  let release = Atomic.make false in
  let holder =
    Domain.spawn (fun () ->
        Lock.lock l;
        Atomic.set entered true;
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done;
        Lock.unlock l)
  in
  while not (Atomic.get entered) do
    Domain.cpu_relax ()
  done;
  (* The holder only releases once we've set the flag, and we only set
     it from inside a domain that is already blocked on [lock] — so the
     acquisition below is contended by construction. *)
  let waiter =
    Domain.spawn (fun () ->
        Lock.lock l;
        Lock.unlock l)
  in
  (* Give the waiter time to reach the lock, then open the gate. The
     try_lock fast path has already failed by then (and if the race is
     lost, [contended] just counts the retry loop's failure anyway:
     try_lock fails iff the mutex was held). *)
  Unix.sleepf 0.05;
  Atomic.set release true;
  Domain.join holder;
  Domain.join waiter;
  Check.set_enabled was;
  check_bool "contended acquisition counted while disabled" true
    (Lock.contended l >= 1)

(* -- hierarchy sanity --------------------------------------------------- *)

let test_hierarchy_declared () =
  let entries = Check.Hierarchy.entries () in
  let find c = Check.Hierarchy.find c in
  let expect_present c =
    check_bool (c ^ " declared") true (find c <> None)
  in
  List.iter expect_present
    [
      "server.session"; "server.jobq"; "server.job"; "server.writer";
      "wal.registry"; "slimpad.ship.round"; "wal.log"; "wal.ship";
      "slimpad.ship.wake"; "wal.transport.local"; "store.locked";
      "store.shard"; "atom.table"; "obs.registry"; "obs.span.ring";
      "obs.histogram";
    ];
  (* Ranks are strictly increasing in the sorted listing: no ties, so
     "may acquire" is a total order over the declared core. *)
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) ->
        a.Check.Hierarchy.h_rank < b.Check.Hierarchy.h_rank
        && strictly_increasing rest
    | _ -> true
  in
  let core =
    List.filter
      (fun e ->
        not (String.length e.Check.Hierarchy.h_class >= 5
            && String.sub e.Check.Hierarchy.h_class 0 5 = "test."))
      entries
  in
  check_bool "core ranks are unique and ordered" true
    (strictly_increasing core);
  (* The io_ok allowlist is exactly the classes whose documented
     purpose is serializing I/O. *)
  let io_ok =
    core
    |> List.filter (fun e -> e.Check.Hierarchy.h_io_ok)
    |> List.map (fun e -> e.Check.Hierarchy.h_class)
    |> List.sort compare
  in
  Alcotest.(check (list string))
    "io_ok allowlist"
    [ "server.writer"; "slimpad.ship.round"; "wal.log"; "wal.ship" ]
    io_ok

(* -- determinism of graph construction ---------------------------------- *)

(* A lock script is a list of small ints: [n >= 0] acquires lock
   [n mod 4] (skipped when already held — re-entrancy would raise);
   [n < 0] releases the most recently acquired. Running any script
   twice from a clean graph must build the identical graph and report
   the identical violations: detection depends only on the acquisition
   order, never on timing. *)
let run_script script =
  Check.reset ();
  let locks =
    Array.init 4 (fun i -> Lock.create ~class_:(Printf.sprintf "test.det.%d" i))
  in
  let held = ref [] in
  List.iter
    (fun n ->
      if n >= 0 then begin
        let i = n mod 4 in
        if not (List.mem i !held) then begin
          Lock.lock locks.(i);
          held := i :: !held
        end
      end
      else
        match !held with
        | [] -> ()
        | i :: rest ->
            Lock.unlock locks.(i);
            held := rest)
    script;
  List.iter (fun i -> Lock.unlock locks.(i)) !held;
  let r = Check.report () in
  let edges =
    List.map (fun e -> (e.Check.e_from, e.Check.e_to, e.Check.e_count)) r.Check.r_edges
  in
  let vios =
    List.map
      (fun v -> (kind_of v, List.sort compare v.Check.v_classes))
      r.Check.r_violations
    |> List.sort compare
  in
  (edges, vios)

let prop_graph_deterministic =
  QCheck.Test.make ~name:"order graph is a function of the lock script"
    ~count:100
    QCheck.(list_of_size Gen.(int_range 0 20) (int_range (-4) 7))
    (fun script ->
      let was = Check.enabled () in
      Check.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          Check.reset ();
          Check.set_enabled was)
        (fun () ->
          let first = run_script script in
          let second = run_script script in
          first = second))

(* -- a real workload, clean --------------------------------------------- *)

(* Drive the actual store/interning stack from two domains with
   checking on: the production lock discipline must come out clean,
   and the graph must contain the real shard -> atom edge. *)
module Sharded = Si_triple.Store.Sharded_columnar
module Triple = Si_triple.Triple

let test_real_workload_clean () =
  seeded (fun () ->
      let store = Sharded.create () in
      let writer lo =
        Domain.spawn (fun () ->
            for i = lo to lo + 49 do
              ignore
                (Sharded.add store
                   (Triple.make
                      (Printf.sprintf "e%d" i)
                      "p"
                      (Triple.literal (string_of_int i))))
            done)
      in
      let d1 = writer 0 and d2 = writer 50 in
      Domain.join d1;
      Domain.join d2;
      check_int "all triples landed" 100 (Sharded.size store);
      let r = Check.report () in
      check_int "production locking is clean" 0
        (List.length r.Check.r_violations);
      check_bool "shard -> atom edge observed" true
        (List.exists
           (fun e -> e.Check.e_from = "store.shard" && e.Check.e_to = "atom.table")
           r.Check.r_edges))

(* -- report plumbing ---------------------------------------------------- *)

let test_report_json_shape () =
  seeded (fun () ->
      let reader = Lock.create ~class_:"test.json" in
      Lock.with_lock reader (fun () ->
          Check.blocking ~kind:"fsync" (fun () -> ()));
      let json = Check.report_json () in
      let has needle =
        let re = Re.compile (Re.str needle) in
        Re.execp re json
      in
      check_bool "json names the violation kind" true
        (has "\"io-under-lock\"");
      check_bool "json lists edges array" true (has "\"edges\"");
      check_bool "json lists classes array" true (has "\"classes\"");
      check_bool "json carries enabled flag" true (has "\"enabled\": true"))

let suite =
  [
    Alcotest.test_case "sanitizer: rest of suite ran clean" `Quick
      test_no_violations_from_other_suites;
    Alcotest.test_case "seeded: two-domain order inversion reported" `Quick
      test_seeded_order_inversion;
    Alcotest.test_case "seeded: fsync under non-io lock reported" `Quick
      test_seeded_fsync_under_lock;
    Alcotest.test_case "io under a declared io_ok lock is allowed" `Quick
      test_io_ok_allowlist;
    Alcotest.test_case "seeded: declared-rank inversion reported" `Quick
      test_seeded_rank_violation;
    Alcotest.test_case "seeded: same-class nesting reported" `Quick
      test_seeded_same_class_nesting;
    Alcotest.test_case "seeded: re-entrant acquire reported" `Quick
      test_seeded_reentrant_acquire;
    Alcotest.test_case "violations deduplicate" `Quick test_violation_dedup;
    Alcotest.test_case "Lock.wait keeps the held stack consistent" `Quick
      test_wait_keeps_stack_consistent;
    Alcotest.test_case "contention counted even when disabled" `Quick
      test_contended_counter;
    Alcotest.test_case "built-in hierarchy covers every lock class" `Quick
      test_hierarchy_declared;
    QCheck_alcotest.to_alcotest prop_graph_deterministic;
    Alcotest.test_case "store workload under checking is clean" `Quick
      test_real_workload_clean;
    Alcotest.test_case "report_json carries the full report" `Quick
      test_report_json_shape;
  ]
