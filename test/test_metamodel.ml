(* Tests for the metamodel: model definition, generalization, instances,
   conformance validation. *)

open Si_metamodel
module Trim = Si_triple.Trim
module Triple = Si_triple.Triple

let check = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A miniature relational model, as the paper's §4.3 example: "in the
   relational model, tables, attributes, keys and domains are constructs". *)
let relational trim =
  let m = Model.define trim ~name:"relational" in
  let table = Model.construct m "Table" in
  let attribute = Model.construct m "Attribute" in
  let string_ = Model.literal_construct m "String" in
  let _ =
    Model.connect m ~name:"tableName" ~from_:table ~to_:string_
      ~card:Model.one_card ()
  in
  let _ =
    Model.connect m ~name:"hasAttribute" ~from_:table ~to_:attribute
      ~card:Model.at_least_one ()
  in
  let _ =
    Model.connect m ~name:"attrName" ~from_:attribute ~to_:string_
      ~card:Model.one_card ()
  in
  (m, table, attribute, string_)

let test_define_idempotent () =
  let trim = Trim.create () in
  let m1 = Model.define trim ~name:"m" in
  let m2 = Model.define trim ~name:"m" in
  check "same id" (Model.id m1) (Model.id m2);
  check_int "one model" 1 (List.length (Model.all trim));
  check_bool "find" true (Model.find trim ~name:"m" <> None);
  check_bool "find missing" true (Model.find trim ~name:"nope" = None)

let test_two_models_coexist () =
  (* The flexibility claim: multiple superimposed models in one store. *)
  let trim = Trim.create () in
  let m1, _, _, _ = relational trim in
  let m2 = Model.define trim ~name:"topicmap" in
  let _ = Model.construct m2 "Topic" in
  check_int "two models" 2 (List.length (Model.all trim));
  check_int "relational constructs" 3 (List.length (Model.constructs m1));
  check_int "topicmap constructs" 1 (List.length (Model.constructs m2))

let test_constructs () =
  let trim = Trim.create () in
  let m, table, _, string_ = relational trim in
  check_bool "kinds" true
    (table.Model.kind = Model.Construct
    && string_.Model.kind = Model.Literal_construct);
  let mark = Model.mark_construct m "Mark" in
  check_bool "mark kind" true (mark.Model.kind = Model.Mark_construct);
  check "name" "Table" (Model.construct_name m table);
  check_bool "find" true (Model.find_construct m "Table" = Some table);
  check_bool "idempotent" true (Model.construct m "Table" = table);
  Alcotest.check_raises "kind clash"
    (Invalid_argument
       "Model: construct \"Table\" already exists with another kind")
    (fun () -> ignore (Model.literal_construct m "Table"))

let test_connectors () =
  let trim = Trim.create () in
  let m, table, attribute, string_ = relational trim in
  check_int "three connectors" 3 (List.length (Model.connectors m));
  let conn =
    Option.get (Model.find_connector m ~domain:table ~predicate:"hasAttribute")
  in
  check_bool "range" true
    (conn.Model.conn_range.Model.construct_id = attribute.Model.construct_id);
  check_bool "card" true (conn.Model.card = Model.at_least_one);
  check_bool "absent connector" true
    (Model.find_connector m ~domain:attribute ~predicate:"hasAttribute" = None);
  (* Idempotent on (domain, name). *)
  let again =
    Model.connect m ~name:"hasAttribute" ~from_:table ~to_:string_ ()
  in
  check_bool "idempotent keeps original range" true
    (again.Model.conn_range.Model.construct_id = attribute.Model.construct_id)

let test_generalization () =
  let trim = Trim.create () in
  let m = Model.define trim ~name:"g" in
  let base = Model.construct m "Element" in
  let mid = Model.construct m "Container" in
  let leaf = Model.construct m "Bundle" in
  Model.generalize m ~sub:mid ~super:base;
  Model.generalize m ~sub:leaf ~super:mid;
  let supers = Model.superconstructs m leaf in
  Alcotest.(check (list string))
    "transitive, nearest first" [ "Container"; "Element" ]
    (List.map (Model.construct_name m) supers);
  check_bool "reflexive" true (Model.is_subconstruct_of m ~sub:leaf ~super:leaf);
  check_bool "transitive" true
    (Model.is_subconstruct_of m ~sub:leaf ~super:base);
  check_bool "not reverse" false
    (Model.is_subconstruct_of m ~sub:base ~super:leaf)

let test_generalization_cycle_safe () =
  let trim = Trim.create () in
  let m = Model.define trim ~name:"c" in
  let a = Model.construct m "A" in
  let b = Model.construct m "B" in
  Model.generalize m ~sub:a ~super:b;
  Model.generalize m ~sub:b ~super:a;
  (* Must terminate. *)
  check_int "supers of a" 1 (List.length (Model.superconstructs m a))

let test_inherited_connectors () =
  let trim = Trim.create () in
  let m = Model.define trim ~name:"inh" in
  let base = Model.construct m "Named" in
  let leaf = Model.construct m "Scrap" in
  let string_ = Model.literal_construct m "String" in
  Model.generalize m ~sub:leaf ~super:base;
  let _ = Model.connect m ~name:"label" ~from_:base ~to_:string_ () in
  check_bool "inherited lookup" true
    (Model.find_connector m ~domain:leaf ~predicate:"label" <> None);
  check_int "connectors_of includes inherited" 1
    (List.length (Model.connectors_of m leaf))

let test_instances () =
  let trim = Trim.create () in
  let m, table, _, _ = relational trim in
  let employees = Model.new_instance m table () in
  Model.set_property m employees "tableName" (Triple.literal "Employees");
  check "property" "Employees"
    (match Model.property m employees "tableName" with
    | Some (Triple.Literal s) -> s
    | _ -> "?");
  check_bool "typed" true
    (Model.instance_type trim employees = Some table.Model.construct_id);
  Alcotest.(check (list string))
    "instances_of" [ employees ]
    (Model.instances_of m table);
  (* set_property replaces. *)
  Model.set_property m employees "tableName" (Triple.literal "Staff");
  check_int "single value" 1
    (List.length (Model.properties m employees));
  (* add_property accumulates. *)
  Model.add_property m employees "note" (Triple.literal "a");
  Model.add_property m employees "note" (Triple.literal "b");
  check_int "multi-valued" 3 (List.length (Model.properties m employees))

let test_reserved_predicates_rejected () =
  let trim = Trim.create () in
  let m, table, _, _ = relational trim in
  let inst = Model.new_instance m table () in
  Alcotest.check_raises "rdf:type is reserved"
    (Invalid_argument "Model: \"rdf:type\" is a reserved metamodel predicate")
    (fun () -> Model.set_property m inst "rdf:type" (Triple.literal "x"))

let test_delete_instance () =
  let trim = Trim.create () in
  let m, table, attribute, _ = relational trim in
  let t = Model.new_instance m table () in
  let a = Model.new_instance m attribute () in
  Model.set_property m t "hasAttribute" (Triple.resource a);
  Model.set_property m a "attrName" (Triple.literal "id");
  let removed = Model.delete_instance m a in
  check_bool "removed outgoing and incoming" true (removed >= 3);
  check_bool "no dangling incoming" true
    (Trim.select ~object_:(Triple.resource a) trim = [])

let test_conformance_links () =
  let trim = Trim.create () in
  let m, table, _, _ = relational trim in
  let schema_table = Model.new_instance m table () in
  Model.conform m ~instance:"row-1" ~to_:schema_table;
  Alcotest.(check (list string))
    "conforms_to" [ schema_table ]
    (Model.conforms_to trim "row-1")

let test_describe () =
  let trim = Trim.create () in
  let m, _, _, _ = relational trim in
  let text = Model.describe m in
  check_bool "mentions Table" true
    (List.exists
       (fun line -> line = "  construct Table")
       (String.split_on_char '\n' text));
  check_bool "mentions cardinality" true
    (List.exists
       (fun line -> line = "    hasAttribute : Attribute [1..*]")
       (String.split_on_char '\n' text))

(* ---------------------------------------------------------- validation *)

let valid_world () =
  let trim = Trim.create () in
  let m, table, attribute, _ = relational trim in
  let t = Model.new_instance m table () in
  let a = Model.new_instance m attribute () in
  Model.set_property m t "tableName" (Triple.literal "Employees");
  Model.set_property m t "hasAttribute" (Triple.resource a);
  Model.set_property m a "attrName" (Triple.literal "id");
  (trim, m, table, attribute, t, a)

let test_validate_ok () =
  let _, m, _, _, _, _ = valid_world () in
  let report = Validate.check m in
  check_int "checked" 2 report.Validate.checked;
  check_bool "valid" true (Validate.is_valid m)

let test_validate_unknown_property () =
  let _, m, _, _, t, _ = valid_world () in
  Model.set_property m t "frobnicate" (Triple.literal "x");
  let vs = Validate.check_instance m t in
  check_int "one violation" 1 (List.length vs);
  check_bool "names predicate" true
    ((List.hd vs).Validate.predicate = Some "frobnicate")

let test_validate_range_literal_vs_resource () =
  let _, m, _, _, t, a = valid_world () in
  (* Literal where a resource is required. *)
  Model.add_property m t "hasAttribute" (Triple.literal "not-a-ref");
  (* Resource where a literal is required. *)
  Model.set_property m a "attrName" (Triple.resource t);
  let report = Validate.check m in
  check_int "two violations" 2 (List.length report.Validate.violations)

let test_validate_wrong_construct () =
  let _, m, table, _, t, _ = valid_world () in
  let other = Model.new_instance m table () in
  Model.set_property m other "tableName" (Triple.literal "Other");
  (* hasAttribute must point at an Attribute, not a Table... *)
  Model.add_property m t "hasAttribute" (Triple.resource other);
  let vs = Validate.check_instance m t in
  check_int "one violation" 1 (List.length vs)

let test_validate_dangling () =
  let _, m, _, _, t, _ = valid_world () in
  Model.add_property m t "hasAttribute" (Triple.resource "ghost");
  let vs = Validate.check_instance m t in
  check_int "dangling" 1 (List.length vs)

let test_validate_cardinality () =
  let trim = Trim.create () in
  let m, table, _, _ = relational trim in
  let t = Model.new_instance m table () in
  (* Missing tableName [1..1] and hasAttribute [1..many]. *)
  let vs = Validate.check_instance m t in
  check_int "two too-few" 2 (List.length vs);
  Model.set_property m t "tableName" (Triple.literal "A");
  Model.add_property m t "tableName" (Triple.literal "B") |> ignore;
  let vs = Validate.check_instance m t in
  (* Now: tableName has 2 values (max 1) and hasAttribute still missing. *)
  check_int "too-many + too-few" 2 (List.length vs)

let test_validate_subconstruct_accepted () =
  let trim = Trim.create () in
  let m = Model.define trim ~name:"sub" in
  let element = Model.construct m "Element" in
  let bundle = Model.construct m "Bundle" in
  let pad = Model.construct m "Pad" in
  Model.generalize m ~sub:bundle ~super:element;
  let _ =
    Model.connect m ~name:"holds" ~from_:pad ~to_:element ~card:Model.any_card ()
  in
  let p = Model.new_instance m pad () in
  let b = Model.new_instance m bundle () in
  Model.set_property m p "holds" (Triple.resource b);
  check_bool "subconstruct satisfies range" true (Validate.is_valid m)

let test_validate_lower_bounds () =
  let trim = Trim.create () in
  let m, table, attribute, _ = relational trim in
  let t = Model.new_instance m table () in
  (* Zero facts on tableName [1..1] and hasAttribute [1..*]: both lower
     bounds are reported, each naming its predicate and shortfall. *)
  let vs = Validate.check_instance m t in
  let names = List.filter_map (fun v -> v.Validate.predicate) vs in
  check_bool "tableName [1..1] reported" true (List.mem "tableName" names);
  check_bool "hasAttribute [1..*] reported" true (List.mem "hasAttribute" names);
  check_bool "problems count the shortfall" true
    (List.for_all
       (fun v ->
         let re = Re.compile (Re.str "0 value(s), at least 1 required") in
         Re.execp re v.Validate.problem)
       vs);
  (* Exactly the lower bound satisfies both. *)
  let a = Model.new_instance m attribute () in
  Model.set_property m a "attrName" (Triple.literal "id");
  Model.set_property m t "tableName" (Triple.literal "T");
  Model.set_property m t "hasAttribute" (Triple.resource a);
  check_int "bounds met" 0 (List.length (Validate.check_instance m t));
  (* [1..*] is unbounded above: more values stay fine. *)
  let b = Model.new_instance m attribute () in
  Model.set_property m b "attrName" (Triple.literal "name");
  Model.add_property m t "hasAttribute" (Triple.resource b);
  check_int "unbounded above" 0 (List.length (Validate.check_instance m t))

let test_validate_inherited_lower_bound () =
  (* A connector declared on a superconstruct binds instances of the
     subconstruct: Table.tableName [1..1] applies to a View. *)
  let trim = Trim.create () in
  let m, table, _, string_ = relational trim in
  let view = Model.construct m "View" in
  Model.generalize m ~sub:view ~super:table;
  let _ =
    Model.connect m ~name:"definition" ~from_:view ~to_:string_
      ~card:Model.one_card ()
  in
  let v = Model.new_instance m view () in
  let vs = Validate.check_instance m v in
  let names = List.filter_map (fun x -> x.Validate.predicate) vs in
  check_bool "inherited tableName missing" true (List.mem "tableName" names);
  check_bool "inherited hasAttribute missing" true
    (List.mem "hasAttribute" names);
  check_bool "own definition missing" true (List.mem "definition" names);
  check_int "three lower bounds" 3 (List.length vs)

let test_validate_batch_lower_bounds () =
  (* The batch path reports every under-populated instance, once each. *)
  let trim = Trim.create () in
  let m, table, attribute, _ = relational trim in
  let _t1 = Model.new_instance m table () in
  let _t2 = Model.new_instance m table () in
  let _a = Model.new_instance m attribute () in
  let report = Validate.check m in
  check_int "instances checked" 3 report.Validate.checked;
  (* Two per empty Table (tableName, hasAttribute), one per empty
     Attribute (attrName). *)
  check_int "violations" 5 (List.length report.Validate.violations);
  check_bool "not valid" false (Validate.is_valid m)

let test_report_rendering () =
  let _, m, _, _, t, _ = valid_world () in
  Model.set_property m t "bogus" (Triple.literal "x");
  let text = Validate.report_to_string (Validate.check m) in
  check_bool "mentions count" true
    (String.length text > 0
    && String.sub text 0 1 = "2" (* "2 instance(s) checked..." *));
  check_bool "mentions predicate" true
    (let re = Re.compile (Re.str "bogus") in
     Re.execp re text)

(* ------------------------------------------------------ SLIM-ML DSL *)

let library_dsl =
  "model library\n\
   # a catalogue\n\
   literal String\n\
   construct Book\n\
   construct Reference\n\
   mark Citation\n\
   \n\
   Reference isa Book\n\
   \n\
   Book.title : String [1..1]\n\
   Book.writtenBy : Author [0..*]\n\
   Reference.shelf : String [0..1]\n\
   Author.name : String [1..1]\n"

let test_dsl_parse () =
  let trim = Trim.create () in
  let m =
    match Model_dsl.parse trim library_dsl with
    | Ok m -> m
    | Error e -> Alcotest.fail e
  in
  check "name" "library" (Model.name m);
  (* Author was declared implicitly by its property lines. *)
  check_int "constructs" 5 (List.length (Model.constructs m));
  let book = Option.get (Model.find_construct m "Book") in
  let reference = Option.get (Model.find_construct m "Reference") in
  let citation = Option.get (Model.find_construct m "Citation") in
  check_bool "kinds" true
    (citation.Model.kind = Model.Mark_construct
    && (Option.get (Model.find_construct m "String")).Model.kind
       = Model.Literal_construct);
  check_bool "generalization" true
    (Model.is_subconstruct_of m ~sub:reference ~super:book);
  let title =
    Option.get (Model.find_connector m ~domain:book ~predicate:"title")
  in
  check_bool "cardinality" true (title.Model.card = Model.one_card);
  check_bool "inherited property usable" true
    (Model.find_connector m ~domain:reference ~predicate:"title" <> None)

let test_dsl_default_cardinality () =
  let trim = Trim.create () in
  let m =
    match Model_dsl.parse trim "model m\nA.knows : A\n" with
    | Ok m -> m
    | Error e -> Alcotest.fail e
  in
  let a = Option.get (Model.find_construct m "A") in
  let knows = Option.get (Model.find_connector m ~domain:a ~predicate:"knows") in
  check_bool "defaults to 0..*" true (knows.Model.card = Model.any_card)

let test_dsl_errors () =
  let fails text expected_line =
    match Model_dsl.parse (Trim.create ()) text with
    | Ok _ -> Alcotest.failf "expected parse failure on %S" text
    | Error msg ->
        check_bool
          (Printf.sprintf "%S mentions line %d" text expected_line)
          true
          (let re =
             Re.compile (Re.str (Printf.sprintf "line %d" expected_line))
           in
           Re.execp re msg || expected_line = 0)
  in
  fails "" 0;
  fails "construct X\n" 0 (* no model line *);
  fails "model m\nmodel n\n" 0 (* duplicate model *);
  fails "model m\nbogus line here\n" 2;
  fails "model m\nA.p : B [1..x]\n" 2;
  fails "model m\nA.p : B [3..1]\n" 2;
  fails "model m\n123bad : C\n" 2

let test_dsl_print_roundtrip () =
  let trim = Trim.create () in
  let m =
    match Model_dsl.parse trim library_dsl with
    | Ok m -> m
    | Error e -> Alcotest.fail e
  in
  let printed = Model_dsl.print m in
  let trim2 = Trim.create () in
  let m2 =
    match Model_dsl.parse trim2 printed with
    | Ok m -> m
    | Error e -> Alcotest.failf "reparse failed: %s\n%s" e printed
  in
  check_int "same constructs" (List.length (Model.constructs m))
    (List.length (Model.constructs m2));
  check_int "same connectors" (List.length (Model.connectors m))
    (List.length (Model.connectors m2));
  (* Printing the reparse is a fixed point. *)
  check "fixed point" printed (Model_dsl.print m2)

let test_dsl_drives_generic_dmi () =
  (* The full §4.4 pipeline: DSL text -> model -> generated DMI -> data ->
     validation. *)
  let trim = Trim.create () in
  let m =
    match Model_dsl.parse trim library_dsl with
    | Ok m -> m
    | Error e -> Alcotest.fail e
  in
  let g = Si_slim.Generic_dmi.for_model m in
  let book = Result.get_ok (Si_slim.Generic_dmi.create g "Book") in
  (match
     Si_slim.Generic_dmi.set g book "title"
       (Si_triple.Triple.literal "Cognition in the Wild")
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let author = Result.get_ok (Si_slim.Generic_dmi.create g "Author") in
  (match
     Si_slim.Generic_dmi.set g author "name"
       (Si_triple.Triple.literal "Hutchins")
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match
     Si_slim.Generic_dmi.add g book "writtenBy"
       (Si_triple.Triple.resource author)
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_int "valid" 0
    (List.length (Validate.check m).Validate.violations)

(* Property: models survive TRIM persistence (model = data). *)
let prop_model_persists =
  QCheck.Test.make ~name:"model definitions survive XML persistence" ~count:50
    QCheck.(int_range 1 8)
    (fun n ->
      let trim = Trim.create () in
      let m = Model.define trim ~name:"p" in
      let string_ = Model.literal_construct m "String" in
      let cs =
        List.init n (fun i -> Model.construct m (Printf.sprintf "C%d" i))
      in
      List.iter
        (fun c ->
          ignore (Model.connect m ~name:"label" ~from_:c ~to_:string_ ()))
        cs;
      match Trim.of_xml (Trim.to_xml trim) with
      | Error _ -> false
      | Ok trim2 -> (
          match Model.find trim2 ~name:"p" with
          | None -> false
          | Some m2 ->
              List.length (Model.constructs m2)
              = List.length (Model.constructs m)
              && List.length (Model.connectors m2) = n))

(* Property: parse -> print -> parse is a fixed point of the DSL,
   through implicit construct declarations (constructs first mentioned
   in isa or property lines, in any order), comments, and every
   cardinality form. The printer declares every construct explicitly
   and derives isa lines from the direct (not transitive)
   generalization edges, so the printed text must reparse to the same
   model and reprint identically. *)
let prop_dsl_roundtrip =
  QCheck.Test.make ~name:"dsl parse/print round-trip" ~count:100
    QCheck.(pair (int_range 2 7) (int_bound 1_000_000))
    (fun (n, salt) ->
      (* A little deterministic LCG on the salt keeps the case shape a
         pure function of the QCheck input (shrinkable, replayable). *)
      let state = ref (salt + 1) in
      let rand bound =
        state := !state * 48271 mod 0x7fffffff;
        !state mod bound
      in
      let buf = Buffer.create 256 in
      let line fmt =
        Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
      in
      line "model roundtrip";
      line "# generated case %d/%d" n salt;
      line "literal String";
      for i = 0 to n - 1 do
        match rand 3 with
        | 0 -> line "construct C%d" i
        | 1 -> line "mark K%d" i
        | _ -> () (* left implicit: a later mention creates it *)
      done;
      line "";
      (* Acyclic generalization, edges pointing at lower indices; either
         end may still be undeclared at this point. *)
      for i = 1 to n - 1 do
        if rand 2 = 0 then line "C%d isa C%d" i (rand i)
      done;
      let cards =
        [| ""; " [0..1]"; " [1..1]"; " [0..*]"; " [1..*]"; " [2..5]" |]
      in
      for i = 0 to n - 1 do
        if rand 3 > 0 then
          line "C%d.p%d : String%s" i i cards.(rand (Array.length cards));
        if rand 2 = 0 then
          line "C%d.ref%d : C%d%s # a reference" i i (rand n)
            cards.(rand (Array.length cards))
      done;
      let text = Buffer.contents buf in
      match Model_dsl.parse (Trim.create ()) text with
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s\n%s" e text
      | Ok m -> (
          let printed = Model_dsl.print m in
          match Model_dsl.parse (Trim.create ()) printed with
          | Error e ->
              QCheck.Test.fail_reportf "reparse failed: %s\n%s" e printed
          | Ok m2 ->
              List.length (Model.constructs m2)
              = List.length (Model.constructs m)
              && List.length (Model.connectors m2)
                 = List.length (Model.connectors m)
              && Model_dsl.print m2 = printed))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_model_persists; prop_dsl_roundtrip ]

let suite =
  [
    ("define is idempotent", `Quick, test_define_idempotent);
    ("two models coexist", `Quick, test_two_models_coexist);
    ("constructs", `Quick, test_constructs);
    ("connectors", `Quick, test_connectors);
    ("generalization", `Quick, test_generalization);
    ("generalization cycle-safe", `Quick, test_generalization_cycle_safe);
    ("inherited connectors", `Quick, test_inherited_connectors);
    ("instances & properties", `Quick, test_instances);
    ("reserved predicates rejected", `Quick, test_reserved_predicates_rejected);
    ("delete_instance", `Quick, test_delete_instance);
    ("conformance links", `Quick, test_conformance_links);
    ("describe", `Quick, test_describe);
    ("validate: clean model", `Quick, test_validate_ok);
    ("validate: unknown property", `Quick, test_validate_unknown_property);
    ("validate: literal/resource mismatch", `Quick,
     test_validate_range_literal_vs_resource);
    ("validate: wrong construct", `Quick, test_validate_wrong_construct);
    ("validate: dangling reference", `Quick, test_validate_dangling);
    ("validate: cardinality", `Quick, test_validate_cardinality);
    ("validate: subconstruct accepted", `Quick,
     test_validate_subconstruct_accepted);
    ("validate: lower bounds", `Quick, test_validate_lower_bounds);
    ("validate: inherited lower bound", `Quick,
     test_validate_inherited_lower_bound);
    ("validate: batch lower bounds", `Quick, test_validate_batch_lower_bounds);
    ("report rendering", `Quick, test_report_rendering);
    ("dsl: parse", `Quick, test_dsl_parse);
    ("dsl: default cardinality", `Quick, test_dsl_default_cardinality);
    ("dsl: errors carry line numbers", `Quick, test_dsl_errors);
    ("dsl: print round-trip", `Quick, test_dsl_print_roundtrip);
    ("dsl: drives the generated DMI", `Quick, test_dsl_drives_generic_dmi);
  ]
  @ props
