(* Tests for TRIM: triples, both store implementations, views,
   persistence. *)

open Si_triple

let check = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let triple_testable = Alcotest.testable Triple.pp Triple.equal

let t1 = Triple.make "b1" "bundleName" (Triple.literal "John Smith")
let t2 = Triple.make "b1" "bundleContent" (Triple.resource "s1")
let t3 = Triple.make "s1" "scrapName" (Triple.literal "Dopamine")
let t4 = Triple.make "s1" "scrapMark" (Triple.resource "m1")
let t5 = Triple.make "m1" "markId" (Triple.literal "excel-001")

let sample = [ t1; t2; t3; t4; t5 ]

(* ------------------------------------------------------------- triples *)

let test_triple_basics () =
  check "to_string" "(<b1> bundleName \"John Smith\")" (Triple.to_string t1);
  check "resource obj" "<s1>" (Triple.obj_to_string (Triple.resource "s1"));
  check_bool "equal" true (Triple.equal t1 (Triple.make "b1" "bundleName" (Triple.literal "John Smith")));
  check_bool "literal <> resource" false
    (Triple.obj_equal (Triple.literal "x") (Triple.resource "x"));
  check_bool "compare orders" true (Triple.compare t1 t2 <> 0);
  check_int "compare self" 0 (Triple.compare t1 t1)

(* ------------------------------------- store behaviour, per implementation *)

let store_tests (module S : Store.S) =
  let prefix = S.name in
  let make () =
    let s = S.create () in
    S.add_all s sample;
    s
  in
  let test_set_semantics () =
    let s = make () in
    check_int "size" 5 (S.size s);
    check_bool "re-add" false (S.add s t1);
    check_int "still 5" 5 (S.size s);
    check_bool "mem" true (S.mem s t3);
    check_bool "remove" true (S.remove s t3);
    check_bool "gone" false (S.mem s t3);
    check_bool "remove again" false (S.remove s t3);
    check_int "4 left" 4 (S.size s);
    S.clear s;
    check_int "cleared" 0 (S.size s)
  in
  let test_select () =
    let s = make () in
    let sort = List.sort Triple.compare in
    Alcotest.(check (list triple_testable))
      "by subject" (sort [ t1; t2 ])
      (sort (S.select ~subject:"b1" s));
    Alcotest.(check (list triple_testable))
      "by predicate" [ t3 ]
      (S.select ~predicate:"scrapName" s);
    Alcotest.(check (list triple_testable))
      "by object" [ t4 ]
      (S.select ~object_:(Triple.resource "m1") s);
    Alcotest.(check (list triple_testable))
      "subject+predicate" [ t2 ]
      (S.select ~subject:"b1" ~predicate:"bundleContent" s);
    Alcotest.(check (list triple_testable))
      "all three" [ t5 ]
      (S.select ~subject:"m1" ~predicate:"markId"
         ~object_:(Triple.literal "excel-001") s);
    check_int "no filter = all" 5 (List.length (S.select s));
    check_bool "no match" true (S.select ~subject:"zz" s = []);
    check_bool "mismatched combo" true
      (S.select ~subject:"b1" ~predicate:"markId" s = [])
  in
  let test_select_after_remove () =
    let s = make () in
    ignore (S.remove s t2);
    check_bool "removed not selected (subject)" true
      (not (List.exists (Triple.equal t2) (S.select ~subject:"b1" s)));
    check_bool "removed not selected (predicate)" true
      (S.select ~predicate:"bundleContent" s = []);
    check_bool "removed not selected (object)" true
      (S.select ~object_:(Triple.resource "s1") s = [])
  in
  let test_readd_no_duplicates () =
    (* Regression: remove + re-add must not make select return the triple
       twice (stale index entries). *)
    let s = make () in
    ignore (S.remove s t1);
    ignore (S.add s t1);
    check_int "subject select once" 1
      (List.length (S.select ~subject:"b1" ~predicate:"bundleName" s));
    check_int "predicate select once" 1
      (List.length (S.select ~predicate:"bundleName" s));
    check_int "object select once" 1
      (List.length (S.select ~object_:(Triple.literal "John Smith") s))
  in
  let test_pair_index_stale () =
    (* Regression for the compound indexes: remove then re-add must leave
       the subject+predicate and predicate+object buckets with exactly one
       live copy; remove without re-add must leave them empty. *)
    let s = make () in
    ignore (S.remove s t2);
    ignore (S.add s t2);
    check_int "sp once after re-add" 1
      (List.length (S.select ~subject:"b1" ~predicate:"bundleContent" s));
    check_int "po once after re-add" 1
      (List.length
         (S.select ~predicate:"bundleContent" ~object_:(Triple.resource "s1") s));
    check_int "count sp once" 1
      (S.count ~subject:"b1" ~predicate:"bundleContent" s);
    check_int "count po once" 1
      (S.count ~predicate:"bundleContent" ~object_:(Triple.resource "s1") s);
    ignore (S.remove s t4);
    check_bool "sp empty after remove" true
      (S.select ~subject:"s1" ~predicate:"scrapMark" s = []);
    check_bool "po empty after remove" true
      (S.select ~predicate:"scrapMark" ~object_:(Triple.resource "m1") s = []);
    check_bool "exists sp false after remove" false
      (S.exists ~subject:"s1" ~predicate:"scrapMark" s);
    check_bool "exists po false after remove" false
      (S.exists ~predicate:"scrapMark" ~object_:(Triple.resource "m1") s)
  in
  let test_count_exists () =
    let s = make () in
    check_int "count all" 5 (S.count s);
    check_int "count subject" 2 (S.count ~subject:"b1" s);
    check_int "count sp" 1 (S.count ~subject:"b1" ~predicate:"bundleName" s);
    check_int "count po" 1
      (S.count ~predicate:"bundleContent" ~object_:(Triple.resource "s1") s);
    check_int "count spo" 1
      (S.count ~subject:"m1" ~predicate:"markId"
         ~object_:(Triple.literal "excel-001") s);
    check_int "count miss" 0 (S.count ~subject:"zz" s);
    check_int "count mismatched combo" 0
      (S.count ~subject:"b1" ~predicate:"markId" s);
    check_bool "exists subject" true (S.exists ~subject:"s1" s);
    check_bool "exists sp" true (S.exists ~subject:"s1" ~predicate:"scrapName" s);
    check_bool "exists po" true
      (S.exists ~predicate:"scrapMark" ~object_:(Triple.resource "m1") s);
    check_bool "exists all" true (S.exists s);
    check_bool "exists miss" false (S.exists ~subject:"zz" s);
    ignore (S.remove s t3);
    check_int "count tracks removal" 0
      (S.count ~subject:"s1" ~predicate:"scrapName" s);
    check_bool "exists tracks removal" false
      (S.exists ~subject:"s1" ~predicate:"scrapName" s);
    S.clear s;
    check_bool "exists on empty" false (S.exists s);
    check_int "count on empty" 0 (S.count s)
  in
  let test_fold_iter () =
    let s = make () in
    check_int "fold count" 5 (S.fold (fun _ n -> n + 1) s 0);
    let n = ref 0 in
    S.iter (fun _ -> incr n) s;
    check_int "iter count" 5 !n;
    check_int "to_list" 5 (List.length (S.to_list s))
  in
  [
    (prefix ^ ": set semantics", `Quick, test_set_semantics);
    (prefix ^ ": selection query", `Quick, test_select);
    (prefix ^ ": selection after removal", `Quick, test_select_after_remove);
    (prefix ^ ": re-add has no duplicates", `Quick, test_readd_no_duplicates);
    (prefix ^ ": pair indexes survive remove/re-add", `Quick,
     test_pair_index_stale);
    (prefix ^ ": count & exists", `Quick, test_count_exists);
    (prefix ^ ": fold & iter", `Quick, test_fold_iter);
  ]

(* ------------------------------------------------- parallel (domains) *)

let test_parallel_adds () =
  (* Four domains hammer one locked store with disjoint triples; nothing
     is lost and nothing crashes. *)
  let module S = Store.Locked_indexed in
  let s = S.create () in
  let per_domain = 500 in
  let worker d () =
    for i = 0 to per_domain - 1 do
      ignore
        (S.add s
           (Triple.make
              (Printf.sprintf "d%d-r%d" d i)
              "p"
              (Triple.literal (string_of_int i))));
      (* Interleave reads to stress select under contention. *)
      if i mod 50 = 0 then ignore (S.select ~predicate:"p" s)
    done
  in
  let domains = List.init 4 (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join domains;
  check_int "all triples present" (4 * per_domain) (S.size s);
  check_int "select sees everything" (4 * per_domain)
    (List.length (S.select ~predicate:"p" s))

let test_parallel_mixed_ops () =
  let module S = Store.Locked_indexed in
  let s = S.create () in
  let triples d =
    List.init 200 (fun i ->
        Triple.make (Printf.sprintf "d%d-r%d" d i) "p" (Triple.literal "v"))
  in
  (* Two adders, one remover chasing the first adder, one reader. *)
  let adder d () = List.iter (fun t -> ignore (S.add s t)) (triples d) in
  let remover () = List.iter (fun t -> ignore (S.remove s t)) (triples 0) in
  let reader () =
    for _ = 1 to 200 do
      ignore (S.select ~predicate:"p" s);
      ignore (S.size s)
    done
  in
  let domains =
    [
      Domain.spawn (adder 0); Domain.spawn (adder 1); Domain.spawn remover;
      Domain.spawn reader;
    ]
  in
  List.iter Domain.join domains;
  (* Adder 1's triples are definitely all present; adder 0's may or may
     not have been removed, but the store must be consistent. *)
  let remaining = S.select ~predicate:"p" s in
  check_bool "adder-1 intact" true
    (List.for_all
       (fun t -> List.exists (Triple.equal t) remaining)
       (triples 1));
  check_int "size agrees with select" (S.size s) (List.length remaining)

let test_sharded_parallel_adds () =
  (* Four domains hammer the sharded store with disjoint triples; nothing
     is lost and nothing crashes. *)
  let module S = Store.Sharded_store in
  let s = S.create () in
  let per_domain = 500 in
  let worker d () =
    for i = 0 to per_domain - 1 do
      ignore
        (S.add s
           (Triple.make
              (Printf.sprintf "d%d-r%d" d i)
              "p"
              (Triple.literal (string_of_int i))));
      (* Interleave cross-shard and single-shard reads under contention. *)
      if i mod 50 = 0 then ignore (S.select ~predicate:"p" s);
      if i mod 25 = 0 then
        ignore (S.exists ~subject:(Printf.sprintf "d%d-r%d" d (i / 2)) s)
    done
  in
  let domains = List.init 4 (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join domains;
  check_int "all triples present" (4 * per_domain) (S.size s);
  check_int "select sees everything" (4 * per_domain)
    (List.length (S.select ~predicate:"p" s));
  check_int "count agrees" (4 * per_domain) (S.count ~predicate:"p" s)

let test_sharded_parallel_mixed_ops () =
  (* 5 domains, mixed add/remove/select: two adders, a remover chasing the
     first adder, a cross-shard reader, and a subject-bound reader. *)
  let module S = Store.Sharded_store in
  let s = S.create () in
  let triples d =
    List.init 200 (fun i ->
        Triple.make (Printf.sprintf "d%d-r%d" d i) "p" (Triple.literal "v"))
  in
  let adder d () = List.iter (fun t -> ignore (S.add s t)) (triples d) in
  let remover () = List.iter (fun t -> ignore (S.remove s t)) (triples 0) in
  let reader () =
    for _ = 1 to 200 do
      ignore (S.select ~predicate:"p" s);
      ignore (S.size s)
    done
  in
  let point_reader () =
    for i = 1 to 200 do
      let subject = Printf.sprintf "d1-r%d" (i mod 200) in
      ignore (S.select ~subject ~predicate:"p" s);
      ignore (S.exists ~subject s)
    done
  in
  let domains =
    [
      Domain.spawn (adder 0); Domain.spawn (adder 1); Domain.spawn remover;
      Domain.spawn reader; Domain.spawn point_reader;
    ]
  in
  List.iter Domain.join domains;
  (* Adder 1's triples are definitely all present; adder 0's may or may
     not have been removed, but the store must be consistent. *)
  let remaining = S.select ~predicate:"p" s in
  check_bool "adder-1 intact" true
    (List.for_all
       (fun t -> List.exists (Triple.equal t) remaining)
       (triples 1));
  check_int "size agrees with select" (S.size s) (List.length remaining);
  check_int "count agrees with select" (S.count ~predicate:"p" s)
    (List.length remaining)

let test_sharded_stale_pair_after_domains () =
  (* Remove + re-add races across domains must not leave duplicate pair
     bucket entries: every surviving subject+predicate bucket holds the
     triple exactly once. *)
  let module S = Store.Sharded_store in
  let s = S.create () in
  let triples =
    List.init 100 (fun i ->
        Triple.make (Printf.sprintf "r%d" i) "p" (Triple.literal "v"))
  in
  List.iter (fun t -> ignore (S.add s t)) triples;
  let churn () =
    List.iter
      (fun t ->
        ignore (S.remove s t);
        ignore (S.add s t))
      triples
  in
  let domains = List.init 4 (fun _ -> Domain.spawn churn) in
  List.iter Domain.join domains;
  List.iter
    (fun (t : Triple.t) ->
      check_int
        (Printf.sprintf "sp bucket of %s has one entry" t.subject)
        1
        (List.length (S.select ~subject:t.subject ~predicate:"p" s)))
    triples;
  check_int "po bucket consistent" (S.size s)
    (List.length (S.select ~predicate:"p" ~object_:(Triple.literal "v") s))

(* ----------------------------------------------------- atom interning *)

(* The table is process-global, so these tests use strings no other test
   interns and never assume a starting size. *)

let test_atom_roundtrip () =
  let s = "atom-test-roundtrip-α" in
  check_bool "not yet interned" true (Atom.find s = None);
  let id = Atom.intern s in
  check_int "intern is idempotent" id (Atom.intern s);
  check_bool "find agrees" true (Atom.find s = Some id);
  check "to_string inverts" s (Atom.to_string id);
  check_bool "canonical instance is physically stable" true
    (Atom.to_string id == Atom.to_string id)

let test_atom_find_never_interns () =
  let before = Atom.size () in
  for i = 0 to 99 do
    ignore (Atom.find (Printf.sprintf "atom-test-never-stored-%d" i))
  done;
  check_int "find did not grow the table" before (Atom.size ());
  check_bool "unknown id raises" true
    (match Atom.to_string max_int with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_atom_canon () =
  let interned = "atom-test-canon-hit" in
  let id = Atom.intern interned in
  (* A fresh copy with the same contents canonicalizes to the stored
     instance — physical equality, the String.equal fast path. *)
  let copy = String.sub (interned ^ "!") 0 (String.length interned) in
  check_bool "copy is a distinct instance" false (copy == interned);
  check_bool "canon returns the stored instance" true
    (Atom.canon copy == Atom.to_string id);
  let stranger = "atom-test-canon-miss" in
  check_bool "canon of an unknown string is the argument" true
    (Atom.canon stranger == stranger)

let test_atom_growth_dense_ids () =
  (* Force several doublings; ids must stay dense and stable. *)
  let ids =
    List.init 3000 (fun i -> Atom.intern (Printf.sprintf "atom-test-grow-%d" i))
  in
  List.iteri
    (fun i id ->
      if Atom.intern (Printf.sprintf "atom-test-grow-%d" i) <> id then
        Alcotest.failf "id %d moved after growth" i)
    ids;
  let sorted = List.sort_uniq compare ids in
  check_int "ids are distinct" 3000 (List.length sorted)

let test_atom_parallel_intern () =
  (* Four domains intern overlapping ranges; every string must end up
     with exactly one id, and readers racing the appends must never see
     an inconsistent snapshot. *)
  let name i = Printf.sprintf "atom-test-par-%d" i in
  let worker d () =
    let ids = Array.make 512 (-1) in
    for i = 0 to 511 do
      ids.(i) <- Atom.intern (name ((i + (d * 128)) mod 512));
      ignore (Atom.find (name (511 - i)))
    done;
    ids
  in
  let domains = List.init 4 (fun d -> Domain.spawn (worker d)) in
  let _ = List.map Domain.join domains in
  for i = 0 to 511 do
    let id = Atom.intern (name i) in
    check "parallel intern converged" (name i) (Atom.to_string id)
  done

(* ------------------------------------------- columnar store internals *)

let test_columnar_compaction () =
  (* Churn enough rows through the store to force tombstone compaction;
     contents and every index must survive it. *)
  let module S = Store.Columnar_store in
  let s = S.create () in
  let tr i = Triple.make (Printf.sprintf "c%d" i) "p" (Triple.literal "v") in
  for round = 0 to 4 do
    for i = 0 to 999 do
      ignore (S.add s (tr ((round * 1000) + i)))
    done;
    for i = 0 to 999 do
      if i mod 2 = 0 then ignore (S.remove s (tr ((round * 1000) + i)))
    done
  done;
  check_int "size survives churn" 2500 (S.size s);
  check_int "predicate count" 2500 (S.count ~predicate:"p" s);
  check_int "object select" 2500
    (List.length (S.select ~object_:(Triple.literal "v") s));
  check_bool "survivor present" true (S.mem s (tr 1));
  check_bool "victim gone" false (S.mem s (tr 0));
  check_int "sp bucket exact" 1 (S.count ~subject:"c1" ~predicate:"p" s);
  check_int "removed sp bucket empty" 0 (S.count ~subject:"c0" ~predicate:"p" s)

let test_indexed_clear_purges_indexes () =
  (* Regression: [clear] must purge the pair indexes and keep the removal
     stamp monotone. The old stamp rewind (to 0) could let a bucket
     cleaned before the clear alias a fresh post-clear stamp and serve
     stale items as exact. *)
  let module S = Store.Indexed_store in
  let s = S.create () in
  let t = Triple.make "cl-s" "cl-p" (Triple.literal "cl-v") in
  ignore (S.add s t);
  ignore (S.remove s t);
  (* Lazy-clean the sp and po buckets at the current stamp. *)
  check_int "sp cleaned empty" 0 (List.length (S.select ~subject:"cl-s" ~predicate:"cl-p" s));
  check_int "po cleaned empty" 0
    (List.length (S.select ~predicate:"cl-p" ~object_:(Triple.literal "cl-v") s));
  S.clear s;
  check_int "empty after clear" 0 (S.size s);
  check_bool "select empty after clear" true (S.select s = []);
  (* Reuse the same keys after the clear: every index answers exactly. *)
  ignore (S.add s t);
  check_int "sp exact after clear+re-add" 1
    (List.length (S.select ~subject:"cl-s" ~predicate:"cl-p" s));
  check_int "po exact after clear+re-add" 1
    (List.length (S.select ~predicate:"cl-p" ~object_:(Triple.literal "cl-v") s));
  check_int "count sp" 1 (S.count ~subject:"cl-s" ~predicate:"cl-p" s);
  ignore (S.remove s t);
  check_int "sp empty after final remove" 0
    (List.length (S.select ~subject:"cl-s" ~predicate:"cl-p" s));
  S.clear s;
  S.clear s;
  (* Double clear then fresh content: still exact. *)
  ignore (S.add s t);
  check_int "exact after double clear" 1
    (S.count ~predicate:"cl-p" ~object_:(Triple.literal "cl-v") s)

let test_sharded_columnar_parallel () =
  (* The sharded wrapper over the columnar base: disjoint adds from four
     domains, with interleaved cross-shard reads. *)
  let module S = Store.Sharded_columnar in
  let s = S.create () in
  let per_domain = 500 in
  let worker d () =
    for i = 0 to per_domain - 1 do
      ignore
        (S.add s
           (Triple.make
              (Printf.sprintf "sc%d-r%d" d i)
              "p"
              (Triple.literal (string_of_int i))));
      if i mod 50 = 0 then ignore (S.select ~predicate:"p" s);
      if i mod 25 = 0 then
        ignore (S.exists ~subject:(Printf.sprintf "sc%d-r%d" d (i / 2)) s)
    done
  in
  let domains = List.init 4 (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join domains;
  check_int "all triples present" (4 * per_domain) (S.size s);
  check_int "count agrees" (4 * per_domain) (S.count ~predicate:"p" s)

(* ---------------------------------------------------------------- TRIM *)

let make_trim () =
  let trim = Trim.create () in
  Trim.add_all trim sample;
  trim

let test_trim_accessors () =
  let trim = make_trim () in
  check "literal_of" "John Smith"
    (Option.get (Trim.literal_of trim ~subject:"b1" ~predicate:"bundleName"));
  check "resource_of" "m1"
    (Option.get (Trim.resource_of trim ~subject:"s1" ~predicate:"scrapMark"));
  check_bool "literal_of on resource" true
    (Trim.literal_of trim ~subject:"s1" ~predicate:"scrapMark" = None);
  check_bool "absent" true
    (Trim.object_of trim ~subject:"zz" ~predicate:"zz" = None)

let test_trim_set () =
  let trim = make_trim () in
  Trim.set trim ~subject:"b1" ~predicate:"bundleName"
    (Triple.literal "Jane Doe");
  check "updated" "Jane Doe"
    (Option.get (Trim.literal_of trim ~subject:"b1" ~predicate:"bundleName"));
  check_int "no duplicate" 1
    (List.length (Trim.select ~subject:"b1" ~predicate:"bundleName" trim))

let test_trim_remove_subject () =
  let trim = make_trim () in
  check_int "removed 2" 2 (Trim.remove_subject trim "s1");
  check_int "left" 3 (Trim.size trim);
  check_int "removed 0" 0 (Trim.remove_subject trim "s1")

let test_trim_count_exists () =
  let trim = make_trim () in
  check_int "count_select all" 5 (Trim.count_select trim);
  check_int "count_select subject" 2 (Trim.count_select ~subject:"b1" trim);
  check_int "count_select sp" 1
    (Trim.count_select ~subject:"s1" ~predicate:"scrapName" trim);
  check_int "count_select miss" 0 (Trim.count_select ~subject:"zz" trim);
  check_bool "exists subject" true (Trim.exists ~subject:"b1" trim);
  check_bool "exists sp" true
    (Trim.exists ~subject:"s1" ~predicate:"scrapMark" trim);
  check_bool "exists miss" false (Trim.exists ~subject:"zz" trim);
  ignore (Trim.remove trim t3);
  check_int "count_select tracks removal" 0
    (Trim.count_select ~subject:"s1" ~predicate:"scrapName" trim);
  check_bool "exists tracks removal" false
    (Trim.exists ~subject:"s1" ~predicate:"scrapName" trim)

let test_new_id () =
  let trim = make_trim () in
  let a = Trim.new_id ~prefix:"x" trim in
  let b = Trim.new_id ~prefix:"x" trim in
  check_bool "distinct" true (a <> b);
  (* Ids never collide with existing subjects. *)
  ignore (Trim.add trim (Triple.make "x3" "p" (Triple.literal "v")));
  let c = Trim.new_id ~prefix:"x" trim in
  check_bool "skips occupied" true (c <> "x3" && c <> a && c <> b)

let test_view () =
  let trim = make_trim () in
  (* Unrelated triple must not appear in the view. *)
  ignore (Trim.add trim (Triple.make "other" "p" (Triple.literal "v")));
  let view = Trim.view trim "b1" in
  check_int "reachable triples" 5 (List.length view);
  check_bool "contains nested mark" true (List.exists (Triple.equal t5) view);
  check_bool "excludes unrelated" true
    (not (List.exists (fun (tr : Triple.t) -> tr.subject = "other") view));
  Alcotest.(check (list string))
    "bfs order" [ "b1"; "s1"; "m1" ]
    (Trim.reachable_resources trim "b1")

let test_view_cycle_safe () =
  let trim = Trim.create () in
  Trim.add_all trim
    [
      Triple.make "a" "next" (Triple.resource "b");
      Triple.make "b" "next" (Triple.resource "a");
      Triple.make "b" "name" (Triple.literal "bee");
    ];
  check_int "cycle view" 3 (List.length (Trim.view trim "a"));
  Alcotest.(check (list string)) "cycle resources" [ "a"; "b" ]
    (Trim.reachable_resources trim "a")

let test_view_of_leaf () =
  let trim = make_trim () in
  check_int "leaf has no outgoing" 0 (List.length (Trim.view trim "nowhere"));
  Alcotest.(check (list string)) "root only" [ "nowhere" ]
    (Trim.reachable_resources trim "nowhere")

let test_subjects_predicates () =
  let trim = make_trim () in
  Alcotest.(check (list string)) "subjects" [ "b1"; "m1"; "s1" ]
    (Trim.subjects trim);
  Alcotest.(check (list string))
    "predicates"
    [ "bundleContent"; "bundleName"; "markId"; "scrapMark"; "scrapName" ]
    (Trim.predicates trim)

let test_transaction_commit () =
  let trim = make_trim () in
  let result =
    Trim.transaction trim (fun () ->
        ignore (Trim.add trim (Triple.make "x" "p" (Triple.literal "1")));
        Trim.set trim ~subject:"b1" ~predicate:"bundleName"
          (Triple.literal "renamed");
        Ok 42)
  in
  check_bool "committed" true (result = Ok (Ok 42));
  check_int "size" 6 (Trim.size trim);
  check "set survived" "renamed"
    (Option.get (Trim.literal_of trim ~subject:"b1" ~predicate:"bundleName"))

let test_transaction_rollback_on_error () =
  let trim = make_trim () in
  let before = List.sort Triple.compare (Trim.to_list trim) in
  let result =
    Trim.transaction trim (fun () ->
        ignore (Trim.add trim (Triple.make "x" "p" (Triple.literal "1")));
        ignore (Trim.remove_subject trim "s1");
        Trim.set trim ~subject:"b1" ~predicate:"bundleName"
          (Triple.literal "renamed");
        Error "changed my mind")
  in
  check_bool "body error surfaced" true (result = Ok (Error "changed my mind"));
  check_bool "store restored" true
    (List.sort Triple.compare (Trim.to_list trim) = before)

let test_transaction_rollback_on_exception () =
  let trim = make_trim () in
  let before = List.sort Triple.compare (Trim.to_list trim) in
  let result =
    Trim.transaction trim (fun () ->
        ignore (Trim.add trim (Triple.make "x" "p" (Triple.literal "1")));
        failwith "boom")
  in
  (match result with
  | Error (Failure msg) when msg = "boom" -> ()
  | _ -> Alcotest.fail "expected the exception back");
  check_bool "store restored" true
    (List.sort Triple.compare (Trim.to_list trim) = before);
  check_bool "transaction closed" false (Trim.in_transaction trim)

let test_transaction_no_nesting () =
  let trim = make_trim () in
  let result =
    Trim.transaction trim (fun () ->
        match Trim.transaction trim (fun () -> Ok ()) with
        | _ -> Ok ())
  in
  (match result with
  | Error (Invalid_argument _) -> ()
  | _ -> Alcotest.fail "expected nesting rejection");
  check_bool "outer rolled back and closed" false (Trim.in_transaction trim)

let test_dmi_atomically () =
  let dmi = Si_slim.Dmi.create () in
  let pad = Si_slim.Dmi.create_slimpad dmi ~pad_name:"P" in
  let root = Si_slim.Dmi.root_bundle dmi pad in
  let triples = Si_slim.Dmi.triple_count dmi in
  let journal = Si_slim.Dmi.journal_length dmi in
  (* A failed multi-step operation leaves no trace — triples or journal. *)
  let result =
    Si_slim.Dmi.atomically dmi (fun () ->
        let b = Si_slim.Dmi.create_bundle dmi ~name:"temp" ~parent:root () in
        let _ =
          Si_slim.Dmi.create_scrap dmi ~name:"s" ~mark_id:"m" ~parent:b ()
        in
        Error "abort")
  in
  check_bool "aborted" true (result = Error "abort");
  check_int "triples restored" triples (Si_slim.Dmi.triple_count dmi);
  check_int "journal restored" journal (Si_slim.Dmi.journal_length dmi);
  check_int "no bundles appeared" 0
    (List.length (Si_slim.Dmi.nested_bundles dmi root));
  (* A successful one commits. *)
  let result =
    Si_slim.Dmi.atomically dmi (fun () ->
        Ok (Si_slim.Dmi.create_bundle dmi ~name:"kept" ~parent:root ()))
  in
  check_bool "committed" true (Result.is_ok result);
  check_int "bundle kept" 1
    (List.length (Si_slim.Dmi.nested_bundles dmi root));
  check_int "store valid" 0
    (List.length
       (Si_slim.Dmi.validate dmi).Si_metamodel.Validate.violations)

let test_xml_roundtrip () =
  let trim = make_trim () in
  let trim2 =
    match Trim.of_xml (Trim.to_xml trim) with
    | Ok x -> x
    | Error e -> Alcotest.fail e
  in
  check_bool "equal" true (Trim.equal_contents trim trim2)

let test_xml_roundtrip_across_stores () =
  let light = Trim.create_lightweight () in
  Trim.add_all light sample;
  let indexed =
    match Trim.of_xml ~store:(module Store.Indexed_store) (Trim.to_xml light)
    with
    | Ok x -> x
    | Error e -> Alcotest.fail e
  in
  check "store" "indexed" (Trim.store_name indexed);
  check_bool "contents equal across implementations" true
    (Trim.equal_contents light indexed)

let test_file_roundtrip () =
  let trim = make_trim () in
  let path = Filename.temp_file "triples" ".xml" in
  (match Trim.save trim path with Ok () -> () | Error e -> Alcotest.fail e);
  let trim2 =
    match Trim.load path with Ok x -> x | Error e -> Alcotest.fail e
  in
  Sys.remove path;
  check_bool "file roundtrip" true (Trim.equal_contents trim trim2)

let test_xml_rejects_garbage () =
  check_bool "bad root" true
    (Result.is_error (Trim.of_xml (Si_xmlk.Node.element "nope" [])));
  let bad =
    Si_xmlk.Node.element "triples"
      [ Si_xmlk.Node.element "t" ~attrs:[ ("s", "a") ] [] ]
  in
  check_bool "missing predicate" true (Result.is_error (Trim.of_xml bad))

(* ------------------------------------------------------ property tests *)

let gen_obj =
  QCheck.Gen.(
    oneof
      [
        map (fun s -> Triple.resource ("r" ^ string_of_int s)) (int_range 0 20);
        map (fun s -> Triple.literal s)
          (string_size (int_range 0 8) ~gen:(oneofl [ 'a'; 'b'; '<'; '&' ]));
      ])

let gen_triple =
  QCheck.Gen.(
    let* s = int_range 0 20 in
    let* p = oneofl [ "name"; "content"; "mark"; "next" ] in
    let* o = gen_obj in
    return (Triple.make ("r" ^ string_of_int s) p o))

let gen_triples = QCheck.Gen.(list_size (int_range 0 60) gen_triple)

let arbitrary_triples =
  QCheck.make gen_triples ~print:(fun l ->
      String.concat "; " (List.map Triple.to_string l))

let prop_stores_agree =
  QCheck.Test.make ~name:"list and indexed stores agree on select" ~count:200
    arbitrary_triples (fun triples ->
      let ls = Store.List_store.create () in
      let is = Store.Indexed_store.create () in
      Store.List_store.add_all ls triples;
      Store.Indexed_store.add_all is triples;
      let sort = List.sort Triple.compare in
      Store.List_store.size ls = Store.Indexed_store.size is
      && List.for_all
           (fun (tr : Triple.t) ->
             sort (Store.List_store.select ~subject:tr.subject ls)
             = sort (Store.Indexed_store.select ~subject:tr.subject is)
             && sort (Store.List_store.select ~predicate:tr.predicate ls)
                = sort (Store.Indexed_store.select ~predicate:tr.predicate is)
             && sort (Store.List_store.select ~object_:tr.object_ ls)
                = sort (Store.Indexed_store.select ~object_:tr.object_ is))
           triples)

let prop_stores_agree_after_removal =
  QCheck.Test.make ~name:"stores agree after removals" ~count:200
    QCheck.(pair arbitrary_triples (list_of_size (QCheck.Gen.int_range 0 20) QCheck.small_nat))
    (fun (triples, kill_indexes) ->
      let ls = Store.List_store.create () in
      let is = Store.Indexed_store.create () in
      Store.List_store.add_all ls triples;
      Store.Indexed_store.add_all is triples;
      let arr = Array.of_list triples in
      List.iter
        (fun i ->
          if Array.length arr > 0 then begin
            let victim = arr.(i mod Array.length arr) in
            ignore (Store.List_store.remove ls victim);
            ignore (Store.Indexed_store.remove is victim)
          end)
        kill_indexes;
      let sort = List.sort Triple.compare in
      sort (Store.List_store.to_list ls)
      = sort (Store.Indexed_store.to_list is)
      && List.for_all
           (fun (tr : Triple.t) ->
             sort (Store.List_store.select ~subject:tr.subject ls)
             = sort (Store.Indexed_store.select ~subject:tr.subject is))
           triples)

(* Cross-implementation conformance: a random interleaved add/remove
   sequence must leave every registered implementation (list, indexed,
   locked-indexed, sharded) with identical contents and identical answers
   for every bound-position select/count/exists probe — including the
   remove -> re-add cases that exercise stale pair-index cleaning. *)
let gen_op =
  QCheck.Gen.(
    let* t = gen_triple in
    let* add = bool in
    return (if add then `Add t else `Remove t))

let arbitrary_ops =
  QCheck.make
    QCheck.Gen.(list_size (int_range 0 80) gen_op)
    ~print:(fun ops ->
      String.concat "; "
        (List.map
           (function
             | `Add t -> "add " ^ Triple.to_string t
             | `Remove t -> "remove " ^ Triple.to_string t)
           ops))

let prop_all_stores_conform =
  QCheck.Test.make
    ~name:"all registered stores agree on random op sequences" ~count:150
    arbitrary_ops (fun ops ->
      let probes = List.map (function `Add t | `Remove t -> t) ops in
      let snapshot (module S : Store.S) =
        let s = S.create () in
        List.iter
          (function
            | `Add t -> ignore (S.add s t)
            | `Remove t -> ignore (S.remove s t))
          ops;
        let sort = List.sort Triple.compare in
        let per_probe (tr : Triple.t) =
          let selects =
            [
              sort (S.select ~subject:tr.subject s);
              sort (S.select ~predicate:tr.predicate s);
              sort (S.select ~object_:tr.object_ s);
              sort (S.select ~subject:tr.subject ~predicate:tr.predicate s);
              sort (S.select ~predicate:tr.predicate ~object_:tr.object_ s);
              sort
                (S.select ~subject:tr.subject ~predicate:tr.predicate
                   ~object_:tr.object_ s);
            ]
          in
          let counts =
            [
              S.count ~subject:tr.subject s;
              S.count ~subject:tr.subject ~predicate:tr.predicate s;
              S.count ~predicate:tr.predicate ~object_:tr.object_ s;
            ]
          in
          let exists =
            [
              S.exists ~subject:tr.subject s;
              S.exists ~subject:tr.subject ~predicate:tr.predicate s;
              S.exists ~predicate:tr.predicate ~object_:tr.object_ s;
            ]
          in
          (selects, counts, exists)
        in
        (S.size s, sort (S.to_list s), List.map per_probe probes)
      in
      match Store.implementations with
      | [] -> true
      | (_, first) :: rest ->
          let reference = snapshot first in
          List.for_all (fun (_, impl) -> snapshot impl = reference) rest)

let prop_xml_roundtrip =
  QCheck.Test.make ~name:"TRIM XML round-trip" ~count:200 arbitrary_triples
    (fun triples ->
      let trim = Trim.create () in
      Trim.add_all trim triples;
      match Trim.of_xml (Trim.to_xml trim) with
      | Ok trim2 -> Trim.equal_contents trim trim2
      | Error _ -> false)

let prop_binary_roundtrip =
  QCheck.Test.make ~name:"TRIM binary round-trip" ~count:200 arbitrary_triples
    (fun triples ->
      let trim = Trim.create () in
      Trim.add_all trim triples;
      let bytes = Trim.to_binary trim in
      match Trim.of_binary bytes with
      | Ok trim2 ->
          Trim.equal_contents trim trim2
          (* Equal stores produce equal bytes (rows are sorted). *)
          && String.equal bytes (Trim.to_binary trim2)
      | Error _ -> false)

let prop_binary_xml_agree =
  QCheck.Test.make ~name:"binary and XML persistence agree" ~count:100
    arbitrary_triples (fun triples ->
      let trim = Trim.create () in
      Trim.add_all trim triples;
      match (Trim.of_binary (Trim.to_binary trim), Trim.of_xml (Trim.to_xml trim)) with
      | Ok a, Ok b -> Trim.equal_contents a b
      | _ -> false)

let prop_view_is_sound =
  QCheck.Test.make ~name:"view triples all reachable, subjects in closure"
    ~count:200 arbitrary_triples (fun triples ->
      let trim = Trim.create () in
      Trim.add_all trim triples;
      match Trim.subjects trim with
      | [] -> true
      | root :: _ ->
          let resources = Trim.reachable_resources trim root in
          Trim.view trim root
          |> List.for_all (fun (tr : Triple.t) ->
                 List.mem tr.subject resources))

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_stores_agree;
      prop_stores_agree_after_removal;
      prop_all_stores_conform;
      prop_xml_roundtrip;
      prop_binary_roundtrip;
      prop_binary_xml_agree;
      prop_view_is_sound;
    ]

let suite =
  [ ("triple basics", `Quick, test_triple_basics) ]
  @ store_tests (module Store.List_store)
  @ store_tests (module Store.Indexed_store)
  @ store_tests (module Store.Locked_indexed)
  @ store_tests (module Store.Sharded_store)
  @ store_tests (module Store.Columnar_store)
  @ store_tests (module Store.Sharded_columnar)
  @ [
      ("locked: parallel adds across domains", `Quick, test_parallel_adds);
      ("locked: parallel mixed operations", `Quick, test_parallel_mixed_ops);
      ("sharded: parallel adds across domains", `Quick,
       test_sharded_parallel_adds);
      ("sharded: parallel mixed operations", `Quick,
       test_sharded_parallel_mixed_ops);
      ("sharded: pair indexes survive concurrent churn", `Quick,
       test_sharded_stale_pair_after_domains);
      ("atom: intern/find/to_string round-trip", `Quick, test_atom_roundtrip);
      ("atom: find never interns", `Quick, test_atom_find_never_interns);
      ("atom: canon returns stored instances", `Quick, test_atom_canon);
      ("atom: ids stable across growth", `Quick, test_atom_growth_dense_ids);
      ("atom: parallel intern converges", `Quick, test_atom_parallel_intern);
      ("columnar: compaction preserves contents", `Quick,
       test_columnar_compaction);
      ("indexed: clear purges indexes (regression)", `Quick,
       test_indexed_clear_purges_indexes);
      ("sharded-columnar: parallel adds", `Quick,
       test_sharded_columnar_parallel);
    ]
  @ [
      ("trim: typed accessors", `Quick, test_trim_accessors);
      ("trim: set replaces", `Quick, test_trim_set);
      ("trim: remove_subject", `Quick, test_trim_remove_subject);
      ("trim: count_select & exists", `Quick, test_trim_count_exists);
      ("trim: id generation", `Quick, test_new_id);
      ("trim: reachability view", `Quick, test_view);
      ("trim: view is cycle-safe", `Quick, test_view_cycle_safe);
      ("trim: view of unknown resource", `Quick, test_view_of_leaf);
      ("trim: subjects & predicates", `Quick, test_subjects_predicates);
      ("trim: transaction commit", `Quick, test_transaction_commit);
      ("trim: rollback on Error", `Quick, test_transaction_rollback_on_error);
      ("trim: rollback on exception", `Quick,
       test_transaction_rollback_on_exception);
      ("trim: no nested transactions", `Quick, test_transaction_no_nesting);
      ("dmi: atomically", `Quick, test_dmi_atomically);
      ("trim: XML round-trip", `Quick, test_xml_roundtrip);
      ("trim: XML round-trip across stores", `Quick,
       test_xml_roundtrip_across_stores);
      ("trim: file round-trip", `Quick, test_file_roundtrip);
      ("trim: XML rejects garbage", `Quick, test_xml_rejects_garbage);
    ]
  @ props
