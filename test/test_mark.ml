(* Tests for the Mark Manager and the seven mark modules
   (paper §4.2, Figs 6–8; experiments F6, F7, F8, E5). *)

open Si_mark

let check = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

(* Same, for the typed resolution errors. *)
let okr = function
  | Ok v -> v
  | Error e ->
      Alcotest.failf "unexpected error: %s"
        (Manager.resolve_error_to_string e)

(* A desktop with one document of every kind. *)
let fixture () =
  let desk = Desktop.create () in
  (* Spreadsheet: the medication list of Fig 4. *)
  let wb =
    Si_spreadsheet.Workbook.create ~sheet_names:[ "Medications" ] ()
  in
  let set a v = Si_spreadsheet.Workbook.set wb ~sheet_name:"Medications" a v in
  set "A1" "Drug";
  set "B1" "Dose";
  set "A2" "Dopamine";
  set "B2" "5";
  set "A3" "Fentanyl";
  set "B3" "0.05";
  Desktop.add_workbook desk "meds.xls" wb;
  (* XML: the lab report. *)
  let labs =
    Si_xmlk.Parse.node_exn
      "<report><patient>John Smith</patient><panel name=\"electrolytes\">\
       <result test=\"Na\" units=\"mmol/L\">140</result>\
       <result test=\"K\" units=\"mmol/L\">4.2</result></panel></report>"
  in
  Desktop.add_xml desk "labs.xml" labs;
  (* Text note. *)
  Desktop.add_text desk "note.txt"
    (Si_textdoc.Textdoc.of_lines
       [ "Patient: John Smith"; "Plan: wean pressors"; "Call renal." ]);
  (* Word document. *)
  let word = Si_wordproc.Wordproc.create ~title:"Admission Note" () in
  Si_wordproc.Wordproc.append_paragraph word
    "Admitted with sepsis and acute renal failure.";
  let dx = Option.get (Si_wordproc.Wordproc.find_first word "sepsis") in
  (match Si_wordproc.Wordproc.add_bookmark word ~name:"dx" dx with
  | Ok () -> ()
  | Error e -> failwith e);
  Desktop.add_word desk "admission.doc" word;
  (* Slides. *)
  let deck = Si_slides.Slides.create ~title:"Morning Report" () in
  let s1 = Si_slides.Slides.add_slide deck ~title:"Case" in
  let _ =
    Si_slides.Slides.add_shape s1 ~id:"problems"
      (Si_slides.Slides.Bullets [ "Septic shock"; "ARF" ])
  in
  Desktop.add_slides desk "rounds.ppt" deck;
  (* PDF. *)
  let pdf = Si_pdfdoc.Pdfdoc.create ~title:"Guideline" () in
  let p1 = Si_pdfdoc.Pdfdoc.add_page pdf in
  let _ = Si_pdfdoc.Pdfdoc.add_line p1 ~y:100. "MAP >= 65 mmHg" in
  Desktop.add_pdf desk "guideline.pdf" pdf;
  (* HTML. *)
  Desktop.add_html desk "wiki.html"
    "<html><head><title>Sepsis</title></head><body>\
     <h1 id=\"tx\">Treatment</h1><p>Start antibiotics early.</p></body></html>";
  let mgr = Manager.create () in
  Desktop.install_modules desk mgr;
  (desk, mgr)

(* ------------------------------------------------- registry behaviour *)

let test_registry () =
  let _, mgr = fixture () in
  Alcotest.(check (list string))
    "module names"
    [ "excel"; "html"; "pdf"; "slides"; "text"; "word"; "xml" ]
    (Manager.module_names mgr);
  Alcotest.(check (list string))
    "supported types"
    [ "excel"; "html"; "pdf"; "slides"; "text"; "word"; "xml" ]
    (Manager.supported_types mgr);
  check_bool "duplicate rejected" true
    (Result.is_error
       (Manager.register mgr
          {
            Manager.module_name = "excel";
            handles_type = "excel";
            validate = (fun _ -> Ok ());
            resolve = (fun _ -> Error "stub");
          }))

let test_unknown_type_rejected () =
  let _, mgr = fixture () in
  check_bool "create fails" true
    (Result.is_error
       (Manager.create_mark mgr ~mark_type:"hologram" ~fields:[] ()))

(* ------------------------------------------------- per-type round trips *)

(* F7: for every base type — capture fields from a selection, create the
   mark, resolve it, and get the element's content back. *)

let test_excel_mark () =
  let desk, mgr = fixture () in
  let wb = ok (Desktop.open_workbook desk "meds.xls") in
  let fields =
    Excel_mark.capture wb ~file_name:"meds.xls" ~sheet_name:"Medications"
      ~range:(Si_spreadsheet.Cellref.of_string_exn "A2:B2")
  in
  let mark = ok (Manager.create_mark mgr ~mark_type:"excel" ~fields ()) in
  check "excerpt cached" "Dopamine\t5" mark.Mark.excerpt;
  let res = okr (Manager.resolve mgr mark.Mark.mark_id) in
  check "excerpt" "Dopamine\t5" res.Mark.res_excerpt;
  check_bool "context shows selection brackets" true
    (let re = Re.compile (Re.str "[Dopamine]\t[5]") in
     Re.execp re res.Mark.res_context);
  check "source" "meds.xls!Medications!A2:B2" res.Mark.res_source

let test_excel_mark_fields_fig8 () =
  (* Fig 8 exactly: markId, fileName, sheetName, range. *)
  let _, mgr = fixture () in
  let fields =
    [ ("fileName", "meds.xls"); ("sheetName", "Medications"); ("range", "B2") ]
  in
  let mark = ok (Manager.create_mark mgr ~mark_type:"excel" ~fields ()) in
  check "fileName" "meds.xls" (Mark.field_exn mark "fileName");
  check "sheetName" "Medications" (Mark.field_exn mark "sheetName");
  check "range" "B2" (Mark.field_exn mark "range");
  check "resolves to the cell" "5"
    (okr (Manager.resolve_with mgr mark.Mark.mark_id Mark.Extract_content))

let test_excel_bad_addresses () =
  let _, mgr = fixture () in
  let try_fields fields =
    Result.is_error (Manager.create_mark mgr ~mark_type:"excel" ~fields ())
  in
  check_bool "bad range" true
    (try_fields
       [ ("fileName", "meds.xls"); ("sheetName", "Medications");
         ("range", "ZZZ") ]);
  check_bool "missing field" true
    (try_fields [ ("fileName", "meds.xls"); ("range", "A1") ]);
  check_bool "unknown sheet" true
    (try_fields
       [ ("fileName", "meds.xls"); ("sheetName", "Nope"); ("range", "A1") ]);
  check_bool "unknown file" true
    (try_fields
       [ ("fileName", "gone.xls"); ("sheetName", "Medications");
         ("range", "A1") ])

let test_excel_mark_defined_name () =
  (* A mark addressing a defined name survives row insertion in the base
     workbook, while a literal-range mark goes stale — the Excel analogue
     of text-mark re-anchoring. *)
  let desk, mgr = fixture () in
  let wb = ok (Desktop.open_workbook desk "meds.xls") in
  (match
     Si_spreadsheet.Workbook.define_name wb ~name:"Fentanyl_row"
       ~sheet_name:"Medications"
       (Si_spreadsheet.Cellref.of_string_exn "A3:B3")
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let name_fields =
    ok (Excel_mark.capture_name wb ~file_name:"meds.xls" "Fentanyl_row")
  in
  let by_name =
    ok (Manager.create_mark mgr ~mark_type:"excel" ~fields:name_fields ())
  in
  let by_range =
    ok
      (Manager.create_mark mgr ~mark_type:"excel"
         ~fields:
           [ ("fileName", "meds.xls"); ("sheetName", "Medications");
             ("range", "A3:B3") ]
         ())
  in
  check "both see fentanyl" "Fentanyl\t0.05"
    (okr (Manager.resolve_with mgr by_name.Mark.mark_id Mark.Extract_content));
  (* Two rows inserted above: the named mark follows, the range mark now
     reads the wrong (empty) cells. *)
  (match
     Si_spreadsheet.Workbook.insert_rows wb ~sheet_name:"Medications" ~at:2
       ~count:2 ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check "named mark follows the rows" "Fentanyl\t0.05"
    (okr (Manager.resolve_with mgr by_name.Mark.mark_id Mark.Extract_content));
  check "range mark is stale" "\t"
    (okr (Manager.resolve_with mgr by_range.Mark.mark_id Mark.Extract_content));
  (* Drift detection flags exactly the stale one. *)
  check_bool "named unchanged" true
    (okr (Manager.check_drift mgr by_name.Mark.mark_id) = Manager.Unchanged);
  (match okr (Manager.check_drift mgr by_range.Mark.mark_id) with
  | Manager.Changed _ -> ()
  | _ -> Alcotest.fail "expected the range mark to report drift");
  (* Unknown names fail at capture and at resolution. *)
  check_bool "capture unknown name" true
    (Result.is_error (Excel_mark.capture_name wb ~file_name:"meds.xls" "Nope"));
  ignore (Si_spreadsheet.Workbook.remove_name wb "Fentanyl_row");
  check_bool "resolution after name removal" true
    (Result.is_error (Manager.resolve mgr by_name.Mark.mark_id))

let test_xml_mark () =
  let desk, mgr = fixture () in
  let root = ok (Desktop.open_xml desk "labs.xml") in
  (* Select the K result element (second result of the panel). *)
  let node =
    Option.get
      (Si_xmlk.Path.resolve_element root
         (Si_xmlk.Path.of_string_exn "/report/panel/result[2]"))
  in
  let fields = ok (Xml_mark.capture ~root ~file_name:"labs.xml" node) in
  check "xmlPath field (Fig 8)" "/report/panel/result[2]"
    (List.assoc "xmlPath" fields);
  let mark = ok (Manager.create_mark mgr ~mark_type:"xml" ~fields ()) in
  let res = okr (Manager.resolve mgr mark.Mark.mark_id) in
  check "excerpt" "4.2" res.Mark.res_excerpt;
  check_bool "context is the panel" true
    (let re = Re.compile (Re.str "electrolytes") in
     Re.execp re res.Mark.res_context);
  check "source" "labs.xml#/report/panel/result[2]" res.Mark.res_source

let test_xml_mark_attribute_target () =
  let _, mgr = fixture () in
  let fields =
    [ ("fileName", "labs.xml"); ("xmlPath", "/report/panel/@name") ]
  in
  let mark = ok (Manager.create_mark mgr ~mark_type:"xml" ~fields ()) in
  check "attribute excerpt" "electrolytes"
    (okr (Manager.resolve_with mgr mark.Mark.mark_id Mark.Extract_content))

let test_xml_mark_reanchor () =
  (* The lab report gets restructured: a new panel is prepended, so the
     stored path points at the wrong element — but the mark remembers the
     selection and re-anchors on content. *)
  let desk, mgr = fixture () in
  let root = ok (Desktop.open_xml desk "labs.xml") in
  let node =
    Option.get
      (Si_xmlk.Path.resolve_element root
         (Si_xmlk.Path.of_string_exn "/report/panel/result[2]"))
  in
  let fields = ok (Xml_mark.capture ~root ~file_name:"labs.xml" node) in
  let mark = ok (Manager.create_mark mgr ~mark_type:"xml" ~fields ()) in
  Desktop.add_xml desk "labs.xml"
    (Si_xmlk.Parse.node_exn
       "<report><panel name=\"cbc\"><result test=\"WBC\">12</result>\
        <result test=\"Hgb\">9.1</result></panel>\
        <panel name=\"electrolytes\">\
        <result test=\"Na\">140</result>\
        <result test=\"K\">4.2</result></panel></report>");
  let res = okr (Manager.resolve mgr mark.Mark.mark_id) in
  check "re-anchored on content" "4.2" res.Mark.res_excerpt;
  check_bool "source shows effective path" true
    (let re = Re.compile (Re.str "result[2]") in
     Re.execp re res.Mark.res_source);
  (* If the content vanishes entirely, resolution fails with a clear
     message. *)
  Desktop.add_xml desk "labs.xml" (Si_xmlk.Parse.node_exn "<report/>");
  check_bool "gone" true (Result.is_error (Manager.resolve mgr mark.Mark.mark_id))

let test_text_mark_and_reanchor () =
  let desk, mgr = fixture () in
  let doc = ok (Desktop.open_text desk "note.txt") in
  let span = Option.get (Si_textdoc.Textdoc.find_first doc "wean pressors") in
  let fields = ok (Text_mark.capture doc ~file_name:"note.txt" span) in
  let mark = ok (Manager.create_mark mgr ~mark_type:"text" ~fields ()) in
  check "excerpt" "wean pressors"
    (okr (Manager.resolve_with mgr mark.Mark.mark_id Mark.Extract_content));
  (* The note gets edited: a line is inserted before the plan. *)
  Desktop.add_text desk "note.txt"
    (Si_textdoc.Textdoc.of_lines
       [
         "Patient: John Smith"; "Overnight: afebrile";
         "Plan: wean pressors"; "Call renal.";
       ]);
  check "still resolves after edit" "wean pressors"
    (okr (Manager.resolve_with mgr mark.Mark.mark_id Mark.Extract_content))

let test_word_mark_span_and_bookmark () =
  let desk, mgr = fixture () in
  let doc = ok (Desktop.open_word desk "admission.doc") in
  let span = Option.get (Si_wordproc.Wordproc.find_first doc "renal failure") in
  let span_fields =
    ok (Word_mark.capture_span doc ~file_name:"admission.doc" span)
  in
  let m1 =
    ok (Manager.create_mark mgr ~mark_type:"word" ~fields:span_fields ())
  in
  check "span excerpt" "renal failure"
    (okr (Manager.resolve_with mgr m1.Mark.mark_id Mark.Extract_content));
  let bm_fields =
    ok (Word_mark.capture_bookmark doc ~file_name:"admission.doc" "dx")
  in
  let m2 =
    ok (Manager.create_mark mgr ~mark_type:"word" ~fields:bm_fields ())
  in
  check "bookmark excerpt" "sepsis"
    (okr (Manager.resolve_with mgr m2.Mark.mark_id Mark.Extract_content));
  let res = okr (Manager.resolve mgr m2.Mark.mark_id) in
  check_bool "context carries title" true
    (let re = Re.compile (Re.str "Admission Note") in
     Re.execp re res.Mark.res_context)

let test_slides_mark () =
  let desk, mgr = fixture () in
  let deck = ok (Desktop.open_slides desk "rounds.ppt") in
  let fields =
    ok
      (Slides_mark.capture deck ~file_name:"rounds.ppt"
         { Si_slides.Slides.slide = 1; shape_id = "problems"; bullet = Some 2 })
  in
  let mark = ok (Manager.create_mark mgr ~mark_type:"slides" ~fields ()) in
  check "bullet excerpt" "ARF"
    (okr (Manager.resolve_with mgr mark.Mark.mark_id Mark.Extract_content));
  check_bool "bad capture" true
    (Result.is_error
       (Slides_mark.capture deck ~file_name:"rounds.ppt"
          { Si_slides.Slides.slide = 9; shape_id = "problems"; bullet = None }))

let test_pdf_mark () =
  let desk, mgr = fixture () in
  let pdf = ok (Desktop.open_pdf desk "guideline.pdf") in
  let page = Option.get (Si_pdfdoc.Pdfdoc.nth_page pdf 1) in
  let fields =
    ok
      (Pdf_mark.capture pdf ~file_name:"guideline.pdf" ~page_number:1
         (Si_pdfdoc.Pdfdoc.spans page))
  in
  let mark = ok (Manager.create_mark mgr ~mark_type:"pdf" ~fields ()) in
  check "excerpt" "MAP >= 65 mmHg"
    (okr (Manager.resolve_with mgr mark.Mark.mark_id Mark.Extract_content));
  (* A region that selects nothing errors out. *)
  check_bool "empty region" true
    (Result.is_error
       (Manager.create_mark mgr ~mark_type:"pdf"
          ~fields:
            [ ("fileName", "guideline.pdf"); ("page", "1"); ("x", "0");
              ("y", "500"); ("w", "10"); ("h", "10") ]
          ()))

let test_html_mark () =
  let desk, mgr = fixture () in
  let root = ok (Desktop.open_html desk "wiki.html") in
  let fields = ok (Html_mark.capture_anchor root ~file_name:"wiki.html" "tx") in
  let mark = ok (Manager.create_mark mgr ~mark_type:"html" ~fields ()) in
  check "anchor excerpt" "Treatment"
    (okr (Manager.resolve_with mgr mark.Mark.mark_id Mark.Extract_content));
  let res = okr (Manager.resolve mgr mark.Mark.mark_id) in
  check "source has fragment" "wiki.html#tx" res.Mark.res_source;
  check_bool "context has page title" true
    (let re = Re.compile (Re.str "Sepsis") in
     Re.execp re res.Mark.res_context);
  (* Node-path addressing too. *)
  let p =
    Option.get
      (Si_xmlk.Path.resolve_element root
         (Si_xmlk.Path.of_string_exn "/html/body/p"))
  in
  let fields2 = ok (Html_mark.capture_node ~root ~file_name:"wiki.html" p) in
  let m2 = ok (Manager.create_mark mgr ~mark_type:"html" ~fields:fields2 ()) in
  check "node excerpt" "Start antibiotics early."
    (okr (Manager.resolve_with mgr m2.Mark.mark_id Mark.Extract_content))

(* ------------------------------------------- F6: the three behaviours *)

let test_behaviours () =
  let _, mgr = fixture () in
  let fields =
    [ ("fileName", "labs.xml"); ("xmlPath", "/report/panel/result[1]") ]
  in
  let mark = ok (Manager.create_mark mgr ~mark_type:"xml" ~fields ()) in
  let res = okr (Manager.resolve mgr mark.Mark.mark_id) in
  (* Extract content: just the element's content. *)
  check "extract" "140" (Mark.apply_behaviour Mark.Extract_content res);
  (* Navigate (simultaneous viewing): the element in context. *)
  check_bool "navigate shows siblings" true
    (let re = Re.compile (Re.str "4.2") in
     Re.execp re (Mark.apply_behaviour Mark.Navigate res));
  (* Display in place (independent viewing): self-contained rendering. *)
  check_bool "display is self-contained markup" true
    (let re = Re.compile (Re.str "<result") in
     Re.execp re (Mark.apply_behaviour Mark.Display_in_place res))

let test_multiple_resolvers_per_type () =
  (* §5 (Monikers comparison): "one manager for Excel can display Excel
     Marks in context and another act as an in-place viewer". *)
  let desk, mgr = fixture () in
  Manager.register_exn mgr
    (Excel_mark.mark_module ~module_name:"excel-inplace"
       ~open_workbook:(Desktop.open_workbook desk) ());
  let fields =
    [ ("fileName", "meds.xls"); ("sheetName", "Medications"); ("range", "A3") ]
  in
  let mark = ok (Manager.create_mark mgr ~mark_type:"excel" ~fields ()) in
  let via_default = okr (Manager.resolve mgr mark.Mark.mark_id) in
  let via_named =
    okr (Manager.resolve ~module_name:"excel-inplace" mgr mark.Mark.mark_id)
  in
  check "same element" via_default.Mark.res_excerpt via_named.Mark.res_excerpt;
  check_int "two modules for excel" 2
    (List.length (Manager.modules_for_type mgr "excel"));
  check_bool "wrong module for type" true
    (Result.is_error
       (Manager.resolve ~module_name:"xml" mgr mark.Mark.mark_id))

(* --------------------------------------------------------- E5: extension *)

let test_extensibility_new_type () =
  (* Adding a brand-new base type touches no existing module: register a
     "fortune" mark type from the outside and use it alongside the rest. *)
  let _, mgr = fixture () in
  let fortunes = [ ("f1", "You will write many tests.") ] in
  Manager.register_exn mgr
    {
      Manager.module_name = "fortune";
      handles_type = "fortune";
      validate =
        (fun fields ->
          Result.map (fun _ -> ()) (Fields.get fields "key"));
      resolve =
        (fun fields ->
          match Fields.get fields "key" with
          | Error _ as e -> e
          | Ok key -> (
              match List.assoc_opt key fortunes with
              | Some text ->
                  Ok
                    {
                      Mark.res_excerpt = text;
                      res_context = text;
                      res_display = text;
                      res_source = "fortune:" ^ key;
                    }
              | None -> Error ("no fortune " ^ key)));
    };
  let mark =
    ok
      (Manager.create_mark mgr ~mark_type:"fortune"
         ~fields:[ ("key", "f1") ] ())
  in
  check "resolves" "You will write many tests."
    (okr (Manager.resolve_with mgr mark.Mark.mark_id Mark.Extract_content));
  check_int "eight types now" 8 (List.length (Manager.supported_types mgr))

(* ------------------------------------------------------- drift detection *)

let test_drift () =
  let desk, mgr = fixture () in
  let fields =
    [ ("fileName", "meds.xls"); ("sheetName", "Medications"); ("range", "B2") ]
  in
  let mark = ok (Manager.create_mark mgr ~mark_type:"excel" ~fields ()) in
  check_bool "unchanged" true
    (okr (Manager.check_drift mgr mark.Mark.mark_id) = Manager.Unchanged);
  (* The base document changes under the mark. *)
  let wb = ok (Desktop.open_workbook desk "meds.xls") in
  Si_spreadsheet.Workbook.set wb ~sheet_name:"Medications" "B2" "10";
  (match okr (Manager.check_drift mgr mark.Mark.mark_id) with
  | Manager.Changed { was; now } ->
      check "was" "5" was;
      check "now" "10" now
  | _ -> Alcotest.fail "expected Changed");
  (* Refresh re-caches. *)
  let refreshed = okr (Manager.refresh_excerpt mgr mark.Mark.mark_id) in
  check "refreshed" "10" refreshed.Mark.excerpt;
  check_bool "unchanged again" true
    (okr (Manager.check_drift mgr mark.Mark.mark_id) = Manager.Unchanged)

let test_drift_unresolvable () =
  let desk, mgr = fixture () in
  let fields =
    [ ("fileName", "labs.xml"); ("xmlPath", "/report/panel/result[2]") ]
  in
  let mark = ok (Manager.create_mark mgr ~mark_type:"xml" ~fields ()) in
  (* The document is replaced by one where the path no longer resolves. *)
  Desktop.add_xml desk "labs.xml" (Si_xmlk.Parse.node_exn "<report/>");
  (match okr (Manager.check_drift mgr mark.Mark.mark_id) with
  | Manager.Unresolvable _ -> ()
  | _ -> Alcotest.fail "expected Unresolvable")

(* ----------------------------------------------------------- storage *)

let test_mark_storage () =
  let _, mgr = fixture () in
  let fields =
    [ ("fileName", "labs.xml"); ("xmlPath", "/report/patient") ]
  in
  let mark = ok (Manager.create_mark mgr ~mark_type:"xml" ~fields ()) in
  check_int "count" 1 (Manager.mark_count mgr);
  check_bool "lookup" true (Manager.mark mgr mark.Mark.mark_id <> None);
  check_bool "remove" true (Manager.remove_mark mgr mark.Mark.mark_id);
  check_bool "gone" true (Manager.mark mgr mark.Mark.mark_id = None);
  check_bool "remove again" false (Manager.remove_mark mgr mark.Mark.mark_id)

let test_persistence () =
  let desk, mgr = fixture () in
  let make mark_type fields =
    ok (Manager.create_mark mgr ~mark_type ~fields ())
  in
  let m1 =
    make "excel"
      [ ("fileName", "meds.xls"); ("sheetName", "Medications"); ("range", "B3") ]
  in
  let _ =
    make "xml" [ ("fileName", "labs.xml"); ("xmlPath", "/report/patient") ]
  in
  let path = Filename.temp_file "marks" ".xml" in
  ok (Manager.save mgr path);
  (* A fresh manager with the same desktop modules loads the marks. *)
  let mgr2 = Manager.create () in
  Desktop.install_modules desk mgr2;
  (match Manager.load_into mgr2 path with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Sys.remove path;
  check_int "loaded" 2 (Manager.mark_count mgr2);
  check "mark equal across managers" "0.05"
    (okr (Manager.resolve_with mgr2 m1.Mark.mark_id Mark.Extract_content));
  (* Freshly created marks in the loaded manager do not collide with
     loaded ids. *)
  let m3 =
    ok
      (Manager.create_mark mgr2 ~mark_type:"xml"
         ~fields:[ ("fileName", "labs.xml"); ("xmlPath", "/report") ]
         ())
  in
  check_bool "no id collision" true
    (m3.Mark.mark_id <> m1.Mark.mark_id
    && Manager.mark_count mgr2 = 3)

let test_marks_of_unsupported_type_kept () =
  let _, mgr = fixture () in
  let alien =
    Mark.make ~id:"alien-1" ~mark_type:"hologram"
      ~fields:[ ("coords", "1,2,3") ] ()
  in
  check_bool "stored" true (Result.is_ok (Manager.add_mark mgr alien));
  check_bool "resolution fails gracefully" true
    (Result.is_error (Manager.resolve mgr "alien-1"))

let test_mark_xml_roundtrip () =
  let mark =
    Mark.make ~id:"m1" ~mark_type:"excel"
      ~fields:[ ("fileName", "a.xls"); ("range", "A1") ]
      ~excerpt:"42" ()
  in
  match Mark.of_xml (Mark.to_xml mark) with
  | Ok m2 -> check_bool "equal" true (Mark.equal mark m2)
  | Error e -> Alcotest.fail e

(* Property: every mark type's address fields survive the generic XML
   encoding (the Mark Manager "generically stores" all marks). *)
let gen_fields =
  QCheck.Gen.(
    list_size (int_range 1 5)
      (pair
         (oneofl [ "fileName"; "range"; "xmlPath"; "page"; "anchor" ])
         (string_size (int_range 0 10) ~gen:(oneofl [ 'a'; '<'; '&'; '"' ]))))

let prop_mark_xml_roundtrip =
  QCheck.Test.make ~name:"mark XML round-trip preserves fields" ~count:200
    (QCheck.make gen_fields ~print:(fun f ->
         String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) f)))
    (fun fields ->
      (* Duplicate keys collapse in assoc semantics; dedupe first. *)
      let fields = List.sort_uniq (fun (a, _) (b, _) -> compare a b) fields in
      let mark =
        Mark.make ~id:"m" ~mark_type:"t" ~fields ~excerpt:"e" ()
      in
      match Mark.of_xml (Mark.to_xml mark) with
      | Ok m2 -> Mark.equal mark m2
      | Error _ -> false)

let props = List.map QCheck_alcotest.to_alcotest [ prop_mark_xml_roundtrip ]

let suite =
  [
    ("registry", `Quick, test_registry);
    ("unknown type rejected", `Quick, test_unknown_type_rejected);
    ("excel mark round-trip (F7)", `Quick, test_excel_mark);
    ("excel mark fields exactly Fig 8", `Quick, test_excel_mark_fields_fig8);
    ("excel bad addresses", `Quick, test_excel_bad_addresses);
    ("excel defined-name marks survive row edits", `Quick,
     test_excel_mark_defined_name);
    ("xml mark round-trip (F7/F8)", `Quick, test_xml_mark);
    ("xml mark attribute target", `Quick, test_xml_mark_attribute_target);
    ("xml mark re-anchoring on content", `Quick, test_xml_mark_reanchor);
    ("text mark + re-anchoring", `Quick, test_text_mark_and_reanchor);
    ("word mark: span & bookmark", `Quick, test_word_mark_span_and_bookmark);
    ("slides mark", `Quick, test_slides_mark);
    ("pdf mark", `Quick, test_pdf_mark);
    ("html mark: anchor & node path", `Quick, test_html_mark);
    ("three viewing behaviours (F6)", `Quick, test_behaviours);
    ("multiple resolvers per type", `Quick, test_multiple_resolvers_per_type);
    ("extensibility: new type from outside (E5)", `Quick,
     test_extensibility_new_type);
    ("drift detection", `Quick, test_drift);
    ("drift: unresolvable", `Quick, test_drift_unresolvable);
    ("mark storage", `Quick, test_mark_storage);
    ("manager persistence", `Quick, test_persistence);
    ("unsupported types kept", `Quick, test_marks_of_unsupported_type_kept);
    ("mark XML round-trip", `Quick, test_mark_xml_roundtrip);
  ]
  @ props
