(* Tests for Si_wal (CRC, record framing, log, recovery) and the
   journaled TRIM facade (Si_triple.Durable). Crash injection cuts log
   files at arbitrary byte offsets with Si_workload.Faults.cut_file —
   exactly the state a process death mid-append leaves behind. *)

open Si_wal
module Trim = Si_triple.Trim
module Triple = Si_triple.Triple
module Durable = Si_triple.Durable
module Faults = Si_workload.Faults
module Rng = Si_workload.Rng

let check = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Log.error_to_string e)

let sok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

(* A scratch WAL path with no file behind it yet (and no stale .snap). *)
let fresh_path () =
  let path = Filename.temp_file "si_wal_test" ".wal" in
  Sys.remove path;
  if Sys.file_exists (Log.snapshot_path path) then
    Sys.remove (Log.snapshot_path path);
  path

let cleanup path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; Log.snapshot_path path; Log.lock_path path ]

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_bytes path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* ---------------------------------------------------------------- crc32 *)

let test_crc_vectors () =
  (* The standard IEEE check value. *)
  check_int "123456789" 0xCBF43926 (Crc32.digest "123456789");
  check_int "empty" 0 (Crc32.digest "");
  check_int "a" 0xE8B7BE43 (Crc32.digest "a");
  (* All byte values survive. *)
  let all = String.init 256 Char.chr in
  check_bool "binary-safe" true (Crc32.digest all <> Crc32.digest "")

let test_crc_incremental () =
  let a = "superimposed " and b = "information" in
  check_int "digest continues across chunks"
    (Crc32.digest (a ^ b))
    (Crc32.digest ~crc:(Crc32.digest a) b);
  check_int "pos/len select a substring"
    (Crc32.digest "bundle")
    (Crc32.digest ~pos:3 ~len:6 "in bundles");
  Alcotest.check_raises "bad range rejected"
    (Invalid_argument "Crc32.digest") (fun () ->
      ignore (Crc32.digest ~pos:4 ~len:3 "abcde"))

(* ----------------------------------------------------------- field codec *)

let test_fields_roundtrip () =
  let cases =
    [
      [];
      [ "" ];
      [ "+"; "s1"; "scrapName"; "l"; "Dopamine" ];
      [ "binary \x00\x01\xff"; ""; "<xml attr=\"x\">&amp;</xml>" ];
    ]
  in
  List.iter
    (fun fields ->
      match Record.decode_fields (Record.encode_fields fields) with
      | Ok back ->
          check_int "field count" (List.length fields) (List.length back);
          List.iter2 (check "field") fields back
      | Error e -> Alcotest.failf "decode failed: %s" e)
    cases

let test_fields_malformed () =
  check_bool "empty payload" true (Result.is_error (Record.decode_fields ""));
  (* Claim two fields, provide one. *)
  let one = Record.encode_fields [ "x" ] in
  let lying = Bytes.of_string one in
  Bytes.set lying 0 '\x02';
  check_bool "count overruns payload" true
    (Result.is_error (Record.decode_fields (Bytes.to_string lying)));
  (* Trailing garbage after the advertised fields. *)
  check_bool "trailing bytes" true
    (Result.is_error (Record.decode_fields (one ^ "junk")))

(* ------------------------------------------------------- record framing *)

let encode_to_string payloads =
  let buf = Buffer.create 256 in
  List.iter (Record.encode buf) payloads;
  Buffer.contents buf

let test_record_roundtrip () =
  let payloads = [ "alpha"; ""; String.init 300 (fun i -> Char.chr (i land 0xff)) ] in
  let s = encode_to_string payloads in
  match Record.read_all s ~pos:0 with
  | Ok (back, stop, torn) ->
      check_int "all payloads back" (List.length payloads) (List.length back);
      List.iter2 (check "payload") payloads back;
      check_int "stop at end" (String.length s) stop;
      check_bool "no torn tail" true (torn = None)
  | Error e -> Alcotest.failf "read_all: %s" e

let test_record_classification () =
  let s = encode_to_string [ "first"; "second" ] in
  let first_end = Record.header_size + 5 in
  (* Cut inside the second record's header. *)
  (match Record.read (String.sub s 0 (first_end + 3)) ~pos:first_end with
  | Record.Torn _ -> ()
  | _ -> Alcotest.fail "expected Torn for half a header");
  (* Cut inside the second record's payload. *)
  (match
     Record.read (String.sub s 0 (first_end + Record.header_size + 2))
       ~pos:first_end
   with
  | Record.Torn _ -> ()
  | _ -> Alcotest.fail "expected Torn for a short payload");
  (* Flip a byte in the LAST record's payload: indistinguishable from a
     torn append, classified Torn. *)
  let flip s pos =
    let b = Bytes.of_string s in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x5a));
    Bytes.to_string b
  in
  (match flip s (String.length s - 1) |> fun s' -> Record.read s' ~pos:first_end with
  | Record.Torn _ -> ()
  | _ -> Alcotest.fail "expected Torn for a final-record flip");
  (* Flip a byte in the FIRST record's payload: data follows, so this is
     real damage. *)
  (match flip s Record.header_size |> fun s' -> Record.read s' ~pos:0 with
  | Record.Corrupt _ -> ()
  | _ -> Alcotest.fail "expected Corrupt for a mid-log flip");
  match Record.read s ~pos:(String.length s) with
  | Record.End -> ()
  | _ -> Alcotest.fail "expected End at the end"

(* ------------------------------------------------------------------ log *)

let test_log_append_reopen () =
  let path = fresh_path () in
  let log, recovery = ok_exn "open" (Log.open_ path) in
  check_int "fresh: nothing to replay" 0 (List.length recovery.Log.records);
  check_bool "fresh: no snapshot" true (recovery.Log.snapshot = None);
  let payloads = [ "one"; "two"; "three" ] in
  List.iter (fun p -> ok_exn "append" (Log.append log p)) payloads;
  ok_exn "close" (Log.close log);
  let log2, recovery2 = ok_exn "reopen" (Log.open_ path) in
  List.iter2 (check "replayed") payloads recovery2.Log.records;
  check_int "no torn bytes" 0 recovery2.Log.truncated_bytes;
  check_int "record_count" 3 (Log.record_count log2);
  ok_exn "close2" (Log.close log2);
  cleanup path

let test_log_group_commit () =
  let path = fresh_path () in
  let log, _ =
    ok_exn "open"
      (Log.open_ ~policy:(Log.Batched { max_records = 3; max_bytes = 1 lsl 20 })
         path)
  in
  ok_exn "a" (Log.append log "a");
  ok_exn "b" (Log.append log "b");
  check_int "two pending" 2 (Log.pending log);
  check_int "none on disk yet" 0 (Log.record_count log);
  (* The third append crosses max_records and flushes the batch. *)
  ok_exn "c" (Log.append log "c");
  check_int "batch flushed" 0 (Log.pending log);
  check_int "three on disk" 3 (Log.record_count log);
  ok_exn "close" (Log.close log);
  (* Byte threshold flushes too. *)
  let log_b, _ =
    ok_exn "open byte-batch"
      (Log.open_ ~policy:(Log.Batched { max_records = 1000; max_bytes = 64 })
         path)
  in
  ok_exn "big" (Log.append log_b (String.make 100 'x'));
  check_int "byte threshold crossed" 0 (Log.pending log_b);
  (* Explicit sync flushes a partial batch. *)
  ok_exn "d" (Log.append log_b "d");
  check_int "one pending" 1 (Log.pending log_b);
  ok_exn "sync" (Log.sync log_b);
  check_int "sync drained it" 0 (Log.pending log_b);
  ok_exn "close_b" (Log.close log_b);
  cleanup path

let test_log_unflushed_batch_lost () =
  (* Batched appends that were never synced are NOT acknowledged: a
     crash before the flush loses exactly them and nothing else. *)
  let path = fresh_path () in
  let log, _ =
    ok_exn "open"
      (Log.open_ ~policy:(Log.Batched { max_records = 100; max_bytes = 1 lsl 20 })
         path)
  in
  ok_exn "acked" (Log.append log "acked");
  ok_exn "sync" (Log.sync log);
  ok_exn "pending1" (Log.append log "pending1");
  ok_exn "pending2" (Log.append log "pending2");
  (* Simulate the crash: copy the file as it sits on disk — the live
     handle still holds the unflushed batch (and the writer lock). *)
  let crashed = fresh_path () in
  write_bytes crashed (read_bytes path);
  let log2, recovery = ok_exn "reopen" (Log.open_ crashed) in
  check_int "only the synced record survives" 1
    (List.length recovery.Log.records);
  check "it is the acked one" "acked" (List.hd recovery.Log.records);
  ok_exn "close2" (Log.close log2);
  ok_exn "close1" (Log.close log);
  cleanup crashed;
  cleanup path

let test_log_single_writer_lock () =
  let path = fresh_path () in
  let log, _ = ok_exn "open" (Log.open_ path) in
  (* A second writer on the same path would interleave appends and
     corrupt the frame stream — refused while the first handle lives. *)
  check_bool "second open refused" true (Result.is_error (Log.open_ path));
  check_bool "lock file present" true (Sys.file_exists (Log.lock_path path));
  ok_exn "first handle still writes" (Log.append log "safe");
  ok_exn "close" (Log.close log);
  check_bool "lock released on close" false
    (Sys.file_exists (Log.lock_path path));
  let log2, recovery = ok_exn "reopen after close" (Log.open_ path) in
  check "the refused open corrupted nothing" "safe"
    (List.hd recovery.Log.records);
  ok_exn "close2" (Log.close log2);
  cleanup path

let test_log_stale_lock_takeover () =
  let path = fresh_path () in
  (* Garbage contents: a torn lock write from a crashed process. *)
  write_bytes (Log.lock_path path) "not a pid";
  let log, _ = ok_exn "garbage lock taken over" (Log.open_ path) in
  ok_exn "close" (Log.close log);
  (* Our own pid: what a crash simulated in-process leaves behind. *)
  write_bytes (Log.lock_path path) (string_of_int (Unix.getpid ()));
  let log2, _ = ok_exn "own-pid lock taken over" (Log.open_ path) in
  ok_exn "close2" (Log.close log2);
  cleanup path

let test_log_snapshot_cycle () =
  let path = fresh_path () in
  let log, _ = ok_exn "open" (Log.open_ path) in
  ok_exn "r1" (Log.append log "r1");
  ok_exn "r2" (Log.append log "r2");
  check_int "generation 0" 0 (Log.generation log);
  ok_exn "cut" (Log.cut_snapshot log "STATE-AFTER-R2");
  check_int "generation bumped" 1 (Log.generation log);
  check_int "log emptied" 0 (Log.record_count log);
  ok_exn "r3" (Log.append log "r3");
  ok_exn "close" (Log.close log);
  let log2, recovery = ok_exn "reopen" (Log.open_ path) in
  check "snapshot restored" "STATE-AFTER-R2"
    (Option.get recovery.Log.snapshot);
  check_int "tail after snapshot" 1 (List.length recovery.Log.records);
  check "tail record" "r3" (List.hd recovery.Log.records);
  ok_exn "close2" (Log.close log2);
  cleanup path

let test_log_stale_log_discarded () =
  (* Crash window of cut_snapshot: snapshot written (gen n+1), log still
     holding gen-n records. Recovery must prefer the snapshot and drop
     the log — its content is already folded in. *)
  let path = fresh_path () in
  let log, _ = ok_exn "open" (Log.open_ path) in
  ok_exn "r1" (Log.append log "r1");
  ok_exn "sync" (Log.sync log);
  let pre_cut = read_bytes path in
  ok_exn "cut" (Log.cut_snapshot log "FOLDED");
  ok_exn "close" (Log.close log);
  (* Wind the log file back to its pre-compaction content. *)
  write_bytes path pre_cut;
  let info = ok_exn "inspect" (Log.inspect path) in
  check_bool "inspect flags staleness" true info.Log.info_stale_log;
  let log2, recovery = ok_exn "reopen" (Log.open_ path) in
  check_bool "reset reported" true recovery.Log.reset_log;
  check "snapshot wins" "FOLDED" (Option.get recovery.Log.snapshot);
  check_int "stale records dropped" 0 (List.length recovery.Log.records);
  check_int "generation follows snapshot" 1 (Log.generation log2);
  ok_exn "close2" (Log.close log2);
  cleanup path

let test_log_ahead_of_snapshot_rejected () =
  (* The inverse skew — log generation ahead of the snapshot — cannot be
     produced by the protocol; it means tampering or file mix-up. *)
  let path = fresh_path () in
  let log, _ = ok_exn "open" (Log.open_ path) in
  ok_exn "cut1" (Log.cut_snapshot log "S1");
  let snap_v1 = read_bytes (Log.snapshot_path path) in
  ok_exn "r" (Log.append log "r");
  ok_exn "cut2" (Log.cut_snapshot log "S2");
  ok_exn "close" (Log.close log);
  (* Put the generation-1 snapshot back beside the generation-2 log. *)
  write_bytes (Log.snapshot_path path) snap_v1;
  (match Log.open_ path with
  | Error (Log.Bad_header _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Log.error_to_string e)
  | Ok (log, _) ->
      ignore (Log.close log);
      Alcotest.fail "log ahead of snapshot must not open");
  cleanup path

let test_log_corrupt_midlog_is_hard_error () =
  let path = fresh_path () in
  let log, _ = ok_exn "open" (Log.open_ path) in
  List.iter (fun p -> ok_exn "append" (Log.append log p))
    [ "first-record"; "second-record"; "third-record" ];
  ok_exn "close" (Log.close log);
  (* Flip one payload byte inside the FIRST record. *)
  let contents = Bytes.of_string (read_bytes path) in
  let pos = 12 + Record.header_size + 2 in
  Bytes.set contents pos
    (Char.chr (Char.code (Bytes.get contents pos) lxor 0xff));
  write_bytes path (Bytes.to_string contents);
  (match Log.open_ path with
  | Error (Log.Corrupt_record { index; _ }) -> check_int "index" 0 index
  | Error e -> Alcotest.failf "wrong error: %s" (Log.error_to_string e)
  | Ok (log, recovery) ->
      ignore (Log.close log);
      Alcotest.failf "opened through corruption, %d records replayed"
        (List.length recovery.Log.records));
  (match Log.inspect path with
  | Error (Log.Corrupt_record _) -> ()
  | _ -> Alcotest.fail "inspect must also refuse");
  cleanup path

(* The acceptance bar: a crash at ANY byte offset of the log recovers to
   a prefix-consistent store with zero acknowledged-write loss. Every
   append below is under Immediate policy, so every record is
   acknowledged the moment append returns — recovery must keep exactly
   the records whose bytes fully made it to disk (all of them, except
   possibly the one the cut landed inside). *)
let test_crash_at_every_offset () =
  let path = fresh_path () in
  let payloads =
    [ "alpha"; "b"; ""; "delta-delta-delta"; "e<&>"; "final-record" ]
  in
  let log, _ = ok_exn "open" (Log.open_ ~policy:Log.Immediate path) in
  List.iter (fun p -> ok_exn "append" (Log.append log p)) payloads;
  ok_exn "close" (Log.close log);
  let full = read_bytes path in
  let total = String.length full in
  let scratch = fresh_path () in
  for cut = 0 to total do
    write_bytes scratch full;
    let kept = Faults.cut_file scratch cut in
    check_int "cut_file clamps" (min cut total) kept;
    match Log.open_ scratch with
    | Error e ->
        Alcotest.failf "cut at %d failed to recover: %s" cut
          (Log.error_to_string e)
    | Ok (log, recovery) ->
        let recovered = recovery.Log.records in
        let n = List.length recovered in
        (* Prefix consistency: the recovered records are exactly the
           first n appended, in order. *)
        check_bool
          (Printf.sprintf "cut at %d: prefix of the appended stream" cut)
          true
          (List.for_all2 String.equal recovered
             (List.filteri (fun i _ -> i < n) payloads));
        (* Zero acknowledged-write loss: only the record the cut landed
           inside may be missing — every record fully on disk survives. *)
        let boundary = ref 12 (* log header *) in
        let complete =
          List.fold_left
            (fun acc p ->
              boundary := !boundary + Record.header_size + String.length p;
              if !boundary <= cut then acc + 1 else acc)
            0 payloads
        in
        check_int (Printf.sprintf "cut at %d: every durable record kept" cut)
          complete n;
        ok_exn "close" (Log.close log);
        (* The truncation is persistent: a second open is clean. *)
        let log2, r2 = ok_exn "re-reopen" (Log.open_ scratch) in
        check_int
          (Printf.sprintf "cut at %d: second open sees a clean log" cut)
          0 r2.Log.truncated_bytes;
        check_int "stable record count" n (List.length r2.Log.records);
        ok_exn "close2" (Log.close log2)
  done;
  cleanup scratch;
  cleanup path

let test_crash_random_offsets_with_snapshot () =
  (* Same property across the snapshot + tail shape, at seeded random
     offsets. *)
  let rng = Rng.create 2001 in
  let path = fresh_path () in
  let log, _ = ok_exn "open" (Log.open_ ~policy:Log.Immediate path) in
  ok_exn "pre" (Log.append log "folded-into-snapshot");
  ok_exn "cut" (Log.cut_snapshot log "SNAP-STATE");
  let tail = List.init 10 (fun i -> Printf.sprintf "tail-%02d" i) in
  List.iter (fun p -> ok_exn "append" (Log.append log p)) tail;
  ok_exn "close" (Log.close log);
  let full = read_bytes path in
  let snap = read_bytes (Log.snapshot_path path) in
  let scratch = fresh_path () in
  for _ = 1 to 60 do
    let cut = Rng.int rng (String.length full + 1) in
    write_bytes scratch full;
    write_bytes (Log.snapshot_path scratch) snap;
    ignore (Faults.cut_file scratch cut);
    match Log.open_ scratch with
    | Error e ->
        Alcotest.failf "cut at %d: %s" cut (Log.error_to_string e)
    | Ok (log, recovery) ->
        check "snapshot always survives" "SNAP-STATE"
          (Option.get recovery.Log.snapshot);
        let n = List.length recovery.Log.records in
        check_bool "tail prefix" true
          (List.for_all2 String.equal recovery.Log.records
             (List.filteri (fun i _ -> i < n) tail));
        ok_exn "close" (Log.close log)
  done;
  cleanup scratch;
  cleanup path

(* -------------------------------------------------- Durable TRIM facade *)

let tr s p o = Triple.make s p (Triple.literal o)

let test_durable_roundtrip () =
  let path = fresh_path () in
  let { Durable.durable = d; _ } = sok_exn "open" (Durable.open_ path) in
  let t = Durable.trim d in
  check_bool "add" true (Trim.add t (tr "b1" "bundleName" "John Smith"));
  check_bool "add2" true (Trim.add t (Triple.make "b1" "content" (Triple.resource "s1")));
  check_bool "remove" true (Trim.remove t (tr "b1" "bundleName" "John Smith"));
  check_bool "re-add" true (Trim.add t (tr "b1" "bundleName" "Jane Doe"));
  sok_exn "close" (Durable.close d);
  let { Durable.durable = d2; replayed; _ } =
    sok_exn "reopen" (Durable.open_ path)
  in
  check_int "replayed every op" 4 replayed;
  check_bool "contents equal" true
    (Trim.equal_contents t (Durable.trim d2));
  sok_exn "close2" (Durable.close d2);
  cleanup path

let test_durable_rollback_journaled () =
  (* A rolled-back transaction must leave the WAL describing the same
     state as the in-memory trim: the inverse ops are appended. *)
  let path = fresh_path () in
  let { Durable.durable = d; _ } = sok_exn "open" (Durable.open_ path) in
  let t = Durable.trim d in
  ignore (Trim.add t (tr "a" "p" "keep"));
  (match
     Trim.transaction t (fun () ->
         ignore (Trim.add t (tr "b" "p" "doomed"));
         ignore (Trim.remove t (tr "a" "p" "keep"));
         Error "abort")
   with
  | Ok (Error "abort") -> ()
  | _ -> Alcotest.fail "transaction should report the abort");
  check_int "in-memory state rolled back" 1 (Trim.size t);
  sok_exn "close" (Durable.close d);
  let { Durable.durable = d2; _ } = sok_exn "reopen" (Durable.open_ path) in
  check_bool "recovered state matches the rolled-back trim" true
    (Trim.equal_contents t (Durable.trim d2));
  sok_exn "close2" (Durable.close d2);
  cleanup path

let test_durable_checkpoint () =
  let path = fresh_path () in
  let { Durable.durable = d; _ } = sok_exn "open" (Durable.open_ path) in
  let t = Durable.trim d in
  for i = 1 to 20 do
    ignore (Trim.add t (tr (Printf.sprintf "r%d" i) "p" "v"))
  done;
  sok_exn "checkpoint" (Durable.checkpoint d);
  check_int "log truncated" 0 (Log.record_count (Durable.log d));
  ignore (Trim.add t (tr "post" "p" "v"));
  sok_exn "close" (Durable.close d);
  let { Durable.durable = d2; replayed; _ } =
    sok_exn "reopen" (Durable.open_ path)
  in
  check_int "only the post-checkpoint tail replays" 1 replayed;
  check_bool "contents equal" true (Trim.equal_contents t (Durable.trim d2));
  (* Compaction is idempotent: checkpointing again (no new ops) must
     recover to the identical store. *)
  sok_exn "checkpoint2" (Durable.checkpoint d2);
  sok_exn "checkpoint3" (Durable.checkpoint d2);
  sok_exn "close2" (Durable.close d2);
  let { Durable.durable = d3; replayed = r3; _ } =
    sok_exn "reopen3" (Durable.open_ path)
  in
  check_int "nothing to replay after double checkpoint" 0 r3;
  check_bool "state unchanged by re-compaction" true
    (Trim.equal_contents t (Durable.trim d3));
  sok_exn "close3" (Durable.close d3);
  cleanup path

let test_durable_undecodable_record () =
  let path = fresh_path () in
  let log, _ = ok_exn "open raw" (Log.open_ path) in
  ok_exn "bogus" (Log.append log (Record.encode_fields [ "?"; "junk" ]));
  ok_exn "close raw" (Log.close log);
  (match Durable.open_ path with
  | Error _ -> ()
  | Ok { Durable.durable = d; _ } ->
      ignore (Durable.close d);
      Alcotest.fail "an undecodable record must not replay silently");
  cleanup path

(* ------------------------------------------------- QCheck conformance *)

let gen_op =
  QCheck.Gen.(
    let* s = int_range 0 12 in
    let* p = oneofl [ "name"; "content"; "mark" ] in
    let* v = oneofl [ "x"; "y"; "<&\"" ] in
    let triple = tr ("r" ^ string_of_int s) p v in
    frequency
      [
        (6, return (`Add triple));
        (3, return (`Remove triple));
        (1, return `Clear);
        (1, return `Checkpoint);
      ])

let arbitrary_ops =
  QCheck.make
    QCheck.Gen.(list_size (int_range 0 60) gen_op)
    ~print:(fun ops ->
      String.concat "; "
        (List.map
           (function
             | `Add t -> "add " ^ Triple.to_string t
             | `Remove t -> "remove " ^ Triple.to_string t
             | `Clear -> "clear"
             | `Checkpoint -> "checkpoint")
           ops))

(* Random op sequences through the journaled path, then recovered, must
   equal the same sequence through a plain in-memory trim — triple for
   triple. Checkpoints interleave compaction into the stream. *)
let prop_durable_conforms =
  QCheck.Test.make ~name:"recovered durable trim equals in-memory trim"
    ~count:60 arbitrary_ops (fun ops ->
      let path = fresh_path () in
      let { Durable.durable = d; _ } =
        sok_exn "open" (Durable.open_ path)
      in
      let reference = Trim.create () in
      List.iter
        (fun op ->
          (match op with
          | `Add t -> ignore (Trim.add (Durable.trim d) t)
          | `Remove t -> ignore (Trim.remove (Durable.trim d) t)
          | `Clear -> Trim.clear (Durable.trim d)
          | `Checkpoint -> sok_exn "checkpoint" (Durable.checkpoint d));
          match op with
          | `Add t -> ignore (Trim.add reference t)
          | `Remove t -> ignore (Trim.remove reference t)
          | `Clear -> Trim.clear reference
          | `Checkpoint -> ())
        ops;
      sok_exn "close" (Durable.close d);
      let { Durable.durable = d2; _ } =
        sok_exn "recover" (Durable.open_ path)
      in
      let ok = Trim.equal_contents reference (Durable.trim d2) in
      sok_exn "close2" (Durable.close d2);
      (* And compaction of the recovered store is idempotent. *)
      let { Durable.durable = d3; _ } =
        sok_exn "reopen" (Durable.open_ path)
      in
      sok_exn "compact" (Durable.checkpoint d3);
      sok_exn "close3" (Durable.close d3);
      let { Durable.durable = d4; _ } =
        sok_exn "recover-compacted" (Durable.open_ path)
      in
      let ok2 = Trim.equal_contents reference (Durable.trim d4) in
      sok_exn "close4" (Durable.close d4);
      cleanup path;
      ok && ok2)

(* Recovery from a crash at a random offset yields a prefix: re-running
   the surviving records through a fresh trim always reproduces it. *)
let prop_recovery_is_prefix =
  QCheck.Test.make ~name:"crash recovery yields an op-stream prefix"
    ~count:40
    QCheck.(pair arbitrary_ops (int_range 0 10_000))
    (fun (ops, cut_seed) ->
      let path = fresh_path () in
      let { Durable.durable = d; _ } =
        sok_exn "open" (Durable.open_ ~policy:Log.Immediate path)
      in
      List.iter
        (function
          | `Add t -> ignore (Trim.add (Durable.trim d) t)
          | `Remove t -> ignore (Trim.remove (Durable.trim d) t)
          | `Clear -> Trim.clear (Durable.trim d)
          | `Checkpoint -> ())
        ops;
      sok_exn "close" (Durable.close d);
      let size = (read_bytes path |> String.length) in
      ignore (Faults.cut_file path (cut_seed mod (size + 1)));
      let recovered =
        match Durable.open_ path with
        | Ok { Durable.durable = d2; _ } ->
            let t = Durable.trim d2 in
            let l = Trim.to_list t in
            sok_exn "close2" (Durable.close d2);
            l
        | Error e -> Alcotest.failf "recovery failed: %s" e
      in
      (* Replay op prefixes through a fresh trim until one matches. *)
      let matches_prefix =
        let t = Trim.create () in
        let sorted l = List.sort Triple.compare l in
        let target = sorted recovered in
        let rec go remaining =
          sorted (Trim.to_list t) = target
          ||
          match remaining with
          | [] -> false
          | op :: rest ->
              (match op with
              | `Add tr -> ignore (Trim.add t tr)
              | `Remove tr -> ignore (Trim.remove t tr)
              | `Clear -> Trim.clear t
              | `Checkpoint -> ());
              go rest
        in
        go ops
      in
      cleanup path;
      matches_prefix)

(* ------------------------------------------- binary section container *)

let test_binary_roundtrip () =
  let sections =
    [
      ("atoms", "alpha\x00beta");
      ("triples", String.init 300 (fun i -> Char.chr (i land 0xff)));
      ("empty", "");
      ("atoms", "a shadowed duplicate");
    ]
  in
  let s = Binary.encode sections in
  check_bool "sniffer accepts" true (Binary.is_binary s);
  check_bool "sniffer rejects XML" false (Binary.is_binary "<triples/>");
  check_bool "sniffer rejects short" false (Binary.is_binary "SIB");
  let decoded = sok_exn "decode" (Binary.decode s) in
  check_int "all sections back" 4 (List.length decoded);
  check_bool "order preserved" true
    (List.map fst decoded = [ "atoms"; "triples"; "empty"; "atoms" ]);
  check "first match wins" "alpha\x00beta"
    (Option.get (Binary.section "atoms" decoded));
  check "empty payload survives" ""
    (Option.get (Binary.section "empty" decoded));
  check_bool "missing section is None" true
    (Binary.section "nope" decoded = None);
  check "empty container round-trips" ""
    (match Binary.decode (Binary.encode []) with
    | Ok [] -> ""
    | Ok _ -> "nonempty"
    | Error e -> e)

let test_binary_rejects_damage () =
  let s = Binary.encode [ ("atoms", "payload-a"); ("triples", "payload-t") ] in
  let expect_error what bytes =
    match Binary.decode bytes with
    | Ok _ -> Alcotest.failf "%s: decoded damaged container" what
    | Error _ -> ()
  in
  expect_error "bad magic" ("XXXX" ^ String.sub s 4 (String.length s - 4));
  let future = Bytes.of_string s in
  Bytes.set future 7 '\x02';
  expect_error "future version" (Bytes.to_string future);
  (match Binary.decode (Bytes.to_string future) with
  | Error e ->
      check_bool "version error names the version" true
        (String.contains e '2')
  | Ok _ -> Alcotest.fail "future version accepted");
  expect_error "trailing garbage" (s ^ "x");
  (* Flip one payload byte: the section CRC must catch it. *)
  let flipped = Bytes.of_string s in
  let last = Bytes.length flipped - 1 in
  Bytes.set flipped last (Char.chr (Char.code (Bytes.get flipped last) lxor 1));
  expect_error "payload bit flip" (Bytes.to_string flipped)

let test_binary_truncation_at_every_offset () =
  (* Any strict prefix of a container must decode to an error — never a
     partial section list, never an exception. *)
  let s = Binary.encode [ ("atoms", "some atoms"); ("triples", "rows") ] in
  for cut = 0 to String.length s - 1 do
    match Binary.decode (String.sub s 0 cut) with
    | Ok _ -> Alcotest.failf "prefix of %d bytes decoded" cut
    | Error _ -> ()
  done;
  check_int "full container decodes" 2
    (List.length (sok_exn "full" (Binary.decode s)))

let prop_binary_container_roundtrip =
  let gen_section =
    QCheck.Gen.(
      pair
        (oneofl [ "atoms"; "triples"; "marks"; "journal"; "x" ])
        (string_size (int_range 0 200)))
  in
  QCheck.Test.make ~name:"binary container round-trip" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 0 8) gen_section))
    (fun sections ->
      match Binary.decode (Binary.encode sections) with
      | Ok back -> back = sections
      | Error _ -> false)

let prop_binary_corruption_never_partial =
  (* Flip one byte anywhere in a container: decode either still succeeds
     with the original sections (the flip hit a name byte is impossible —
     names are CRC-free, so a name flip yields different sections; accept
     any Ok only if it equals the original) or errors. It must never
     raise, and a CRC-protected payload flip must error. *)
  QCheck.Test.make ~name:"binary container: single byte flips never crash"
    ~count:300
    (QCheck.make QCheck.Gen.(pair (int_range 0 1000) (string_size (int_range 1 80))))
    (fun (pos, payload) ->
      let s = Binary.encode [ ("atoms", payload); ("triples", "fixed") ] in
      let pos = pos mod String.length s in
      let b = Bytes.of_string s in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
      match Binary.decode (Bytes.to_string b) with
      | Ok _ | Error _ -> true
      | exception _ -> false)

let test_binary_snapshot_crash_at_every_offset () =
  (* A WAL whose snapshot is a binary Trim container: cut the LOG at
     every byte offset; recovery must always land on a record-boundary
     prefix replayed over the intact snapshot. Then cut the SNAPSHOT at
     every offset: opening must fail cleanly (corrupt snapshot), never
     crash, never half-load. *)
  let path = fresh_path () in
  let { Durable.durable = d; _ } = sok_exn "open" (Durable.open_ path) in
  let t = Durable.trim d in
  List.iter
    (fun i -> ignore (Trim.add t (tr ("base" ^ string_of_int i) "p" "v")))
    [ 0; 1; 2; 3; 4 ];
  sok_exn "checkpoint" (Durable.checkpoint d);
  List.iter
    (fun i -> ignore (Trim.add t (tr ("tail" ^ string_of_int i) "p" "v")))
    [ 0; 1; 2 ];
  sok_exn "close" (Durable.close d);
  let snap_path = Log.snapshot_path path in
  let snap = read_bytes snap_path in
  (* The .snap file wraps the payload in its own framing: an 8-byte
     snapshot magic, a u32 generation, then one CRC-framed record. *)
  let payload_off = 8 + 4 + Record.header_size in
  check_bool "snapshot payload is binary" true
    (Binary.is_binary
       (String.sub snap payload_off (String.length snap - payload_off)));
  let full_log = read_bytes path in
  let scratch = fresh_path () in
  let scratch_snap = Log.snapshot_path scratch in
  (* Log cuts over the intact binary snapshot. *)
  for cut = 0 to String.length full_log do
    write_bytes scratch (String.sub full_log 0 cut);
    write_bytes scratch_snap snap;
    match Durable.open_ scratch with
    | Ok { Durable.durable = d2; _ } ->
        let size = Trim.size (Durable.trim d2) in
        if size < 5 || size > 8 then
          Alcotest.failf "log cut %d: recovered %d triples" cut size;
        sok_exn "close cut" (Durable.close d2)
    | Error _ when cut < 12 -> () (* header itself torn *)
    | Error e -> Alcotest.failf "log cut %d: %s" cut e
  done;
  (* Snapshot cuts under the intact log: every strict prefix must be
     rejected wholesale. *)
  let step = max 1 (String.length snap / 97) in
  let cut = ref 0 in
  while !cut < String.length snap do
    write_bytes scratch full_log;
    write_bytes scratch_snap (String.sub snap 0 !cut);
    (match Durable.open_ scratch with
    | Ok { Durable.durable = d2; _ } ->
        (* An empty file is a legal "no snapshot yet" state. *)
        if !cut <> 0 then Alcotest.failf "snapshot cut %d: opened" !cut
        else sok_exn "close empty-snap" (Durable.close d2)
    | Error _ -> ());
    cut := !cut + step
  done;
  cleanup path;
  cleanup scratch

let suite =
  [
    ("crc32 vectors", `Quick, test_crc_vectors);
    ("crc32 incremental", `Quick, test_crc_incremental);
    ("field codec round-trip", `Quick, test_fields_roundtrip);
    ("field codec rejects malformed", `Quick, test_fields_malformed);
    ("record round-trip", `Quick, test_record_roundtrip);
    ("record torn/corrupt classification", `Quick, test_record_classification);
    ("log append and reopen", `Quick, test_log_append_reopen);
    ("log group commit thresholds", `Quick, test_log_group_commit);
    ("log unflushed batch lost cleanly", `Quick, test_log_unflushed_batch_lost);
    ("log single-writer lock", `Quick, test_log_single_writer_lock);
    ("log stale lock takeover", `Quick, test_log_stale_lock_takeover);
    ("log snapshot cycle", `Quick, test_log_snapshot_cycle);
    ("log stale log discarded", `Quick, test_log_stale_log_discarded);
    ("log ahead of snapshot rejected", `Quick,
     test_log_ahead_of_snapshot_rejected);
    ("log mid-log corruption is a hard error", `Quick,
     test_log_corrupt_midlog_is_hard_error);
    ("crash at every byte offset recovers", `Quick, test_crash_at_every_offset);
    ("crash at random offsets with snapshot", `Quick,
     test_crash_random_offsets_with_snapshot);
    ("durable trim round-trip", `Quick, test_durable_roundtrip);
    ("durable rollback journaled", `Quick, test_durable_rollback_journaled);
    ("durable checkpoint and idempotent compaction", `Quick,
     test_durable_checkpoint);
    ("durable refuses undecodable records", `Quick,
     test_durable_undecodable_record);
    ("binary container round-trip & sniffer", `Quick, test_binary_roundtrip);
    ("binary container rejects damage", `Quick, test_binary_rejects_damage);
    ("binary container truncation at every offset", `Quick,
     test_binary_truncation_at_every_offset);
    ("binary snapshot: crash at every offset", `Quick,
     test_binary_snapshot_crash_at_every_offset);
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_durable_conforms;
        prop_recovery_is_prefix;
        prop_binary_container_roundtrip;
        prop_binary_corruption_never_partial;
      ]
