(* Tests for the pad server: protocol codec round-trips (every message
   type, property-based), wire-decoder fuzzing with the fault-injection
   manglings (truncate / bit-flip / duplicate — a damaged frame must
   yield a typed error, never an exception, and a live server must
   answer it with [Err] and drop only that connection), the bounded
   two-class job queue, and end-to-end serving: concurrent TCP clients,
   durable writes, background jobs, overload backpressure, and
   replica-aware read routing. *)

module Proto = Si_serve.Proto
module Jobq = Si_serve.Jobq
module Server = Si_serve.Server
module Client = Si_serve.Client
module Slimpad = Si_slimpad.Slimpad
module Desktop = Si_mark.Desktop
module Triple = Si_triple.Triple
module Tcp = Si_wal.Tcp
module Record = Si_wal.Record

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let sok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

let scratch_dir () =
  let path = Filename.temp_file "si_serve" "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

(* --- generators ------------------------------------------------------- *)

let gen_field =
  (* Field strings exercise the codec's length-prefixing: empty, binary,
     separator-looking, and long values must all survive. *)
  QCheck.Gen.(
    oneof
      [
        return "";
        string_size ~gen:(char_range '\000' '\255') (int_range 0 12);
        oneofl [ "a;b"; "line\nbreak"; "<s>"; "bulk"; String.make 300 'x' ];
      ])

let gen_obj =
  QCheck.Gen.(
    map2
      (fun r s -> if r then Triple.Resource s else Triple.Literal s)
      bool gen_field)

let gen_pattern =
  QCheck.Gen.(
    map3
      (fun s p o -> { Proto.p_subject = s; p_predicate = p; p_object = o })
      (option gen_field) (option gen_field) (option gen_obj))

let gen_triple =
  QCheck.Gen.(
    map3 (fun s p o -> Triple.make s p o) gen_field gen_field gen_obj)

let gen_job_kind =
  QCheck.Gen.(
    oneof
      [
        return Proto.Compact;
        return Proto.Checkpoint;
        return Proto.Lint;
        map2
          (fun count predicate -> Proto.Bulk_add { count; predicate })
          (int_range 0 10_000) gen_field;
        map2
          (fun path with_bases -> Proto.Capture { path; with_bases })
          gen_field bool;
        map2
          (fun path strict -> Proto.Apply { path; strict })
          gen_field bool;
      ])

let gen_request =
  QCheck.Gen.(
    oneof
      [
        return Proto.Ping;
        map (fun s -> Proto.Open_pad s) gen_field;
        return Proto.Pads;
        map2
          (fun pattern limit -> Proto.Select { pattern; limit })
          gen_pattern (int_range (-1) 100);
        map (fun p -> Proto.Count p) gen_pattern;
        map (fun s -> Proto.Query s) gen_field;
        map (fun t -> Proto.Add t) gen_triple;
        map (fun t -> Proto.Remove t) gen_triple;
        map2
          (fun pad scrap -> Proto.Resolve { pad; scrap })
          gen_field gen_field;
        return Proto.Stats;
        map2
          (fun kind b ->
            Proto.Submit
              {
                kind;
                priority = (if b then Proto.Interactive else Proto.Bulk);
              })
          gen_job_kind bool;
        map (fun id -> Proto.Job_status id) (int_range 0 1_000_000);
        return Proto.Shutdown;
      ])

let gen_job_state =
  QCheck.Gen.(
    oneof
      [
        return Proto.Queued;
        return Proto.Running;
        map (fun s -> Proto.Done s) gen_field;
        map (fun s -> Proto.Failed s) gen_field;
      ])

let gen_response =
  QCheck.Gen.(
    oneof
      [
        return Proto.Pong;
        return Proto.Ok_done;
        map (fun l -> Proto.Pad_list l) (list_size (int_range 0 6) gen_field);
        map (fun l -> Proto.Triples l) (list_size (int_range 0 6) gen_field);
        map (fun n -> Proto.Count_is n) (int_range 0 1_000_000);
        map (fun l -> Proto.Rows l) (list_size (int_range 0 6) gen_field);
        map (fun s -> Proto.Resolved s) gen_field;
        map (fun s -> Proto.Stats_json s) gen_field;
        map (fun id -> Proto.Accepted id) (int_range 0 1_000_000);
        map2
          (fun job state -> Proto.Job { job; state })
          (int_range 0 1_000_000) gen_job_state;
        map (fun s -> Proto.Overloaded s) gen_field;
        map (fun s -> Proto.Err s) gen_field;
        return Proto.Closing;
      ])

(* --- codec round-trips ------------------------------------------------ *)

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request encode/decode round-trip" ~count:500
    (QCheck.make gen_request) (fun req ->
      match Proto.decode_request (Proto.encode_request req) with
      | Ok req' -> req' = req
      | Error _ -> false)

let prop_response_roundtrip =
  QCheck.Test.make ~name:"response encode/decode round-trip" ~count:500
    (QCheck.make gen_response) (fun resp ->
      match Proto.decode_response (Proto.encode_response resp) with
      | Ok resp' -> resp' = resp
      | Error _ -> false)

(* Deterministic round-trip of one witness per constructor, so a codec
   regression names the message type in the failure. *)
let test_roundtrip_witnesses () =
  let pat =
    {
      Proto.p_subject = Some "s";
      p_predicate = None;
      p_object = Some (Triple.Literal "v");
    }
  in
  let requests =
    [
      Proto.Ping;
      Proto.Open_pad "notes";
      Proto.Pads;
      Proto.Select { pattern = pat; limit = 10 };
      Proto.Count Proto.any;
      Proto.Query "select ?s where (?s linksTo ?o)";
      Proto.Add (Triple.make "s" "p" (Triple.Resource "o"));
      Proto.Remove (Triple.make "s" "p" (Triple.Literal "v"));
      Proto.Resolve { pad = "notes"; scrap = "scrap-1" };
      Proto.Stats;
      Proto.Submit
        {
          kind = Proto.Bulk_add { count = 64; predicate = "bulk" };
          priority = Proto.Bulk;
        };
      Proto.Submit { kind = Proto.Compact; priority = Proto.Interactive };
      Proto.Submit { kind = Proto.Checkpoint; priority = Proto.Bulk };
      Proto.Submit { kind = Proto.Lint; priority = Proto.Interactive };
      Proto.Submit
        {
          kind = Proto.Capture { path = "/tmp/x.bundle"; with_bases = true };
          priority = Proto.Bulk;
        };
      Proto.Submit
        {
          kind = Proto.Apply { path = "/tmp/x.bundle"; strict = true };
          priority = Proto.Bulk;
        };
      Proto.Job_status 7;
      Proto.Shutdown;
    ]
  in
  List.iter
    (fun req ->
      match Proto.decode_request (Proto.encode_request req) with
      | Ok req' ->
          check_bool (Proto.request_op req ^ " round-trips") true (req' = req)
      | Error e -> Alcotest.failf "%s: %s" (Proto.request_op req) e)
    requests;
  let responses =
    [
      Proto.Pong;
      Proto.Ok_done;
      Proto.Pad_list [ "a"; "b" ];
      Proto.Triples [ "(s p o)" ];
      Proto.Count_is 42;
      Proto.Rows [];
      Proto.Resolved "excerpt";
      Proto.Stats_json "{}";
      Proto.Accepted 3;
      Proto.Job { job = 3; state = Proto.Queued };
      Proto.Job { job = 3; state = Proto.Running };
      Proto.Job { job = 3; state = Proto.Done "ok" };
      Proto.Job { job = 3; state = Proto.Failed "no" };
      Proto.Overloaded "full";
      Proto.Err "bad";
      Proto.Closing;
    ]
  in
  List.iteri
    (fun i resp ->
      match Proto.decode_response (Proto.encode_response resp) with
      | Ok resp' ->
          check_bool (Printf.sprintf "response %d round-trips" i) true
            (resp' = resp)
      | Error e -> Alcotest.failf "response %d: %s" i e)
    responses

(* --- decoder fuzzing -------------------------------------------------- *)

(* The Faults.corrupt_file manglings, applied in memory to an encoded
   frame: however damaged, decoding must yield [Error], never raise,
   and never silently accept a different message. *)
let mangle raw = function
  | `Truncate n -> String.sub raw 0 (max 0 (String.length raw - n))
  | `Flip at ->
      let b = Bytes.of_string raw in
      let i = at mod Bytes.length b in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x41));
      Bytes.to_string b
  | `Duplicate n ->
      let n = min n (String.length raw) in
      raw ^ String.sub raw (String.length raw - n) n

let prop_decoder_survives_mangling =
  QCheck.Test.make ~name:"mangled frames decode to typed errors" ~count:1000
    QCheck.(
      make
        Gen.(
          triple gen_request (int_range 0 3)
            (map2 (fun k n -> (k, n)) (int_range 0 2) (int_range 1 24))))
    (fun (req, _, (kind, n)) ->
      let raw = Proto.encode_request req in
      let damaged =
        mangle raw
          (match kind with
          | 0 -> `Truncate n
          | 1 -> `Flip n
          | _ -> `Duplicate n)
      in
      if damaged = raw then true
      else
        match Proto.decode_request damaged with
        | Ok req' ->
            (* A mangling can cancel out only by reproducing the bytes;
               anything else the CRC must catch. *)
            req' = req && damaged = raw
        | Error _ -> true)

let test_decoder_edge_cases () =
  let reject what raw =
    match Proto.decode_request raw with
    | Ok _ -> Alcotest.failf "%s: accepted" what
    | Error _ -> ()
  in
  reject "empty" "";
  reject "short header" "\x01\x02\x03";
  reject "huge length" (String.make 8 '\xff');
  reject "zero frame" (String.make 8 '\x00');
  (* A checksummed frame whose payload is not a field list. *)
  let buf = Buffer.create 32 in
  Record.encode buf "not a field list";
  reject "bad payload" (Buffer.contents buf);
  (* A well-formed field list with an unknown tag. *)
  let buf = Buffer.create 32 in
  Record.encode buf (Record.encode_fields [ "frobnicate"; "x" ]);
  reject "unknown tag" (Buffer.contents buf);
  (* Trailing bytes after a complete frame. *)
  reject "trailing bytes" (Proto.encode_request Proto.Ping ^ "!")

(* --- job queue -------------------------------------------------------- *)

let test_jobq_priority () =
  let q = Jobq.create () in
  List.iter
    (fun (prio, v) ->
      check_bool "accepted" true (Jobq.push q prio v = `Accepted))
    [
      (Proto.Bulk, "b1");
      (Proto.Interactive, "i1");
      (Proto.Bulk, "b2");
      (Proto.Interactive, "i2");
    ];
  check_int "depth" 4 (Jobq.depth q);
  (* Interactive drains exhaustively before any bulk item. *)
  let order = List.init 4 (fun _ -> Option.get (Jobq.pop q)) in
  check_bool "interactive first" true (order = [ "i1"; "i2"; "b1"; "b2" ]);
  Jobq.close q;
  check_bool "closed pop" true (Jobq.pop q = None)

let test_jobq_overload () =
  let q = Jobq.create ~capacity:2 ~bulk_capacity:1 () in
  check_bool "i1" true (Jobq.push q Proto.Interactive 1 = `Accepted);
  check_bool "i2" true (Jobq.push q Proto.Interactive 2 = `Accepted);
  check_bool "interactive full" true
    (Jobq.push q Proto.Interactive 3 = `Overloaded);
  (* Separate bounds: a full interactive class leaves bulk headroom, and
     vice versa. *)
  check_bool "bulk still open" true (Jobq.push q Proto.Bulk 4 = `Accepted);
  check_bool "bulk full" true (Jobq.push q Proto.Bulk 5 = `Overloaded);
  ignore (Jobq.pop q);
  check_bool "slot freed" true (Jobq.push q Proto.Interactive 6 = `Accepted);
  Jobq.close q;
  check_bool "push after close" true
    (Jobq.push q Proto.Interactive 7 = `Closed);
  (* Items queued before close still drain, in priority order. *)
  check_int "drain 2" 2 (Option.get (Jobq.pop q));
  check_int "drain 6" 6 (Option.get (Jobq.pop q));
  check_int "drain 4" 4 (Option.get (Jobq.pop q));
  check_bool "drained" true (Jobq.pop q = None)

let test_jobq_blocking_pop () =
  let q = Jobq.create () in
  let got = Atomic.make (-1) in
  let d =
    Domain.spawn (fun () ->
        match Jobq.pop q with Some v -> Atomic.set got v | None -> ())
  in
  Unix.sleepf 0.05;
  check_int "still blocked" (-1) (Atomic.get got);
  check_bool "push" true (Jobq.push q Proto.Interactive 9 = `Accepted);
  Domain.join d;
  check_int "woken with item" 9 (Atomic.get got);
  Jobq.close q

(* --- end-to-end serving ----------------------------------------------- *)

let start_server ?config ?follower () =
  let dir = scratch_dir () in
  let app, _ =
    sok "open_wal"
      (Slimpad.open_wal
         ~store:(module Si_triple.Store.Sharded_columnar)
         (Desktop.create ())
         (Filename.concat dir "pad.wal"))
  in
  ignore (Slimpad.new_pad app "served");
  let config =
    Option.value config
      ~default:{ Server.default_config with workers = 2; job_capacity = 2 }
  in
  let server = sok "start" (Server.start ~config ?follower app) in
  (server, app, dir)

let with_client server f =
  let c = sok "connect" (Client.connect ~port:(Server.port server) ()) in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let req c what r = sok what (Client.request c r)

let test_server_end_to_end () =
  let server, _app, _dir = start_server () in
  with_client server (fun c ->
      check_bool "ping" true (req c "ping" Proto.Ping = Proto.Pong);
      check_bool "add" true
        (req c "add"
           (Proto.Add (Triple.make "s1" "linksTo" (Triple.Resource "d1")))
        = Proto.Ok_done);
      check_bool "count" true
        (req c "count"
           (Proto.Count { Proto.any with p_predicate = Some "linksTo" })
        = Proto.Count_is 1);
      (match
         req c "select"
           (Proto.Select
              {
                pattern = { Proto.any with p_subject = Some "s1" };
                limit = 0;
              })
       with
      | Proto.Triples [ row ] -> check_str "row" "(<s1> linksTo <d1>)" row
      | r -> Alcotest.failf "select: unexpected %s" (Proto.encode_response r));
      (match
         req c "query" (Proto.Query "select ?o where { <s1> linksTo ?o }")
       with
      | Proto.Rows [ _ ] -> ()
      | _ -> Alcotest.fail "query: expected one row");
      check_bool "remove" true
        (req c "remove"
           (Proto.Remove (Triple.make "s1" "linksTo" (Triple.Resource "d1")))
        = Proto.Ok_done);
      check_bool "count after remove" true
        (req c "count"
           (Proto.Count { Proto.any with p_predicate = Some "linksTo" })
        = Proto.Count_is 0);
      (match req c "pads" Proto.Pads with
      | Proto.Pad_list pads ->
          check_bool "served pad listed" true (List.mem "served" pads)
      | _ -> Alcotest.fail "pads");
      (match req c "open" (Proto.Open_pad "second") with
      | Proto.Ok_done -> ()
      | _ -> Alcotest.fail "open");
      match req c "stats" Proto.Stats with
      | Proto.Stats_json s ->
          check_bool "stats is json" true (String.length s > 2 && s.[0] = '{')
      | _ -> Alcotest.fail "stats");
  Server.stop server

let test_server_concurrent_clients () =
  let server, _app, _dir = start_server () in
  let port = Server.port server in
  let per_client = 25 in
  let worker i () =
    let c = sok "connect" (Client.connect ~port ()) in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    let ok = ref 0 in
    for n = 1 to per_client do
      let s = Printf.sprintf "c%d-%d" i n in
      (match
         Client.request c (Proto.Add (Triple.make s "par" (Triple.Literal "v")))
       with
      | Ok Proto.Ok_done -> incr ok
      | Ok r -> Alcotest.failf "add: %s" (Proto.encode_response r)
      | Error e -> Alcotest.failf "add: %s" e);
      match
        Client.request c (Proto.Count { Proto.any with p_subject = Some s })
      with
      | Ok (Proto.Count_is 1) -> incr ok
      | Ok r -> Alcotest.failf "count: %s" (Proto.encode_response r)
      | Error e -> Alcotest.failf "count: %s" e
    done;
    !ok
  in
  let domains = List.init 2 (fun i -> Domain.spawn (worker i)) in
  let done_ = List.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
  check_int "all requests served" (2 * per_client * 2) done_;
  with_client server (fun c ->
      check_bool "total visible" true
        (req c "count" (Proto.Count { Proto.any with p_predicate = Some "par" })
        = Proto.Count_is (2 * per_client)));
  Server.stop server

let test_server_survives_garbage () =
  let server, _app, _dir = start_server () in
  let port = Server.port server in
  let raw_conn () =
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
    fd
  in
  (* A frame that fails the CRC check: typed "bad frame" error, then the
     connection is dropped — but the server keeps serving. *)
  let fd = raw_conn () in
  let raw = Proto.encode_request Proto.Ping in
  sok "send" (Tcp.send_frame fd (mangle raw (`Flip (Record.header_size + 1))));
  (match Tcp.recv_frame fd with
  | Ok resp -> (
      match Proto.decode_response resp with
      | Ok (Proto.Err e) ->
          check_bool "typed frame error" true
            (String.length e > 0
            && String.sub e 0 (min 9 (String.length e)) = "bad frame")
      | Ok r -> Alcotest.failf "garbage answered %s" (Proto.encode_response r)
      | Error e -> Alcotest.failf "undecodable error response: %s" e)
  | Error e -> Alcotest.failf "no error response: %s" e);
  check_bool "connection dropped" true (Tcp.recv_frame fd |> Result.is_error);
  Unix.close fd;
  (* A checksummed frame that is not a request: "bad request", dropped. *)
  let fd = raw_conn () in
  let buf = Buffer.create 32 in
  Record.encode buf (Record.encode_fields [ "frobnicate" ]);
  sok "send" (Tcp.send_frame fd (Buffer.contents buf));
  (match Tcp.recv_frame fd with
  | Ok resp -> (
      match Proto.decode_response resp with
      | Ok (Proto.Err _) -> ()
      | _ -> Alcotest.fail "expected Err for unknown tag")
  | Error e -> Alcotest.failf "no error response: %s" e);
  Unix.close fd;
  (* The server is still alive for well-behaved clients. *)
  with_client server (fun c ->
      check_bool "still serving" true (req c "ping" Proto.Ping = Proto.Pong));
  Server.stop server

let test_server_jobs_and_overload () =
  let server, _app, _dir = start_server () in
  with_client server (fun c ->
      (* A bulk import runs in the background and lands durably. *)
      let id =
        match
          req c "submit"
            (Proto.Submit
               {
                 kind = Proto.Bulk_add { count = 50; predicate = "bulkp" };
                 priority = Proto.Bulk;
               })
        with
        | Proto.Accepted id -> id
        | r -> Alcotest.failf "submit: %s" (Proto.encode_response r)
      in
      let rec await tries =
        if tries > 200 then Alcotest.fail "job never finished"
        else
          match req c "job?" (Proto.Job_status id) with
          | Proto.Job { state = Proto.Done _; _ } -> ()
          | Proto.Job { state = Proto.Failed e; _ } ->
              Alcotest.failf "job failed: %s" e
          | Proto.Job _ ->
              Unix.sleepf 0.02;
              await (tries + 1)
          | r -> Alcotest.failf "job?: %s" (Proto.encode_response r)
      in
      await 0;
      check_bool "bulk landed" true
        (req c "count"
           (Proto.Count { Proto.any with p_predicate = Some "bulkp" })
        = Proto.Count_is 50);
      (* Flood the bulk class past its bound (job_capacity 2 here): a
         typed Overloaded must come back, and the server must stay
         responsive to interactive traffic throughout. *)
      let overloaded = ref 0 and accepted = ref 0 in
      for _ = 1 to 12 do
        match
          req c "submit"
            (Proto.Submit
               {
                 kind = Proto.Bulk_add { count = 2000; predicate = "flood" };
                 priority = Proto.Bulk;
               })
        with
        | Proto.Accepted _ -> incr accepted
        | Proto.Overloaded _ -> incr overloaded
        | r -> Alcotest.failf "flood: %s" (Proto.encode_response r)
      done;
      check_bool "some accepted" true (!accepted > 0);
      check_bool "backpressure engaged" true (!overloaded > 0);
      check_bool "interactive still served" true
        (req c "ping" Proto.Ping = Proto.Pong);
      (* Unknown job id is a typed error, not a crash. *)
      match req c "job?" (Proto.Job_status 999_999) with
      | Proto.Err _ -> ()
      | r -> Alcotest.failf "unknown job: %s" (Proto.encode_response r));
  Server.stop server

(* The bulk importer holds the writer lock in small batches and sleeps
   between batches only when an interactive writer actually contended
   during the last one (the instrumented lock counts contention for
   free). Two consequences, both asserted here: an uncontended import
   reports no yield pauses, and interactive writes issued while a large
   import runs see bounded latency — one batch, not the whole job. *)
let test_bulk_import_interactive_latency () =
  let server, _app, _dir = start_server () in
  with_client server (fun c ->
      let submit count predicate =
        match
          req c "submit"
            (Proto.Submit
               {
                 kind = Proto.Bulk_add { count; predicate };
                 priority = Proto.Bulk;
               })
        with
        | Proto.Accepted id -> id
        | r -> Alcotest.failf "submit: %s" (Proto.encode_response r)
      in
      let job_state id =
        match req c "job?" (Proto.Job_status id) with
        | Proto.Job { state; _ } -> state
        | r -> Alcotest.failf "job?: %s" (Proto.encode_response r)
      in
      let rec await id tries =
        if tries > 500 then Alcotest.fail "job never finished"
        else
          match job_state id with
          | Proto.Done summary -> summary
          | Proto.Failed e -> Alcotest.failf "job failed: %s" e
          | _ ->
              Unix.sleepf 0.02;
              await id (tries + 1)
      in
      (* Nobody competes for the writer: the import must run at full
         speed and say so — zero pauses is deterministic, not lucky. *)
      let summary = await (submit 120 "quiet") 0 in
      check_str "uncontended import takes no yield pauses"
        "added 120 triple(s)" summary;
      (* A large import in the background; interactive writes meanwhile
         must each wait out at most one writer-locked batch. *)
      let id = submit 8000 "busy" in
      let latencies = ref [] in
      let running = ref true in
      let n = ref 0 in
      while !running && !n < 300 do
        incr n;
        let t0 = Unix.gettimeofday () in
        check_bool "interactive add served" true
          (req c "add"
             (Proto.Add
                (Triple.make
                   (Printf.sprintf "i%d" !n)
                   "interactive"
                   (Triple.Literal "x")))
          = Proto.Ok_done);
        latencies := (Unix.gettimeofday () -. t0) :: !latencies;
        match job_state id with
        | Proto.Done _ | Proto.Failed _ -> running := false
        | _ -> ()
      done;
      ignore (await id 0);
      let sorted = List.sort compare !latencies in
      let count = List.length sorted in
      let p99 = List.nth sorted (min (count - 1) (count * 99 / 100)) in
      check_bool
        (Printf.sprintf "interactive p99 bounded during import (%.0fms)"
           (p99 *. 1000.))
        true (p99 < 0.25);
      check_bool "interactive writes all landed" true
        (req c "count"
           (Proto.Count { Proto.any with p_predicate = Some "interactive" })
        = Proto.Count_is !n));
  Server.stop server

(* Capture and apply run on the bulk job class: a client can pull a
   portable bundle out of a live server and push one back in, with the
   strict preflight refusing garbage before the pad is touched. *)
let test_server_capture_apply_jobs () =
  let server, app, dir = start_server () in
  let path = Filename.concat dir "served.bundle" in
  with_client server (fun c ->
      for i = 1 to 20 do
        check_bool "seed add" true
          (req c "add"
             (Proto.Add
                (Triple.make
                   (Printf.sprintf "s%d" i)
                   "seeded" (Triple.Literal "x")))
          = Proto.Ok_done)
      done;
      let submit kind =
        match
          req c "submit" (Proto.Submit { kind; priority = Proto.Bulk })
        with
        | Proto.Accepted id -> id
        | r -> Alcotest.failf "submit: %s" (Proto.encode_response r)
      in
      let rec await id tries =
        if tries > 500 then Alcotest.fail "job never finished"
        else
          match req c "job?" (Proto.Job_status id) with
          | Proto.Job { state = Proto.Done summary; _ } -> Ok summary
          | Proto.Job { state = Proto.Failed e; _ } -> Error e
          | Proto.Job _ ->
              Unix.sleepf 0.02;
              await id (tries + 1)
          | r -> Alcotest.failf "job?: %s" (Proto.encode_response r)
      in
      let summary =
        match await (submit (Proto.Capture { path; with_bases = false })) 0 with
        | Ok s -> s
        | Error e -> Alcotest.failf "capture job failed: %s" e
      in
      check_bool "capture summary" true
        (String.length summary >= 8 && String.sub summary 0 8 = "captured");
      (* The artifact on disk is a verifiable cut of the served pad. *)
      let bytes = sok "read bundle" (Si_bundle.read_file path) in
      check_bool "artifact verifies clean" true (Si_bundle.verify bytes = []);
      check_str "artifact digest matches the live pad"
        (Si_bundle.app_digest app)
        (sok "digest" (Si_bundle.content_digest bytes));
      (* Applying the pad's own bundle back is a no-op install. *)
      (match await (submit (Proto.Apply { path; strict = true })) 0 with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "apply job failed: %s" e);
      check_bool "pad content unchanged" true
        (req c "count"
           (Proto.Count { Proto.any with p_predicate = Some "seeded" })
        = Proto.Count_is 20);
      (* A strict apply of garbage fails the job, typed, pad untouched. *)
      let garbage = Filename.concat dir "garbage.bundle" in
      let oc = open_out_bin garbage in
      output_string oc "this is not a bundle";
      close_out oc;
      (match await (submit (Proto.Apply { path = garbage; strict = true })) 0 with
      | Error _ -> ()
      | Ok s -> Alcotest.failf "garbage apply succeeded: %s" s);
      check_bool "pad survived the refusal" true
        (req c "count"
           (Proto.Count { Proto.any with p_predicate = Some "seeded" })
        = Proto.Count_is 20));
  Server.stop server

let test_server_replica_routing () =
  let dir = scratch_dir () in
  let leader, _ =
    sok "open_wal"
      (Slimpad.open_wal
         ~store:(module Si_triple.Store.Sharded_columnar)
         (Desktop.create ())
         (Filename.concat dir "leader.wal"))
  in
  ignore (Slimpad.new_pad leader "served");
  sok "start_shipping"
    (Slimpad.start_shipping leader ~archive:(Filename.concat dir "archive"));
  let rapp, _ =
    sok "open_replica"
      (Slimpad.open_replica
         ~store:(module Si_triple.Store.Sharded_columnar)
         (Desktop.create ())
         (Filename.concat dir "replica.wal"))
  in
  let rep = Option.get (Slimpad.replica rapp) in
  sok "attach"
    (Slimpad.attach_follower leader ~name:"r1" (Si_wal.Replica.transport rep));
  sok "ship" (Slimpad.ship leader);
  let config =
    { Server.default_config with workers = 2; max_lag = 1_000_000 }
  in
  let server =
    sok "start" (Server.start ~config ~follower:(rapp, rep) leader)
  in
  let replica_reads () =
    match Si_obs.Registry.counter "server.read.replica" with
    | c -> Si_obs.Counter.get c
  in
  with_client server (fun c ->
      let before = replica_reads () in
      check_bool "add on leader" true
        (req c "add"
           (Proto.Add (Triple.make "rr" "routed" (Triple.Literal "x")))
        = Proto.Ok_done);
      (* Push the record across, making the replica fresh: the read
         must route to it — and see the new triple. *)
      sok "ship add" (Slimpad.ship leader);
      check_bool "fresh read routed" true
        (req c "count" (Proto.Count { Proto.any with p_subject = Some "rr" })
        = Proto.Count_is 1);
      check_bool "replica served it" true (replica_reads () > before));
  Server.stop server;
  (* Under a zero staleness bound, a replica that knows it is behind
     (heartbeat carries the leader's position without the records)
     must not serve the read — it falls back to the leader. *)
  let config = { config with max_lag = 0 } in
  let server =
    sok "start again" (Server.start ~config ~follower:(rapp, rep) leader)
  in
  let leader_reads () =
    Si_obs.Counter.get (Si_obs.Registry.counter "server.read.leader")
  in
  with_client server (fun c ->
      check_bool "add unshipped" true
        (req c "add"
           (Proto.Add (Triple.make "rr2" "routed" (Triple.Literal "x")))
        = Proto.Ok_done);
      sok "heartbeat" (Slimpad.ship_heartbeat leader);
      let before = leader_reads () in
      check_bool "stale read on leader" true
        (req c "count" (Proto.Count { Proto.any with p_subject = Some "rr2" })
        = Proto.Count_is 1);
      check_bool "leader served it" true (leader_reads () > before));
  Server.stop server;
  sok "stop_shipping" (Slimpad.stop_shipping leader);
  ignore (Slimpad.wal_close rapp);
  ignore (Slimpad.wal_close leader)

let test_server_shutdown_request () =
  let server, _app, _dir = start_server () in
  with_client server (fun c ->
      check_bool "closing" true (req c "bye" Proto.Shutdown = Proto.Closing));
  Server.wait server;
  check_bool "stopped" true (Server.stopped server);
  (* A second stop is a no-op, not a deadlock. *)
  Server.stop server

let suite =
  [
    ( "proto",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_request_roundtrip;
          prop_response_roundtrip;
          prop_decoder_survives_mangling;
        ]
      @ [
          Alcotest.test_case "constructor witnesses round-trip" `Quick
            test_roundtrip_witnesses;
          Alcotest.test_case "decoder rejects edge cases" `Quick
            test_decoder_edge_cases;
        ] );
    ( "jobq",
      [
        Alcotest.test_case "interactive before bulk" `Quick test_jobq_priority;
        Alcotest.test_case "bounded with typed overload" `Quick
          test_jobq_overload;
        Alcotest.test_case "pop blocks until push" `Quick
          test_jobq_blocking_pop;
      ] );
    ( "serving",
      [
        Alcotest.test_case "end-to-end request coverage" `Quick
          test_server_end_to_end;
        Alcotest.test_case "two concurrent clients" `Quick
          test_server_concurrent_clients;
        Alcotest.test_case "garbage frames: typed error, connection dropped"
          `Quick test_server_survives_garbage;
        Alcotest.test_case "background jobs and overload backpressure" `Quick
          test_server_jobs_and_overload;
        Alcotest.test_case "bulk import keeps interactive latency bounded"
          `Quick test_bulk_import_interactive_latency;
        Alcotest.test_case "capture/apply bundle jobs" `Quick
          test_server_capture_apply_jobs;
        Alcotest.test_case "replica-aware read routing" `Quick
          test_server_replica_routing;
        Alcotest.test_case "client-initiated shutdown" `Quick
          test_server_shutdown_request;
      ] );
  ]
  |> List.concat_map (fun (group, cases) ->
         List.map
           (fun case ->
             let name, speed, fn = case in
             (group ^ ": " ^ name, speed, fn))
           cases)
