let () =
  Alcotest.run "superimposed"
    [
      ("xmlk", Test_xmlk.suite);
      ("obs", Test_obs.suite);
      ("textdoc", Test_textdoc.suite);
      ("spreadsheet", Test_spreadsheet.suite);
      ("wordproc", Test_wordproc.suite);
      ("slides", Test_slides.suite);
      ("pdfdoc", Test_pdfdoc.suite);
      ("htmldoc", Test_htmldoc.suite);
      ("triple", Test_triple.suite);
      ("wal", Test_wal.suite);
      ("metamodel", Test_metamodel.suite);
      ("mark", Test_mark.suite);
      ("slim", Test_slim.suite);
      ("mapping", Test_mapping.suite);
      ("query", Test_query.suite);
      ("slimpad", Test_slimpad.suite);
      ("lint", Test_lint.suite);
      ("generic-dmi", Test_generic_dmi.suite);
      ("rdf & models", Test_rdf.suite);
      ("robustness", Test_robustness.suite);
      ("replication", Test_replication.suite);
      ("workload", Test_workload.suite);
      ("server", Test_server.suite);
      ("tui", Test_tui.suite);
      ("check", Test_check.suite);
      ("bundle", Test_bundle.suite);
    ]
