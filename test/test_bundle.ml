(* Tests for Si_bundle: capture → apply round-trips over all seven mark
   module types, deterministic artifacts and content digests, greedy
   capture / conservative apply discipline, decoder fuzzing (truncation
   and bit flips must yield typed errors, never exceptions), offline
   verification (SL308), and the replication integrations — follower
   bootstrap and archive-base restore. *)

open Si_mark
module Slimpad = Si_slimpad.Slimpad
module Dmi = Si_slim.Dmi
module Trim = Si_triple.Trim
module Triple = Si_triple.Triple
module Replica = Si_wal.Replica
module Ship = Si_wal.Ship

let check = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let sok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

let scratch_dir () =
  let path = Filename.temp_file "si_bundle" "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

(* ------------------------------------------------------------ fixtures *)

(* A desktop with one document of every kind the seven mark modules
   address. *)
let full_desktop () =
  let desk = Desktop.create () in
  let wb = Si_spreadsheet.Workbook.create ~sheet_names:[ "Meds" ] () in
  let set a v = Si_spreadsheet.Workbook.set wb ~sheet_name:"Meds" a v in
  set "A1" "Drug";
  set "B1" "Dose";
  set "A2" "Dopamine";
  set "B2" "5";
  Desktop.add_workbook desk "meds.xls" wb;
  Desktop.add_xml desk "labs.xml"
    (Si_xmlk.Parse.node_exn
       "<report><panel name=\"lytes\"><result test=\"K\">4.2</result>\
        </panel></report>");
  Desktop.add_text desk "note.txt"
    (Si_textdoc.Textdoc.of_lines [ "Plan: wean pressors"; "Call renal." ]);
  let word = Si_wordproc.Wordproc.create ~title:"Admission" () in
  Si_wordproc.Wordproc.append_paragraph word "Admitted with sepsis.";
  (match
     Si_wordproc.Wordproc.add_bookmark word ~name:"dx"
       (Option.get (Si_wordproc.Wordproc.find_first word "sepsis"))
   with
  | Ok () -> ()
  | Error e -> failwith e);
  Desktop.add_word desk "admission.doc" word;
  let deck = Si_slides.Slides.create ~title:"Report" () in
  let s1 = Si_slides.Slides.add_slide deck ~title:"Case" in
  ignore
    (Si_slides.Slides.add_shape s1 ~id:"problems"
       (Si_slides.Slides.Bullets [ "Shock"; "ARF" ]));
  Desktop.add_slides desk "rounds.ppt" deck;
  let pdf = Si_pdfdoc.Pdfdoc.create ~title:"Guideline" () in
  let p1 = Si_pdfdoc.Pdfdoc.add_page pdf in
  ignore (Si_pdfdoc.Pdfdoc.add_line p1 ~y:100. "MAP >= 65 mmHg");
  Desktop.add_pdf desk "guideline.pdf" pdf;
  Desktop.add_html desk "wiki.html"
    "<html><head><title>Sepsis</title></head><body>\
     <h1 id=\"tx\">Treatment</h1><p>Start antibiotics.</p></body></html>";
  desk

(* A pad holding one scrap per mark module — all seven types. *)
let full_app () =
  let desk = full_desktop () in
  let app = Slimpad.create desk in
  let pad = Slimpad.new_pad app "Rounds" in
  let root = Dmi.root_bundle (Slimpad.dmi app) pad in
  let scrap name mark_type fields =
    ignore (ok (Slimpad.add_scrap app ~parent:root ~name ~mark_type ~fields ()))
  in
  scrap "dopa" "excel"
    [ ("fileName", "meds.xls"); ("sheetName", "Meds"); ("range", "A2:B2") ];
  scrap "k" "xml"
    [ ("fileName", "labs.xml"); ("xmlPath", "/report/panel/result[1]") ];
  let text = ok (Desktop.open_text desk "note.txt") in
  scrap "plan" "text"
    (ok
       (Text_mark.capture text ~file_name:"note.txt"
          (Option.get (Si_textdoc.Textdoc.find_first text "wean pressors"))));
  let word = ok (Desktop.open_word desk "admission.doc") in
  scrap "dx" "word"
    (ok (Word_mark.capture_bookmark word ~file_name:"admission.doc" "dx"));
  let deck = ok (Desktop.open_slides desk "rounds.ppt") in
  scrap "arf" "slides"
    (ok
       (Slides_mark.capture deck ~file_name:"rounds.ppt"
          { Si_slides.Slides.slide = 1; shape_id = "problems"; bullet = Some 2 }));
  let pdf = ok (Desktop.open_pdf desk "guideline.pdf") in
  scrap "map" "pdf"
    (ok
       (Pdf_mark.capture pdf ~file_name:"guideline.pdf" ~page_number:1
          (Si_pdfdoc.Pdfdoc.spans
             (Option.get (Si_pdfdoc.Pdfdoc.nth_page pdf 1)))));
  let html = ok (Desktop.open_html desk "wiki.html") in
  scrap "tx" "html"
    (ok (Html_mark.capture_anchor html ~file_name:"wiki.html" "tx"));
  app

let mark_key (m : Mark.t) =
  (m.mark_id, m.mark_type, List.sort compare m.fields)

let marks_of app = List.map mark_key (Manager.marks (Slimpad.marks app))

let same_contents a b =
  Trim.equal_contents (Dmi.trim (Slimpad.dmi a)) (Dmi.trim (Slimpad.dmi b))
  && marks_of a = marks_of b

(* ------------------------------------------------- capture round-trips *)

let test_roundtrip_all_marks () =
  let app = full_app () in
  check_int "all seven modules marked" 7
    (Manager.mark_count (Slimpad.marks app));
  let bytes, report = Si_bundle.capture ~workspace_id:"ws-7" app in
  check_int "no capture problems" 0 (List.length report.capture_problems);
  check_int "marks counted" 7 report.captured_marks;
  let target = Slimpad.create (Desktop.create ()) in
  let applied = ok (Si_bundle.apply ~excerpts:true target bytes) in
  (* A fresh app already holds the metamodel triples, so those skip;
     everything else installs. *)
  check_int "every triple accounted for" report.captured_triples
    (applied.added_triples + applied.skipped_triples);
  check_bool "the pad's own triples were added" true
    (applied.added_triples > 0);
  check_int "every mark installed" 7 applied.installed_marks;
  check_int "no apply problems" 0 (List.length applied.apply_problems);
  check_bool "triples and marks reproduced" true (same_contents app target);
  (* The acceptance criterion behind the cross-version CI gate: a
     round-tripped workspace hashes to the bundle's content digest. *)
  check "digest reproduced" (ok (Si_bundle.content_digest bytes))
    (Si_bundle.app_digest target);
  check "digest matches source" (Si_bundle.app_digest app)
    (Si_bundle.app_digest target)

let test_capture_deterministic () =
  let b1, _ = Si_bundle.capture ~workspace_id:"x" (full_app ()) in
  let b2, _ = Si_bundle.capture ~workspace_id:"x" (full_app ()) in
  check_bool "equal pads capture byte-identically" true (b1 = b2)

let test_meta_and_report () =
  let app = full_app () in
  let bytes, _ = Si_bundle.capture ~workspace_id:"icu-ws" app in
  let meta = ok (Si_bundle.meta_of bytes) in
  check_int "schema version" Si_bundle.schema_version meta.version;
  check "workspace id" "icu-ws" meta.workspace_id;
  check_int "mark count" 7 meta.mark_count;
  check_int "no bases" 0 meta.base_count;
  check_bool "no watermark without replication" true (meta.watermark = None);
  let report = ok (Si_bundle.report_of bytes) in
  check_int "embedded report is clean" 0 (List.length report.capture_problems)

let test_excerpts_opt_in () =
  let app = full_app () in
  let bytes, _ = Si_bundle.capture app in
  let blank = Slimpad.create (Desktop.create ()) in
  let r = ok (Si_bundle.apply blank bytes) in
  check_int "no excerpts by default" 0 r.restored_excerpts;
  List.iter
    (fun (m : Mark.t) -> check "installed blank" "" m.excerpt)
    (Manager.marks (Slimpad.marks blank));
  let rich = Slimpad.create (Desktop.create ()) in
  let r = ok (Si_bundle.apply ~excerpts:true rich bytes) in
  check_bool "excerpts restored on request" true (r.restored_excerpts > 0);
  check_bool "some mark carries its cached excerpt" true
    (List.exists
       (fun (m : Mark.t) -> m.excerpt <> "")
       (Manager.marks (Slimpad.marks rich)))

(* ------------------------------------------------- greedy / conservative *)

let test_capture_greedy () =
  let app = full_app () in
  (* A reader that can serve text documents but fails everything else:
     per-module failures land in the report, never abort the capture. *)
  let bases ~kind ~name =
    if kind = "text" then Ok (name, "the note bytes")
    else Error (kind ^ " reader offline")
  in
  let bytes, report = Si_bundle.capture ~bases app in
  check_int "one base captured" 1 report.captured_bases;
  check_bool "failures recorded" true (List.length report.capture_problems > 0);
  (* The report travels inside the artifact. *)
  let embedded = ok (Si_bundle.report_of bytes) in
  check_int "problems shipped with the bundle"
    (List.length report.capture_problems)
    (List.length embedded.capture_problems);
  check_bool "artifact still verifies clean" true (Si_bundle.verify bytes = [])

let test_apply_install_only () =
  let app = full_app () in
  let bytes, report = Si_bundle.capture app in
  (* Second apply over an already-identical target: everything skips. *)
  let target = Slimpad.create (Desktop.create ()) in
  ignore (ok (Si_bundle.apply target bytes));
  let again = ok (Si_bundle.apply target bytes) in
  check_int "no triple re-added" 0 again.added_triples;
  check_int "all duplicates skipped" report.captured_triples
    again.skipped_triples;
  check_int "no mark re-installed" 0 again.installed_marks;
  check_int "all marks skipped" 7 again.skipped_marks;
  (* The target's version of a mark wins — apply never overwrites. *)
  let mine = Slimpad.create (Desktop.create ()) in
  let theirs = Manager.marks (Slimpad.marks app) in
  let first = List.hd theirs in
  Manager.put_mark (Slimpad.marks mine)
    (Mark.make ~id:first.Mark.mark_id ~mark_type:"local"
       ~fields:[ ("kept", "yes") ] ());
  let r = ok (Si_bundle.apply mine bytes) in
  check_int "six installed around the conflict" 6 r.installed_marks;
  check_int "the held id skipped" 1 r.skipped_marks;
  let survivor =
    Option.get (Manager.mark (Slimpad.marks mine) first.Mark.mark_id)
  in
  check "target's mark untouched" "local" survivor.Mark.mark_type

let test_base_restore () =
  let app = full_app () in
  let store = Hashtbl.create 8 in
  let bases ~kind ~name =
    Ok (Si_bundle.Layout.disk_name ~kind ~name, "base:" ^ kind ^ ":" ^ name)
  in
  let bytes, report = Si_bundle.capture ~bases app in
  check_int "seven documents captured" 7 report.captured_bases;
  let writer ~kind:_ ~name:_ ~filename contents =
    if Hashtbl.mem store filename then Ok false
    else begin
      Hashtbl.replace store filename contents;
      Ok true
    end
  in
  let target = Slimpad.create (Desktop.create ()) in
  let r = ok (Si_bundle.apply ~bases:writer target bytes) in
  check_int "all restored" 7 r.restored_bases;
  check_int "none skipped" 0 r.skipped_bases;
  check "suffix mapping survives" "base:excel:meds.xls"
    (Hashtbl.find store "meds.xls.workbook.xml");
  (* Re-apply: everything already present, nothing overwritten. *)
  let again =
    ok (Si_bundle.apply ~bases:writer (Slimpad.create (Desktop.create ())) bytes)
  in
  check_int "second restore skips all" 7 again.skipped_bases

let test_layout_writer_refuses_traversal () =
  let dir = scratch_dir () in
  let w = Si_bundle.Layout.writer ~dir in
  check_bool "path traversal refused" true
    (Result.is_error (w ~kind:"text" ~name:"x" ~filename:"../evil.txt" "p"));
  check_bool "absolute path refused" true
    (Result.is_error (w ~kind:"text" ~name:"x" ~filename:"/etc/evil" "p"));
  check_bool "plain name accepted" true
    (ok (w ~kind:"text" ~name:"x" ~filename:"fine.txt" "p"));
  check_bool "existing file skipped, not overwritten" true
    (ok (w ~kind:"text" ~name:"x" ~filename:"fine.txt" "other") = false)

let test_journaled_apply_is_durable () =
  let dir = scratch_dir () in
  let wal = Filename.concat dir "pad.wal" in
  let target, _ = sok "open_wal" (Slimpad.open_wal (Desktop.create ()) wal) in
  let bytes, _ = Si_bundle.capture (full_app ()) in
  let r = ok (Si_bundle.apply ~excerpts:true target bytes) in
  check_bool "installed through the journal" true (r.installed_marks = 7);
  sok "sync" (Slimpad.wal_sync target);
  sok "close" (Slimpad.wal_close target);
  (* Reopen from the log alone: the restore was journaled. *)
  let reopened, _ =
    sok "reopen" (Slimpad.open_wal (Desktop.create ()) wal)
  in
  check_bool "restore survives reopen" true
    (same_contents (full_app ()) reopened);
  sok "close2" (Slimpad.wal_close reopened)

(* ------------------------------------------------------ verify + fuzzing *)

let test_verify_clean_and_damaged () =
  let bytes, _ = Si_bundle.capture (full_app ()) in
  check_int "clean bundle verifies clean" 0
    (List.length (Si_bundle.verify bytes));
  (* Not a container at all. *)
  check_bool "garbage flagged" true (Si_bundle.verify "not a bundle" <> []);
  (* A plain snapshot is a container but not a bundle. *)
  let snapshot = Slimpad.snapshot_bytes (full_app ()) in
  check_bool "bare snapshot flagged" true (Si_bundle.verify snapshot <> []);
  check_bool "bare snapshot still loads as one"
    true
    (Result.is_ok (Slimpad.of_snapshot_bytes (Desktop.create ()) snapshot))

let test_verify_dangling_excerpt () =
  (* Hand-assemble a bundle whose excerpts table names a ghost mark. *)
  let bytes, _ = Si_bundle.capture (full_app ()) in
  let sections = sok "decode" (Si_wal.Binary.decode bytes) in
  let doctored =
    Si_wal.Binary.encode
      (List.map
         (fun (name, payload) ->
           if name = "excerpts" then
             (name, Si_wal.Record.encode_fields [ "ghost-mark"; "boo" ])
           else (name, payload))
         sections)
  in
  let problems = Si_bundle.verify doctored in
  check_bool "dangling excerpt flagged" true
    (List.exists
       (fun (p : Si_bundle.problem) ->
         p.p_module = "excerpts" && p.p_source = "ghost-mark")
       problems)

let test_truncation_fuzz () =
  let bytes, _ = Si_bundle.capture (full_app ()) in
  let n = String.length bytes in
  let len = ref 0 in
  while !len < n do
    let prefix = String.sub bytes 0 !len in
    (* Typed results only — and a strict prefix can never verify clean:
       every byte sits under the magic, the section count, framing, or
       a section CRC. *)
    check_bool
      (Printf.sprintf "prefix %d flagged" !len)
      true
      (Si_bundle.verify prefix <> []);
    check_bool
      (Printf.sprintf "prefix %d meta errors" !len)
      true
      (Result.is_error (Si_bundle.meta_of prefix));
    check_bool
      (Printf.sprintf "prefix %d apply errors" !len)
      true
      (Result.is_error
         (Si_bundle.apply (Slimpad.create (Desktop.create ())) prefix));
    len := !len + max 1 (n / 311)
  done

let prop_bitflip_never_raises =
  let bytes, _ = Si_bundle.capture (full_app ()) in
  QCheck.Test.make ~name:"bit-flipped bundles yield typed results" ~count:300
    QCheck.(pair small_nat small_nat)
    (fun (pos, bit) ->
      let pos = pos mod String.length bytes and bit = bit mod 8 in
      let flipped = Bytes.of_string bytes in
      Bytes.set flipped pos
        (Char.chr (Char.code (Bytes.get flipped pos) lxor (1 lsl bit)));
      let flipped = Bytes.to_string flipped in
      (* Any of these may succeed or fail — they must never raise. *)
      ignore (Si_bundle.verify flipped);
      ignore (Si_bundle.meta_of flipped);
      ignore (Si_bundle.report_of flipped);
      ignore (Si_bundle.content_digest flipped);
      ignore (Si_bundle.apply (Slimpad.create (Desktop.create ())) flipped);
      true)

let prop_roundtrip =
  let ident =
    QCheck.Gen.(
      map2
        (fun c s -> Printf.sprintf "%c%s" (Char.chr (Char.code 'a' + c)) s)
        (int_bound 25)
        (string_size ~gen:(char_range 'a' 'z') (int_range 0 6)))
  in
  let gen_triple =
    QCheck.Gen.(
      map3
        (fun s p o -> Triple.make s p (Triple.Literal o))
        ident ident ident)
  in
  let gen_mark =
    QCheck.Gen.(
      map3
        (fun ty fields excerpt -> (ty, fields, excerpt))
        ident
        (list_size (int_range 0 4) (pair ident ident))
        ident)
  in
  let gen = QCheck.Gen.(pair (list_size (int_range 0 40) gen_triple)
                          (list_size (int_range 0 10) gen_mark))
  in
  QCheck.Test.make ~name:"capture/apply reproduces any pad" ~count:60
    (QCheck.make gen)
    (fun (triples, marks) ->
      let app = Slimpad.create (Desktop.create ()) in
      Trim.add_all (Dmi.trim (Slimpad.dmi app)) triples;
      List.iteri
        (fun i (ty, fields, excerpt) ->
          Manager.put_mark (Slimpad.marks app)
            (Mark.make
               ~id:(Printf.sprintf "m-%d" i)
               ~mark_type:ty ~fields ~excerpt ()))
        marks;
      let bytes, _ = Si_bundle.capture app in
      let target = Slimpad.create (Desktop.create ()) in
      match Si_bundle.apply ~excerpts:true target bytes with
      | Error e -> QCheck.Test.fail_reportf "apply failed: %s" e
      | Ok _ ->
          same_contents app target
          && Si_bundle.app_digest target = Si_bundle.app_digest app)

(* ------------------------------------------------------- SL308 linting *)

let test_lint_sl308 () =
  let dir = scratch_dir () in
  let path = Filename.concat dir "pad.bundle" in
  let bytes, _ = Si_bundle.capture (full_app ()) in
  ok (Si_bundle.write_file ~path bytes);
  let diags = Si_lint.run (Si_lint.context ~bundle:path ()) in
  check_int "clean bundle lints clean" 0 (List.length diags);
  (* Flip one payload byte deep in the artifact: the section CRC
     catches it offline. *)
  let damaged = Bytes.of_string bytes in
  Bytes.set damaged
    (Bytes.length damaged - 3)
    (Char.chr
       (Char.code (Bytes.get damaged (Bytes.length damaged - 3)) lxor 0xff));
  ok (Si_bundle.write_file ~path (Bytes.to_string damaged));
  let diags = Si_lint.run (Si_lint.context ~bundle:path ()) in
  check_bool "damage caught" true (List.length diags > 0);
  List.iter
    (fun (d : Si_lint.diagnostic) ->
      check "code" "SL308" d.Si_lint.code;
      check "severity" "error"
        (Si_lint.severity_to_string d.Si_lint.severity))
    diags;
  (* A missing file is one SL308 diagnostic, not an exception. *)
  let diags =
    Si_lint.run
      (Si_lint.context ~bundle:(Filename.concat dir "absent.bundle") ())
  in
  check_int "missing file flagged" 1 (List.length diags)

(* --------------------------------------------- replication integrations *)

let churn app pad ~from n =
  let root = Dmi.root_bundle (Slimpad.dmi app) pad in
  for i = from to from + n - 1 do
    ignore
      (Slimpad.add_bundle app ~parent:root
         ~name:(Printf.sprintf "node-%04d" i)
         ())
  done

let make_leader dir =
  let app, _ =
    sok "open_wal"
      (Slimpad.open_wal (Desktop.create ()) (Filename.concat dir "l.wal"))
  in
  let pad = Slimpad.new_pad app "pad" in
  sok "start_shipping"
    (Slimpad.start_shipping ~segment_records:4 app
       ~archive:(Filename.concat dir "l.archive"));
  (app, pad)

let test_bootstrap_follower () =
  let dir = scratch_dir () in
  let leader, pad = make_leader dir in
  churn leader pad ~from:0 10;
  let bytes, _ = Si_bundle.capture leader in
  check_bool "bundle carries the leader's watermark" true
    (Slimpad.snapshot_meta bytes = Slimpad.rep_meta leader
    && Slimpad.rep_meta leader <> None);
  (* A fresh follower comes up from the shipped file alone... *)
  let f, _ =
    sok "bootstrap"
      (Slimpad.open_replica ~bootstrap:bytes (Desktop.create ())
         (Filename.concat dir "f.wal"))
  in
  check_bool "bootstrapped state equals the leader's" true
    (Trim.equal_contents
       (Dmi.trim (Slimpad.dmi leader))
       (Dmi.trim (Slimpad.dmi f)));
  (* ...and catch-up starts past the bundle's watermark, not seq 1. *)
  let r = Option.get (Slimpad.replica f) in
  check_bool "applied prefix at the watermark" true
    (Some (Replica.term r, Replica.applied r) = Slimpad.snapshot_meta bytes);
  churn leader pad ~from:10 5;
  sok "attach"
    (Slimpad.attach_follower leader ~name:"f" (Replica.transport r));
  sok "ship" (Slimpad.ship leader);
  check_bool "converged after shipping the delta" true
    (Trim.equal_contents
       (Dmi.trim (Slimpad.dmi leader))
       (Dmi.trim (Slimpad.dmi f)));
  sok "close f" (Slimpad.wal_close f);
  (* Bootstrapping over existing history is refused. *)
  check_bool "refused over history" true
    (Result.is_error
       (Slimpad.open_replica ~bootstrap:bytes (Desktop.create ())
          (Filename.concat dir "f.wal")));
  sok "close leader" (Slimpad.wal_close leader)

let test_to_archive_restore () =
  let dir = scratch_dir () in
  let leader, pad = make_leader dir in
  churn leader pad ~from:0 7;
  let bytes, _ = Si_bundle.capture leader in
  let archive = Filename.concat dir "from-bundle.archive" in
  let base = ok (Si_bundle.to_archive ~archive bytes) in
  let _, seq = Option.get (Slimpad.rep_meta leader) in
  check_int "base lands at the watermark" seq base.Si_wal.Segment.base_seq;
  let restored, reached =
    sok "restore_at"
      (Slimpad.restore_at (Desktop.create ()) ~archive ~at:seq)
  in
  check_int "restore reaches the watermark" seq reached;
  check_bool "restored store equals the captured one" true
    (Trim.equal_contents
       (Dmi.trim (Slimpad.dmi leader))
       (Dmi.trim (Slimpad.dmi restored)));
  sok "close leader" (Slimpad.wal_close leader)

(* ------------------------------------------------------------------ suite *)

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_roundtrip; prop_bitflip_never_raises ]

let suite =
  [
    ("round-trip: all seven mark types", `Quick, test_roundtrip_all_marks);
    ("capture is deterministic", `Quick, test_capture_deterministic);
    ("metadata + embedded report", `Quick, test_meta_and_report);
    ("excerpt restore is opt-in", `Quick, test_excerpts_opt_in);
    ("capture is greedy under failing readers", `Quick, test_capture_greedy);
    ("apply is install-only", `Quick, test_apply_install_only);
    ("base documents restore through the writer", `Quick, test_base_restore);
    ("hostile base names are refused", `Quick,
     test_layout_writer_refuses_traversal);
    ("journaled apply survives reopen", `Quick,
     test_journaled_apply_is_durable);
    ("verify: clean, garbage, bare snapshot", `Quick,
     test_verify_clean_and_damaged);
    ("verify: dangling excerpt", `Quick, test_verify_dangling_excerpt);
    ("truncated bundles: typed errors at every cut", `Quick,
     test_truncation_fuzz);
    ("SL308 lints bundle files offline", `Quick, test_lint_sl308);
    ("follower bootstraps from a bundle", `Quick, test_bootstrap_follower);
    ("bundle as archive restore base", `Quick, test_to_archive_restore);
  ]
  @ props
