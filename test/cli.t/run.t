The slimpad CLI, end to end on a generated workspace.

  $ slimpad init ws --scenario icu --seed 7
  initialized ICU rounds worksheet in ws

The workspace holds the base documents plus the pad store:

  $ ls ws | sort | head -4
  labs-01.xml
  labs-02.xml
  labs-03.xml
  labs-04.xml
  $ ls ws | grep -c .
  10

  $ slimpad pads ws
  Rounds (9 bundles, 47 scraps)

  $ slimpad stats ws | head -4
  store implementation : columnar
  triples              : 547
  pads                 : 1
  marks                : 47

The pad renders with positions and live mark sources:

  $ slimpad show ws | head -5
  SLIMPad "Rounds"
    Bundle "Rounds"
      Bundle "Susan Smith" @(10,10) 760x150
        Scrap "GI bleed" @(150,30) -> note-01.txt:3
        Scrap "pneumonia" @(150,48) -> note-01.txt:4

Double-clicking a scrap re-establishes its context in the base document:

  $ slimpad resolve ws "GI bleed" -b extract
  GI bleed

  $ slimpad resolve ws "Medications" -b extract | head -1
  error: 4 scraps match "Medications"; be more specific

Structural edits through the CLI persist:

  $ slimpad add-bundle ws "Consults"
  created bundle "Consults"
  $ slimpad add-scrap ws --parent Consults --type xml \
  >   -f fileName=labs-01.xml -f 'xmlPath=/report/patient' --name "patient"
  created scrap "patient" -> Scrap "patient" -> labs-01.xml#/report/patient
  $ slimpad annotate ws "patient" "follow up tomorrow"
  $ slimpad show ws | grep -A 1 'Scrap "patient"'
        Scrap "patient" -> labs-01.xml#/report/patient
          note: follow up tomorrow

The base layer changes; the pad notices. An in-place edit of a marked
value in the workbook is reported as changed, and refresh re-caches it:

  $ sed -i 's|>5 mcg/kg/min|>7.5 mcg/kg/min|' ws/medications.xls.workbook.xml
  $ slimpad drift ws | cut -c1-40
  changed  Medications: "Michael Nguyen\tP
  $ slimpad drift ws --refresh | tail -1
  refreshed 1 scrap(s)
  $ slimpad drift ws
  all scraps current

Replacing marked text outright (the selection itself is gone from the
note) leaves the mark broken, which drift reports but cannot repair:

  $ sed -i 's/GI bleed/GI hemorrhage/' ws/note-01.txt
  $ slimpad drift ws
  broken   GI bleed: note-01.txt failed 3 attempt(s): span 35+8 invalid in note-01.txt and excerpt not found
  broken   pneumonia: note-01.txt circuit open (7 call(s) until probe)
  broken   atrial fibrillation: note-01.txt circuit open (6 call(s) until probe)
  broken   TODO: culture results: note-01.txt circuit open (5 call(s) until probe)
  broken   TODO: adjust tube feeds: note-01.txt circuit open (4 call(s) until probe)
  broken   TODO: wean pressors: note-01.txt circuit open (3 call(s) until probe)
  $ slimpad drift ws --refresh | tail -1
  refreshed 0 scrap(s)

The pad carries its construction history (the DMI journal):

  $ slimpad history ws --last 3 | cut -c1-46
    65  create_bundle          bundle-1     bund
    66  create_scrap           scrap-1      scra
    67  annotate_scrap         scrap-1      note

Queries over the superimposed layer:

  $ slimpad query ws 'select ?n where { ?s scrapName ?n } filter prefix(?n, "TODO")' | tail -1
  (6 rows)

Sharing: a colleague's pad imports as a copy with live wires:

  $ slimpad init ws2 --scenario concordance > /dev/null
  $ slimpad import ws ws2/pad.xml --as "Borrowed concordance"
  imported pad "Borrowed concordance"
  $ slimpad pads ws
  Borrowed concordance (5 bundles, 10 scraps)
  Rounds (10 bundles, 48 scraps)

(Its marks point at the play, which lives in the other workspace — they
resolve once that document is present here:)

  $ cp ws2/hamlet-iii-i.txt ws/
  $ slimpad resolve ws --pad "Borrowed concordance" "conscience (line 28)" -b extract
  conscience

Conformance checking (schema-later):

  $ slimpad validate ws | head -1
  133 instance(s) checked, 0 violation(s)

Templates stamp out recurring structure (§6):

  $ slimpad template ws --pad Rounds "Consults"
  Consults is now a template
  $ slimpad instantiate ws --pad Rounds "Consults" "Consults (bed 9)"
  instantiated "Consults (bed 9)" from "Consults"
  $ slimpad show ws --pad Rounds | grep -c "Consults"
  2

The pad exports as a standalone HTML page with the 2-D layout:

  $ slimpad export-html ws --pad Rounds -o ws-rounds.html > /dev/null
  $ head -1 ws-rounds.html
  <!DOCTYPE html>
  $ grep -c 'class="scrap"' ws-rounds.html
  43

The Bundle-Scrap model itself is inspectable as SLIM-ML:

  $ slimpad model ws | head -3
  model bundle-scrap
  
  construct Bundle


Unknown documents and malformed queries fail cleanly:

  $ slimpad resolve ws "no such scrap"
  error: no scrap matching "no such scrap"
  [1]
  $ slimpad query ws 'select nonsense'
  error: expected '{'
  [1]
  $ slimpad init ws
  error: ws exists and is not empty
  [1]

Journaled persistence: a workspace initialized with --wal keeps its pad
in a write-ahead log (pad.wal + pad.wal.snap) instead of pad.xml, and
each mutation appends records instead of rewriting the whole store:

  $ slimpad init wsj --scenario icu --seed 7 --wal
  initialized ICU rounds worksheet in wsj (journaled persistence)
  $ ls wsj | grep pad
  pad.wal
  pad.wal.snap
  $ slimpad wal-inspect wsj
  generation     1
  records        0
  log bytes      12
  snapshot bytes 29415
  snapshot form  binary
    atoms        5347 bytes (329 atoms)
    triples      6568 bytes (547 rows)
    marks        9868 bytes
    journal      7548 bytes
  $ slimpad add-pad wsj "Scratch"
  created pad "Scratch"
  $ slimpad wal-inspect wsj
  generation     1
  records        6
  log bytes      412
  snapshot bytes 29415
  snapshot form  binary
    atoms        5347 bytes (329 atoms)
    triples      6568 bytes (547 rows)
    marks        9868 bytes
    journal      7548 bytes

Compaction folds the log into a fresh snapshot:

  $ slimpad wal-compact wsj
  compacted: folded 6 record(s) into the generation-2 snapshot
  $ slimpad wal-inspect wsj
  generation     2
  records        0
  log bytes      12
  snapshot bytes 29597
  snapshot form  binary
    atoms        5383 bytes (332 atoms)
    triples      6628 bytes (552 rows)
    marks        9868 bytes
    journal      7634 bytes

A crash mid-append leaves a torn tail; opening the workspace recovers to
the last complete record, warns, and persists the truncation:

  $ slimpad add-pad wsj "Torn"
  created pad "Torn"
  $ head -c 400 wsj/pad.wal > wsj/cut && mv wsj/cut wsj/pad.wal
  $ slimpad pads wsj
  Rounds (9 bundles, 47 scraps)
  Scratch (1 bundles, 0 scraps)
  Torn (1 bundles, 0 scraps)
  warning: wal: dropped a torn tail of 65 byte(s); store recovered to the last complete record
  $ slimpad wal-inspect wsj
  generation     2
  records        5
  log bytes      335
  snapshot bytes 29597
  snapshot form  binary
    atoms        5383 bytes (332 atoms)
    triples      6628 bytes (552 rows)
    marks        9868 bytes
    journal      7634 bytes

An existing whole-file workspace converts in place:

  $ slimpad init ws4 --scenario concordance > /dev/null
  $ slimpad wal-enable ws4
  enabled journaled persistence; state snapshot in pad.wal.snap
  $ ls ws4 | grep pad
  pad.wal
  pad.wal.snap
  $ slimpad pads ws4
  Concordance (5 bundles, 10 scraps)

Static analysis: a freshly generated workspace lints clean, and the
linter reads a corrupted one without touching it. Deleting a mark from
the store file leaves its scrap's MarkHandle dangling (SL101); garbage
appended to the log is a torn tail recovery would truncate (SL302):

  $ slimpad init ws5 --scenario icu --seed 7 > /dev/null
  $ slimpad lint ws5
  no diagnostics
  $ sed -i '/<mark id="mark-1" type="text">/,/<\/mark>/d' ws5/pad.xml
  $ slimpad lint ws5
  SL101 error   dangling-mark-handle: MarkHandle <markhandle-5> refers to missing mark "mark-1"  [resource <markhandle-5>]
  1 error(s), 0 warning(s), 0 info
  [1]
  $ slimpad wal-enable ws5
  enabled journaled persistence; state snapshot in pad.wal.snap
  $ printf 'crash-torn-tail' >> ws5/pad.wal
  $ slimpad lint ws5
  SL101 error   dangling-mark-handle: MarkHandle <markhandle-5> refers to missing mark "mark-1"  [resource <markhandle-5>]
  SL302 warning wal-torn-tail: torn tail of 15 byte(s); recovery would truncate to the last complete record  [ws5/pad.wal]
  1 error(s), 1 warning(s), 0 info
  [1]

Linting is read-only — the torn tail is still there afterwards, and a
second run reports the same state:

  $ slimpad lint --json ws5 | grep -c '"code"'
  2

An atomic save interrupted between write and rename leaves a ".si-tmp"
orphan behind. Loaders ignore it, so nothing ever deletes it; the
linter flags it (SL307) and `--fix` is the mechanical repair:

  $ slimpad init ws7 --scenario icu --seed 7 > /dev/null
  $ touch ws7/pad.xml.si-tmp
  $ slimpad lint ws7
  SL307 warning orphan-temp-file: pad.xml.si-tmp was left by an interrupted atomic save; loaders ignore it, and --fix deletes it  [file ws7/pad.xml.si-tmp]
  0 error(s), 1 warning(s), 0 info
  $ slimpad lint --fix ws7
  no diagnostics
  fixed: removed 0 orphaned layout triple(s), dropped 0 duplicate triple(s), deleted 1 orphaned temp file(s)
  $ ls ws7 | grep -c 'si-tmp'
  0
  [1]

Observability: every invocation counts its hot-path operations.
`stats` appends the nonzero counters to the workspace summary, and
`stats --json` emits one machine-readable document holding both:

  $ slimpad init ws6 --scenario icu --seed 7 > /dev/null
  $ slimpad stats ws6 | sed -n '/counters:/,$p'
  counters:
    atom.intern   329
    triple.insert 547
    triple.select 151
  $ slimpad stats --json ws6 | grep -A 4 '"instrumentation"'
    "instrumentation": {
      "counters": {
        "atom.intern": 329,
        "triple.insert": 547,
        "triple.select": 151

`trace` replays one gesture with span tracing enabled and prints the
span tree; --no-timings keeps the output reproducible:

  $ slimpad trace ws6 query 'select ?n where { ?s scrapName ?n } filter prefix(?n, "TODO")' --no-timings
  query.run
    triple.select
  (6 rows)
  $ slimpad trace ws6 resolve "GI bleed" --no-timings
  triple.select
  triple.select
  resilient.resolve
  $ slimpad trace ws6 open --no-timings | sort | uniq -c | sed 's/^ *//'
  329   atom.intern
  547 triple.insert
  150 triple.select
  $ slimpad trace ws6 bogus
  error: unknown trace gesture "bogus" (one of open, query, resolve)
  [1]

Capture bundles: `capture` packages a workspace — triples, metamodel,
marks, cached excerpts, and (on request) the base documents — into one
portable CRC-framed artifact. The printed content digest covers the
superimposed content only, so it is the cross-machine identity of the
pad:

  $ slimpad init wsb --scenario icu --seed 7 > /dev/null
  $ slimpad capture wsb -o pad.bundle --with-bases
  captured 547 triple(s), 47 mark(s), 9 base document(s) to pad.bundle
  content digest 5b080a1f56a3551c592c7c9a7a2fddbd

The artifact verifies offline, without loading it into a pad (SL308):

  $ slimpad lint --bundle pad.bundle
  no diagnostics

`apply` restores into a fresh directory — install-only, excerpt and
base restore opt-in — and prints the same digest, which is how the
cross-version CI gate asserts byte-identical content:

  $ slimpad apply ws-restored pad.bundle --excerpts --bases --strict
  applied 382 triple(s) (165 already present), 47 mark(s) (0 already present)
  restored 47 cached excerpt(s)
  restored 9 base document(s) (0 already present)
  content digest 5b080a1f56a3551c592c7c9a7a2fddbd
  $ ls ws-restored | grep -c 'note-0'
  4

Capture is greedy: a base document that fails to read becomes a report
problem inside the artifact, never an abort — the exit code stays 0 and
the superimposed content is still complete:

  $ rm wsb/note-01.txt
  $ slimpad capture wsb -o partial.bundle --with-bases
  captured 547 triple(s), 47 mark(s), 8 base document(s) to partial.bundle
    problem: text: note-01.txt: wsb/note-01.txt: No such file or directory
  content digest 5b080a1f56a3551c592c7c9a7a2fddbd

Apply is the opposite discipline — conservative. A flipped byte
anywhere in the artifact trips a section CRC; the linter names the
section, and `--strict` refuses before the target pad is touched:

  $ dd if=pad.bundle of=damaged.bundle bs=1 count=$(($(wc -c < pad.bundle) - 3)) 2> /dev/null
  $ printf '\377\377\377' >> damaged.bundle
  $ slimpad lint --bundle damaged.bundle
  SL308 error   bundle-malformed: container: header: section "base:xml:labs-04.xml" checksum mismatch (stored 6f5fe8c9, computed 9d09fc34)  [file damaged.bundle]
  1 error(s), 0 warning(s), 0 info
  [1]
  $ slimpad apply ws2 damaged.bundle --strict
  error: bundle does not load: binary snapshot: section "base:xml:labs-04.xml" checksum mismatch (stored 6f5fe8c9, computed 9d09fc34)
  [1]
