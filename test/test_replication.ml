(* Tests for WAL shipping: the frame codec, sealed archive segments,
   leader/follower convergence (in-process and over sockets), fault
   injection on the wire and on disk, generation-handshake fencing,
   point-in-time recovery, and the full crash matrix.

   The torn-segment test reuses the crash-at-every-byte idea from the
   WAL recovery tests: a sealed segment damaged at ANY byte offset must
   be detected, never decoded into wrong records. *)

open Si_wal
module Slimpad = Si_slimpad.Slimpad
module Dmi = Si_slim.Dmi
module Desktop = Si_mark.Desktop
module Trim = Si_triple.Trim
module Faults = Si_workload.Faults
module Crash_matrix = Si_workload.Crash_matrix

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let sok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

let scratch_dir () =
  let path = Filename.temp_file "si_repl" "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let read_bytes path =
  In_channel.with_open_bin path In_channel.input_all

let write_bytes path contents =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc contents)

(* --- cluster helpers (mirroring Si_workload.Crash_matrix) ------------- *)

let make_leader ?(segment_records = 4) dir name =
  let app, _ =
    sok "open_wal"
      (Slimpad.open_wal (Desktop.create ())
         (Filename.concat dir (name ^ ".wal")))
  in
  let pad = Slimpad.new_pad app (name ^ "-pad") in
  sok "start_shipping"
    (Slimpad.start_shipping ~segment_records app
       ~archive:(Filename.concat dir (name ^ ".archive")));
  (app, pad)

let make_follower dir name =
  let app, _ =
    sok "open_replica"
      (Slimpad.open_replica (Desktop.create ())
         (Filename.concat dir (name ^ ".wal")))
  in
  app

let replica_of app = Option.get (Slimpad.replica app)
let shipper_of app = Option.get (Slimpad.shipper app)

let churn app pad ~from n =
  let root = Dmi.root_bundle (Slimpad.dmi app) pad in
  for i = from to from + n - 1 do
    ignore
      (Slimpad.add_bundle app ~parent:root
         ~name:(Printf.sprintf "node-%04d" i)
         ())
  done

let converged leader follower =
  Replica.applied (replica_of follower) = Ship.seq (shipper_of leader)
  && Trim.equal_contents
       (Dmi.trim (Slimpad.dmi leader))
       (Dmi.trim (Slimpad.dmi follower))

let pump ?(rounds = 64) leader followers =
  let rec go r =
    if r = 0 then
      Alcotest.failf "no convergence after %d ship rounds (lag %d)" rounds
        (Ship.lag (shipper_of leader))
    else begin
      sok "ship" (Slimpad.ship leader);
      if not (List.for_all (converged leader) followers) then go (r - 1)
    end
  in
  go rounds

(* --- the wire protocol ------------------------------------------------ *)

let test_frame_roundtrip () =
  let frames =
    [
      Frame.Hello { term = 3; seq = 41 };
      Frame.Welcome { term = 3; next = 42 };
      Frame.Fenced { term = 7 };
      Frame.Snapshot { term = 1; seq = 9; payload = "state\x00bytes" };
      Frame.Append { term = 2; seq = 10; payload = "" };
      Frame.Heartbeat { term = 0; seq = 0 };
      Frame.Ack { seq = 12 };
      Frame.Nack { next = 5 };
      Frame.Bad "why";
    ]
  in
  List.iter
    (fun f ->
      check_bool "frame round-trips" true
        (Frame.decode (Frame.encode f) = Ok f))
    frames;
  check_bool "garbage refused" true (Result.is_error (Frame.decode "junk"));
  (* A flipped byte anywhere fails the CRC instead of mis-parsing. *)
  let raw = Frame.encode (Frame.Append { term = 3; seq = 9; payload = "p" }) in
  for i = 0 to String.length raw - 1 do
    let b = Bytes.of_string raw in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    check_bool
      (Printf.sprintf "flip at %d detected" i)
      true
      (Result.is_error (Frame.decode (Bytes.to_string b)))
  done

(* --- sealed segments -------------------------------------------------- *)

let test_segment_roundtrip () =
  let dir = scratch_dir () in
  let recs = [ "alpha"; "beta"; "gamma" ] in
  let entry = sok "seal" (Segment.seal ~dir ~term:1 ~first:5 recs) in
  check_int "last seq" 7 entry.Segment.seg_last;
  check_bool "read back" true (Segment.read ~dir entry = Ok recs);
  ignore (sok "base" (Segment.write_base ~dir ~term:1 ~seq:4 "SNAP"));
  let idx = sok "index" (Segment.index dir) in
  check_int "max_seq" 7 (Segment.max_seq idx);
  check_int "max_term" 1 (Segment.max_term idx);
  let base, entries = sok "plan" (Segment.restore_plan idx ~at:6) in
  check_int "plan base" 4 base.Segment.base_seq;
  check_int "plan segments" 1 (List.length entries);
  check_str "base payload" "SNAP"
    (sok "read_base" (Segment.read_base ~dir base));
  (match Segment.verify dir with
  | Ok [] -> ()
  | Ok ps -> Alcotest.failf "clean archive reports %d problems" (List.length ps)
  | Error e -> Alcotest.failf "verify: %s" e);
  (* A restore the archive cannot cover is an error, not a guess. *)
  check_bool "uncoverable restore refused" true
    (Result.is_error (Segment.restore_plan idx ~at:2))

(* Damage a sealed segment at EVERY byte offset — truncation and a
   flipped byte — and prove decode never yields wrong records: it either
   errors or (never, for these damages) returns the original list. *)
let test_segment_damage_every_offset () =
  let dir = scratch_dir () in
  let recs =
    List.init 6 (fun i -> Printf.sprintf "record-%d-%s" i (String.make i 'x'))
  in
  let entry = sok "seal" (Segment.seal ~dir ~term:2 ~first:10 recs) in
  let path = Filename.concat dir entry.Segment.seg_file in
  let full = read_bytes path in
  let len = String.length full in
  let damaged = scratch_dir () in
  let dpath = Filename.concat damaged entry.Segment.seg_file in
  for cut = 0 to len - 1 do
    write_bytes dpath (String.sub full 0 cut);
    check_bool
      (Printf.sprintf "truncation at %d detected" cut)
      true
      (Result.is_error (Segment.read ~dir:damaged entry))
  done;
  for off = 0 to len - 1 do
    write_bytes dpath full;
    ignore (Faults.corrupt_file dpath (Faults.Flip_byte off));
    check_bool
      (Printf.sprintf "flipped byte at %d detected" off)
      true
      (Result.is_error (Segment.read ~dir:damaged entry));
    (* And offline verification flags the file too. *)
    match Segment.verify damaged with
    | Ok [] -> Alcotest.failf "flip at %d verifies clean" off
    | Ok _ -> ()
    | Error e -> Alcotest.failf "verify: %s" e
  done

(* --- disk and wire fault injectors ------------------------------------ *)

let test_corrupt_file () =
  let path = Filename.temp_file "si_corrupt" ".bin" in
  let original = "0123456789" in
  write_bytes path original;
  check_int "truncate point" 4 (Faults.corrupt_file path (Faults.Truncate 4));
  check_str "truncated" "0123" (read_bytes path);
  write_bytes path original;
  check_int "cut_file is Truncate" 7 (Faults.cut_file path 7);
  check_str "cut" "0123456" (read_bytes path);
  write_bytes path original;
  ignore (Faults.corrupt_file path (Faults.Flip_byte 2));
  let flipped = read_bytes path in
  check_int "flip keeps length" 10 (String.length flipped);
  check_bool "byte 2 differs" true (flipped.[2] <> original.[2]);
  check_str "rest intact" "01"
    (String.sub flipped 0 2);
  write_bytes path original;
  ignore (Faults.corrupt_file path (Faults.Duplicate_tail 3));
  check_str "tail duplicated" "0123456789789" (read_bytes path);
  Sys.remove path

let test_wrap_transport () =
  let seen = ref [] in
  let echo raw =
    seen := raw :: !seen;
    Ok ("re:" ^ raw)
  in
  (* Healthy: pure pass-through. *)
  let inj = Faults.create Faults.Healthy in
  check_bool "healthy passes" true
    (Faults.wrap_transport inj echo "a" = Ok "re:a");
  (* Duplicate: the frame reaches the receiver twice; one response. *)
  let inj = Faults.create (Faults.Fail_first 1) in
  seen := [];
  check_bool "duplicate still answers" true
    (Faults.wrap_transport inj ~faults:[ Faults.Duplicate ] echo "d"
    = Ok "re:d");
  check_int "delivered twice" 2 (List.length !seen);
  (* Delay: the frame is stashed (sender sees a send failure) and
     arrives after the NEXT frame — a reordered wire. *)
  let inj = Faults.create (Faults.Fail_first 1) in
  seen := [];
  let lossy = Faults.wrap_transport inj ~faults:[ Faults.Delay ] echo in
  check_bool "delayed send errors" true (Result.is_error (lossy "first"));
  check_bool "next send succeeds" true (Result.is_ok (lossy "second"));
  check_bool "reordered delivery" true
    (List.rev !seen = [ "second"; "first" ]);
  (* Drop: never delivered. *)
  let inj = Faults.create (Faults.Fail_first 1) in
  seen := [];
  check_bool "dropped send errors" true
    (Result.is_error
       (Faults.wrap_transport inj ~faults:[ Faults.Drop ] echo "gone"));
  check_int "never delivered" 0 (List.length !seen)

(* --- leader/follower convergence -------------------------------------- *)

let test_ship_convergence_and_staleness () =
  let dir = scratch_dir () in
  let leader, pad = make_leader dir "leader" in
  let f = make_follower dir "f" in
  sok "attach"
    (Slimpad.attach_follower leader ~name:"f"
       (Replica.transport (replica_of f)));
  churn leader pad ~from:1 20;
  pump leader [ f ];
  check_bool "contents converged" true (converged leader f);
  let r = replica_of f in
  check_bool "fresh at lag 0" true (Replica.fresh_enough r ~max_lag:0);
  (* New leader records the follower has not seen yet: a heartbeat
     refreshes the staleness bound without shipping. *)
  churn leader pad ~from:100 5;
  sok "sync" (Slimpad.wal_sync leader);
  sok "heartbeat" (Slimpad.ship_heartbeat leader);
  let lag = Replica.lag r in
  check_bool "lag visible" true (lag > 0);
  check_bool "stale below the bound" false
    (Replica.fresh_enough r ~max_lag:(lag - 1));
  check_bool "fresh at the bound" true (Replica.fresh_enough r ~max_lag:lag);
  pump leader [ f ];
  check_int "lag repaid" 0 (Replica.lag r);
  sok "close leader" (Slimpad.wal_close leader);
  sok "close follower" (Slimpad.wal_close f)

let test_tcp_transport () =
  let dir = scratch_dir () in
  let leader, pad = make_leader dir "leader" in
  let f = make_follower dir "f" in
  let server =
    sok "serve" (Tcp.serve ~port:0 (Replica.handle (replica_of f)))
  in
  let client = sok "connect" (Tcp.connect ~port:(Tcp.port server) ()) in
  sok "attach over tcp"
    (Slimpad.attach_follower leader ~name:"f" (Tcp.transport client));
  churn leader pad ~from:1 12;
  pump leader [ f ];
  check_bool "converged over sockets" true (converged leader f);
  Tcp.close client;
  Tcp.shutdown server;
  (* Idempotent; also proves shutdown does not hang on a joined domain. *)
  Tcp.shutdown server;
  sok "close leader" (Slimpad.wal_close leader);
  sok "close follower" (Slimpad.wal_close f)

let test_fencing () =
  (* A replica that has seen term 5 answers any older-term frame with
     Fenced — the generation handshake that stops a deposed leader. *)
  let r =
    Replica.create ~term:5
      ~apply:(fun _ -> Ok ())
      ~install:(fun ~term:_ ~seq:_ _ -> Ok ())
      ()
  in
  (match
     Frame.decode (Replica.handle r (Frame.encode (Frame.Hello { term = 3; seq = 0 })))
   with
  | Ok (Frame.Fenced { term = 5 }) -> ()
  | other ->
      Alcotest.failf "expected Fenced 5, got %s"
        (match other with Ok _ -> "another frame" | Error e -> e));
  (match
     Frame.decode
       (Replica.handle r
          (Frame.encode (Frame.Append { term = 4; seq = 1; payload = "x" })))
   with
  | Ok (Frame.Fenced _) -> ()
  | _ -> Alcotest.failf "stale append not fenced");
  (* Equal and newer terms are served. *)
  match
    Frame.decode (Replica.handle r (Frame.encode (Frame.Hello { term = 5; seq = 0 })))
  with
  | Ok (Frame.Welcome { term = 5; next = 1 }) -> ()
  | _ -> Alcotest.failf "current-term hello refused"

(* --- point-in-time recovery ------------------------------------------- *)

(* The acceptance bar: `restore --at seq` reproduces the exact binary
   snapshot the live pad had at that sequence number, for every point
   in a recorded trace. segment_records = 1 makes every record
   individually restorable. *)
let test_restore_byte_identical () =
  let dir = scratch_dir () in
  let archive = Filename.concat dir "leader.archive" in
  let leader, pad = make_leader ~segment_records:1 dir "leader" in
  let root = Dmi.root_bundle (Slimpad.dmi leader) pad in
  let sh = shipper_of leader in
  let trace = ref [ (Ship.seq sh, Slimpad.snapshot_bytes leader) ] in
  for i = 1 to 12 do
    (match i mod 3 with
    | 0 ->
        ignore
          (Slimpad.add_bundle leader ~parent:root
             ~name:(Printf.sprintf "bundle-%02d" i)
             ())
    | 1 -> ignore (Slimpad.new_pad leader (Printf.sprintf "pad-%02d" i))
    | _ ->
        ignore
          (Slimpad.add_bundle leader ~parent:root
             ~name:(Printf.sprintf "late-%02d" i)
             ()));
    sok "sync" (Slimpad.wal_sync leader);
    trace := (Ship.seq sh, Slimpad.snapshot_bytes leader) :: !trace
  done;
  List.iter
    (fun (seq, bytes) ->
      let rapp, reached =
        sok
          (Printf.sprintf "restore at %d" seq)
          (Slimpad.restore_at (Desktop.create ()) ~archive ~at:seq)
      in
      check_int (Printf.sprintf "reached %d" seq) seq reached;
      check_bool
        (Printf.sprintf "byte-identical state at seq %d" seq)
        true
        (String.equal bytes (Slimpad.snapshot_bytes rapp)))
    !trace;
  sok "close" (Slimpad.wal_close leader)

(* --- offline archive lint (SL306) ------------------------------------- *)

let test_lint_archive () =
  let dir = scratch_dir () in
  let leader, pad = make_leader ~segment_records:2 dir "leader" in
  churn leader pad ~from:1 8;
  sok "sync" (Slimpad.wal_sync leader);
  sok "checkpoint" (Slimpad.ship_checkpoint leader);
  let archive = Ship.archive (shipper_of leader) in
  let diags_of () = Si_lint.run (Si_lint.context ~archive ()) in
  let sl306 ds =
    List.filter (fun (d : Si_lint.diagnostic) -> d.Si_lint.code = "SL306") ds
  in
  check_int "clean archive: no SL306" 0 (List.length (sl306 (diags_of ())));
  let seg =
    match
      List.filter
        (fun f -> Filename.check_suffix f ".seg")
        (Array.to_list (Sys.readdir archive))
    with
    | s :: _ -> Filename.concat archive s
    | [] -> Alcotest.failf "no sealed segment in the archive"
  in
  ignore (Faults.corrupt_file seg (Faults.Flip_byte 40));
  let ds = sl306 (diags_of ()) in
  check_bool "damage reported as SL306" true (List.length ds > 0);
  List.iter
    (fun d ->
      check_bool "SL306 is an error" true (d.Si_lint.severity = Si_lint.Error);
      check_bool "not auto-fixable" false d.Si_lint.fixable)
    ds;
  sok "close" (Slimpad.wal_close leader)

(* --- archive retention ------------------------------------------------ *)

let test_archive_prune () =
  let dir = scratch_dir () in
  let leader, pad = make_leader ~segment_records:2 dir "leader" in
  churn leader pad ~from:1 6;
  sok "sync" (Slimpad.wal_sync leader);
  sok "checkpoint" (Slimpad.ship_checkpoint leader);
  churn leader pad ~from:7 4;
  sok "sync" (Slimpad.wal_sync leader);
  sok "checkpoint" (Slimpad.ship_checkpoint leader);
  let archive = Ship.archive (shipper_of leader) in
  let files () = Array.to_list (Sys.readdir archive) in
  let count suffix =
    List.length (List.filter (fun f -> Filename.check_suffix f suffix) (files ()))
  in
  check_bool "several bases before prune" true (count ".base" >= 2);
  let report = sok "prune" (Segment.prune ~dir:archive ~keep:0) in
  check_bool "something pruned" true
    (report.Segment.pruned_segments <> [] || report.Segment.pruned_bases <> []);
  check_int "one base kept" 1 (count ".base");
  List.iter
    (fun f ->
      check_bool (f ^ " gone") false
        (Sys.file_exists (Filename.concat archive f)))
    (report.Segment.pruned_segments @ report.Segment.pruned_bases);
  (* SL306 accepts the pruned archive: the kept base bridges the
     leading gap, so verification reports no diagnostics. *)
  let diags = Si_lint.run (Si_lint.context ~archive ()) in
  check_int "pruned archive lints clean" 0
    (List.length
       (List.filter (fun (d : Si_lint.diagnostic) -> d.Si_lint.code = "SL306")
          diags));
  (* Restores above the cutoff still work from what remains... *)
  let seq = Ship.seq (shipper_of leader) in
  let restored, reached =
    sok "restore after prune"
      (Slimpad.restore_at (Desktop.create ()) ~archive ~at:seq)
  in
  check_int "restore reaches tip" seq reached;
  check_bool "restored contents match" true
    (Trim.equal_contents
       (Dmi.trim (Slimpad.dmi leader))
       (Dmi.trim (Slimpad.dmi restored)));
  (* ...while a point below the cutoff is a typed error, not garbage. *)
  check_bool "restore below cutoff refused" true
    (Result.is_error
       (Slimpad.restore_at (Desktop.create ()) ~archive
          ~at:(max 1 (report.Segment.prune_cutoff - 1))));
  (* Idempotent: a second prune finds nothing redundant. *)
  let again = sok "prune again" (Segment.prune ~dir:archive ~keep:0) in
  check_int "second prune removes nothing" 0
    (List.length again.Segment.pruned_segments
    + List.length again.Segment.pruned_bases);
  sok "close" (Slimpad.wal_close leader)

(* --- async shipping --------------------------------------------------- *)

let converged_contents leader follower =
  Trim.equal_contents
    (Dmi.trim (Slimpad.dmi leader))
    (Dmi.trim (Slimpad.dmi follower))

let test_async_shipping () =
  let dir = scratch_dir () in
  let leader_wal = Filename.concat dir "leader.wal" in
  let leader, _ =
    sok "open_wal" (Slimpad.open_wal (Desktop.create ()) leader_wal)
  in
  let pad = Slimpad.new_pad leader "leader-pad" in
  sok "start_shipping async"
    (Slimpad.start_shipping ~segment_records:4 ~async:true leader
       ~archive:(Filename.concat dir "leader.archive"));
  check_bool "async domain running" true (Slimpad.shipping_async leader);
  let f = make_follower dir "f" in
  sok "attach"
    (Slimpad.attach_follower leader ~name:"f"
       (Replica.transport (replica_of f)));
  churn leader pad ~from:1 20;
  sok "sync" (Slimpad.wal_sync leader);
  (* The background domain pushes without an explicit ship call; give
     it bounded time to converge. *)
  let rec await tries =
    if converged leader f then ()
    else if tries = 0 then
      Alcotest.failf "async shipping never converged (lag %d)"
        (Ship.lag (shipper_of leader))
    else begin
      Unix.sleepf 0.02;
      await (tries - 1)
    end
  in
  await 250;
  (* An explicit ship round serializes with the domain's rounds. *)
  churn leader pad ~from:21 5;
  sok "explicit ship" (Slimpad.ship leader);
  check_bool "converged after explicit round" true (converged leader f);
  (* stop_shipping drains and joins the domain. *)
  sok "stop" (Slimpad.stop_shipping leader);
  check_bool "domain stopped" false (Slimpad.shipping_async leader);
  check_bool "still converged" true (converged_contents leader f);
  sok "close follower" (Slimpad.wal_close f);
  sok "close leader" (Slimpad.wal_close leader)

(* --- the crash matrix as a test gate ---------------------------------- *)

let test_crash_matrix_passes () =
  let dir = scratch_dir () in
  let outcomes = Crash_matrix.run ~dir () in
  check_int "all scenarios ran"
    (List.length (Crash_matrix.scenario_names ()))
    (List.length outcomes);
  List.iter
    (fun o ->
      check_bool
        (Printf.sprintf "%s: %s" o.Crash_matrix.scenario
           o.Crash_matrix.detail)
        true o.Crash_matrix.passed)
    outcomes

(* --- property: interleavings converge --------------------------------- *)

(* Any interleaving of appends, ship rounds, checkpoints, follower
   crashes, and promotions over a random op sequence must leave every
   surviving replica holding exactly the final leader's prefix. *)
let prop_interleavings_converge =
  QCheck.Test.make ~name:"ship/crash/promote interleavings converge"
    ~count:10
    QCheck.(list_of_size (Gen.int_range 5 25) (int_range 0 9))
    (fun ops ->
      let dir = scratch_dir () in
      let leader = ref (fst (make_leader dir "leader")) in
      let follower name =
        (name, Filename.concat dir (name ^ ".wal"), make_follower dir name)
      in
      let followers = ref [ follower "f1"; follower "f2" ] in
      let attach_all () =
        List.iter
          (fun (name, _, f) ->
            sok "attach"
              (Slimpad.attach_follower !leader ~name
                 (Replica.transport (replica_of f))))
          !followers
      in
      attach_all ();
      let fresh = ref 0 in
      let mutate () =
        incr fresh;
        match Dmi.pads (Slimpad.dmi !leader) with
        | [] -> ignore (Slimpad.new_pad !leader "pad")
        | pad :: _ ->
            let root = Dmi.root_bundle (Slimpad.dmi !leader) pad in
            ignore
              (Slimpad.add_bundle !leader ~parent:root
                 ~name:(Printf.sprintf "n-%04d" !fresh)
                 ())
      in
      let crash_first () =
        match !followers with
        | [] -> ()
        | (name, src, f) :: rest ->
            incr fresh;
            let applied = Replica.applied (replica_of f) in
            (* Files-only crash: copy the WAL pair to a fresh path and
               reopen that, abandoning the old in-memory state (which
               keeps its lock — exactly like a dead process whose lock
               is taken over, minus the wait). *)
            let dst =
              Filename.concat dir (Printf.sprintf "%s-crash%d.wal" name !fresh)
            in
            let copy src dst =
              if Sys.file_exists src then write_bytes dst (read_bytes src)
            in
            copy src dst;
            copy (Log.snapshot_path src) (Log.snapshot_path dst);
            let f2, _ =
              sok "reopen crashed follower"
                (Slimpad.open_replica (Desktop.create ()) dst)
            in
            if Replica.applied (replica_of f2) <> applied then
              Alcotest.failf "crash lost applied records";
            followers := (name, dst, f2) :: rest;
            sok "re-attach"
              (Slimpad.attach_follower !leader ~name
                 (Replica.transport (replica_of f2)))
      in
      let promote_best () =
        match
          List.sort
            (fun (_, _, a) (_, _, b) ->
              compare
                ( Replica.term (replica_of b),
                  Replica.applied (replica_of b) )
                ( Replica.term (replica_of a),
                  Replica.applied (replica_of a) ))
            !followers
        with
        | [] -> ()
        | (name, _, best) :: rest ->
            incr fresh;
            ignore
              (sok "promote"
                 (Slimpad.promote_replica best
                    ~archive:
                      (Filename.concat dir
                         (Printf.sprintf "%s-%d.archive" name !fresh))));
            leader := best;
            followers := rest;
            attach_all ()
      in
      List.iter
        (fun op ->
          match op with
          | 0 | 1 | 2 | 3 | 4 -> mutate ()
          | 5 | 6 -> ignore (Slimpad.ship !leader)
          | 7 -> ignore (Slimpad.ship_checkpoint !leader)
          | 8 -> crash_first ()
          | _ -> promote_best ())
        ops;
      pump !leader (List.map (fun (_, _, f) -> f) !followers);
      List.for_all (fun (_, _, f) -> converged !leader f) !followers)

let suite =
  [
    ("frame codec round-trip & CRC", `Quick, test_frame_roundtrip);
    ("segment seal/read/index/plan", `Quick, test_segment_roundtrip);
    ("segment damage at every byte offset", `Quick,
     test_segment_damage_every_offset);
    ("corrupt_file: truncate, flip, duplicate-tail", `Quick,
     test_corrupt_file);
    ("wrap_transport: drop, duplicate, delay", `Quick, test_wrap_transport);
    ("ship converges; bounded-staleness reads", `Quick,
     test_ship_convergence_and_staleness);
    ("ship over tcp sockets", `Quick, test_tcp_transport);
    ("generation handshake fences stale leaders", `Quick, test_fencing);
    ("restore --at is byte-identical along a trace", `Quick,
     test_restore_byte_identical);
    ("SL306 flags archive damage", `Quick, test_lint_archive);
    ("archive prune: retention with restores intact", `Quick,
     test_archive_prune);
    ("async shipping: background domain converges", `Quick,
     test_async_shipping);
    ("crash matrix: every scenario passes", `Slow, test_crash_matrix_passes);
    QCheck_alcotest.to_alcotest prop_interleavings_converge;
  ]
