(* Integration tests for the SLIMPad application: app -> SLIM store -> TRIM
   and app -> Mark Manager -> base applications (paper Fig 5; experiments
   F1, F4, F5). *)

open Si_slimpad
module Dmi = Si_slim.Dmi
module Desktop = Si_mark.Desktop
module Manager = Si_mark.Manager

let check = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

(* A desktop with the Fig 4 documents. *)
let fig4_desktop () =
  let desk = Desktop.create () in
  let wb = Si_spreadsheet.Workbook.create ~sheet_names:[ "Medications" ] () in
  let set a v = Si_spreadsheet.Workbook.set wb ~sheet_name:"Medications" a v in
  set "A1" "Drug";
  set "B1" "Dose";
  set "A2" "Dopamine";
  set "B2" "5";
  set "A3" "Fentanyl";
  set "B3" "0.05";
  Desktop.add_workbook desk "meds.xls" wb;
  Desktop.add_xml desk "labs.xml"
    (Si_xmlk.Parse.node_exn
       "<report><panel name=\"electrolytes\">\
        <result test=\"Na\">140</result><result test=\"K\">4.2</result>\
        </panel></report>");
  desk

let fig4_app () =
  let desk = fig4_desktop () in
  let app = Slimpad.create desk in
  let pad = Slimpad.new_pad app "Rounds" in
  let root = Dmi.root_bundle (Slimpad.dmi app) pad in
  let smith = Slimpad.add_bundle app ~parent:root ~name:"John Smith"
      ~pos:{ Dmi.x = 10; y = 10 } () in
  let dopa =
    ok
      (Slimpad.add_scrap app ~parent:smith ~name:"Dopamine 5"
         ~mark_type:"excel"
         ~fields:
           [ ("fileName", "meds.xls"); ("sheetName", "Medications");
             ("range", "A2:B2") ]
         ~pos:{ Dmi.x = 20; y = 30 }
         ())
  in
  let electro =
    Slimpad.add_bundle app ~parent:smith ~name:"Electrolyte"
      ~pos:{ Dmi.x = 20; y = 80 } ()
  in
  let k =
    ok
      (Slimpad.add_scrap app ~parent:electro ~name:"4.2" ~mark_type:"xml"
         ~fields:
           [ ("fileName", "labs.xml");
             ("xmlPath", "/report/panel/result[2]") ]
         ())
  in
  (app, pad, smith, dopa, electro, k)

let test_add_scrap_creates_mark () =
  let app, _, _, dopa, _, _ = fig4_app () in
  let mark = Option.get (Slimpad.scrap_mark app dopa) in
  check "mark type" "excel" mark.Si_mark.Mark.mark_type;
  check "mark cached the selection" "Dopamine\t5" mark.Si_mark.Mark.excerpt;
  check_int "two marks in manager" 2 (Manager.mark_count (Slimpad.marks app))

let test_add_scrap_default_label () =
  let app, _, smith, _, _, _ = fig4_app () in
  let s =
    ok
      (Slimpad.add_scrap app ~parent:smith ~name:"" ~mark_type:"excel"
         ~fields:
           [ ("fileName", "meds.xls"); ("sheetName", "Medications");
             ("range", "B3") ]
         ())
  in
  check "label defaults to excerpt" "0.05"
    (Dmi.scrap_name (Slimpad.dmi app) s)

let test_add_scrap_bad_mark () =
  let app, _, smith, _, _, _ = fig4_app () in
  check_bool "bad address refused" true
    (Result.is_error
       (Slimpad.add_scrap app ~parent:smith ~name:"x" ~mark_type:"excel"
          ~fields:[ ("fileName", "meds.xls") ]
          ()))

let test_double_click () =
  (* "By clicking on the scrap, the mark is de-referenced and the original
     information source, the medication list, is displayed with the
     appropriate medication highlighted." *)
  let app, _, _, dopa, _, k = fig4_app () in
  let res = ok (Slimpad.double_click app dopa) in
  check_bool "medication highlighted in context" true
    (let re = Re.compile (Re.str "[Dopamine]") in
     Re.execp re res.Si_mark.Mark.res_context);
  let res_k = ok (Slimpad.double_click app k) in
  check "xml scrap content" "4.2" res_k.Si_mark.Mark.res_excerpt;
  check "extract behaviour" "4.2" (ok (Slimpad.scrap_content app k));
  check_bool "in-place behaviour is markup" true
    (let re = Re.compile (Re.str "<result") in
     Re.execp re (ok (Slimpad.scrap_in_place app k)))

let test_label_and_content_differ () =
  (* "Note that a scrap's label and its mark's content may differ." *)
  let app, _, _, dopa, _, _ = fig4_app () in
  Dmi.update_scrap_name (Slimpad.dmi app) dopa "pressor #1";
  check "label" "pressor #1" (Dmi.scrap_name (Slimpad.dmi app) dopa);
  check "content unchanged" "Dopamine\t5" (ok (Slimpad.scrap_content app dopa))

let test_drift_and_refresh () =
  let app, pad, _, _, _, _ = fig4_app () in
  check_int "clean pad" 0 (List.length (Slimpad.drift_report app pad));
  (* The medication list changes under the pad. *)
  let wb = ok (Desktop.open_workbook (Slimpad.desktop app) "meds.xls") in
  Si_spreadsheet.Workbook.set wb ~sheet_name:"Medications" "B2" "10";
  (match Slimpad.drift_report app pad with
  | [ (_, Manager.Changed { was; now }) ] ->
      check "was" "Dopamine\t5" was;
      check "now" "Dopamine\t10" now
  | l -> Alcotest.failf "expected one Changed, got %d entries" (List.length l));
  check_int "refresh fixes one" 1 (Slimpad.refresh_pad app pad);
  check_int "clean again" 0 (List.length (Slimpad.drift_report app pad))

let test_find_scraps () =
  let app, pad, _, _, _, _ = fig4_app () in
  check_int "find nested" 1 (List.length (Slimpad.find_scraps app pad "4.2"));
  check_int "find by prefix" 1
    (List.length (Slimpad.find_scraps app pad "Dopa"));
  check_int "none" 0 (List.length (Slimpad.find_scraps app pad "insulin"))

let test_query_through_app () =
  let app, _, _, _, _, _ = fig4_app () in
  let rows =
    ok
      (Slimpad.query app
         "select ?n where { ?s scrapName ?n . ?s scrapMark ?h }")
  in
  check_int "two scraps" 2 (List.length rows);
  check_bool "bad query reported" true (Result.is_error (Slimpad.query app "("))

let test_render () =
  let app, pad, _, _, _, _ = fig4_app () in
  let text = Slimpad.render_pad app pad in
  let has s =
    let re = Re.compile (Re.str s) in
    Re.execp re text
  in
  check_bool "pad header" true (has "SLIMPad \"Rounds\"");
  check_bool "bundle with position" true (has "Bundle \"John Smith\" @(10,10)");
  check_bool "nested bundle" true (has "Bundle \"Electrolyte\"");
  check_bool "scrap with source" true
    (has "Scrap \"Dopamine 5\" @(20,30) -> meds.xls!Medications!A2:B2");
  check_bool "xml scrap source" true
    (has "labs.xml#/report/panel/result[2]")

let test_render_annotations_and_links () =
  let app, pad, _, dopa, _, k = fig4_app () in
  Dmi.annotate_scrap (Slimpad.dmi app) dopa "check dose";
  ignore
    (Dmi.link_scraps (Slimpad.dmi app) ~label:"related" ~from_:dopa ~to_:k ());
  let text = Slimpad.render_pad app pad in
  let has s =
    let re = Re.compile (Re.str s) in
    Re.execp re text
  in
  check_bool "annotation" true (has "note: check dose");
  check_bool "link" true (has "\"Dopamine 5\" --related--> \"4.2\"")

let test_save_load_combined () =
  let app, pad, _, _, _, _ = fig4_app () in
  Dmi.annotate_scrap (Slimpad.dmi app)
    (List.hd (Slimpad.find_scraps app pad "Dopamine"))
    "note";
  let path = Filename.temp_file "pad" ".xml" in
  ok (Slimpad.save app path);
  let app2 = ok (Slimpad.load (fig4_desktop ()) path) in
  Sys.remove path;
  let pad2 = Option.get (Dmi.find_pad (Slimpad.dmi app2) "Rounds") in
  check "same rendering" (Slimpad.render_pad app pad)
    (Slimpad.render_pad app2 pad2);
  (* Marks still resolve against the fresh desktop. *)
  let dopa2 = List.hd (Slimpad.find_scraps app2 pad2 "Dopamine") in
  check "resolves after reload" "Dopamine\t5"
    (ok (Slimpad.scrap_content app2 dopa2))

let test_load_rejects_garbage () =
  let path = Filename.temp_file "bad" ".xml" in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "<not-a-store/>");
  check_bool "bad file" true
    (Result.is_error (Slimpad.load (Desktop.create ()) path));
  Sys.remove path

let test_render_html () =
  let app, pad, _, dopa, _, k = fig4_app () in
  Dmi.annotate_scrap (Slimpad.dmi app) dopa "check dose";
  ignore
    (Dmi.link_scraps (Slimpad.dmi app) ~label:"related" ~from_:dopa ~to_:k ());
  ignore
    (Dmi.add_decoration (Slimpad.dmi app)
       (Dmi.root_bundle (Slimpad.dmi app) pad)
       ~kind:"gridlet" ~pos:{ Dmi.x = 5; y = 5 } ());
  let html = Slimpad.render_pad_html app pad in
  let has s =
    let re = Re.compile (Re.str s) in
    Re.execp re html
  in
  check_bool "is a document" true (has "<!DOCTYPE html>");
  check_bool "positioned bundle" true (has "left:10px; top:10px;");
  check_bool "scrap label" true (has ">Dopamine 5");
  check_bool "mark source in title" true (has "meds.xls!Medications!A2:B2");
  check_bool "annotation" true (has "check dose");
  check_bool "decoration" true (has "[gridlet]");
  check_bool "link section" true (has "related");
  (* It parses as HTML with the expected structure. *)
  let dom = Si_htmldoc.Htmldoc.parse html in
  check_int "bundle divs" 3
    (List.length
       (Result.get_ok (Si_htmldoc.Selector.query dom "div.bundle")));
  check_int "scrap spans" 2
    (List.length (Result.get_ok (Si_htmldoc.Selector.query dom "span.scrap")))

let test_import_pad () =
  (* Doctor A saves a pad; doctor B imports it next to their own — fresh
     ids, live marks, annotations and links intact. *)
  let app_a, pad_a, _, dopa, _, k = fig4_app () in
  Dmi.annotate_scrap (Slimpad.dmi app_a) dopa "verify with pharmacy";
  ignore (Dmi.link_scraps (Slimpad.dmi app_a) ~label:"rel" ~from_:dopa ~to_:k ());
  let path = Filename.temp_file "shared" ".xml" in
  ok (Slimpad.save app_a path);
  let app_b, pad_b, _, _, _, _ = fig4_app () in
  let imported =
    match Slimpad.import_pad app_b ~from_file:path () with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  Sys.remove path;
  let t = Slimpad.dmi app_b in
  check "named" "Rounds (imported)" (Dmi.pad_name t imported);
  check_int "two pads now" 2 (List.length (Dmi.pads t));
  (* The copy has the full structure... *)
  check_bool "structure copied" true
    (Dmi.bundle_descendant_count t (Dmi.root_bundle t imported) = (3, 2));
  (* ...with fresh scraps whose marks resolve against B's desktop. *)
  let dopa_b = List.hd (Slimpad.find_scraps app_b imported "Dopamine") in
  check "mark resolves" "Dopamine\t5" (ok (Slimpad.scrap_content app_b dopa_b));
  Alcotest.(check (list string))
    "annotation came along" [ "verify with pharmacy" ]
    (Dmi.annotations t dopa_b);
  check_int "link came along" 1
    (List.length (Dmi.links_of_scrap t dopa_b));
  (* B's own pad is untouched and B's marks are distinct objects. *)
  check_int "own pad intact" 2
    (List.length (Slimpad.find_scraps app_b pad_b ""));
  check_bool "no mark id collision" true
    (Dmi.scrap_mark_id t dopa_b
    <> Dmi.scrap_mark_id (Slimpad.dmi app_a)
         (List.hd (Slimpad.find_scraps app_a pad_a "Dopamine")));
  (* Importing twice just makes another copy. *)
  let path2 = Filename.temp_file "shared" ".xml" in
  ok (Slimpad.save app_a path2);
  (match Slimpad.import_pad app_b ~from_file:path2 ~rename:"third" () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Sys.remove path2;
  check_int "three pads" 3 (List.length (Dmi.pads t));
  check_int "store still conformant" 0
    (List.length (Dmi.validate t).Si_metamodel.Validate.violations)

let test_import_pad_errors () =
  let app, _, _, _, _, _ = fig4_app () in
  check_bool "missing file" true
    (Result.is_error (Slimpad.import_pad app ~from_file:"/nonexistent" ()));
  let path = Filename.temp_file "shared" ".xml" in
  ok (Slimpad.save app path);
  check_bool "unknown pad name" true
    (Result.is_error
       (Slimpad.import_pad app ~from_file:path ~pad_name:"Nope" ()));
  Sys.remove path

let test_store_implementation_invariance () =
  (* The application behaves identically over every store implementation
     (modulo resource-id allocation, which is also deterministic). *)
  let build store =
    let desk = fig4_desktop () in
    let app = Slimpad.create ~store desk in
    let pad = Slimpad.new_pad app "P" in
    let root = Dmi.root_bundle (Slimpad.dmi app) pad in
    let b = Slimpad.add_bundle app ~parent:root ~name:"B" () in
    let s =
      ok
        (Slimpad.add_scrap app ~parent:b ~name:"s" ~mark_type:"excel"
           ~fields:
             [ ("fileName", "meds.xls"); ("sheetName", "Medications");
               ("range", "B2") ]
           ())
    in
    Dmi.annotate_scrap (Slimpad.dmi app) s "n";
    Slimpad.render_pad app pad
  in
  let renders =
    List.map
      (fun (_, store) -> build store)
      Si_triple.Store.implementations
  in
  match renders with
  | first :: rest ->
      List.iteri
        (fun i other ->
          check (Printf.sprintf "impl %d renders identically" (i + 1)) first
            other)
        rest
  | [] -> Alcotest.fail "no implementations"

let test_dangling_mark_rendering () =
  let app, pad, smith, _, _, _ = fig4_app () in
  (* A scrap whose mark was removed behind its back renders as dangling. *)
  let s =
    ok
      (Slimpad.add_scrap app ~parent:smith ~name:"will dangle"
         ~mark_type:"excel"
         ~fields:
           [ ("fileName", "meds.xls"); ("sheetName", "Medications");
             ("range", "A1") ]
         ())
  in
  let mark_id = Dmi.scrap_mark_id (Slimpad.dmi app) s in
  ignore (Manager.remove_mark (Slimpad.marks app) mark_id);
  let text = Slimpad.render_pad app pad in
  check_bool "dangling shown" true
    (let re = Re.compile (Re.str "dangling mark") in
     Re.execp re text)

(* ------------------------------------------------ journaled persistence *)

let fresh_wal_path () =
  let path = Filename.temp_file "slimpad" ".wal" in
  Sys.remove path;
  let snap = Si_wal.Log.snapshot_path path in
  if Sys.file_exists snap then Sys.remove snap;
  path

let cleanup_wal path =
  List.iter
    (fun p -> if Sys.file_exists p then Sys.remove p)
    [ path; Si_wal.Log.snapshot_path path; Si_wal.Log.lock_path path ]

(* Snapshot the on-disk WAL state (log + snapshot file) to a fresh path,
   as a crash would leave it — the live writer keeps its lock, so
   recovery is exercised on the copy. *)
let crash_copy path =
  let dst = fresh_wal_path () in
  let copy src dst =
    if Sys.file_exists src then
      Out_channel.with_open_bin dst (fun oc ->
          In_channel.with_open_bin src (fun ic ->
              Out_channel.output_string oc (In_channel.input_all ic)))
  in
  copy path dst;
  copy (Si_wal.Log.snapshot_path path) (Si_wal.Log.snapshot_path dst);
  dst

(* Full-state equality: triples, marks, and operation journal. *)
let check_same_state a b =
  check_bool "triples equal" true
    (Dmi.equal_contents (Slimpad.dmi a) (Slimpad.dmi b));
  let mark_key m =
    ( m.Si_mark.Mark.mark_id,
      m.Si_mark.Mark.mark_type,
      m.Si_mark.Mark.excerpt,
      List.sort compare m.Si_mark.Mark.fields )
  in
  let marks app =
    List.sort compare (List.map mark_key (Manager.marks (Slimpad.marks app)))
  in
  check_bool "marks equal" true (marks a = marks b);
  check_bool "journal equal" true
    (Dmi.journal (Slimpad.dmi a) = Dmi.journal (Slimpad.dmi b))

let test_wal_enable_and_recover () =
  let app, _, smith, _, _, _ = fig4_app () in
  let path = fresh_wal_path () in
  check_bool "starts whole-file" true (Slimpad.persistence app = Whole_file);
  ok (Slimpad.enable_wal app path);
  check_bool "now journaled" true (Slimpad.persistence app = Journaled);
  (* Mutations after the snapshot ride the log. *)
  let s =
    ok
      (Slimpad.add_scrap app ~parent:smith ~name:"post-snapshot"
         ~mark_type:"excel"
         ~fields:
           [ ("fileName", "meds.xls"); ("sheetName", "Medications");
             ("range", "A3:B3") ]
         ())
  in
  Dmi.update_scrap_name (Slimpad.dmi app) s "renamed after";
  ok (Slimpad.wal_sync app);
  let crashed = crash_copy path in
  let app2, rc =
    ok (Slimpad.open_wal (fig4_desktop ()) crashed)
  in
  check_bool "recovered from snapshot" true rc.Slimpad.from_snapshot;
  check_bool "tail replayed" true (rc.Slimpad.replayed > 0);
  check_int "no torn tail" 0 rc.Slimpad.truncated_bytes;
  check_same_state app app2;
  (* The recovered app keeps journaling: a further mutation followed by
     another recovery still matches. *)
  Dmi.update_scrap_name (Slimpad.dmi app2) s "renamed again";
  ok (Slimpad.wal_sync app2);
  ok (Slimpad.wal_close app2);
  let app3, _ = ok (Slimpad.open_wal (fig4_desktop ()) crashed) in
  check "rename survived a second cycle" "renamed again"
    (Dmi.scrap_name (Slimpad.dmi app3) s);
  ok (Slimpad.wal_close app3);
  ok (Slimpad.wal_close app);
  check_bool "close reverts to whole-file" true
    (Slimpad.persistence app = Whole_file);
  cleanup_wal crashed;
  cleanup_wal path

let test_wal_enable_refuses_existing () =
  let app, _, _, _, _, _ = fig4_app () in
  let path = fresh_wal_path () in
  ok (Slimpad.enable_wal app path);
  let other, _, _, _, _, _ = fig4_app () in
  check_bool "second enable at the same path refused" true
    (Result.is_error (Slimpad.enable_wal other path));
  check_bool "double enable refused" true
    (Result.is_error (Slimpad.enable_wal app path));
  ok (Slimpad.wal_close app);
  cleanup_wal path

let test_wal_compact_idempotent () =
  let app, _, smith, _, _, _ = fig4_app () in
  let path = fresh_wal_path () in
  ok (Slimpad.enable_wal app path);
  for i = 1 to 5 do
    ignore
      (ok
         (Slimpad.add_scrap app ~parent:smith
            ~name:(Printf.sprintf "scrap %d" i)
            ~mark_type:"excel"
            ~fields:
              [ ("fileName", "meds.xls"); ("sheetName", "Medications");
                ("range", "A1") ]
            ()))
  done;
  ok (Slimpad.wal_compact app);
  check_int "log folded into the snapshot" 0
    (Si_wal.Log.record_count (Option.get (Slimpad.wal app)));
  ok (Slimpad.wal_close app);
  let app2, rc = ok (Slimpad.open_wal (fig4_desktop ()) path) in
  check_int "nothing to replay" 0 rc.Slimpad.replayed;
  check_same_state app app2;
  (* Compacting the recovered state changes nothing. *)
  ok (Slimpad.wal_compact app2);
  ok (Slimpad.wal_close app2);
  let app3, _ = ok (Slimpad.open_wal (fig4_desktop ()) path) in
  check_same_state app app3;
  ok (Slimpad.wal_close app3);
  cleanup_wal path

let test_wal_torn_tail_recovery () =
  let app, _, smith, _, _, _ = fig4_app () in
  let path = fresh_wal_path () in
  ok (Slimpad.enable_wal app ~policy:Si_wal.Log.Immediate path);
  ignore
    (ok
       (Slimpad.add_scrap app ~parent:smith ~name:"tearing here"
          ~mark_type:"excel"
          ~fields:
            [ ("fileName", "meds.xls"); ("sheetName", "Medications");
              ("range", "B2") ]
          ()));
  ok (Slimpad.wal_close app);
  (* Crash three bytes before the end of the log: the final record is
     torn and must be dropped — never half-applied. *)
  let size =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    close_in ic;
    n
  in
  ignore (Si_workload.Faults.cut_file path (size - 3));
  let app2, rc = ok (Slimpad.open_wal (fig4_desktop ()) path) in
  check_bool "torn tail reported" true (rc.Slimpad.truncated_bytes > 0);
  (* Prefix consistency at the record level: everything on the pad still
     resolves; no dangling half-written scrap/mark pair. *)
  let dmi = Slimpad.dmi app2 in
  let rec walk bundle =
    List.iter
      (fun s ->
        match Slimpad.scrap_content app2 s with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "scrap broken after recovery: %s" e)
      (Dmi.scraps dmi bundle);
    List.iter walk (Dmi.nested_bundles dmi bundle)
  in
  List.iter (fun pad -> walk (Dmi.root_bundle dmi pad)) (Dmi.pads dmi);
  ok (Slimpad.wal_close app2);
  (* The truncation persisted: reopening is clean. *)
  let app3, rc3 = ok (Slimpad.open_wal (fig4_desktop ()) path) in
  check_int "second recovery clean" 0 rc3.Slimpad.truncated_bytes;
  ok (Slimpad.wal_close app3);
  cleanup_wal path

let test_wal_rollback_consistency () =
  (* An aborted [atomically] must leave the log describing the same
     state as memory — the inverse ops and the journal truncation are
     appended. *)
  let app, _, smith, _, _, _ = fig4_app () in
  let path = fresh_wal_path () in
  ok (Slimpad.enable_wal app path);
  (match
     Dmi.atomically (Slimpad.dmi app) (fun () ->
         Dmi.update_bundle_name (Slimpad.dmi app) smith "doomed";
         (Error "abort" : (unit, string) result))
   with
  | Error "abort" -> ()
  | _ -> Alcotest.fail "abort should surface");
  check "memory rolled back" "John Smith"
    (Dmi.bundle_name (Slimpad.dmi app) smith);
  ok (Slimpad.wal_sync app);
  let crashed = crash_copy path in
  let app2, _ = ok (Slimpad.open_wal (fig4_desktop ()) crashed) in
  check_same_state app app2;
  ok (Slimpad.wal_close app2);
  ok (Slimpad.wal_close app);
  cleanup_wal crashed;
  cleanup_wal path

(* ------------------------------------- binary snapshot back-compat *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_save_still_xml () =
  (* XML stays the export/interop format: [save] writes a plain
     <slimpad-store> document, never the binary container. *)
  let app, _, _, _, _, _ = fig4_app () in
  let tmp = Filename.temp_file "slimpad_save" ".xml" in
  ok (Slimpad.save app tmp);
  let contents = read_file tmp in
  Sys.remove tmp;
  check_bool "save emits XML text" true
    (String.length contents > 0 && contents.[0] = '<');
  check_bool "not sniffed as binary" false (Si_wal.Binary.is_binary contents)

let test_wal_xml_snapshot_back_compat () =
  (* A WAL whose last snapshot predates the binary codec holds a whole
     <slimpad-store> document; recovery sniffs the payload and loads it
     through the XML path unchanged. *)
  let app, _, _, _, _, _ = fig4_app () in
  let tmp = Filename.temp_file "slimpad_xml_snap" ".xml" in
  ok (Slimpad.save app tmp);
  let xml_payload = read_file tmp in
  Sys.remove tmp;
  let wok what = function
    | Ok v -> v
    | Error e -> Alcotest.failf "%s: %s" what (Si_wal.Log.error_to_string e)
  in
  let path = fresh_wal_path () in
  let log, _ = wok "open log" (Si_wal.Log.open_ path) in
  wok "cut xml snapshot" (Si_wal.Log.cut_snapshot log xml_payload);
  wok "close log" (Si_wal.Log.close log);
  let app2, rc = ok (Slimpad.open_wal (fig4_desktop ()) path) in
  check_bool "recovered from the XML snapshot" true rc.Slimpad.from_snapshot;
  check_same_state app app2;
  (* The next compaction rewrites it in the binary form and the pad
     still round-trips. *)
  ok (Slimpad.wal_compact app2);
  ok (Slimpad.wal_close app2);
  let app3, _ = ok (Slimpad.open_wal (fig4_desktop ()) path) in
  check_same_state app app3;
  ok (Slimpad.wal_close app3);
  cleanup_wal path

let suite =
  [
    ("add_scrap creates the mark (F5)", `Quick, test_add_scrap_creates_mark);
    ("default label = excerpt", `Quick, test_add_scrap_default_label);
    ("bad mark refused", `Quick, test_add_scrap_bad_mark);
    ("double-click re-establishes context (F4)", `Quick, test_double_click);
    ("label and content may differ", `Quick, test_label_and_content_differ);
    ("drift & refresh", `Quick, test_drift_and_refresh);
    ("find_scraps", `Quick, test_find_scraps);
    ("query through the app", `Quick, test_query_through_app);
    ("render pad (F4)", `Quick, test_render);
    ("render annotations & links", `Quick, test_render_annotations_and_links);
    ("save/load combined store (F5)", `Quick, test_save_load_combined);
    ("load rejects garbage", `Quick, test_load_rejects_garbage);
    ("render HTML (2-D layout)", `Quick, test_render_html);
    ("import pad (sharing, §2)", `Quick, test_import_pad);
    ("import pad errors", `Quick, test_import_pad_errors);
    ("store-implementation invariance", `Quick,
     test_store_implementation_invariance);
    ("dangling marks rendered", `Quick, test_dangling_mark_rendering);
    ("wal: enable, journal, recover", `Quick, test_wal_enable_and_recover);
    ("wal: enable refuses an existing log", `Quick,
     test_wal_enable_refuses_existing);
    ("wal: compaction idempotent", `Quick, test_wal_compact_idempotent);
    ("wal: torn tail recovery", `Quick, test_wal_torn_tail_recovery);
    ("wal: rollback keeps log & memory agreeing", `Quick,
     test_wal_rollback_consistency);
    ("save still emits XML", `Quick, test_save_still_xml);
    ("wal: XML snapshot back-compat", `Quick,
     test_wal_xml_snapshot_back_compat);
  ]
