(* Workspace loading shared by the slimpad CLI and the TUI.

   A workspace is a directory holding base documents (recognized by
   suffix) plus the superimposed store in pad.xml:

     *.workbook.xml   spreadsheet (Excel stand-in)
     *.doc.xml        word-processor document
     *.slides.xml     presentation
     *.pdf.xml        paginated document
     *.txt            plain text
     *.html           HTML page
     *.xml            any other XML document
     pad.xml          the SLIMPad store (triples + marks + journal)

   A workspace in journaled mode holds pad.wal (+ pad.wal.snap) instead
   of pad.xml; when a log is present it wins, and opening performs WAL
   recovery. *)

module Desktop = Si_mark.Desktop
module Slimpad = Si_slimpad.Slimpad

let pad_store dir = Filename.concat dir "pad.xml"
let wal_path dir = Filename.concat dir "pad.wal"

(* Shipping archive (sealed segments + base snapshots) for a workspace
   acting as a replication leader; also the default restore source. *)
let archive_path dir = Filename.concat dir "pad.archive"

let wal_present dir =
  Sys.file_exists (wal_path dir)
  || Sys.file_exists (Si_wal.Log.snapshot_path (wal_path dir))

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

(* Rich documents live on disk with a serialization suffix; on the desktop
   they keep their logical name, so mark fileName fields stay stable. *)
let logical entry suffix =
  String.sub entry 0 (String.length entry - String.length suffix)

let load_desktop dir =
  let desk = Desktop.create () in
  let entries = try Sys.readdir dir with Sys_error _ -> [||] in
  let problems = ref [] in
  Array.iter
    (fun entry ->
      let path = Filename.concat dir entry in
      let fail msg =
        problems := Printf.sprintf "%s: %s" entry msg :: !problems
      in
      if entry = "pad.xml" then ()
      else if Si_xmlk.Print.is_temp_path entry then
        (* Leftover from a crash mid-save: the real file was never
           replaced, so the temp copy is garbage — never load it. *)
        ()
      else if ends_with ~suffix:".workbook.xml" entry then
        match Si_spreadsheet.Workbook.load path with
        | Ok wb -> Desktop.add_workbook desk (logical entry ".workbook.xml") wb
        | Error e -> fail e
      else if ends_with ~suffix:".doc.xml" entry then
        match Si_wordproc.Wordproc.load path with
        | Ok d -> Desktop.add_word desk (logical entry ".doc.xml") d
        | Error e -> fail e
      else if ends_with ~suffix:".slides.xml" entry then
        match Si_slides.Slides.load path with
        | Ok d -> Desktop.add_slides desk (logical entry ".slides.xml") d
        | Error e -> fail e
      else if ends_with ~suffix:".pdf.xml" entry then
        match Si_pdfdoc.Pdfdoc.load path with
        | Ok d -> Desktop.add_pdf desk (logical entry ".pdf.xml") d
        | Error e -> fail e
      else if ends_with ~suffix:".txt" entry then
        match Si_textdoc.Textdoc.from_file path with
        | Ok d -> Desktop.add_text desk entry d
        | Error e -> fail e
      else if ends_with ~suffix:".html" entry then
        match In_channel.with_open_bin path In_channel.input_all with
        | source -> Desktop.add_html desk entry source
        | exception Sys_error e -> fail e
      else if ends_with ~suffix:".xml" entry then
        match Si_xmlk.Parse.file path with
        | Ok root -> Desktop.add_xml desk entry root
        | Error e -> fail (Si_xmlk.Parse.error_to_string e))
    entries;
  (desk, List.rev !problems)

let open_workspace ?store ?resilient ?wrap
    ?(on_warning = Printf.eprintf "warning: %s\n") dir =
  let desk, problems = load_desktop dir in
  List.iter on_warning problems;
  if wal_present dir then
    match
      Slimpad.open_wal ?store ?resilient ?wrap ~on_warning desk (wal_path dir)
    with
    | Error _ as e -> e
    | Ok (app, _) -> Ok app
  else
    let file = pad_store dir in
    if Sys.file_exists file then Slimpad.load ?store ?resilient ?wrap desk file
    else Ok (Slimpad.create ?store ?resilient ?wrap desk)

let save_workspace dir app =
  match Slimpad.persistence app with
  | Slimpad.Journaled -> Slimpad.wal_sync app
  | Slimpad.Whole_file -> Slimpad.save app (pad_store dir)
