(* slimpad-tui — the interactive SLIMPad (terminal edition).

   Usage: slimpad-tui WORKSPACE [--pad NAME]

   A notty event loop around the pure state machine in Si_tui.Ui: arrows/jk
   move, space folds bundles, enter resolves the selected scrap into the
   detail pane (navigate view), e/i switch to extract / in-place views,
   r renames, a annotates, / searches (n for next match), d runs drift
   detection, q quits (saving the pad). *)

module Ui = Si_tui.Ui
module Dmi = Si_slim.Dmi
open Notty
open Notty_unix

let event_of_key ui (key : [ `Key of Unescape.key | `Resize of int * int ]) =
  match Ui.mode ui with
  | Ui.Input _ -> (
      match key with
      | `Key (`ASCII c, []) -> Some (Ui.Char c)
      | `Key (`Backspace, _) -> Some Ui.Backspace
      | `Key (`Enter, _) -> Some Ui.Commit
      | `Key (`Escape, _) -> Some Ui.Cancel
      | _ -> None)
  | Ui.Browse -> (
      match key with
      | `Key (`ASCII 'q', []) -> Some Ui.Quit
      | `Key (`Arrow `Up, []) | `Key (`ASCII 'k', []) -> Some Ui.Up
      | `Key (`Arrow `Down, []) | `Key (`ASCII 'j', []) -> Some Ui.Down
      | `Key (`Page `Up, []) -> Some Ui.Page_up
      | `Key (`Page `Down, []) -> Some Ui.Page_down
      | `Key (`ASCII ' ', []) -> Some Ui.Toggle
      | `Key (`Enter, []) -> Some Ui.Activate
      | `Key (`ASCII 'e', []) -> Some Ui.Extract
      | `Key (`ASCII 'i', []) -> Some Ui.In_place
      | `Key (`ASCII 'r', []) -> Some Ui.Start_rename
      | `Key (`ASCII 'a', []) -> Some Ui.Start_annotate
      | `Key (`ASCII 'l', []) -> Some Ui.Start_link
      | `Key (`Escape, []) -> Some Ui.Cancel
      | `Key (`ASCII '/', []) -> Some Ui.Start_search
      | `Key (`ASCII 'n', []) -> Some Ui.Next_match
      | `Key (`ASCII 'd', []) -> Some Ui.Refresh_drift
      | _ -> None)

let image_of_lines lines =
  I.vcat
    (List.map
       (fun line ->
         (* First line (title) and cursor rows render with emphasis. *)
         let attr =
           if String.length line >= 2 && String.sub line 0 2 = "> " then
             A.(st bold)
           else A.empty
         in
         I.string attr line)
       lines)

let rec loop term ui =
  let w, h = Term.size term in
  Term.image term (image_of_lines (Ui.render ui ~width:w ~height:h));
  if Ui.finished ui then ()
  else
    match Term.event term with
    | `End -> ()
    | `Resize _ -> loop term ui
    | (`Key _ | `Mouse _ | `Paste _) as ev -> (
        match ev with
        | `Key _ as key -> (
            match event_of_key ui (key :> [ `Key of Unescape.key | `Resize of int * int ]) with
            | Some e -> loop term (Ui.handle ui e)
            | None -> loop term ui)
        | _ -> loop term ui)

let () =
  let args = Array.to_list Sys.argv in
  let dir, pad_name =
    match args with
    | [ _; dir ] -> (dir, None)
    | [ _; dir; "--pad"; name ] -> (dir, Some name)
    | _ ->
        prerr_endline "usage: slimpad-tui WORKSPACE [--pad NAME]";
        exit 2
  in
  match Workspace.open_workspace dir with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  | Ok app -> (
      let dmi = Si_slimpad.Slimpad.dmi app in
      let pad =
        match pad_name with
        | Some name -> Dmi.find_pad dmi name
        | None -> (
            match Dmi.pads dmi with p :: _ -> Some p | [] -> None)
      in
      match pad with
      | None ->
          prerr_endline "error: no pad in the workspace";
          exit 1
      | Some pad ->
          let term = Term.create () in
          loop term (Ui.make app pad);
          Term.release term;
          (* Persist edits made through the TUI. *)
          (match Workspace.save_workspace dir app with
          | Ok () -> ()
          | Error msg ->
              Printf.eprintf "error: %s\n" msg;
              exit 1))
