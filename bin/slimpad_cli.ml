(* slimpad — command-line SLIMPad.

   Operates on workspace directories (see bin/workspace.ml for the layout);
   `slimpad init --scenario icu DIR` generates a ready-made one. *)

module Desktop = Si_mark.Desktop
module Manager = Si_mark.Manager
module Mark = Si_mark.Mark
module Dmi = Si_slim.Dmi
module Slimpad = Si_slimpad.Slimpad

(* Close the log on the way out: a one-shot CLI must flush any
   group-commit buffer and release the single-writer pid lock, or the
   next invocation has to take the lock over as stale. Commands that
   already closed (serve, replication) see a no-op second close. The
   check happens after [f] — it may itself enable journaling. *)
let closed_wal app code =
  match Slimpad.persistence app with
  | Slimpad.Whole_file -> code
  | Slimpad.Journaled -> (
      match Slimpad.wal_close app with
      | Ok () -> code
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          max code 1)

let with_workspace ?wrap dir f =
  match Workspace.open_workspace ?wrap dir with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Ok app -> closed_wal app (f app)

(* Persist, then continue — a failed save is a hard error, and the
   atomic-write protocol guarantees the previous store file survives it. *)
let saved dir app k =
  match Workspace.save_workspace dir app with
  | Ok () -> k ()
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1

let find_pad_or_first app = function
  | Some name -> (
      match Dmi.find_pad (Slimpad.dmi app) name with
      | Some p -> Ok p
      | None -> Error (Printf.sprintf "no pad named %S" name))
  | None -> (
      match Dmi.pads (Slimpad.dmi app) with
      | p :: _ -> Ok p
      | [] -> Error "the workspace has no pads; create one with add-pad")

let find_scrap app pad label =
  match Slimpad.find_scraps app pad label with
  | [ s ] -> Ok s
  | [] -> Error (Printf.sprintf "no scrap matching %S" label)
  | many ->
      Error
        (Printf.sprintf "%d scraps match %S; be more specific"
           (List.length many) label)

let find_bundle app pad name =
  let t = Slimpad.dmi app in
  let rec search b =
    if Dmi.bundle_name t b = name then Some b
    else List.find_map search (Dmi.nested_bundles t b)
  in
  match search (Dmi.root_bundle t pad) with
  | Some b -> Ok b
  | None -> Error (Printf.sprintf "no bundle named %S in the pad" name)

(* ------------------------------------------------------------ commands *)

let cmd_init dir scenario seed wal =
  if Sys.file_exists dir && Array.length (Sys.readdir dir) > 0 then begin
    Printf.eprintf "error: %s exists and is not empty\n" dir;
    1
  end
  else begin
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let desk = Desktop.create () in
    let app, built =
      match scenario with
      | "icu" ->
          let spec = Si_workload.Icu.build_desktop ~seed desk in
          let app = Slimpad.create desk in
          let _ = Si_workload.Icu.build_worksheet app spec in
          (app, "ICU rounds worksheet")
      | "atc" ->
          let spec = Si_workload.Atc.build_desktop ~seed desk in
          let app = Slimpad.create desk in
          let _ = Si_workload.Atc.build_board app spec in
          (app, "air-traffic sector board")
      | "concordance" ->
          Si_workload.Concordance.install_play desk;
          let app = Slimpad.create desk in
          let _ =
            Si_workload.Concordance.build app
              ~terms:[ "sleep"; "death"; "dream"; "conscience" ]
          in
          (app, "Hamlet concordance")
      | "empty" -> (Slimpad.create desk, "empty workspace")
      | other ->
          Printf.eprintf "error: unknown scenario %S\n" other;
          exit 1
    in
    (* Persist the generated base documents as files. *)
    List.iter
      (fun (kind, name) ->
        let path = Filename.concat dir name in
        match kind with
        | "excel" ->
            Si_spreadsheet.Workbook.save
              (Result.get_ok (Desktop.open_workbook desk name))
              (path ^ ".workbook.xml")
        | "xml" ->
            Si_xmlk.Print.to_file (path)
              (Result.get_ok (Desktop.open_xml desk name))
        | "text" ->
            Out_channel.with_open_bin path (fun oc ->
                Out_channel.output_string oc
                  (Si_textdoc.Textdoc.to_string
                     (Result.get_ok (Desktop.open_text desk name))))
        | _ -> ())
      (Desktop.document_names desk);
    if wal then
      match Slimpad.enable_wal app (Workspace.wal_path dir) with
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          1
      | Ok () ->
          Printf.printf "initialized %s in %s (journaled persistence)\n"
            built dir;
          closed_wal app 0
    else
      saved dir app (fun () ->
          Printf.printf "initialized %s in %s\n" built dir;
          0)
  end

let cmd_show dir pad_name =
  with_workspace dir (fun app ->
      match find_pad_or_first app pad_name with
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          1
      | Ok pad ->
          print_string (Slimpad.render_pad app pad);
          0)

let cmd_pads dir =
  with_workspace dir (fun app ->
      let t = Slimpad.dmi app in
      List.iter
        (fun p ->
          let bundles, scraps =
            Dmi.bundle_descendant_count t (Dmi.root_bundle t p)
          in
          Printf.printf "%s (%d bundles, %d scraps)\n" (Dmi.pad_name t p)
            bundles scraps)
        (Dmi.pads t);
      0)

let cmd_docs dir =
  with_workspace dir (fun app ->
      List.iter
        (fun (kind, name) -> Printf.printf "%-7s %s\n" kind name)
        (Desktop.document_names (Slimpad.desktop app));
      0)

let cmd_add_pad dir name =
  with_workspace dir (fun app ->
      let _ = Slimpad.new_pad app name in
      saved dir app (fun () ->
          Printf.printf "created pad %S\n" name;
          0))

let cmd_add_bundle dir pad_name parent name =
  with_workspace dir (fun app ->
      let ( let* ) r f =
        match r with
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            1
        | Ok v -> f v
      in
      let* pad = find_pad_or_first app pad_name in
      let* parent =
        match parent with
        | None -> Ok (Dmi.root_bundle (Slimpad.dmi app) pad)
        | Some p -> find_bundle app pad p
      in
      let _ = Slimpad.add_bundle app ~parent ~name () in
      saved dir app (fun () ->
          Printf.printf "created bundle %S\n" name;
          0))

let parse_field s =
  match String.index_opt s '=' with
  | Some i ->
      Ok (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> Error (Printf.sprintf "field %S is not key=value" s)

let cmd_add_scrap dir pad_name parent name mark_type fields =
  with_workspace dir (fun app ->
      let ( let* ) r f =
        match r with
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            1
        | Ok v -> f v
      in
      let* pad = find_pad_or_first app pad_name in
      let* parent =
        match parent with
        | None -> Ok (Dmi.root_bundle (Slimpad.dmi app) pad)
        | Some p -> find_bundle app pad p
      in
      let rec parse_all acc = function
        | [] -> Ok (List.rev acc)
        | f :: rest -> (
            match parse_field f with
            | Ok kv -> parse_all (kv :: acc) rest
            | Error _ as e -> e)
      in
      let* fields = parse_all [] fields in
      let* scrap =
        Slimpad.add_scrap app ~parent ~name ~mark_type ~fields ()
      in
      saved dir app (fun () ->
          Printf.printf "created scrap %S -> %s\n"
            (Dmi.scrap_name (Slimpad.dmi app) scrap)
            (Slimpad.render_scrap_line app scrap);
          0))

let behaviour_of_string = function
  | "navigate" -> Ok Mark.Navigate
  | "extract" -> Ok Mark.Extract_content
  | "inplace" -> Ok Mark.Display_in_place
  | other -> Error (Printf.sprintf "unknown behaviour %S" other)

let cmd_resolve dir pad_name label behaviour =
  with_workspace dir (fun app ->
      let ( let* ) r f =
        match r with
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            1
        | Ok v -> f v
      in
      let* pad = find_pad_or_first app pad_name in
      let* scrap = find_scrap app pad label in
      let* behaviour = behaviour_of_string behaviour in
      let* res = Slimpad.double_click app scrap in
      print_endline (Mark.apply_behaviour behaviour res);
      0)

let cmd_annotate dir pad_name label text =
  with_workspace dir (fun app ->
      let ( let* ) r f =
        match r with
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            1
        | Ok v -> f v
      in
      let* pad = find_pad_or_first app pad_name in
      let* scrap = find_scrap app pad label in
      Dmi.annotate_scrap (Slimpad.dmi app) scrap text;
      saved dir app (fun () -> 0))

let cmd_link dir pad_name from_label to_label label =
  with_workspace dir (fun app ->
      let ( let* ) r f =
        match r with
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            1
        | Ok v -> f v
      in
      let* pad = find_pad_or_first app pad_name in
      let* from_ = find_scrap app pad from_label in
      let* to_ = find_scrap app pad to_label in
      let _ = Dmi.link_scraps (Slimpad.dmi app) ?label ~from_ ~to_ () in
      saved dir app (fun () -> 0))

let cmd_drift dir pad_name refresh =
  with_workspace dir (fun app ->
      let ( let* ) r f =
        match r with
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            1
        | Ok v -> f v
      in
      let* pad = find_pad_or_first app pad_name in
      let t = Slimpad.dmi app in
      let report = Slimpad.drift_report app pad in
      if report = [] then print_endline "all scraps current"
      else
        List.iter
          (fun (scrap, drift) ->
            match drift with
            | Manager.Changed { was; now } ->
                Printf.printf "changed  %s: %S -> %S\n"
                  (Dmi.scrap_name t scrap) was now
            | Manager.Unresolvable err ->
                Printf.printf "broken   %s: %s\n" (Dmi.scrap_name t scrap)
                  (Manager.resolve_error_to_string err)
            | Manager.Quarantined err ->
                Printf.printf "quarantined %s: %s\n" (Dmi.scrap_name t scrap)
                  (Manager.resolve_error_to_string err)
            | Manager.Unchanged -> ())
          report;
      if refresh then
        let n = Slimpad.refresh_pad app pad in
        saved dir app (fun () ->
            Printf.printf "refreshed %d scrap(s)\n" n;
            0)
      else 0)

let cmd_query dir text =
  with_workspace dir (fun app ->
      match Slimpad.query app text with
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          1
      | Ok rows ->
          List.iter print_endline rows;
          Printf.printf "(%d rows)\n" (List.length rows);
          0)

let cmd_validate dir =
  with_workspace dir (fun app ->
      let report = Dmi.validate (Slimpad.dmi app) in
      print_string (Si_metamodel.Validate.report_to_string report);
      if report.Si_metamodel.Validate.violations = [] then 0 else 1)

let cmd_import dir file pad_name rename =
  with_workspace dir (fun app ->
      match Slimpad.import_pad app ~from_file:file ?pad_name ?rename () with
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          1
      | Ok pad ->
          saved dir app (fun () ->
              Printf.printf "imported pad %S\n"
                (Dmi.pad_name (Slimpad.dmi app) pad);
              0))

let cmd_template dir pad_name bundle_name off =
  with_workspace dir (fun app ->
      let ( let* ) r f =
        match r with
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            1
        | Ok v -> f v
      in
      let* pad = find_pad_or_first app pad_name in
      let* bundle = find_bundle app pad bundle_name in
      Dmi.set_template (Slimpad.dmi app) bundle (not off);
      saved dir app (fun () ->
          Printf.printf "%s is %s a template\n" bundle_name
            (if off then "no longer" else "now");
          0))

let cmd_instantiate dir pad_name template_name new_name parent =
  with_workspace dir (fun app ->
      let ( let* ) r f =
        match r with
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            1
        | Ok v -> f v
      in
      let* pad = find_pad_or_first app pad_name in
      let* template = find_bundle app pad template_name in
      let* parent =
        match parent with
        | None -> Ok (Dmi.root_bundle (Slimpad.dmi app) pad)
        | Some p -> find_bundle app pad p
      in
      let* copy =
        Dmi.instantiate_template (Slimpad.dmi app) ~template ~name:new_name
          ~parent
      in
      saved dir app (fun () ->
          Printf.printf "instantiated %S from %S\n"
            (Dmi.bundle_name (Slimpad.dmi app) copy)
            template_name;
          0))

let cmd_export_html dir pad_name out =
  with_workspace dir (fun app ->
      match find_pad_or_first app pad_name with
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          1
      | Ok pad ->
          let html = Slimpad.render_pad_html app pad in
          (match out with
          | Some path ->
              Out_channel.with_open_bin path (fun oc ->
                  Out_channel.output_string oc html);
              Printf.printf "wrote %s (%d bytes)\n" path (String.length html)
          | None -> print_string html);
          0)

let cmd_model dir =
  with_workspace dir (fun app ->
      let bm = Dmi.model (Slimpad.dmi app) in
      print_string
        (Si_metamodel.Model_dsl.print bm.Si_slim.Bundle_model.model);
      0)

let cmd_history dir last =
  with_workspace dir (fun app ->
      let entries = Dmi.journal (Slimpad.dmi app) in
      let entries =
        match last with
        | None -> entries
        | Some n ->
            let skip = max 0 (List.length entries - n) in
            List.filteri (fun i _ -> i >= skip) entries
      in
      List.iter
        (fun (e : Dmi.journal_entry) ->
          Printf.printf "%4d  %-22s %-12s %s\n" e.Dmi.seq e.Dmi.op
            e.Dmi.target e.Dmi.detail)
        entries;
      0)

let cmd_health dir pad_name inject_rate inject_source seed passes =
  let wrap =
    (* Optional scripted outage, for demonstrating and exercising the
       breakers from the command line. *)
    match inject_rate with
    | None -> None
    | Some rate ->
        let only =
          match inject_source with [] -> None | l -> Some l
        in
        Some
          (Si_workload.Faults.wrap
             (Si_workload.Faults.create ~seed ?only
                (Si_workload.Faults.Fail_rate rate)))
  in
  with_workspace ?wrap dir (fun app ->
      match find_pad_or_first app pad_name with
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          1
      | Ok pad ->
          (* Extra passes drive the breakers through their lifecycle
             (trip, cool down, probe) before the reported sweep. *)
          for _ = 2 to passes do
            ignore (Slimpad.pad_health app pad)
          done;
          let h = Slimpad.pad_health app pad in
          Printf.printf "scraps: %d fresh, %d degraded, %d quarantined, %d dangling\n"
            h.Slimpad.fresh h.Slimpad.degraded h.Slimpad.quarantined
            h.Slimpad.dangling;
          (match Slimpad.health app with
          | [] -> print_endline "breakers: (no base source touched yet)"
          | infos ->
              print_endline "breakers:";
              List.iter
                (fun (i : Si_mark.Resilient.breaker_info) ->
                  Printf.printf
                    "  %-28s %-9s ok=%d fail=%d consecutive=%d rejected=%d probe-failures=%d%s\n"
                    i.Si_mark.Resilient.source
                    (Si_mark.Resilient.state_to_string
                       i.Si_mark.Resilient.state)
                    i.Si_mark.Resilient.total_successes
                    i.Si_mark.Resilient.total_failures
                    i.Si_mark.Resilient.consecutive_failures
                    i.Si_mark.Resilient.rejected
                    i.Si_mark.Resilient.probe_failures
                    (if
                       Si_mark.Resilient.quarantined (Slimpad.resilient app)
                         i.Si_mark.Resilient.source
                     then " QUARANTINED"
                     else ""))
                infos);
          if h.Slimpad.quarantined > 0 || h.Slimpad.dangling > 0 then 1
          else 0)

let marks_by_type app =
  let by_type = Hashtbl.create 8 in
  List.iter
    (fun m ->
      let k = m.Si_mark.Mark.mark_type in
      Hashtbl.replace by_type k
        (1 + Option.value (Hashtbl.find_opt by_type k) ~default:0))
    (Manager.marks (Slimpad.marks app));
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_type [] |> List.sort compare

let cmd_stats dir json =
  with_workspace dir (fun app ->
      let t = Slimpad.dmi app in
      let trim = Dmi.trim t in
      if json then begin
        (* Workspace shape plus the Si_obs instrumentation (the
           counters cover the work this very open performed: WAL
           recovery, store loading, resolution). *)
        let workspace =
          Si_obs.Json.Obj
            [
              ("store", Si_obs.Json.String (Si_triple.Trim.store_name trim));
              ("triples", Si_obs.Json.Int (Si_triple.Trim.size trim));
              ("pads", Si_obs.Json.Int (List.length (Dmi.pads t)));
              ( "marks",
                Si_obs.Json.Int (Manager.mark_count (Slimpad.marks app)) );
              ( "marks_by_type",
                Si_obs.Json.Obj
                  (List.map
                     (fun (k, v) -> (k, Si_obs.Json.Int v))
                     (marks_by_type app)) );
              ( "documents",
                Si_obs.Json.Int
                  (List.length
                     (Desktop.document_names (Slimpad.desktop app))) );
            ]
        in
        let doc =
          Si_obs.Json.Obj
            [
              ("workspace", workspace);
              ("instrumentation", Si_obs.Report.to_json (Slimpad.stats ()));
            ]
        in
        print_endline (Si_obs.Json.to_string ~pretty:true doc);
        0
      end
      else begin
        Printf.printf "store implementation : %s\n"
          (Si_triple.Trim.store_name trim);
        Printf.printf "triples              : %d\n" (Si_triple.Trim.size trim);
        Printf.printf "pads                 : %d\n" (List.length (Dmi.pads t));
        Printf.printf "marks                : %d\n"
          (Manager.mark_count (Slimpad.marks app));
        List.iter
          (fun (k, v) -> Printf.printf "  %-19s: %d\n" k v)
          (marks_by_type app);
        Printf.printf "mark modules         : %s\n"
          (String.concat ", " (Manager.module_names (Slimpad.marks app)));
        Printf.printf "base documents       : %d\n"
          (List.length (Desktop.document_names (Slimpad.desktop app)));
        let instr = Slimpad.stats_text () in
        if instr <> "" then begin
          print_newline ();
          print_string instr
        end;
        0
      end)

(* `slimpad trace` runs one gesture with span tracing enabled and
   prints the resulting span tree. Tracing covers only the gesture
   (for `open`, the workspace open itself), so the tree is the
   end-to-end path through the layers: query.run over triple.select,
   wal.recover, resilient resolution, ... *)
let cmd_trace dir gesture arg no_timings =
  let timings = not no_timings in
  let print_tree spans =
    let tree = Si_obs.Report.span_tree ~timings spans in
    if tree = "" then print_endline "(no spans recorded)"
    else print_string tree
  in
  let need_arg what =
    Printf.eprintf "error: trace %s needs %s\n" gesture what;
    1
  in
  match gesture with
  | "open" ->
      let result, spans =
        Slimpad.with_tracing (fun () -> Workspace.open_workspace dir)
      in
      print_tree spans;
      (match result with
      | Ok app -> closed_wal app 0
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          1)
  | "query" -> (
      match arg with
      | None -> need_arg "the query text"
      | Some text ->
          with_workspace dir (fun app ->
              let result, spans =
                Slimpad.with_tracing (fun () -> Slimpad.query app text)
              in
              print_tree spans;
              match result with
              | Ok rows ->
                  Printf.printf "(%d rows)\n" (List.length rows);
                  0
              | Error msg ->
                  Printf.eprintf "error: %s\n" msg;
                  1))
  | "resolve" -> (
      match arg with
      | None -> need_arg "a scrap label"
      | Some label ->
          with_workspace dir (fun app ->
              match
                Result.bind (find_pad_or_first app None) (fun pad ->
                    find_scrap app pad label)
              with
              | Error msg ->
                  Printf.eprintf "error: %s\n" msg;
                  1
              | Ok scrap -> (
                  let result, spans =
                    Slimpad.with_tracing (fun () ->
                        Slimpad.resolve_scrap app scrap)
                  in
                  print_tree spans;
                  match result with
                  | Ok _ -> 0
                  | Error e ->
                      Printf.eprintf "error: %s\n"
                        (Manager.resolve_error_to_string e);
                      1)))
  | other ->
      Printf.eprintf
        "error: unknown trace gesture %S (one of open, query, resolve)\n"
        other;
      1

(* ------------------------------------------------- journaled persistence *)

let cmd_wal_enable dir =
  with_workspace dir (fun app ->
      match Slimpad.persistence app with
      | Slimpad.Journaled ->
          Printf.printf "workspace is already journaled\n";
          0
      | Slimpad.Whole_file -> (
          match Slimpad.enable_wal app (Workspace.wal_path dir) with
          | Error msg ->
              Printf.eprintf "error: %s\n" msg;
              1
          | Ok () ->
              (* The whole-file store is superseded by the snapshot the
                 conversion just cut; leaving it would shadow nothing
                 (the log wins on open) but would go stale. *)
              let store = Workspace.pad_store dir in
              if Sys.file_exists store then Sys.remove store;
              Printf.printf
                "enabled journaled persistence; state snapshot in pad.wal.snap\n";
              0))

let cmd_wal_inspect dir =
  match Si_wal.Log.inspect (Workspace.wal_path dir) with
  | Error e ->
      Printf.eprintf "error: %s\n" (Si_wal.Log.error_to_string e);
      1
  | Ok info ->
      Printf.printf "generation     %d\n" info.Si_wal.Log.info_generation;
      Printf.printf "records        %d\n" info.Si_wal.Log.info_records;
      Printf.printf "log bytes      %d\n" info.Si_wal.Log.info_log_bytes;
      (match info.Si_wal.Log.info_snapshot_bytes with
      | Some n -> Printf.printf "snapshot bytes %d\n" n
      | None -> Printf.printf "snapshot       none\n");
      (* Offline per-snapshot detail: format (old pads carry XML
         snapshots until their next compaction), atom-table size, and
         per-section byte counts of the binary container. *)
      (match Si_wal.Log.dump (Workspace.wal_path dir) with
      | Error _ -> ()
      | Ok d -> (
          match d.Si_wal.Log.dump_snapshot with
          | None -> ()
          | Some payload when not (Si_wal.Binary.is_binary payload) ->
              Printf.printf "snapshot form  xml\n"
          | Some payload -> (
              Printf.printf "snapshot form  binary\n";
              match Si_wal.Binary.decode payload with
              | Error e -> Printf.printf "snapshot damage %s\n" e
              | Ok sections ->
                  List.iter
                    (fun (name, body) ->
                      let detail =
                        if String.length body < 4 then ""
                        else
                          match name with
                          | "atoms" ->
                              Printf.sprintf " (%d atoms)"
                                (Si_wal.Record.get_u32 body 0)
                          | "triples" ->
                              Printf.sprintf " (%d rows)"
                                (Si_wal.Record.get_u32 body 0)
                          | _ -> ""
                      in
                      Printf.printf "  %-12s %d bytes%s\n" name
                        (String.length body) detail)
                    sections)));
      if info.Si_wal.Log.info_torn_bytes > 0 then
        Printf.printf "torn bytes     %d (a recovery will truncate these)\n"
          info.Si_wal.Log.info_torn_bytes;
      if info.Si_wal.Log.info_stale_log then
        Printf.printf
          "stale log      yes (superseded by snapshot; a recovery will \
           discard it)\n";
      0

let cmd_wal_compact dir =
  with_workspace dir (fun app ->
      match Slimpad.wal app with
      | None ->
          Printf.eprintf
            "error: workspace is not journaled (run wal-enable first)\n";
          1
      | Some log -> (
          let before = Si_wal.Log.record_count log in
          match Slimpad.wal_compact app with
          | Error msg ->
              Printf.eprintf "error: %s\n" msg;
              1
          | Ok () ->
              Printf.printf
                "compacted: folded %d record(s) into the generation-%d \
                 snapshot\n"
                before
                (Si_wal.Log.generation log);
              0))

(* ----------------------------------------------------------------- lint *)

(* `slimpad lint` analyses without opening the log or recovering
   anything: a journaled workspace is rebuilt offline from Log.dump, so
   a second lint run sees the same torn tail the first one reported.
   Only --fix opens the store for writing. *)

let raw_triples_of_root root =
  let root = Si_xmlk.Node.strip_whitespace root in
  let triples_el =
    (* A <slimpad-store> wraps its <triples>; a bare Trim.save file IS
       the <triples> element. *)
    match root with
    | Si_xmlk.Node.Element { name = "triples"; _ } -> Some root
    | _ -> Si_xmlk.Node.find_child "triples" root
  in
  match triples_el with
  | None -> None
  | Some triples -> (
      match Si_triple.Trim.triples_of_xml triples with
      | Ok l -> Some l
      | Error _ -> None)

let raw_triples_of_file path =
  match Si_xmlk.Parse.file path with
  | Error _ -> None
  | Ok root -> raw_triples_of_root root

let raw_triples_of_payload payload =
  match Si_xmlk.Parse.node payload with
  | Error _ -> None
  | Ok root -> raw_triples_of_root root

let lint_context_of_app ?raw_triples ?store_file ?wal_path ?archive
    ?workspace ?bundle app =
  Si_lint.context ~dmi:(Slimpad.dmi app) ~marks:(Slimpad.marks app)
    ~resilient:(Slimpad.resilient app) ?raw_triples ?store_file ?wal_path
    ?archive ?workspace ?bundle ()

(* The read-only analysis context for a target; warnings (unloadable
   base documents, an unrestorable store) go to stderr but never stop
   the lint — WAL rules still run over whatever is on disk. *)
let lint_context ?archive ?bundle target =
  if Sys.file_exists target && not (Sys.is_directory target) then
    (* A bare pad store file. *)
    let desk = Desktop.create () in
    match Slimpad.load desk target with
    | Error msg ->
        Printf.eprintf "warning: %s: %s\n" target msg;
        Ok (Si_lint.context ?raw_triples:(raw_triples_of_file target)
              ~store_file:target ?archive ?bundle ())
    | Ok app ->
        Ok (lint_context_of_app
              ?raw_triples:(raw_triples_of_file target)
              ~store_file:target ?archive ?bundle app)
  else if Sys.file_exists target then begin
    let desk, problems = Workspace.load_desktop target in
    List.iter (Printf.eprintf "warning: %s\n") problems;
    (* A workspace that has been a shipping leader carries its archive
       alongside the log; lint it too unless --archive overrode it. *)
    let archive =
      match archive with
      | Some _ -> archive
      | None ->
          let a = Workspace.archive_path target in
          if Sys.file_exists a && Sys.is_directory a then Some a else None
    in
    if Workspace.wal_present target then
      let wal_path = Workspace.wal_path target in
      match Si_wal.Log.dump wal_path with
      | Error e -> Error (Si_wal.Log.error_to_string e)
      | Ok dump -> (
          let raw_triples =
            Option.bind dump.Si_wal.Log.dump_snapshot raw_triples_of_payload
          in
          match Slimpad.restore_offline desk dump with
          | Error msg ->
              (* Unrestorable snapshot: lint what the WAL rules can see. *)
              Printf.eprintf "warning: %s\n" msg;
              Ok
                (Si_lint.context ?raw_triples ~wal_path ?archive
                   ~workspace:target ?bundle ())
          | Ok (app, _) ->
              Ok
                (lint_context_of_app ?raw_triples ~wal_path ?archive
                   ~workspace:target ?bundle app))
    else
      let store = Workspace.pad_store target in
      if not (Sys.file_exists store) then
        Error (Printf.sprintf "%s: no pad.xml or pad.wal" target)
      else
        match Slimpad.load desk store with
        | Error msg ->
            Printf.eprintf "warning: %s: %s\n" store msg;
            Ok (Si_lint.context ?raw_triples:(raw_triples_of_file store)
                  ~store_file:store ?archive ~workspace:target ?bundle ())
        | Ok app ->
            Ok (lint_context_of_app
                  ?raw_triples:(raw_triples_of_file store)
                  ~store_file:store ?archive ~workspace:target ?bundle app)
  end
  else Error (Printf.sprintf "%s: no such file or directory" target)

(* Apply the safe repairs against a live (writable) store, persist
   them, and release it. Returns the fix report. *)
let lint_apply_fixes target diags =
  let finish app report =
    let dedup_via_compaction =
      Slimpad.persistence app = Slimpad.Journaled
      && report.Si_lint.duplicate_triples > 0
    in
    match
      if dedup_via_compaction then Slimpad.wal_compact app
      else Stdlib.Ok ()
    with
    | Error _ as e -> e
    | Ok () -> (
        match
          match Slimpad.persistence app with
          | Slimpad.Journaled ->
              (* Flush the repair records, then close so the re-lint
                 reads a quiescent log. *)
              Result.bind (Slimpad.wal_sync app) (fun () ->
                  Slimpad.wal_close app)
          | Slimpad.Whole_file ->
              if Sys.is_directory target then
                Slimpad.save app (Workspace.pad_store target)
              else Slimpad.save app target
        with
        | Error _ as e -> e
        | Ok () -> Stdlib.Ok report)
  in
  let open_live () =
    if Sys.file_exists target && not (Sys.is_directory target) then
      Slimpad.load (Desktop.create ()) target
    else Workspace.open_workspace target
  in
  match open_live () with
  | Error _ as e -> e
  | Ok app -> (
      match Si_lint.fix (lint_context_of_app app) diags with
      | Error _ as e -> e
      | Ok report -> finish app report)

let cmd_lint target json fix archive bundle =
  let print_report diags =
    if json then print_string (Si_lint.to_json diags)
    else print_string (Si_lint.to_text diags)
  in
  let exit_code diags =
    if Si_lint.count Si_lint.Error diags > 0 then 1 else 0
  in
  (* --bundle alone verifies the artifact offline (SL308); with a
     target, the bundle rides along in the same run. *)
  let context () =
    match (target, bundle) with
    | Some target, _ -> lint_context ?archive ?bundle target
    | None, Some _ -> Ok (Si_lint.context ?bundle ())
    | None, None ->
        Error "pass a TARGET (workspace or store file) or --bundle FILE"
  in
  match context () with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Ok ctx -> (
      let diags = Si_lint.run ctx in
      if not fix then begin
        print_report diags;
        exit_code diags
      end
      else
        match
          if List.exists (fun d -> d.Si_lint.fixable) diags then target
          else None
        with
        | None ->
            Printf.eprintf "nothing to fix\n";
            print_report diags;
            exit_code diags
        | Some target -> (
            match lint_apply_fixes target diags with
            | Error msg ->
                Printf.eprintf "error: %s\n" msg;
                1
            | Ok report -> (
                Printf.eprintf
                  "fixed: removed %d orphaned layout triple(s), dropped %d \
                   duplicate triple(s), deleted %d orphaned temp file(s)\n"
                  report.Si_lint.removed_layout_triples
                  report.Si_lint.duplicate_triples
                  report.Si_lint.removed_temp_files;
                (* Re-lint from disk so the report reflects what the next
                   open will actually see. *)
                match lint_context ?archive ?bundle target with
                | Error msg ->
                    Printf.eprintf "error: %s\n" msg;
                    1
                | Ok ctx ->
                    let diags = Si_lint.run ctx in
                    print_report diags;
                    exit_code diags)))

(* --------------------------------------------------------------- bundles *)

let print_problems problems =
  List.iter
    (fun p -> Printf.printf "  problem: %s\n" (Si_bundle.problem_to_string p))
    problems

(* Greedy by design: per-document read failures land in the report, the
   artifact is still written, and the exit code stays 0 — a partially
   captured bundle beats no bundle (paper §5: the superimposed layer
   outlives its bases). *)
let cmd_capture dir out with_bases =
  with_workspace dir (fun app ->
      let bases =
        if with_bases then Some (Si_bundle.Layout.reader ~dir) else None
      in
      match Si_bundle.capture_to_file ~workspace_id:dir ?bases app ~path:out
      with
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          1
      | Ok report ->
          Printf.printf
            "captured %d triple(s), %d mark(s), %d base document(s) to %s\n"
            report.Si_bundle.captured_triples report.Si_bundle.captured_marks
            report.Si_bundle.captured_bases out;
          print_problems report.Si_bundle.capture_problems;
          Printf.printf "content digest %s\n" (Si_bundle.app_digest app);
          0)

(* The import gate [--strict] rides on: load the bundle's content into a
   scratch pad and run the full lint catalog over it before the real
   workspace is touched at all. *)
let bundle_preflight bytes =
  match Slimpad.of_snapshot_bytes (Desktop.create ()) bytes with
  | Error e -> Error ("bundle does not load: " ^ e)
  | Ok scratch ->
      let ctx =
        Si_lint.context ~dmi:(Slimpad.dmi scratch)
          ~marks:(Slimpad.marks scratch) ()
      in
      let errors = Si_lint.count Si_lint.Error (Si_lint.run ctx) in
      if errors = 0 then Ok ()
      else
        Error
          (Printf.sprintf "bundle is dirty: %d lint error(s); not applied"
             errors)

let cmd_apply dir file excerpts bases strict =
  let fail msg =
    Printf.eprintf "error: %s\n" msg;
    1
  in
  match Si_bundle.read_file file with
  | Error msg -> fail msg
  | Ok bytes -> (
      match if strict then bundle_preflight bytes else Ok () with
      | Error msg -> fail msg
      | Ok () ->
          (if not (Sys.file_exists dir) then
             try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ());
          with_workspace dir (fun app ->
              let bases =
                if bases then Some (Si_bundle.Layout.writer ~dir) else None
              in
              match Si_bundle.apply ~excerpts ?bases app bytes with
              | Error msg -> fail msg
              | Ok report ->
                  Printf.printf
                    "applied %d triple(s) (%d already present), %d mark(s) \
                     (%d already present)\n"
                    report.Si_bundle.added_triples
                    report.Si_bundle.skipped_triples
                    report.Si_bundle.installed_marks
                    report.Si_bundle.skipped_marks;
                  if report.Si_bundle.restored_excerpts > 0 then
                    Printf.printf "restored %d cached excerpt(s)\n"
                      report.Si_bundle.restored_excerpts;
                  if
                    report.Si_bundle.restored_bases > 0
                    || report.Si_bundle.skipped_bases > 0
                  then
                    Printf.printf
                      "restored %d base document(s) (%d already present)\n"
                      report.Si_bundle.restored_bases
                      report.Si_bundle.skipped_bases;
                  print_problems report.Si_bundle.apply_problems;
                  saved dir app (fun () ->
                      Printf.printf "content digest %s\n"
                        (Si_bundle.app_digest app);
                      0)))

(* ------------------------------------------------------------ replication *)

let split_endpoint s =
  let bad () =
    Error (Printf.sprintf "bad endpoint %S (expected HOST:PORT or PORT)" s)
  in
  match String.rindex_opt s ':' with
  | None -> (
      match int_of_string_opt s with
      | Some p -> Ok ("127.0.0.1", p)
      | None -> bad ())
  | Some i -> (
      let host = String.sub s 0 i in
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
      with
      | Some p -> Ok ((if host = "" then "127.0.0.1" else host), p)
      | None -> bad ())

let open_workspace_replica ?bootstrap dir =
  (* A bootstrapped follower usually starts from nothing at all. *)
  (if bootstrap <> None && not (Sys.file_exists dir) then
     try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ());
  let desk, problems = Workspace.load_desktop dir in
  List.iter (Printf.eprintf "warning: %s\n") problems;
  Slimpad.open_replica ?bootstrap desk (Workspace.wal_path dir)

(* Follower mode: serve the replica protocol over a socket until SIGINT
   (or, with --until-seq, until the applied prefix reaches the target —
   how a script waits for catch-up). *)
let serve_replica ?bootstrap dir port until_seq =
  match open_workspace_replica ?bootstrap dir with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Ok (app, _) -> (
      let r = Option.get (Slimpad.replica app) in
      match Si_wal.Tcp.serve ~port (Si_wal.Replica.handle r) with
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          ignore (Slimpad.wal_close app);
          1
      | Ok server ->
          Printf.printf "replica serving on port %d (term %d, applied %d)\n%!"
            (Si_wal.Tcp.port server)
            (Si_wal.Replica.term r)
            (Si_wal.Replica.applied r);
          let stop = ref false in
          let previous =
            Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true))
          in
          let target = Option.value until_seq ~default:max_int in
          while (not !stop) && Si_wal.Replica.applied r < target do
            try Unix.sleepf 0.05 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
          done;
          Sys.set_signal Sys.sigint previous;
          Si_wal.Tcp.shutdown server;
          Printf.printf "replica stopped: term %d, applied %d, lag %d\n"
            (Si_wal.Replica.term r)
            (Si_wal.Replica.applied r)
            (Si_wal.Replica.lag r);
          (match Slimpad.wal_close app with
          | Ok () -> 0
          | Error msg ->
              Printf.eprintf "error: %s\n" msg;
              1))

(* Leader mode: one shipping round — resume (or start) the stream,
   attach each follower over TCP, push until everyone is caught up or
   out of retry budget, and report per-follower acks. *)
let ship_round dir endpoints checkpoint =
  with_workspace dir (fun app ->
      match Slimpad.wal app with
      | None ->
          Printf.eprintf
            "error: workspace is not journaled (run wal-enable first)\n";
          1
      | Some _ -> (
          match
            Slimpad.start_shipping app ~archive:(Workspace.archive_path dir)
          with
          | Error msg ->
              Printf.eprintf "error: %s\n" msg;
              1
          | Ok () ->
              let clients = ref [] in
              let finish code =
                List.iter Si_wal.Tcp.close !clients;
                match Slimpad.wal_close app with
                | Ok () -> code
                | Error msg ->
                    Printf.eprintf "error: %s\n" msg;
                    max code 1
              in
              let attach ep =
                match split_endpoint ep with
                | Error _ as e -> e
                | Ok (addr, port) -> (
                    match Si_wal.Tcp.connect ~addr ~port () with
                    | Error e -> Error (Printf.sprintf "%s: %s" ep e)
                    | Ok c ->
                        clients := c :: !clients;
                        Result.map_error
                          (Printf.sprintf "%s: %s" ep)
                          (Slimpad.attach_follower app ~name:ep
                             (Si_wal.Tcp.transport c)))
              in
              let round =
                List.fold_left
                  (fun acc ep -> Result.bind acc (fun () -> attach ep))
                  (Ok ()) endpoints
                |> Fun.flip Result.bind (fun () -> Slimpad.ship app)
                |> Fun.flip Result.bind (fun () ->
                       if checkpoint then Slimpad.ship_checkpoint app
                       else Ok ())
              in
              (match round with
              | Error msg ->
                  Printf.eprintf "error: %s\n" msg;
                  finish 1
              | Ok () ->
                  let sh = Option.get (Slimpad.shipper app) in
                  Printf.printf "term %d, stream at seq %d\n"
                    (Si_wal.Ship.term sh) (Si_wal.Ship.seq sh);
                  List.iter
                    (fun (name, acked) ->
                      Printf.printf "  %-24s acked %d\n" name acked)
                    (Si_wal.Ship.followers sh);
                  let lag = Si_wal.Ship.lag sh in
                  if lag > 0 then
                    Printf.printf "  most-behind follower needs %d record(s)\n"
                      lag;
                  finish (if lag > 0 then 1 else 0))))

let cmd_replicate dir serve until_seq followers checkpoint bootstrap =
  let boot =
    match bootstrap with
    | None -> Ok None
    | Some file -> Result.map Option.some (Si_bundle.read_file file)
  in
  match boot with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Ok bootstrap -> (
      match (serve, followers) with
      | Some port, [] -> serve_replica ?bootstrap dir port until_seq
      | Some _, _ :: _ ->
          Printf.eprintf "error: --serve and --to are mutually exclusive\n";
          1
      | None, [] ->
          Printf.eprintf
            "error: pass --serve PORT (follower) or --to HOST:PORT \
             (leader)\n";
          1
      | None, _ when bootstrap <> None ->
          Printf.eprintf
            "error: --bootstrap is follower-side (needs --serve)\n";
          1
      | None, endpoints -> ship_round dir endpoints checkpoint)

let cmd_promote dir =
  match open_workspace_replica dir with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Ok (app, _) -> (
      match
        Slimpad.promote_replica app ~archive:(Workspace.archive_path dir)
      with
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          ignore (Slimpad.wal_close app);
          1
      | Ok term -> (
          let sh = Option.get (Slimpad.shipper app) in
          Printf.printf
            "promoted: leading at term %d from seq %d; the deposed leader \
             is fenced\n"
            term (Si_wal.Ship.seq sh);
          match Slimpad.wal_close app with
          | Ok () -> 0
          | Error msg ->
              Printf.eprintf "error: %s\n" msg;
              1))

let cmd_restore dir at archive out from_bundle =
  let archive =
    Option.value archive ~default:(Workspace.archive_path dir)
  in
  match
    match from_bundle with
    | None -> Ok ()
    | Some file ->
        Result.bind (Si_bundle.read_file file) (fun bytes ->
            Result.map
              (fun (b : Si_wal.Segment.base) ->
                Printf.printf
                  "installed %s as restore base (term %d, seq %d)\n" file
                  b.Si_wal.Segment.base_term b.Si_wal.Segment.base_seq)
              (Si_bundle.to_archive ~archive bytes))
  with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Ok () ->
  let desk, problems = Workspace.load_desktop dir in
  List.iter (Printf.eprintf "warning: %s\n") problems;
  match Slimpad.restore_at desk ~archive ~at with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Ok (app, reached) -> (
      Printf.printf "restored to seq %d (%d pad(s), state digest %s)\n"
        reached
        (List.length (Dmi.pads (Slimpad.dmi app)))
        (Digest.to_hex (Digest.string (Slimpad.snapshot_bytes app)));
      if reached < at then
        Printf.printf "  (archive ends before the requested seq %d)\n" at;
      match out with
      | None -> 0
      | Some out_dir -> (
          if not (Sys.file_exists out_dir) then Unix.mkdir out_dir 0o755;
          match Slimpad.save app (Workspace.pad_store out_dir) with
          | Ok () ->
              Printf.printf "wrote %s\n" (Workspace.pad_store out_dir);
              0
          | Error msg ->
              Printf.eprintf "error: %s\n" msg;
              1))

let cmd_crash_matrix dir seed json =
  let outcomes = Si_workload.Crash_matrix.run ~seed ~dir () in
  print_string (Si_workload.Crash_matrix.to_text outcomes);
  (match json with
  | None -> ()
  | Some file ->
      Out_channel.with_open_bin file (fun oc ->
          Out_channel.output_string oc
            (Si_workload.Crash_matrix.to_json outcomes)));
  if Si_workload.Crash_matrix.all_passed outcomes then 0 else 1

(* -------------------------------------------------------------- serving *)

module Serve = Si_serve.Server
module Sclient = Si_serve.Client
module Proto = Si_serve.Proto
module Loadgen = Si_workload.Loadgen

let cmd_archive_prune dir keep archive =
  let archive = Option.value archive ~default:(Workspace.archive_path dir) in
  match Si_wal.Segment.prune ~dir:archive ~keep with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Ok r ->
      Printf.printf "cutoff seq %d: pruned %d segment(s) and %d base(s)\n"
        r.Si_wal.Segment.prune_cutoff
        (List.length r.Si_wal.Segment.pruned_segments)
        (List.length r.Si_wal.Segment.pruned_bases);
      List.iter
        (fun f -> Printf.printf "  removed %s\n" f)
        (r.Si_wal.Segment.pruned_segments @ r.Si_wal.Segment.pruned_bases);
      0

(* The replica workspace the server routes fresh reads to; created on
   first use, resumed afterwards. Sharded store: server reads run on
   worker domains while shipping applies records. *)
let open_replica_dir rdir =
  (if not (Sys.file_exists rdir) then
     try Unix.mkdir rdir 0o755 with Unix.Unix_error _ -> ());
  let desk, problems = Workspace.load_desktop rdir in
  List.iter (Printf.eprintf "warning: %s\n") problems;
  Slimpad.open_replica
    ~store:(module Si_triple.Store.Sharded_columnar)
    desk (Workspace.wal_path rdir)

let cmd_serve dir endpoint workers max_lag replica_of =
  let fail msg =
    Printf.eprintf "error: %s\n" msg;
    1
  in
  match split_endpoint endpoint with
  | Error msg -> fail msg
  | Ok (addr, port) -> (
      if not (Workspace.wal_present dir) then
        fail "workspace is not journaled (run wal-enable first)"
      else
        match
          Workspace.open_workspace
            ~store:(module Si_triple.Store.Sharded_columnar) dir
        with
        | Error msg -> fail msg
        | Ok app -> (
            let closing code =
              match Slimpad.wal_close app with
              | Ok () -> code
              | Error msg ->
                  Printf.eprintf "error: %s\n" msg;
                  max code 1
            in
            (* With --replica-of: ship into the archive from a
               background domain and serve bounded-staleness reads from
               the replica. *)
            let follower =
              match replica_of with
              | None -> Ok None
              | Some rdir -> (
                  match open_replica_dir rdir with
                  | Error _ as e -> e
                  | Ok (rapp, _) -> (
                      let r = Option.get (Slimpad.replica rapp) in
                      let attached =
                        Result.bind
                          (Slimpad.start_shipping ~async:true app
                             ~archive:(Workspace.archive_path dir))
                          (fun () ->
                            Result.bind
                              (Slimpad.attach_follower app ~name:rdir
                                 (Si_wal.Replica.transport r))
                              (fun () -> Slimpad.ship app))
                      in
                      match attached with
                      | Error e ->
                          ignore (Slimpad.wal_close rapp);
                          Error e
                      | Ok () -> Ok (Some (rapp, r))))
            in
            match follower with
            | Error msg ->
                Printf.eprintf "error: %s\n" msg;
                closing 1
            | Ok follower -> (
                let config =
                  {
                    Serve.default_config with
                    addr;
                    port;
                    workers;
                    max_lag;
                    workspace = Some dir;
                  }
                in
                match Serve.start ~config ?follower app with
                | Error msg ->
                    (match follower with
                    | Some (rapp, _) -> ignore (Slimpad.wal_close rapp)
                    | None -> ());
                    Printf.eprintf "error: %s\n" msg;
                    closing 1
                | Ok server ->
                    Printf.printf
                      "pad server on %s:%d (%d worker(s)%s); stop with \
                       Ctrl-C or `slimpad client shutdown`\n%!"
                      addr (Serve.port server) (max 1 workers)
                      (match follower with
                      | Some _ -> ", replica-aware reads"
                      | None -> "");
                    let stop = ref false in
                    let previous =
                      Sys.signal Sys.sigint
                        (Sys.Signal_handle (fun _ -> stop := true))
                    in
                    while (not !stop) && not (Serve.stopped server) do
                      try Unix.sleepf 0.05
                      with Unix.Unix_error (Unix.EINTR, _, _) -> ()
                    done;
                    Sys.set_signal Sys.sigint previous;
                    Serve.stop server;
                    let code =
                      match follower with
                      | None -> 0
                      | Some (rapp, r) -> (
                          (* Final round: the replica holds everything
                             acknowledged before the stop. *)
                          let drained = Slimpad.ship app in
                          Printf.printf "replica applied %d (lag %d)\n"
                            (Si_wal.Replica.applied r)
                            (Si_wal.Replica.lag r);
                          match (Slimpad.wal_close rapp, drained) with
                          | Ok (), Ok () -> 0
                          | Ok (), Error msg | Error msg, _ ->
                              Printf.eprintf "error: %s\n" msg;
                              1)
                    in
                    Printf.printf "server stopped\n";
                    closing code)))

(* ----- typed client ----- *)

let with_server_client endpoint f =
  match split_endpoint endpoint with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Ok (addr, port) -> (
      match Sclient.connect ~addr ~port () with
      | Error msg ->
          Printf.eprintf "error: cannot reach %s:%d: %s\n" addr port msg;
          1
      | Ok c ->
          Fun.protect ~finally:(fun () -> Sclient.close c) (fun () -> f c))

let unexpected () =
  Printf.eprintf "error: unexpected response\n";
  1

let one_request endpoint req k =
  with_server_client endpoint (fun c ->
      match Sclient.request c req with
      | Error msg ->
          Printf.eprintf "error: %s\n" msg;
          1
      | Ok (Proto.Err e) ->
          Printf.eprintf "server error: %s\n" e;
          1
      | Ok (Proto.Overloaded e) ->
          (* Typed backpressure, not a failure: exit 2 so scripts can
             tell "retry later" from "broken". *)
          Printf.printf "overloaded: %s\n" e;
          2
      | Ok resp -> k resp)

let build_obj resource literal =
  match (resource, literal) with
  | Some _, Some _ -> Error "--resource and --literal are mutually exclusive"
  | Some r, None -> Ok (Some (Si_triple.Triple.Resource r))
  | None, Some l -> Ok (Some (Si_triple.Triple.Literal l))
  | None, None -> Ok None

let build_pattern subject predicate resource literal =
  Result.map
    (fun p_object ->
      { Proto.p_subject = subject; p_predicate = predicate; p_object })
    (build_obj resource literal)

let client_ping endpoint =
  one_request endpoint Proto.Ping (function
    | Proto.Pong ->
        print_endline "pong";
        0
    | _ -> unexpected ())

let client_pads endpoint =
  one_request endpoint Proto.Pads (function
    | Proto.Pad_list names ->
        List.iter print_endline names;
        0
    | _ -> unexpected ())

let client_open endpoint name =
  one_request endpoint (Proto.Open_pad name) (function
    | Proto.Ok_done ->
        Printf.printf "opened %s\n" name;
        0
    | _ -> unexpected ())

let client_select endpoint subject predicate resource literal limit =
  match build_pattern subject predicate resource literal with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Ok pattern ->
      one_request endpoint (Proto.Select { pattern; limit }) (function
        | Proto.Triples rows ->
            List.iter print_endline rows;
            0
        | _ -> unexpected ())

let client_count endpoint subject predicate resource literal =
  match build_pattern subject predicate resource literal with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Ok pattern ->
      one_request endpoint (Proto.Count pattern) (function
        | Proto.Count_is n ->
            Printf.printf "%d\n" n;
            0
        | _ -> unexpected ())

let client_query endpoint text =
  one_request endpoint (Proto.Query text) (function
    | Proto.Rows rows ->
        List.iter print_endline rows;
        Printf.printf "%d row(s)\n" (List.length rows);
        0
    | _ -> unexpected ())

let client_edit ~remove endpoint subject predicate resource literal =
  match build_obj resource literal with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Ok None ->
      Printf.eprintf "error: pass --resource or --literal\n";
      1
  | Ok (Some o) ->
      let triple = Si_triple.Triple.make subject predicate o in
      let req = if remove then Proto.Remove triple else Proto.Add triple in
      one_request endpoint req (function
        | Proto.Ok_done ->
            print_endline (if remove then "removed" else "added");
            0
        | _ -> unexpected ())

let client_resolve endpoint pad scrap =
  one_request endpoint (Proto.Resolve { pad; scrap }) (function
    | Proto.Resolved text ->
        print_endline text;
        0
    | _ -> unexpected ())

let client_stats endpoint =
  one_request endpoint Proto.Stats (function
    | Proto.Stats_json json ->
        print_endline json;
        0
    | _ -> unexpected ())

let client_job endpoint kind count predicate bundle with_bases strict
    interactive =
  let bundle_path k =
    match bundle with
    | Some path -> Ok path
    | None -> Error (Printf.sprintf "%s: --bundle FILE is required" k)
  in
  let kind =
    match kind with
    | "compact" -> Ok Proto.Compact
    | "checkpoint" -> Ok Proto.Checkpoint
    | "lint" -> Ok Proto.Lint
    | "bulk-add" -> Ok (Proto.Bulk_add { count; predicate })
    | "capture" ->
        Result.map
          (fun path -> Proto.Capture { path; with_bases })
          (bundle_path "capture")
    | "apply" ->
        Result.map
          (fun path -> Proto.Apply { path; strict })
          (bundle_path "apply")
    | k ->
        Error
          (Printf.sprintf
             "unknown job kind %S (one of compact, checkpoint, lint, \
              bulk-add, capture, apply)"
             k)
  in
  match kind with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Ok kind ->
      let priority =
        if interactive then Proto.Interactive else Proto.Bulk
      in
      one_request endpoint (Proto.Submit { kind; priority }) (function
        | Proto.Accepted id ->
            Printf.printf "job %d accepted\n" id;
            0
        | _ -> unexpected ())

let client_job_status endpoint id wait_done =
  with_server_client endpoint (fun c ->
      let rec poll () =
        match Sclient.request c (Proto.Job_status id) with
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            1
        | Ok (Proto.Err e) ->
            Printf.eprintf "server error: %s\n" e;
            1
        | Ok (Proto.Job { job; state }) -> (
            match state with
            | (Proto.Queued | Proto.Running) when wait_done ->
                (try Unix.sleepf 0.05
                 with Unix.Unix_error (Unix.EINTR, _, _) -> ());
                poll ()
            | Proto.Queued ->
                Printf.printf "job %d: queued\n" job;
                0
            | Proto.Running ->
                Printf.printf "job %d: running\n" job;
                0
            | Proto.Done summary ->
                Printf.printf "job %d: done (%s)\n" job summary;
                0
            | Proto.Failed reason ->
                Printf.printf "job %d: failed (%s)\n" job reason;
                1)
        | Ok _ -> unexpected ()
      in
      poll ())

let client_workload endpoint rate requests clients bulk json =
  match split_endpoint endpoint with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      1
  | Ok (addr, port) ->
      let mix = { Loadgen.default_mix with bulk } in
      let r = Loadgen.run ~clients ~mix ~addr ~port ~rate ~requests () in
      Printf.printf "sent %d: %d ok, %d overloaded, %d error(s)\n"
        r.Loadgen.sent r.Loadgen.ok r.Loadgen.overloaded r.Loadgen.errors;
      Printf.printf "rtt p50 %.0f us, p90 %.0f us, p99 %.0f us\n"
        (Loadgen.quantile_ns r 0.5 /. 1e3)
        (Loadgen.quantile_ns r 0.9 /. 1e3)
        (Loadgen.quantile_ns r 0.99 /. 1e3);
      (match json with
      | None -> ()
      | Some file ->
          Out_channel.with_open_bin file (fun oc ->
              Out_channel.output_string oc (Loadgen.to_json r)));
      if r.Loadgen.errors > 0 then 1 else 0

let client_shutdown endpoint =
  one_request endpoint Proto.Shutdown (function
    | Proto.Closing ->
        print_endline "server closing";
        0
    | _ -> unexpected ())

(* -------------------------------------------------------------- cmdliner *)

open Cmdliner

let dir_arg =
  Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR"
       ~doc:"Workspace directory.")

let new_dir_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
       ~doc:"Workspace directory to create.")

let pad_opt =
  Arg.(value & opt (some string) None & info [ "pad" ] ~docv:"NAME"
       ~doc:"Pad to operate on (default: the first pad).")

let init_cmd =
  let scenario =
    Arg.(value & opt string "icu"
         & info [ "scenario" ] ~docv:"NAME"
           ~doc:"One of icu, atc, concordance, empty.")
  in
  let seed =
    Arg.(value & opt int 2001 & info [ "seed" ] ~docv:"N"
         ~doc:"Workload generator seed.")
  in
  let wal =
    Arg.(value & flag
         & info [ "wal" ]
             ~doc:"Use journaled persistence (a write-ahead log in pad.wal) \
                   instead of the whole-file pad.xml.")
  in
  Cmd.v
    (Cmd.info "init" ~doc:"Create a workspace with a generated scenario")
    Term.(const cmd_init $ new_dir_arg $ scenario $ seed $ wal)

let show_cmd =
  Cmd.v
    (Cmd.info "show" ~doc:"Render a pad")
    Term.(const cmd_show $ dir_arg $ pad_opt)

let pads_cmd =
  Cmd.v (Cmd.info "pads" ~doc:"List pads") Term.(const cmd_pads $ dir_arg)

let docs_cmd =
  Cmd.v
    (Cmd.info "docs" ~doc:"List base documents on the desktop")
    Term.(const cmd_docs $ dir_arg)

let add_pad_cmd =
  let name_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NAME")
  in
  Cmd.v
    (Cmd.info "add-pad" ~doc:"Create a new pad")
    Term.(const cmd_add_pad $ dir_arg $ name_arg)

let parent_opt =
  Arg.(value & opt (some string) None & info [ "parent" ] ~docv:"BUNDLE"
       ~doc:"Parent bundle name (default: the pad's root).")

let add_bundle_cmd =
  let name_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NAME")
  in
  Cmd.v
    (Cmd.info "add-bundle" ~doc:"Create a bundle")
    Term.(const cmd_add_bundle $ dir_arg $ pad_opt $ parent_opt $ name_arg)

let add_scrap_cmd =
  let name_arg =
    Arg.(value & opt string "" & info [ "name" ] ~docv:"LABEL"
         ~doc:"Scrap label (default: the marked content).")
  in
  let mark_type =
    Arg.(required & opt (some string) None & info [ "type" ] ~docv:"TYPE"
         ~doc:"Mark type: excel, xml, text, word, slides, pdf, html.")
  in
  let fields =
    Arg.(value & opt_all string [] & info [ "field"; "f" ] ~docv:"K=V"
         ~doc:"Mark address field, repeatable (e.g. -f fileName=labs.xml).")
  in
  Cmd.v
    (Cmd.info "add-scrap" ~doc:"Create a scrap marking into a base document")
    Term.(const cmd_add_scrap $ dir_arg $ pad_opt $ parent_opt $ name_arg
          $ mark_type $ fields)

let resolve_cmd =
  let label =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"SCRAP"
         ~doc:"Scrap label (substring match).")
  in
  let behaviour =
    Arg.(value & opt string "navigate" & info [ "behaviour"; "b" ]
         ~docv:"B" ~doc:"navigate, extract, or inplace.")
  in
  Cmd.v
    (Cmd.info "resolve"
       ~doc:"Double-click a scrap: follow its mark into the base document")
    Term.(const cmd_resolve $ dir_arg $ pad_opt $ label $ behaviour)

let annotate_cmd =
  let label =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"SCRAP")
  in
  let text =
    Arg.(required & pos 2 (some string) None & info [] ~docv:"TEXT")
  in
  Cmd.v
    (Cmd.info "annotate" ~doc:"Attach an annotation to a scrap")
    Term.(const cmd_annotate $ dir_arg $ pad_opt $ label $ text)

let link_cmd =
  let from_ =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FROM")
  in
  let to_ = Arg.(required & pos 2 (some string) None & info [] ~docv:"TO") in
  let label =
    Arg.(value & opt (some string) None & info [ "label" ] ~docv:"TEXT")
  in
  Cmd.v
    (Cmd.info "link" ~doc:"Link two scraps")
    Term.(const cmd_link $ dir_arg $ pad_opt $ from_ $ to_ $ label)

let drift_cmd =
  let refresh =
    Arg.(value & flag & info [ "refresh" ]
         ~doc:"Re-cache excerpts for stale scraps.")
  in
  Cmd.v
    (Cmd.info "drift"
       ~doc:"Report scraps whose base elements changed or vanished")
    Term.(const cmd_drift $ dir_arg $ pad_opt $ refresh)

let query_cmd =
  let text =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY"
         ~doc:"e.g. 'select ?n where { ?s scrapName ?n }'")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Query the superimposed layer")
    Term.(const cmd_query $ dir_arg $ text)

let validate_cmd =
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Check the store against the Bundle-Scrap model")
    Term.(const cmd_validate $ dir_arg)

let stats_cmd =
  let json =
    Arg.(value & flag & info [ "json" ]
         ~doc:"Emit workspace and instrumentation statistics as JSON.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Workspace statistics and per-layer instrumentation counters")
    Term.(const cmd_stats $ dir_arg $ json)

let trace_cmd =
  let gesture =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"GESTURE"
         ~doc:"What to trace: open, query, or resolve.")
  in
  let arg =
    Arg.(value & pos 2 (some string) None & info [] ~docv:"ARG"
         ~doc:"The query text (for query) or scrap label (for resolve).")
  in
  let no_timings =
    Arg.(value & flag & info [ "no-timings" ]
         ~doc:"Print the span tree without durations (stable output).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run one gesture with span tracing on and print the span tree \
             with per-layer timings")
    Term.(const cmd_trace $ dir_arg $ gesture $ arg $ no_timings)

let health_cmd =
  let inject_rate =
    Arg.(value & opt (some float) None & info [ "inject-rate" ] ~docv:"P"
         ~doc:"Inject base-source faults with probability P (0..1), for \
               exercising the breakers.")
  in
  let inject_source =
    Arg.(value & opt_all string [] & info [ "inject-source" ] ~docv:"NAME"
         ~doc:"Restrict injection to this document (repeatable; default: \
               every document).")
  in
  let seed =
    Arg.(value & opt int 2001 & info [ "seed" ] ~docv:"N"
         ~doc:"Fault-injection seed (same seed: same outage replay).")
  in
  let passes =
    Arg.(value & opt int 1 & info [ "passes" ] ~docv:"N"
         ~doc:"Resolution sweeps over the pad before reporting (extra \
               passes drive breakers through trip/cool-down/probe).")
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:"Resolve every scrap through the resilient path and report \
             per-source circuit-breaker state")
    Term.(const cmd_health $ dir_arg $ pad_opt $ inject_rate
          $ inject_source $ seed $ passes)

let import_cmd =
  let file =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"FILE"
         ~doc:"A pad store saved by another workspace (its pad.xml).")
  in
  let pad_name =
    Arg.(value & opt (some string) None & info [ "from-pad" ] ~docv:"NAME"
         ~doc:"Which pad of the file to import (default: its first).")
  in
  let rename =
    Arg.(value & opt (some string) None & info [ "as" ] ~docv:"NAME"
         ~doc:"Name for the imported copy.")
  in
  Cmd.v
    (Cmd.info "import"
       ~doc:"Import (copy) a pad shared from another workspace")
    Term.(const cmd_import $ dir_arg $ file $ pad_name $ rename)

let template_cmd =
  let bundle =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"BUNDLE")
  in
  let off =
    Arg.(value & flag & info [ "off" ] ~doc:"Clear the template flag.")
  in
  Cmd.v
    (Cmd.info "template" ~doc:"Mark (or unmark) a bundle as a template")
    Term.(const cmd_template $ dir_arg $ pad_opt $ bundle $ off)

let instantiate_cmd =
  let template =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"TEMPLATE")
  in
  let new_name =
    Arg.(required & pos 2 (some string) None & info [] ~docv:"NAME")
  in
  Cmd.v
    (Cmd.info "instantiate"
       ~doc:"Stamp out a copy of a template bundle (§6 extension)")
    Term.(const cmd_instantiate $ dir_arg $ pad_opt $ template $ new_name
          $ parent_opt)

let export_html_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Write to FILE instead of stdout.")
  in
  Cmd.v
    (Cmd.info "export-html"
       ~doc:"Render a pad as a standalone HTML page (2-D layout)")
    Term.(const cmd_export_html $ dir_arg $ pad_opt $ out)

let model_cmd =
  Cmd.v
    (Cmd.info "model"
       ~doc:"Print the Bundle-Scrap data model in SLIM-ML syntax")
    Term.(const cmd_model $ dir_arg)

let history_cmd =
  let last =
    Arg.(value & opt (some int) None & info [ "last"; "n" ] ~docv:"N"
         ~doc:"Show only the last N operations.")
  in
  Cmd.v
    (Cmd.info "history"
       ~doc:"The pad's construction history (the DMI operation journal)")
    Term.(const cmd_history $ dir_arg $ last)

let lint_cmd =
  let target =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"TARGET"
         ~doc:"Workspace directory, or a bare pad store file (a pad.xml); \
               optional when --bundle is given.")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
         ~doc:"Emit diagnostics as a JSON array instead of text.")
  in
  let fix =
    Arg.(value & flag & info [ "fix" ]
         ~doc:"Apply the mechanically safe repairs (drop exact-duplicate \
               triples, GC orphaned layout triples), persist them, and \
               re-lint.")
  in
  let archive =
    Arg.(value & opt (some dir) None & info [ "archive" ] ~docv:"DIR"
         ~doc:"Shipping archive directory to verify offline (SL306); \
               default: the workspace's pad.archive when present.")
  in
  let bundle =
    Arg.(value & opt (some string) None & info [ "bundle" ] ~docv:"FILE"
         ~doc:"Capture bundle to verify offline (SL308: container \
               framing, section CRCs, schema version, dangling \
               excerpts); works with or without a TARGET.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Static analysis of the store, marks, write-ahead log, \
             shipping archive, and capture bundles (read-only unless \
             --fix)")
    Term.(const cmd_lint $ target $ json $ fix $ archive $ bundle)

let capture_cmd =
  let out =
    Arg.(required & opt (some string) None & info [ "o"; "output" ]
         ~docv:"FILE" ~doc:"Where to write the bundle artifact.")
  in
  let with_bases =
    Arg.(value & flag & info [ "with-bases" ]
         ~doc:"Also pack every base document some mark addresses; a \
               document that fails to read becomes a report problem, \
               never an abort.")
  in
  Cmd.v
    (Cmd.info "capture"
       ~doc:"Package the workspace — triples, metamodel, marks, cached \
             excerpts, optionally base documents — into one portable, \
             CRC-framed bundle file")
    Term.(const cmd_capture $ dir_arg $ out $ with_bases)

let apply_cmd =
  (* Not [dir_arg]: applying into a directory that does not exist yet is
     the migration path (the bundle recreates the workspace), so the
     converter must not insist on an existing directory. *)
  let target_dir =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
         ~doc:"Workspace directory (created when missing).")
  in
  let file =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"BUNDLE"
         ~doc:"The bundle file to install.")
  in
  let excerpts =
    Arg.(value & flag & info [ "excerpts" ]
         ~doc:"Restore the bundle's cached excerpts onto installed marks \
               (default: marks install blank and re-resolve from base \
               documents on demand).")
  in
  let bases =
    Arg.(value & flag & info [ "bases" ]
         ~doc:"Restore captured base documents into the workspace \
               (existing files are never overwritten).")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ]
         ~doc:"Lint the bundle's content in a scratch pad first and \
               refuse to apply when any error-severity diagnostic \
               fires.")
  in
  Cmd.v
    (Cmd.info "apply"
       ~doc:"Install a capture bundle into the workspace: install-only \
             (nothing overwritten), journaled when the workspace has a \
             WAL, per-mark failures never block the rest")
    Term.(const cmd_apply $ target_dir $ file $ excerpts $ bases $ strict)

let wal_enable_cmd =
  Cmd.v
    (Cmd.info "wal-enable"
       ~doc:"Convert a workspace to journaled persistence (write-ahead log)")
    Term.(const cmd_wal_enable $ dir_arg)

let wal_inspect_cmd =
  Cmd.v
    (Cmd.info "wal-inspect"
       ~doc:"Examine a workspace's write-ahead log and snapshot (read-only)")
    Term.(const cmd_wal_inspect $ dir_arg)

let wal_compact_cmd =
  Cmd.v
    (Cmd.info "wal-compact"
       ~doc:"Fold the log into a fresh snapshot and truncate it")
    Term.(const cmd_wal_compact $ dir_arg)

let replicate_cmd =
  let serve =
    Arg.(value & opt (some int) None & info [ "serve" ] ~docv:"PORT"
         ~doc:"Follower mode: open the workspace as a replica and serve \
               the shipping protocol on PORT (0 picks one) until \
               interrupted.")
  in
  let until_seq =
    Arg.(value & opt (some int) None & info [ "until-seq" ] ~docv:"N"
         ~doc:"With --serve: exit once the applied prefix reaches N (how \
               a script waits for catch-up).")
  in
  let followers =
    Arg.(value & opt_all string [] & info [ "to" ] ~docv:"HOST:PORT"
         ~doc:"Leader mode, repeatable: attach the follower serving at \
               HOST:PORT and ship the journaled workspace's log to it.")
  in
  let checkpoint =
    Arg.(value & flag & info [ "checkpoint" ]
         ~doc:"After shipping, seal the open segment and cut a fresh base \
               snapshot — a complete restore point in the archive.")
  in
  let bootstrap =
    Arg.(value & opt (some string) None & info [ "bootstrap" ] ~docv:"FILE"
         ~doc:"With --serve: seed a fresh replica from a capture bundle \
               before serving — it starts at the bundle's replication \
               watermark instead of replaying from seq 1. Refused when \
               the replica already has history.")
  in
  Cmd.v
    (Cmd.info "replicate"
       ~doc:"WAL shipping over sockets: lead (--to, one push round per \
             invocation, archive in pad.archive) or follow (--serve)")
    Term.(const cmd_replicate $ dir_arg $ serve $ until_seq $ followers
          $ checkpoint $ bootstrap)

let promote_cmd =
  Cmd.v
    (Cmd.info "promote"
       ~doc:"Failover: promote a replica workspace to leader — bump the \
             term, re-enable local writes, start shipping; the old leader \
             is fenced on its next frame")
    Term.(const cmd_promote $ dir_arg)

let restore_cmd =
  let at =
    Arg.(required & opt (some int) None & info [ "at" ] ~docv:"SEQ"
         ~doc:"Target sequence number (the stream position to rewind to).")
  in
  let archive =
    Arg.(value & opt (some dir) None & info [ "archive" ] ~docv:"DIR"
         ~doc:"Shipping archive to restore from (default: the workspace's \
               pad.archive).")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"DIR"
         ~doc:"Write the restored store as DIR/pad.xml (DIR is created \
               when missing); default: report only.")
  in
  let from_bundle =
    Arg.(value & opt (some string) None
         & info [ "from-bundle" ] ~docv:"FILE"
             ~doc:"First install the capture bundle into the archive as a \
                   base snapshot at its replication watermark; the restore \
                   then treats it like any leader-cut base.")
  in
  Cmd.v
    (Cmd.info "restore"
       ~doc:"Point-in-time recovery: rebuild the store exactly as it was \
             at --at SEQ from the shipping archive's base snapshots and \
             sealed segments")
    Term.(const cmd_restore $ dir_arg $ at $ archive $ out $ from_bundle)

let crash_matrix_cmd =
  let dir =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
         ~doc:"Scratch directory for the scenario workspaces (created \
               when missing, left behind for inspection).")
  in
  let seed =
    Arg.(value & opt int 2001 & info [ "seed" ] ~docv:"N"
         ~doc:"Fault-schedule seed (same seed: same replay).")
  in
  let json =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
         ~doc:"Also write the outcomes as a JSON array to FILE (the CI \
               artifact).")
  in
  Cmd.v
    (Cmd.info "crash-matrix"
       ~doc:"Run the replication fault schedules (torn segments, crashes \
             mid-apply and mid-ship, duplicated/reordered/mangled frames, \
             failover) and check the no-lost-acks, prefix-consistency, \
             and convergence invariants")
    Term.(const cmd_crash_matrix $ dir $ seed $ json)

let archive_prune_cmd =
  let keep =
    Arg.(value & opt int 0 & info [ "keep" ] ~docv:"N"
         ~doc:"Keep a window of N records below the newest base snapshot \
               (default 0: prune everything the base makes redundant).")
  in
  let archive =
    Arg.(value & opt (some dir) None & info [ "archive" ] ~docv:"DIR"
         ~doc:"Shipping archive to prune (default: the workspace's \
               pad.archive).")
  in
  Cmd.v
    (Cmd.info "archive-prune"
       ~doc:"Retention: delete shipping-archive segments and bases made \
             redundant by the newest base snapshot (restores above the \
             cutoff are unaffected)")
    Term.(const cmd_archive_prune $ dir_arg $ keep $ archive)

let serve_cmd =
  let endpoint =
    Arg.(value & opt string "127.0.0.1:7070"
         & info [ "addr" ] ~docv:"HOST:PORT"
             ~doc:"Listen endpoint (port 0 picks an ephemeral one).")
  in
  let workers =
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N"
         ~doc:"Worker domains — the number of concurrently served \
               clients.")
  in
  let max_lag =
    Arg.(value & opt int 64 & info [ "max-lag" ] ~docv:"N"
         ~doc:"With --replica-of: serve reads from the replica only \
               while it is at most N records behind.")
  in
  let replica_of =
    Arg.(value & opt (some string) None
         & info [ "replica-of" ] ~docv:"DIR"
             ~doc:"Replica workspace (created when missing): ship the \
                   log to it from a background domain and route fresh \
                   reads there.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve the journaled workspace to concurrent network clients \
             (interactive requests are prioritized over background jobs; \
             a full queue answers Overloaded, never blocks)")
    Term.(const cmd_serve $ dir_arg $ endpoint $ workers $ max_lag
          $ replica_of)

let client_cmd =
  let endpoint =
    Arg.(value & opt string "127.0.0.1:7070"
         & info [ "to" ] ~docv:"HOST:PORT" ~doc:"Server endpoint.")
  in
  let subject =
    Arg.(value & opt (some string) None & info [ "subject" ] ~docv:"ID")
  in
  let predicate =
    Arg.(value & opt (some string) None & info [ "predicate" ] ~docv:"NAME")
  in
  let resource =
    Arg.(value & opt (some string) None & info [ "resource" ] ~docv:"ID"
         ~doc:"Object as a resource id.")
  in
  let literal =
    Arg.(value & opt (some string) None & info [ "literal" ] ~docv:"TEXT"
         ~doc:"Object as a literal.")
  in
  let subject_pos =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SUBJECT")
  in
  let predicate_pos =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"PREDICATE")
  in
  let ping =
    Cmd.v (Cmd.info "ping" ~doc:"Round-trip check")
      Term.(const client_ping $ endpoint)
  in
  let pads =
    Cmd.v (Cmd.info "pads" ~doc:"List the served pads")
      Term.(const client_pads $ endpoint)
  in
  let open_ =
    let pad_name =
      Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME")
    in
    Cmd.v (Cmd.info "open" ~doc:"Attach a pad by name, creating it if absent")
      Term.(const client_open $ endpoint $ pad_name)
  in
  let select =
    let limit =
      Arg.(value & opt int 0 & info [ "limit" ] ~docv:"N"
           ~doc:"At most N rows (0: all).")
    in
    Cmd.v (Cmd.info "select" ~doc:"Select triples by fixing any fields")
      Term.(const client_select $ endpoint $ subject $ predicate $ resource
            $ literal $ limit)
  in
  let count =
    Cmd.v (Cmd.info "count" ~doc:"Count triples matching a pattern")
      Term.(const client_count $ endpoint $ subject $ predicate $ resource
            $ literal)
  in
  let query =
    let text =
      Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY")
    in
    Cmd.v (Cmd.info "query" ~doc:"Run a declarative query on the server")
      Term.(const client_query $ endpoint $ text)
  in
  let add =
    Cmd.v (Cmd.info "add" ~doc:"Add one triple (durable before the reply)")
      Term.(const (client_edit ~remove:false) $ endpoint $ subject_pos
            $ predicate_pos $ resource $ literal)
  in
  let remove =
    Cmd.v (Cmd.info "remove" ~doc:"Remove one triple")
      Term.(const (client_edit ~remove:true) $ endpoint $ subject_pos
            $ predicate_pos $ resource $ literal)
  in
  let resolve =
    let pad =
      Arg.(required & pos 0 (some string) None & info [] ~docv:"PAD")
    in
    let scrap =
      Arg.(required & pos 1 (some string) None & info [] ~docv:"SCRAP")
    in
    Cmd.v (Cmd.info "resolve" ~doc:"Resolve a scrap's mark on the server")
      Term.(const client_resolve $ endpoint $ pad $ scrap)
  in
  let stats =
    Cmd.v (Cmd.info "stats" ~doc:"The server's metrics registry as JSON")
      Term.(const client_stats $ endpoint)
  in
  let job =
    let kind =
      Arg.(required & pos 0 (some string) None & info [] ~docv:"KIND"
           ~doc:"One of compact, checkpoint, lint, bulk-add, capture, \
                 apply.")
    in
    let count =
      Arg.(value & opt int 1024 & info [ "count" ] ~docv:"N"
           ~doc:"bulk-add: how many triples to import.")
    in
    let predicate =
      Arg.(value & opt string "bulkgen" & info [ "predicate" ] ~docv:"NAME"
           ~doc:"bulk-add: predicate for the generated triples.")
    in
    let bundle =
      Arg.(value & opt (some string) None & info [ "bundle" ] ~docv:"FILE"
           ~doc:"capture/apply: the bundle file on the server's \
                 filesystem.")
    in
    let with_bases =
      Arg.(value & flag & info [ "with-bases" ]
           ~doc:"capture: pack base documents from the served workspace.")
    in
    let strict =
      Arg.(value & flag & info [ "strict" ]
           ~doc:"apply: refuse a bundle whose content lints with errors.")
    in
    let interactive =
      Arg.(value & flag & info [ "interactive" ]
           ~doc:"Submit at interactive priority instead of bulk.")
    in
    Cmd.v
      (Cmd.info "job"
         ~doc:"Submit a background job (bounded queue: a full one \
               answers Overloaded)")
      Term.(const client_job $ endpoint $ kind $ count $ predicate
            $ bundle $ with_bases $ strict $ interactive)
  in
  let job_status =
    let id = Arg.(required & pos 0 (some int) None & info [] ~docv:"ID") in
    let wait =
      Arg.(value & flag & info [ "wait" ]
           ~doc:"Poll until the job finishes or fails.")
    in
    Cmd.v (Cmd.info "job-status" ~doc:"Query (or await) a submitted job")
      Term.(const client_job_status $ endpoint $ id $ wait)
  in
  let workload =
    let rate =
      Arg.(value & opt float 200. & info [ "rate" ] ~docv:"R"
           ~doc:"Target arrivals per second (open loop).")
    in
    let requests =
      Arg.(value & opt int 200 & info [ "requests" ] ~docv:"N"
           ~doc:"Total arrivals across all clients.")
    in
    let clients =
      Arg.(value & opt int 2 & info [ "clients" ] ~docv:"N"
           ~doc:"Concurrent connections.")
    in
    let bulk =
      Arg.(value & opt int 0 & info [ "bulk" ] ~docv:"W"
           ~doc:"Bulk-submit weight in the request mix (reads 8, \
                 writes 2).")
    in
    let json =
      Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Also write the tallies and RTT quantiles as JSON (the \
                 CI artifact).")
    in
    Cmd.v
      (Cmd.info "workload"
         ~doc:"Drive a seeded open-loop request mix and report \
               client-observed RTT quantiles")
      Term.(const client_workload $ endpoint $ rate $ requests $ clients
            $ bulk $ json)
  in
  let shutdown =
    Cmd.v (Cmd.info "shutdown" ~doc:"Ask the server to stop")
      Term.(const client_shutdown $ endpoint)
  in
  Cmd.group
    (Cmd.info "client" ~doc:"Talk to a running pad server")
    [
      ping; pads; open_; select; count; query; add; remove; resolve; stats;
      job; job_status; workload; shutdown;
    ]

(* ---------------------------------------------------------------- check *)

(* `slimpad check` — the concurrency sanitizer's built-in exercise.
   One process stands up the whole concurrent stack — a journaled
   sharded-store leader, async WAL shipping into an in-process
   follower, the network server with replica-aware reads and a
   background job runner — and drives it with the open-loop load
   generator (reads, writes, bulk jobs), an explicit ship round, and a
   compaction. That touches every lock class in the declared
   hierarchy; Si_check watches every acquisition and the command fails
   if the observed order graph holds any violation. CI runs this as
   the sanitizer gate; --json emits the graph as the artifact. *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let cmd_check json =
  Si_check.set_enabled true;
  Si_check.reset ();
  let dir = Filename.temp_file "slimpad-check" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let step what = function
    | Ok v -> v
    | Error msg ->
        Printf.eprintf "error: %s: %s\n" what msg;
        exit 2
  in
  let leader, _ =
    step "open leader"
      (Slimpad.open_wal
         ~store:(module Si_triple.Store.Sharded_columnar)
         (Desktop.create ())
         (Filename.concat dir "pad.wal"))
  in
  ignore (Slimpad.new_pad leader "exercised");
  step "start shipping"
    (Slimpad.start_shipping ~segment_records:32 ~async:true leader
       ~archive:(Filename.concat dir "pad.archive"));
  let rapp, _ =
    step "open replica"
      (Slimpad.open_replica
         ~store:(module Si_triple.Store.Sharded_columnar)
         (Desktop.create ())
         (Filename.concat dir "replica.wal"))
  in
  let rep = Option.get (Slimpad.replica rapp) in
  step "attach follower"
    (Slimpad.attach_follower leader ~name:"r1" (Si_wal.Replica.transport rep));
  let config =
    { Serve.default_config with workers = 3; job_capacity = 4 }
  in
  let server =
    step "start server" (Serve.start ~config ~follower:(rapp, rep) leader)
  in
  let load =
    Loadgen.run ~seed:11 ~clients:3
      ~mix:{ Loadgen.reads = 6; writes = 3; bulk = 1 }
      ~port:(Serve.port server) ~rate:600. ~requests:600 ()
  in
  step "ship round" (Slimpad.ship leader);
  Serve.stop server;
  step "stop shipping" (Slimpad.stop_shipping leader);
  step "compact" (Slimpad.wal_compact leader);
  step "close replica" (Slimpad.wal_close rapp);
  step "close leader" (Slimpad.wal_close leader);
  (try rm_rf dir with Sys_error _ -> ());
  let report = Si_check.report () in
  if json then print_string (Si_check.report_json ())
  else begin
    Format.printf "%a@." Si_check.pp_report report;
    Printf.printf "exercise: %d request(s): %d ok, %d overloaded, %d error(s)\n"
      load.Loadgen.sent load.Loadgen.ok load.Loadgen.overloaded
      load.Loadgen.errors
  end;
  if report.Si_check.r_violations = [] then 0 else 1

let check_cmd =
  let json =
    Arg.(value & flag & info [ "json" ]
         ~doc:"Emit the lock-order graph and violations as one JSON \
               document (the CI artifact) instead of the text report.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Run the concurrency sanitizer's built-in exercise (server + \
             background jobs + WAL shipping under load) and report the \
             observed lock-order graph; nonzero exit on any violation")
    Term.(const cmd_check $ json)

let main =
  Cmd.group
    (Cmd.info "slimpad" ~version:"1.0"
       ~doc:"Superimposed scratchpad over heterogeneous base documents")
    [
      init_cmd; show_cmd; pads_cmd; docs_cmd; add_pad_cmd; add_bundle_cmd;
      add_scrap_cmd; resolve_cmd; annotate_cmd; link_cmd; drift_cmd;
      query_cmd; validate_cmd; lint_cmd; stats_cmd; trace_cmd; health_cmd;
      history_cmd; model_cmd;
      import_cmd; export_html_cmd; template_cmd; instantiate_cmd;
      capture_cmd; apply_cmd;
      wal_enable_cmd; wal_inspect_cmd; wal_compact_cmd;
      replicate_cmd; promote_cmd; restore_cmd; crash_matrix_cmd;
      serve_cmd; client_cmd; archive_prune_cmd; check_cmd;
    ]

let () =
  (* The stdlib default clock is CPU time; spans want wall time. *)
  Si_obs.Clock.set (fun () -> int_of_float (Unix.gettimeofday () *. 1e9));
  exit (Cmd.eval' main)
