(** The pad-serving wire protocol.

    Every message is a tagged field list ({!Si_wal.Record.encode_fields})
    framed with the WAL record discipline —
    [u32-le length][u32-le crc32(payload)][payload] — so the transport
    ({!Si_wal.Tcp.recv_frame}) rejects a mangled byte by checksum before
    any parsing, and the decoders below are total: undecodable input is
    an [Error], never an exception. Requests and responses are separate
    codecs; one connection carries one request frame out, one response
    frame back, repeated. *)

type priority = Interactive | Bulk
(** Scheduling class. [Interactive] requests are served ahead of
    [Bulk] background jobs — see {!Jobq}. *)

type pattern = {
  p_subject : string option;
  p_predicate : string option;
  p_object : Si_triple.Triple.obj option;
}
(** A triple selection: fix any subset of fields
    ({!Si_triple.Trim.select}). *)

val any : pattern
(** The all-wildcards pattern. *)

type job_kind =
  | Compact  (** WAL compaction on the served pad. *)
  | Checkpoint  (** Seal + fresh base in the shipping archive. *)
  | Lint  (** Run the lint catalog over the live pad. *)
  | Bulk_add of { count : int; predicate : string }
      (** Bulk import: [count] generated triples under [predicate],
          written in small batches so interactive writes interleave. *)
  | Capture of { path : string; with_bases : bool }
      (** Write a capture bundle of the served pad to [path] on the
          server's filesystem ([Si_bundle.capture_to_file]);
          [with_bases] packs base documents when the server has a
          workspace directory. *)
  | Apply of { path : string; strict : bool }
      (** Install the bundle at [path] into the served pad. [strict]
          rejects a bundle whose content lints with errors before
          touching the pad. *)

type request =
  | Ping
  | Open_pad of string  (** Attach (creating if absent) a pad by name. *)
  | Pads
  | Select of { pattern : pattern; limit : int }  (** [limit <= 0]: all. *)
  | Count of pattern
  | Query of string  (** {!Si_query.Query.parse} syntax. *)
  | Add of Si_triple.Triple.t
  | Remove of Si_triple.Triple.t
  | Resolve of { pad : string; scrap : string }
      (** Resolve the scrap's mark through the served pad. *)
  | Stats
  | Submit of { kind : job_kind; priority : priority }
  | Job_status of int
  | Shutdown

type job_state = Queued | Running | Done of string | Failed of string

type response =
  | Pong
  | Ok_done
  | Pad_list of string list
  | Triples of string list  (** Rendered rows, selection order. *)
  | Count_is of int
  | Rows of string list  (** Rendered query bindings. *)
  | Resolved of string
  | Stats_json of string
  | Accepted of int  (** Job id to poll with [Job_status]. *)
  | Job of { job : int; state : job_state }
  | Overloaded of string
      (** Typed backpressure: the bounded queue is full; retry later.
          The server never blocks an accepting connection on queue
          space. *)
  | Err of string
  | Closing

val encode_request : request -> string
val decode_request : string -> (request, string) result
val encode_response : response -> string
val decode_response : string -> (response, string) result

val request_op : request -> string
(** Short stable operation name, the metric suffix in
    ["server.req.<op>"]. *)
