(* Thin typed client: the replication socket transport already speaks
   the right framing (one CRC-framed request out, one frame back), so
   this is Proto codecs around Si_wal.Tcp. *)

module Tcp = Si_wal.Tcp

type t = Tcp.client

let connect ?addr ~port () = Tcp.connect ?addr ~port ()

let request t req =
  match Tcp.transport t (Proto.encode_request req) with
  | Error _ as e -> e
  | Ok raw -> Proto.decode_response raw

let close = Tcp.close
