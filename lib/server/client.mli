(** Typed client for the pad server: {!Proto} codecs over the
    replication socket transport ({!Si_wal.Tcp}), which already speaks
    the same CRC framing. One connection, strict request/response. *)

type t

val connect : ?addr:string -> port:int -> unit -> (t, string) result

val request : t -> Proto.request -> (Proto.response, string) result
(** [Error] is transport failure (the connection is then dead —
    reconnect); protocol-level refusals arrive as [Err]/[Overloaded]
    responses. *)

val close : t -> unit
