(* A bounded two-class queue with backpressure: pushes never block —
   a full class answers [`Overloaded] immediately and the caller turns
   that into a typed response — and pops serve the interactive class
   exhaustively before touching bulk, so background work can wait
   arbitrarily long but can never delay an interactive item behind it. *)

type 'a t = {
  mutex : Si_check.Lock.t;
  nonempty : Condition.t;
  interactive : 'a Queue.t;
  bulk : 'a Queue.t;
  capacity : int;  (* bound on the interactive class *)
  bulk_capacity : int;
  mutable closed : bool;
  gauge : Si_obs.Gauge.t option;  (* total depth, published on change *)
}

let create ?(capacity = 64) ?(bulk_capacity = 16) ?gauge () =
  if capacity < 1 || bulk_capacity < 1 then
    invalid_arg "Jobq.create: capacities must be positive";
  {
    mutex = Si_check.Lock.create ~class_:"server.jobq";
    nonempty = Condition.create ();
    interactive = Queue.create ();
    bulk = Queue.create ();
    capacity;
    bulk_capacity;
    closed = false;
    gauge;
  }

let locked t f = Si_check.Lock.with_lock t.mutex f

(* Assumes [t.mutex] is held. *)
let publish_depth t =
  match t.gauge with
  | Some g ->
      Si_obs.Gauge.set g (Queue.length t.interactive + Queue.length t.bulk)
  | None -> ()

let push t priority item =
  locked t (fun () ->
      if t.closed then `Closed
      else
        let q, cap =
          match (priority : Proto.priority) with
          | Interactive -> (t.interactive, t.capacity)
          | Bulk -> (t.bulk, t.bulk_capacity)
        in
        if Queue.length q >= cap then `Overloaded
        else begin
          Queue.push item q;
          publish_depth t;
          Condition.signal t.nonempty;
          `Accepted
        end)

let pop t =
  locked t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.interactive) then begin
          let item = Queue.pop t.interactive in
          publish_depth t;
          Some item
        end
        else if not (Queue.is_empty t.bulk) then begin
          let item = Queue.pop t.bulk in
          publish_depth t;
          Some item
        end
        else if t.closed then None
        else begin
          Si_check.Lock.wait t.nonempty t.mutex;
          wait ()
        end
      in
      wait ())

let depth t =
  locked t (fun () -> Queue.length t.interactive + Queue.length t.bulk)

let close t =
  locked t (fun () ->
      t.closed <- true;
      (* Every blocked popper must re-check the flag. *)
      Condition.broadcast t.nonempty)
