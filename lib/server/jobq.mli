(** A bounded two-class (interactive > bulk) queue with backpressure.

    The scheduler primitive behind the pad server: {!push} never blocks
    — a full class answers [`Overloaded] at once, which the server
    turns into a typed {!Proto.response} — and {!pop} drains the
    interactive class exhaustively before bulk, so queued background
    work can never delay an interactive item arriving behind it.
    Consumers block in {!pop} until an item or {!close}. *)

type 'a t

val create :
  ?capacity:int -> ?bulk_capacity:int -> ?gauge:Si_obs.Gauge.t -> unit -> 'a t
(** [capacity] bounds the interactive class (default 64),
    [bulk_capacity] the bulk class (default 16) — separate bounds so a
    bulk flood cannot consume interactive headroom. [gauge] receives
    the total depth on every change (the server passes
    ["server.queue.depth"]).
    @raise Invalid_argument on a non-positive capacity. *)

val push : 'a t -> Proto.priority -> 'a -> [ `Accepted | `Closed | `Overloaded ]
(** Non-blocking enqueue: [`Overloaded] when the class is at capacity
    — the caller reports backpressure instead of waiting. *)

val pop : 'a t -> 'a option
(** Block until an item is available (interactive first) or the queue
    is closed {e and} drained — [None] means shut down; items queued
    before {!close} are still delivered. *)

val depth : 'a t -> int

val close : 'a t -> unit
(** Wake every blocked consumer; further pushes answer [`Closed]. *)
