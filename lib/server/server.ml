(* The pad server: one accept domain feeding a bounded connection
   queue, a fixed pool of worker domains each serving one connection at
   a time (frames are request/response, so concurrency = workers), and
   one job-runner domain draining the background queue.

   Reads run concurrently over the sharded store — and go to the
   attached follower whenever its bounded-staleness guard holds — while
   every mutation serializes through [writer] and syncs the leader's
   WAL before the response, so an acknowledged write is durable.

   Backpressure is typed, never blocking: a full connection queue is
   answered [Overloaded] at accept, a full job queue at submit. A frame
   the transport or parser refuses gets one [Err] response and the
   connection is dropped — a misbehaving peer cannot wedge a worker. *)

module Slimpad = Si_slimpad.Slimpad
module Dmi = Si_slim.Dmi
module Trim = Si_triple.Trim
module Triple = Si_triple.Triple
module Mark = Si_mark.Mark
module Query = Si_query.Query
module Tcp = Si_wal.Tcp
module Replica = Si_wal.Replica

let request_count = Si_obs.Registry.counter "server.request"
let proto_error_count = Si_obs.Registry.counter "server.proto_error"
let overloaded_count = Si_obs.Registry.counter "server.overloaded"
let replica_read_count = Si_obs.Registry.counter "server.read.replica"
let leader_read_count = Si_obs.Registry.counter "server.read.leader"
let sessions_gauge = Si_obs.Registry.gauge "server.sessions"
let queue_gauge = Si_obs.Registry.gauge "server.queue.depth"
let request_latency = Si_obs.Registry.histogram "server.request"

type config = {
  addr : string;
  port : int;
  workers : int;
  pending_connections : int;
  job_capacity : int;
  max_lag : int;
  workspace : string option;
}

let default_config =
  {
    addr = "127.0.0.1";
    port = 0;
    workers = 4;
    pending_connections = 64;
    job_capacity = 8;
    max_lag = 64;
    workspace = None;
  }

type job = { job_id : int; job_kind : Proto.job_kind }

type t = {
  cfg : config;
  leader : Slimpad.t;
  follower : (Slimpad.t * Replica.t) option;
  listen_fd : Unix.file_descr;
  srv_port : int;
  stopping : bool Atomic.t;
  conns : Unix.file_descr Jobq.t;
  jobs : job Jobq.t;
  job_states : (int, Proto.job_state) Hashtbl.t;  (* under job_lock *)
  job_lock : Si_check.Lock.t;
  mutable next_job : int;  (* under job_lock *)
  writer : Si_check.Lock.t;
      (* serializes every mutation through the WAL; persisting (the
         WAL flush) happens inside it by design, so the class is
         io_ok in Si_check.Hierarchy *)
  sessions : (Unix.file_descr, unit) Hashtbl.t;  (* under session_lock *)
  session_lock : Si_check.Lock.t;
  mutable domains : unit Domain.t list;
  mutable joined : bool;
}

let port t = t.srv_port
let locked m f = Si_check.Lock.with_lock m f

let with_writer t f = locked t.writer f

let set_job t id state =
  locked t.job_lock (fun () -> Hashtbl.replace t.job_states id state)

let job_state t id =
  locked t.job_lock (fun () -> Hashtbl.find_opt t.job_states id)

(* A pad without a WAL (tests, scratch servers) still works — writes
   just have nothing to sync. *)
let persist t =
  match Slimpad.wal t.leader with
  | None -> Ok ()
  | Some _ -> Slimpad.wal_sync t.leader

(* --- read routing ---------------------------------------------------- *)

let read_app t =
  match t.follower with
  | Some (fapp, rep) when Replica.fresh_enough rep ~max_lag:t.cfg.max_lag ->
      Si_obs.Counter.incr replica_read_count;
      fapp
  | _ ->
      Si_obs.Counter.incr leader_read_count;
      t.leader

let read_trim t = Dmi.trim (Slimpad.dmi (read_app t))

let take limit rows =
  if limit <= 0 then rows
  else
    let rec go n = function
      | x :: rest when n > 0 -> x :: go (n - 1) rest
      | _ -> []
    in
    go limit rows

(* --- background jobs ------------------------------------------------- *)

let bulk_batch = 16

let run_job t = function
  | Proto.Compact ->
      with_writer t (fun () ->
          Result.map (fun () -> "compacted") (Slimpad.wal_compact t.leader))
  | Proto.Checkpoint ->
      with_writer t (fun () ->
          Result.map
            (fun () -> "checkpointed")
            (Slimpad.ship_checkpoint t.leader))
  | Proto.Lint ->
      (* Read-only over the live stores (shard locks make that safe);
         deliberately outside the writer lock so a long lint pass never
         stalls interactive writes. *)
      let app = t.leader in
      let ctx =
        Si_lint.context ~dmi:(Slimpad.dmi app) ~marks:(Slimpad.marks app)
          ~resilient:(Slimpad.resilient app) ()
      in
      Ok (Printf.sprintf "%d diagnostic(s)" (List.length (Si_lint.run ctx)))
  | Proto.Bulk_add { count; predicate } ->
      (* Small writer-locked batches: interactive writes interleave
         between them instead of waiting out the whole import. *)
      let trim = Dmi.trim (Slimpad.dmi t.leader) in
      let rec go done_ pauses =
        if done_ >= count then
          Ok
            (if pauses = 0 then Printf.sprintf "added %d triple(s)" count
             else
               Printf.sprintf "added %d triple(s), %d yield pause(s)" count
                 pauses)
        else
          let n = min bulk_batch (count - done_) in
          let contended_before = Si_check.Lock.contended t.writer in
          let step =
            with_writer t (fun () ->
                for i = done_ to done_ + n - 1 do
                  let s = Trim.new_id ~prefix:"bulk" trim in
                  ignore
                    (Trim.add trim
                       (Triple.make s predicate
                          (Triple.Literal (string_of_int i))))
                done;
                persist t)
          in
          match step with
          | Ok () ->
              (* Mutexes barge: without a pause the runner re-grabs the
                 writer lock before a blocked interactive write wakes,
                 and the import monopolizes the leader anyway. The lock
                 is free here — the pause happens outside it — and it is
                 taken at all only when someone actually contended during
                 the batch (the instrumented lock counts that for free),
                 so an uncontended import runs at full speed. *)
              if Si_check.Lock.contended t.writer > contended_before then begin
                Si_check.blocking ~kind:"sleep" (fun () ->
                    Unix.sleepf 0.0002);
                go (done_ + n) (pauses + 1)
              end
              else go (done_ + n) pauses
          | Error _ as e -> e
      in
      go 0 0
  | Proto.Capture { path; with_bases } ->
      (* Under the writer lock so the artifact is one consistent cut of
         the pad; the lock's class is io_ok, so writing the file inside
         it is legitimate (same discipline as persist). *)
      let bases =
        match (with_bases, t.cfg.workspace) with
        | true, Some dir -> Some (Si_bundle.Layout.reader ~dir)
        | true, None | false, _ -> None
      in
      with_writer t (fun () ->
          match
            Si_bundle.capture_to_file
              ?workspace_id:t.cfg.workspace ?bases t.leader ~path
          with
          | Error _ as e -> e
          | Ok report ->
              Ok
                (Printf.sprintf
                   "captured %d triple(s), %d mark(s), %d base(s), %d \
                    problem(s)"
                   report.Si_bundle.captured_triples
                   report.Si_bundle.captured_marks
                   report.Si_bundle.captured_bases
                   (List.length report.Si_bundle.capture_problems)))
  | Proto.Apply { path; strict } -> (
      (* Pre-flight outside the writer lock: load the bundle into a
         scratch pad and lint it, so a dirty bundle under [strict] is
         refused before the leader is touched (and a long lint pass
         never stalls interactive writes). *)
      match Si_bundle.read_file path with
      | Error _ as e -> e
      | Ok bytes -> (
          let preflight =
            if not strict then Ok ()
            else
              match
                Slimpad.of_snapshot_bytes (Si_mark.Desktop.create ()) bytes
              with
              | Error e -> Error ("bundle does not load: " ^ e)
              | Ok scratch ->
                  let ctx =
                    Si_lint.context
                      ~dmi:(Slimpad.dmi scratch)
                      ~marks:(Slimpad.marks scratch)
                      ()
                  in
                  let errors =
                    Si_lint.count Si_lint.Error (Si_lint.run ctx)
                  in
                  if errors = 0 then Ok ()
                  else
                    Error
                      (Printf.sprintf
                         "bundle is dirty: %d lint error(s); not applied"
                         errors)
          in
          match preflight with
          | Error _ as e -> e
          | Ok () ->
              let bases =
                Option.map
                  (fun dir -> Si_bundle.Layout.writer ~dir)
                  t.cfg.workspace
              in
              with_writer t (fun () ->
                  match Si_bundle.apply ?bases t.leader bytes with
                  | Error _ as e -> e
                  | Ok report -> (
                      match persist t with
                      | Error _ as e -> e
                      | Ok () ->
                          Ok
                            (Printf.sprintf
                               "applied %d triple(s) (%d present), %d \
                                mark(s) (%d present), %d base(s), %d \
                                problem(s)"
                               report.Si_bundle.added_triples
                               report.Si_bundle.skipped_triples
                               report.Si_bundle.installed_marks
                               report.Si_bundle.skipped_marks
                               report.Si_bundle.restored_bases
                               (List.length report.Si_bundle.apply_problems))))))

let job_runner t =
  let rec go () =
    match Jobq.pop t.jobs with
    | None -> ()
    | Some { job_id; job_kind } ->
        set_job t job_id Proto.Running;
        (match run_job t job_kind with
        | Ok summary -> set_job t job_id (Proto.Done summary)
        | Error e -> set_job t job_id (Proto.Failed e));
        go ()
  in
  go ()

(* --- request dispatch ------------------------------------------------ *)

let submit t kind priority =
  let id =
    locked t.job_lock (fun () ->
        let id = t.next_job in
        t.next_job <- id + 1;
        Hashtbl.replace t.job_states id Proto.Queued;
        id)
  in
  match Jobq.push t.jobs priority { job_id = id; job_kind = kind } with
  | `Accepted -> Proto.Accepted id
  | `Overloaded ->
      locked t.job_lock (fun () -> Hashtbl.remove t.job_states id);
      Si_obs.Counter.incr overloaded_count;
      Proto.Overloaded "job queue is full"
  | `Closed ->
      locked t.job_lock (fun () -> Hashtbl.remove t.job_states id);
      Proto.Err "server is stopping"

let handle t (req : Proto.request) : Proto.response * [ `Go | `Shutdown ] =
  match req with
  | Ping -> (Pong, `Go)
  | Pads ->
      let dmi = Slimpad.dmi (read_app t) in
      (Pad_list (List.map (Dmi.pad_name dmi) (Dmi.pads dmi)), `Go)
  | Select { pattern = p; limit } ->
      let rows =
        Trim.select ?subject:p.p_subject ?predicate:p.p_predicate
          ?object_:p.p_object (read_trim t)
      in
      (Triples (List.map Triple.to_string (take limit rows)), `Go)
  | Count p ->
      ( Count_is
          (Trim.count_select ?subject:p.p_subject ?predicate:p.p_predicate
             ?object_:p.p_object (read_trim t)),
        `Go )
  | Query text -> (
      match Query.parse text with
      | Error e -> (Err (Printf.sprintf "query: %s" e), `Go)
      | Ok q ->
          let trim = read_trim t in
          let rows = Query.run trim (Query.optimize trim q) in
          (Rows (List.map Query.binding_to_string rows), `Go))
  | Open_pad name ->
      ( with_writer t (fun () ->
            (match Dmi.find_pad (Slimpad.dmi t.leader) name with
            | Some _ -> ()
            | None -> ignore (Slimpad.new_pad t.leader name));
            match persist t with
            | Ok () -> Proto.Ok_done
            | Error e -> Proto.Err e),
        `Go )
  | Add triple ->
      ( with_writer t (fun () ->
            ignore (Trim.add (Dmi.trim (Slimpad.dmi t.leader)) triple);
            match persist t with
            | Ok () -> Proto.Ok_done
            | Error e -> Proto.Err e),
        `Go )
  | Remove triple ->
      ( with_writer t (fun () ->
            ignore (Trim.remove (Dmi.trim (Slimpad.dmi t.leader)) triple);
            match persist t with
            | Ok () -> Proto.Ok_done
            | Error e -> Proto.Err e),
        `Go )
  | Resolve { pad; scrap } -> (
      (* Always on the leader: resolution walks the desktop's base
         documents, which a follower does not attach. *)
      let app = t.leader in
      match Dmi.find_pad (Slimpad.dmi app) pad with
      | None -> (Err (Printf.sprintf "no pad named %S" pad), `Go)
      | Some p -> (
          match Slimpad.find_scraps app p scrap with
          | [] -> (Err (Printf.sprintf "no scrap matching %S" scrap), `Go)
          | s :: _ ->
              ( with_writer t (fun () ->
                    (* The resilient path may journal quarantine state. *)
                    match Slimpad.double_click app s with
                    | Ok res -> Proto.Resolved res.Mark.res_display
                    | Error e -> Proto.Err e),
                `Go )))
  | Stats -> (Stats_json (Slimpad.stats_json ()), `Go)
  | Submit { kind; priority } -> (submit t kind priority, `Go)
  | Job_status id -> (
      match job_state t id with
      | Some state -> (Job { job = id; state }, `Go)
      | None -> (Err (Printf.sprintf "unknown job %d" id), `Go))
  | Shutdown -> (Closing, `Shutdown)

(* --- connection service ---------------------------------------------- *)

let request_stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Jobq.close t.conns;
    Jobq.close t.jobs;
    (* Kick workers blocked reading an idle connection. *)
    locked t.session_lock (fun () ->
        Hashtbl.iter
          (fun fd () ->
            try Unix.shutdown fd Unix.SHUTDOWN_ALL
            with Unix.Unix_error _ -> ())
          t.sessions)
  end

let send_response fd resp = Tcp.send_frame fd (Proto.encode_response resp)

let serve_conn t fd =
  let rec go () =
    if not (Atomic.get t.stopping) then
      match Tcp.recv_frame fd with
      | Error e ->
          (* Damage the checksum caught, an oversized length, or a bare
             close. One typed parting error, then drop — never a crash,
             never a guess at a half-read frame. *)
          if e <> "connection closed" then begin
            Si_obs.Counter.incr proto_error_count;
            ignore (send_response fd (Proto.Err ("bad frame: " ^ e)))
          end
      | Ok raw -> (
          match Proto.decode_request raw with
          | Error e ->
              Si_obs.Counter.incr proto_error_count;
              ignore (send_response fd (Proto.Err ("bad request: " ^ e)))
          | Ok req -> (
              let op = Proto.request_op req in
              Si_obs.Counter.incr request_count;
              let started = Si_obs.Clock.now () in
              let resp, outcome =
                Si_obs.Span.with_ ~layer:"server" ~op (fun () -> handle t req)
              in
              let elapsed = Si_obs.Clock.now () - started in
              Si_obs.Histogram.add request_latency elapsed;
              Si_obs.Histogram.add
                (Si_obs.Registry.histogram ("server.req." ^ op))
                elapsed;
              match send_response fd resp with
              | Error _ -> ()
              | Ok () -> (
                  match outcome with
                  | `Go -> go ()
                  | `Shutdown -> request_stop t)))
  in
  go ()

let register t fd =
  locked t.session_lock (fun () ->
      Hashtbl.replace t.sessions fd ();
      Si_obs.Gauge.set sessions_gauge (Hashtbl.length t.sessions))

let unregister t fd =
  locked t.session_lock (fun () ->
      Hashtbl.remove t.sessions fd;
      Si_obs.Gauge.set sessions_gauge (Hashtbl.length t.sessions));
  try Unix.close fd with Unix.Unix_error _ -> ()

let worker t =
  let rec go () =
    match Jobq.pop t.conns with
    | None -> ()
    | Some fd ->
        register t fd;
        serve_conn t fd;
        unregister t fd;
        go ()
  in
  go ()

let accept_loop t =
  let rec go () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.accept t.listen_fd with
      | fd, _ -> (
          match Jobq.push t.conns Proto.Interactive fd with
          | `Accepted -> ()
          | `Overloaded | `Closed ->
              (* Typed backpressure at the door; accepting must never
                 wait for a worker. *)
              Si_obs.Counter.incr overloaded_count;
              ignore
                (send_response fd
                   (Proto.Overloaded "connection queue is full"));
              (try Unix.close fd with Unix.Unix_error _ -> ()))
      | exception Unix.Unix_error _ -> Atomic.set t.stopping true);
      go ()
    end
  in
  go ()

(* --- lifecycle ------------------------------------------------------- *)

let start ?(config = default_config) ?follower leader =
  match
    try
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd
        (Unix.ADDR_INET (Unix.inet_addr_of_string config.addr, config.port));
      Unix.listen fd 16;
      let bound =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | Unix.ADDR_UNIX _ -> config.port
      in
      Ok (fd, bound)
    with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  with
  | Error _ as e -> e
  | Ok (listen_fd, bound) ->
      let t =
        {
          cfg = config;
          leader;
          follower;
          listen_fd;
          srv_port = bound;
          stopping = Atomic.make false;
          conns =
            Jobq.create ~capacity:(max 1 config.pending_connections)
              ~bulk_capacity:1 ();
          jobs =
            Jobq.create ~capacity:(max 1 config.job_capacity)
              ~bulk_capacity:(max 1 config.job_capacity) ~gauge:queue_gauge
              ();
          job_states = Hashtbl.create 16;
          job_lock = Si_check.Lock.create ~class_:"server.job";
          next_job = 1;
          writer = Si_check.Lock.create ~class_:"server.writer";
          sessions = Hashtbl.create 16;
          session_lock = Si_check.Lock.create ~class_:"server.session";
          domains = [];
          joined = false;
        }
      in
      let workers =
        List.init (max 1 config.workers) (fun _ ->
            Domain.spawn (fun () -> worker t))
      in
      let runner = Domain.spawn (fun () -> job_runner t) in
      let acceptor = Domain.spawn (fun () -> accept_loop t) in
      t.domains <- (acceptor :: runner :: workers);
      Ok t

let shutdown = request_stop
let stopped t = Atomic.get t.stopping

let wait t =
  if not t.joined then begin
    t.joined <- true;
    List.iter Domain.join t.domains
  end

let stop t =
  request_stop t;
  wait t
