(* The pad-serving wire protocol: tagged field lists framed exactly
   like WAL records — [u32-le length][u32-le crc][payload] — so the
   transport layer (Si_wal.Tcp) catches a mangled byte by checksum and
   the parser below never sees damaged input, only well-formed field
   lists it can still refuse. Requests and responses are separate
   codecs: a tag is only ever decoded against its own direction. *)

module Record = Si_wal.Record
module Triple = Si_triple.Triple

type priority = Interactive | Bulk

type pattern = {
  p_subject : string option;
  p_predicate : string option;
  p_object : Triple.obj option;
}

let any = { p_subject = None; p_predicate = None; p_object = None }

type job_kind =
  | Compact
  | Checkpoint
  | Lint
  | Bulk_add of { count : int; predicate : string }
  | Capture of { path : string; with_bases : bool }
  | Apply of { path : string; strict : bool }

type request =
  | Ping
  | Open_pad of string
  | Pads
  | Select of { pattern : pattern; limit : int }
  | Count of pattern
  | Query of string
  | Add of Triple.t
  | Remove of Triple.t
  | Resolve of { pad : string; scrap : string }
  | Stats
  | Submit of { kind : job_kind; priority : priority }
  | Job_status of int
  | Shutdown

type job_state = Queued | Running | Done of string | Failed of string

type response =
  | Pong
  | Ok_done
  | Pad_list of string list
  | Triples of string list
  | Count_is of int
  | Rows of string list
  | Resolved of string
  | Stats_json of string
  | Accepted of int
  | Job of { job : int; state : job_state }
  | Overloaded of string
  | Err of string
  | Closing

(* --- field encoding -------------------------------------------------- *)

(* An optional string is a presence flag plus the value, so an absent
   field and a present-but-empty one stay distinct on the wire. *)
let opt_fields = function Some v -> [ "+"; v ] | None -> [ "-"; "" ]

let obj_fields = function
  | Triple.Resource r -> [ "r"; r ]
  | Triple.Literal l -> [ "l"; l ]

let obj_opt_fields = function
  | Some o -> obj_fields o
  | None -> [ "-"; "" ]

let pattern_fields p =
  opt_fields p.p_subject @ opt_fields p.p_predicate @ obj_opt_fields p.p_object

let triple_fields (t : Triple.t) =
  (t.subject :: t.predicate :: obj_fields t.object_ : string list)

let priority_field = function Interactive -> "i" | Bulk -> "b"

let kind_fields = function
  | Compact -> [ "compact" ]
  | Checkpoint -> [ "checkpoint" ]
  | Lint -> [ "lint" ]
  | Bulk_add { count; predicate } ->
      [ "bulk-add"; string_of_int count; predicate ]
  | Capture { path; with_bases } ->
      [ "capture"; path; (if with_bases then "b" else "-") ]
  | Apply { path; strict } ->
      [ "apply"; path; (if strict then "s" else "-") ]

let request_fields = function
  | Ping -> [ "ping" ]
  | Open_pad name -> [ "open"; name ]
  | Pads -> [ "pads" ]
  | Select { pattern; limit } ->
      ("select" :: string_of_int limit :: pattern_fields pattern : string list)
  | Count pattern -> "count" :: pattern_fields pattern
  | Query text -> [ "query"; text ]
  | Add t -> "add" :: triple_fields t
  | Remove t -> "rm" :: triple_fields t
  | Resolve { pad; scrap } -> [ "resolve"; pad; scrap ]
  | Stats -> [ "stats" ]
  | Submit { kind; priority } ->
      "submit" :: priority_field priority :: kind_fields kind
  | Job_status id -> [ "job?"; string_of_int id ]
  | Shutdown -> [ "bye" ]

let state_fields = function
  | Queued -> [ "queued" ]
  | Running -> [ "running" ]
  | Done summary -> [ "done"; summary ]
  | Failed reason -> [ "failed"; reason ]

let response_fields = function
  | Pong -> [ "pong" ]
  | Ok_done -> [ "ok" ]
  | Pad_list names -> "pads" :: names
  | Triples rows -> "triples" :: rows
  | Count_is n -> [ "count"; string_of_int n ]
  | Rows rows -> "rows" :: rows
  | Resolved text -> [ "res"; text ]
  | Stats_json json -> [ "stats"; json ]
  | Accepted job -> [ "accepted"; string_of_int job ]
  | Job { job; state } ->
      ("job" :: string_of_int job :: state_fields state : string list)
  | Overloaded reason -> [ "overload"; reason ]
  | Err reason -> [ "err"; reason ]
  | Closing -> [ "closing" ]

let frame fields =
  let buf = Buffer.create 64 in
  Record.encode buf (Record.encode_fields fields);
  Buffer.contents buf

let encode_request r = frame (request_fields r)
let encode_response r = frame (response_fields r)

(* --- field decoding -------------------------------------------------- *)

let opt_of = function
  | "+", v -> Ok (Some v)
  | "-", "" -> Ok None
  | flag, _ -> Error (Printf.sprintf "bad presence flag %S" flag)

let obj_of = function
  | "r", r -> Ok (Triple.Resource r)
  | "l", l -> Ok (Triple.Literal l)
  | kind, _ -> Error (Printf.sprintf "bad object kind %S" kind)

let obj_opt_of = function
  | "-", "" -> Ok None
  | pair -> Result.map Option.some (obj_of pair)

let pattern_of = function
  | [ sf; sv; pf; pv; kf; kv ] ->
      Result.bind (opt_of (sf, sv)) (fun p_subject ->
          Result.bind (opt_of (pf, pv)) (fun p_predicate ->
              Result.map
                (fun p_object -> { p_subject; p_predicate; p_object })
                (obj_opt_of (kf, kv))))
  | _ -> Error "pattern: expected six fields"

let triple_of = function
  | [ s; p; kf; kv ] ->
      Result.map (fun o -> Triple.make s p o) (obj_of (kf, kv))
  | _ -> Error "triple: expected four fields"

let priority_of = function
  | "i" -> Ok Interactive
  | "b" -> Ok Bulk
  | p -> Error (Printf.sprintf "bad priority %S" p)

let kind_of = function
  | [ "compact" ] -> Ok Compact
  | [ "checkpoint" ] -> Ok Checkpoint
  | [ "lint" ] -> Ok Lint
  | [ "bulk-add"; count; predicate ] -> (
      match int_of_string_opt count with
      | Some count when count >= 0 -> Ok (Bulk_add { count; predicate })
      | _ -> Error "bulk-add: bad count")
  | [ "capture"; path; flag ] -> (
      match flag with
      | "b" -> Ok (Capture { path; with_bases = true })
      | "-" -> Ok (Capture { path; with_bases = false })
      | _ -> Error "capture: bad bases flag")
  | [ "apply"; path; flag ] -> (
      match flag with
      | "s" -> Ok (Apply { path; strict = true })
      | "-" -> Ok (Apply { path; strict = false })
      | _ -> Error "apply: bad strict flag")
  | _ -> Error "bad job kind"

let request_of = function
  | [ "ping" ] -> Ok Ping
  | [ "open"; name ] -> Ok (Open_pad name)
  | [ "pads" ] -> Ok Pads
  | "select" :: limit :: rest -> (
      match int_of_string_opt limit with
      | Some limit ->
          Result.map
            (fun pattern -> Select { pattern; limit })
            (pattern_of rest)
      | None -> Error "select: bad limit")
  | "count" :: rest -> Result.map (fun p -> Count p) (pattern_of rest)
  | [ "query"; text ] -> Ok (Query text)
  | "add" :: rest -> Result.map (fun t -> Add t) (triple_of rest)
  | "rm" :: rest -> Result.map (fun t -> Remove t) (triple_of rest)
  | [ "resolve"; pad; scrap ] -> Ok (Resolve { pad; scrap })
  | [ "stats" ] -> Ok Stats
  | "submit" :: priority :: rest ->
      Result.bind (priority_of priority) (fun priority ->
          Result.map (fun kind -> Submit { kind; priority }) (kind_of rest))
  | [ "job?"; id ] -> (
      match int_of_string_opt id with
      | Some id -> Ok (Job_status id)
      | None -> Error "job?: bad id")
  | [ "bye" ] -> Ok Shutdown
  | tag :: _ -> Error (Printf.sprintf "unknown request tag %S" tag)
  | [] -> Error "empty request"

let state_of = function
  | [ "queued" ] -> Ok Queued
  | [ "running" ] -> Ok Running
  | [ "done"; summary ] -> Ok (Done summary)
  | [ "failed"; reason ] -> Ok (Failed reason)
  | _ -> Error "bad job state"

let response_of = function
  | [ "pong" ] -> Ok Pong
  | [ "ok" ] -> Ok Ok_done
  | "pads" :: names -> Ok (Pad_list names)
  | "triples" :: rows -> Ok (Triples rows)
  | [ "count"; n ] -> (
      match int_of_string_opt n with
      | Some n -> Ok (Count_is n)
      | None -> Error "count: bad integer")
  | "rows" :: rows -> Ok (Rows rows)
  | [ "res"; text ] -> Ok (Resolved text)
  | [ "stats"; json ] -> Ok (Stats_json json)
  | [ "accepted"; job ] -> (
      match int_of_string_opt job with
      | Some job -> Ok (Accepted job)
      | None -> Error "accepted: bad id")
  | "job" :: job :: rest -> (
      match int_of_string_opt job with
      | Some job -> Result.map (fun state -> Job { job; state }) (state_of rest)
      | None -> Error "job: bad id")
  | [ "overload"; reason ] -> Ok (Overloaded reason)
  | [ "err"; reason ] -> Ok (Err reason)
  | [ "closing" ] -> Ok Closing
  | tag :: _ -> Error (Printf.sprintf "unknown response tag %S" tag)
  | [] -> Error "empty response"

let unframe raw of_fields =
  match Record.read raw ~pos:0 with
  | Record.Record { payload; next } ->
      if next <> String.length raw then Error "trailing bytes after frame"
      else Result.bind (Record.decode_fields payload) of_fields
  | Record.End -> Error "empty frame"
  | Record.Torn e | Record.Corrupt e ->
      Error (Printf.sprintf "damaged frame: %s" e)

let decode_request raw = unframe raw request_of
let decode_response raw = unframe raw response_of

(* Short operation names for metric series ("server.req.<op>"). *)
let request_op = function
  | Ping -> "ping"
  | Open_pad _ -> "open"
  | Pads -> "pads"
  | Select _ -> "select"
  | Count _ -> "count"
  | Query _ -> "query"
  | Add _ -> "add"
  | Remove _ -> "remove"
  | Resolve _ -> "resolve"
  | Stats -> "stats"
  | Submit _ -> "submit"
  | Job_status _ -> "job_status"
  | Shutdown -> "shutdown"
