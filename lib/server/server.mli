(** The multi-client pad server.

    One accept domain feeds a bounded connection queue; a fixed pool of
    worker domains each service one connection at a time (the protocol
    is strict request/response, so concurrent clients = workers); one
    job-runner domain drains the background {!Jobq}. Reads run
    concurrently over the pad's sharded store — open the served pad
    with {!Si_triple.Store.Sharded_columnar} — and are {e replica
    aware}: with an attached [follower], queries go to it whenever
    {!Si_wal.Replica.fresh_enough} holds and fall back to the leader
    otherwise. Every mutation serializes through one writer lock and
    syncs the leader's WAL before the response.

    Backpressure is typed, never blocking: a full connection queue
    answers {!Proto.Overloaded} at accept, a full job queue at submit.
    A frame the transport or parser refuses gets one [Err] response and
    the connection is dropped.

    Observability: every request runs under an [Si_obs] span
    (layer ["server"]) and feeds the always-on ["server.request"] and
    per-op ["server.req.<op>"] latency histograms; gauges
    ["server.sessions"] and ["server.queue.depth"] track live
    connections and queued background jobs. *)

type config = {
  addr : string;  (** Listen address (default localhost). *)
  port : int;  (** 0 picks an ephemeral port — read it with {!port}. *)
  workers : int;  (** Worker-domain pool size, i.e. concurrent clients. *)
  pending_connections : int;  (** Accepted-but-unclaimed connection bound. *)
  job_capacity : int;  (** Background job queue bound per class. *)
  max_lag : int;
      (** Replica staleness bound (records) for read routing. *)
  workspace : string option;
      (** Workspace directory for capture/apply jobs: base documents
          are read from and restored into it ({!Si_bundle.Layout}).
          Without one, [Capture { with_bases = true }] packs no bases
          and [Apply] restores none. *)
}

val default_config : config
(** localhost, ephemeral port, 4 workers, 64 pending connections,
    8 queued jobs, [max_lag] 64, no workspace. *)

type t

val start :
  ?config:config ->
  ?follower:Si_slimpad.Slimpad.t * Si_wal.Replica.t ->
  Si_slimpad.Slimpad.t ->
  (t, string) result
(** Serve the leader pad. [follower] enables replica-aware reads: pass
    the replica application and its protocol endpoint (keep shipping to
    it — {!Si_slimpad.Slimpad.start_shipping} with [~async:true] pairs
    naturally). The leader should be journaled; without a WAL the
    server still runs, writes just have nothing to sync. *)

val port : t -> int

val shutdown : t -> unit
(** Initiate the stop sequence without blocking: close the listener,
    kick live connections, close the queues. Idempotent, safe from a
    signal handler's flag-polling loop. *)

val stopped : t -> bool
(** The stop sequence has been initiated (by {!shutdown}, {!stop}, or
    a client [Shutdown] request). *)

val stop : t -> unit
(** {!shutdown}, then join all domains. A client [Shutdown] request
    triggers the same sequence. *)

val wait : t -> unit
(** Block until the server stops (a client sent [Shutdown] or another
    thread called {!stop}). *)
