(** The follower end of WAL shipping.

    A replica answers {!Frame} requests over any transport: it installs
    base snapshots, applies records {e in sequence order} through the
    caller's [apply] function, tolerates duplicated and reordered
    frames (duplicates are acknowledged and dropped; early arrivals
    wait in a bounded pending buffer and drain when the gap fills), and
    answers [Fenced] to any frame from a term older than its own — how
    a deposed leader learns it lost.

    Prefix consistency is structural: [applied] only advances when
    record [applied + 1] has gone through [apply], so the replica's
    state is always exactly the leader's records [1..applied]. The one
    exception is divergence healing after failover: when a newer
    leader's advertised position is behind our applied prefix, the
    suffix beyond it was acknowledged only to a deposed leader — the
    replica answers [Nack {next = 0}] until the new leader jumps it to
    a base snapshot, whose installation rolls [applied] back and
    discards the divergent suffix.

    Durability is the caller's: [apply] should write through a local
    journaled store before returning [Ok], making an Ack mean
    "survives my crash". Protocol state ([term], [applied]) is in
    memory; persist it across restarts (the slimpad layer keeps a
    sidecar file next to the replica's own WAL). *)

type t

val create :
  ?max_pending:int ->
  ?term:int ->
  ?applied:int ->
  ?on_term:(int -> unit) ->
  apply:(string -> (unit, string) result) ->
  install:(term:int -> seq:int -> string -> (unit, string) result) ->
  unit ->
  t
(** [apply] receives record payloads in sequence order; [install]
    receives a base snapshot payload replacing all state (the replica
    jumps to the snapshot's [seq]); both should persist the given
    [term]/[seq] so the replica can resume. [on_term] fires whenever the
    replica adopts a higher term — from a leader frame or from
    {!promote} — so the caller can persist it. [max_pending] bounds the
    reorder buffer (default 64); past it, early frames are dropped and
    Nacked. [term]/[applied] resume a persisted replica. *)

val handle : t -> string -> string
(** The transport endpoint: one encoded request frame in, one encoded
    response frame out. Total — undecodable input answers a [Bad]
    frame. *)

val transport : t -> string -> (string, string) result
(** [handle] wrapped for a leader in the same process (never [Error]). *)

val term : t -> int
val applied : t -> int
(** Highest sequence number of the contiguous applied prefix. *)

val leader_seq : t -> int
(** Highest leader sequence number any frame has advertised. *)

val lag : t -> int
(** [leader_seq - applied], clamped at 0 — the staleness bound in
    records. Also published to the ["wal.replica.lag"] gauge. *)

val fresh_enough : t -> max_lag:int -> bool
(** Bounded-staleness read guard: serve a read only when the replica is
    at most [max_lag] records behind the last leader contact. *)

val promote : t -> int
(** Failover: bump the term past every leader this replica has seen,
    clear the reorder buffer, and return the new term. The caller
    becomes the leader (see {!Ship.create}); the old leader's next
    frame here is answered [Fenced]. *)

val trouble : t -> string option
(** The first [apply] failure from draining the reorder buffer, if
    any (failures on the direct path surface as [Bad] responses). *)
