(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.

    The checksum guarding every WAL record and snapshot payload. Pure
    OCaml over native [int]s (the 32-bit value occupies the low bits), so
    the log format has no dependency beyond the stdlib. *)

val digest : ?crc:int -> ?pos:int -> ?len:int -> string -> int
(** [digest s] is the CRC-32 of [s] as a non-negative int in
    [\[0, 2^32)]. [crc] (default 0) continues a running checksum, so
    [digest ~crc:(digest a) b] = [digest (a ^ b)]. [pos]/[len] select a
    substring (default: all of [s]).
    @raise Invalid_argument when [pos]/[len] fall outside [s]. *)
