(** Sealed archive segments and base snapshots for WAL shipping.

    The shipping archive is a directory of two kinds of file, both
    written atomically (temp + rename), so every file that exists is
    sealed — decode failures inside one are damage, never a torn
    append:

    - [seg-<term>-<first>-<last>.seg] — 8-byte magic, u32-le term,
      u32-le first sequence number, u32-le record count, then the
      CRC-framed records ({!Record.encode}) with sequence numbers
      [first..last].
    - [base-<term>-<seq>.base] — 8-byte magic, u32-le term, u32-le
      sequence number, then one framed record: the full snapshot of the
      state after applying records [1..seq].

    [term] is the replication leadership generation (bumped by
    failover), distinct from {!Log.generation} (bumped by local
    compaction). Retained segments plus bases form the point-in-time
    archive: {!restore_plan} picks the newest base at or before a cut
    point and the segments bridging it. *)

type entry = {
  seg_term : int;
  seg_first : int;  (** Sequence number of the first record inside. *)
  seg_last : int;
  seg_file : string;  (** File name within the archive directory. *)
}

type base = {
  base_term : int;
  base_seq : int;  (** Snapshot of the state after records [1..seq]. *)
  base_file : string;
}

val seal :
  dir:string -> term:int -> first:int -> string list -> (entry, string) result
(** Write the records as a sealed segment. Errors on an empty list. *)

val write_base :
  dir:string -> term:int -> seq:int -> string -> (base, string) result

val import_base :
  dir:string -> term:int -> seq:int -> string -> (base, string) result
(** Install an externally produced snapshot payload — e.g. a capture
    bundle, whose container doubles as the snapshot-transfer format —
    as a [base-<term>-<seq>.base] restore point, creating [dir] when
    missing. {!index}/{!restore_plan} then treat it exactly like a
    leader-cut base, so a workspace can be point-in-time restored (or
    a follower bootstrapped) from a shipped file. *)

val read : dir:string -> entry -> (string list, string) result
(** Decode a segment's records, verifying magic, header-vs-name
    agreement, CRCs, and the record count. Any mismatch is an error —
    the file was sealed at creation. *)

val read_base : dir:string -> base -> (string, string) result
(** The snapshot payload, verified the same way. *)

val ensure_dir : string -> (unit, string) result
(** Create the archive directory when missing. *)

type index = {
  segments : entry list;  (** Sorted by [seg_first]. *)
  bases : base list;  (** Sorted by [base_seq]. *)
}

val empty_index : index

val index : string -> (index, string) result
(** Scan the directory (missing directory: empty index). Malformed file
    names are ignored; {!verify} inspects contents. *)

val max_seq : index -> int
(** Highest sequence number any archive file accounts for (0 when
    empty). A restarting leader resumes numbering from here. *)

val max_term : index -> int

type problem = { problem_file : string; problem_detail : string }

val verify : string -> (problem list, string) result
(** Offline archive check (lint rule SL306 wraps this): per-file CRC
    and header damage, sequence gaps not covered by any base, and
    term regressions between consecutive segments. [Error _] only on
    directory I/O failure. *)

type prune_report = {
  prune_cutoff : int;
      (** Records at or below this sequence number were eligible. *)
  pruned_segments : string list;  (** Removed segment file names. *)
  pruned_bases : string list;  (** Removed base file names. *)
}

val prune : dir:string -> keep:int -> (prune_report, string) result
(** Retention: drop archive files made redundant by the newest base
    snapshot, keeping a window of [keep] records below it for
    point-in-time restores. A segment is removed when every record in
    it is at or below [newest base seq - keep]; older bases below the
    cutoff are removed too (the newest always stays). With no base at
    all nothing is removed — no file may go until a base proves the
    prefix restorable. Restores at sequence numbers above the cutoff
    are unaffected; {!verify} accepts the pruned archive because the
    retained base bridges the leading gap. *)

val restore_plan : index -> at:int -> (base * entry list, string) result
(** The newest base with [base_seq <= at] plus the segments covering
    records [(base_seq, at]], checked contiguous. Errors when no base
    qualifies or records are missing. *)
